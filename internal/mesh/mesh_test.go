package mesh

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/repl"
)

// testNode is an in-process Node over a map of open databases.
type testNode struct {
	name     string
	admitted atomic.Bool

	mu  sync.Mutex
	dbs map[string]*core.Database
}

func newTestNode(t *testing.T, name string, paths map[string]nsf.ReplicaID) *testNode {
	t.Helper()
	n := &testNode{name: name, dbs: make(map[string]*core.Database)}
	n.admitted.Store(true)
	for p, replica := range paths {
		db, err := core.Open(filepath.Join(t.TempDir(), name+"-"+strings.ReplaceAll(p, "/", "_")),
			core.Options{Title: p, ReplicaID: replica})
		if err != nil {
			t.Fatalf("Open %s/%s: %v", name, p, err)
		}
		t.Cleanup(func() { db.Close() })
		n.dbs[p] = db
	}
	return n
}

func (n *testNode) Name() string { return n.name }

func (n *testNode) Paths() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.dbs))
	for p := range n.dbs {
		out = append(out, p)
	}
	return out
}

func (n *testNode) Open(path string) (*core.Database, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	db, ok := n.dbs[path]
	if !ok {
		return nil, fmt.Errorf("no db %s", path)
	}
	return db, nil
}

func (n *testNode) Admitted() bool { return n.admitted.Load() }

// testDialer reaches other testNodes directly, optionally failing.
type testDialer struct {
	nodes map[string]*testNode
	fail  atomic.Bool
	dials atomic.Uint64
}

type testSession struct{ node *testNode }

func (s *testSession) Open(dbPath string) (repl.Peer, error) {
	db, err := s.node.Open(dbPath)
	if err != nil {
		return nil, err
	}
	return &repl.LocalPeer{DB: db}, nil
}

func (s *testSession) Close() error { return nil }

func (d *testDialer) Dial(peer string) (Session, error) {
	d.dials.Add(1)
	if d.fail.Load() {
		return nil, errors.New("dial refused (test fault)")
	}
	n, ok := d.nodes[peer]
	if !ok {
		return nil, fmt.Errorf("unknown peer %s", peer)
	}
	return &testSession{node: n}, nil
}

func createDoc(t *testing.T, db *core.Database, subject string) *nsf.Note {
	t.Helper()
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetWithFlags("Subject", nsf.TextValue(subject), nsf.FlagSummary)
	if err := db.Session("user").Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	return n
}

// waitConverged polls the audit until every replica fingerprints the same.
func waitConverged(t *testing.T, replicas map[string]*core.Database, within time.Duration) Audit {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		a, err := AuditConvergence(replicas)
		if err != nil {
			t.Fatalf("AuditConvergence: %v", err)
		}
		if a.Converged {
			return a
		}
		if time.Now().After(deadline) {
			for label, fp := range a.Fingerprints {
				t.Logf("%s: %s (%d notes, %d live)", label, fp.Digest[:12], fp.Notes, fp.Live)
			}
			t.Fatal("replicas did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newMeshPair(t *testing.T) (*testNode, *testNode, *testDialer, *Mesh) {
	t.Helper()
	replica := nsf.NewReplicaID()
	a := newTestNode(t, "alpha", map[string]nsf.ReplicaID{"disc.nsf": replica})
	b := newTestNode(t, "beta", map[string]nsf.ReplicaID{"disc.nsf": replica})
	d := &testDialer{nodes: map[string]*testNode{"alpha": a, "beta": b}}
	m, err := New(Options{
		Node:     a,
		Dialer:   d,
		Interval: 20 * time.Millisecond,
		Debounce: time.Millisecond,
		Cooldown: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return a, b, d, m
}

func TestColdLinkConverges(t *testing.T) {
	a, b, _, m := newMeshPair(t)
	if err := m.Add(Link{Name: "ab", Peer: "beta", Glob: "*"}); err != nil {
		t.Fatal(err)
	}
	createDoc(t, a.dbs["disc.nsf"], "from alpha")
	createDoc(t, b.dbs["disc.nsf"], "from beta")
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
	st := m.Status()
	if len(st) != 1 || st[0].Rounds == 0 || st[0].Failures != 0 {
		t.Errorf("status = %+v", st)
	}
	if st[0].NotesIn == 0 || st[0].NotesOut == 0 {
		t.Errorf("transfer counters empty: %+v", st[0])
	}
}

func TestHotLinkFiresOnWrite(t *testing.T) {
	a, b, _, m := newMeshPair(t)
	// Interval far beyond the test: only the changefeed trigger can move it.
	err := m.Add(Link{Name: "hot", Peer: "beta", Glob: "disc.nsf", Class: Hot, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the trigger attach
	createDoc(t, a.dbs["disc.nsf"], "instant")
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
}

func TestSelectiveLinkStubsDeselected(t *testing.T) {
	a, b, _, m := newMeshPair(t)
	err := m.Add(Link{Name: "sel", Peer: "beta", Formula: "SELECT Subject != \"secret\""})
	if err != nil {
		t.Fatal(err)
	}
	createDoc(t, a.dbs["disc.nsf"], "public")
	secret := createDoc(t, a.dbs["disc.nsf"], "secret")
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
	nb, err := b.dbs["disc.nsf"].RawGet(secret.OID.UNID)
	if err != nil || !nb.IsSelStub() {
		t.Fatalf("secret at beta = %+v err=%v, want selection stub", nb, err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	a, b, d, m := newMeshPair(t)
	d.fail.Store(true)
	if err := m.Add(Link{Name: "ab", Peer: "beta", Interval: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := m.Status()[0]
		if st.BreakerOpen {
			if st.ConsecFails < 3 {
				t.Errorf("breaker open after only %d failures", st.ConsecFails)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// While open, dials stop (at most the half-open probes get through).
	before := d.dials.Load()
	time.Sleep(50 * time.Millisecond)
	if got := d.dials.Load() - before; got > 2 {
		t.Errorf("%d dials while breaker open, want <= 2 (half-open probes)", got)
	}
	// Heal the peer: the next half-open probe closes the breaker and the
	// link converges.
	d.fail.Store(false)
	createDoc(t, a.dbs["disc.nsf"], "after outage")
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
	st := m.Status()[0]
	if st.BreakerOpen || st.ConsecFails != 0 {
		t.Errorf("breaker did not close after recovery: %+v", st)
	}
}

func TestDrainHoldsRounds(t *testing.T) {
	a, b, _, m := newMeshPair(t)
	a.admitted.Store(false)
	if err := m.Add(Link{Name: "ab", Peer: "beta", Interval: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	createDoc(t, a.dbs["disc.nsf"], "stuck")
	time.Sleep(60 * time.Millisecond)
	if got, _ := b.dbs["disc.nsf"].RawGet(nsf.UNID{}); got != nil {
		t.Fatal("unexpected note")
	}
	if n := b.dbs["disc.nsf"].Count(); n != 0 {
		t.Fatalf("replication ran while draining: %d notes at beta", n)
	}
	st := m.Status()[0]
	if !strings.Contains(st.Note, "draining") {
		t.Errorf("status note = %q, want draining hold", st.Note)
	}
	a.admitted.Store(true)
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
}

func TestReplicaMismatchIsSkipNotFailure(t *testing.T) {
	shared := nsf.NewReplicaID()
	a := newTestNode(t, "alpha", map[string]nsf.ReplicaID{
		"disc.nsf":  shared,
		"other.nsf": nsf.NewReplicaID(),
	})
	b := newTestNode(t, "beta", map[string]nsf.ReplicaID{
		"disc.nsf":  shared,
		"other.nsf": nsf.NewReplicaID(), // unrelated db at the same path
	})
	d := &testDialer{nodes: map[string]*testNode{"alpha": a, "beta": b}}
	m, err := New(Options{Node: a, Dialer: d, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.Add(Link{Name: "ab", Peer: "beta", Glob: "*"}); err != nil {
		t.Fatal(err)
	}
	createDoc(t, a.dbs["disc.nsf"], "shared doc")
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
	st := m.Status()[0]
	if st.Failures != 0 {
		t.Errorf("mismatch counted as failure: %+v", st)
	}
	if st.SkippedDBs == 0 {
		t.Errorf("mismatch not counted as skip: %+v", st)
	}
}

func TestRunNowAndRemove(t *testing.T) {
	a, b, _, m := newMeshPair(t)
	if err := m.Add(Link{Name: "ab", Peer: "beta", Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	createDoc(t, a.dbs["disc.nsf"], "kick me")
	if err := m.RunNow("ab"); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
	if err := m.Remove("ab"); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("ab"); err == nil {
		t.Error("double remove succeeded")
	}
	if err := m.RunNow("ab"); err == nil {
		t.Error("RunNow on removed link succeeded")
	}
	if got := len(m.Status()); got != 0 {
		t.Errorf("%d links after remove", got)
	}
	// Re-add resumes from the persisted cursors.
	if err := m.Add(Link{Name: "ab", Peer: "beta", Interval: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	createDoc(t, a.dbs["disc.nsf"], "after re-add")
	waitConverged(t, map[string]*core.Database{"a": a.dbs["disc.nsf"], "b": b.dbs["disc.nsf"]}, 5*time.Second)
}

func TestValidateRejectsBadLinks(t *testing.T) {
	_, _, _, m := newMeshPair(t)
	cases := []struct {
		name string
		link Link
	}{
		{"no name", Link{Peer: "beta"}},
		{"bad name", Link{Name: "a b", Peer: "beta"}},
		{"no peer", Link{Name: "x"}},
		{"self link", Link{Name: "x", Peer: "alpha"}},
		{"bad glob", Link{Name: "x", Peer: "beta", Glob: "[unterminated"}},
		{"bad formula", Link{Name: "x", Peer: "beta", Formula: "SELECT ((("}},
	}
	for _, tc := range cases {
		if err := m.Add(tc.link); err == nil {
			t.Errorf("%s: Add accepted %+v", tc.name, tc.link)
		}
	}
	var fe *repl.FormulaError
	err := m.Validate(Link{Name: "x", Peer: "beta", Formula: "SELECT ((("})
	if !errors.As(err, &fe) {
		t.Errorf("bad formula error = %v, want *repl.FormulaError", err)
	}
	if err := m.Add(Link{Name: "ok", Peer: "beta"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(Link{Name: "ok", Peer: "beta"}); err == nil {
		t.Error("duplicate link name accepted")
	}
}

func TestCursorNameChangesWithFormula(t *testing.T) {
	l := Link{Name: "x", Peer: "beta"}
	narrow, wide := l, l
	narrow.Formula = "SELECT Priority > 5"
	base := cursorName(l, "disc.nsf")
	if cursorName(narrow, "disc.nsf") == base {
		t.Error("formula change did not change the cursor name")
	}
	if cursorName(wide, "disc.nsf") != base {
		t.Error("identical link produced a different cursor name")
	}
	if cursorName(l, "other.nsf") == base {
		t.Error("database path not folded into the cursor name")
	}
}

func TestFingerprintDistinguishesAndMatches(t *testing.T) {
	replica := nsf.NewReplicaID()
	a := newTestNode(t, "alpha", map[string]nsf.ReplicaID{"d": replica})
	b := newTestNode(t, "beta", map[string]nsf.ReplicaID{"d": replica})
	fa, _ := FingerprintDB(a.dbs["d"])
	fb, _ := FingerprintDB(b.dbs["d"])
	if fa.Digest != fb.Digest {
		t.Error("empty replicas fingerprint differently")
	}
	createDoc(t, a.dbs["d"], "only at a")
	fa2, _ := FingerprintDB(a.dbs["d"])
	if fa2.Digest == fb.Digest {
		t.Error("diverged replicas fingerprint identically")
	}
	if fa2.Notes != 1 || fa2.Live != 1 {
		t.Errorf("fingerprint counts = %+v", fa2)
	}
}

func TestParseTopology(t *testing.T) {
	src := `
# mesh for the docs example
link hub-a  alpha hub *        hot  100ms both
spoke-b     beta  hub mail/*   cold 30s   pull  SELECT Priority > 5
`
	topo, err := ParseTopology(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo) != 2 {
		t.Fatalf("parsed %d links", len(topo))
	}
	a := topo[0]
	if a.Server != "alpha" || a.Link.Peer != "hub" || a.Link.Class != Hot ||
		a.Link.Interval != 100*time.Millisecond || a.Link.Direction != Both {
		t.Errorf("link 0 = %+v", a)
	}
	b := topo[1]
	if b.Link.Formula != "SELECT Priority > 5" || b.Link.Direction != Pull || b.Link.Class != Cold {
		t.Errorf("link 1 = %+v", b)
	}
	if got := LinksFor(topo, "BETA"); len(got) != 1 || got[0].Name != "spoke-b" {
		t.Errorf("LinksFor(beta) = %+v", got)
	}
	for _, bad := range []string{
		"link onlyfour a b c",
		"x a b * warm 30s both",
		"x a b * cold notaduration both",
		"x a b * cold 30s sideways",
		"dup a b * cold 30s both\ndup a c * cold 30s both",
	} {
		if _, err := ParseTopology(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseTopology accepted %q", bad)
		}
	}
}

func TestRingAndHubSpokeShapes(t *testing.T) {
	servers := []string{"s0", "s1", "s2", "s3"}
	ring := Ring(servers, Link{Glob: "*", Interval: time.Second})
	if len(ring) != 4 {
		t.Fatalf("ring size %d", len(ring))
	}
	for i, tl := range ring {
		if tl.Server != servers[i] || tl.Link.Peer != servers[(i+1)%4] {
			t.Errorf("ring[%d] = %+v", i, tl)
		}
	}
	hs := HubSpoke("hub", []string{"s1", "s2"}, Link{Glob: "*"})
	if len(hs) != 2 || hs[0].Link.Peer != "hub" || hs[1].Server != "s2" {
		t.Errorf("hubspoke = %+v", hs)
	}
}
