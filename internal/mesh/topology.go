package mesh

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// TopoLink is one line of a topology file: a link plus the server it
// belongs to. A shared topology file describes the whole mesh; each server
// takes the links whose Server matches its own name.
type TopoLink struct {
	// Server is the server that runs the link (the source side).
	Server string
	Link   Link
}

// ParseTopology reads a mesh topology description: one link per line,
//
//	link NAME SRC DST GLOB hot|cold INTERVAL pull|push|both [FORMULA...]
//
// Blank lines and #-comments are ignored; the leading "link" keyword is
// optional. INTERVAL is a Go duration ("30s", "5m"). Everything after the
// direction is the selection formula, verbatim.
func ParseTopology(r io.Reader) ([]TopoLink, error) {
	var out []TopoLink
	seen := make(map[string]bool)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "link" {
			fields = fields[1:]
		}
		if len(fields) < 7 {
			return nil, fmt.Errorf("topology line %d: want NAME SRC DST GLOB hot|cold INTERVAL pull|push|both [FORMULA], got %q", lineNo, line)
		}
		name, src, dst, glob := fields[0], fields[1], fields[2], fields[3]
		class, err := ParseClass(fields[4])
		if err != nil {
			return nil, fmt.Errorf("topology line %d: %w", lineNo, err)
		}
		interval, err := time.ParseDuration(fields[5])
		if err != nil {
			return nil, fmt.Errorf("topology line %d: bad interval %q: %v", lineNo, fields[5], err)
		}
		dir, err := ParseDirection(fields[6])
		if err != nil {
			return nil, fmt.Errorf("topology line %d: %w", lineNo, err)
		}
		formula := strings.Join(fields[7:], " ")
		key := src + "!!" + name
		if seen[key] {
			return nil, fmt.Errorf("topology line %d: duplicate link %s on server %s", lineNo, name, src)
		}
		seen[key] = true
		out = append(out, TopoLink{Server: src, Link: Link{
			Name:      name,
			Peer:      dst,
			Glob:      glob,
			Formula:   formula,
			Direction: dir,
			Class:     class,
			Interval:  interval,
		}})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// LinksFor filters a topology down to the links one server runs.
func LinksFor(topo []TopoLink, server string) []Link {
	var out []Link
	for _, t := range topo {
		if strings.EqualFold(t.Server, server) {
			out = append(out, t.Link)
		}
	}
	return out
}

// Ring builds a ring topology over the servers: each server links to its
// successor with the template's glob/formula/class/interval/direction.
// With Direction Both (the recommended setting) changes flow around the
// ring in both directions and any single severed edge leaves the mesh
// connected.
func Ring(servers []string, template Link) []TopoLink {
	out := make([]TopoLink, 0, len(servers))
	for i, s := range servers {
		l := template
		l.Name = fmt.Sprintf("ring-%d", i)
		l.Peer = servers[(i+1)%len(servers)]
		out = append(out, TopoLink{Server: s, Link: l})
	}
	return out
}

// HubSpoke builds a hub-and-spoke topology: every spoke links to the hub.
// The hub runs no links of its own — spokes both pull and push, the
// Domino pattern for branch servers replicating with a hub.
func HubSpoke(hub string, spokes []string, template Link) []TopoLink {
	out := make([]TopoLink, 0, len(spokes))
	for i, s := range spokes {
		l := template
		l.Name = fmt.Sprintf("spoke-%d", i)
		l.Peer = hub
		out = append(out, TopoLink{Server: s, Link: l})
	}
	return out
}
