// Package mesh implements the epidemic replication mesh: a server's set of
// replication links, each naming a peer, a database glob, an optional
// selection formula, a direction, and a schedule class. Links gossip
// changes pairwise — hot links fire off the local changefeed (debounced),
// cold links run jittered anti-entropy rounds — and the whole mesh
// converges every replica of a database to the same (UNID, Seq, SeqTime)
// set, which the convergence audit fingerprints.
//
// The scheduler respects the server's admission state (a draining node
// stops originating rounds), backs off failing links exponentially, and
// opens a circuit breaker after repeated failures so a dead peer costs one
// probe per cooldown instead of a connect timeout per round. A replica-ID
// mismatch on one database is a skip, not a link failure: broad globs
// legitimately sweep up databases the peer holds under the same path with
// a different replica identity.
package mesh

import (
	"fmt"
	"hash/fnv"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/repl"
)

// Direction says which way a link moves changes.
type Direction uint8

// Link directions.
const (
	// Both pulls then pushes (the default).
	Both Direction = iota
	// Pull only fetches the peer's changes.
	Pull
	// Push only sends local changes.
	Push
)

// String returns the direction's config-file spelling.
func (d Direction) String() string {
	switch d {
	case Pull:
		return "pull"
	case Push:
		return "push"
	default:
		return "both"
	}
}

// ParseDirection parses a config-file direction.
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(s) {
	case "both", "":
		return Both, nil
	case "pull":
		return Pull, nil
	case "push":
		return Push, nil
	}
	return Both, fmt.Errorf("mesh: unknown direction %q (want pull, push, or both)", s)
}

// Class is a link's schedule tier.
type Class uint8

// Schedule classes.
const (
	// Cold links replicate on a jittered anti-entropy interval.
	Cold Class = iota
	// Hot links additionally fire off the local changefeed (debounced), so
	// local writes propagate within the debounce window; the interval
	// remains as the catch-up floor for changes that arrive at the peer.
	Hot
)

// String returns the class's config-file spelling.
func (c Class) String() string {
	if c == Hot {
		return "hot"
	}
	return "cold"
}

// ParseClass parses a config-file schedule class.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(s) {
	case "cold", "":
		return Cold, nil
	case "hot":
		return Hot, nil
	}
	return Cold, fmt.Errorf("mesh: unknown class %q (want hot or cold)", s)
}

// Link is one replication edge of the mesh, as configured.
type Link struct {
	// Name identifies the link for admin commands and status.
	Name string
	// Peer is the remote server name (resolved by the Dialer).
	Peer string
	// Glob selects which local databases the link covers, matched against
	// the data-directory-relative path and, as a convenience, the path's
	// base name. Empty or "*" covers everything replicable.
	Glob string
	// Formula is an optional selection formula applied to the link's
	// sessions; it is compiled and validated when the link is added, and a
	// document outside the selection travels as a selection stub (see
	// package repl).
	Formula string
	// Direction says which way changes move.
	Direction Direction
	// Class is the schedule tier.
	Class Class
	// Interval is the anti-entropy period (cold) or catch-up floor (hot).
	// 0 uses the mesh default.
	Interval time.Duration
	// Debounce is the hot-link changefeed debounce window. 0 uses the mesh
	// default.
	Debounce time.Duration
}

// LinkStatus is a link's live scheduling and transfer state.
type LinkStatus struct {
	Link
	// Rounds counts completed replication rounds (successful or not).
	Rounds uint64
	// Failures counts rounds that ended in error.
	Failures uint64
	// ConsecFails is the current failure streak; it trips the breaker.
	ConsecFails int
	// BreakerOpen reports the circuit breaker is open (peer presumed down).
	BreakerOpen bool
	// SkippedDBs counts databases skipped for replica-ID mismatch.
	SkippedDBs uint64
	// NotesIn/NotesOut count notes pulled/pushed over the link's lifetime.
	NotesIn, NotesOut uint64
	// BytesIn/BytesOut approximate transfer volume.
	BytesIn, BytesOut uint64
	// Lag is the time since the last successful round (0 before the first).
	Lag time.Duration
	// Note is the last error or noteworthy condition, "" when healthy.
	Note string
}

// Node is the mesh's view of its local server.
type Node interface {
	// Name is the local server name.
	Name() string
	// Paths lists the replicable local database paths (data-dir relative);
	// server-private databases (mail.box, logs, catalogs) are excluded.
	Paths() []string
	// Open opens a local database by path.
	Open(path string) (*core.Database, error)
	// Admitted reports whether the node accepts replication work; a
	// draining or quiesced server returns false and the scheduler holds
	// all links until it recovers.
	Admitted() bool
}

// Session is one dialed connection to a peer server.
type Session interface {
	// Open returns the peer's database at path as a replication peer.
	Open(dbPath string) (repl.Peer, error)
	// Close releases the connection.
	Close() error
}

// Dialer connects to peer servers by name.
type Dialer interface {
	Dial(peer string) (Session, error)
}

// DialFunc adapts a function to Dialer.
type DialFunc func(peer string) (Session, error)

// Dial implements Dialer.
func (f DialFunc) Dial(peer string) (Session, error) { return f(peer) }

// Options configure a mesh scheduler.
type Options struct {
	// Node is the local server.
	Node Node
	// Dialer reaches peer servers.
	Dialer Dialer
	// Apply tunes conflict handling for pulls.
	Apply repl.ApplyOptions
	// Interval is the default link interval (default 30s).
	Interval time.Duration
	// Debounce is the default hot-link debounce (default 50ms).
	Debounce time.Duration
	// BreakerAfter is the failure streak that opens the breaker (default 3).
	BreakerAfter int
	// Cooldown is how long an open breaker holds before a half-open probe.
	// When zero, each link uses 4x its own interval — a hot 1s link must
	// not sit out a cooldown sized for a 30s anti-entropy link.
	Cooldown time.Duration
	// Logf, when set, receives scheduler log lines.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.Debounce <= 0 {
		o.Debounce = 50 * time.Millisecond
	}
	if o.BreakerAfter <= 0 {
		o.BreakerAfter = 3
	}
}

// cooldown is the breaker hold for one link: the mesh-wide override, or
// 4x the link's own interval.
func (m *Mesh) cooldown(l Link) time.Duration {
	if m.opts.Cooldown > 0 {
		return m.opts.Cooldown
	}
	return 4 * l.Interval
}

// Mesh schedules a server's replication links. All methods are safe for
// concurrent use.
type Mesh struct {
	opts Options

	mu     sync.Mutex
	links  map[string]*linkState
	closed bool
	wg     sync.WaitGroup
}

// New creates a mesh scheduler for the node. Links start empty; Add them
// from config (dominod), the admin surface (nsfadmin mesh add), or a
// parsed topology file.
func New(opts Options) (*Mesh, error) {
	if opts.Node == nil || opts.Dialer == nil {
		return nil, fmt.Errorf("mesh: Node and Dialer are required")
	}
	opts.defaults()
	return &Mesh{opts: opts, links: make(map[string]*linkState)}, nil
}

// Validate checks a link definition without adding it: the name, peer, and
// glob must be well-formed and the selection formula must compile (a bad
// formula surfaces here as a typed *repl.FormulaError).
func (m *Mesh) Validate(l Link) error {
	if l.Name == "" {
		return fmt.Errorf("mesh: link needs a name")
	}
	if strings.ContainsAny(l.Name, " \t!") {
		return fmt.Errorf("mesh: link name %q contains whitespace or '!'", l.Name)
	}
	if l.Peer == "" {
		return fmt.Errorf("mesh: link %s needs a peer", l.Name)
	}
	if strings.EqualFold(l.Peer, m.opts.Node.Name()) {
		return fmt.Errorf("mesh: link %s points at this server", l.Name)
	}
	if l.Glob != "" {
		if _, err := path.Match(l.Glob, "probe"); err != nil {
			return fmt.Errorf("mesh: link %s: bad glob %q: %w", l.Name, l.Glob, err)
		}
	}
	if _, err := repl.CompileSelection(l.Formula); err != nil {
		return fmt.Errorf("mesh: link %s: %w", l.Name, err)
	}
	return nil
}

// Add validates the link and starts scheduling it.
func (m *Mesh) Add(l Link) error {
	if err := m.Validate(l); err != nil {
		return err
	}
	if l.Interval <= 0 {
		l.Interval = m.opts.Interval
	}
	if l.Debounce <= 0 {
		l.Debounce = m.opts.Debounce
	}
	ls := &linkState{
		link: l,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("mesh: closed")
	}
	if _, dup := m.links[l.Name]; dup {
		m.mu.Unlock()
		return fmt.Errorf("mesh: link %s already exists", l.Name)
	}
	m.links[l.Name] = ls
	m.wg.Add(1)
	m.mu.Unlock()
	go m.run(ls)
	m.logf("link %s: added (%s -> %s glob %q %s %s every %s)",
		l.Name, m.opts.Node.Name(), l.Peer, l.Glob, l.Class, l.Direction, l.Interval)
	return nil
}

// Remove stops and forgets a link. Its replication cursors stay in the
// databases, so re-adding the link resumes incrementally.
func (m *Mesh) Remove(name string) error {
	m.mu.Lock()
	ls, ok := m.links[name]
	if ok {
		delete(m.links, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("mesh: no link %s", name)
	}
	ls.shutdown()
	m.logf("link %s: removed", name)
	return nil
}

// RunNow schedules an immediate round for the link, bypassing its interval
// (but not its breaker cooldown).
func (m *Mesh) RunNow(name string) error {
	m.mu.Lock()
	ls, ok := m.links[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("mesh: no link %s", name)
	}
	select {
	case ls.kick <- struct{}{}:
	default:
	}
	return nil
}

// Status snapshots every link, sorted by name.
func (m *Mesh) Status() []LinkStatus {
	m.mu.Lock()
	states := make([]*linkState, 0, len(m.links))
	for _, ls := range m.links {
		states = append(states, ls)
	}
	m.mu.Unlock()
	out := make([]LinkStatus, 0, len(states))
	for _, ls := range states {
		out = append(out, ls.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Links returns the configured link definitions, sorted by name.
func (m *Mesh) Links() []Link {
	sts := m.Status()
	out := make([]Link, len(sts))
	for i, st := range sts {
		out[i] = st.Link
	}
	return out
}

// Close stops every link and waits for in-flight rounds to finish.
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	states := make([]*linkState, 0, len(m.links))
	for _, ls := range m.links {
		states = append(states, ls)
	}
	m.links = make(map[string]*linkState)
	m.mu.Unlock()
	for _, ls := range states {
		ls.shutdown()
	}
	m.wg.Wait()
}

func (m *Mesh) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf("mesh: "+format, args...)
	}
}

// matches reports whether a database path is covered by the link's glob.
func matches(glob, dbPath string) bool {
	if glob == "" || glob == "*" {
		return true
	}
	if ok, _ := path.Match(glob, dbPath); ok {
		return true
	}
	ok, _ := path.Match(glob, path.Base(dbPath))
	return ok
}

// cursorName derives the replication-history peer name for a link and
// database. It folds in the link name and a hash of the selection formula:
// two links to the same peer keep independent cursors, and editing a
// link's formula resets its cursors so the new selection re-evaluates
// history (the widened-formula backfill in package repl depends on this).
func cursorName(l Link, dbPath string) string {
	h := fnv.New32a()
	h.Write([]byte(l.Formula))
	return fmt.Sprintf("mesh/%s!!%s!!%s#%08x", l.Name, l.Peer, dbPath, h.Sum32())
}
