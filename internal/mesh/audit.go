package mesh

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/core"
	"repro/internal/nsf"
)

// Convergence audit: two replicas have converged exactly when their
// document-class note sets carry identical (UNID, Seq, SeqTime) triples.
// Deletion stubs and selection stubs are part of the set — a selection
// stub shares the OID of the version it withholds, which is what makes
// selective and full replicas fingerprint identically (see package repl).
// Flags are deliberately excluded: a replica holding the live content and
// one holding its selection stub agree. Bookkeeping notes (class
// ClassReplFormula: replication cursors, unread tables) never replicate
// and are excluded.

// Fingerprint summarizes one replica's convergence-relevant state.
type Fingerprint struct {
	// Digest is the hex SHA-256 over the sorted (UNID, Seq, SeqTime)
	// triples of all document-class notes, stubs included.
	Digest string
	// Notes is the number of triples digested.
	Notes int
	// Live counts non-stub documents.
	Live int
	// Conflicts counts conflict documents (a converged mesh that never
	// raced has zero).
	Conflicts int
}

// FingerprintDB computes a database's convergence fingerprint.
func FingerprintDB(db *core.Database) (Fingerprint, error) {
	var fp Fingerprint
	var triples [][28]byte
	err := db.ScanAll(func(n *nsf.Note) bool {
		if n.Class != nsf.ClassDocument {
			return true
		}
		var t [28]byte
		copy(t[:16], n.OID.UNID[:])
		binary.LittleEndian.PutUint32(t[16:], n.OID.Seq)
		binary.LittleEndian.PutUint64(t[20:], uint64(n.OID.SeqTime))
		triples = append(triples, t)
		if !n.IsStub() {
			fp.Live++
		}
		if n.IsConflict() {
			fp.Conflicts++
		}
		return true
	})
	if err != nil {
		return fp, err
	}
	sort.Slice(triples, func(i, j int) bool {
		a, b := triples[i], triples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	h := sha256.New()
	for _, t := range triples {
		h.Write(t[:])
	}
	fp.Notes = len(triples)
	fp.Digest = hex.EncodeToString(h.Sum(nil))
	return fp, nil
}

// Audit is the result of fingerprinting a set of replicas.
type Audit struct {
	// Fingerprints maps replica label -> fingerprint.
	Fingerprints map[string]Fingerprint
	// Converged reports whether every fingerprint digest is identical.
	Converged bool
	// Conflicts is the total conflict-document count across replicas.
	Conflicts int
}

// AuditConvergence fingerprints each replica and reports whether they have
// all converged to the same (UNID, Seq, SeqTime) set.
func AuditConvergence(replicas map[string]*core.Database) (Audit, error) {
	a := Audit{Fingerprints: make(map[string]Fingerprint, len(replicas)), Converged: true}
	first := ""
	for label, db := range replicas {
		fp, err := FingerprintDB(db)
		if err != nil {
			return a, err
		}
		a.Fingerprints[label] = fp
		a.Conflicts += fp.Conflicts
		if first == "" {
			first = fp.Digest
		} else if fp.Digest != first {
			a.Converged = false
		}
	}
	return a, nil
}
