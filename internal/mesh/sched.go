package mesh

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/repl"
	"repro/internal/retry"
)

// linkState is one scheduled link: its definition, its kick channel (hot
// triggers, RunNow), and its counters.
type linkState struct {
	link Link
	kick chan struct{}
	stop chan struct{}

	mu       sync.Mutex
	stopped  bool
	triggers map[string]*repl.ChangeTrigger // by db path
	rounds   uint64
	failures uint64
	consec   int
	brokenAt time.Time // breaker open since; zero when closed
	lastOK   time.Time
	skipped  uint64
	notesIn  uint64
	notesOut uint64
	bytesIn  uint64
	bytesOut uint64
	lastNote string
	halfOpen bool
}

// shutdown stops the link's scheduler goroutine and detaches its
// changefeed triggers.
func (ls *linkState) shutdown() {
	ls.mu.Lock()
	if ls.stopped {
		ls.mu.Unlock()
		return
	}
	ls.stopped = true
	triggers := ls.triggers
	ls.triggers = nil
	ls.mu.Unlock()
	close(ls.stop)
	for _, tr := range triggers {
		tr.Stop()
	}
}

func (ls *linkState) status() LinkStatus {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	st := LinkStatus{
		Link:        ls.link,
		Rounds:      ls.rounds,
		Failures:    ls.failures,
		ConsecFails: ls.consec,
		BreakerOpen: !ls.brokenAt.IsZero(),
		SkippedDBs:  ls.skipped,
		NotesIn:     ls.notesIn,
		NotesOut:    ls.notesOut,
		BytesIn:     ls.bytesIn,
		BytesOut:    ls.bytesOut,
		Note:        ls.lastNote,
	}
	if !ls.lastOK.IsZero() {
		st.Lag = time.Since(ls.lastOK)
	}
	return st
}

// run is the per-link scheduler loop: wait out the interval (with jitter)
// or a kick, check admission and the breaker, run one round, update the
// backoff state.
func (m *Mesh) run(ls *linkState) {
	defer m.wg.Done()
	// Deterministic per-link jitter source: links with the same interval
	// de-phase from each other without global coordination.
	h := fnv.New64a()
	h.Write([]byte(ls.link.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	if ls.link.Class == Hot {
		m.attachTriggers(ls)
	}
	for {
		timer := time.NewTimer(m.nextDelay(ls, rng))
		select {
		case <-ls.stop:
			timer.Stop()
			return
		case <-ls.kick:
			timer.Stop()
		case <-timer.C:
		}
		if !m.breakerAllows(ls) {
			continue
		}
		if !m.opts.Node.Admitted() {
			ls.mu.Lock()
			ls.lastNote = "held: node draining"
			ls.mu.Unlock()
			continue
		}
		if ls.link.Class == Hot {
			m.attachTriggers(ls) // pick up databases created since last round
		}
		err := m.round(ls)
		m.settle(ls, err)
	}
}

// nextDelay computes how long to sleep before the next unsolicited round:
// the link interval with up to 25% of deterministic jitter (anti-entropy
// rounds across the mesh de-phase), stretched by the failure backoff, and
// floored at the breaker cooldown while the breaker is open.
func (m *Mesh) nextDelay(ls *linkState, rng *rand.Rand) time.Duration {
	ls.mu.Lock()
	interval := ls.link.Interval
	consec := ls.consec
	broken := !ls.brokenAt.IsZero()
	cooldown := m.cooldown(ls.link)
	ls.mu.Unlock()
	d := interval
	if consec > 0 && !broken {
		// Exponential backoff below the breaker threshold, capped at the
		// cooldown: 1 failure doubles the wait, 2 quadruple it.
		d = retry.Exp(interval, consec, cooldown)
	}
	if broken {
		d = cooldown / 4 // poll the breaker clock, not the peer
	}
	if d <= 0 {
		d = m.opts.Interval
	}
	// One-sided jitter: rounds never fire early (minimum spacing holds),
	// but peers sharing an interval de-phase.
	return retry.JitterUp(rng, d, 0.25)
}

// breakerAllows reports whether a round may run now. An open breaker
// swallows rounds until the cooldown elapses, then allows exactly one
// half-open probe; the probe's outcome (settle) closes or re-opens it.
func (m *Mesh) breakerAllows(ls *linkState) bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.brokenAt.IsZero() {
		return true
	}
	if time.Since(ls.brokenAt) < m.cooldown(ls.link) {
		ls.lastNote = "breaker open"
		return false
	}
	if ls.halfOpen {
		return false // a probe is already in flight
	}
	ls.halfOpen = true
	return true
}

// settle folds a round's outcome into the link's backoff and breaker state.
func (m *Mesh) settle(ls *linkState, err error) {
	ls.mu.Lock()
	ls.rounds++
	ls.halfOpen = false
	if err == nil {
		ls.consec = 0
		ls.brokenAt = time.Time{}
		ls.lastOK = time.Now()
		ls.lastNote = ""
		ls.mu.Unlock()
		return
	}
	ls.failures++
	ls.consec++
	ls.lastNote = err.Error()
	tripped := false
	if ls.consec >= m.opts.BreakerAfter {
		if ls.brokenAt.IsZero() {
			tripped = true
		}
		ls.brokenAt = time.Now()
	}
	name := ls.link.Name
	ls.mu.Unlock()
	if tripped {
		m.logf("link %s: breaker open after %d consecutive failures: %v", name, m.opts.BreakerAfter, err)
	} else {
		m.logf("link %s: round failed: %v", name, err)
	}
}

// attachTriggers wires a hot link's kick channel to the changefeed of every
// covered local database that does not have a trigger yet. Each trigger is
// debounced per link, so a write burst costs one round; trigger firings
// are forwarded into the kick channel (capacity one — firings during an
// in-flight round coalesce into a single follow-up).
func (m *Mesh) attachTriggers(ls *linkState) {
	for _, p := range m.opts.Node.Paths() {
		if !matches(ls.link.Glob, p) {
			continue
		}
		ls.mu.Lock()
		if ls.stopped || ls.triggers[p] != nil {
			ls.mu.Unlock()
			continue
		}
		ls.mu.Unlock()
		db, err := m.opts.Node.Open(p)
		if err != nil {
			continue
		}
		tr := repl.NewChangeTrigger(db, ls.link.Debounce)
		ls.mu.Lock()
		if ls.stopped {
			ls.mu.Unlock()
			tr.Stop()
			return
		}
		if ls.triggers == nil {
			ls.triggers = make(map[string]*repl.ChangeTrigger)
		}
		ls.triggers[p] = tr
		ls.mu.Unlock()
		m.wg.Add(1)
		go func(tr *repl.ChangeTrigger) {
			defer m.wg.Done()
			for {
				select {
				case <-ls.stop:
					return
				case <-tr.C():
					select {
					case ls.kick <- struct{}{}:
					default:
					}
				}
			}
		}(tr)
	}
}

// round runs one replication round over every database the link covers:
// dial the peer once, then replicate each matching local database against
// the peer's same-path database. A replica-ID mismatch (the peer holds an
// unrelated database at that path) is counted and skipped; any other error
// fails the round — the remaining databases wait for the retry, which is
// what the backoff ladder is for.
func (m *Mesh) round(ls *linkState) error {
	ls.mu.Lock()
	link := ls.link
	ls.mu.Unlock()
	sess, err := m.opts.Dialer.Dial(link.Peer)
	if err != nil {
		return err
	}
	defer sess.Close()
	for _, p := range m.opts.Node.Paths() {
		if !matches(link.Glob, p) {
			continue
		}
		db, err := m.opts.Node.Open(p)
		if err != nil {
			return err
		}
		peerDB, err := sess.Open(p)
		if err != nil {
			return err
		}
		remoteReplica, err := peerDB.ReplicaID()
		if err != nil {
			return err
		}
		if remoteReplica != db.ReplicaID() {
			ls.mu.Lock()
			ls.skipped++
			ls.mu.Unlock()
			continue
		}
		opts := repl.Options{
			PeerName: cursorName(link, p),
			Formula:  link.Formula,
			Apply:    m.opts.Apply,
			PullOnly: link.Direction == Pull,
			PushOnly: link.Direction == Push,
		}
		if err := opts.Prepare(); err != nil {
			return err
		}
		stats, err := repl.Replicate(db, peerDB, opts)
		ls.mu.Lock()
		ls.notesIn += uint64(stats.NotesFetched)
		ls.notesOut += uint64(stats.NotesSent)
		ls.bytesIn += uint64(stats.BytesIn)
		ls.bytesOut += uint64(stats.BytesOut)
		ls.mu.Unlock()
		if err != nil {
			return err
		}
		if stats.Pull.Total()+stats.Push.Total() > 0 {
			m.logf("link %s: %s: %s", link.Name, p, stats)
		}
	}
	return nil
}
