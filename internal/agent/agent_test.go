package agent

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
)

func openDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.Open(filepath.Join(t.TempDir(), "agents.nsf"), core.Options{Title: "agents"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func task(db *core.Database, t *testing.T, subject string, priority float64) *nsf.Note {
	t.Helper()
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "Task")
	n.SetText("Subject", subject)
	n.SetNumber("Priority", priority)
	n.SetText("Status", "new")
	if err := db.Session("admin").Create(n); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInvokedAgentModifiesSelectedDocs(t *testing.T) {
	db := openDB(t)
	m, err := NewManager(db)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("escalate", "admin", OnInvoke,
		`SELECT Priority >= 5`,
		`FIELD Status := "escalated"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(a); err != nil {
		t.Fatal(err)
	}
	low := task(db, t, "low", 1)
	high := task(db, t, "high", 9)
	stats, err := m.Run("escalate")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Examined != 2 || stats.Selected != 1 || stats.Modified != 1 {
		t.Errorf("stats = %+v", stats)
	}
	got, _ := db.Session("admin").Get(high.OID.UNID)
	if got.Text("Status") != "escalated" {
		t.Errorf("high status = %q", got.Text("Status"))
	}
	got, _ = db.Session("admin").Get(low.OID.UNID)
	if got.Text("Status") != "new" {
		t.Errorf("low status = %q", got.Text("Status"))
	}
	// Idempotent: second run selects but modifies nothing.
	stats, _ = m.Run("escalate")
	if stats.Modified != 0 {
		t.Errorf("second run modified %d", stats.Modified)
	}
}

func TestSaveTriggeredAgent(t *testing.T) {
	db := openDB(t)
	m, err := NewManager(db)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New("stamp", "admin", OnSave,
		`SELECT Form = "Task"`,
		`FIELD Stamped := "yes"`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(a); err != nil {
		t.Fatal(err)
	}
	n := task(db, t, "auto", 1)
	db.Refresh() // save triggers run on the changefeed, not the writer
	got, _ := db.Session("admin").Get(n.OID.UNID)
	if got.Text("Stamped") != "yes" {
		t.Errorf("save trigger did not run: Stamped = %q", got.Text("Stamped"))
	}
	// The agent's own save must not loop: the doc has exactly seq 2
	// (create + one agent save).
	if got.OID.Seq != 2 {
		t.Errorf("seq = %d, want 2 (no agent feedback loop)", got.OID.Seq)
	}
	// A non-matching doc is untouched.
	other := nsf.NewNote(nsf.ClassDocument)
	other.SetText("Form", "Memo")
	db.Session("admin").Create(other)
	db.Refresh()
	got, _ = db.Session("admin").Get(other.OID.UNID)
	if got.Has("Stamped") {
		t.Error("agent ran on unselected doc")
	}
}

func TestAgentsPersistAsDesignNotes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "agents.nsf")
	db, err := core.Open(path, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewManager(db)
	a, _ := New("keeper", "admin", OnInvoke, "SELECT @All", `FIELD Seen := "1"`)
	if err := m.Add(a); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := core.Open(path, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	m2, err := NewManager(db2)
	if err != nil {
		t.Fatal(err)
	}
	agents := m2.Agents()
	if len(agents) != 1 || agents[0].Name != "keeper" {
		t.Fatalf("agents after reopen = %v", agents)
	}
	// And it still runs.
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "X")
	db2.Session("admin").Create(n)
	if _, err := m2.Run("keeper"); err != nil {
		t.Fatalf("Run after reopen: %v", err)
	}
	got, _ := db2.Session("admin").Get(n.OID.UNID)
	if got.Text("Seen") != "1" {
		t.Error("reloaded agent did not act")
	}
}

func TestRunUnknownAgent(t *testing.T) {
	db := openDB(t)
	m, _ := NewManager(db)
	if _, err := m.Run("ghost"); err == nil {
		t.Error("unknown agent ran")
	}
}

func TestAgentComputedFields(t *testing.T) {
	db := openDB(t)
	m, _ := NewManager(db)
	a, err := New("summarize", "admin", OnInvoke,
		`SELECT @All`,
		`FIELD Summary := @Left(Subject; 3) + "… (" + @Text(@Length(Subject)) + " chars)"`)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(a)
	n := task(db, t, "abcdefgh", 1)
	if _, err := m.Run("summarize"); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Session("admin").Get(n.OID.UNID)
	if got.Text("Summary") != "abc… (8 chars)" {
		t.Errorf("Summary = %q", got.Text("Summary"))
	}
}
