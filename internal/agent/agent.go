// Package agent implements Notes agents: formula programs that run against
// selected documents, either on a schedule (or explicit invocation) or
// triggered when documents are saved. Agents persist as design notes so
// they replicate with the database.
package agent

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/nsf"
)

// Trigger selects when an agent runs.
type Trigger int

// Agent triggers.
const (
	// OnInvoke agents run when RunAgent is called (or on the server's
	// schedule).
	OnInvoke Trigger = iota
	// OnSave agents run against each document as it is saved.
	OnSave
)

// Agent is a compiled agent.
type Agent struct {
	Name string
	// Signer is the user whose rights the agent runs with.
	Signer  string
	Trigger Trigger
	// Selection restricts which documents the agent acts on.
	Selection *formula.Formula
	// Action is evaluated against each selected document; FIELD assignments
	// modify it, and the document is saved if anything changed.
	Action *formula.Formula
}

// New compiles an agent from formula sources.
func New(name, signer string, trigger Trigger, selection, action string) (*Agent, error) {
	sel, err := formula.Compile(selection)
	if err != nil {
		return nil, fmt.Errorf("agent %s: selection: %w", name, err)
	}
	act, err := formula.Compile(action)
	if err != nil {
		return nil, fmt.Errorf("agent %s: action: %w", name, err)
	}
	return &Agent{Name: name, Signer: signer, Trigger: trigger, Selection: sel, Action: act}, nil
}

// Agent design note items.
const (
	itemName      = "$AgentName"
	itemSigner    = "$AgentSigner"
	itemTrigger   = "$AgentTrigger"
	itemSelection = "$AgentSelection"
	itemAction    = "$AgentAction"
)

// ToNote serializes the agent into a design note.
func (a *Agent) ToNote(n *nsf.Note) {
	n.Class = nsf.ClassAgent
	n.SetText(itemName, a.Name)
	n.SetText(itemSigner, a.Signer)
	n.SetNumber(itemTrigger, float64(a.Trigger))
	n.SetText(itemSelection, a.Selection.Source())
	n.SetText(itemAction, a.Action.Source())
}

// FromNote reconstructs an agent from its design note.
func FromNote(n *nsf.Note) (*Agent, error) {
	return New(
		n.Text(itemName),
		n.Text(itemSigner),
		Trigger(int(n.Number(itemTrigger))),
		n.Text(itemSelection),
		n.Text(itemAction),
	)
}

// Manager runs a database's agents. It is safe for concurrent use.
type Manager struct {
	db *core.Database

	mu     sync.Mutex
	agents []*Agent
	// inflight guards against save-triggered agents re-triggering
	// themselves through their own saves.
	inflight map[nsf.UNID]bool
}

// NewManager creates a manager, loads agents persisted as design notes, and
// hooks save-triggered agents into the database's change stream.
func NewManager(db *core.Database) (*Manager, error) {
	m := &Manager{db: db, inflight: make(map[nsf.UNID]bool)}
	var loadErr error
	err := db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassAgent && !n.IsStub() {
			a, err := FromNote(n)
			if err != nil {
				loadErr = err
				return false
			}
			m.agents = append(m.agents, a)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if loadErr != nil {
		return nil, loadErr
	}
	db.OnChange(m.onSave)
	return m, nil
}

// Add registers an agent and persists it as a design note.
func (m *Manager) Add(a *Agent) error {
	n := nsf.NewNote(nsf.ClassAgent)
	a.ToNote(n)
	sess := m.db.Session(a.Signer)
	if !sess.Identity().CanDesign() {
		return fmt.Errorf("agent: %s may not add agents", a.Signer)
	}
	// Design notes go through the raw path (Create only handles documents).
	now := m.db.Clock().Now()
	n.OID.Seq = 1
	n.OID.SeqTime = now
	n.Created = now
	if err := m.db.RawPut(n); err != nil {
		return err
	}
	m.mu.Lock()
	m.agents = append(m.agents, a)
	m.mu.Unlock()
	return nil
}

// Agents returns the registered agents.
func (m *Manager) Agents() []*Agent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Agent(nil), m.agents...)
}

// RunStats reports one agent run.
type RunStats struct {
	Examined int
	Selected int
	Modified int
}

// Run executes an OnInvoke agent over all documents it selects.
func (m *Manager) Run(name string) (RunStats, error) {
	var target *Agent
	m.mu.Lock()
	for _, a := range m.agents {
		if a.Name == name {
			target = a
			break
		}
	}
	m.mu.Unlock()
	if target == nil {
		return RunStats{}, fmt.Errorf("agent: no agent %q", name)
	}
	var stats RunStats
	sess := m.db.Session(target.Signer)
	var docs []*nsf.Note
	err := sess.All(func(n *nsf.Note) bool {
		stats.Examined++
		docs = append(docs, n)
		return true
	})
	if err != nil {
		return stats, err
	}
	for _, n := range docs {
		changed, selected, err := m.applyAgent(target, sess, n)
		if err != nil {
			return stats, err
		}
		if selected {
			stats.Selected++
		}
		if changed {
			stats.Modified++
		}
	}
	return stats, nil
}

// applyAgent runs one agent against one document.
func (m *Manager) applyAgent(a *Agent, sess *core.Session, n *nsf.Note) (changed, selected bool, err error) {
	ok, err := a.Selection.Selects(n, &formula.Context{UserName: a.Signer, Now: m.db.Clock().Now})
	if err != nil || !ok {
		return false, false, err
	}
	work := n.Clone()
	if _, err := a.Action.Eval(&formula.Context{Note: work, UserName: a.Signer, Now: m.db.Clock().Now}); err != nil {
		return false, true, fmt.Errorf("agent %s: action: %w", a.Name, err)
	}
	if len(work.ChangedItems(n)) == 0 {
		return false, true, nil
	}
	m.mu.Lock()
	m.inflight[n.OID.UNID] = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.inflight, n.OID.UNID)
		m.mu.Unlock()
	}()
	if err := sess.Update(work); err != nil {
		return false, true, err
	}
	return true, true, nil
}

// onSave runs save-triggered agents against a just-saved document.
func (m *Manager) onSave(n *nsf.Note) {
	if n.IsStub() || n.Class != nsf.ClassDocument {
		return
	}
	m.mu.Lock()
	if m.inflight[n.OID.UNID] {
		m.mu.Unlock()
		return
	}
	agents := append([]*Agent(nil), m.agents...)
	m.mu.Unlock()
	for _, a := range agents {
		if a.Trigger != OnSave {
			continue
		}
		sess := m.db.Session(a.Signer)
		// Errors in save triggers are swallowed by design: a broken agent
		// must not block saves (Notes logs them; we drop them).
		_, _, _ = m.applyAgent(a, sess, n)
	}
}
