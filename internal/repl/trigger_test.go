package repl

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nsf"
)

func openTriggerDB(t *testing.T) *core.Database {
	t.Helper()
	db, err := core.Open(filepath.Join(t.TempDir(), "trig.nsf"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func expectFire(t *testing.T, tr *ChangeTrigger, what string) {
	t.Helper()
	select {
	case <-tr.C():
	case <-time.After(5 * time.Second):
		t.Fatalf("trigger did not fire: %s", what)
	}
}

func expectQuiet(t *testing.T, db *core.Database, tr *ChangeTrigger, what string) {
	t.Helper()
	db.Refresh() // subscriber has processed everything committed so far
	time.Sleep(20 * time.Millisecond)
	select {
	case <-tr.C():
		t.Fatalf("trigger fired: %s", what)
	default:
	}
}

func TestChangeTriggerFiresOnWrites(t *testing.T) {
	db := openTriggerDB(t)
	tr := NewChangeTrigger(db, 0)
	defer tr.Stop()
	s := db.Session("admin")
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "hello")
	if err := s.Create(n); err != nil {
		t.Fatal(err)
	}
	expectFire(t, tr, "after a document create")
}

func TestChangeTriggerCoalescesBursts(t *testing.T) {
	db := openTriggerDB(t)
	tr := NewChangeTrigger(db, 10*time.Millisecond)
	defer tr.Stop()
	s := db.Session("admin")
	for i := 0; i < 50; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("burst %d", i))
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	expectFire(t, tr, "after a write burst")
	// The whole burst coalesces into at most one extra pending signal; after
	// draining it the channel must go quiet.
	select {
	case <-tr.C():
	default:
	}
	expectQuiet(t, db, tr, "burst produced more than two signals")
}

// TestChangeTriggerIgnoresReplicationBookkeeping is the no-self-retrigger
// property: the history note saved at the end of a replication run (class
// ClassReplFormula) must not wake the replication loop again.
func TestChangeTriggerIgnoresReplicationBookkeeping(t *testing.T) {
	db := openTriggerDB(t)
	tr := NewChangeTrigger(db, 0)
	defer tr.Stop()
	h := &nsf.Note{
		OID:   nsf.OID{UNID: historyUNID("peer"), Seq: 1, SeqTime: db.Clock().Now()},
		Class: nsf.ClassReplFormula,
	}
	h.SetTime("LastPull", db.Clock().Now())
	if err := db.RawPut(h); err != nil {
		t.Fatal(err)
	}
	expectQuiet(t, db, tr, "history save retriggered replication")
}

// TestChangeTriggerKick: an external "replicate now" signal (e.g. a cluster
// pusher dropping an event) fires immediately, bypassing the debounce
// window, and is silenced by Stop like any other source.
func TestChangeTriggerKick(t *testing.T) {
	db := openTriggerDB(t)
	tr := NewChangeTrigger(db, time.Hour) // debounce would swallow any write
	defer tr.Stop()
	tr.Kick()
	expectFire(t, tr, "after an external kick")
	tr.Stop()
	tr.Kick()
	expectQuiet(t, db, tr, "stopped trigger honored a kick")
}

func TestChangeTriggerStop(t *testing.T) {
	db := openTriggerDB(t)
	tr := NewChangeTrigger(db, 0)
	tr.Stop()
	s := db.Session("admin")
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "after stop")
	if err := s.Create(n); err != nil {
		t.Fatal(err)
	}
	expectQuiet(t, db, tr, "stopped trigger fired")
}

func TestChangeTriggerStopUnsubscribes(t *testing.T) {
	db := openTriggerDB(t)
	before := len(db.Stats().Feed.Subscribers)
	tr := NewChangeTrigger(db, 0)
	if got := len(db.Stats().Feed.Subscribers); got != before+1 {
		t.Fatalf("subscribers after NewChangeTrigger = %d, want %d", got, before+1)
	}
	tr.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for len(db.Stats().Feed.Subscribers) != before {
		if time.Now().After(deadline) {
			t.Fatalf("trigger subscription still registered after Stop: %+v",
				db.Stats().Feed.Subscribers)
		}
		time.Sleep(time.Millisecond)
	}
	tr.Stop() // idempotent
}
