package repl

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
)

// pairedDBs creates two empty replicas of the same database.
func pairedDBs(t *testing.T) (*core.Database, *core.Database) {
	t.Helper()
	replica := nsf.NewReplicaID()
	a, err := core.Open(filepath.Join(t.TempDir(), "a.nsf"), core.Options{Title: "a", ReplicaID: replica})
	if err != nil {
		t.Fatalf("Open a: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := core.Open(filepath.Join(t.TempDir(), "b.nsf"), core.Options{Title: "b", ReplicaID: replica})
	if err != nil {
		t.Fatalf("Open b: %v", err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

func createDoc(t *testing.T, db *core.Database, subject string) *nsf.Note {
	t.Helper()
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetWithFlags("Subject", nsf.TextValue(subject), nsf.FlagSummary)
	n.SetText("Body", "body of "+subject)
	if err := db.Session("user").Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	return n
}

// sync replicates a<->b both ways and returns the stats of the session.
func sync(t *testing.T, a, b *core.Database, opts Options) Stats {
	t.Helper()
	if opts.PeerName == "" {
		opts.PeerName = "peer-b"
	}
	st, err := Replicate(a, &LocalPeer{DB: b, Opts: opts.Apply}, opts)
	if err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	return st
}

// docSubjects collects subjects of all live documents.
func docSubjects(t *testing.T, db *core.Database) map[string]int {
	t.Helper()
	out := make(map[string]int)
	err := db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() {
			out[n.Text("Subject")]++
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	return out
}

func TestReplicaIDMismatchRejected(t *testing.T) {
	a, err := core.Open(filepath.Join(t.TempDir(), "a.nsf"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := core.Open(filepath.Join(t.TempDir(), "b.nsf"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := Replicate(a, &LocalPeer{DB: b}, Options{}); err == nil {
		t.Fatal("replication between unrelated databases succeeded")
	}
}

func TestBasicBidirectionalSync(t *testing.T) {
	a, b := pairedDBs(t)
	createDoc(t, a, "from a1")
	createDoc(t, a, "from a2")
	createDoc(t, b, "from b1")
	st := sync(t, a, b, Options{})
	if st.Pull.Added != 1 || st.Push.Added != 2 {
		t.Errorf("stats = %v", st)
	}
	want := map[string]int{"from a1": 1, "from a2": 1, "from b1": 1}
	for _, db := range []*core.Database{a, b} {
		got := docSubjects(t, db)
		for k, v := range want {
			if got[k] != v {
				t.Errorf("db %s: docs = %v, want %v", db.Title(), got, want)
			}
		}
	}
}

func TestIncrementalUsesHistory(t *testing.T) {
	a, b := pairedDBs(t)
	for i := 0; i < 20; i++ {
		createDoc(t, a, fmt.Sprintf("doc %d", i))
	}
	st := sync(t, a, b, Options{})
	if st.Push.Added != 20 {
		t.Fatalf("first sync pushed %d", st.Push.Added)
	}
	// Second sync with nothing changed must transfer (almost) nothing.
	st = sync(t, a, b, Options{})
	if st.NotesSent != 0 || st.NotesFetched != 0 {
		t.Errorf("idle sync transferred notes: %v", st)
	}
	// One update → exactly one note moves.
	n, _ := a.Session("user").Get(firstUNID(t, a))
	n.SetText("Body", "updated")
	if err := a.Session("user").Update(n); err != nil {
		t.Fatal(err)
	}
	st = sync(t, a, b, Options{})
	if st.Push.Updated != 1 || st.NotesSent != 1 {
		t.Errorf("after one update: %v", st)
	}
}

func firstUNID(t *testing.T, db *core.Database) nsf.UNID {
	t.Helper()
	var u nsf.UNID
	found := false
	db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() {
			u = n.OID.UNID
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("no documents")
	}
	return u
}

func TestDeletionStubsReplicate(t *testing.T) {
	a, b := pairedDBs(t)
	n := createDoc(t, a, "doomed")
	sync(t, a, b, Options{})
	if _, err := b.Session("user").Get(n.OID.UNID); err != nil {
		t.Fatalf("doc not at b: %v", err)
	}
	// Delete at a; the stub must propagate and delete at b.
	if err := a.Session("user").Delete(n.OID.UNID); err != nil {
		t.Fatal(err)
	}
	st := sync(t, a, b, Options{})
	if st.Push.Deleted != 1 {
		t.Errorf("stats = %v", st)
	}
	if _, err := b.Session("user").Get(n.OID.UNID); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("doc still live at b: %v", err)
	}
	stub, err := b.RawGet(n.OID.UNID)
	if err != nil || !stub.IsStub() {
		t.Errorf("no stub at b: %v", err)
	}
}

func TestUpdateWinsByOID(t *testing.T) {
	a, b := pairedDBs(t)
	n := createDoc(t, a, "versioned")
	sync(t, a, b, Options{})
	// Two sequential edits at b (seq 2 and 3); a still has seq 1.
	sb := b.Session("user")
	nb, _ := sb.Get(n.OID.UNID)
	nb.SetText("Body", "edit 1")
	sb.Update(nb)
	nb.SetText("Body", "edit 2")
	sb.Update(nb)
	sync(t, a, b, Options{})
	na, _ := a.Session("user").Get(n.OID.UNID)
	if na.Text("Body") != "edit 2" || na.OID.Seq != 3 {
		t.Errorf("a has body %q seq %d", na.Text("Body"), na.OID.Seq)
	}
	got := docSubjects(t, a)
	if got["versioned"] != 1 {
		t.Errorf("duplicate or missing docs: %v", got)
	}
}

func TestConcurrentEditMakesConflictDoc(t *testing.T) {
	a, b := pairedDBs(t)
	n := createDoc(t, a, "contested")
	sync(t, a, b, Options{})
	// Concurrent edits on both replicas: both reach seq 2.
	na, _ := a.Session("user").Get(n.OID.UNID)
	na.SetText("Body", "a's edit")
	a.Session("user").Update(na)
	nb, _ := b.Session("user").Get(n.OID.UNID)
	nb.SetText("Body", "b's edit")
	b.Session("user").Update(nb)

	st := sync(t, a, b, Options{})
	if st.Pull.Conflicts+st.Push.Conflicts == 0 {
		t.Fatalf("no conflict detected: %v", st)
	}
	sync(t, a, b, Options{})
	// Both replicas converge: same winner body, exactly one conflict doc.
	checkConverged(t, a, b)
	for _, db := range []*core.Database{a, b} {
		conflicts := 0
		winnerBody := ""
		db.ScanAll(func(x *nsf.Note) bool {
			if x.IsConflict() {
				conflicts++
			} else if x.OID.UNID == n.OID.UNID {
				winnerBody = x.Text("Body")
			}
			return true
		})
		if conflicts != 1 {
			t.Errorf("db %s: %d conflict docs, want 1", db.Title(), conflicts)
		}
		// The winner is whichever edit has the later sequence time.
		want := "a's edit"
		if nb.OID.SeqTime > na.OID.SeqTime {
			want = "b's edit"
		}
		if winnerBody != want {
			t.Errorf("db %s: winner body %q, want %q", db.Title(), winnerBody, want)
		}
	}
}

func TestFieldMergeResolvesDisjointEdits(t *testing.T) {
	a, b := pairedDBs(t)
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "merge me")
	n.SetText("Owner", "nobody")
	n.SetText("Status", "new")
	if err := a.Session("user").Create(n); err != nil {
		t.Fatal(err)
	}
	sync(t, a, b, Options{})
	// a edits Owner, b edits Status: disjoint item sets.
	na, _ := a.Session("user").Get(n.OID.UNID)
	na.SetText("Owner", "alice")
	a.Session("user").Update(na)
	nb, _ := b.Session("user").Get(n.OID.UNID)
	nb.SetText("Status", "done")
	b.Session("user").Update(nb)

	opts := Options{Apply: ApplyOptions{FieldMerge: true}}
	st := sync(t, a, b, opts)
	if st.Pull.Merged+st.Push.Merged == 0 {
		t.Fatalf("no merge happened: %v", st)
	}
	sync(t, a, b, opts)
	checkConverged(t, a, b)
	for _, db := range []*core.Database{a, b} {
		got, err := db.Session("user").Get(n.OID.UNID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.Text("Owner") != "alice" || got.Text("Status") != "done" {
			t.Errorf("db %s: merged doc = Owner %q Status %q",
				db.Title(), got.Text("Owner"), got.Text("Status"))
		}
		conflicts := 0
		db.ScanAll(func(x *nsf.Note) bool {
			if x.IsConflict() {
				conflicts++
			}
			return true
		})
		if conflicts != 0 {
			t.Errorf("db %s: %d conflict docs despite merge", db.Title(), conflicts)
		}
	}
}

func TestOverlappingEditsStillConflictUnderMerge(t *testing.T) {
	a, b := pairedDBs(t)
	n := createDoc(t, a, "overlap")
	sync(t, a, b, Options{})
	na, _ := a.Session("user").Get(n.OID.UNID)
	na.SetText("Body", "a wrote this")
	a.Session("user").Update(na)
	nb, _ := b.Session("user").Get(n.OID.UNID)
	nb.SetText("Body", "b wrote this")
	b.Session("user").Update(nb)
	opts := Options{Apply: ApplyOptions{FieldMerge: true}}
	st := sync(t, a, b, opts)
	if st.Pull.Conflicts+st.Push.Conflicts == 0 {
		t.Errorf("overlapping edits merged silently: %v", st)
	}
}

func TestDeleteWinsConflict(t *testing.T) {
	a, b := pairedDBs(t)
	n := createDoc(t, a, "delete vs edit")
	sync(t, a, b, Options{})
	// a deletes (stub seq 2); b edits (seq 2).
	a.Session("user").Delete(n.OID.UNID)
	nb, _ := b.Session("user").Get(n.OID.UNID)
	nb.SetText("Body", "still here?")
	b.Session("user").Update(nb)
	sync(t, a, b, Options{})
	sync(t, a, b, Options{})
	for _, db := range []*core.Database{a, b} {
		if _, err := db.Session("user").Get(n.OID.UNID); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("db %s: doc survived delete-vs-edit conflict: %v", db.Title(), err)
		}
		conflicts := 0
		db.ScanAll(func(x *nsf.Note) bool {
			if x.IsConflict() {
				conflicts++
			}
			return true
		})
		if conflicts != 0 {
			t.Errorf("db %s: delete conflict made %d conflict docs", db.Title(), conflicts)
		}
	}
}

func TestDeleteWinsEvenAgainstHigherSeq(t *testing.T) {
	a, b := pairedDBs(t)
	n := createDoc(t, a, "edited a lot offline")
	sync(t, a, b, Options{})
	// a deletes (stub seq 2); b edits twice (seq 3 > stub's 2).
	a.Session("user").Delete(n.OID.UNID)
	sb := b.Session("user")
	nb, _ := sb.Get(n.OID.UNID)
	nb.SetText("Body", "edit one")
	sb.Update(nb)
	nb.SetText("Body", "edit two")
	sb.Update(nb)
	sync(t, a, b, Options{})
	sync(t, a, b, Options{})
	for _, db := range []*core.Database{a, b} {
		if _, err := db.Session("user").Get(n.OID.UNID); !errors.Is(err, core.ErrNotFound) {
			t.Errorf("db %s: doc with higher seq beat the stub: %v", db.Title(), err)
		}
	}
	checkConverged(t, a, b)
}

func TestSelectiveReplication(t *testing.T) {
	a, b := pairedDBs(t)
	urgent := nsf.NewNote(nsf.ClassDocument)
	urgent.SetText("Subject", "urgent thing")
	urgent.SetNumber("Priority", 9)
	a.Session("user").Create(urgent)
	boring := nsf.NewNote(nsf.ClassDocument)
	boring.SetText("Subject", "boring thing")
	boring.SetNumber("Priority", 1)
	a.Session("user").Create(boring)

	sync(t, a, b, Options{Formula: "SELECT Priority > 5"})
	got := docSubjects(t, b)
	if got["urgent thing"] != 1 || got["boring thing"] != 0 {
		t.Errorf("selective replication at b: %v", got)
	}
}

func TestThreeWayConvergence(t *testing.T) {
	replica := nsf.NewReplicaID()
	dbs := make([]*core.Database, 3)
	for i := range dbs {
		db, err := core.Open(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.nsf", i)),
			core.Options{Title: fmt.Sprintf("r%d", i), ReplicaID: replica})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		dbs[i] = db
	}
	for i, db := range dbs {
		for j := 0; j < 5; j++ {
			createDoc(t, db, fmt.Sprintf("r%d-doc%d", i, j))
		}
	}
	// Ring replication, two rounds.
	for round := 0; round < 2; round++ {
		for i := range dbs {
			j := (i + 1) % len(dbs)
			_, err := Replicate(dbs[i], &LocalPeer{DB: dbs[j]},
				Options{PeerName: fmt.Sprintf("r%d", j)})
			if err != nil {
				t.Fatalf("Replicate: %v", err)
			}
		}
	}
	want := docSubjects(t, dbs[0])
	if len(want) != 15 {
		t.Fatalf("r0 has %d docs", len(want))
	}
	for i := 1; i < len(dbs); i++ {
		checkConverged(t, dbs[0], dbs[i])
	}
}

// checkConverged verifies two replicas hold identical note inventories
// (UNID -> OID and item values), ignoring replication bookkeeping.
func checkConverged(t *testing.T, a, b *core.Database) {
	t.Helper()
	snap := func(db *core.Database) map[nsf.UNID]string {
		out := make(map[nsf.UNID]string)
		db.ScanAll(func(n *nsf.Note) bool {
			if n.Class == nsf.ClassReplFormula {
				return true
			}
			fp := fmt.Sprintf("seq=%d st=%d del=%v", n.OID.Seq, n.OID.SeqTime, n.IsStub())
			for _, it := range n.Items {
				fp += "|" + it.Name + "=" + it.Value.String()
			}
			out[n.OID.UNID] = fp
			return true
		})
		return out
	}
	sa, sb := snap(a), snap(b)
	if len(sa) != len(sb) {
		t.Errorf("replicas diverge: %d vs %d notes", len(sa), len(sb))
	}
	for u, fa := range sa {
		if fb, ok := sb[u]; !ok {
			t.Errorf("note %s missing at %s", u, b.Title())
		} else if fa != fb {
			t.Errorf("note %s differs:\n a: %s\n b: %s", u, fa, fb)
		}
	}
}

func TestFullCopyBaseline(t *testing.T) {
	a, b := pairedDBs(t)
	for i := 0; i < 10; i++ {
		createDoc(t, a, fmt.Sprintf("doc %d", i))
	}
	st, err := FullCopy(b, &LocalPeer{DB: a})
	if err != nil {
		t.Fatalf("FullCopy: %v", err)
	}
	if st.Pull.Added != 10 {
		t.Errorf("FullCopy stats = %v", st)
	}
	// Running it again transfers everything again (that's the point of the
	// baseline) but changes nothing.
	st, err = FullCopy(b, &LocalPeer{DB: a})
	if err != nil {
		t.Fatal(err)
	}
	if st.NotesFetched != 10 {
		t.Errorf("baseline should refetch all notes, got %d", st.NotesFetched)
	}
	if st.Pull.Total() != 0 {
		t.Errorf("idempotent re-copy changed state: %v", st)
	}
}

func TestStubPurgeResurrection(t *testing.T) {
	// The documented Notes anomaly: if a stub is purged before an offline
	// replica syncs, the deleted document comes back.
	a, b := pairedDBs(t)
	n := createDoc(t, a, "lazarus")
	sync(t, a, b, Options{})
	a.Session("user").Delete(n.OID.UNID)
	// Purge the stub at a before b ever hears about the delete.
	purged, err := a.PurgeStubs(a.Clock().Now() + 1)
	if err != nil || purged != 1 {
		t.Fatalf("PurgeStubs = %d, %v", purged, err)
	}
	sync(t, a, b, Options{})
	// b still has the doc and pushes it back to a: resurrection.
	if _, err := a.Session("user").Get(n.OID.UNID); err != nil {
		t.Errorf("expected resurrection at a, got %v", err)
	}
}

func TestACLReplicates(t *testing.T) {
	a, b := pairedDBs(t)
	a.ACL().Set("alice", 6) // Manager
	a.ACL().SetDefault(2)   // Reader
	if err := a.SaveACL(nil); err != nil {
		t.Fatal(err)
	}
	sync(t, a, b, Options{})
	lv, _ := b.ACL().Access("alice", nil)
	if int(lv) != 6 {
		t.Errorf("alice level at b = %v", lv)
	}
	if int(b.ACL().Default()) != 2 {
		t.Errorf("default at b = %v", b.ACL().Default())
	}
}

func TestViewDesignReplicates(t *testing.T) {
	a, b := pairedDBs(t)
	createDoc(t, a, "indexed doc")
	if err := addSubjectView(a); err != nil {
		t.Fatal(err)
	}
	sync(t, a, b, Options{})
	ix, ok := b.View("by subject")
	if !ok {
		t.Fatalf("view did not replicate; b views = %v", b.ViewNames())
	}
	if ix.Len() != 1 {
		t.Errorf("replicated view has %d entries", ix.Len())
	}
}

func addSubjectView(db *core.Database) error {
	def, err := newSubjectDef()
	if err != nil {
		return err
	}
	return db.AddView(nil, def)
}
