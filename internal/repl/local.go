package repl

import (
	"repro/internal/core"
	"repro/internal/nsf"
)

// LocalPeer adapts an open database to the Peer interface, evaluating
// selective-replication formulas source-side and applying with the given
// options.
type LocalPeer struct {
	DB   *core.Database
	Opts ApplyOptions
}

var _ Peer = (*LocalPeer)(nil)

// ReplicaID implements Peer.
func (p *LocalPeer) ReplicaID() (nsf.ReplicaID, error) {
	return p.DB.ReplicaID(), nil
}

// Summaries implements Peer: version summaries of notes modified after
// since. Replication-bookkeeping notes never replicate; deletion stubs
// bypass the selective formula (deletes always propagate); documents
// outside the selection are advertised as selection stubs rather than
// silently withheld. The formula compile is memoized across sessions
// (CompileSelection), and a bad source returns a typed *FormulaError.
func (p *LocalPeer) Summaries(since nsf.Timestamp, formulaSrc string) ([]Summary, nsf.Timestamp, error) {
	sel, err := CompileSelection(formulaSrc)
	if err != nil {
		return nil, 0, err
	}
	// Take the cursor before scanning: a write that lands mid-scan may be
	// transferred twice, but never missed.
	now := p.DB.Clock().Now()
	var out []Summary
	var evalErr error
	err = p.DB.ScanModifiedSince(since, func(n *nsf.Note) bool {
		if n.Class == nsf.ClassReplFormula {
			return true
		}
		if sel != nil && !n.IsStub() && n.Class == nsf.ClassDocument {
			ok, err := sel.Selects(n, nil)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				out = append(out, selStubSummary(n))
				return true
			}
		}
		out = append(out, SummaryOf(n))
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	if evalErr != nil {
		return nil, 0, evalErr
	}
	return out, now, nil
}

// Fetch implements Peer.
func (p *LocalPeer) Fetch(unids []nsf.UNID) ([]*nsf.Note, error) {
	out := make([]*nsf.Note, 0, len(unids))
	for _, u := range unids {
		n, err := p.DB.RawGet(u)
		if err != nil {
			continue // vanished since the summary scan
		}
		out = append(out, n)
	}
	return out, nil
}

// Apply implements Peer.
func (p *LocalPeer) Apply(notes []*nsf.Note) (ApplyStats, error) {
	var st ApplyStats
	for _, n := range notes {
		s, err := ApplyNote(p.DB, n, p.Opts)
		if err != nil {
			return st, err
		}
		st.Add(s)
	}
	return st, nil
}
