package repl

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/fnv"
	gosync "sync" // the test package declares a helper named sync

	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/nsf"
)

// Options configure one replication session.
type Options struct {
	// PeerName identifies the remote instance for history bookkeeping
	// (e.g. a server name or file path). Required for incremental
	// replication; when empty, every session starts from time zero.
	PeerName string
	// Apply tunes local conflict handling.
	Apply ApplyOptions
	// Formula is a selective-replication formula source applied in both
	// directions (evaluated on whichever side holds the notes). Empty
	// replicates everything. Documents outside the selection travel as
	// selection stubs (identity only), never silently — see the package
	// comment. Call Prepare to compile and validate it once up front;
	// otherwise Replicate compiles it (cached) at session start and
	// returns a typed *FormulaError on a bad source.
	Formula string
	// compiled is the Prepare-validated form of Formula.
	compiled *formula.Formula
	// PullOnly disables the push phase.
	PullOnly bool
	// PushOnly disables the pull phase.
	PushOnly bool
	// Full ignores replication history and exchanges complete inventories;
	// used by the full-copy baseline experiment.
	Full bool
	// BatchSize bounds how many notes travel in one Fetch or Apply round
	// trip (default 128). Smaller batches bound frame sizes and shrink the
	// work lost when a flaky link severs mid-transfer: applied batches are
	// durable, and a retried session skips them via the OID rules.
	BatchSize int
}

// defaultBatchSize is the Fetch/Apply batch bound when Options.BatchSize
// is unset.
const defaultBatchSize = 128

func (o Options) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return defaultBatchSize
}

// history tracks the cursors of past sessions with a peer. It lives in a
// note of class ClassReplFormula, which never replicates (cursors are
// meaningful only to this instance).
type history struct {
	LastPull nsf.Timestamp // peer clock at the end of the last pull
	LastPush nsf.Timestamp // local clock at the end of the last push
}

func historyUNID(peerName string) nsf.UNID {
	sum := sha256.Sum256([]byte("replhistory:" + peerName))
	var u nsf.UNID
	copy(u[:], sum[:16])
	return u
}

func loadHistory(db *core.Database, peerName string) (history, error) {
	if peerName == "" {
		return history{}, nil
	}
	n, err := db.RawGet(historyUNID(peerName))
	if errors.Is(err, core.ErrNotFound) {
		return history{}, nil
	}
	if err != nil {
		return history{}, err
	}
	return history{
		LastPull: n.Time("LastPull"),
		LastPush: n.Time("LastPush"),
	}, nil
}

// histLocks serializes history read-modify-writes per (replica, peer).
// Overlapping sessions against the same peer are normal — the scheduler and
// a ChangeTrigger can both fire — and without serialization both would read
// the history note at Seq=N and hand-stamp Seq=N+1, writing duplicate
// sequence numbers into the note's version chain. Locks are striped by
// hash: a collision only over-serializes two unrelated saves, never
// under-serializes one.
var histLocks [64]gosync.Mutex

func histLock(db *core.Database, peerName string) *gosync.Mutex {
	hsh := fnv.New32a()
	r := db.ReplicaID()
	hsh.Write(r[:])
	hsh.Write([]byte(peerName))
	return &histLocks[hsh.Sum32()%uint32(len(histLocks))]
}

func saveHistory(db *core.Database, peerName string, h history) error {
	if peerName == "" {
		return nil
	}
	mu := histLock(db, peerName)
	mu.Lock()
	defer mu.Unlock()
	unid := historyUNID(peerName)
	n, err := db.RawGet(unid)
	if errors.Is(err, core.ErrNotFound) {
		n = &nsf.Note{
			OID:   nsf.OID{UNID: unid, Seq: 1, SeqTime: db.Clock().Now()},
			Class: nsf.ClassReplFormula,
		}
		err = nil
	}
	if err != nil {
		return err
	}
	n.SetText("Peer", peerName)
	n.SetTime("LastPull", h.LastPull)
	n.SetTime("LastPush", h.LastPush)
	n.OID.Seq++
	n.OID.SeqTime = db.Clock().Now()
	return db.RawPut(n)
}

// Replicate runs one replication session between the local database and a
// peer: pull remote changes, then push local ones. It returns transfer and
// outcome statistics.
//
// Sessions are resumable: a cursor only advances after its phase has been
// fully applied, and it is persisted the moment it advances — so a session
// severed mid-pull restarts from the old cursor, a session severed during
// push keeps its pull progress, and re-applying whatever did land before
// the sever is a no-op under the OID rules. Re-running a severed session
// therefore converges to exactly the state an unfailed session reaches.
func Replicate(local *core.Database, peer Peer, opts Options) (Stats, error) {
	var stats Stats
	// Validate the selection formula before any wire work: a bad formula is
	// a configuration error and surfaces as a typed *FormulaError here, at
	// session start, not mid-round. The compiled form is cached (or already
	// pinned by Prepare), so sessions never recompile it.
	if _, err := opts.selection(); err != nil {
		return stats, err
	}
	remoteReplica, err := peer.ReplicaID()
	if err != nil {
		return stats, err
	}
	if remoteReplica != local.ReplicaID() {
		return stats, fmt.Errorf("repl: replica ID mismatch: local %s, peer %s",
			local.ReplicaID(), remoteReplica)
	}
	h, err := loadHistory(local, opts.PeerName)
	if err != nil {
		return stats, err
	}
	if opts.Full {
		h = history{}
	}
	if !opts.PushOnly {
		peerNow, err := pull(local, peer, &stats, h.LastPull, opts)
		if err != nil {
			return stats, err
		}
		h.LastPull = peerNow
		// Persist the pull cursor now: a failure in the push phase must
		// not force the next session to re-pull everything.
		if !opts.Full {
			if err := saveHistory(local, opts.PeerName, h); err != nil {
				return stats, err
			}
		}
	}
	if !opts.PullOnly {
		localNow, err := push(local, peer, &stats, h.LastPush, opts)
		if err != nil {
			return stats, err
		}
		h.LastPush = localNow
		if !opts.Full {
			if err := saveHistory(local, opts.PeerName, h); err != nil {
				return stats, err
			}
		}
	}
	return stats, nil
}

// pull fetches remote changes since the cursor and applies them locally,
// in batches so a severed link loses at most one unapplied batch of
// transfer work. Stubs — real deletion stubs and selection stubs alike —
// are materialized from their summaries without a fetch round trip: a
// stub has no content beyond its identity, and a selection stub has no
// stored note on the source at all (the source holds the live version the
// link withholds).
func pull(local *core.Database, peer Peer, stats *Stats, since nsf.Timestamp, opts Options) (nsf.Timestamp, error) {
	sums, peerNow, err := peer.Summaries(since, opts.Formula)
	if err != nil {
		return 0, err
	}
	stats.SummariesIn += len(sums)
	stats.BytesIn += int64(len(sums)) * summaryWireBytes
	applyStub := func(s Summary) error {
		st, err := ApplyNote(local, StubFromSummary(s), opts.Apply)
		if err != nil {
			return err
		}
		stats.Pull.Add(st)
		return nil
	}
	var need []nsf.UNID
	for _, s := range sums {
		cur, err := local.RawGet(s.UNID)
		switch {
		case errors.Is(err, core.ErrNotFound):
			if s.Deleted {
				if err := applyStub(s); err != nil {
					return 0, err
				}
			} else {
				need = append(need, s.UNID)
			}
		case err != nil:
			return 0, err
		case cur.OID == s.OID():
			if cur.IsSelStub() && !s.Deleted {
				// Same version, but the local copy is a selection stub and
				// the peer now advertises it live (the link's formula was
				// widened): fetch the content back.
				need = append(need, s.UNID)
			} else {
				stats.Pull.Skipped++
			}
		case s.OID().Newer(cur.OID) || s.Seq == cur.OID.Seq:
			// Either the remote wins, or it is a potential conflict that
			// needs the full note to resolve.
			if s.Deleted {
				if err := applyStub(s); err != nil {
					return 0, err
				}
			} else {
				need = append(need, s.UNID)
			}
		default:
			stats.Pull.Skipped++
		}
	}
	batchSize := opts.batchSize()
	for len(need) > 0 {
		batch := need
		if len(batch) > batchSize {
			batch = batch[:batchSize]
		}
		need = need[len(batch):]
		notes, err := peer.Fetch(batch)
		if err != nil {
			return 0, err
		}
		stats.NotesFetched += len(notes)
		for _, n := range notes {
			stats.BytesIn += int64(len(nsf.EncodeNote(n)))
			st, err := ApplyNote(local, n, opts.Apply)
			if err != nil {
				return 0, err
			}
			stats.Pull.Add(st)
		}
	}
	return peerNow, nil
}

// push sends local changes since the cursor for the peer to apply.
// Documents outside the selection formula travel as selection stubs
// (identity only), so an edit that moves a document out of the selection
// deletes it at the peer instead of leaving it frozen.
func push(local *core.Database, peer Peer, stats *Stats, since nsf.Timestamp, opts Options) (nsf.Timestamp, error) {
	sel, err := opts.selection()
	if err != nil {
		return 0, err
	}
	localNow := local.Clock().Now()
	var batch []*nsf.Note
	var evalErr error
	err = local.ScanModifiedSince(since, func(n *nsf.Note) bool {
		if n.Class == nsf.ClassReplFormula {
			return true
		}
		if sel != nil && !n.IsStub() && n.Class == nsf.ClassDocument {
			ok, err := sel.Selects(n, nil)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				batch = append(batch, SelectionStub(n))
				return true
			}
		}
		batch = append(batch, n)
		return true
	})
	if err != nil {
		return 0, err
	}
	if evalErr != nil {
		return 0, evalErr
	}
	for _, n := range batch {
		stats.BytesOut += int64(len(nsf.EncodeNote(n)))
	}
	stats.NotesSent += len(batch)
	// Ship in bounded batches: each applied batch is durable at the peer,
	// and a batch whose acknowledgment was lost re-applies as skips.
	batchSize := opts.batchSize()
	for len(batch) > 0 {
		chunk := batch
		if len(chunk) > batchSize {
			chunk = chunk[:batchSize]
		}
		batch = batch[len(chunk):]
		st, err := peer.Apply(chunk)
		if err != nil {
			return 0, err
		}
		stats.Push.Add(st)
	}
	return localNow, nil
}

// FullCopy is the naive baseline: it transfers the peer's complete note
// inventory and applies it blindly (no summary phase, no OID pre-filtering
// beyond the receiver's apply rules), then does the same in reverse.
func FullCopy(local *core.Database, peer Peer) (Stats, error) {
	var stats Stats
	remoteReplica, err := peer.ReplicaID()
	if err != nil {
		return stats, err
	}
	if remoteReplica != local.ReplicaID() {
		return stats, fmt.Errorf("repl: replica ID mismatch")
	}
	// Pull everything.
	sums, _, err := peer.Summaries(0, "")
	if err != nil {
		return stats, err
	}
	unids := make([]nsf.UNID, len(sums))
	for i, s := range sums {
		unids[i] = s.UNID
	}
	notes, err := peer.Fetch(unids)
	if err != nil {
		return stats, err
	}
	stats.NotesFetched = len(notes)
	for _, n := range notes {
		stats.BytesIn += int64(len(nsf.EncodeNote(n)))
		st, err := ApplyNote(local, n, ApplyOptions{})
		if err != nil {
			return stats, err
		}
		stats.Pull.Add(st)
	}
	// Push everything.
	var batch []*nsf.Note
	err = local.ScanAll(func(n *nsf.Note) bool {
		if n.Class != nsf.ClassReplFormula {
			batch = append(batch, n)
		}
		return true
	})
	if err != nil {
		return stats, err
	}
	stats.NotesSent = len(batch)
	for _, n := range batch {
		stats.BytesOut += int64(len(nsf.EncodeNote(n)))
	}
	if len(batch) > 0 {
		st, err := peer.Apply(batch)
		if err != nil {
			return stats, err
		}
		stats.Push.Add(st)
	}
	return stats, nil
}
