package repl

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/formula"
	"repro/internal/nsf"
)

// Options configure one replication session.
type Options struct {
	// PeerName identifies the remote instance for history bookkeeping
	// (e.g. a server name or file path). Required for incremental
	// replication; when empty, every session starts from time zero.
	PeerName string
	// Apply tunes local conflict handling.
	Apply ApplyOptions
	// Formula is a selective-replication formula source applied in both
	// directions (evaluated on whichever side holds the notes). Empty
	// replicates everything.
	Formula string
	// PullOnly disables the push phase.
	PullOnly bool
	// PushOnly disables the pull phase.
	PushOnly bool
	// Full ignores replication history and exchanges complete inventories;
	// used by the full-copy baseline experiment.
	Full bool
}

// history tracks the cursors of past sessions with a peer. It lives in a
// note of class ClassReplFormula, which never replicates (cursors are
// meaningful only to this instance).
type history struct {
	LastPull nsf.Timestamp // peer clock at the end of the last pull
	LastPush nsf.Timestamp // local clock at the end of the last push
}

func historyUNID(peerName string) nsf.UNID {
	sum := sha256.Sum256([]byte("replhistory:" + peerName))
	var u nsf.UNID
	copy(u[:], sum[:16])
	return u
}

func loadHistory(db *core.Database, peerName string) (history, error) {
	if peerName == "" {
		return history{}, nil
	}
	n, err := db.RawGet(historyUNID(peerName))
	if errors.Is(err, core.ErrNotFound) {
		return history{}, nil
	}
	if err != nil {
		return history{}, err
	}
	return history{
		LastPull: n.Time("LastPull"),
		LastPush: n.Time("LastPush"),
	}, nil
}

func saveHistory(db *core.Database, peerName string, h history) error {
	if peerName == "" {
		return nil
	}
	unid := historyUNID(peerName)
	n, err := db.RawGet(unid)
	if errors.Is(err, core.ErrNotFound) {
		n = &nsf.Note{
			OID:   nsf.OID{UNID: unid, Seq: 1, SeqTime: db.Clock().Now()},
			Class: nsf.ClassReplFormula,
		}
		err = nil
	}
	if err != nil {
		return err
	}
	n.SetText("Peer", peerName)
	n.SetTime("LastPull", h.LastPull)
	n.SetTime("LastPush", h.LastPush)
	n.OID.Seq++
	n.OID.SeqTime = db.Clock().Now()
	return db.RawPut(n)
}

// Replicate runs one replication session between the local database and a
// peer: pull remote changes, then push local ones. It returns transfer and
// outcome statistics.
func Replicate(local *core.Database, peer Peer, opts Options) (Stats, error) {
	var stats Stats
	remoteReplica, err := peer.ReplicaID()
	if err != nil {
		return stats, err
	}
	if remoteReplica != local.ReplicaID() {
		return stats, fmt.Errorf("repl: replica ID mismatch: local %s, peer %s",
			local.ReplicaID(), remoteReplica)
	}
	h, err := loadHistory(local, opts.PeerName)
	if err != nil {
		return stats, err
	}
	if opts.Full {
		h = history{}
	}
	if !opts.PushOnly {
		peerNow, err := pull(local, peer, &stats, h.LastPull, opts)
		if err != nil {
			return stats, err
		}
		h.LastPull = peerNow
	}
	if !opts.PullOnly {
		localNow, err := push(local, peer, &stats, h.LastPush, opts)
		if err != nil {
			return stats, err
		}
		h.LastPush = localNow
	}
	if !opts.Full {
		if err := saveHistory(local, opts.PeerName, h); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// pull fetches remote changes since the cursor and applies them locally.
func pull(local *core.Database, peer Peer, stats *Stats, since nsf.Timestamp, opts Options) (nsf.Timestamp, error) {
	sums, peerNow, err := peer.Summaries(since, opts.Formula)
	if err != nil {
		return 0, err
	}
	stats.SummariesIn += len(sums)
	stats.BytesIn += int64(len(sums)) * summaryWireBytes
	var need []nsf.UNID
	for _, s := range sums {
		cur, err := local.RawGet(s.UNID)
		switch {
		case errors.Is(err, core.ErrNotFound):
			need = append(need, s.UNID)
		case err != nil:
			return 0, err
		case cur.OID == s.OID():
			stats.Pull.Skipped++
		case s.OID().Newer(cur.OID) || s.Seq == cur.OID.Seq:
			// Either the remote wins, or it is a potential conflict that
			// needs the full note to resolve.
			need = append(need, s.UNID)
		default:
			stats.Pull.Skipped++
		}
	}
	notes, err := peer.Fetch(need)
	if err != nil {
		return 0, err
	}
	stats.NotesFetched += len(notes)
	for _, n := range notes {
		stats.BytesIn += int64(len(nsf.EncodeNote(n)))
		st, err := ApplyNote(local, n, opts.Apply)
		if err != nil {
			return 0, err
		}
		stats.Pull.Add(st)
	}
	return peerNow, nil
}

// push sends local changes since the cursor for the peer to apply.
func push(local *core.Database, peer Peer, stats *Stats, since nsf.Timestamp, opts Options) (nsf.Timestamp, error) {
	var sel *formula.Formula
	if opts.Formula != "" {
		f, err := formula.Compile(opts.Formula)
		if err != nil {
			return 0, err
		}
		sel = f
	}
	localNow := local.Clock().Now()
	var batch []*nsf.Note
	var evalErr error
	err := local.ScanModifiedSince(since, func(n *nsf.Note) bool {
		if n.Class == nsf.ClassReplFormula {
			return true
		}
		if sel != nil && !n.IsStub() && n.Class == nsf.ClassDocument {
			ok, err := sel.Selects(n, nil)
			if err != nil {
				evalErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		batch = append(batch, n)
		return true
	})
	if err != nil {
		return 0, err
	}
	if evalErr != nil {
		return 0, evalErr
	}
	for _, n := range batch {
		stats.BytesOut += int64(len(nsf.EncodeNote(n)))
	}
	stats.NotesSent += len(batch)
	if len(batch) > 0 {
		st, err := peer.Apply(batch)
		if err != nil {
			return 0, err
		}
		stats.Push.Add(st)
	}
	return localNow, nil
}

// FullCopy is the naive baseline: it transfers the peer's complete note
// inventory and applies it blindly (no summary phase, no OID pre-filtering
// beyond the receiver's apply rules), then does the same in reverse.
func FullCopy(local *core.Database, peer Peer) (Stats, error) {
	var stats Stats
	remoteReplica, err := peer.ReplicaID()
	if err != nil {
		return stats, err
	}
	if remoteReplica != local.ReplicaID() {
		return stats, fmt.Errorf("repl: replica ID mismatch")
	}
	// Pull everything.
	sums, _, err := peer.Summaries(0, "")
	if err != nil {
		return stats, err
	}
	unids := make([]nsf.UNID, len(sums))
	for i, s := range sums {
		unids[i] = s.UNID
	}
	notes, err := peer.Fetch(unids)
	if err != nil {
		return stats, err
	}
	stats.NotesFetched = len(notes)
	for _, n := range notes {
		stats.BytesIn += int64(len(nsf.EncodeNote(n)))
		st, err := ApplyNote(local, n, ApplyOptions{})
		if err != nil {
			return stats, err
		}
		stats.Pull.Add(st)
	}
	// Push everything.
	var batch []*nsf.Note
	err = local.ScanAll(func(n *nsf.Note) bool {
		if n.Class != nsf.ClassReplFormula {
			batch = append(batch, n)
		}
		return true
	})
	if err != nil {
		return stats, err
	}
	stats.NotesSent = len(batch)
	for _, n := range batch {
		stats.BytesOut += int64(len(nsf.EncodeNote(n)))
	}
	if len(batch) > 0 {
		st, err := peer.Apply(batch)
		if err != nil {
			return stats, err
		}
		stats.Push.Add(st)
	}
	return stats, nil
}
