package repl

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
)

// rawNote fetches a note bypassing stub filtering; nil when absent.
func rawNote(t *testing.T, db *core.Database, unid nsf.UNID) *nsf.Note {
	t.Helper()
	n, err := db.RawGet(unid)
	if errors.Is(err, core.ErrNotFound) {
		return nil
	}
	if err != nil {
		t.Fatalf("RawGet: %v", err)
	}
	return n
}

// unidSet collects the (UNID, Seq, SeqTime) triples of all document-class
// notes, stubs included — the convergence fingerprint domain.
func unidSet(t *testing.T, db *core.Database) map[nsf.OID]bool {
	t.Helper()
	out := make(map[nsf.OID]bool)
	err := db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument {
			out[n.OID] = true
		}
		return true
	})
	if err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
	return out
}

func prioDoc(t *testing.T, db *core.Database, subject string, prio float64) *nsf.Note {
	t.Helper()
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetWithFlags("Subject", nsf.TextValue(subject), nsf.FlagSummary)
	n.SetNumber("Priority", prio)
	if err := db.Session("user").Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	return n
}

// A document that falls out of the link's selection mid-life must turn into
// a selection stub at the destination, not stay frozen at its last matching
// version.
func TestSelectionChangeCreatesStubAtDestination(t *testing.T) {
	a, b := pairedDBs(t)
	opts := Options{Formula: "SELECT Priority > 5"}
	n := prioDoc(t, a, "hot topic", 9)
	sync(t, a, b, opts)
	if got := docSubjects(t, b); got["hot topic"] != 1 {
		t.Fatalf("doc did not replicate: %v", got)
	}

	// Edit at a so the document leaves the selection.
	sa := a.Session("user")
	na, _ := sa.Get(n.OID.UNID)
	na.SetNumber("Priority", 1)
	sa.Update(na)

	st := sync(t, a, b, opts)
	if st.Push.Deleted != 1 {
		t.Errorf("push stats = %v, want one deletion", st)
	}
	if got := docSubjects(t, b); got["hot topic"] != 0 {
		t.Errorf("destination still holds the deselected doc: %v", got)
	}
	stub := rawNote(t, b, n.OID.UNID)
	if stub == nil || !stub.IsSelStub() || !stub.IsStub() {
		t.Fatalf("destination note = %+v, want a selection stub", stub)
	}
	if stub.OID.Seq != 2 {
		t.Errorf("stub seq = %d, want 2 (the withheld version)", stub.OID.Seq)
	}

	// The stub must not delete the source copy on the next exchange, and the
	// exchange must be quiescent.
	st = sync(t, a, b, opts)
	if total := st.Pull.Total() + st.Push.Total(); total != 0 {
		t.Errorf("stub bounced back as a change: %v", st)
	}
	if got := docSubjects(t, a); got["hot topic"] != 1 {
		t.Errorf("source lost the live doc to its own selection stub: %v", got)
	}
}

// A document that re-enters the selection resurrects at the destination:
// selection stubs carry no deletion authority against a newer live version.
func TestSelectionReentryResurrects(t *testing.T) {
	a, b := pairedDBs(t)
	opts := Options{Formula: "SELECT Priority > 5"}
	n := prioDoc(t, a, "flapping", 9)
	sync(t, a, b, opts)

	sa := a.Session("user")
	na, _ := sa.Get(n.OID.UNID)
	na.SetNumber("Priority", 1)
	sa.Update(na)
	sync(t, a, b, opts) // b now holds a selection stub at seq 2

	na, _ = sa.Get(n.OID.UNID)
	na.SetNumber("Priority", 8)
	sa.Update(na)
	st := sync(t, a, b, opts)
	if st.Push.Added != 1 {
		t.Errorf("push stats = %v, want one resurrection", st)
	}
	nb := rawNote(t, b, n.OID.UNID)
	if nb == nil || nb.IsStub() || nb.Number("Priority") != 8 || nb.OID.Seq != 3 {
		t.Fatalf("destination note = %+v, want live seq-3 version", nb)
	}
}

// Widening the selection re-advertises the exact withheld version (same
// OID): the destination's selection stub must be replaced by the content,
// not skipped as "already have this version".
func TestSelectionWideningRefetchesContent(t *testing.T) {
	a, b := pairedDBs(t)
	n := prioDoc(t, a, "backfill", 1)
	sync(t, a, b, Options{Formula: "SELECT Priority > 5", PeerName: "narrow"})
	if stub := rawNote(t, b, n.OID.UNID); stub == nil || !stub.IsSelStub() {
		t.Fatalf("destination note = %+v, want a selection stub", stub)
	}

	// Same databases, wider link. Distinct PeerName: a changed selection
	// resets the cursors (the mesh keys history by formula hash for exactly
	// this reason).
	st := sync(t, a, b, Options{PeerName: "wide"})
	if st.Push.Added != 1 {
		t.Errorf("push stats = %v, want one backfill", st)
	}
	nb := rawNote(t, b, n.OID.UNID)
	if nb == nil || nb.IsStub() || nb.Text("Subject") != "backfill" {
		t.Fatalf("destination note = %+v, want live content", nb)
	}
	if nb.OID != n.OID {
		t.Errorf("backfill changed the version: %v != %v", nb.OID, n.OID)
	}
}

// Selective and full replicas converge to identical (UNID, Seq, SeqTime)
// sets: documents outside the selection exist at the selective replica as
// selection stubs with the withheld version's OID.
func TestSelectionStubsConvergeUNIDSets(t *testing.T) {
	a, b := pairedDBs(t)
	prioDoc(t, a, "kept", 9)
	prioDoc(t, a, "filtered", 1)
	sync(t, a, b, Options{Formula: "SELECT Priority > 5"})
	gotA, gotB := unidSet(t, a), unidSet(t, b)
	if len(gotA) != 2 || len(gotB) != 2 {
		t.Fatalf("UNID sets: a=%d b=%d, want 2 each", len(gotA), len(gotB))
	}
	for oid := range gotA {
		if !gotB[oid] {
			t.Errorf("OID %v missing at b", oid)
		}
	}
	if got := docSubjects(t, b); got["filtered"] != 0 || got["kept"] != 1 {
		t.Errorf("live docs at b: %v", got)
	}
}

// ApplyNote-level guarantee: a stale selection stub never deletes a newer
// live version, while a true deletion stub does ("deletions win").
func TestSelectionStubHasNoDeletionAuthority(t *testing.T) {
	a, _ := pairedDBs(t)
	n := createDoc(t, a, "durable")
	live, _ := a.RawGet(n.OID.UNID)

	stale := SelectionStub(live)
	stale.OID.Seq = live.OID.Seq // equal version: the shadowed one
	if st, err := ApplyNote(a, stale, ApplyOptions{}); err != nil || st.Skipped != 1 {
		t.Errorf("equal-version selstub: st=%v err=%v, want skip", st, err)
	}
	stale.OID.Seq = live.OID.Seq - 1 // pretend an older withheld version
	stale.OID.SeqTime--
	if st, err := ApplyNote(a, stale, ApplyOptions{}); err != nil || st.Skipped != 1 {
		t.Errorf("stale selstub: st=%v err=%v, want skip", st, err)
	}
	if cur := rawNote(t, a, n.OID.UNID); cur == nil || cur.IsStub() {
		t.Fatalf("live version was deleted by a selection stub: %+v", cur)
	}

	// A true deletion stub — even one losing the OID comparison — still
	// wins: deletions beat sequence numbers.
	del := live.Clone()
	del.Items = nil
	del.Flags |= nsf.FlagDeleted
	del.OID.SeqTime--
	if st, err := ApplyNote(a, del, ApplyOptions{}); err != nil || st.Deleted != 1 {
		t.Errorf("true stub: st=%v err=%v, want deletion", st, err)
	}
}

// Direction combinations under a selection formula: stubs (true deletions)
// always pass the filter in both directions, and each direction moves only
// its own phase.
func TestDirectionCombosWithFormula(t *testing.T) {
	formula := "SELECT Priority > 5"

	t.Run("PullOnly", func(t *testing.T) {
		a, b := pairedDBs(t)
		prioDoc(t, b, "b hot", 9)
		prioDoc(t, b, "b cold", 1)
		prioDoc(t, a, "a hot", 9)
		st := sync(t, a, b, Options{Formula: formula, PullOnly: true})
		if st.Push.Total() != 0 || st.Pull.Added != 1 || st.Pull.Deleted != 1 {
			t.Errorf("stats = %v, want pull-only with one live + one selstub", st)
		}
		if got := docSubjects(t, a); got["b hot"] != 1 || got["b cold"] != 0 {
			t.Errorf("a docs = %v", got)
		}
		if got := docSubjects(t, b); got["a hot"] != 0 {
			t.Errorf("push leaked in pull-only mode: %v", got)
		}
	})

	t.Run("PushOnly", func(t *testing.T) {
		a, b := pairedDBs(t)
		prioDoc(t, a, "a hot", 9)
		prioDoc(t, a, "a cold", 1)
		prioDoc(t, b, "b hot", 9)
		st := sync(t, a, b, Options{Formula: formula, PushOnly: true})
		if st.Pull.Total() != 0 || st.Push.Added != 1 || st.Push.Deleted != 1 {
			t.Errorf("stats = %v, want push-only with one live + one selstub", st)
		}
		if got := docSubjects(t, b); got["a hot"] != 1 || got["a cold"] != 0 {
			t.Errorf("b docs = %v", got)
		}
		if got := docSubjects(t, a); got["b hot"] != 0 {
			t.Errorf("pull leaked in push-only mode: %v", got)
		}
	})

	t.Run("FullWithDeletions", func(t *testing.T) {
		a, b := pairedDBs(t)
		hot := prioDoc(t, a, "doomed hot", 9)
		cold := prioDoc(t, a, "doomed cold", 1)
		sync(t, a, b, Options{Formula: formula})
		// Delete both at a. The hot doc's stub and the cold doc's stub must
		// both land at b — deletion stubs bypass the selection entirely.
		if err := a.Session("user").Delete(hot.OID.UNID); err != nil {
			t.Fatal(err)
		}
		if err := a.Session("user").Delete(cold.OID.UNID); err != nil {
			t.Fatal(err)
		}
		st := sync(t, a, b, Options{Formula: formula, Full: true})
		if st.Push.Deleted == 0 {
			t.Errorf("stats = %v, want deletions pushed", st)
		}
		for _, u := range []nsf.UNID{hot.OID.UNID, cold.OID.UNID} {
			nb := rawNote(t, b, u)
			if nb == nil || !nb.IsStub() {
				t.Errorf("note %v at b = %+v, want deletion stub", u, nb)
			}
			if nb != nil && nb.IsSelStub() && nb.OID.UNID == hot.OID.UNID {
				t.Errorf("true deletion downgraded to selection stub: %+v", nb)
			}
		}
	})
}

// A bad selection formula is a typed configuration error, surfaced before
// any wire work — by Prepare at construction time and by Replicate/the
// source-side summary scan otherwise.
func TestBadFormulaTypedError(t *testing.T) {
	a, b := pairedDBs(t)
	bad := Options{Formula: "SELECT ((("}

	var fe *FormulaError
	if err := bad.Prepare(); !errors.As(err, &fe) {
		t.Errorf("Prepare error = %v, want *FormulaError", err)
	} else if fe.Source != bad.Formula {
		t.Errorf("FormulaError.Source = %q", fe.Source)
	}

	fe = nil
	if _, err := Replicate(a, &LocalPeer{DB: b}, bad); !errors.As(err, &fe) {
		t.Errorf("Replicate error = %v, want *FormulaError", err)
	}

	fe = nil
	if _, _, err := (&LocalPeer{DB: b}).Summaries(0, bad.Formula); !errors.As(err, &fe) {
		t.Errorf("Summaries error = %v, want *FormulaError", err)
	}

	good := Options{Formula: "SELECT Priority > 5"}
	if err := good.Prepare(); err != nil {
		t.Fatalf("Prepare(good): %v", err)
	}
	if f, err := good.selection(); err != nil || f == nil {
		t.Errorf("selection after Prepare: f=%v err=%v", f, err)
	}
}

// CompileSelection memoizes: two compiles of the same source share the
// compiled formula.
func TestCompileSelectionMemoizes(t *testing.T) {
	f1, err := CompileSelection("SELECT Priority > 5")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := CompileSelection("SELECT Priority > 5")
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Error("same source compiled twice")
	}
	if f, err := CompileSelection(""); f != nil || err != nil {
		t.Errorf("empty source: f=%v err=%v, want nil,nil", f, err)
	}
}
