// Package repl implements Notes replication: pairwise, bidirectional,
// incremental synchronization between databases sharing a replica ID.
//
// Change detection uses originator IDs (sequence number + sequence time):
// the replicator pulls version summaries modified since the last sync,
// fetches the notes whose remote version wins the OID comparison, and
// applies them locally. Deletions travel as deletion stubs. Concurrent
// edits with equal sequence numbers are conflicts: the loser is preserved
// as a "$Conflict" response document — or, when field-level merging is
// enabled and the two edits touched disjoint item sets, merged into the
// winner.
//
// Selective replication evaluates a formula on the source side. Its
// semantics are stub-correct: a document outside the selection is not
// silently withheld — the source advertises a *selection stub* (same OID,
// FlagSelStub, no content), so a document that falls out of a link's
// selection mid-life is deleted on the destination rather than left
// frozen at its last matching version. Selection stubs carry no deletion
// authority: a strictly newer live version (the document re-entering the
// selection) resurrects the document, and a selection stub meeting the
// live version it shadows (same OID) is a no-op on both sides. Because a
// selection stub shares the OID of the version it withholds, replicas
// converge to identical (UNID, Seq, SeqTime) sets whether or not their
// links filter — the property the mesh convergence audit fingerprints.
package repl

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/nsf"
)

// Summary is the version descriptor exchanged during the cheap first phase
// of replication.
type Summary struct {
	UNID    nsf.UNID
	Seq     uint32
	SeqTime nsf.Timestamp
	Deleted bool
	// SelStub marks a selection stub: the source holds this version live
	// but it is outside the link's selection formula, so only its identity
	// travels. The receiver materializes a FlagSelStub stub from the
	// summary alone — there is no stored stub to fetch on the source.
	SelStub bool
	Class   nsf.NoteClass
}

// summaryWireBytes approximates the on-wire size of one summary, for the
// byte accounting in Stats.
const summaryWireBytes = 16 + 4 + 8 + 1 + 2

// OID reconstructs the summary's originator ID.
func (s Summary) OID() nsf.OID {
	return nsf.OID{UNID: s.UNID, Seq: s.Seq, SeqTime: s.SeqTime}
}

// SummaryOf builds the summary of a note.
func SummaryOf(n *nsf.Note) Summary {
	return Summary{
		UNID:    n.OID.UNID,
		Seq:     n.OID.Seq,
		SeqTime: n.OID.SeqTime,
		Deleted: n.IsStub(),
		SelStub: n.IsSelStub(),
		Class:   n.Class,
	}
}

// selStubSummary advertises a live note that falls outside the selection
// formula as a selection stub.
func selStubSummary(n *nsf.Note) Summary {
	s := SummaryOf(n)
	s.Deleted = true
	s.SelStub = true
	return s
}

// StubFromSummary materializes the deletion (or selection) stub a summary
// describes. Stubs carry no content beyond identity, version, and class,
// so the receiver can apply them from the summary alone — no fetch round
// trip, and no risk of a selection stub leaking the live content the
// source actually holds.
func StubFromSummary(s Summary) *nsf.Note {
	flags := nsf.FlagDeleted
	if s.SelStub {
		flags |= nsf.FlagSelStub
	}
	return &nsf.Note{
		OID:     s.OID(),
		Class:   s.Class,
		Flags:   flags,
		Created: s.SeqTime,
	}
}

// SelectionStub clones a live note into the selection stub that stands in
// for it on replicas whose link formula excludes it.
func SelectionStub(n *nsf.Note) *nsf.Note {
	return &nsf.Note{
		OID:     n.OID,
		Class:   n.Class,
		Flags:   n.Flags | nsf.FlagDeleted | nsf.FlagSelStub,
		Created: n.Created,
	}
}

// Peer is one side of a replication session. A local database implements it
// directly (LocalPeer); the wire package provides a remote implementation.
type Peer interface {
	// ReplicaID identifies the peer's replica set.
	ReplicaID() (nsf.ReplicaID, error)
	// Summaries lists version summaries of notes modified after since (in
	// the peer's clock), filtered by the optional selective-replication
	// formula source (stubs always pass). It also returns the peer's
	// current clock reading, which the caller persists as the next cursor.
	Summaries(since nsf.Timestamp, formulaSrc string) ([]Summary, nsf.Timestamp, error)
	// Fetch returns the full notes for the given UNIDs; missing ones are
	// silently omitted.
	Fetch(unids []nsf.UNID) ([]*nsf.Note, error)
	// Apply stores incoming notes on the peer using its conflict rules.
	Apply(notes []*nsf.Note) (ApplyStats, error)
}

// ApplyStats counts the outcomes of applying a batch of notes.
type ApplyStats struct {
	Added     int // notes new to the receiver
	Updated   int // newer versions accepted
	Deleted   int // deletion stubs applied over live notes
	Conflicts int // conflict documents created
	Merged    int // conflicts resolved by field-level merge
	Skipped   int // receiver already had this or a newer version
}

// Add accumulates other into s.
func (s *ApplyStats) Add(other ApplyStats) {
	s.Added += other.Added
	s.Updated += other.Updated
	s.Deleted += other.Deleted
	s.Conflicts += other.Conflicts
	s.Merged += other.Merged
	s.Skipped += other.Skipped
}

// Total returns the number of notes that changed the receiver.
func (s ApplyStats) Total() int {
	return s.Added + s.Updated + s.Deleted + s.Conflicts + s.Merged
}

// Stats reports one replication session.
type Stats struct {
	Pull ApplyStats // changes applied locally
	Push ApplyStats // changes applied at the peer
	// SummariesIn counts version summaries received.
	SummariesIn int
	// NotesFetched counts full notes pulled.
	NotesFetched int
	// NotesSent counts full notes pushed.
	NotesSent int
	// BytesIn/BytesOut approximate transfer volume (encoded note bytes plus
	// summary records).
	BytesIn  int64
	BytesOut int64
}

// String renders a compact session summary.
func (s Stats) String() string {
	return fmt.Sprintf("pull[+%d ~%d -%d c%d m%d s%d] push[+%d ~%d -%d c%d m%d s%d] bytes[in %d out %d]",
		s.Pull.Added, s.Pull.Updated, s.Pull.Deleted, s.Pull.Conflicts, s.Pull.Merged, s.Pull.Skipped,
		s.Push.Added, s.Push.Updated, s.Push.Deleted, s.Push.Conflicts, s.Push.Merged, s.Push.Skipped,
		s.BytesIn, s.BytesOut)
}

// conflictUNID derives the deterministic UNID of the conflict document
// preserving the losing version, so that every replica that detects the
// same conflict materializes the same document and replication converges.
func conflictUNID(loser nsf.OID) nsf.UNID {
	var buf [28]byte
	copy(buf[:16], loser.UNID[:])
	binary.LittleEndian.PutUint32(buf[16:], loser.Seq)
	binary.LittleEndian.PutUint64(buf[20:], uint64(loser.SeqTime))
	sum := sha256.Sum256(buf[:])
	var u nsf.UNID
	copy(u[:], sum[:16])
	return u
}
