// Chaos and crash-safety tests for replication: sessions severed by
// injected network faults (faultnet) or killed between phases must, once
// resumed, converge both replicas to exactly the state an unfailed session
// reaches — same note digests, same deletion stubs, zero spurious conflict
// documents, and no re-applied updates.
//
// This file lives in package repl_test so it can drive replication over
// the real wire protocol (internal/wire imports internal/repl).
package repl_test

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/faultnet"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wire"
)

// wirePair is a local replica plus a server-hosted replica of the same
// database, reachable over a fault-injected wire link.
type wirePair struct {
	local    *core.Database
	remote   *core.Database // the server-side database, inspected directly
	client   *wire.Client
	remoteDB *wire.RemoteDB
	fn       *faultnet.Net
}

// newWirePair starts a server hosting one replica and opens a local
// replica of the same replica set, connected through plan's fault net with
// the given client options.
func newWirePair(t *testing.T, plan faultnet.Plan, clientOpts wire.Options) *wirePair {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	srv, err := server.New(server.Options{
		Name: "hub", DataDir: filepath.Join(t.TempDir(), "hub"), Directory: d,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	replica := nsf.NewReplicaID()
	remote, err := srv.OpenDB("apps/chaos.nsf", core.Options{Title: "chaos", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.Open(filepath.Join(t.TempDir(), "local.nsf"),
		core.Options{Title: "local", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { local.Close() })

	fn := faultnet.New(plan)
	clientOpts.Dialer = fn.Dial
	client, err := wire.DialOptions(addr, "ada", "ada-pw", clientOpts)
	if err != nil {
		t.Fatalf("initial dial through faultnet: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	rdb, err := client.OpenDB("apps/chaos.nsf")
	if err != nil {
		t.Fatalf("open remote db: %v", err)
	}
	return &wirePair{local: local, remote: remote, client: client, remoteDB: rdb, fn: fn}
}

// fastClientOpts keep retry schedules test-sized and deterministic.
func fastClientOpts(retries int, seed int64) wire.Options {
	return wire.Options{
		OpTimeout:   2 * time.Second,
		DialTimeout: 2 * time.Second,
		MaxRetries:  retries,
		BackoffBase: time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		Jitter:      rand.New(rand.NewSource(seed)),
	}
}

// snapshot fingerprints every replicated note: OID version, stub flag, and
// the canonical content digest. Replication bookkeeping notes are local by
// design and excluded.
func snapshot(t *testing.T, db *core.Database) map[nsf.UNID]string {
	t.Helper()
	out := make(map[nsf.UNID]string)
	err := db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassReplFormula {
			return true
		}
		digest := n.CanonicalDigest()
		out[n.OID.UNID] = fmt.Sprintf("seq=%d st=%d stub=%v digest=%x",
			n.OID.Seq, n.OID.SeqTime, n.IsStub(), digest[:8])
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertConverged requires byte-identical replicated content on both
// databases.
func assertConverged(t *testing.T, a, b *core.Database) {
	t.Helper()
	sa, sb := snapshot(t, a), snapshot(t, b)
	if len(sa) != len(sb) {
		t.Errorf("replicas diverge: %d vs %d notes", len(sa), len(sb))
	}
	for u, fa := range sa {
		fb, ok := sb[u]
		if !ok {
			t.Errorf("note %s missing from %s", u, b.Title())
			continue
		}
		if fa != fb {
			t.Errorf("note %s differs:\n  %s: %s\n  %s: %s", u, a.Title(), fa, b.Title(), fb)
		}
	}
}

// countConflicts counts materialized conflict documents.
func countConflicts(t *testing.T, db *core.Database) int {
	t.Helper()
	n := 0
	db.ScanAll(func(note *nsf.Note) bool {
		if note.Flags&nsf.FlagConflict != 0 {
			n++
		}
		return true
	})
	return n
}

// replOpts is the session configuration the fault tests replicate under:
// small batches so severs land mid-session, history enabled.
func replOpts() repl.Options {
	return repl.Options{PeerName: "hub!!apps/chaos.nsf", BatchSize: 8}
}

// TestSeveredSessionResumeConverges severs the wire mid-transfer on a
// deterministic byte budget, with client retries disabled so the session
// genuinely fails, then resumes until the link lets a session through and
// verifies both replicas converged with no spurious artifacts.
func TestSeveredSessionResumeConverges(t *testing.T) {
	p := newWirePair(t,
		faultnet.Plan{Seed: 11, SeverAfterBytes: 6000},
		fastClientOpts(-1, 11)) // no retries: every sever fails the session

	// Bulk content on the server side so the pull outweighs one budget.
	sess := p.remote.Session("ada")
	var unids []nsf.UNID
	for i := 0; i < 60; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("server doc %d", i))
		n.SetText("Body", fmt.Sprintf("payload %d: %s", i, string(make([]byte, 64))))
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	var deleted []nsf.UNID
	for i := 0; i < 5; i++ {
		if err := sess.Delete(unids[i]); err != nil {
			t.Fatal(err)
		}
		deleted = append(deleted, unids[i])
	}
	lsess := p.local.Session("ada")
	for i := 0; i < 15; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("local doc %d", i))
		if err := lsess.Create(n); err != nil {
			t.Fatal(err)
		}
	}

	// The first session must die mid-transfer.
	_, firstErr := repl.Replicate(p.local, p.remoteDB, replOpts())
	if firstErr == nil {
		t.Fatal("session survived a 6000-byte sever budget; fault injection did not bite")
	}
	if st := p.fn.Stats(); st.Severs == 0 {
		t.Fatalf("session failed (%v) but faultnet injected nothing: %+v", firstErr, st)
	}

	// Resume under the same fault plan: each attempt makes monotonic
	// progress (applied notes re-list as skips), so a bounded number of
	// attempts drains the backlog even though every connection still dies
	// after 6000 bytes.
	var err error
	for attempt := 0; attempt < 60; attempt++ {
		if _, err = repl.Replicate(p.local, p.remoteDB, replOpts()); err == nil {
			break
		}
	}
	if err != nil {
		// The link never allowed a full session; certify convergence with
		// a clean final pass instead.
		p.fn.Disable()
		if _, err = repl.Replicate(p.local, p.remoteDB, replOpts()); err != nil {
			t.Fatalf("clean resume failed: %v", err)
		}
	}
	p.fn.Disable()

	assertConverged(t, p.local, p.remote)
	for _, u := range deleted {
		for _, db := range []*core.Database{p.local, p.remote} {
			n, err := db.RawGet(u)
			if err != nil {
				t.Fatalf("deleted note %s vanished from %s: %v", u, db.Title(), err)
			}
			if !n.IsStub() {
				t.Errorf("deleted note %s resurrected on %s", u, db.Title())
			}
		}
	}
	if c := countConflicts(t, p.local) + countConflicts(t, p.remote); c != 0 {
		t.Errorf("retries fabricated %d conflict documents", c)
	}
	// A converged pair stays converged: one more session moves nothing.
	st, err := repl.Replicate(p.local, p.remoteDB, replOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st.Pull.Total()+st.Push.Total() != 0 {
		t.Errorf("post-convergence session still changed state: %v", st)
	}
}

// TestTransparentRetriesHideLinkFaults runs a session over a lossy link
// with client retries enabled: the replicator never sees the faults.
func TestTransparentRetriesHideLinkFaults(t *testing.T) {
	p := newWirePair(t,
		faultnet.Plan{Seed: 21, SeverAfterBytes: 9000},
		fastClientOpts(6, 21))
	sess := p.remote.Session("ada")
	for i := 0; i < 80; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc %d", i))
		n.SetText("Body", string(make([]byte, 128)))
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	st, err := repl.Replicate(p.local, p.remoteDB, replOpts())
	if err != nil {
		t.Fatalf("retrying client leaked a link fault to the session: %v", err)
	}
	if st.Pull.Added != 80 {
		t.Errorf("pulled %d docs, want 80", st.Pull.Added)
	}
	if fst := p.fn.Stats(); fst.Severs == 0 {
		t.Errorf("no severs injected; test exercised nothing (stats %+v)", fst)
	}
	p.fn.Disable()
	assertConverged(t, p.local, p.remote)
}

// TestChaosConvergence is the property-style suite: randomized (seeded)
// edit/delete schedules on both replicas interleaved with replication over
// a link that randomly drops, delays, truncates, and severs. The two sides
// edit disjoint document sets, so any conflict document whatsoever is a
// retry artifact — the suite asserts there are none, that deletions hold
// on both sides, and that final content is byte-identical.
func TestChaosConvergence(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	p := newWirePair(t, faultnet.Plan{
		Seed:      seed,
		SeverProb: 0.02,
		TruncProb: 0.01,
		DelayProb: 0.05,
		MaxDelay:  2 * time.Millisecond,
	}, fastClientOpts(5, seed))
	rng := rand.New(rand.NewSource(seed))

	type side struct {
		db    *core.Database
		sess  *core.Session
		docs  []nsf.UNID
		alive map[nsf.UNID]bool
	}
	sides := []*side{
		{db: p.local, sess: p.local.Session("ada"), alive: map[nsf.UNID]bool{}},
		{db: p.remote, sess: p.remote.Session("ada"), alive: map[nsf.UNID]bool{}},
	}
	var deleted []nsf.UNID

	const rounds = 5
	sessionFailures := 0
	for round := 0; round < rounds; round++ {
		for _, s := range sides {
			for op := 0; op < 12; op++ {
				switch action := rng.Intn(10); {
				case action < 5: // create
					n := nsf.NewNote(nsf.ClassDocument)
					n.SetText("Subject", fmt.Sprintf("r%d doc by %s #%d", round, s.db.Title(), op))
					n.SetText("Body", fmt.Sprintf("body %d", rng.Intn(1e6)))
					if err := s.sess.Create(n); err != nil {
						t.Fatal(err)
					}
					s.docs = append(s.docs, n.OID.UNID)
					s.alive[n.OID.UNID] = true
				case action < 8: // update own doc (disjoint sets: no conflicts possible)
					if len(s.docs) == 0 {
						continue
					}
					u := s.docs[rng.Intn(len(s.docs))]
					if !s.alive[u] {
						continue
					}
					n, err := s.sess.Get(u)
					if err != nil {
						continue
					}
					n.SetText("Body", fmt.Sprintf("edit r%d %d", round, rng.Intn(1e6)))
					if err := s.sess.Update(n); err != nil {
						t.Fatal(err)
					}
				default: // delete own doc
					if len(s.docs) == 0 {
						continue
					}
					u := s.docs[rng.Intn(len(s.docs))]
					if !s.alive[u] {
						continue
					}
					if err := s.sess.Delete(u); err != nil {
						t.Fatal(err)
					}
					s.alive[u] = false
					deleted = append(deleted, u)
				}
			}
		}
		// One replication attempt over the lossy link per round; failures
		// are part of the chaos — a later round resumes.
		if _, err := repl.Replicate(p.local, p.remoteDB, replOpts()); err != nil {
			sessionFailures++
		}
	}

	// Certify: quiesce the link and settle.
	p.fn.Disable()
	for i := 0; i < 3; i++ {
		if _, err := repl.Replicate(p.local, p.remoteDB, replOpts()); err != nil {
			t.Fatalf("settle session %d: %v", i, err)
		}
	}
	assertConverged(t, p.local, p.remote)
	if c := countConflicts(t, p.local) + countConflicts(t, p.remote); c != 0 {
		t.Errorf("disjoint edits produced %d conflict documents (retry duplication)", c)
	}
	for _, u := range deleted {
		for _, db := range []*core.Database{p.local, p.remote} {
			n, err := db.RawGet(u)
			if err != nil {
				t.Fatalf("deleted note %s missing from %s: %v", u, db.Title(), err)
			}
			if !n.IsStub() {
				t.Errorf("seed %d: deleted note %s resurrected on %s", seed, u, db.Title())
			}
		}
	}
	st, err := repl.Replicate(p.local, p.remoteDB, replOpts())
	if err != nil {
		t.Fatal(err)
	}
	if st.Pull.Total()+st.Push.Total() != 0 {
		t.Errorf("seed %d: post-convergence session still changed state: %v", seed, st)
	}
	t.Logf("seed %d: %d/%d sessions failed mid-chaos, faults %+v",
		seed, sessionFailures, rounds, p.fn.Stats())
}
