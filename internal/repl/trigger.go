package repl

import (
	gosync "sync" // the test package declares a helper named sync
	"time"

	"repro/internal/changefeed"
	"repro/internal/core"
	"repro/internal/nsf"
)

// ChangeTrigger turns a database's changefeed into a level-triggered
// replication signal: a scheduled replication loop selects on C() alongside
// its interval ticker and replicates promptly after local writes instead of
// waiting out the polling period. Signals are coalesced — any number of
// changes inside the debounce window produce one firing — and the channel
// has capacity one, so a burst during an in-flight replication run leaves
// exactly one pending signal behind.
//
// Bookkeeping notes (class ClassReplFormula: replication history, unread
// tables) never fire the trigger; the history save at the end of a
// replication run would otherwise retrigger it forever.
type ChangeTrigger struct {
	c   chan struct{}
	sub *changefeed.Subscriber

	mu      gosync.Mutex
	stopped bool
	timer   *time.Timer
}

// NewChangeTrigger subscribes to db's changefeed. debounce is how long the
// trigger waits after the first change before firing, batching write
// bursts into one replication run; <= 0 fires immediately.
func NewChangeTrigger(db *core.Database, debounce time.Duration) *ChangeTrigger {
	t := &ChangeTrigger{c: make(chan struct{}, 1)}
	t.sub = db.OnChange(func(n *nsf.Note) {
		if n.Class == nsf.ClassReplFormula {
			return
		}
		t.kick(debounce)
	})
	return t
}

// kick schedules (or immediately performs) one firing.
func (t *ChangeTrigger) kick(debounce time.Duration) {
	if debounce <= 0 {
		t.mu.Lock()
		stopped := t.stopped
		t.mu.Unlock()
		if !stopped {
			t.fire()
		}
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.timer != nil {
		return // stopped, or a firing is already pending
	}
	t.timer = time.AfterFunc(debounce, func() {
		t.mu.Lock()
		t.timer = nil
		stopped := t.stopped
		t.mu.Unlock()
		if !stopped {
			t.fire()
		}
	})
}

// fire posts the signal, dropping it if one is already pending.
func (t *ChangeTrigger) fire() {
	select {
	case t.c <- struct{}{}:
	default:
	}
}

// C returns the signal channel. Receive from it in a select alongside the
// scheduled interval.
func (t *ChangeTrigger) C() <-chan struct{} { return t.c }

// Kick requests an immediate firing, bypassing the debounce window. It is
// the hook for external "replicate now" signals — e.g. a cluster pusher
// that dropped an event hands the change to the scheduled replicator by
// kicking its trigger, so catch-up starts at once instead of waiting out
// the polling interval.
func (t *ChangeTrigger) Kick() {
	t.mu.Lock()
	stopped := t.stopped
	t.mu.Unlock()
	if !stopped {
		t.fire()
	}
}

// Stop cancels any pending debounce timer, silences future firings, and
// unsubscribes from the database's changefeed, so a stopped trigger (a
// removed mesh link, a finished replication job) leaves no dead cursor
// behind. Idempotent.
func (t *ChangeTrigger) Stop() {
	t.mu.Lock()
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
		t.timer = nil
	}
	t.mu.Unlock()
	t.sub.Unsubscribe()
}
