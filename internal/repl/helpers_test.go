package repl

import (
	"repro/internal/view"
)

func newSubjectDef() (*view.Definition, error) {
	return view.NewDefinition("by subject", "SELECT @All",
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
}
