package repl

import (
	"fmt"
	gosync "sync" // the test package declares a helper named sync

	"repro/internal/formula"
)

// FormulaError reports an invalid selective-replication formula. It is
// returned by Options.Prepare, Replicate, and the summary/push phases, so
// callers that accept link definitions (the mesh admin surface, dominod
// config parsing) can reject a bad formula at construction time with the
// offending source attached, instead of surfacing a parse error in the
// middle of a replication round.
type FormulaError struct {
	// Source is the formula text that failed to compile.
	Source string
	// Err is the underlying compile error.
	Err error
}

func (e *FormulaError) Error() string {
	return fmt.Sprintf("repl: selective formula %q: %v", e.Source, e.Err)
}

func (e *FormulaError) Unwrap() error { return e.Err }

// selCache memoizes compiled selection formulas. Selective links evaluate
// the same few formula sources on every round (and, server-side, on every
// OpSummaries), so compiling per session is pure waste. The cache is
// bounded: past selCacheMax distinct sources it is cleared wholesale —
// formulas are administrator-written link filters, so in practice the
// cache holds a handful of entries and never cycles.
var (
	selCacheMu gosync.Mutex
	selCache   = map[string]*formula.Formula{}
)

const selCacheMax = 512

// CompileSelection compiles (with memoization) a selective-replication
// formula source. An empty source yields a nil formula (replicate
// everything). Compile failures return a *FormulaError.
func CompileSelection(src string) (*formula.Formula, error) {
	if src == "" {
		return nil, nil
	}
	selCacheMu.Lock()
	if f, ok := selCache[src]; ok {
		selCacheMu.Unlock()
		return f, nil
	}
	selCacheMu.Unlock()
	f, err := formula.Compile(src)
	if err != nil {
		return nil, &FormulaError{Source: src, Err: err}
	}
	selCacheMu.Lock()
	if len(selCache) >= selCacheMax {
		selCache = map[string]*formula.Formula{}
	}
	selCache[src] = f
	selCacheMu.Unlock()
	return f, nil
}

// Prepare validates the options ahead of use: the selection formula is
// compiled exactly once and stored on the options, so every session run
// with them reuses the compiled form and a bad formula surfaces here — at
// link/option construction — as a typed *FormulaError rather than
// mid-round. Replicate calls it implicitly when the caller has not.
func (o *Options) Prepare() error {
	if o.Formula == "" {
		o.compiled = nil
		return nil
	}
	f, err := CompileSelection(o.Formula)
	if err != nil {
		return err
	}
	o.compiled = f
	return nil
}

// selection returns the compiled selection formula, compiling (cached)
// when Prepare was not called.
func (o Options) selection() (*formula.Formula, error) {
	if o.compiled != nil && o.compiled.Source() == o.Formula {
		return o.compiled, nil
	}
	return CompileSelection(o.Formula)
}
