package repl

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
)

// TestRandomizedConvergence drives N replicas through random local writes
// interleaved with random pairwise replications, then finishes with enough
// full passes for every change to reach everywhere, and asserts that all
// replicas converge to identical states. This is the system-level
// correctness property of epidemic replication: arbitrary interleavings of
// edits, deletes, and syncs must settle into one agreed state.
func TestRandomizedConvergence(t *testing.T) {
	for _, merge := range []bool{false, true} {
		for seed := int64(1); seed <= 8; seed++ {
			name := fmt.Sprintf("merge=%v/seed=%d", merge, seed)
			t.Run(name, func(t *testing.T) {
				runConvergence(t, seed, merge)
			})
		}
	}
}

func runConvergence(t *testing.T, seed int64, merge bool) {
	const (
		nReplicas = 4
		nOps      = 250
	)
	rng := rand.New(rand.NewSource(seed))
	replica := nsf.NewReplicaID()
	dbs := make([]*core.Database, nReplicas)
	for i := range dbs {
		db, err := core.Open(filepath.Join(t.TempDir(), fmt.Sprintf("r%d.nsf", i)),
			core.Options{Title: fmt.Sprintf("r%d", i), ReplicaID: replica})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		dbs[i] = db
	}
	opts := func() Options {
		return Options{Apply: ApplyOptions{FieldMerge: merge}}
	}
	// Universe of documents each replica may act on (UNIDs shared so
	// replicas contend on the same logical documents).
	var universe []nsf.UNID

	for op := 0; op < nOps; op++ {
		r := rng.Intn(nReplicas)
		db := dbs[r]
		sess := db.Session(fmt.Sprintf("user%d", r))
		switch action := rng.Intn(10); {
		case action < 4: // create
			n := nsf.NewNote(nsf.ClassDocument)
			n.SetText("Subject", fmt.Sprintf("doc-%d-by-r%d", op, r))
			n.SetText("Body", fmt.Sprintf("body %d", rng.Intn(1000)))
			if err := sess.Create(n); err != nil {
				t.Fatal(err)
			}
			universe = append(universe, n.OID.UNID)
		case action < 7: // update, if this replica holds the doc
			if len(universe) == 0 {
				continue
			}
			u := universe[rng.Intn(len(universe))]
			n, err := sess.Get(u)
			if err != nil {
				continue // not here yet, or deleted
			}
			// Touch one of three items so merge paths get exercised.
			switch rng.Intn(3) {
			case 0:
				n.SetText("Body", fmt.Sprintf("edit %d by r%d", op, r))
			case 1:
				n.SetNumber("Priority", float64(rng.Intn(10)))
			default:
				n.SetText("Owner", fmt.Sprintf("user%d", r))
			}
			if err := sess.Update(n); err != nil {
				t.Fatal(err)
			}
		case action < 8: // delete
			if len(universe) == 0 {
				continue
			}
			u := universe[rng.Intn(len(universe))]
			if err := sess.Delete(u); err != nil {
				continue
			}
		default: // replicate with a random peer
			p := rng.Intn(nReplicas)
			if p == r {
				continue
			}
			o := opts()
			o.PeerName = fmt.Sprintf("conv-peer-%d", p)
			if _, err := Replicate(db, &LocalPeer{DB: dbs[p], Opts: o.Apply}, o); err != nil {
				t.Fatalf("mid-run replicate r%d<->r%d: %v", r, p, err)
			}
		}
	}

	// Settle: enough full ring passes for everything to propagate. Each
	// pass moves information at least one hop; conflicts materialize
	// deterministic conflict docs which themselves need to propagate.
	for pass := 0; pass < nReplicas+2; pass++ {
		for i := 0; i < nReplicas; i++ {
			j := (i + 1) % nReplicas
			o := opts()
			o.PeerName = fmt.Sprintf("settle-%d", j)
			if _, err := Replicate(dbs[i], &LocalPeer{DB: dbs[j], Opts: o.Apply}, o); err != nil {
				t.Fatalf("settle replicate: %v", err)
			}
		}
	}
	for i := 1; i < nReplicas; i++ {
		checkConverged(t, dbs[0], dbs[i])
		if t.Failed() {
			t.Fatalf("replica %d diverged (seed %d, merge %v)", i, seed, merge)
		}
	}
	// Sanity: a settled system stays settled — one more pass moves nothing.
	for i := 0; i < nReplicas; i++ {
		j := (i + 1) % nReplicas
		o := opts()
		o.PeerName = fmt.Sprintf("settle-%d", j)
		st, err := Replicate(dbs[i], &LocalPeer{DB: dbs[j], Opts: o.Apply}, o)
		if err != nil {
			t.Fatal(err)
		}
		if st.Pull.Total()+st.Push.Total() != 0 {
			t.Errorf("post-convergence sync still changed state: %v", st)
		}
	}
}
