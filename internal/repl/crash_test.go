// Crash-safety tests for replication history: a session killed between a
// batch apply and the saveHistory that would record it must, on re-run,
// neither resurrect deleted notes nor re-apply updates it already applied.
package repl_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/repl"
)

// flakyPeer wraps a Peer and injects failures at phase boundaries: a Fetch
// that dies after earlier batches were already applied locally, or an
// Apply whose acknowledgment is lost after the peer durably applied it.
// Both model a session killed between "batch apply" and "saveHistory".
type flakyPeer struct {
	repl.Peer
	failFetchAt  int // fail the Nth Fetch call (1-based); 0 = never
	loseApplyAck bool
	fetchCalls   int
	applyCalls   int
}

func (f *flakyPeer) Fetch(unids []nsf.UNID) ([]*nsf.Note, error) {
	f.fetchCalls++
	if f.failFetchAt != 0 && f.fetchCalls >= f.failFetchAt {
		return nil, errors.New("injected: link died mid-pull")
	}
	return f.Peer.Fetch(unids)
}

func (f *flakyPeer) Apply(notes []*nsf.Note) (repl.ApplyStats, error) {
	f.applyCalls++
	if f.loseApplyAck {
		// The peer applies the batch durably, but the session dies before
		// the sender learns of it (and before it saves its push cursor).
		if _, err := f.Peer.Apply(notes); err != nil {
			return repl.ApplyStats{}, err
		}
		return repl.ApplyStats{}, errors.New("injected: ack lost after apply")
	}
	return f.Peer.Apply(notes)
}

// newLocalPair opens two databases in the same replica set.
func newLocalPair(t *testing.T) (*core.Database, *core.Database) {
	t.Helper()
	replica := nsf.NewReplicaID()
	open := func(name string) *core.Database {
		db, err := core.Open(filepath.Join(t.TempDir(), name),
			core.Options{Title: name, ReplicaID: replica})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		return db
	}
	return open("a.nsf"), open("b.nsf")
}

// TestPullCrashBetweenBatchAndSaveHistory kills a pull after its first
// batch applied but before the cursor was saved, then re-runs and checks
// the resumed session converges with deletions intact.
func TestPullCrashBetweenBatchAndSaveHistory(t *testing.T) {
	a, b := newLocalPair(t)
	opts := repl.Options{PeerName: "peer-b", BatchSize: 4}
	healthy := &repl.LocalPeer{DB: b}

	// Baseline: 30 docs on b, cleanly replicated to a.
	bs := b.Session("ada")
	var unids []nsf.UNID
	for i := 0; i < 30; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc %d", i))
		if err := bs.Create(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	if _, err := repl.Replicate(a, healthy, opts); err != nil {
		t.Fatal(err)
	}

	// New work on b: updates and deletions, enough for several batches.
	for i := 0; i < 8; i++ {
		n, err := bs.Get(unids[i])
		if err != nil {
			t.Fatal(err)
		}
		n.SetText("Body", fmt.Sprintf("revised %d", i))
		if err := bs.Update(n); err != nil {
			t.Fatal(err)
		}
	}
	deleted := unids[8:14]
	for _, u := range deleted {
		if err := bs.Delete(u); err != nil {
			t.Fatal(err)
		}
	}

	// Crash: the second Fetch dies. The first batch is already applied on
	// a, but the pull cursor was never saved.
	flaky := &flakyPeer{Peer: healthy, failFetchAt: 2}
	st, err := repl.Replicate(a, flaky, opts)
	if err == nil {
		t.Fatal("injected mid-pull crash did not surface")
	}
	if st.Pull.Total() == 0 {
		t.Fatal("crash landed before any batch applied; test exercises nothing")
	}
	applied := st.Pull.Total()

	// Resume against the healthy peer: the already-applied batch must
	// re-list as skips, not as fresh changes.
	st2, err := repl.Replicate(a, healthy, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pull.Skipped < applied {
		t.Errorf("resumed pull skipped %d, want >= %d (batch re-applied instead)",
			st2.Pull.Skipped, applied)
	}
	assertConverged(t, a, b)
	for _, u := range deleted {
		n, err := a.RawGet(u)
		if err != nil {
			t.Fatalf("deleted note %s missing after resume: %v", u, err)
		}
		if !n.IsStub() {
			t.Errorf("deleted note %s resurrected by resumed session", u)
		}
	}
	if c := countConflicts(t, a) + countConflicts(t, b); c != 0 {
		t.Errorf("resumed session fabricated %d conflicts", c)
	}
	st3, err := repl.Replicate(a, healthy, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Pull.Total()+st3.Push.Total() != 0 {
		t.Errorf("idle session after resume still changed state: %v", st3)
	}
}

// TestPushAckLostBetweenApplyAndSaveHistory loses the acknowledgment of a
// push batch the peer durably applied: the re-run must re-offer the batch
// and the peer must absorb it as skips, with no double-applied updates.
func TestPushAckLostBetweenApplyAndSaveHistory(t *testing.T) {
	a, b := newLocalPair(t)
	opts := repl.Options{PeerName: "peer-b", BatchSize: 64}
	healthy := &repl.LocalPeer{DB: b}

	as := a.Session("ada")
	var unids []nsf.UNID
	for i := 0; i < 10; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("note %d", i))
		if err := as.Create(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}

	flaky := &flakyPeer{Peer: healthy, loseApplyAck: true}
	if _, err := repl.Replicate(a, flaky, opts); err == nil {
		t.Fatal("injected lost ack did not surface")
	}
	// The batch IS on b — only the ack (and the push cursor) were lost.
	if n, err := b.RawGet(unids[0]); err != nil || n.IsStub() {
		t.Fatalf("peer lost the applied batch: %v", err)
	}

	// Re-run: everything re-offers and must land as skips. A re-applied
	// update would show up in Added/Updated and as a seq divergence.
	st, err := repl.Replicate(a, healthy, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Push.Added != 0 || st.Push.Updated != 0 {
		t.Errorf("retried push re-applied notes: %+v", st.Push)
	}
	if st.Push.Skipped != len(unids) {
		t.Errorf("retried push skipped %d, want %d", st.Push.Skipped, len(unids))
	}
	assertConverged(t, a, b)
	for _, u := range unids {
		na, _ := a.RawGet(u)
		nb, err := b.RawGet(u)
		if err != nil {
			t.Fatal(err)
		}
		if na.OID != nb.OID {
			t.Errorf("note %s OID diverged after retry: %v vs %v", u, na.OID, nb.OID)
		}
	}
	st2, err := repl.Replicate(a, healthy, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Pull.Total()+st2.Push.Total() != 0 {
		t.Errorf("idle session after retry still changed state: %v", st2)
	}
}
