package repl

import (
	"fmt"
	"runtime"
	gosync "sync"
	"testing"

	"repro/internal/nsf"
)

// TestSaveHistoryConcurrentSeq is the regression test for the unlocked
// history read-modify-write: overlapping sessions against one peer (the
// scheduler plus a change trigger, say) could both read the history note at
// Seq=N and both stamp N+1, forking its version chain. Serialized, N
// concurrent saves advance Seq by exactly N.
func TestSaveHistoryConcurrentSeq(t *testing.T) {
	// Widen the scheduler so preemption can land inside the history
	// read-modify-write; at GOMAXPROCS=1 the pre-fix race almost never
	// fires.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	a, _ := pairedDBs(t)
	const (
		savers = 8
		rounds = 10
	)
	var wg gosync.WaitGroup
	for s := 0; s < savers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				h := history{
					LastPull: nsf.Timestamp(s*rounds + i),
					LastPush: nsf.Timestamp(s*rounds + i),
				}
				if err := saveHistory(a, "peer", h); err != nil {
					t.Errorf("saveHistory: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	n, err := a.RawGet(historyUNID("peer"))
	if err != nil {
		t.Fatalf("RawGet history: %v", err)
	}
	// The first save creates the note at Seq=1 and advances it to 2; each
	// further save adds one. N saves total land on Seq = N+1.
	if want := uint32(savers*rounds + 1); n.OID.Seq != want {
		t.Errorf("history Seq = %d after %d concurrent saves, want %d — duplicate sequence numbers were stamped",
			n.OID.Seq, savers*rounds, want)
	}
	if problems := a.Verify(); len(problems) > 0 {
		t.Fatalf("Verify: %v", problems)
	}
	// Distinct peers must not interfere (they may share a lock stripe, which
	// only over-serializes).
	if err := saveHistory(a, fmt.Sprintf("other-%d", 1), history{}); err != nil {
		t.Fatalf("saveHistory other peer: %v", err)
	}
	if n, err := a.RawGet(historyUNID("other-1")); err != nil || n.OID.Seq != 2 {
		t.Fatalf("other peer history: %v, Seq=%d, want 2", err, n.OID.Seq)
	}
}
