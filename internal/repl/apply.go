package repl

import (
	"errors"
	"strings"

	"repro/internal/core"
	"repro/internal/nsf"
)

// ApplyOptions tune conflict handling on the receiving side.
type ApplyOptions struct {
	// FieldMerge resolves conflicts whose edits touched disjoint item sets
	// by merging instead of creating a conflict document.
	FieldMerge bool
}

// ApplyNote applies one incoming note to db under the Notes replication
// rules, returning what happened. It is the receiving half of replication
// and is deterministic: applying the same note twice, or on two replicas
// holding the same state, yields identical results.
func ApplyNote(db *core.Database, incoming *nsf.Note, opts ApplyOptions) (ApplyStats, error) {
	var st ApplyStats
	local, err := db.RawGet(incoming.OID.UNID)
	if errors.Is(err, core.ErrNotFound) {
		// New to this replica. Stubs are stored too: the deletion must keep
		// propagating to replicas that still hold the document.
		if err := db.RawPut(incoming.Clone()); err != nil {
			return st, err
		}
		if incoming.IsStub() {
			st.Deleted++
		} else {
			st.Added++
		}
		return st, nil
	}
	if err != nil {
		return st, err
	}
	if local.OID == incoming.OID {
		// A selection stub meeting the live version it shadows: the stub was
		// materialized because a link's formula withheld this exact version,
		// so the live copy resurrects the content without a version bump.
		if local.IsSelStub() && !incoming.IsStub() {
			if err := db.RawPut(incoming.Clone()); err != nil {
				return st, err
			}
			st.Added++
			return st, nil
		}
		st.Skipped++
		return st, nil
	}
	// Deletions win regardless of sequence numbers: a live version with the
	// same UNID racing a stub is by definition a concurrent edit of a
	// deleted document, and Notes' "deletions win" rule discards it. (A
	// legitimately recreated document would carry a fresh UNID.)
	//
	// Selection stubs are the exception: they stand in for a version a
	// formula withheld, not a deletion, so they carry no deletion authority
	// and the plain OID comparison decides — a strictly newer live version
	// (the document re-entering the selection) resurrects the document, and
	// a stale selection stub never kills a newer live copy.
	if incoming.IsStub() != local.IsStub() {
		stub := incoming
		if local.IsStub() {
			stub = local
		}
		if !stub.IsSelStub() {
			if incoming.IsStub() {
				if err := db.RawPut(incoming.Clone()); err != nil {
					return st, err
				}
				st.Deleted++
			} else {
				st.Skipped++ // the local stub stands
			}
			return st, nil
		}
		if incoming.OID.Newer(local.OID) {
			if err := db.RawPut(incoming.Clone()); err != nil {
				return st, err
			}
			if incoming.IsStub() {
				st.Deleted++
			} else {
				st.Added++ // resurrection: the document re-entered the selection
			}
		} else {
			st.Skipped++
		}
		return st, nil
	}
	switch {
	case incoming.OID.Seq == local.OID.Seq:
		// Same edit count on both sides: a true concurrent-edit conflict.
		return applyConflict(db, local, incoming, opts)
	case incoming.OID.Newer(local.OID):
		if err := db.RawPut(incoming.Clone()); err != nil {
			return st, err
		}
		if incoming.IsStub() && !local.IsStub() {
			st.Deleted++
		} else {
			st.Updated++
		}
		return st, nil
	default:
		// Local version is strictly newer; the push direction handles it.
		st.Skipped++
		return st, nil
	}
}

// applyConflict resolves an equal-sequence conflict between the local and
// incoming versions.
func applyConflict(db *core.Database, local, incoming *nsf.Note, opts ApplyOptions) (ApplyStats, error) {
	var st ApplyStats
	winner, loser := local, incoming
	if incoming.OID.Newer(local.OID) {
		winner, loser = incoming, local
	}
	// Deletion wins its conflicts outright, regardless of sequence time: no
	// conflict document is made for a delete-vs-edit race (the edit is
	// simply lost, as in Notes with "deletions win").
	if winner.IsStub() || loser.IsStub() {
		stub := winner
		if loser.IsStub() {
			stub = loser
		}
		if stub == local {
			st.Skipped++
			return st, nil
		}
		if err := db.RawPut(stub.Clone()); err != nil {
			return st, err
		}
		st.Deleted++
		return st, nil
	}
	// If the winner already carries the loser's changes (it is a merge the
	// loser's edit already flowed into, or the two edits were identical),
	// there is nothing to preserve: accept the winner. This keeps replicas
	// that meet a merged note and a raw loser from re-detecting a conflict.
	if loserSubsumed(winner, loser) {
		if winner != local {
			if err := db.RawPut(winner.Clone()); err != nil {
				return st, err
			}
			st.Updated++
		} else {
			st.Skipped++
		}
		return st, nil
	}
	if opts.FieldMerge {
		if merged, ok := mergeDisjoint(winner, loser); ok {
			if err := db.RawPut(merged); err != nil {
				return st, err
			}
			st.Merged++
			return st, nil
		}
	}
	// Keep the winner as the main document and preserve the loser as a
	// conflict response document with a deterministic UNID.
	if winner != local {
		if err := db.RawPut(winner.Clone()); err != nil {
			return st, err
		}
	}
	conflict := loser.Clone()
	conflict.ID = 0
	conflict.OID = nsf.OID{
		UNID:    conflictUNID(loser.OID),
		Seq:     1,
		SeqTime: loser.OID.SeqTime,
	}
	conflict.Flags |= nsf.FlagConflict
	conflict.SetWithFlags("$Conflict", nsf.TextValue("1"), nsf.FlagSummary)
	conflict.SetWithFlags("$Ref", nsf.TextValue(winner.OID.UNID.String()), nsf.FlagSummary)
	if err := db.RawPut(conflict); err != nil {
		return st, err
	}
	st.Conflicts++
	return st, nil
}

// mergeDisjoint merges two conflicting versions when the item sets they
// changed in their final edits are disjoint. The merge is deterministic
// (independent of which replica performs it): content is the winner's items
// plus the loser's changed items, and the merged OID advances the sequence
// time past both inputs while keeping the shared sequence number.
func mergeDisjoint(winner, loser *nsf.Note) (*nsf.Note, bool) {
	wChanged := changedItemSet(winner)
	lChanged := changedItemSet(loser)
	for name := range lChanged {
		if wChanged[name] {
			return nil, false
		}
	}
	merged := winner.Clone()
	merged.ID = 0
	for _, it := range loser.Items {
		if lChanged[strings.ToLower(it.Name)] {
			c := it.Clone()
			merged.Remove(c.Name)
			merged.Items = append(merged.Items, c)
		}
	}
	// Items removed by the loser's edit: absent from loser but carrying a
	// stale revision in the winner. Without per-item tombstones removals
	// are not distinguishable from "unchanged", so removals only merge when
	// they were the winner's; the loser's removals are overridden by the
	// winner's copy. This asymmetry is deterministic, which is what
	// convergence needs.
	maxTime := winner.OID.SeqTime
	if loser.OID.SeqTime > maxTime {
		maxTime = loser.OID.SeqTime
	}
	merged.OID.SeqTime = maxTime + 1
	return merged, true
}

// loserSubsumed reports whether every item changed by the loser's edit is
// already present in the winner with the same value.
func loserSubsumed(winner, loser *nsf.Note) bool {
	for _, it := range loser.Items {
		if it.Rev != loser.OID.Seq {
			continue
		}
		wIt, ok := winner.Item(it.Name)
		if !ok || !wIt.Value.Equal(it.Value) {
			return false
		}
	}
	return true
}

// changedItemSet returns the lower-cased names of items whose revision
// matches the note's current sequence number — i.e. the items touched by
// the edit that created this version.
func changedItemSet(n *nsf.Note) map[string]bool {
	out := make(map[string]bool)
	for _, it := range n.Items {
		if it.Rev == n.OID.Seq {
			out[strings.ToLower(it.Name)] = true
		}
	}
	return out
}
