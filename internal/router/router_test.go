package router

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/nsf"
)

type fixture struct {
	r     *Router
	mail  map[string]*core.Database
	fwd   []string // "server:recipients" log
	d     *dir.Directory
	t     *testing.T
	dirNo int
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", MailFile: "mail/ada.nsf"})
	d.AddUser(dir.User{Name: "bob", MailFile: "mail/bob.nsf"})
	d.AddUser(dir.User{Name: "roy", MailFile: "mail/roy.nsf", MailServer: "remote1"})
	d.AddUser(dir.User{Name: "nofile"})
	d.AddGroup("team", "ada", "bob")
	mailbox, err := core.Open(filepath.Join(t.TempDir(), "mail.box"), core.Options{Title: "mail.box"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mailbox.Close() })
	f := &fixture{mail: make(map[string]*core.Database), d: d, t: t}
	f.r = &Router{
		ServerName: "local",
		Mailbox:    mailbox,
		Directory:  d,
		OpenMailFile: func(path string) (*core.Database, error) {
			if db, ok := f.mail[path]; ok {
				return db, nil
			}
			f.dirNo++
			db, err := core.Open(filepath.Join(t.TempDir(), fmt.Sprintf("m%d.nsf", f.dirNo)), core.Options{Title: path})
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { db.Close() })
			f.mail[path] = db
			return db, nil
		},
		Forward: func(server string, msg *nsf.Note) error {
			f.fwd = append(f.fwd, server+":"+strings.Join(msg.TextList(ItemSendTo), ","))
			return nil
		},
	}
	return f
}

func message(to ...string) *nsf.Note {
	m := nsf.NewNote(nsf.ClassDocument)
	m.SetText(ItemSendTo, to...)
	m.SetText(ItemFrom, "sender")
	m.SetText(ItemSubject, "hi")
	m.SetText("Body", "hello there")
	return m
}

func (f *fixture) inboxCount(path string) int {
	db, ok := f.mail[path]
	if !ok {
		return 0
	}
	count := 0
	db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() {
			count++
		}
		return true
	})
	return count
}

func TestLocalDelivery(t *testing.T) {
	f := newFixture(t)
	if err := f.r.Deposit(message("ada")); err != nil {
		t.Fatalf("Deposit: %v", err)
	}
	st, err := f.r.RouteOnce()
	if err != nil {
		t.Fatalf("RouteOnce: %v", err)
	}
	if st.Delivered != 1 || st.Forwarded != 0 || st.DeadLetter != 0 {
		t.Errorf("stats = %+v", st)
	}
	if f.inboxCount("mail/ada.nsf") != 1 {
		t.Error("message not in ada's mail file")
	}
	// mail.box is drained.
	if f.r.Mailbox.Count() != 0 {
		t.Errorf("mail.box still has %d notes", f.r.Mailbox.Count())
	}
	// Delivered copy has a DeliveredDate.
	db := f.mail["mail/ada.nsf"]
	db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && n.Time(ItemDeliveredDate) == 0 {
			t.Error("delivered message missing DeliveredDate")
		}
		return true
	})
}

func TestGroupExpansion(t *testing.T) {
	f := newFixture(t)
	f.r.Deposit(message("team"))
	st, err := f.r.RouteOnce()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 2 {
		t.Errorf("delivered %d, want 2", st.Delivered)
	}
	if f.inboxCount("mail/ada.nsf") != 1 || f.inboxCount("mail/bob.nsf") != 1 {
		t.Error("group members did not each get a copy")
	}
}

func TestRemoteForwarding(t *testing.T) {
	f := newFixture(t)
	f.r.Deposit(message("ada", "roy"))
	st, err := f.r.RouteOnce()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.Forwarded != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(f.fwd) != 1 || f.fwd[0] != "remote1:roy" {
		t.Errorf("forward log = %v", f.fwd)
	}
}

func TestDeadLetters(t *testing.T) {
	f := newFixture(t)
	f.r.Deposit(message("ghost", "ada"))
	st, err := f.r.RouteOnce()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 || st.DeadLetter != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The dead letter stays in mail.box, marked, and is not re-routed.
	if f.r.Mailbox.Count() != 1 {
		t.Errorf("mail.box count = %d", f.r.Mailbox.Count())
	}
	st, err = f.r.RouteOnce()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 0 && st.DeadLetter != 0 {
		t.Errorf("dead letter re-routed: %+v", st)
	}
}

func TestNoFileUserDeadLetters(t *testing.T) {
	f := newFixture(t)
	f.r.Deposit(message("nofile"))
	st, _ := f.r.RouteOnce()
	if st.DeadLetter != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDepositRejectsNoRecipients(t *testing.T) {
	f := newFixture(t)
	m := message()
	if err := f.r.Deposit(m); err == nil {
		t.Error("empty SendTo accepted")
	}
}

func TestThroughputManyMessages(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 100; i++ {
		if err := f.r.Deposit(message("ada")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := f.r.RouteOnce()
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 100 {
		t.Errorf("delivered %d", st.Delivered)
	}
	if f.inboxCount("mail/ada.nsf") != 100 {
		t.Errorf("inbox has %d", f.inboxCount("mail/ada.nsf"))
	}
}
