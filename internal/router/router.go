// Package router implements Notes mail routing. Mail is just documents: a
// client deposits a memo into the server's mail.box database; the router
// task delivers it into local recipients' mail files and forwards it to the
// home servers of remote recipients.
package router

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/nsf"
)

// Mail item names.
const (
	ItemSendTo        = "SendTo"
	ItemFrom          = "From"
	ItemSubject       = "Subject"
	ItemDeliveredDate = "DeliveredDate"
	ItemRoutingState  = "$RoutingState"
	ItemFailureReason = "$FailureReason"

	stateDead = "dead"
)

// Router moves messages from mail.box to their destinations.
type Router struct {
	// ServerName is the local server's name, matched against users'
	// MailServer fields.
	ServerName string
	// Mailbox is the mail.box database messages are deposited into.
	Mailbox *core.Database
	// Directory resolves recipients.
	Directory *dir.Directory
	// OpenMailFile opens (or creates) a local mail database by path.
	OpenMailFile func(path string) (*core.Database, error)
	// Forward sends a message to a remote server's mail.box; nil disables
	// forwarding (remote mail dead-letters).
	Forward func(server string, msg *nsf.Note) error
}

// Stats reports one routing pass.
type Stats struct {
	Delivered  int // local recipient deliveries
	Forwarded  int // messages handed to remote servers
	DeadLetter int // undeliverable recipients
}

// Deposit validates and stores a message in mail.box. The message keeps the
// sender-supplied items; routing state is tracked separately.
func (r *Router) Deposit(msg *nsf.Note) error {
	if len(expandRecipients(r.Directory, msg.TextList(ItemSendTo))) == 0 {
		return fmt.Errorf("router: message has no recipients")
	}
	m := msg.Clone()
	if m.OID.UNID.IsZero() {
		m.OID.UNID = nsf.NewUNID()
	}
	m.ID = 0
	m.Class = nsf.ClassDocument
	if m.OID.Seq == 0 {
		m.OID.Seq = 1
	}
	now := r.Mailbox.Clock().Now()
	m.OID.SeqTime = now
	if m.Created == 0 {
		m.Created = now
	}
	return r.Mailbox.RawPut(m)
}

// expandRecipients resolves groups in a SendTo list into user names.
func expandRecipients(d *dir.Directory, sendTo []string) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(name string) {
		k := strings.ToLower(strings.TrimSpace(name))
		if k != "" && !seen[k] {
			seen[k] = true
			out = append(out, name)
		}
	}
	for _, name := range sendTo {
		if d != nil {
			if _, ok := d.Members(name); ok {
				for _, u := range d.ExpandGroup(name) {
					add(u)
				}
				continue
			}
		}
		add(name)
	}
	return out
}

// RouteOnce performs one routing pass over mail.box, returning statistics.
// Messages already dead-lettered are skipped; everything else is delivered,
// forwarded, or dead-lettered and then removed from mail.box.
func (r *Router) RouteOnce() (Stats, error) {
	var stats Stats
	var pending []*nsf.Note
	err := r.Mailbox.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() && n.Text(ItemRoutingState) != stateDead {
			pending = append(pending, n)
		}
		return true
	})
	if err != nil {
		return stats, err
	}
	for _, msg := range pending {
		failures, err := r.routeMessage(msg, &stats)
		if err != nil {
			return stats, err
		}
		if len(failures) > 0 {
			// Keep the message as a dead letter recording what failed.
			dead := msg.Clone()
			dead.SetText(ItemRoutingState, stateDead)
			dead.SetText(ItemFailureReason, failures...)
			dead.OID.Seq++
			dead.OID.SeqTime = r.Mailbox.Clock().Now()
			if err := r.Mailbox.RawPut(dead); err != nil {
				return stats, err
			}
			stats.DeadLetter += len(failures)
			continue
		}
		if err := r.Mailbox.RawDelete(msg.OID.UNID); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// routeMessage delivers one message to all recipients, returning failure
// descriptions for those that could not be handled.
func (r *Router) routeMessage(msg *nsf.Note, stats *Stats) ([]string, error) {
	recipients := expandRecipients(r.Directory, msg.TextList(ItemSendTo))
	var failures []string
	// Group remote recipients per server so each server gets one copy.
	remote := make(map[string][]string)
	for _, name := range recipients {
		u, ok := r.Directory.Lookup(name)
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no such user", name))
			continue
		}
		if u.MailServer != "" && !strings.EqualFold(u.MailServer, r.ServerName) {
			remote[u.MailServer] = append(remote[u.MailServer], u.Name)
			continue
		}
		if u.MailFile == "" {
			failures = append(failures, fmt.Sprintf("%s: no mail file", name))
			continue
		}
		if err := r.deliverLocal(u, msg); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		stats.Delivered++
	}
	for server, names := range remote {
		if r.Forward == nil {
			for _, n := range names {
				failures = append(failures, fmt.Sprintf("%s: no route to server %s", n, server))
			}
			continue
		}
		fwd := msg.Clone()
		fwd.SetText(ItemSendTo, names...)
		if err := r.Forward(server, fwd); err != nil {
			for _, n := range names {
				failures = append(failures, fmt.Sprintf("%s: forward to %s: %v", n, server, err))
			}
			continue
		}
		stats.Forwarded++
	}
	return failures, nil
}

// deliverLocal copies the message into a local user's mail file.
func (r *Router) deliverLocal(u dir.User, msg *nsf.Note) error {
	if r.OpenMailFile == nil {
		return errors.New("router: no mail file opener configured")
	}
	db, err := r.OpenMailFile(u.MailFile)
	if err != nil {
		return err
	}
	copyMsg := msg.Clone()
	copyMsg.ID = 0
	copyMsg.OID = nsf.OID{UNID: nsf.NewUNID(), Seq: 1, SeqTime: db.Clock().Now()}
	copyMsg.SetTime(ItemDeliveredDate, db.Clock().Now())
	copyMsg.Remove(ItemRoutingState)
	return db.RawPut(copyMsg)
}
