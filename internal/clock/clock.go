// Package clock provides a hybrid logical clock: timestamps that track wall
// time but are guaranteed strictly monotonic per process. Replication uses
// them as originator sequence times, so ties between two saves on the same
// machine can never occur.
package clock

import (
	"sync"
	"time"

	"repro/internal/nsf"
)

// Clock issues strictly increasing nsf.Timestamps.
type Clock struct {
	mu   sync.Mutex
	last nsf.Timestamp
	// now is the wall-time source; tests may replace it.
	now func() time.Time
}

// New returns a Clock backed by the system wall clock.
func New() *Clock {
	return &Clock{now: time.Now}
}

// NewAt returns a Clock backed by the given wall-time source; useful for
// deterministic tests and simulations.
func NewAt(now func() time.Time) *Clock {
	return &Clock{now: now}
}

// Now returns a timestamp strictly greater than every previous timestamp
// issued by c, never behind the wall clock.
func (c *Clock) Now() nsf.Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := nsf.TimestampOf(c.now())
	if t <= c.last {
		t = c.last + 1
	}
	c.last = t
	return t
}

// Observe advances the clock past a timestamp seen from elsewhere (for
// example a replication peer), so that locally issued timestamps remain
// ahead of everything this node has witnessed.
func (c *Clock) Observe(t nsf.Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.last {
		c.last = t
	}
}
