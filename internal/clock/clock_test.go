package clock

import (
	"sync"
	"testing"
	"time"

	"repro/internal/nsf"
)

func TestMonotonic(t *testing.T) {
	c := New()
	prev := c.Now()
	for i := 0; i < 10000; i++ {
		cur := c.Now()
		if cur <= prev {
			t.Fatalf("timestamp went backwards: %d then %d", prev, cur)
		}
		prev = cur
	}
}

func TestFrozenWallClockStillAdvances(t *testing.T) {
	fixed := time.Unix(1000, 0)
	c := NewAt(func() time.Time { return fixed })
	a, b := c.Now(), c.Now()
	if b != a+1 {
		t.Errorf("frozen clock: got %d then %d, want +1 steps", a, b)
	}
}

func TestObserve(t *testing.T) {
	fixed := time.Unix(1000, 0)
	c := NewAt(func() time.Time { return fixed })
	future := nsf.TimestampOf(fixed.Add(time.Hour))
	c.Observe(future)
	if got := c.Now(); got <= future {
		t.Errorf("Now after Observe = %d, want > %d", got, future)
	}
	// Observing the past must not rewind.
	c.Observe(1)
	if got := c.Now(); got <= future {
		t.Errorf("Observe rewound the clock: %d", got)
	}
}

func TestConcurrentUnique(t *testing.T) {
	c := New()
	const goroutines, per = 8, 2000
	seen := make([]nsf.Timestamp, goroutines*per)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g*per+i] = c.Now()
			}
		}(g)
	}
	wg.Wait()
	uniq := make(map[nsf.Timestamp]bool, len(seen))
	for _, ts := range seen {
		if uniq[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		uniq[ts] = true
	}
}
