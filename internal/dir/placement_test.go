package dir

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

func TestGroupDisplayNamePreservesCasing(t *testing.T) {
	d := New()
	d.AddUser(User{Name: "alice"})
	d.AddGroup("Core Team", "alice")
	d.AddGroup("ENG", "Core Team")

	got := d.GroupsOf("alice")
	want := []string{"Core Team", "ENG"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupsOf(alice) = %v, want registered capitalization %v", got, want)
	}
	// Re-registering with different casing updates the display name.
	d.AddGroup("eng", "Core Team")
	got = d.GroupsOf("alice")
	want = []string{"Core Team", "eng"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupsOf after re-register = %v, want %v", got, want)
	}
}

func TestPlacementCRUD(t *testing.T) {
	d := New()
	if _, ok := d.GetPlacement("mail/ada.nsf"); ok {
		t.Fatal("GetPlacement found a record in an empty directory")
	}
	p, err := d.SetPlacement("mail/ada.nsf", []string{"alpha", "beta", "alpha", " "}, 0)
	if err != nil {
		t.Fatalf("SetPlacement: %v", err)
	}
	if p.Generation != 1 || !reflect.DeepEqual(p.Home, []string{"alpha", "beta"}) || p.Replicas != 2 {
		t.Fatalf("SetPlacement = %+v", p)
	}
	got, ok := d.GetPlacement("MAIL/ADA.NSF") // case-insensitive key
	if !ok || got.Generation != 1 {
		t.Fatalf("GetPlacement = %+v, %v", got, ok)
	}
	if !got.HasHome("ALPHA") || got.HasHome("gamma") {
		t.Errorf("HasHome wrong: %+v", got)
	}
	// Snapshot isolation: mutating the returned slice must not leak in.
	got.Home[0] = "evil"
	again, _ := d.GetPlacement("mail/ada.nsf")
	if again.Home[0] != "alpha" {
		t.Error("GetPlacement returned an aliased home slice")
	}

	d.SetPlacement("apps/db.nsf", []string{"gamma"}, 1)
	all := d.Placements()
	if len(all) != 2 || all[0].Path != "apps/db.nsf" || all[1].Path != "mail/ada.nsf" {
		t.Fatalf("Placements = %+v", all)
	}

	d.RemovePlacement("apps/db.nsf")
	if _, ok := d.GetPlacement("apps/db.nsf"); ok {
		t.Error("RemovePlacement left the record")
	}
}

func TestUpdatePlacementCAS(t *testing.T) {
	d := New()
	p, _ := d.SetPlacement("mail/ada.nsf", []string{"alpha"}, 1)

	// Wrong generation loses.
	if _, err := d.UpdatePlacement("mail/ada.nsf", p.Generation+5, []string{"beta"}, 1); !errors.Is(err, ErrPlacementConflict) {
		t.Fatalf("stale CAS err = %v, want ErrPlacementConflict", err)
	}
	// Right generation wins and bumps.
	p2, err := d.UpdatePlacement("mail/ada.nsf", p.Generation, []string{"beta"}, 1)
	if err != nil {
		t.Fatalf("UpdatePlacement: %v", err)
	}
	if p2.Generation != p.Generation+1 || p2.Home[0] != "beta" {
		t.Fatalf("UpdatePlacement = %+v", p2)
	}
	// The old generation is now dead.
	if _, err := d.UpdatePlacement("mail/ada.nsf", p.Generation, []string{"gamma"}, 1); !errors.Is(err, ErrPlacementConflict) {
		t.Fatalf("replayed CAS err = %v, want ErrPlacementConflict", err)
	}
	// expectGen 0 means create-only.
	if _, err := d.UpdatePlacement("mail/ada.nsf", 0, []string{"gamma"}, 1); !errors.Is(err, ErrPlacementConflict) {
		t.Fatalf("create-over-existing err = %v, want ErrPlacementConflict", err)
	}
	if p3, err := d.UpdatePlacement("new.nsf", 0, []string{"gamma"}, 1); err != nil || p3.Generation != 1 {
		t.Fatalf("create via CAS = %+v, %v", p3, err)
	}
}

func TestUpdatePlacementExactlyOneWinnerPerGeneration(t *testing.T) {
	d := New()
	p, _ := d.SetPlacement("mail/ada.nsf", []string{"alpha"}, 1)
	const racers = 16
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := d.UpdatePlacement("mail/ada.nsf", p.Generation, []string{"beta"}, 1); err == nil {
				wins <- i
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	n := 0
	for range wins {
		n++
	}
	if n != 1 {
		t.Fatalf("%d racers won generation %d, want exactly 1", n, p.Generation)
	}
}

func TestRendezvousHome(t *testing.T) {
	mates := []string{"alpha", "beta", "gamma"}
	h1 := RendezvousHome("mail/ada.nsf", mates, 2)
	h2 := RendezvousHome("mail/ada.nsf", []string{"gamma", "alpha", "beta"}, 2)
	if len(h1) != 2 {
		t.Fatalf("RendezvousHome len = %d", len(h1))
	}
	sortCopy := func(s []string) []string {
		out := append([]string(nil), s...)
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[j] < out[i] {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
		return out
	}
	if !reflect.DeepEqual(sortCopy(h1), sortCopy(h2)) {
		t.Errorf("RendezvousHome not order-independent: %v vs %v", h1, h2)
	}
	// Deterministic across calls.
	if !reflect.DeepEqual(h1, RendezvousHome("mail/ada.nsf", mates, 2)) {
		t.Error("RendezvousHome not deterministic")
	}
	// Removing a non-chosen mate must not disturb the assignment.
	var other string
	for _, m := range mates {
		chosen := false
		for _, h := range h1 {
			if h == m {
				chosen = true
			}
		}
		if !chosen {
			other = m
		}
	}
	reduced := RendezvousHome("mail/ada.nsf", []string{h1[0], h1[1]}, 2)
	_ = other
	if !reflect.DeepEqual(sortCopy(reduced), sortCopy(h1)) {
		t.Errorf("removing unchosen mate disturbed placement: %v vs %v", reduced, h1)
	}
	// Replica factor clamps to the mate count.
	if got := RendezvousHome("x.nsf", []string{"alpha"}, 5); len(got) != 1 {
		t.Errorf("clamp failed: %v", got)
	}
	if RendezvousHome("x.nsf", nil, 1) != nil {
		t.Error("no mates should yield nil")
	}
	// Distribution sanity: over many paths each of 3 mates gets some share.
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		h := RendezvousHome(pathN(i), mates, 1)
		counts[h[0]]++
	}
	for _, m := range mates {
		if counts[m] < 30 {
			t.Errorf("mate %s got only %d/300 single-replica placements: %v", m, counts[m], counts)
		}
	}
}

func pathN(i int) string {
	return "mail/user" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + ".nsf"
}

func TestAssignPlacement(t *testing.T) {
	d := New()
	p1, err := d.AssignPlacement("mail/ada.nsf", []string{"alpha", "beta", "gamma"}, 2)
	if err != nil {
		t.Fatalf("AssignPlacement: %v", err)
	}
	if len(p1.Home) != 2 || p1.Generation != 1 {
		t.Fatalf("AssignPlacement = %+v", p1)
	}
	// Existing records are kept, not reassigned.
	p2, err := d.AssignPlacement("mail/ada.nsf", []string{"delta"}, 1)
	if err != nil || !reflect.DeepEqual(p2.Home, p1.Home) || p2.Generation != p1.Generation {
		t.Fatalf("AssignPlacement over existing = %+v, %v", p2, err)
	}
	if _, err := d.AssignPlacement("x.nsf", nil, 1); err == nil {
		t.Error("AssignPlacement with no mates accepted")
	}
}

func TestPlacementVersionBumps(t *testing.T) {
	d := New()
	v0 := d.PlacementVersion()
	d.SetPlacement("a.nsf", []string{"alpha"}, 1)
	v1 := d.PlacementVersion()
	if v1 <= v0 {
		t.Fatalf("version not bumped on set: %d -> %d", v0, v1)
	}
	d.UpdatePlacement("a.nsf", 1, []string{"beta"}, 1)
	v2 := d.PlacementVersion()
	if v2 <= v1 {
		t.Fatalf("version not bumped on update: %d -> %d", v1, v2)
	}
	d.RemovePlacement("a.nsf")
	if d.PlacementVersion() <= v2 {
		t.Fatal("version not bumped on remove")
	}
	d.RemovePlacement("a.nsf") // no-op: no bump
	if d.PlacementVersion() != v2+1 {
		t.Fatal("no-op remove bumped version")
	}
}
