// Placement records: the directory's map from each database to the cluster
// mates that home it. This is the Domino "cluster replica" model — a database
// lives on a subset of the cluster, the directory says which subset, and
// clients resolve placement before opening. Records carry a generation number
// so concurrent movers can be serialized with compare-and-swap updates and so
// clients can tell a stale cache from a fresh one.
package dir

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Placement maps one database to its home mates.
type Placement struct {
	// Path is the database path as stored on every home mate, e.g.
	// "mail/ada.nsf".
	Path string
	// Home lists the cluster-mate names that hold a replica and may serve
	// the database. Order is not significant; names are as registered.
	Home []string
	// Replicas is the target replica factor. It may exceed len(Home) while
	// the rebalancer is still materializing copies.
	Replicas int
	// Generation increments on every change to this record. A client or
	// mover holding generation G knows its view is stale the moment it
	// sees G' > G.
	Generation uint64
}

// Homes returns a copy of the home set.
func (p Placement) Homes() []string { return append([]string(nil), p.Home...) }

// HasHome reports whether mate (case-insensitive) is in the home set.
func (p Placement) HasHome(mate string) bool {
	for _, h := range p.Home {
		if strings.EqualFold(strings.TrimSpace(h), strings.TrimSpace(mate)) {
			return true
		}
	}
	return false
}

// ErrPlacementConflict is returned by UpdatePlacement when the record changed
// under the caller: the expected generation no longer matches. Exactly one of
// any set of racing movers wins per generation.
var ErrPlacementConflict = errors.New("dir: placement generation conflict")

// SetPlacement registers or replaces the placement record for path,
// unconditionally bumping the generation past any prior record.
func (d *Directory) SetPlacement(path string, home []string, replicas int) (Placement, error) {
	if strings.TrimSpace(path) == "" {
		return Placement{}, fmt.Errorf("dir: placement path must not be empty")
	}
	home = dedupNames(home)
	if replicas <= 0 {
		replicas = len(home)
	}
	if replicas <= 0 {
		replicas = 1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := key(path)
	p := Placement{
		Path:       strings.TrimSpace(path),
		Home:       home,
		Replicas:   replicas,
		Generation: d.places[k].Generation + 1,
	}
	d.places[k] = p
	d.placeVer.Add(1)
	return p, nil
}

// GetPlacement returns the placement record for path, if one exists. A
// database without a record is unplaced: every mate may serve it (the
// pre-placement behavior).
func (d *Directory) GetPlacement(path string) (Placement, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.places[key(path)]
	if !ok {
		return Placement{}, false
	}
	p.Home = append([]string(nil), p.Home...)
	return p, true
}

// Placements returns a snapshot of every placement record, sorted by path.
func (d *Directory) Placements() []Placement {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Placement, 0, len(d.places))
	for _, p := range d.places {
		p.Home = append([]string(nil), p.Home...)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// RemovePlacement deletes the record for path, returning the database to
// unplaced (served-anywhere) state.
func (d *Directory) RemovePlacement(path string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.places[key(path)]; ok {
		delete(d.places, key(path))
		d.placeVer.Add(1)
	}
}

// UpdatePlacement replaces the home set for path if and only if the current
// generation equals expectGen. On success the stored generation becomes
// expectGen+1 and the new record is returned; otherwise ErrPlacementConflict.
// An expectGen of 0 requires that no record exists yet.
func (d *Directory) UpdatePlacement(path string, expectGen uint64, home []string, replicas int) (Placement, error) {
	if strings.TrimSpace(path) == "" {
		return Placement{}, fmt.Errorf("dir: placement path must not be empty")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := key(path)
	cur, ok := d.places[k]
	if ok && cur.Generation != expectGen {
		return Placement{}, fmt.Errorf("%w: %s at generation %d, expected %d",
			ErrPlacementConflict, path, cur.Generation, expectGen)
	}
	if !ok && expectGen != 0 {
		return Placement{}, fmt.Errorf("%w: %s has no record, expected generation %d",
			ErrPlacementConflict, path, expectGen)
	}
	home = dedupNames(home)
	if replicas <= 0 {
		replicas = len(home)
	}
	if replicas <= 0 {
		replicas = 1
	}
	p := Placement{
		Path:       strings.TrimSpace(path),
		Home:       home,
		Replicas:   replicas,
		Generation: expectGen + 1,
	}
	d.places[k] = p
	d.placeVer.Add(1)
	return p, nil
}

// AssignPlacement creates a record for path using the rendezvous-hash default
// over mates, unless one already exists (which is returned unchanged).
func (d *Directory) AssignPlacement(path string, mates []string, replicas int) (Placement, error) {
	if p, ok := d.GetPlacement(path); ok {
		return p, nil
	}
	home := RendezvousHome(path, mates, replicas)
	if len(home) == 0 {
		return Placement{}, fmt.Errorf("dir: no mates to place %s on", path)
	}
	return d.SetPlacement(path, home, replicas)
}

// PlacementVersion is a cheap monotonic counter bumped on every placement
// mutation. Servers cache per-connection placement checks against it so the
// hot op path re-validates only when something actually moved.
func (d *Directory) PlacementVersion() uint64 { return d.placeVer.Load() }

// RendezvousHome picks the replicas highest-scoring mates for path using
// rendezvous (highest-random-weight) hashing: every (path, mate) pair gets a
// deterministic score, and each mate added or removed disturbs only the
// databases that hashed to it. Ties break on mate name for determinism.
func RendezvousHome(path string, mates []string, replicas int) []string {
	mates = dedupNames(mates)
	if len(mates) == 0 {
		return nil
	}
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(mates) {
		replicas = len(mates)
	}
	type scored struct {
		name  string
		score uint64
	}
	pk := key(path)
	ss := make([]scored, 0, len(mates))
	for _, m := range mates {
		h := sha256.Sum256([]byte(pk + "\x00" + key(m)))
		ss = append(ss, scored{m, binary.BigEndian.Uint64(h[:8])})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].name < ss[j].name
	})
	out := make([]string, 0, replicas)
	for _, s := range ss[:replicas] {
		out = append(out, s.name)
	}
	return out
}

// dedupNames trims, drops empties, and removes case-insensitive duplicates
// while preserving first-seen order and capitalization.
func dedupNames(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" || seen[key(n)] {
			continue
		}
		seen[key(n)] = true
		out = append(out, n)
	}
	return out
}
