package dir

import (
	"reflect"
	"testing"
)

func TestUserLookup(t *testing.T) {
	d := New()
	if err := d.AddUser(User{Name: "Ada Lovelace", MailFile: "mail/ada.nsf", Secret: "s3cret"}); err != nil {
		t.Fatalf("AddUser: %v", err)
	}
	u, ok := d.Lookup("ada lovelace") // case-insensitive
	if !ok || u.MailFile != "mail/ada.nsf" {
		t.Fatalf("Lookup = %+v, %v", u, ok)
	}
	if _, ok := d.Lookup("nobody"); ok {
		t.Error("Lookup found nonexistent user")
	}
	if err := d.AddUser(User{Name: "  "}); err == nil {
		t.Error("blank user accepted")
	}
}

func TestNestedGroups(t *testing.T) {
	d := New()
	d.AddUser(User{Name: "alice"})
	d.AddUser(User{Name: "bob"})
	d.AddGroup("core", "alice")
	d.AddGroup("eng", "core", "bob")
	d.AddGroup("everyone", "eng")

	got := d.GroupsOf("alice")
	want := []string{"core", "eng", "everyone"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupsOf(alice) = %v, want %v", got, want)
	}
	got = d.GroupsOf("bob")
	want = []string{"eng", "everyone"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupsOf(bob) = %v, want %v", got, want)
	}
	if g := d.GroupsOf("stranger"); len(g) != 0 {
		t.Errorf("GroupsOf(stranger) = %v", g)
	}
}

func TestGroupCyclesTerminate(t *testing.T) {
	d := New()
	d.AddUser(User{Name: "alice"})
	d.AddGroup("a", "b", "alice")
	d.AddGroup("b", "a")
	got := d.GroupsOf("alice")
	want := []string{"a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroupsOf with cycle = %v, want %v", got, want)
	}
}

func TestExpandGroup(t *testing.T) {
	d := New()
	d.AddUser(User{Name: "alice"})
	d.AddUser(User{Name: "bob"})
	d.AddUser(User{Name: "carol"})
	d.AddGroup("core", "alice", "bob")
	d.AddGroup("eng", "core", "carol", "ghost") // unknown member ignored
	got := d.ExpandGroup("eng")
	want := []string{"alice", "bob", "carol"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandGroup = %v, want %v", got, want)
	}
}

func TestUserGroupNameCollision(t *testing.T) {
	d := New()
	d.AddUser(User{Name: "alice"})
	if err := d.AddGroup("Alice", "bob"); err == nil {
		t.Error("group shadowing a user accepted")
	}
	d.AddGroup("eng", "x")
	if err := d.AddUser(User{Name: "ENG"}); err == nil {
		t.Error("user shadowing a group accepted")
	}
}

func TestAuthenticate(t *testing.T) {
	d := New()
	d.AddUser(User{Name: "alice", Secret: "pw"})
	d.AddUser(User{Name: "bob"}) // no secret: can never authenticate
	if !d.Authenticate("alice", "pw") {
		t.Error("valid credentials rejected")
	}
	if d.Authenticate("alice", "wrong") || d.Authenticate("bob", "") || d.Authenticate("ghost", "pw") {
		t.Error("invalid credentials accepted")
	}
}
