// Package dir implements the Domino directory (names.nsf): the registry of
// users, servers, and groups used for ACL group expansion and mail routing.
package dir

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// User is a person or server entry.
type User struct {
	// Name is the canonical user name, e.g. "Ada Lovelace".
	Name string
	// MailFile is the path of the user's mail database on MailServer, e.g.
	// "mail/ada.nsf".
	MailFile string
	// MailServer names the server holding the mail file; empty means the
	// local server.
	MailServer string
	// Secret authenticates wire sessions (a shared-secret stand-in for
	// Notes ID files).
	Secret string
}

// Directory is an in-memory user/group registry. It is safe for concurrent
// use.
type Directory struct {
	mu         sync.RWMutex
	users      map[string]User      // lower(name) -> user
	groups     map[string][]string  // lower(group) -> member names (users or groups)
	groupNames map[string]string    // lower(group) -> registered capitalization
	places     map[string]Placement // lower(db path) -> placement record
	placeVer   atomic.Uint64        // bumped on every placement mutation
}

// New returns an empty directory.
func New() *Directory {
	return &Directory{
		users:      make(map[string]User),
		groups:     make(map[string][]string),
		groupNames: make(map[string]string),
		places:     make(map[string]Placement),
	}
}

func key(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// AddUser registers or replaces a user entry.
func (d *Directory) AddUser(u User) error {
	if strings.TrimSpace(u.Name) == "" {
		return fmt.Errorf("dir: user name must not be empty")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.groups[key(u.Name)]; exists {
		return fmt.Errorf("dir: %q already exists as a group", u.Name)
	}
	d.users[key(u.Name)] = u
	return nil
}

// AddGroup registers or replaces a group with the given members. Members may
// be users or other groups; cycles are tolerated during expansion.
func (d *Directory) AddGroup(name string, members ...string) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("dir: group name must not be empty")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, exists := d.users[key(name)]; exists {
		return fmt.Errorf("dir: %q already exists as a user", name)
	}
	d.groups[key(name)] = append([]string(nil), members...)
	d.groupNames[key(name)] = strings.TrimSpace(name)
	return nil
}

// Lookup returns the user entry for name.
func (d *Directory) Lookup(name string) (User, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.users[key(name)]
	return u, ok
}

// Users returns all user names, sorted.
func (d *Directory) Users() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.users))
	for _, u := range d.users {
		out = append(out, u.Name)
	}
	sort.Strings(out)
	return out
}

// GroupsOf returns the names of all groups that contain user, directly or
// through nested groups. The result uses the groups' registered names.
func (d *Directory) GroupsOf(user string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	target := key(user)
	// memberOf[g] = true if group g (transitively) contains the user.
	memberOf := make(map[string]bool)
	// Fixed-point iteration handles nesting and cycles without recursion.
	changed := true
	for changed {
		changed = false
		for g, members := range d.groups {
			if memberOf[g] {
				continue
			}
			for _, m := range members {
				mk := key(m)
				if mk == target || memberOf[mk] {
					memberOf[g] = true
					changed = true
					break
				}
			}
		}
	}
	var out []string
	for g := range memberOf {
		out = append(out, d.groupDisplayName(g))
	}
	sort.Strings(out)
	return out
}

// groupDisplayName returns the stored capitalization; the map key is the
// lower-cased name, so recover the name registered by AddGroup or fall back
// to the key. Callers hold d.mu.
func (d *Directory) groupDisplayName(k string) string {
	if n, ok := d.groupNames[k]; ok {
		return n
	}
	return k
}

// Members returns the direct members of a group.
func (d *Directory) Members(group string) ([]string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m, ok := d.groups[key(group)]
	return append([]string(nil), m...), ok
}

// ExpandGroup returns every user contained in group, transitively.
func (d *Directory) ExpandGroup(group string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	seen := make(map[string]bool)
	var users []string
	var walk func(g string)
	walk = func(g string) {
		if seen[g] {
			return
		}
		seen[g] = true
		for _, m := range d.groups[g] {
			mk := key(m)
			if _, isGroup := d.groups[mk]; isGroup {
				walk(mk)
				continue
			}
			if u, ok := d.users[mk]; ok && !seen["user:"+mk] {
				seen["user:"+mk] = true
				users = append(users, u.Name)
			}
		}
	}
	walk(key(group))
	sort.Strings(users)
	return users
}

// Authenticate verifies a user's shared secret.
func (d *Directory) Authenticate(name, secret string) bool {
	u, ok := d.Lookup(name)
	return ok && u.Secret != "" && u.Secret == secret
}
