package core

import (
	"errors"
	"testing"

	"repro/internal/nsf"
	"repro/internal/store"
)

func TestArchiveMovesOldDocuments(t *testing.T) {
	src := openDB(t, Options{Title: "live"})
	dst := openDB(t, Options{Title: "archive"})
	s := src.Session("ada")
	old1 := memo("old one")
	old2 := memo("old two")
	s.Create(old1)
	s.Create(old2)
	cutoff := src.Clock().Now()
	fresh := memo("fresh")
	s.Create(fresh)

	stats, err := src.ArchiveTo(dst, cutoff)
	if err != nil {
		t.Fatalf("ArchiveTo: %v", err)
	}
	if stats.Moved != 2 || stats.Skipped != 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Old docs are gone from the source (stubs remain) and live in the
	// archive with their identity intact.
	for _, n := range []*nsf.Note{old1, old2} {
		if _, err := s.Get(n.OID.UNID); !errors.Is(err, ErrNotFound) {
			t.Errorf("archived doc still live in source: %v", err)
		}
		stub, err := src.RawGet(n.OID.UNID)
		if err != nil || !stub.IsStub() {
			t.Errorf("no stub left behind: %v", err)
		}
		got, err := dst.RawGet(n.OID.UNID)
		if err != nil || got.Text("Subject") != n.Text("Subject") {
			t.Errorf("archive missing doc: %v", err)
		}
	}
	if _, err := s.Get(fresh.OID.UNID); err != nil {
		t.Errorf("fresh doc archived prematurely: %v", err)
	}
	// Re-archiving is a no-op (stubs are skipped entirely).
	stats, err = src.ArchiveTo(dst, src.Clock().Now())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Moved != 1 { // only "fresh" is now older than the new cutoff
		t.Errorf("second pass stats = %+v", stats)
	}
}

func TestArchiveRejectsReplicaTarget(t *testing.T) {
	replica := nsf.NewReplicaID()
	src := openDB(t, Options{ReplicaID: replica})
	twin := openDB(t, Options{ReplicaID: replica})
	if _, err := src.ArchiveTo(twin, src.Clock().Now()); err == nil {
		t.Error("archiving into a replica accepted")
	}
	if _, err := src.ArchiveTo(src, src.Clock().Now()); err == nil {
		t.Error("archiving into self accepted")
	}
}

func TestQuotaEnforcement(t *testing.T) {
	db := openDB(t, Options{Store: store.Options{QuotaBytes: 96 * 1024}})
	s := db.Session("ada")
	var hitQuota bool
	var kept int
	for i := 0; i < 500; i++ {
		n := memo("filler")
		n.SetText("Body", string(make([]byte, 2048)))
		err := s.Create(n)
		if err != nil {
			if !errors.Is(err, store.ErrQuotaExceeded) {
				t.Fatalf("unexpected error: %v", err)
			}
			hitQuota = true
			break
		}
		kept++
	}
	if !hitQuota {
		t.Fatal("quota never enforced")
	}
	if kept == 0 {
		t.Fatal("quota rejected the first document")
	}
	// Reads still work at quota.
	count := 0
	s.All(func(n *nsf.Note) bool { count++; return true })
	if count != kept {
		t.Errorf("readable docs = %d, want %d", count, kept)
	}
	// Deleting works at quota (stubs shrink the live set), and compaction
	// then makes room again.
	var victim nsf.UNID
	s.All(func(n *nsf.Note) bool { victim = n.OID.UNID; return false })
	if err := s.Delete(victim); err != nil {
		t.Fatalf("delete at quota: %v", err)
	}
	if _, err := db.PurgeStubs(db.Clock().Now() + 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatalf("compact at quota: %v", err)
	}
	if err := s.Create(memo("fits again")); err != nil {
		t.Errorf("create after compaction: %v", err)
	}
}
