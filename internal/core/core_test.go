package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/acl"
	"repro/internal/dir"
	"repro/internal/nsf"
	"repro/internal/view"
)

func openDB(t *testing.T, opts Options) *Database {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "test.nsf"), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func memo(subject string) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "Memo")
	n.SetWithFlags("Subject", nsf.TextValue(subject), nsf.FlagSummary)
	return n
}

func TestSessionCRUDAndVersioning(t *testing.T) {
	db := openDB(t, Options{Title: "crud"})
	s := db.Session("alice")
	n := memo("hello")
	if err := s.Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if n.OID.Seq != 1 {
		t.Errorf("Seq after create = %d", n.OID.Seq)
	}
	got, err := s.Get(n.OID.UNID)
	if err != nil || got.Text("Subject") != "hello" {
		t.Fatalf("Get: %v %v", got, err)
	}
	got.SetText("Subject", "changed")
	if err := s.Update(got); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got.OID.Seq != 2 {
		t.Errorf("Seq after update = %d", got.OID.Seq)
	}
	// Item revisions: Subject changed at seq 2, Form unchanged since seq 1.
	subj, _ := got.Item("Subject")
	form, _ := got.Item("Form")
	if subj.Rev != 2 || form.Rev != 1 {
		t.Errorf("item revs: subject=%d form=%d", subj.Rev, form.Rev)
	}
	if err := s.Delete(n.OID.UNID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(n.OID.UNID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete: %v", err)
	}
	// The stub still exists at the raw level with an advanced version.
	stub, err := db.RawGet(n.OID.UNID)
	if err != nil || !stub.IsStub() || stub.OID.Seq != 3 {
		t.Errorf("stub = %+v, %v", stub, err)
	}
	if len(stub.Items) != 0 {
		t.Errorf("stub kept items: %v", stub.ItemNames())
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("alice")
	n := memo("dup")
	if err := s.Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	dup := memo("dup2")
	dup.OID.UNID = n.OID.UNID
	if err := s.Create(dup); err == nil {
		t.Error("duplicate create succeeded")
	}
}

func TestACLEnforcement(t *testing.T) {
	d := dir.New()
	d.AddUser(dir.User{Name: "boss"})
	d.AddUser(dir.User{Name: "writer"})
	d.AddUser(dir.User{Name: "lurker"})
	d.AddUser(dir.User{Name: "outsider"})
	db := openDB(t, Options{Directory: d})
	db.ACL().Set("boss", acl.Manager)
	db.ACL().Set("writer", acl.Author)
	db.ACL().Set("lurker", acl.Reader)
	db.ACL().SetDefault(acl.NoAccess)
	if err := db.SaveACL(nil); err != nil {
		t.Fatalf("SaveACL: %v", err)
	}

	writer := db.Session("writer")
	n := memo("by writer")
	if err := writer.Create(n); err != nil {
		t.Fatalf("writer Create: %v", err)
	}
	// Author-level creates get an automatic $Authors item.
	if got, _ := writer.Get(n.OID.UNID); len(got.Authors()) == 0 {
		t.Error("no automatic Authors item")
	}
	// Writer can edit own doc.
	got, _ := writer.Get(n.OID.UNID)
	got.SetText("Subject", "edited")
	if err := writer.Update(got); err != nil {
		t.Errorf("author edit own doc: %v", err)
	}
	// Lurker can read but not edit or create.
	lurker := db.Session("lurker")
	if _, err := lurker.Get(n.OID.UNID); err != nil {
		t.Errorf("reader Get: %v", err)
	}
	if err := lurker.Create(memo("x")); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("reader Create: %v", err)
	}
	got, _ = lurker.Get(n.OID.UNID)
	got.SetText("Subject", "hax")
	if err := lurker.Update(got); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("reader Update: %v", err)
	}
	// Outsider (default NoAccess) can do nothing.
	outsider := db.Session("outsider")
	if _, err := outsider.Get(n.OID.UNID); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("outsider Get: %v", err)
	}
}

func TestACLPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acl.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	db.ACL().Set("alice", acl.Editor)
	db.ACL().SetDefault(acl.NoAccess)
	if err := db.SaveACL(nil); err != nil {
		t.Fatalf("SaveACL: %v", err)
	}
	db.Close()
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	lv, _ := db2.ACL().Access("alice", nil)
	if lv != acl.Editor {
		t.Errorf("alice level after reopen = %v", lv)
	}
	if db2.ACL().Default() != acl.NoAccess {
		t.Errorf("default after reopen = %v", db2.ACL().Default())
	}
}

func TestReaderFieldsFilterEverywhere(t *testing.T) {
	db := openDB(t, Options{})
	db.ACL().Set("alice", acl.Editor)
	db.ACL().Set("bob", acl.Editor)
	db.ACL().SetDefault(acl.NoAccess)

	alice := db.Session("alice")
	secret := memo("for alice only")
	secret.SetWithFlags("DocReaders", nsf.TextValue("alice"), nsf.FlagReaders|nsf.FlagSummary)
	if err := alice.Create(secret); err != nil {
		t.Fatalf("Create: %v", err)
	}
	open := memo("public")
	if err := alice.Create(open); err != nil {
		t.Fatalf("Create: %v", err)
	}
	def, err := view.NewDefinition("all", "SELECT @All",
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		t.Fatalf("NewDefinition: %v", err)
	}
	if err := db.AddView(nil, def); err != nil {
		t.Fatalf("AddView: %v", err)
	}
	if err := db.EnableFullText(); err != nil {
		t.Fatalf("EnableFullText: %v", err)
	}

	bob := db.Session("bob")
	if _, err := bob.Get(secret.OID.UNID); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("bob read restricted doc: %v", err)
	}
	rows, err := bob.Rows("all")
	if err != nil {
		t.Fatalf("Rows: %v", err)
	}
	for _, r := range rows {
		if r.Entry != nil && r.Entry.UNID == secret.OID.UNID {
			t.Error("restricted doc visible in bob's view")
		}
	}
	aliceRows, _ := alice.Rows("all")
	if len(aliceRows) != 2 {
		t.Errorf("alice sees %d rows, want 2", len(aliceRows))
	}
	hits, err := bob.Search("alice")
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	for _, h := range hits {
		if h.UNID == secret.OID.UNID {
			t.Error("restricted doc in bob's search results")
		}
	}
	aliceHits, _ := alice.Search(`"for alice"`)
	if len(aliceHits) != 1 {
		t.Errorf("alice search hits = %d", len(aliceHits))
	}
}

func TestViewsPersistAndMaintain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "views.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	def, _ := view.NewDefinition("memos", `SELECT Form = "Memo"`,
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err := db.AddView(nil, def); err != nil {
		t.Fatalf("AddView: %v", err)
	}
	s := db.Session("alice")
	for i := 0; i < 5; i++ {
		if err := s.Create(memo(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}
	other := nsf.NewNote(nsf.ClassDocument)
	other.SetText("Form", "Task")
	s.Create(other)
	ix, _ := db.View("memos")
	if ix.Len() != 5 {
		t.Errorf("view has %d entries, want 5", ix.Len())
	}
	db.Close()
	// Reopen: view definition loads from its design note and rebuilds.
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	ix2, ok := db2.View("memos")
	if !ok {
		t.Fatalf("view lost after reopen; views = %v", db2.ViewNames())
	}
	if ix2.Len() != 5 {
		t.Errorf("rebuilt view has %d entries", ix2.Len())
	}
	// Incremental maintenance still works after reopen.
	s2 := db2.Session("alice")
	if err := s2.Create(memo("new one")); err != nil {
		t.Fatalf("Create: %v", err)
	}
	db2.Refresh() // maintenance is async; barrier before inspecting the index
	if ix2.Len() != 6 {
		t.Errorf("view did not update incrementally: %d", ix2.Len())
	}
}

func TestAddViewRequiresDesigner(t *testing.T) {
	db := openDB(t, Options{})
	db.ACL().Set("mortal", acl.Editor)
	def, _ := view.NewDefinition("v", "SELECT @All",
		view.Column{Title: "S", ItemName: "Subject", Sorted: true})
	if err := db.AddView(db.Session("mortal"), def); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("editor added a view: %v", err)
	}
}

func TestStubPurge(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("alice")
	n := memo("to delete")
	s.Create(n)
	s.Delete(n.OID.UNID)
	mid := db.Clock().Now()
	n2 := memo("deleted later")
	s.Create(n2)
	s.Delete(n2.OID.UNID)
	// Purge stubs deleted before mid: only the first.
	purged, err := db.PurgeStubs(mid)
	if err != nil || purged != 1 {
		t.Fatalf("PurgeStubs = %d, %v", purged, err)
	}
	if _, err := db.RawGet(n.OID.UNID); !errors.Is(err, ErrNotFound) {
		t.Error("purged stub still present")
	}
	if _, err := db.RawGet(n2.OID.UNID); err != nil {
		t.Error("recent stub purged prematurely")
	}
}

func TestOnChangeFires(t *testing.T) {
	db := openDB(t, Options{})
	var events []string
	db.OnChange(func(n *nsf.Note) {
		events = append(events, n.Text("Subject"))
	})
	s := db.Session("alice")
	n := memo("e1")
	s.Create(n)
	n.SetText("Subject", "e2")
	s.Update(n)
	db.Refresh() // callbacks run on a feed subscriber goroutine
	if len(events) != 2 || events[0] != "e1" || events[1] != "e2" {
		t.Errorf("events = %v", events)
	}
}

func TestDepositorCanCreateNotRead(t *testing.T) {
	db := openDB(t, Options{})
	db.ACL().Set("dropbox", acl.Depositor)
	db.ACL().SetDefault(acl.NoAccess)
	s := db.Session("dropbox")
	n := memo("deposited")
	if err := s.Create(n); err != nil {
		t.Fatalf("depositor Create: %v", err)
	}
	if _, err := s.Get(n.OID.UNID); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("depositor read back: %v", err)
	}
}
