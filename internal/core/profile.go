package core

import (
	"crypto/sha256"
	"errors"
	"strings"

	"repro/internal/nsf"
)

// Profile documents: per-database (optionally per-user) settings documents
// addressed by name rather than UNID — Notes applications use them for
// preferences and configuration. The UNID derives deterministically from
// (replica ID, profile name, user), so replicas address the same logical
// profile and it replicates like any document.

func (db *Database) profileUNID(name, user string) nsf.UNID {
	replica := db.ReplicaID()
	sum := sha256.Sum256([]byte("profile:" + replica.String() + ":" +
		strings.ToLower(name) + ":" + strings.ToLower(user)))
	var u nsf.UNID
	copy(u[:], sum[:16])
	return u
}

// Profile returns the named profile document, creating an empty one on
// first access. Pass user="" for the database-wide profile.
func (s *Session) Profile(name, user string) (*nsf.Note, error) {
	if name == "" {
		return nil, errors.New("core: profile name must not be empty")
	}
	unid := s.db.profileUNID(name, user)
	n, err := s.db.st.GetByUNID(unid)
	if errors.Is(err, ErrNotFound) {
		n = &nsf.Note{OID: nsf.OID{UNID: unid}, Class: nsf.ClassDocument}
		n.SetWithFlags("$ProfileName", nsf.TextValue(name), nsf.FlagSummary)
		if user != "" {
			n.SetWithFlags("$ProfileUser", nsf.TextValue(user), nsf.FlagSummary)
		}
		if err := s.db.putVersioned(n); err != nil {
			return nil, err
		}
		return n, nil
	}
	if err != nil {
		return nil, err
	}
	if n.IsStub() {
		return nil, ErrNotFound
	}
	if !s.id.CanRead(n) {
		return nil, ErrAccessDenied
	}
	return n, nil
}

// SaveProfile stores changes to a profile document fetched with Profile.
func (s *Session) SaveProfile(n *nsf.Note) error {
	if n.Text("$ProfileName") == "" {
		return errors.New("core: not a profile document")
	}
	return s.Update(n)
}

// IsProfile reports whether n is a profile document. Profile documents are
// excluded from view selection by convention; views that must skip them can
// SELECT on @IsUnavailable($ProfileName).
func IsProfile(n *nsf.Note) bool { return n.Has("$ProfileName") }
