package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFullTextPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ft.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	for _, subj := range []string{"replication engine", "view indexer", "mail router"} {
		n := memo(subj)
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.Search("replication"); len(hits) != 1 {
		t.Fatal("baseline search failed")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".ft"); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}

	// Reopen: EnableFullText loads the sidecar (we verify by checking that
	// search works including for changes made after the snapshot).
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session("ada")
	// Changes while the index was "offline".
	late := memo("compactor task")
	if err := s2.Create(late); err != nil {
		t.Fatal(err)
	}
	if err := db2.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s2.Search("replication"); len(hits) != 1 {
		t.Error("snapshot content lost")
	}
	if hits, _ := s2.Search("compactor"); len(hits) != 1 {
		t.Error("catch-up missed offline write")
	}
}

func TestFullTextCatchUpDropsVanishedDocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ft.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	doomed := memo("ghost words")
	s.Create(doomed)
	keeper := memo("solid words")
	s.Create(keeper)
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session("ada")
	// Delete and purge the stub while the index is offline: the doc leaves
	// no trace in the modification scan.
	if err := s2.Delete(doomed.OID.UNID); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.PurgeStubs(db2.Clock().Now() + 1); err != nil {
		t.Fatal(err)
	}
	if err := db2.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	if hits, _ := s2.Search("ghost"); len(hits) != 0 {
		t.Error("vanished doc still searchable after catch-up")
	}
	if hits, _ := s2.Search("solid"); len(hits) != 1 {
		t.Error("surviving doc lost during catch-up")
	}
}

func TestFullTextCorruptSidecarFallsBackToRebuild(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ft.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session("ada")
	s.Create(memo("findable content"))
	if err := os.WriteFile(path+".ft", []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableFullText(); err != nil {
		t.Fatalf("EnableFullText with corrupt sidecar: %v", err)
	}
	if hits, _ := s.Search("findable"); len(hits) != 1 {
		t.Error("rebuild fallback did not index")
	}
}

func TestDropFullTextSidecar(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ft.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Session("ada").Create(memo("x"))
	db.EnableFullText()
	db.Close()
	db2, _ := Open(path, Options{})
	defer db2.Close()
	if err := db2.DropFullTextSidecar(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".ft"); !os.IsNotExist(err) {
		t.Error("sidecar survived drop")
	}
	// Dropping again is fine.
	if err := db2.DropFullTextSidecar(); err != nil {
		t.Fatal(err)
	}
}
