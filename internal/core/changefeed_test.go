package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/nsf"
	"repro/internal/view"
)

// addAllView defines a view selecting every memo.
func addAllView(t *testing.T, db *Database, name string) {
	t.Helper()
	def, err := view.NewDefinition(name, `SELECT Form = "Memo"`,
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddView(nil, def); err != nil {
		t.Fatalf("AddView: %v", err)
	}
}

// TestReadYourWritesUnderConcurrency runs writers and readers concurrently;
// each writer must see its own document in the view immediately after the
// write, through the refresh barrier in Session.Rows.
func TestReadYourWritesUnderConcurrency(t *testing.T) {
	db := openDB(t, Options{})
	addAllView(t, db, "all")
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.Session(fmt.Sprintf("user%d", w))
			for i := 0; i < perWriter; i++ {
				subject := fmt.Sprintf("w%d-m%d", w, i)
				if err := s.Create(memo(subject)); err != nil {
					errs <- err
					return
				}
				rows, err := s.Rows("all")
				if err != nil {
					errs <- err
					return
				}
				found := false
				for _, r := range rows {
					if r.Entry != nil && len(r.Entry.Values) > 0 && r.Entry.Values[0].String() == subject {
						found = true
						break
					}
				}
				if !found {
					errs <- fmt.Errorf("writer %d did not read its own write %q", w, subject)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ix, _ := db.View("all")
	if ix.Len() != writers*perWriter {
		t.Errorf("view has %d entries, want %d", ix.Len(), writers*perWriter)
	}
}

// TestWaitForUSNReadYourWrites exercises the explicit barrier: after
// WaitForUSN on the write's USN, even the stale (barrier-free) view handle
// must contain the document.
func TestWaitForUSNReadYourWrites(t *testing.T) {
	db := openDB(t, Options{})
	addAllView(t, db, "all")
	s := db.Session("alice")
	if err := s.Create(memo("barrier me")); err != nil {
		t.Fatal(err)
	}
	usn := db.LastUSN()
	db.WaitForUSN(usn)
	ix, _ := db.ViewStale("all")
	if ix.Len() != 1 {
		t.Errorf("after WaitForUSN(%d) view has %d entries, want 1", usn, ix.Len())
	}
}

// TestFeedOverflowFallsBackToRebuild laps a tiny feed while the view
// maintainer is stalled, forcing the resync (rebuild) path, and asserts the
// view converges to the correct contents anyway.
func TestFeedOverflowFallsBackToRebuild(t *testing.T) {
	db := openDB(t, Options{FeedCapacity: 4})
	addAllView(t, db, "all")
	s := db.Session("alice")
	if err := s.Create(memo("pre")); err != nil {
		t.Fatal(err)
	}
	db.Refresh()
	// Stall the maintainers: applyToViews needs db.mu.RLock, which blocks
	// while the test holds the write lock. Appends (wmu + store only) keep
	// flowing, so the tiny ring is lapped many times over.
	db.mu.Lock()
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Create(memo(fmt.Sprintf("burst%d", i))); err != nil {
			db.mu.Unlock()
			t.Fatal(err)
		}
	}
	db.mu.Unlock()
	db.Refresh()
	ix, _ := db.ViewStale("all")
	if ix.Len() != n+1 {
		t.Errorf("view has %d entries after overflow, want %d", ix.Len(), n+1)
	}
	var viewsSub *struct {
		resyncs uint64
		dropped bool
	}
	for _, sub := range db.Stats().Feed.Subscribers {
		if sub.Name == "views" {
			viewsSub = &struct {
				resyncs uint64
				dropped bool
			}{sub.Resyncs, sub.Dropped}
		}
	}
	if viewsSub == nil {
		t.Fatal("no views subscriber in feed stats")
	}
	if viewsSub.dropped {
		t.Error("views maintainer was dropped")
	}
	if viewsSub.resyncs == 0 {
		t.Error("overflow did not trigger a view resync (rebuild)")
	}
}

// TestPanickingOnChangeSubscriberIsIsolated registers a callback that
// panics on every event. The writer must be unaffected, the barrier must
// not wedge, and a healthy callback keeps receiving events.
func TestPanickingOnChangeSubscriberIsIsolated(t *testing.T) {
	db := openDB(t, Options{})
	db.OnChange(func(n *nsf.Note) { panic("subscriber bug") })
	var mu sync.Mutex
	var healthy int
	db.OnChange(func(n *nsf.Note) {
		mu.Lock()
		healthy++
		mu.Unlock()
	})
	s := db.Session("alice")
	for i := 0; i < 3; i++ {
		if err := s.Create(memo(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("Create after subscriber panic: %v", err)
		}
	}
	done := make(chan struct{})
	go func() { db.Refresh(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Refresh wedged on a panicked subscriber")
	}
	mu.Lock()
	defer mu.Unlock()
	if healthy != 3 {
		t.Errorf("healthy subscriber saw %d events, want 3", healthy)
	}
	dropped := false
	for _, sub := range db.Stats().Feed.Subscribers {
		if sub.Dropped {
			dropped = true
		}
	}
	if !dropped {
		t.Error("panicked subscriber not marked dropped in stats")
	}
}

// TestWritePathDoesNotAliasCallerNote mutates the note after Create
// returns; the view and full-text index must hold the values as committed,
// because the feed carries a private clone.
func TestWritePathDoesNotAliasCallerNote(t *testing.T) {
	db := openDB(t, Options{})
	addAllView(t, db, "all")
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}
	s := db.Session("alice")
	n := memo("committed subject")
	if err := s.Create(n); err != nil {
		t.Fatal(err)
	}
	// Hostile caller: scribble on the note the indexes were handed.
	n.SetText("Subject", "scribbled")
	n.SetText("Form", "NotAMemo")
	db.Refresh()
	ix, _ := db.ViewStale("all")
	if ix.Len() != 1 {
		t.Fatalf("view has %d entries, want 1 (selection must use committed Form)", ix.Len())
	}
	rows := ix.Rows(nil)
	got := ""
	for _, r := range rows {
		if r.Entry != nil && len(r.Entry.Values) > 0 {
			got = r.Entry.Values[0].String()
		}
	}
	if got != "committed subject" {
		t.Errorf("view column = %q, want the committed value", got)
	}
	if hits, err := s.Search("committed"); err != nil || len(hits) != 1 {
		t.Errorf("search for committed text: %d hits, %v", len(hits), err)
	}
	if hits, _ := s.Search("scribbled"); len(hits) != 0 {
		t.Errorf("search found post-commit scribble: %d hits", len(hits))
	}
}

// TestWriteLatencyIndependentOfConsumers is a smoke check of the tentpole
// property: a Put must not block on a slow subscriber.
func TestWriteLatencyIndependentOfConsumers(t *testing.T) {
	db := openDB(t, Options{})
	release := make(chan struct{})
	var once sync.Once
	db.OnChange(func(n *nsf.Note) { <-release }) // wedged consumer
	defer once.Do(func() { close(release) })
	s := db.Session("alice")
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := s.Create(memo(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("writes blocked on a wedged subscriber: %v", d)
	}
	once.Do(func() { close(release) })
}
