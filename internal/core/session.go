package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/acl"
	"repro/internal/formula"
	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/store"
	"repro/internal/view"
)

// Session is a user's authenticated handle on a database. All reads filter
// by the ACL and Reader items; all writes check edit rights.
type Session struct {
	db   *Database
	user string
	id   *acl.Identity
}

// Session opens a session for user, resolving their access level once.
func (db *Database) Session(user string) *Session {
	db.mu.RLock()
	a := db.acl
	db.mu.RUnlock()
	return &Session{db: db, user: user, id: a.Resolve(user, db.resolver())}
}

// resolver adapts the possibly-nil directory to the ACL's GroupResolver.
func (db *Database) resolver() acl.GroupResolver {
	if db.dirs == nil {
		return nil
	}
	return db.dirs
}

// User returns the session's user name.
func (s *Session) User() string { return s.user }

// Identity returns the resolved access identity.
func (s *Session) Identity() *acl.Identity { return s.id }

// Database returns the underlying database.
func (s *Session) Database() *Database { return s.db }

// Create stores a new document. The note's UNID may be pre-assigned (e.g.
// by NewNote); Created/Modified and the OID are stamped here. An Authors
// item listing the creator is added automatically for Author-level users,
// mirroring the Notes convention that authors can edit their own documents.
func (s *Session) Create(n *nsf.Note) error {
	if !s.id.CanCreate() {
		return fmt.Errorf("%w: %s may not create documents", ErrAccessDenied, s.user)
	}
	if n.Class != nsf.ClassDocument {
		return fmt.Errorf("core: Create only stores documents; use AddView/SaveACL for design")
	}
	if n.OID.UNID.IsZero() {
		n.OID.UNID = nsf.NewUNID()
	}
	if _, err := s.db.st.GetByUNID(n.OID.UNID); err == nil {
		return fmt.Errorf("core: document %s already exists", n.OID.UNID)
	} else if !errors.Is(err, ErrNotFound) {
		return err
	}
	if s.id.Level == acl.Author && len(n.Authors()) == 0 {
		n.SetWithFlags("$Authors", nsf.TextValue(s.user), nsf.FlagAuthors|nsf.FlagSummary)
	}
	return s.db.putVersioned(n)
}

// Get returns the document with the given UNID, subject to read access.
// Deletion stubs read as not found.
func (s *Session) Get(unid nsf.UNID) (*nsf.Note, error) {
	n, err := s.db.st.GetByUNID(unid)
	if err != nil {
		return nil, err
	}
	if n.IsStub() {
		return nil, ErrNotFound
	}
	if !s.id.CanRead(n) {
		return nil, fmt.Errorf("%w: %s may not read %s", ErrAccessDenied, s.user, unid)
	}
	return n, nil
}

// Update stores a modified document, advancing its version. The caller must
// pass the full note (as returned by Get, then mutated).
func (s *Session) Update(n *nsf.Note) error {
	old, err := s.db.st.GetByUNID(n.OID.UNID)
	if err != nil {
		return err
	}
	if !s.id.CanEdit(old) {
		return fmt.Errorf("%w: %s may not edit %s", ErrAccessDenied, s.user, n.OID.UNID)
	}
	return s.db.putVersioned(n)
}

// Delete replaces the document with a deletion stub so the delete
// replicates. The stub keeps the note's identity and advances its version.
func (s *Session) Delete(unid nsf.UNID) error {
	old, err := s.db.st.GetByUNID(unid)
	if err != nil {
		return err
	}
	if !s.id.CanDelete(old) {
		return fmt.Errorf("%w: %s may not delete %s", ErrAccessDenied, s.user, unid)
	}
	stub := &nsf.Note{
		ID:      old.ID,
		OID:     old.OID,
		Class:   old.Class,
		Flags:   old.Flags | nsf.FlagDeleted,
		Created: old.Created,
	}
	return s.db.putVersioned(stub)
}

// putBatchWaitStride bounds how many documents accumulate in the forming
// group-commit batch before PutBatch waits one out, so a huge batch cannot
// grow an unbounded in-memory log tail.
const putBatchWaitStride = 256

// PutBatch stores documents create-or-update in input order, amortizing the
// commit: every document is applied and its WAL record joins the forming
// group-commit batch, and durability is awaited once at the end instead of
// per document (batches flush in order, so waiting on the last ticket
// covers them all — including any earlier write error, which poisons the
// group). Access is checked per document: CanCreate for new UNIDs, CanEdit
// for existing ones. Zero UNIDs are assigned; Author-level users get the
// same automatic $Authors item as Create.
//
// It returns how many documents were stored: on error, exactly the first
// `applied` documents were stored and are durable.
func (s *Session) PutBatch(notes []*nsf.Note) (applied int, err error) {
	return s.PutBatchCtx(context.Background(), notes)
}

// PutBatchCtx is PutBatch with cooperative cancellation: the per-document
// loop stops at a spent deadline, and — exactly like a mid-batch error —
// the applied prefix is made durable before returning, so the caller's
// cursor accounting stays truthful and a re-sent batch dedups cleanly.
func (s *Session) PutBatchCtx(ctx context.Context, notes []*nsf.Note) (applied int, err error) {
	var last store.Commit
	for i, n := range notes {
		if err = ctx.Err(); err != nil {
			break
		}
		if n.Class != nsf.ClassDocument {
			err = fmt.Errorf("core: PutBatch only stores documents (document %d)", i)
			break
		}
		if n.OID.UNID.IsZero() {
			n.OID.UNID = nsf.NewUNID()
		}
		old, gerr := s.db.st.GetByUNID(n.OID.UNID)
		switch {
		case errors.Is(gerr, ErrNotFound):
			if !s.id.CanCreate() {
				err = fmt.Errorf("%w: %s may not create documents (document %d)", ErrAccessDenied, s.user, i)
			} else if s.id.Level == acl.Author && len(n.Authors()) == 0 {
				n.SetWithFlags("$Authors", nsf.TextValue(s.user), nsf.FlagAuthors|nsf.FlagSummary)
			}
		case gerr != nil:
			err = fmt.Errorf("core: PutBatch document %d: %w", i, gerr)
		default:
			if !s.id.CanEdit(old) {
				err = fmt.Errorf("%w: %s may not edit %s (document %d)", ErrAccessDenied, s.user, n.OID.UNID, i)
			}
		}
		if err != nil {
			break
		}
		c, perr := s.db.putVersionedAsync(n)
		if perr != nil {
			err = fmt.Errorf("core: PutBatch document %d: %w", i, perr)
			break
		}
		last = c
		applied++
		if applied%putBatchWaitStride == 0 {
			if werr := last.Wait(); werr != nil {
				return applied, werr
			}
		}
	}
	// Even on a mid-batch error the applied prefix must be durable before
	// we report it as stored.
	if werr := last.Wait(); werr != nil {
		return applied, werr
	}
	return applied, err
}

// Rows renders the named view for this session: category rows plus the
// entries the user may read (Reader items enforced).
func (s *Session) Rows(viewName string) ([]view.Row, error) {
	ix, ok := s.db.View(viewName)
	if !ok {
		return nil, fmt.Errorf("core: no view %q", viewName)
	}
	if s.id.Level < acl.Reader {
		return nil, fmt.Errorf("%w: %s may not read views", ErrAccessDenied, s.user)
	}
	return ix.Rows(s.entryReadable), nil
}

// RowsPage renders one page of the named view — rows[start : start+limit]
// of the same access-filtered rendering Rows produces, minus the synthetic
// grand-total row so row indices stay stable while documents arrive — and
// reports the total row count. It backs the paginated wire read path;
// limit <= 0 means "to the end".
func (s *Session) RowsPage(viewName string, start, limit int) ([]view.Row, int, error) {
	return s.RowsPageCtx(context.Background(), viewName, start, limit)
}

// RowsPageCtx is RowsPage with cooperative cancellation: the underlying
// row walk checks the deadline periodically, so a page requested by a
// caller that has already given up stops rendering mid-walk.
func (s *Session) RowsPageCtx(ctx context.Context, viewName string, start, limit int) ([]view.Row, int, error) {
	ix, ok := s.db.View(viewName)
	if !ok {
		return nil, 0, fmt.Errorf("core: no view %q", viewName)
	}
	if s.id.Level < acl.Reader {
		return nil, 0, fmt.Errorf("%w: %s may not read views", ErrAccessDenied, s.user)
	}
	return ix.RowsRangeCtx(ctx, s.entryReadable, start, limit)
}

// entryReadable applies Reader-item filtering to a view entry without
// loading the note.
func (s *Session) entryReadable(e *view.Entry) bool {
	if len(e.Readers) == 0 {
		return true
	}
	for _, r := range e.Readers {
		if s.id.Matches(r) {
			return true
		}
	}
	return false
}

// Search runs a full-text query, filtering hits by read access. A refresh
// barrier first waits for index maintenance to catch up, so the results
// reflect every change committed before the call.
func (s *Session) Search(query string) ([]ft.Result, error) {
	return s.SearchCtx(context.Background(), query)
}

// SearchCtx is Search with cooperative cancellation: query evaluation
// stops at a spent deadline instead of scoring postings for a caller that
// has already given up.
func (s *Session) SearchCtx(ctx context.Context, query string) ([]ft.Result, error) {
	s.db.Refresh()
	fti := s.db.FullText()
	if fti == nil {
		return nil, errors.New("core: full-text index not enabled")
	}
	if s.id.Level < acl.Reader {
		return nil, fmt.Errorf("%w: %s may not search", ErrAccessDenied, s.user)
	}
	hits, err := fti.SearchCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	// Filter by the reader restriction captured at indexing time — the same
	// summary-level check views use, avoiding a store load per hit.
	out := hits[:0]
	for _, h := range hits {
		if len(h.Readers) == 0 || s.matchesAnyName(h.Readers) {
			out = append(out, h)
		}
	}
	return out, nil
}

// matchesAnyName reports whether any of names denotes this session's user,
// groups, or roles.
func (s *Session) matchesAnyName(names []string) bool {
	for _, n := range names {
		if s.id.Matches(n) {
			return true
		}
	}
	return false
}

// All visits every readable document (not stubs, not design notes).
func (s *Session) All(fn func(*nsf.Note) bool) error {
	if s.id.Level < acl.Reader {
		return fmt.Errorf("%w: %s may not read", ErrAccessDenied, s.user)
	}
	return s.db.st.ScanAll(func(n *nsf.Note) bool {
		if n.IsStub() || n.Class != nsf.ClassDocument || !s.id.CanRead(n) {
			return true
		}
		return fn(n)
	})
}

// ScanFrom visits readable documents in NoteID order, starting strictly
// after the given NoteID (0 scans from the beginning), optionally filtered
// by a selection formula evaluated as this session's user. It is the
// NSFSearch-style primitive the wire scan op pages with: the last NoteID a
// page delivered is a resumable cursor into this physical database. Stubs,
// design notes, documents the user may not read, and documents the formula
// deselects are skipped without being counted.
func (s *Session) ScanFrom(after nsf.NoteID, sel *formula.Formula, fn func(*nsf.Note) bool) error {
	return s.ScanFromCtx(context.Background(), after, sel, fn)
}

// ScanFromCtx is ScanFrom with cooperative cancellation, checked both in
// the store's batch loop and per candidate document here — a scan whose
// formula deselects everything must still notice a spent deadline, even
// though it never fills a page.
func (s *Session) ScanFromCtx(ctx context.Context, after nsf.NoteID, sel *formula.Formula, fn func(*nsf.Note) bool) error {
	if s.id.Level < acl.Reader {
		return fmt.Errorf("%w: %s may not read", ErrAccessDenied, s.user)
	}
	var fctx *formula.Context
	if sel != nil {
		fctx = s.db.evalContext(s.user)
	}
	var evalErr error
	err := s.db.st.ScanFromCtx(ctx, after, func(n *nsf.Note) bool {
		if cerr := ctx.Err(); cerr != nil {
			evalErr = cerr
			return false
		}
		if n.IsStub() || n.Class != nsf.ClassDocument || !s.id.CanRead(n) {
			return true
		}
		if sel != nil {
			ok, serr := sel.Selects(n, fctx)
			if serr != nil {
				evalErr = serr
				return false
			}
			if !ok {
				return true
			}
		}
		return fn(n)
	})
	if err == nil {
		err = evalErr
	}
	return err
}

// SearchJoined runs a full-text query and joins the named summary columns
// onto each hit, so a hit list renders without a per-hit Get round trip.
// Each hit's document is loaded through this session's Get — the full
// note-level ACL check, strictly at least as strict as the index-time
// Reader filter Search applies — and hits whose document vanished or
// became unreadable since indexing are dropped.
func (s *Session) SearchJoined(query string, columns []string) ([]ft.HitSummary, error) {
	return s.SearchJoinedCtx(context.Background(), query, columns)
}

// SearchJoinedCtx is SearchJoined with cooperative cancellation (the
// query evaluation checks the deadline; the join re-checks before loading
// documents, the expensive half).
func (s *Session) SearchJoinedCtx(ctx context.Context, query string, columns []string) ([]ft.HitSummary, error) {
	hits, err := s.SearchCtx(ctx, query)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ft.JoinSummaries(hits, columns, s.Get), nil
}
