// Package core implements the NSF database object: note CRUD with
// originator-ID versioning and deletion stubs, ACL and Reader/Author
// enforcement through sessions, persistent view definitions with
// incrementally maintained indexes, optional full-text indexing, and the
// raw interfaces the replicator uses.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/acl"
	"repro/internal/clock"
	"repro/internal/dir"
	"repro/internal/formula"
	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/store"
	"repro/internal/view"
)

// ErrNotFound is returned when a requested note does not exist (aliases the
// storage engine's error for errors.Is convenience).
var ErrNotFound = store.ErrNotFound

// ErrAccessDenied is returned when the session's identity lacks the rights
// for an operation.
var ErrAccessDenied = errors.New("core: access denied")

// Options configure a Database.
type Options struct {
	// Title is the database title (used on creation).
	Title string
	// ReplicaID makes the new database a replica of an existing one; zero
	// generates a fresh replica ID.
	ReplicaID nsf.ReplicaID
	// Directory resolves groups for ACL checks; may be nil.
	Directory *dir.Directory
	// Clock supplies timestamps; nil uses a new wall clock.
	Clock *clock.Clock
	// Store passes through storage engine options (sync, checkpointing).
	Store store.Options
}

// Database is an open NSF database.
type Database struct {
	st    *store.Store
	clock *clock.Clock
	dirs  *dir.Directory

	mu       sync.RWMutex
	acl      *acl.ACL
	views    map[string]*view.Index
	ftIndex  *ft.Index
	onChange []func(*nsf.Note)
	unread   map[string]*unreadTable
}

// Open opens or creates the database file at path.
func Open(path string, opts Options) (*Database, error) {
	ck := opts.Clock
	if ck == nil {
		ck = clock.New()
	}
	sopts := opts.Store
	sopts.ReplicaID = opts.ReplicaID
	sopts.Title = opts.Title
	if sopts.Created == 0 {
		sopts.Created = ck.Now()
	}
	st, err := store.Open(path, sopts)
	if err != nil {
		return nil, err
	}
	db := &Database{st: st, clock: ck, dirs: opts.Directory, views: make(map[string]*view.Index)}
	if err := db.loadDesign(); err != nil {
		st.Close()
		return nil, err
	}
	return db, nil
}

// loadDesign reads the ACL note and view design notes.
func (db *Database) loadDesign() error {
	db.acl = acl.New(acl.Manager) // open until an ACL note says otherwise
	var designs []*nsf.Note
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		switch n.Class {
		case nsf.ClassACL:
			if !n.IsStub() {
				designs = append(designs, n)
			}
		case nsf.ClassView:
			if !n.IsStub() {
				designs = append(designs, n)
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, n := range designs {
		switch n.Class {
		case nsf.ClassACL:
			a, err := acl.FromNote(n)
			if err != nil {
				return err
			}
			db.acl = a
		case nsf.ClassView:
			if n.Has(itemFolderTitle) {
				continue // folders carry membership, not an index definition
			}
			def, err := defFromNote(n)
			if err != nil {
				return fmt.Errorf("core: view note %s: %w", n.OID.UNID, err)
			}
			ix := view.NewIndex(def)
			if err := db.rebuildView(ix); err != nil {
				return err
			}
			db.views[strings.ToLower(def.Name)] = ix
		}
	}
	return nil
}

// Close persists the full-text sidecar (when enabled), checkpoints, and
// closes the database.
func (db *Database) Close() error {
	ftErr := db.SaveFullText()
	err := db.st.Close()
	if err == nil {
		err = ftErr
	}
	return err
}

// ReplicaID returns the database's replica identity.
func (db *Database) ReplicaID() nsf.ReplicaID { return db.st.ReplicaID() }

// Title returns the database title.
func (db *Database) Title() string { return db.st.Title() }

// Count returns the number of notes including stubs and design notes.
func (db *Database) Count() int { return db.st.Count() }

// Clock returns the database's clock (shared with its server).
func (db *Database) Clock() *clock.Clock { return db.clock }

// Stats returns storage statistics.
func (db *Database) Stats() store.Stats { return db.st.Stats() }

// ACL returns the database ACL.
func (db *Database) ACL() *acl.ACL {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.acl
}

// OnChange registers fn to run after every note change (including
// replication applies and stub creation). Callbacks run synchronously on
// the writing goroutine and must not call back into the database.
func (db *Database) OnChange(fn func(*nsf.Note)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.onChange = append(db.onChange, fn)
}

// aclNoteUNID derives the deterministic UNID of the ACL note so that every
// replica addresses the same logical note and the ACL itself replicates.
func aclNoteUNID(r nsf.ReplicaID) nsf.UNID {
	var u nsf.UNID
	copy(u[:8], r[:])
	copy(u[8:], "ACLNOTE!")
	return u
}

// SaveACL persists the current ACL as the database's ACL note so it
// replicates. The caller's identity must hold Manager access; pass a nil
// session for administrative (server-local) writes.
func (db *Database) SaveACL(s *Session) error {
	if s != nil && !s.Identity().CanManageACL() {
		return fmt.Errorf("%w: %s may not modify the ACL", ErrAccessDenied, s.User())
	}
	unid := aclNoteUNID(db.ReplicaID())
	n, err := db.st.GetByUNID(unid)
	if errors.Is(err, ErrNotFound) {
		n = &nsf.Note{OID: nsf.OID{UNID: unid}, Class: nsf.ClassACL, Created: db.clock.Now()}
		err = nil
	}
	if err != nil {
		return err
	}
	db.mu.RLock()
	a := db.acl
	db.mu.RUnlock()
	a.WriteNote(n)
	return db.putVersioned(n)
}

// putVersioned advances a note's OID and stores it.
func (db *Database) putVersioned(n *nsf.Note) error {
	now := db.clock.Now()
	old, err := db.st.GetByUNID(n.OID.UNID)
	switch {
	case errors.Is(err, ErrNotFound):
		n.OID.Seq = 1
		if n.Created == 0 {
			n.Created = now
		}
		for i := range n.Items {
			n.Items[i].Rev = 1
		}
	case err != nil:
		return err
	default:
		n.ID = old.ID
		n.OID.Seq = old.OID.Seq + 1
		n.Created = old.Created
		// Stamp per-item revisions: items whose values changed carry the
		// new sequence number (field-level merge uses these).
		for i := range n.Items {
			oldIt, ok := old.Item(n.Items[i].Name)
			if ok && oldIt.Value.Equal(n.Items[i].Value) && oldIt.Flags == n.Items[i].Flags {
				n.Items[i].Rev = oldIt.Rev
			} else {
				n.Items[i].Rev = n.OID.Seq
			}
		}
	}
	n.OID.SeqTime = now
	n.Modified = now
	if err := db.st.Put(n); err != nil {
		return err
	}
	db.noteChanged(n)
	return nil
}

// noteChanged propagates a stored note to views, the full-text index, and
// subscribers.
func (db *Database) noteChanged(n *nsf.Note) {
	db.mu.RLock()
	views := make([]*view.Index, 0, len(db.views))
	for _, ix := range db.views {
		views = append(views, ix)
	}
	fti := db.ftIndex
	subs := append([]func(*nsf.Note){}, db.onChange...)
	db.mu.RUnlock()
	ctx := db.evalContext("")
	for _, ix := range views {
		// Design changes to the view itself are handled by AddView; data
		// note errors here indicate a broken column formula — surface by
		// dropping the note from the view rather than failing the write.
		if _, err := ix.Update(n, ctx); err != nil {
			ix.Remove(n.OID.UNID)
		}
	}
	if fti != nil {
		fti.Update(n)
	}
	for _, fn := range subs {
		fn(n)
	}
}

func (db *Database) evalContext(user string) *formula.Context {
	return &formula.Context{UserName: user, Now: db.clock.Now}
}

// --- raw (trusted) access, used by the replicator and server tasks ---

// RawGet returns a note bypassing ACL checks.
func (db *Database) RawGet(unid nsf.UNID) (*nsf.Note, error) { return db.st.GetByUNID(unid) }

// RawPut stores a note without touching its OID (the replicator supplies
// complete OIDs from the source replica). Views, full-text, and change
// subscribers still fire.
func (db *Database) RawPut(n *nsf.Note) error {
	db.clock.Observe(n.OID.SeqTime)
	db.clock.Observe(n.Modified)
	// Preserve the local NoteID if this UNID already exists.
	n.ID = 0
	if old, err := db.st.GetByUNID(n.OID.UNID); err == nil {
		n.ID = old.ID
	} else if !errors.Is(err, ErrNotFound) {
		return err
	}
	// Replication must not regress the local modification index: stamp the
	// local receive time so ScanModifiedSince finds the note for onward
	// replication, while the OID keeps the original version identity.
	n.Modified = db.clock.Now()
	if err := db.st.Put(n); err != nil {
		return err
	}
	// A design note arriving by replication must take effect.
	if n.Class == nsf.ClassACL && !n.IsStub() {
		if a, err := acl.FromNote(n); err == nil {
			db.mu.Lock()
			db.acl = a
			db.mu.Unlock()
		}
	}
	if n.Class == nsf.ClassView && !n.IsStub() {
		if def, err := defFromNote(n); err == nil {
			ix := view.NewIndex(def)
			if err := db.rebuildView(ix); err == nil {
				db.mu.Lock()
				db.views[strings.ToLower(def.Name)] = ix
				db.mu.Unlock()
			}
		}
	}
	db.noteChanged(n)
	return nil
}

// RawDelete removes a note physically, bypassing stubs (used by the stub
// purger).
func (db *Database) RawDelete(unid nsf.UNID) error {
	err := db.st.Delete(unid)
	if err != nil {
		return err
	}
	db.mu.RLock()
	views := make([]*view.Index, 0, len(db.views))
	for _, ix := range db.views {
		views = append(views, ix)
	}
	fti := db.ftIndex
	db.mu.RUnlock()
	for _, ix := range views {
		ix.Remove(unid)
	}
	if fti != nil {
		fti.Remove(unid)
	}
	return nil
}

// ScanModifiedSince exposes the replication scan: all notes (stubs
// included) modified after since, in modification order.
func (db *Database) ScanModifiedSince(since nsf.Timestamp, fn func(*nsf.Note) bool) error {
	return db.st.ScanModifiedSince(since, fn)
}

// ScanAll visits every note, stubs and design notes included.
func (db *Database) ScanAll(fn func(*nsf.Note) bool) error { return db.st.ScanAll(fn) }

// PurgeStubs hard-deletes deletion stubs whose deletion happened before
// cutoff, returning how many were purged. A replica that has not synced
// since the cutoff can resurrect those deletes — exactly the documented
// Notes anomaly (see the T3 experiment).
func (db *Database) PurgeStubs(cutoff nsf.Timestamp) (int, error) {
	var victims []nsf.UNID
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		if n.IsStub() && n.OID.SeqTime < cutoff {
			victims = append(victims, n.OID.UNID)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, u := range victims {
		if err := db.RawDelete(u); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// Checkpoint forces a storage checkpoint.
func (db *Database) Checkpoint() error { return db.st.Checkpoint() }

// Compact rewrites the database file to reclaim dead space (the Domino
// "compact" server task). Note identities are preserved, so views, the
// full-text index, and replication state remain valid. It returns the
// number of pages reclaimed.
func (db *Database) Compact() (int, error) { return db.st.Compact() }

// Verify checks the storage structures for cross-consistency (Domino's
// "fixup" in detect-only mode) and returns a description of each problem
// found; empty means healthy.
func (db *Database) Verify() []string { return db.st.Verify() }
