// Package core implements the NSF database object: note CRUD with
// originator-ID versioning and deletion stubs, ACL and Reader/Author
// enforcement through sessions, persistent view definitions with
// incrementally maintained indexes, optional full-text indexing, and the
// raw interfaces the replicator uses.
//
// Change propagation is asynchronous: every mutation is stamped with a USN
// and appended to a per-database changefeed; view indexes, the full-text
// index, unread tables, and OnChange subscribers catch up on their own
// goroutines. Write latency is therefore independent of how many views or
// subscribers are open. Readers get read-your-writes on demand through the
// refresh barrier (WaitForUSN / Refresh), which Session.Rows and
// Session.Search apply automatically — the Domino "view refresh on open".
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/acl"
	"repro/internal/changefeed"
	"repro/internal/clock"
	"repro/internal/dir"
	"repro/internal/formula"
	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/store"
	"repro/internal/view"
)

// ErrNotFound is returned when a requested note does not exist (aliases the
// storage engine's error for errors.Is convenience).
var ErrNotFound = store.ErrNotFound

// ErrAccessDenied is returned when the session's identity lacks the rights
// for an operation.
var ErrAccessDenied = errors.New("core: access denied")

// Options configure a Database.
type Options struct {
	// Title is the database title (used on creation).
	Title string
	// ReplicaID makes the new database a replica of an existing one; zero
	// generates a fresh replica ID.
	ReplicaID nsf.ReplicaID
	// Directory resolves groups for ACL checks; may be nil.
	Directory *dir.Directory
	// Clock supplies timestamps; nil uses a new wall clock.
	Clock *clock.Clock
	// Store passes through storage engine options (sync, checkpointing).
	Store store.Options
	// FeedCapacity bounds the in-memory changefeed (entries retained for
	// lagging consumers before they fall back to a rebuild). Zero uses
	// changefeed.DefaultCapacity.
	FeedCapacity int
}

// Database is an open NSF database.
type Database struct {
	st    *store.Store
	clock *clock.Clock
	dirs  *dir.Directory

	// feed is the sequenced change log every consumer hangs off; wmu orders
	// store commits with feed appends so consumers observe commit order. It
	// also makes every versioned read-modify-write atomic: reading the
	// stored version, computing Seq/Revs/NoteID, and committing all happen
	// under wmu, or two concurrent saves of one UNID would both stamp
	// Seq=N+1 and silently lose an edit.
	//
	// Latch order: wmu → store latch (Put/GetByUNID take the store latch
	// internally). Code holding the store latch must never acquire wmu —
	// the store never calls back into core, so the order is easy to keep.
	feed *changefeed.Feed
	wmu  sync.Mutex

	// ftCursor is the catch-up cursor the full-text maintainer has applied
	// through: every note with Modified <= ftCursor is reflected in the
	// index. The sidecar persists it so reloads catch up incrementally.
	ftCursor atomic.Int64

	mu        sync.RWMutex
	acl       *acl.ACL
	views     map[string]*view.Index
	ftIndex   *ft.Index
	onChanges int // counter naming OnChange subscribers
	unread    map[string]*unreadTable
}

// Open opens or creates the database file at path.
func Open(path string, opts Options) (*Database, error) {
	ck := opts.Clock
	if ck == nil {
		ck = clock.New()
	}
	sopts := opts.Store
	sopts.ReplicaID = opts.ReplicaID
	sopts.Title = opts.Title
	if sopts.Created == 0 {
		sopts.Created = ck.Now()
	}
	st, err := store.Open(path, sopts)
	if err != nil {
		return nil, err
	}
	db := &Database{
		st:    st,
		clock: ck,
		dirs:  opts.Directory,
		views: make(map[string]*view.Index),
		// Seed the feed with the store's persistent USN so feed USNs and
		// store USNs are one sequence across restarts: every store commit
		// under wmu is followed by exactly one feed append, so the two
		// counters advance in lockstep from here on. Backup cursors and the
		// refresh barrier both rely on this alignment.
		feed: changefeed.NewFrom(opts.FeedCapacity, st.LastUSN()),
	}
	if err := db.loadDesign(); err != nil {
		st.Close()
		return nil, err
	}
	db.startMaintainers()
	return db, nil
}

// startMaintainers subscribes the index maintainers to the changefeed. They
// run for the life of the database, each on its own goroutine.
func (db *Database) startMaintainers() {
	db.feed.Subscribe("views", changefeed.Funcs{
		ApplyFunc:  db.applyToViews,
		ResyncFunc: db.resyncViews,
	})
	db.feed.Subscribe("fulltext", changefeed.Funcs{
		ApplyFunc:  db.applyToFullText,
		ResyncFunc: db.resyncFullText,
	})
	db.feed.Subscribe("unread", changefeed.Funcs{
		ApplyFunc: db.applyToUnread,
		// Unread tables self-heal: UnreadCount prunes marks for vanished
		// documents, so an overflow needs no rebuild.
		ResyncFunc: func(uint64) error { return nil },
	})
}

// loadDesign reads the ACL note and view design notes.
func (db *Database) loadDesign() error {
	db.acl = acl.New(acl.Manager) // open until an ACL note says otherwise
	var designs []*nsf.Note
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		switch n.Class {
		case nsf.ClassACL:
			if !n.IsStub() {
				designs = append(designs, n)
			}
		case nsf.ClassView:
			if !n.IsStub() {
				designs = append(designs, n)
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, n := range designs {
		switch n.Class {
		case nsf.ClassACL:
			a, err := acl.FromNote(n)
			if err != nil {
				return err
			}
			db.acl = a
		case nsf.ClassView:
			if n.Has(itemFolderTitle) {
				continue // folders carry membership, not an index definition
			}
			def, err := defFromNote(n)
			if err != nil {
				return fmt.Errorf("core: view note %s: %w", n.OID.UNID, err)
			}
			ix := view.NewIndex(def)
			if err := db.rebuildView(ix); err != nil {
				return err
			}
			db.views[strings.ToLower(def.Name)] = ix
		}
	}
	return nil
}

// Close drains the changefeed (maintainers apply everything already
// committed), persists the full-text sidecar (when enabled), checkpoints,
// and closes the database.
func (db *Database) Close() error {
	db.feed.Close()
	ftErr := db.SaveFullText()
	err := db.st.Close()
	if err == nil {
		err = ftErr
	}
	return err
}

// ReplicaID returns the database's replica identity.
func (db *Database) ReplicaID() nsf.ReplicaID { return db.st.ReplicaID() }

// Title returns the database title.
func (db *Database) Title() string { return db.st.Title() }

// Count returns the number of notes including stubs and design notes.
func (db *Database) Count() int { return db.st.Count() }

// Clock returns the database's clock (shared with its server).
func (db *Database) Clock() *clock.Clock { return db.clock }

// Stats reports database statistics: storage plus change-propagation (feed
// head, per-consumer lag, resync and drop counts).
type Stats struct {
	store.Stats
	// Feed reports changefeed position and per-subscriber progress.
	Feed changefeed.Stats
}

// Stats returns current database statistics.
func (db *Database) Stats() Stats {
	return Stats{Stats: db.st.Stats(), Feed: db.feed.Stats()}
}

// LastUSN returns the update sequence number of the most recent committed
// change (0 when none). Combine with WaitForUSN for read-your-writes.
func (db *Database) LastUSN() uint64 { return db.feed.LastUSN() }

// WaitForUSN blocks until every live change consumer (views, full-text,
// unread tables, OnChange subscribers) has applied through usn — the
// read-side refresh barrier.
func (db *Database) WaitForUSN(usn uint64) { db.feed.WaitForUSN(usn) }

// Refresh waits until all change consumers have caught up with every
// change committed before the call — Domino's "view refresh", generalized.
// Session.Rows and Session.Search call it automatically.
func (db *Database) Refresh() { db.feed.WaitForUSN(db.feed.LastUSN()) }

// ACL returns the database ACL.
func (db *Database) ACL() *acl.ACL {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.acl
}

// OnChange registers fn to run after every note change (including
// replication applies and stub creation). Callbacks run asynchronously on
// a dedicated changefeed subscriber goroutine, in commit order; a callback
// that panics is dropped (with a log line) rather than unwinding anything
// else. Callbacks must not invoke the read barrier (Rows, Search, View,
// Refresh) on the same database — the barrier would wait on the callback's
// own cursor. Use Refresh from the outside to observe callback effects.
// The returned subscriber's Unsubscribe detaches the callback; callers that
// outlive their interest in changes (replication triggers, mesh links)
// should call it rather than leave a dead cursor on the feed.
func (db *Database) OnChange(fn func(*nsf.Note)) *changefeed.Subscriber {
	db.mu.Lock()
	db.onChanges++
	name := fmt.Sprintf("onchange-%d", db.onChanges)
	db.mu.Unlock()
	return db.feed.Subscribe(name, changefeed.Funcs{
		ApplyFunc: func(e changefeed.Entry) {
			// Physical deletes (stub purges) stay local, as before the feed.
			if e.Kind == changefeed.Put && e.Note != nil {
				fn(e.Note)
			}
		},
		// Missed events cannot be replayed from a bounded feed; consumers
		// with durability needs (cluster push) already have a catch-up path
		// (the scheduled replicator).
		ResyncFunc: func(uint64) error { return nil },
	})
}

// commit appends a stored note to the changefeed. Call with wmu held, right
// after the store write, so feed order matches commit order. The note is
// cloned: consumers keep a frozen copy, so a caller mutating the note after
// Put returns can never corrupt an index.
func (db *Database) commit(n *nsf.Note) {
	db.feed.Append(changefeed.Put, n.OID.UNID, n.Clone())
}

// aclNoteUNID derives the deterministic UNID of the ACL note so that every
// replica addresses the same logical note and the ACL itself replicates.
func aclNoteUNID(r nsf.ReplicaID) nsf.UNID {
	var u nsf.UNID
	copy(u[:8], r[:])
	copy(u[8:], "ACLNOTE!")
	return u
}

// SaveACL persists the current ACL as the database's ACL note so it
// replicates. The caller's identity must hold Manager access; pass a nil
// session for administrative (server-local) writes.
func (db *Database) SaveACL(s *Session) error {
	if s != nil && !s.Identity().CanManageACL() {
		return fmt.Errorf("%w: %s may not modify the ACL", ErrAccessDenied, s.User())
	}
	unid := aclNoteUNID(db.ReplicaID())
	n, err := db.st.GetByUNID(unid)
	if errors.Is(err, ErrNotFound) {
		n = &nsf.Note{OID: nsf.OID{UNID: unid}, Class: nsf.ClassACL, Created: db.clock.Now()}
		err = nil
	}
	if err != nil {
		return err
	}
	db.mu.RLock()
	a := db.acl
	db.mu.RUnlock()
	a.WriteNote(n)
	return db.putVersioned(n)
}

// putVersioned advances a note's OID and stores it durably.
func (db *Database) putVersioned(n *nsf.Note) error {
	c, err := db.putVersionedAsync(n)
	if err != nil {
		return err
	}
	return c.Wait()
}

// putVersionedAsync advances a note's OID and stores it, returning the
// store's durability ticket instead of waiting on it.
//
// The whole read-modify-write runs under wmu: the stored version is read,
// Seq and per-item Revs are computed, and the note is committed as one
// atomic section. Reading the old version outside wmu (as the seed did)
// let two concurrent saves of the same UNID both observe Seq=N and both
// stamp Seq=N+1 — one edit vanished and replication conflict detection
// (which compares Seq) lost the fork.
//
// The WAL force, by contrast, deliberately happens outside wmu (the caller
// waits on the ticket after this returns): with group commit on, holding
// wmu across the fsync would serialize committers at this latch and no
// batch could ever form.
func (db *Database) putVersionedAsync(n *nsf.Note) (store.Commit, error) {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	old, err := db.st.GetByUNID(n.OID.UNID)
	isNew := false
	switch {
	case errors.Is(err, ErrNotFound):
		isNew = true
		n.OID.Seq = 1
		for i := range n.Items {
			n.Items[i].Rev = 1
		}
	case err != nil:
		return store.Commit{}, err
	default:
		n.ID = old.ID
		n.OID.Seq = old.OID.Seq + 1
		n.Created = old.Created
		// Stamp per-item revisions: items whose values changed carry the
		// new sequence number (field-level merge uses these).
		for i := range n.Items {
			oldIt, ok := old.Item(n.Items[i].Name)
			if ok && oldIt.Value.Equal(n.Items[i].Value) && oldIt.Flags == n.Items[i].Flags {
				n.Items[i].Rev = oldIt.Rev
			} else {
				n.Items[i].Rev = n.OID.Seq
			}
		}
	}
	// Timestamps are issued inside the commit section so Modified order
	// matches feed (USN) order — the full-text catch-up cursor depends on
	// that monotonicity.
	now := db.clock.Now()
	if isNew && n.Created == 0 {
		n.Created = now
	}
	n.OID.SeqTime = now
	n.Modified = now
	c, err := db.st.PutAsync(n)
	if err != nil {
		return store.Commit{}, err
	}
	db.commit(n)
	return c, nil
}

func (db *Database) evalContext(user string) *formula.Context {
	return &formula.Context{UserName: user, Now: db.clock.Now}
}

// --- changefeed maintainers (each runs on its own subscriber goroutine) ---

// applyToViews reflects one change in every open view index.
func (db *Database) applyToViews(e changefeed.Entry) {
	db.mu.RLock()
	views := make([]*view.Index, 0, len(db.views))
	for _, ix := range db.views {
		views = append(views, ix)
	}
	db.mu.RUnlock()
	if e.Kind == changefeed.Delete {
		for _, ix := range views {
			ix.Remove(e.UNID)
		}
		return
	}
	ctx := db.evalContext("")
	for _, ix := range views {
		// Design changes to the view itself are handled by AddView; data
		// note errors here indicate a broken column formula — surface by
		// dropping the note from the view rather than failing maintenance.
		if _, err := ix.Update(e.Note, ctx); err != nil {
			ix.Remove(e.UNID)
		}
	}
}

// resyncViews rebuilds every view from the store after the maintainer fell
// out of the feed window — the refresh-vs-rebuild fallback.
func (db *Database) resyncViews(uint64) error {
	db.mu.RLock()
	views := make([]*view.Index, 0, len(db.views))
	for _, ix := range db.views {
		views = append(views, ix)
	}
	db.mu.RUnlock()
	for _, ix := range views {
		if err := db.rebuildView(ix); err != nil {
			return err
		}
	}
	return nil
}

// applyToFullText reflects one change in the full-text index, advancing the
// sidecar catch-up cursor.
func (db *Database) applyToFullText(e changefeed.Entry) {
	fti := db.FullText()
	if fti == nil {
		return
	}
	if e.Kind == changefeed.Delete {
		fti.Remove(e.UNID)
		return
	}
	fti.Update(e.Note)
	db.advanceFTCursor(e.Note.Modified)
}

// resyncFullText rebuilds the full-text index from the store into a fresh
// index and swaps it in (searches keep hitting the old one meanwhile).
func (db *Database) resyncFullText(uint64) error {
	if db.FullText() == nil {
		return nil
	}
	pre := db.clock.Now()
	ix := ft.NewIndex()
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		ix.Update(n)
		return true
	})
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.ftIndex = ix
	db.mu.Unlock()
	db.setFTCursor(pre)
	return nil
}

// applyToUnread drops read marks for documents that no longer exist, so
// loaded unread tables do not accumulate marks for purged notes.
func (db *Database) applyToUnread(e changefeed.Entry) {
	if e.Kind != changefeed.Delete && (e.Note == nil || !e.Note.IsStub()) {
		return
	}
	db.mu.RLock()
	tables := make([]*unreadTable, 0, len(db.unread))
	for _, t := range db.unread {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	for _, t := range tables {
		t.mu.Lock()
		delete(t.read, e.UNID)
		t.mu.Unlock()
	}
}

// --- raw (trusted) access, used by the replicator and server tasks ---

// RawGet returns a note bypassing ACL checks.
func (db *Database) RawGet(unid nsf.UNID) (*nsf.Note, error) { return db.st.GetByUNID(unid) }

// RawPut stores a note without touching its OID (the replicator supplies
// complete OIDs from the source replica). Views, full-text, and change
// subscribers are maintained through the changefeed.
func (db *Database) RawPut(n *nsf.Note) error {
	db.clock.Observe(n.OID.SeqTime)
	db.clock.Observe(n.Modified)
	db.wmu.Lock()
	// Preserve the local NoteID if this UNID already exists. The lookup
	// must sit inside wmu with the Put: done outside (as the seed did), a
	// concurrent delete-and-recreate of the same UNID could interleave so
	// that two NoteIDs end up live for one logical note — an orphan byID
	// entry the UNID index no longer points at.
	n.ID = 0
	if old, err := db.st.GetByUNID(n.OID.UNID); err == nil {
		n.ID = old.ID
	} else if !errors.Is(err, ErrNotFound) {
		db.wmu.Unlock()
		return err
	}
	// Replication must not regress the local modification index: stamp the
	// local receive time so ScanModifiedSince finds the note for onward
	// replication, while the OID keeps the original version identity.
	n.Modified = db.clock.Now()
	c, err := db.st.PutAsync(n)
	if err != nil {
		db.wmu.Unlock()
		return err
	}
	db.commit(n)
	db.wmu.Unlock()
	// Await durability outside wmu so concurrent applies share the group
	// commit (when it is on) instead of serializing at this latch.
	if err := c.Wait(); err != nil {
		return err
	}
	// A design note arriving by replication must take effect. This stays on
	// the writer's path: it is rare and needs the store to be consistent
	// with the design registry.
	if n.Class == nsf.ClassACL && !n.IsStub() {
		if a, err := acl.FromNote(n); err == nil {
			db.mu.Lock()
			db.acl = a
			db.mu.Unlock()
		}
	}
	if n.Class == nsf.ClassView && !n.IsStub() {
		if def, err := defFromNote(n); err == nil {
			ix := view.NewIndex(def)
			if err := db.installView(ix); err != nil {
				return err
			}
		}
	}
	return nil
}

// RawDelete removes a note physically, bypassing stubs (used by the stub
// purger). Indexes drop the note when the feed entry reaches them.
func (db *Database) RawDelete(unid nsf.UNID) error {
	db.wmu.Lock()
	c, err := db.st.DeleteAsync(unid)
	if err != nil {
		db.wmu.Unlock()
		return err
	}
	db.feed.Append(changefeed.Delete, unid, nil)
	db.wmu.Unlock()
	return c.Wait()
}

// ScanModifiedSince exposes the replication scan: all notes (stubs
// included) modified after since, in modification order.
func (db *Database) ScanModifiedSince(since nsf.Timestamp, fn func(*nsf.Note) bool) error {
	return db.st.ScanModifiedSince(since, fn)
}

// ScanAll visits every note, stubs and design notes included.
func (db *Database) ScanAll(fn func(*nsf.Note) bool) error { return db.st.ScanAll(fn) }

// PurgeStubs hard-deletes deletion stubs whose deletion happened before
// cutoff, returning how many were purged. A replica that has not synced
// since the cutoff can resurrect those deletes — exactly the documented
// Notes anomaly (see the T3 experiment).
func (db *Database) PurgeStubs(cutoff nsf.Timestamp) (int, error) {
	var victims []nsf.UNID
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		if n.IsStub() && n.OID.SeqTime < cutoff {
			victims = append(victims, n.OID.UNID)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, u := range victims {
		if err := db.RawDelete(u); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// Checkpoint forces a storage checkpoint.
func (db *Database) Checkpoint() error { return db.st.Checkpoint() }

// Compact rewrites the database file to reclaim dead space (the Domino
// "compact" server task). Note identities are preserved, so views, the
// full-text index, and replication state remain valid. It returns the
// number of pages reclaimed.
func (db *Database) Compact() (int, error) { return db.st.Compact() }

// Verify checks the storage structures for cross-consistency (Domino's
// "fixup" in detect-only mode) and returns a description of each problem
// found; empty means healthy.
func (db *Database) Verify() []string { return db.st.Verify() }

// advanceFTCursor moves the full-text catch-up cursor forward (never back).
func (db *Database) advanceFTCursor(t nsf.Timestamp) {
	for {
		cur := db.ftCursor.Load()
		if int64(t) <= cur || db.ftCursor.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// setFTCursor pins the full-text catch-up cursor (rebuild and enable).
func (db *Database) setFTCursor(t nsf.Timestamp) { db.ftCursor.Store(int64(t)) }
