package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/backup"
	"repro/internal/nsf"
)

// TestBackupRestoreEndToEnd drives session-level CRUD (including a soft
// delete, which the core layer turns into a deletion stub), takes a full
// and an incremental backup, restores, and checks the restored database —
// notes, stubs, feed cursor, and view/FT rebuild — against the source.
func TestBackupRestoreEndToEnd(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(filepath.Join(dir, "src.nsf"), Options{Title: "bak"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Session("ada")

	var unids []nsf.UNID
	for i := 0; i < 8; i++ {
		n := memo(fmt.Sprintf("first-%d", i))
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	setDir := filepath.Join(dir, "bak")
	full, err := db.Backup(setDir)
	if err != nil {
		t.Fatal(err)
	}
	if full.Kind != backup.KindFull || full.EndUSN != db.LastUSN() {
		t.Fatalf("full image = %+v, db at USN %d", full.Header, db.LastUSN())
	}

	// Second wave: an update, a delete (stub), and fresh notes.
	got, err := s.Get(unids[0])
	if err != nil {
		t.Fatal(err)
	}
	got.SetText("Subject", "first-0-updated")
	if err := s.Update(got); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(unids[1]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Create(memo(fmt.Sprintf("second-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	incr, err := db.BackupIncremental(setDir)
	if err != nil {
		t.Fatal(err)
	}
	if incr.Kind != backup.KindIncremental || incr.BaseUSN != full.EndUSN || incr.EndUSN != db.LastUSN() {
		t.Fatalf("incremental image = %+v, db at USN %d", incr.Header, db.LastUSN())
	}
	if u, _, err := LastBackupUSN(setDir); err != nil || u != incr.EndUSN {
		t.Fatalf("LastBackupUSN = %d, %v; want %d", u, err, incr.EndUSN)
	}

	restored, info, err := Restore(setDir, filepath.Join(dir, "restored.nsf"),
		backup.RestoreOptions{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if info.ReachedUSN != incr.EndUSN {
		t.Fatalf("restore reached USN %d, want %d", info.ReachedUSN, incr.EndUSN)
	}
	if restored.ReplicaID() != db.ReplicaID() {
		t.Fatal("restored database lost its replica identity")
	}
	if restored.Title() != "bak" {
		t.Fatalf("restored title %q", restored.Title())
	}
	// The feed cursor continues the store's USN sequence, so consumers of
	// the restored database sequence changes after the image state.
	if restored.LastUSN() != incr.EndUSN {
		t.Fatalf("restored feed at USN %d, want %d", restored.LastUSN(), incr.EndUSN)
	}
	if restored.Count() != db.Count() {
		t.Fatalf("restored count %d, source %d", restored.Count(), db.Count())
	}
	rs := restored.Session("ada")
	if n, err := rs.Get(unids[0]); err != nil || n.Text("Subject") != "first-0-updated" {
		t.Fatalf("updated note after restore: %v %v", n, err)
	}
	// The soft delete restores as a deletion stub: Get refuses it, but it
	// still exists for replication.
	if _, err := rs.Get(unids[1]); err == nil {
		t.Fatal("deleted note readable after restore")
	}
	stub, err := restored.RawGet(unids[1])
	if err != nil || !stub.IsStub() {
		t.Fatalf("deletion stub not restored: %v %v", stub, err)
	}
	// Views rebuilt from the restored store see the restored state, and the
	// restored database accepts new writes continuing the USN sequence.
	if err := rs.Create(memo("post-restore")); err != nil {
		t.Fatalf("create after restore: %v", err)
	}
	if restored.LastUSN() != incr.EndUSN+1 {
		t.Fatalf("USN after post-restore create = %d, want %d", restored.LastUSN(), incr.EndUSN+1)
	}
}

// TestFeedUSNContinuityAcrossReopen checks that the changefeed is seeded
// from the store's persistent USN on open: feed and store share one USN
// sequence across restarts, so backup cursors and subscriber positions
// stay comparable.
func TestFeedUSNContinuityAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seq.nsf")
	db, err := Open(path, Options{Title: "seq"})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	for i := 0; i < 5; i++ {
		if err := s.Create(memo(fmt.Sprintf("n-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before := db.LastUSN()
	if before == 0 {
		t.Fatal("feed USN stayed 0")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.LastUSN() != before {
		t.Fatalf("feed reopened at USN %d, store left off at %d", db2.LastUSN(), before)
	}
	if err := db2.Session("ada").Create(memo("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if db2.LastUSN() != before+1 {
		t.Fatalf("USN after reopen create = %d, want %d", db2.LastUSN(), before+1)
	}
}
