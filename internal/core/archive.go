package core

import (
	"errors"
	"fmt"

	"repro/internal/nsf"
)

// Archiving: Domino's archive task moves aging documents out of a
// production database into an archive database, leaving deletion stubs
// behind so the removals replicate like ordinary deletes.

// ArchiveStats reports one archiving pass.
type ArchiveStats struct {
	Moved   int
	Skipped int // already present in the archive with the same version
}

// ArchiveTo moves every document whose last modification is older than
// cutoff into dst, which must be a different database (typically not a
// replica — it has its own replica ID). Documents keep their UNIDs and
// versions in the archive; the source is left with deletion stubs. Design
// notes, profile documents, and conflict documents are never archived.
func (db *Database) ArchiveTo(dst *Database, cutoff nsf.Timestamp) (ArchiveStats, error) {
	var stats ArchiveStats
	if dst == db {
		return stats, errors.New("core: cannot archive a database into itself")
	}
	if dst.ReplicaID() == db.ReplicaID() {
		return stats, errors.New("core: archive target must not be a replica of the source")
	}
	var victims []*nsf.Note
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		if n.Class != nsf.ClassDocument || n.IsStub() || n.IsConflict() || IsProfile(n) {
			return true
		}
		if n.Modified < cutoff {
			victims = append(victims, n)
		}
		return true
	})
	if err != nil {
		return stats, err
	}
	for _, n := range victims {
		existing, err := dst.RawGet(n.OID.UNID)
		switch {
		case errors.Is(err, ErrNotFound):
			if err := dst.RawPut(n.Clone()); err != nil {
				return stats, fmt.Errorf("core: archive copy: %w", err)
			}
			stats.Moved++
		case err != nil:
			return stats, err
		case existing.OID == n.OID:
			stats.Skipped++
		default:
			if err := dst.RawPut(n.Clone()); err != nil {
				return stats, err
			}
			stats.Moved++
		}
		// Leave a stub in the source so the removal replicates.
		stub := &nsf.Note{
			ID:      n.ID,
			OID:     n.OID,
			Class:   n.Class,
			Flags:   n.Flags | nsf.FlagDeleted,
			Created: n.Created,
		}
		stub.OID.Seq++
		db.wmu.Lock()
		now := db.clock.Now()
		stub.OID.SeqTime = now
		stub.Modified = now
		if err := db.st.Put(stub); err != nil {
			db.wmu.Unlock()
			return stats, err
		}
		db.commit(stub)
		db.wmu.Unlock()
	}
	return stats, nil
}
