package core

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/nsf"
)

// Document signing. Notes signs documents with the user's ID file; this
// reproduction substitutes an HMAC keyed by the user's directory secret
// (the same shared secret that authenticates wire sessions), verified
// server-side against the directory. The signature covers the note's
// canonical content digest, so any item tampering invalidates it, while
// bookkeeping (revisions, unsigned items added later by agents) does not
// re-sign silently — editing a signed document voids its signature until
// re-signed.

// Signature item names.
const (
	itemSigner    = "$Signer"
	itemSignature = "$Signature"
)

// ErrNoSecret is returned when the signing user has no directory secret.
var ErrNoSecret = errors.New("core: user has no secret to sign with")

// signatureOf computes the HMAC for note as signed by user.
func (db *Database) signatureOf(n *nsf.Note, user string) ([]byte, error) {
	if db.dirs == nil {
		return nil, errors.New("core: signing requires a directory")
	}
	u, ok := db.dirs.Lookup(user)
	if !ok || u.Secret == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoSecret, user)
	}
	digest := n.CanonicalDigest(itemSigner, itemSignature)
	mac := hmac.New(sha256.New, []byte(u.Secret))
	mac.Write([]byte(u.Name))
	mac.Write(digest[:])
	return mac.Sum(nil), nil
}

// Sign attaches the session user's signature to the note (in memory). The
// caller then stores it with Create or Update as usual.
func (s *Session) Sign(n *nsf.Note) error {
	sig, err := s.db.signatureOf(n, s.user)
	if err != nil {
		return err
	}
	n.SetWithFlags(itemSigner, nsf.TextValue(s.user), nsf.FlagSummary|nsf.FlagNames)
	n.SetWithFlags(itemSignature, nsf.TextValue(hex.EncodeToString(sig)), nsf.FlagSummary)
	return nil
}

// VerifySignature checks a note's signature against the directory. It
// returns the signer's name when the signature is present and valid.
func (db *Database) VerifySignature(n *nsf.Note) (signer string, err error) {
	signer = n.Text(itemSigner)
	sigHex := n.Text(itemSignature)
	if signer == "" || sigHex == "" {
		return "", errors.New("core: note is not signed")
	}
	want, err := db.signatureOf(n, signer)
	if err != nil {
		return "", err
	}
	got, err := hex.DecodeString(sigHex)
	if err != nil {
		return "", fmt.Errorf("core: malformed signature: %w", err)
	}
	if !hmac.Equal(want, got) {
		return "", fmt.Errorf("core: signature of %q does not verify", signer)
	}
	return signer, nil
}
