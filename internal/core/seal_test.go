package core

import (
	"errors"
	"testing"

	"repro/internal/dir"
	"repro/internal/nsf"
)

func sealDB(t *testing.T) *Database {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-secret"})
	d.AddUser(dir.User{Name: "bob", Secret: "bob-secret"})
	d.AddUser(dir.User{Name: "eve", Secret: "eve-secret"})
	d.AddUser(dir.User{Name: "nokey"})
	return openDB(t, Options{Directory: d})
}

func TestSealAndOpen(t *testing.T) {
	db := sealDB(t)
	ada := db.Session("ada")
	n := memo("salary review")
	n.SetNumber("Salary", 123456)
	if err := ada.SealItem(n, "Salary", "ada", "bob"); err != nil {
		t.Fatalf("SealItem: %v", err)
	}
	if err := ada.Create(n); err != nil {
		t.Fatal(err)
	}
	stored, _ := ada.Get(n.OID.UNID)
	// Sealed value is opaque raw bytes on the note.
	it, _ := stored.Item("Salary")
	if !it.Flags.Has(nsf.FlagSealed) || it.Value.Type != nsf.TypeRaw {
		t.Fatalf("sealed item shape: %+v", it)
	}
	// Both recipients can open it.
	for _, user := range []string{"ada", "bob"} {
		v, err := db.Session(user).OpenItem(stored, "Salary")
		if err != nil {
			t.Fatalf("%s OpenItem: %v", user, err)
		}
		if v.Type != nsf.TypeNumber || v.Numbers[0] != 123456 {
			t.Fatalf("%s got %v", user, v)
		}
	}
	// Eve can read the note but not the sealed field.
	eve := db.Session("eve")
	got, err := eve.Get(n.OID.UNID)
	if err != nil {
		t.Fatalf("eve Get: %v", err)
	}
	if _, err := eve.OpenItem(got, "Salary"); !errors.Is(err, ErrNotRecipient) {
		t.Errorf("eve opened sealed item: %v", err)
	}
}

func TestSealErrors(t *testing.T) {
	db := sealDB(t)
	s := db.Session("ada")
	n := memo("x")
	if err := s.SealItem(n, "Missing", "ada"); err == nil {
		t.Error("sealed a missing item")
	}
	if err := s.SealItem(n, "Subject"); err == nil {
		t.Error("sealed with no recipients")
	}
	if err := s.SealItem(n, "Subject", "nokey"); !errors.Is(err, ErrNoSecret) {
		t.Errorf("sealed for secretless user: %v", err)
	}
	if err := s.SealItem(n, "Subject", "ada"); err != nil {
		t.Fatal(err)
	}
	if err := s.SealItem(n, "Subject", "ada"); err == nil {
		t.Error("double seal accepted")
	}
	if _, err := s.OpenItem(n, "Body"); err == nil {
		t.Error("opened an unsealed item")
	}
}

func TestSealTamperDetection(t *testing.T) {
	db := sealDB(t)
	s := db.Session("ada")
	n := memo("tamper")
	n.SetText("Secret", "the truth")
	if err := s.SealItem(n, "Secret", "ada"); err != nil {
		t.Fatal(err)
	}
	// Flip a ciphertext byte.
	it, _ := n.Item("Secret")
	it.Value.Raw[len(it.Value.Raw)-1] ^= 0xFF
	n.Set("Secret", it.Value)
	// SetWithFlags preserved? re-mark sealed to reach the decrypt path.
	n.SetWithFlags("Secret", it.Value, it.Flags)
	if _, err := s.OpenItem(n, "Secret"); err == nil {
		t.Error("tampered ciphertext opened")
	}
}

func TestSealBoundToDocumentAndItem(t *testing.T) {
	db := sealDB(t)
	s := db.Session("ada")
	a := memo("doc a")
	a.SetText("Secret", "payload")
	if err := s.SealItem(a, "Secret", "ada"); err != nil {
		t.Fatal(err)
	}
	// Replay the sealed item onto another document: AAD binding must fail.
	b := memo("doc b")
	ai, _ := a.Item("Secret")
	b.SetWithFlags("Secret", ai.Value.Clone(), ai.Flags)
	b.Set("$Seal:Secret", a.Get("$Seal:Secret"))
	b.Set("$Seal:Secret:keys", a.Get("$Seal:Secret:keys"))
	if _, err := s.OpenItem(b, "Secret"); err == nil {
		t.Error("sealed item replayed onto another document")
	}
}

func TestSealSurvivesReplicationAndUnseal(t *testing.T) {
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-secret"})
	replica := nsf.NewReplicaID()
	a := openDB(t, Options{Directory: d, ReplicaID: replica})
	b := openDB(t, Options{Directory: d, ReplicaID: replica})
	s := a.Session("ada")
	n := memo("travels sealed")
	n.SetText("Secret", "classified")
	if err := s.SealItem(n, "Secret", "ada"); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(n); err != nil {
		t.Fatal(err)
	}
	moved, _ := a.RawGet(n.OID.UNID)
	if err := b.RawPut(moved.Clone()); err != nil {
		t.Fatal(err)
	}
	got, _ := b.RawGet(n.OID.UNID)
	v, err := b.Session("ada").OpenItem(got, "Secret")
	if err != nil || v.Text[0] != "classified" {
		t.Fatalf("open after replication: %v %v", v, err)
	}
	// Unseal in place restores the plaintext and clears metadata.
	if err := b.Session("ada").UnsealItem(got, "Secret"); err != nil {
		t.Fatal(err)
	}
	if got.Text("Secret") != "classified" || got.Has("$Seal:Secret") {
		t.Errorf("unseal left state: %v", got.ItemNames())
	}
}
