package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"strings"
	"sync"

	"repro/internal/nsf"
)

// Unread marks: Notes tracks, per user and per database, which documents
// the user has read. A document is unread until marked read, and becomes
// unread again when modified after the read mark. Tables are persisted in
// local bookkeeping notes (class ClassReplFormula) that never replicate,
// matching classic Notes behaviour where unread marks were per-replica.

// unreadTable is one user's read-mark table.
type unreadTable struct {
	mu sync.Mutex
	// read maps a document to the Modified timestamp it had when the user
	// last read it.
	read map[nsf.UNID]nsf.Timestamp
}

func unreadNoteUNID(user string) nsf.UNID {
	sum := sha256.Sum256([]byte("unread:" + strings.ToLower(user)))
	var u nsf.UNID
	copy(u[:], sum[:16])
	return u
}

// unreadFor loads (or creates) the in-memory table for user.
func (db *Database) unreadFor(user string) (*unreadTable, error) {
	key := strings.ToLower(user)
	db.mu.Lock()
	if db.unread == nil {
		db.unread = make(map[string]*unreadTable)
	}
	if t, ok := db.unread[key]; ok {
		db.mu.Unlock()
		return t, nil
	}
	db.mu.Unlock()
	t := &unreadTable{read: make(map[nsf.UNID]nsf.Timestamp)}
	n, err := db.st.GetByUNID(unreadNoteUNID(user))
	switch {
	case errors.Is(err, ErrNotFound):
		// fresh table
	case err != nil:
		return nil, err
	default:
		blob := n.Get("ReadMarks").Raw
		for off := 0; off+24 <= len(blob); off += 24 {
			var u nsf.UNID
			copy(u[:], blob[off:off+16])
			t.read[u] = nsf.Timestamp(binary.LittleEndian.Uint64(blob[off+16 : off+24]))
		}
	}
	db.mu.Lock()
	if existing, ok := db.unread[key]; ok {
		t = existing // lost a benign race; use the winner
	} else {
		db.unread[key] = t
	}
	db.mu.Unlock()
	return t, nil
}

// persistUnread writes the table's current state to its bookkeeping note.
func (db *Database) persistUnread(user string, t *unreadTable) error {
	t.mu.Lock()
	blob := make([]byte, 0, len(t.read)*24)
	for u, ts := range t.read {
		blob = append(blob, u[:]...)
		blob = binary.LittleEndian.AppendUint64(blob, uint64(ts))
	}
	t.mu.Unlock()
	unid := unreadNoteUNID(user)
	n, err := db.st.GetByUNID(unid)
	if errors.Is(err, ErrNotFound) {
		n = &nsf.Note{
			OID:   nsf.OID{UNID: unid, Seq: 1, SeqTime: db.clock.Now()},
			Class: nsf.ClassReplFormula,
		}
		err = nil
	}
	if err != nil {
		return err
	}
	n.SetText("UnreadUser", user)
	n.Set("ReadMarks", nsf.RawValue(blob))
	n.OID.Seq++
	n.OID.SeqTime = db.clock.Now()
	n.Modified = db.clock.Now()
	return db.st.Put(n)
}

// MarkRead records that the session's user has read the document in its
// current version.
func (s *Session) MarkRead(unid nsf.UNID) error {
	n, err := s.db.st.GetByUNID(unid)
	if err != nil {
		return err
	}
	t, err := s.db.unreadFor(s.user)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.read[unid] = n.Modified
	t.mu.Unlock()
	return s.db.persistUnread(s.user, t)
}

// MarkUnread clears the user's read mark for the document.
func (s *Session) MarkUnread(unid nsf.UNID) error {
	t, err := s.db.unreadFor(s.user)
	if err != nil {
		return err
	}
	t.mu.Lock()
	delete(t.read, unid)
	t.mu.Unlock()
	return s.db.persistUnread(s.user, t)
}

// IsUnread reports whether the document is unread for this session's user:
// never marked read, or modified since the mark. Missing documents read as
// not-unread.
func (s *Session) IsUnread(unid nsf.UNID) bool {
	n, err := s.db.st.GetByUNID(unid)
	if err != nil || n.IsStub() {
		return false
	}
	t, err := s.db.unreadFor(s.user)
	if err != nil {
		return true
	}
	t.mu.Lock()
	mark, ok := t.read[unid]
	t.mu.Unlock()
	return !ok || n.Modified > mark
}

// UnreadCount counts unread, readable documents, pruning marks for
// documents that no longer exist.
func (s *Session) UnreadCount() (int, error) {
	t, err := s.db.unreadFor(s.user)
	if err != nil {
		return 0, err
	}
	live := make(map[nsf.UNID]bool)
	count := 0
	err = s.All(func(n *nsf.Note) bool {
		live[n.OID.UNID] = true
		t.mu.Lock()
		mark, ok := t.read[n.OID.UNID]
		t.mu.Unlock()
		if !ok || n.Modified > mark {
			count++
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	// Prune marks for vanished documents so tables do not grow forever.
	t.mu.Lock()
	pruned := false
	for u := range t.read {
		if !live[u] {
			delete(t.read, u)
			pruned = true
		}
	}
	t.mu.Unlock()
	if pruned {
		if err := s.db.persistUnread(s.user, t); err != nil {
			return 0, err
		}
	}
	return count, nil
}

// MarkAllRead marks every currently readable document as read.
func (s *Session) MarkAllRead() error {
	t, err := s.db.unreadFor(s.user)
	if err != nil {
		return err
	}
	err = s.All(func(n *nsf.Note) bool {
		t.mu.Lock()
		t.read[n.OID.UNID] = n.Modified
		t.mu.Unlock()
		return true
	})
	if err != nil {
		return err
	}
	return s.db.persistUnread(s.user, t)
}
