package core

import (
	"repro/internal/backup"
	"repro/internal/nsf"
)

// Online backup and media recovery, layered on internal/backup. The
// database-level entry points add the changefeed barrier: before an image
// is cut, every change consumer (views, full-text, subscribers) has
// applied through the image's USN, so a backup is a clean point in the
// change stream — no consumer is mid-entry at the captured USN, and a
// restored database's consumers rebuild to exactly the image state.

// Backup takes a hot full backup of the database into the backup set at
// setDir. Writes continue during the copy; the commit path is never
// blocked. The returned image info records the USN the image captures.
func (db *Database) Backup(setDir string) (backup.ImageInfo, error) {
	db.Refresh()
	return backup.Full(db.st, setDir, db.clock.Now())
}

// BackupIncremental appends an incremental image (every note modified
// since the set's newest image) to the backup set at setDir, falling back
// to a full backup when the set is empty.
func (db *Database) BackupIncremental(setDir string) (backup.ImageInfo, error) {
	db.Refresh()
	return backup.Incremental(db.st, setDir, db.clock.Now())
}

// LastBackupUSN returns the USN captured by the newest image in the backup
// set at setDir, with its creation time (0, 0 when the set is empty).
func LastBackupUSN(setDir string) (uint64, nsf.Timestamp, error) {
	set, err := backup.OpenSet(setDir)
	if err != nil {
		return 0, 0, err
	}
	if len(set.Images) == 0 {
		return 0, 0, nil
	}
	last := set.Images[len(set.Images)-1]
	return last.EndUSN, nsf.Timestamp(last.Created), nil
}

// Restore rebuilds a database at targetPath from the backup set at setDir
// (plus, optionally, archived WAL segments for point-in-time recovery) and
// opens it. The restored database's views, full-text index, and feed
// cursor rebuild from the restored store on open.
func Restore(setDir, targetPath string, ropts backup.RestoreOptions, opts Options) (*Database, backup.RestoreInfo, error) {
	info, err := backup.Restore(setDir, targetPath, ropts)
	if err != nil {
		return nil, info, err
	}
	db, err := Open(targetPath, opts)
	return db, info, err
}
