package core

import (
	"path/filepath"
	"testing"

	"repro/internal/nsf"
)

func TestUnreadLifecycle(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("ada")
	a := memo("first")
	b := memo("second")
	s.Create(a)
	s.Create(b)

	if !s.IsUnread(a.OID.UNID) || !s.IsUnread(b.OID.UNID) {
		t.Fatal("fresh docs should be unread")
	}
	if n, _ := s.UnreadCount(); n != 2 {
		t.Fatalf("UnreadCount = %d", n)
	}
	if err := s.MarkRead(a.OID.UNID); err != nil {
		t.Fatal(err)
	}
	if s.IsUnread(a.OID.UNID) {
		t.Error("read doc still unread")
	}
	if n, _ := s.UnreadCount(); n != 1 {
		t.Errorf("UnreadCount = %d", n)
	}
	// Modifying a read doc makes it unread again.
	got, _ := s.Get(a.OID.UNID)
	got.SetText("Subject", "edited")
	if err := s.Update(got); err != nil {
		t.Fatal(err)
	}
	if !s.IsUnread(a.OID.UNID) {
		t.Error("edited doc should be unread again")
	}
	// Explicit unmark.
	s.MarkRead(a.OID.UNID)
	if err := s.MarkUnread(a.OID.UNID); err != nil {
		t.Fatal(err)
	}
	if !s.IsUnread(a.OID.UNID) {
		t.Error("MarkUnread had no effect")
	}
}

func TestUnreadIsPerUser(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("ada")
	n := memo("shared")
	s.Create(n)
	s.MarkRead(n.OID.UNID)
	bob := db.Session("bob")
	if !bob.IsUnread(n.OID.UNID) {
		t.Error("ada's read mark leaked to bob")
	}
	if s.IsUnread(n.OID.UNID) {
		t.Error("ada's mark lost")
	}
}

func TestUnreadPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "unread.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	a := memo("keep")
	b := memo("new")
	s.Create(a)
	s.Create(b)
	s.MarkRead(a.OID.UNID)
	db.Close()

	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2 := db2.Session("ada")
	if s2.IsUnread(a.OID.UNID) {
		t.Error("read mark lost across reopen")
	}
	if !s2.IsUnread(b.OID.UNID) {
		t.Error("unread doc marked read across reopen")
	}
}

func TestMarkAllReadAndPruning(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("ada")
	var docs []*nsf.Note
	for i := 0; i < 5; i++ {
		n := memo("m")
		s.Create(n)
		docs = append(docs, n)
	}
	if err := s.MarkAllRead(); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.UnreadCount(); n != 0 {
		t.Errorf("UnreadCount after MarkAllRead = %d", n)
	}
	// Delete a doc: its mark is pruned on the next count and the count
	// stays correct.
	s.Delete(docs[0].OID.UNID)
	if n, _ := s.UnreadCount(); n != 0 {
		t.Errorf("UnreadCount after delete = %d", n)
	}
}
