package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/nsf"
)

// Folders are user-curated document collections: like views, but membership
// is explicit (drag a document in) rather than computed by a selection
// formula. A folder persists as a design note holding the member UNIDs, so
// folders replicate with the database.

const (
	itemFolderTitle = "$FolderTitle"
	itemFolderRefs  = "$FolderRefs"
)

// folderNote finds the design note for the named folder.
func (db *Database) folderNote(name string) (*nsf.Note, error) {
	var found *nsf.Note
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassView && !n.IsStub() &&
			strings.EqualFold(n.Text(itemFolderTitle), name) {
			found = n
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if found == nil {
		return nil, fmt.Errorf("core: no folder %q", name)
	}
	return found, nil
}

// CreateFolder creates an empty folder. Requires Designer access when a
// session is supplied.
func (db *Database) CreateFolder(s *Session, name string) error {
	if s != nil && !s.Identity().CanDesign() {
		return fmt.Errorf("%w: %s may not create folders", ErrAccessDenied, s.User())
	}
	if name == "" {
		return errors.New("core: folder name must not be empty")
	}
	if _, err := db.folderNote(name); err == nil {
		return fmt.Errorf("core: folder %q already exists", name)
	}
	n := nsf.NewNote(nsf.ClassView)
	n.SetText(itemFolderTitle, name)
	n.SetText(itemFolderRefs)
	return db.putVersioned(n)
}

// Folders lists folder names, sorted.
func (db *Database) Folders() ([]string, error) {
	var out []string
	err := db.st.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassView && !n.IsStub() {
			if t := n.Text(itemFolderTitle); t != "" {
				out = append(out, t)
			}
		}
		return true
	})
	sort.Strings(out)
	return out, err
}

// AddToFolder puts a document into a folder (idempotent). The session must
// be able to read the document.
func (s *Session) AddToFolder(folder string, unid nsf.UNID) error {
	if _, err := s.Get(unid); err != nil {
		return err
	}
	fn, err := s.db.folderNote(folder)
	if err != nil {
		return err
	}
	refs := fn.TextList(itemFolderRefs)
	key := unid.String()
	for _, r := range refs {
		if r == key {
			return nil
		}
	}
	fn.SetText(itemFolderRefs, append(refs, key)...)
	return s.db.putVersioned(fn)
}

// RemoveFromFolder takes a document out of a folder; it reports whether the
// document was a member.
func (s *Session) RemoveFromFolder(folder string, unid nsf.UNID) (bool, error) {
	fn, err := s.db.folderNote(folder)
	if err != nil {
		return false, err
	}
	refs := fn.TextList(itemFolderRefs)
	key := unid.String()
	// TextList aliases the stored value's backing array (which cached reads
	// share); compact into a fresh slice rather than in place.
	kept := make([]string, 0, len(refs))
	removed := false
	for _, r := range refs {
		if r == key {
			removed = true
			continue
		}
		kept = append(kept, r)
	}
	if !removed {
		return false, nil
	}
	fn.SetText(itemFolderRefs, kept...)
	return true, s.db.putVersioned(fn)
}

// FolderContents returns the folder's readable documents in insertion
// order, silently skipping members that have since been deleted or that
// the session may not read.
func (s *Session) FolderContents(folder string) ([]*nsf.Note, error) {
	fn, err := s.db.folderNote(folder)
	if err != nil {
		return nil, err
	}
	var out []*nsf.Note
	for _, r := range fn.TextList(itemFolderRefs) {
		unid, err := nsf.ParseUNID(r)
		if err != nil {
			continue
		}
		n, err := s.Get(unid)
		if err != nil {
			continue
		}
		out = append(out, n)
	}
	return out, nil
}
