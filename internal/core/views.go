package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/formula"
	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/view"
)

// View design note items.
const (
	itemViewTitle   = "$Title"
	itemViewSel     = "$Selection"
	itemViewFlags   = "$ViewFlags"
	itemColTitles   = "$ColTitles"
	itemColItems    = "$ColItems"
	itemColFormulas = "$ColFormulas"
	itemColFlags    = "$ColFlags"
	colFlagSorted   = 1
	colFlagDesc     = 2
	colFlagCategory = 4
	colFlagTotals   = 8

	viewFlagResponses = 1
)

// defToNote serializes a view definition into a design note.
func defToNote(def *view.Definition, n *nsf.Note) {
	n.Class = nsf.ClassView
	n.SetText(itemViewTitle, def.Name)
	n.SetText(itemViewSel, def.Selection.Source())
	vf := 0
	if def.ShowResponses {
		vf |= viewFlagResponses
	}
	n.SetNumber(itemViewFlags, float64(vf))
	titles := make([]string, len(def.Columns))
	items := make([]string, len(def.Columns))
	formulas := make([]string, len(def.Columns))
	flags := make([]float64, len(def.Columns))
	for i, c := range def.Columns {
		titles[i] = c.Title
		items[i] = c.ItemName
		if c.Formula != nil {
			formulas[i] = c.Formula.Source()
		}
		f := 0
		if c.Sorted {
			f |= colFlagSorted
		}
		if c.Descending {
			f |= colFlagDesc
		}
		if c.Categorized {
			f |= colFlagCategory
		}
		if c.Totals {
			f |= colFlagTotals
		}
		flags[i] = float64(f)
	}
	n.SetText(itemColTitles, titles...)
	n.SetText(itemColItems, items...)
	n.SetText(itemColFormulas, formulas...)
	n.SetNumber(itemColFlags, flags...)
}

// defFromNote reconstructs a view definition from a design note.
func defFromNote(n *nsf.Note) (*view.Definition, error) {
	name := n.Text(itemViewTitle)
	if name == "" {
		return nil, fmt.Errorf("core: view note has no title")
	}
	titles := n.TextList(itemColTitles)
	items := n.TextList(itemColItems)
	formulas := n.TextList(itemColFormulas)
	flags := n.Get(itemColFlags).Numbers
	if len(items) != len(titles) || len(formulas) != len(titles) || len(flags) != len(titles) {
		return nil, fmt.Errorf("core: view note %q has inconsistent column lists", name)
	}
	cols := make([]view.Column, len(titles))
	for i := range titles {
		cols[i] = view.Column{
			Title:       titles[i],
			ItemName:    items[i],
			Sorted:      int(flags[i])&colFlagSorted != 0,
			Descending:  int(flags[i])&colFlagDesc != 0,
			Categorized: int(flags[i])&colFlagCategory != 0,
			Totals:      int(flags[i])&colFlagTotals != 0,
		}
		if items[i] == "" {
			f, err := formula.Compile(formulas[i])
			if err != nil {
				return nil, fmt.Errorf("core: view %q column %d: %w", name, i, err)
			}
			cols[i].Formula = f
		}
	}
	def, err := view.NewDefinition(name, n.Text(itemViewSel), cols...)
	if err != nil {
		return nil, err
	}
	def.ShowResponses = int(n.Number(itemViewFlags))&viewFlagResponses != 0
	return def, nil
}

// rebuildView repopulates a view index from the store.
func (db *Database) rebuildView(ix *view.Index) error {
	return ix.Rebuild(db.evalContext(""), db.st.ScanAll)
}

// AddView persists a view definition as a design note and builds its index.
// Requires Designer access when a session is supplied.
func (db *Database) AddView(s *Session, def *view.Definition) error {
	if s != nil && !s.Identity().CanDesign() {
		return fmt.Errorf("%w: %s may not modify design", ErrAccessDenied, s.User())
	}
	n := nsf.NewNote(nsf.ClassView)
	// Reuse the existing design note when redefining a view.
	if unid, ok := db.findViewNote(def.Name); ok {
		n.OID.UNID = unid
	}
	defToNote(def, n)
	if err := db.putVersioned(n); err != nil {
		return err
	}
	return db.installView(view.NewIndex(def))
}

// installView populates a new view index from the store and registers it
// with the maintainer. It holds the commit lock across the rebuild so the
// scan sees a frozen store: every change committed before the scan is in
// it, and every change after registration reaches the index through the
// feed — entries still in flight re-apply versions the scan already saw,
// which the index absorbs idempotently.
func (db *Database) installView(ix *view.Index) error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	if err := db.rebuildView(ix); err != nil {
		return err
	}
	db.mu.Lock()
	db.views[strings.ToLower(ix.Definition().Name)] = ix
	db.mu.Unlock()
	return nil
}

// findViewNote locates the design note for the named view.
func (db *Database) findViewNote(name string) (nsf.UNID, bool) {
	var unid nsf.UNID
	found := false
	db.st.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassView && !n.IsStub() && strings.EqualFold(n.Text(itemViewTitle), name) {
			unid = n.OID.UNID
			found = true
			return false
		}
		return true
	})
	return unid, found
}

// View returns the named view index, if defined, after a refresh barrier:
// the index reflects every change committed before the call (Domino's
// "view refresh on open"). Use ViewStale to skip the barrier.
func (db *Database) View(name string) (*view.Index, bool) {
	db.Refresh()
	return db.ViewStale(name)
}

// ViewStale returns the named view index without waiting for maintenance
// to catch up — the index may lag recent writes.
func (db *Database) ViewStale(name string) (*view.Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.views[strings.ToLower(name)]
	return ix, ok
}

// ViewNames lists defined views, sorted.
func (db *Database) ViewNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.views))
	for _, ix := range db.views {
		out = append(out, ix.Definition().Name)
	}
	sort.Strings(out)
	return out
}

// FullText returns the full-text index, or nil if not enabled.
func (db *Database) FullText() *ft.Index {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ftIndex
}
