package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"strings"

	"repro/internal/nsf"
)

// Field-level encryption. Notes lets a form encrypt selected fields for
// named users; only they can read the values, even though the document
// itself replicates everywhere and other items stay readable. This
// reproduction seals an item with AES-256-GCM under a random content key,
// and wraps that key for each recipient under a key derived from the
// recipient's directory secret (the stand-in for Notes public keys, like
// signing).
//
// Layout on the note: the sealed item keeps its name, carries FlagSealed,
// and its value is the GCM ciphertext of the original value's canonical
// encoding. A companion item "$Seal:<name>" stores the nonce and the
// per-recipient wrapped keys.

// ErrNotRecipient is returned when the session's user cannot unseal an item.
var ErrNotRecipient = errors.New("core: not a recipient of this sealed item")

const sealPrefix = "$Seal:"

// userKey derives a recipient's key-wrapping key.
func (db *Database) userKey(user string) ([]byte, error) {
	if db.dirs == nil {
		return nil, errors.New("core: sealing requires a directory")
	}
	u, ok := db.dirs.Lookup(user)
	if !ok || u.Secret == "" {
		return nil, fmt.Errorf("%w: %s", ErrNoSecret, user)
	}
	k := sha256.Sum256([]byte("seal:" + strings.ToLower(u.Name) + ":" + u.Secret))
	return k[:], nil
}

func gcmFor(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// SealItem encrypts the named item's value so only the recipients can read
// it. The caller saves the note afterwards as usual. The sealing user does
// not need to be a recipient (as in Notes, you can encrypt a field you can
// no longer read).
func (s *Session) SealItem(n *nsf.Note, itemName string, recipients ...string) error {
	if len(recipients) == 0 {
		return errors.New("core: SealItem needs at least one recipient")
	}
	it, ok := n.Item(itemName)
	if !ok {
		return fmt.Errorf("core: no item %q to seal", itemName)
	}
	if it.Flags.Has(nsf.FlagSealed) {
		return fmt.Errorf("core: item %q is already sealed", itemName)
	}
	plaintext := nsf.EncodeValue(it.Value)
	contentKey := make([]byte, 32)
	if _, err := rand.Read(contentKey); err != nil {
		return err
	}
	aead, err := gcmFor(contentKey)
	if err != nil {
		return err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	// Bind the ciphertext to the note and item so it cannot be replayed
	// onto another document or field.
	aad := sealAAD(n.OID.UNID, itemName)
	sealed := aead.Seal(nil, nonce, plaintext, aad)

	// Wrap the content key for each recipient: recipient names in a text
	// list, wrapped keys (nonce || ciphertext) concatenated in a raw item
	// with a fixed stride.
	var names []string
	var wrapped []byte
	for _, r := range recipients {
		rk, err := s.db.userKey(r)
		if err != nil {
			return err
		}
		raead, err := gcmFor(rk)
		if err != nil {
			return err
		}
		rnonce := make([]byte, raead.NonceSize())
		if _, err := rand.Read(rnonce); err != nil {
			return err
		}
		wk := raead.Seal(nil, rnonce, contentKey, aad)
		names = append(names, r)
		wrapped = append(wrapped, rnonce...)
		wrapped = append(wrapped, wk...)
	}
	n.SetWithFlags(itemName, nsf.RawValue(append(nonce, sealed...)), it.Flags|nsf.FlagSealed)
	metaName := sealPrefix + itemName
	n.Set(metaName, nsf.TextValue(names...))
	// Stash the wrapped keys alongside, in a raw item.
	n.Set(metaName+":keys", nsf.RawValue(wrapped))
	return nil
}

func sealAAD(unid nsf.UNID, itemName string) []byte {
	return append(append([]byte{}, unid[:]...), strings.ToLower(itemName)...)
}

// OpenItem decrypts a sealed item for the session's user, returning the
// original value. The note itself is not modified.
func (s *Session) OpenItem(n *nsf.Note, itemName string) (nsf.Value, error) {
	it, ok := n.Item(itemName)
	if !ok || !it.Flags.Has(nsf.FlagSealed) {
		return nsf.Value{}, fmt.Errorf("core: item %q is not sealed", itemName)
	}
	metaName := sealPrefix + itemName
	names := n.TextList(metaName)
	wrapped := n.Get(metaName + ":keys").Raw
	idx := -1
	for i, r := range names {
		if strings.EqualFold(r, s.user) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nsf.Value{}, fmt.Errorf("%w: %s", ErrNotRecipient, s.user)
	}
	rk, err := s.db.userKey(s.user)
	if err != nil {
		return nsf.Value{}, err
	}
	raead, err := gcmFor(rk)
	if err != nil {
		return nsf.Value{}, err
	}
	aad := sealAAD(n.OID.UNID, itemName)
	// Fixed stride per recipient: nonce + wrapped 32-byte key + GCM tag.
	stride := raead.NonceSize() + 32 + raead.Overhead()
	off := idx * stride
	if off+stride > len(wrapped) {
		return nsf.Value{}, errors.New("core: sealed key table is corrupt")
	}
	rnonce := wrapped[off : off+raead.NonceSize()]
	wk := wrapped[off+raead.NonceSize() : off+stride]
	contentKey, err := raead.Open(nil, rnonce, wk, aad)
	if err != nil {
		return nsf.Value{}, fmt.Errorf("core: unwrap key: %w", err)
	}
	aead, err := gcmFor(contentKey)
	if err != nil {
		return nsf.Value{}, err
	}
	blob := it.Value.Raw
	if len(blob) < aead.NonceSize() {
		return nsf.Value{}, errors.New("core: sealed item is corrupt")
	}
	plaintext, err := aead.Open(nil, blob[:aead.NonceSize()], blob[aead.NonceSize():], aad)
	if err != nil {
		return nsf.Value{}, fmt.Errorf("core: unseal: %w", err)
	}
	return nsf.DecodeValue(plaintext)
}

// UnsealItem decrypts a sealed item in place (restoring the original value
// and clearing the seal metadata), for recipients who want to persist the
// plaintext again.
func (s *Session) UnsealItem(n *nsf.Note, itemName string) error {
	v, err := s.OpenItem(n, itemName)
	if err != nil {
		return err
	}
	it, _ := n.Item(itemName)
	n.SetWithFlags(itemName, v, it.Flags&^nsf.FlagSealed)
	n.Remove(sealPrefix + itemName)
	n.Remove(sealPrefix + itemName + ":keys")
	return nil
}
