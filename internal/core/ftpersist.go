package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/ft"
	"repro/internal/nsf"
)

// Full-text index persistence. Like Domino's .ft directories, the index is
// kept in a sidecar file next to the database (path + ".ft") so
// EnableFullText on a large database loads a snapshot and catches up from
// the modification index instead of re-tokenizing everything.
//
// Sidecar format: magic "NSFFT001", the catch-up cursor (the clock reading
// at save time, 8 bytes), then the ft.Index snapshot. Snapshots are local
// state and never replicate.
const ftSidecarMagic = "NSFFT001"

func (db *Database) ftSidecarPath() string { return db.st.Path() + ".ft" }

// EnableFullText builds or loads the database's full-text index; after it
// returns, the index is maintained incrementally through the changefeed,
// and Close persists it. The commit lock is held across the build so the
// scan sees a frozen store; feed entries still in flight re-apply versions
// the scan already saw, which the index absorbs idempotently.
func (db *Database) EnableFullText() error {
	db.wmu.Lock()
	defer db.wmu.Unlock()
	// Every note already committed has Modified < pre (the clock is strictly
	// monotonic), so an index covering the current store is complete through
	// pre; everything after flows through the feed maintainer.
	pre := db.clock.Now()
	ix, err := db.loadFullText()
	if err != nil {
		// No usable snapshot: full build.
		ix = ft.NewIndex()
		err := db.st.ScanAll(func(n *nsf.Note) bool {
			ix.Update(n)
			return true
		})
		if err != nil {
			return err
		}
	}
	db.mu.Lock()
	db.ftIndex = ix
	db.mu.Unlock()
	db.setFTCursor(pre)
	return nil
}

// loadFullText loads the sidecar snapshot and catches up: documents that
// vanished while the index was offline are dropped, and everything
// modified since the cursor is re-indexed.
func (db *Database) loadFullText() (*ft.Index, error) {
	f, err := os.Open(db.ftSidecarPath())
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := make([]byte, len(ftSidecarMagic))
	if _, err := io.ReadFull(f, magic); err != nil {
		return nil, err
	}
	if string(magic) != ftSidecarMagic {
		return nil, fmt.Errorf("core: bad full-text sidecar magic %q", magic)
	}
	var cursorBuf [8]byte
	if _, err := io.ReadFull(f, cursorBuf[:]); err != nil {
		return nil, err
	}
	cursor := nsf.Timestamp(binary.LittleEndian.Uint64(cursorBuf[:]))
	ix, err := ft.ReadIndex(f)
	if err != nil {
		return nil, err
	}
	// Drop documents hard-deleted (e.g. purged stubs) while offline.
	for _, u := range ix.Docs() {
		ok, err := db.st.Exists(u)
		if err != nil {
			return nil, err
		}
		if !ok {
			ix.Remove(u)
		}
	}
	// Catch up on everything modified since the snapshot.
	err = db.st.ScanModifiedSince(cursor, func(n *nsf.Note) bool {
		ix.Update(n)
		return true
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// SaveFullText writes the full-text sidecar snapshot (a no-op when
// full-text is not enabled). Close calls it automatically.
func (db *Database) SaveFullText() error {
	db.mu.RLock()
	ix := db.ftIndex
	db.mu.RUnlock()
	if ix == nil {
		return nil
	}
	// Drain pending maintenance so the snapshot is current, then record the
	// maintainer's catch-up cursor: every note with Modified <= cursor is in
	// the index; writes racing the save are re-indexed by the next catch-up,
	// never lost. (After Close the feed is already drained and the barrier
	// returns immediately.)
	db.Refresh()
	cursor := nsf.Timestamp(db.ftCursor.Load())
	tmp := db.ftSidecarPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp)
	if _, err := f.Write([]byte(ftSidecarMagic)); err != nil {
		f.Close()
		return err
	}
	var cursorBuf [8]byte
	binary.LittleEndian.PutUint64(cursorBuf[:], uint64(cursor))
	if _, err := f.Write(cursorBuf[:]); err != nil {
		f.Close()
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, db.ftSidecarPath())
}

// DropFullTextSidecar deletes the persisted snapshot (e.g. before a manual
// full rebuild).
func (db *Database) DropFullTextSidecar() error {
	err := os.Remove(db.ftSidecarPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}
