package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/nsf"
	"repro/internal/view"
)

// TestConcurrentSessions hammers one database from many goroutines doing
// mixed creates, reads, updates, deletes, view reads, and searches. It is
// primarily a race-detector target; it also checks the final count adds up.
func TestConcurrentSessions(t *testing.T) {
	db := openDB(t, Options{})
	def, _ := view.NewDefinition("all", "SELECT @All",
		view.Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	if err := db.AddView(nil, def); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableFullText(); err != nil {
		t.Fatal(err)
	}

	const (
		writers = 4
		readers = 4
		perG    = 100
	)
	var wg sync.WaitGroup
	created := make([][]nsf.UNID, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("writer%d", w))
			for i := 0; i < perG; i++ {
				n := nsf.NewNote(nsf.ClassDocument)
				n.SetText("Subject", fmt.Sprintf("w%d-%d", w, i))
				if err := sess.Create(n); err != nil {
					t.Errorf("Create: %v", err)
					return
				}
				created[w] = append(created[w], n.OID.UNID)
				if i%3 == 0 {
					n.SetText("Body", "edited")
					if err := sess.Update(n); err != nil {
						t.Errorf("Update: %v", err)
						return
					}
				}
				if i%10 == 9 {
					if err := sess.Delete(created[w][i-5]); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("reader%d", r))
			for i := 0; i < perG; i++ {
				if _, err := sess.Rows("all"); err != nil {
					t.Errorf("Rows: %v", err)
					return
				}
				if _, err := sess.Search("edited"); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				sess.All(func(n *nsf.Note) bool { return true })
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Each writer created perG docs and deleted perG/10.
	wantLive := writers * (perG - perG/10)
	live := 0
	db.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() {
			live++
		}
		return true
	})
	if live != wantLive {
		t.Errorf("live docs = %d, want %d", live, wantLive)
	}
	// The view settles to the same count.
	ix, _ := db.View("all")
	if ix.Len() != wantLive {
		t.Errorf("view entries = %d, want %d", ix.Len(), wantLive)
	}
}

// TestConcurrentReplicationAndWrites replicates while both replicas take
// writes, then settles and checks convergence of counts.
func TestConcurrentReplicationAndWrites(t *testing.T) {
	replica := nsf.NewReplicaID()
	a := openDB(t, Options{ReplicaID: replica})
	b := openDB(t, Options{ReplicaID: replica})
	var wg sync.WaitGroup
	for g, db := range []*Database{a, b} {
		wg.Add(1)
		go func(g int, db *Database) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("user%d", g))
			for i := 0; i < 150; i++ {
				n := nsf.NewNote(nsf.ClassDocument)
				n.SetText("Subject", fmt.Sprintf("g%d-%d", g, i))
				if err := sess.Create(n); err != nil {
					t.Errorf("Create: %v", err)
					return
				}
			}
		}(g, db)
	}
	// Replicate concurrently with the writers; results may be partial but
	// must never error or corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := replicateLocal(a, b, "b"); err != nil {
				t.Errorf("concurrent replicate: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	// Settle.
	for i := 0; i < 3; i++ {
		if _, err := replicateLocal(a, b, "b"); err != nil {
			t.Fatal(err)
		}
	}
	countDocs := func(db *Database) int {
		n := 0
		db.ScanAll(func(x *nsf.Note) bool {
			if x.Class == nsf.ClassDocument && !x.IsStub() {
				n++
			}
			return true
		})
		return n
	}
	ca, cb := countDocs(a), countDocs(b)
	if ca != 300 || cb != 300 {
		t.Errorf("counts after settle: a=%d b=%d, want 300 each", ca, cb)
	}
}

// replicateLocal avoids importing repl (cycle: repl imports core) by going
// through the database's raw surfaces the way the replicator does — a
// minimal pull-push: copy everything modified on either side.
func replicateLocal(a, b *Database, _ string) (int, error) {
	moved := 0
	copyNewer := func(src, dst *Database) error {
		var batch []*nsf.Note
		err := src.ScanAll(func(n *nsf.Note) bool {
			if n.Class == nsf.ClassReplFormula {
				return true
			}
			batch = append(batch, n)
			return true
		})
		if err != nil {
			return err
		}
		for _, n := range batch {
			cur, err := dst.RawGet(n.OID.UNID)
			if errors.Is(err, ErrNotFound) {
				if err := dst.RawPut(n.Clone()); err != nil {
					return err
				}
				moved++
				continue
			}
			if err != nil {
				return err
			}
			if n.OID.Newer(cur.OID) {
				if err := dst.RawPut(n.Clone()); err != nil {
					return err
				}
				moved++
			}
		}
		return nil
	}
	if err := copyNewer(a, b); err != nil {
		return moved, err
	}
	if err := copyNewer(b, a); err != nil {
		return moved, err
	}
	return moved, nil
}
