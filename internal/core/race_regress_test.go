package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/nsf"
)

// raceProcs widens the scheduler so kernel preemption can land between a
// read and the lock that should have covered it. On the single-CPU CI box
// GOMAXPROCS defaults to 1, where goroutines only yield at blocking points
// and the pre-fix interleavings almost never fire.
func raceProcs(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestConcurrentUpdatesSeqMonotonic is the regression test for the
// putVersioned lost-update race: with the read-modify-write outside wmu,
// two concurrent saves of one UNID could both read Seq=N and both stamp
// Seq=N+1, silently dropping an edit. Every stamped Seq must be unique and
// the final version must account for every update.
func TestConcurrentUpdatesSeqMonotonic(t *testing.T) {
	raceProcs(t)
	db := openDB(t, Options{Title: "seqrace"})
	s := db.Session("alice")
	doc := memo("contended")
	if err := s.Create(doc); err != nil {
		t.Fatalf("Create: %v", err)
	}
	unid := doc.OID.UNID

	const (
		writers = 8
		rounds  = 20
	)
	var mu sync.Mutex
	seen := make(map[uint32]int)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.Session(fmt.Sprintf("writer-%d", w))
			for i := 0; i < rounds; i++ {
				n, err := sess.Get(unid)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				n.SetText("Body", fmt.Sprintf("w%d-%d", w, i))
				if err := sess.Update(n); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
				mu.Lock()
				seen[n.OID.Seq]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for seq, k := range seen {
		if k != 1 {
			t.Errorf("Seq %d stamped %d times — lost update", seq, k)
		}
	}
	final, err := db.RawGet(unid)
	if err != nil {
		t.Fatalf("RawGet: %v", err)
	}
	if want := uint32(1 + writers*rounds); final.OID.Seq != want {
		t.Errorf("final Seq = %d, want %d (one per update)", final.OID.Seq, want)
	}
	if problems := db.Verify(); len(problems) > 0 {
		t.Fatalf("Verify: %v", problems)
	}
}

// TestRawPutDeleteNoOrphan is the regression test for the RawPut
// NoteID-preservation race: with the lookup outside wmu, a concurrent
// delete-and-recreate of the same UNID could leave two NoteIDs live for one
// logical note — an orphan byID entry Verify reports as an index mismatch.
func TestRawPutDeleteNoOrphan(t *testing.T) {
	raceProcs(t)
	db := openDB(t, Options{Title: "orphanrace"})
	unid := nsf.NewUNID()
	mk := func(seq uint32, body string) *nsf.Note {
		n := nsf.NewNote(nsf.ClassDocument)
		n.OID = nsf.OID{UNID: unid, Seq: seq, SeqTime: db.Clock().Now()}
		n.Modified = db.Clock().Now()
		n.SetText("Body", body)
		return n
	}
	if err := db.RawPut(mk(1, "v1")); err != nil {
		t.Fatalf("seed RawPut: %v", err)
	}

	for iter := 0; iter < 50; iter++ {
		var wg sync.WaitGroup
		run := func(fn func() error) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := fn(); err != nil {
					t.Errorf("iter %d: %v", iter, err)
				}
			}()
		}
		run(func() error { return db.RawPut(mk(2, "a")) })
		run(func() error {
			err := db.RawDelete(unid)
			if errors.Is(err, ErrNotFound) {
				return nil
			}
			return err
		})
		run(func() error { return db.RawPut(mk(3, "b")) })
		wg.Wait()
		if t.Failed() {
			return
		}
		if problems := db.Verify(); len(problems) > 0 {
			t.Fatalf("iter %d: orphaned index entries after concurrent RawPut/RawDelete: %v", iter, problems)
		}
		// Make sure the next round starts from a live note.
		if _, err := db.RawGet(unid); errors.Is(err, ErrNotFound) {
			if err := db.RawPut(mk(1, "reseed")); err != nil {
				t.Fatalf("reseed: %v", err)
			}
		}
	}
}
