package core

import (
	"bytes"
	"testing"

	"repro/internal/dir"
	"repro/internal/nsf"
)

func signingDB(t *testing.T) *Database {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-secret"})
	d.AddUser(dir.User{Name: "bob", Secret: "bob-secret"})
	d.AddUser(dir.User{Name: "nosecret"})
	return openDB(t, Options{Directory: d})
}

func TestSignAndVerify(t *testing.T) {
	db := signingDB(t)
	s := db.Session("ada")
	n := memo("signed memo")
	if err := s.Sign(n); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := s.Create(n); err != nil {
		t.Fatalf("Create: %v", err)
	}
	stored, _ := s.Get(n.OID.UNID)
	signer, err := db.VerifySignature(stored)
	if err != nil || signer != "ada" {
		t.Fatalf("VerifySignature = %q, %v", signer, err)
	}
}

func TestTamperingBreaksSignature(t *testing.T) {
	db := signingDB(t)
	s := db.Session("ada")
	n := memo("tamper target")
	s.Sign(n)
	s.Create(n)
	got, _ := s.Get(n.OID.UNID)
	got.SetText("Subject", "tampered")
	if _, err := db.VerifySignature(got); err == nil {
		t.Error("tampered note verified")
	}
	// Forged signer: bob claims ada's signature.
	got, _ = s.Get(n.OID.UNID)
	got.SetText("$Signer", "bob")
	if _, err := db.VerifySignature(got); err == nil {
		t.Error("forged signer verified")
	}
	// Re-signing after edit restores validity.
	got, _ = s.Get(n.OID.UNID)
	got.SetText("Subject", "legit edit")
	if err := s.Sign(got); err != nil {
		t.Fatal(err)
	}
	if _, err := db.VerifySignature(got); err != nil {
		t.Errorf("re-signed note failed: %v", err)
	}
}

func TestSignRequiresSecret(t *testing.T) {
	db := signingDB(t)
	if err := db.Session("nosecret").Sign(memo("x")); err == nil {
		t.Error("signing without a secret succeeded")
	}
	if err := db.Session("ghost").Sign(memo("x")); err == nil {
		t.Error("signing as unknown user succeeded")
	}
	if _, err := db.VerifySignature(memo("unsigned")); err == nil {
		t.Error("unsigned note verified")
	}
}

func TestSignatureSurvivesReplication(t *testing.T) {
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-secret"})
	replica := nsf.NewReplicaID()
	a := openDB(t, Options{Directory: d, ReplicaID: replica})
	b := openDB(t, Options{Directory: d, ReplicaID: replica})
	s := a.Session("ada")
	n := memo("travels signed")
	s.Sign(n)
	s.Create(n)
	// Move the note via the raw replication path.
	stored, _ := a.RawGet(n.OID.UNID)
	if err := b.RawPut(stored.Clone()); err != nil {
		t.Fatal(err)
	}
	got, err := b.RawGet(n.OID.UNID)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := b.VerifySignature(got)
	if err != nil || signer != "ada" {
		t.Errorf("signature after replication = %q, %v", signer, err)
	}
}

func TestAttachments(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("ada")
	n := memo("with files")
	payload := bytes.Repeat([]byte{0xCA, 0xFE}, 30000) // 60 KB, multi-page
	if err := n.Attach("report.pdf", payload); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach("notes.txt", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if err := n.Attach("../evil", []byte("x")); err == nil {
		t.Error("path-ish attachment name accepted")
	}
	if err := s.Create(n); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(n.OID.UNID)
	names := got.AttachmentNames()
	if len(names) != 2 || names[0] != "report.pdf" || names[1] != "notes.txt" {
		t.Fatalf("AttachmentNames = %v", names)
	}
	data, ok := got.Attachment("report.pdf")
	if !ok || !bytes.Equal(data, payload) {
		t.Fatalf("attachment corrupted: %d bytes, ok=%v", len(data), ok)
	}
	if !got.Detach("notes.txt") {
		t.Error("Detach failed")
	}
	if err := s.Update(got); err != nil {
		t.Fatal(err)
	}
	again, _ := s.Get(n.OID.UNID)
	if len(again.AttachmentNames()) != 1 {
		t.Errorf("after detach: %v", again.AttachmentNames())
	}
}
