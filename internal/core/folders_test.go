package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/acl"
	"repro/internal/nsf"
)

func TestFolderLifecycle(t *testing.T) {
	db := openDB(t, Options{})
	s := db.Session("ada")
	if err := db.CreateFolder(nil, "inbox stuff"); err != nil {
		t.Fatalf("CreateFolder: %v", err)
	}
	if err := db.CreateFolder(nil, "inbox stuff"); err == nil {
		t.Error("duplicate folder created")
	}
	folders, err := db.Folders()
	if err != nil || !reflect.DeepEqual(folders, []string{"inbox stuff"}) {
		t.Fatalf("Folders = %v, %v", folders, err)
	}
	a := memo("first")
	b := memo("second")
	s.Create(a)
	s.Create(b)
	if err := s.AddToFolder("inbox stuff", a.OID.UNID); err != nil {
		t.Fatalf("AddToFolder: %v", err)
	}
	if err := s.AddToFolder("inbox stuff", b.OID.UNID); err != nil {
		t.Fatalf("AddToFolder: %v", err)
	}
	// Idempotent.
	if err := s.AddToFolder("inbox stuff", a.OID.UNID); err != nil {
		t.Fatal(err)
	}
	docs, err := s.FolderContents("inbox stuff")
	if err != nil || len(docs) != 2 {
		t.Fatalf("FolderContents = %d docs, %v", len(docs), err)
	}
	if docs[0].Text("Subject") != "first" {
		t.Errorf("insertion order lost: %q", docs[0].Text("Subject"))
	}
	removed, err := s.RemoveFromFolder("inbox stuff", a.OID.UNID)
	if err != nil || !removed {
		t.Fatalf("RemoveFromFolder = %v, %v", removed, err)
	}
	if removed, _ := s.RemoveFromFolder("inbox stuff", a.OID.UNID); removed {
		t.Error("double remove reported membership")
	}
	// Deleted docs silently drop out of contents.
	s.Delete(b.OID.UNID)
	docs, _ = s.FolderContents("inbox stuff")
	if len(docs) != 0 {
		t.Errorf("deleted doc still in folder: %d", len(docs))
	}
	if _, err := s.FolderContents("missing"); err == nil {
		t.Error("missing folder did not error")
	}
}

func TestFolderRequiresDesigner(t *testing.T) {
	db := openDB(t, Options{})
	db.ACL().Set("mortal", acl.Editor)
	if err := db.CreateFolder(db.Session("mortal"), "f"); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("editor created folder: %v", err)
	}
}

func TestFolderReplicates(t *testing.T) {
	replica := nsf.NewReplicaID()
	a := openDB(t, Options{ReplicaID: replica})
	b := openDB(t, Options{ReplicaID: replica})
	s := a.Session("ada")
	db := a
	if err := db.CreateFolder(nil, "shared folder"); err != nil {
		t.Fatal(err)
	}
	n := memo("foldered")
	s.Create(n)
	s.AddToFolder("shared folder", n.OID.UNID)
	// Raw-copy everything to b (replication path).
	a.ScanAll(func(x *nsf.Note) bool {
		if err := b.RawPut(x.Clone()); err != nil {
			t.Fatal(err)
		}
		return true
	})
	folders, _ := b.Folders()
	if !reflect.DeepEqual(folders, []string{"shared folder"}) {
		t.Fatalf("folders at b = %v", folders)
	}
	docs, err := b.Session("ada").FolderContents("shared folder")
	if err != nil || len(docs) != 1 {
		t.Errorf("folder contents at b = %d, %v", len(docs), err)
	}
}

func TestProfileDocuments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.nsf")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	p, err := s.Profile("settings", "ada")
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	p.SetText("Theme", "dark")
	if err := s.SaveProfile(p); err != nil {
		t.Fatalf("SaveProfile: %v", err)
	}
	// Same name+user yields the same document.
	again, _ := s.Profile("settings", "ada")
	if again.OID.UNID != p.OID.UNID || again.Text("Theme") != "dark" {
		t.Errorf("profile identity broken: %v", again)
	}
	// Different user or database-wide profile is a different doc.
	bobP, _ := db.Session("bob").Profile("settings", "bob")
	if bobP.OID.UNID == p.OID.UNID {
		t.Error("per-user profiles collided")
	}
	global, _ := s.Profile("settings", "")
	if global.OID.UNID == p.OID.UNID {
		t.Error("global profile collided with per-user")
	}
	if !IsProfile(p) || IsProfile(memo("x")) {
		t.Error("IsProfile misclassifies")
	}
	// Persists across reopen.
	db.Close()
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	p2, err := db2.Session("ada").Profile("settings", "ada")
	if err != nil || p2.Text("Theme") != "dark" {
		t.Errorf("profile lost: %v %v", p2, err)
	}
	// Saving a non-profile errors.
	if err := db2.Session("ada").SaveProfile(memo("nope")); err == nil {
		t.Error("SaveProfile accepted non-profile")
	}
}
