package changefeed

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nsf"
)

func unid(i int) nsf.UNID {
	var u nsf.UNID
	copy(u[:], fmt.Sprintf("u%014d", i))
	return u
}

func TestAppendAssignsDenseUSNs(t *testing.T) {
	f := New(16)
	defer f.Close()
	for i := 1; i <= 5; i++ {
		if usn := f.Append(Put, unid(i), nil); usn != uint64(i) {
			t.Fatalf("append %d got USN %d", i, usn)
		}
	}
	if f.LastUSN() != 5 {
		t.Errorf("LastUSN = %d", f.LastUSN())
	}
}

func TestSubscriberSeesEntriesInOrder(t *testing.T) {
	f := New(64)
	var mu sync.Mutex
	var got []uint64
	f.Subscribe("order", Funcs{ApplyFunc: func(e Entry) {
		mu.Lock()
		got = append(got, e.USN)
		mu.Unlock()
	}})
	const n = 50
	for i := 0; i < n; i++ {
		f.Append(Put, unid(i), nil)
	}
	f.WaitForUSN(uint64(n))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("applied %d entries, want %d", len(got), n)
	}
	for i, u := range got {
		if u != uint64(i+1) {
			t.Fatalf("out of order at %d: %d", i, u)
		}
	}
	f.Close()
}

func TestSubscriberStartsAtHead(t *testing.T) {
	f := New(16)
	defer f.Close()
	f.Append(Put, unid(1), nil)
	f.Append(Put, unid(2), nil)
	var applied atomic.Uint64
	f.Subscribe("late", Funcs{ApplyFunc: func(e Entry) { applied.Add(1) }})
	f.Append(Put, unid(3), nil)
	f.WaitForUSN(3)
	if applied.Load() != 1 {
		t.Errorf("late subscriber applied %d entries, want 1 (only the post-subscribe one)", applied.Load())
	}
}

func TestOverflowTriggersResync(t *testing.T) {
	f := New(4)
	block := make(chan struct{})
	var applies, resyncs atomic.Uint64
	started := make(chan struct{}, 1)
	f.Subscribe("slow", Funcs{
		ApplyFunc: func(e Entry) {
			select {
			case started <- struct{}{}:
			default:
			}
			if e.USN == 1 {
				<-block // stall so the ring laps us
			}
			applies.Add(1)
		},
		ResyncFunc: func(through uint64) error {
			resyncs.Add(1)
			return nil
		},
	})
	// First append, wait until the subscriber is inside Apply, then lap the
	// ring while it is stalled.
	f.Append(Put, unid(0), nil)
	<-started
	for i := 1; i <= 20; i++ {
		f.Append(Put, unid(i), nil)
	}
	close(block)
	f.WaitForUSN(21)
	if resyncs.Load() == 0 {
		t.Error("overflow did not trigger a resync")
	}
	st := f.Stats()
	if len(st.Subscribers) != 1 || st.Subscribers[0].Resyncs == 0 {
		t.Errorf("stats did not record resync: %+v", st)
	}
	f.Close()
}

func TestPanickingSubscriberIsDroppedNotFatal(t *testing.T) {
	f := New(16)
	defer f.Close()
	var healthy atomic.Uint64
	f.Subscribe("bomb", Funcs{ApplyFunc: func(e Entry) { panic("boom") }})
	f.Subscribe("healthy", Funcs{ApplyFunc: func(e Entry) { healthy.Add(1) }})
	f.Append(Put, unid(1), nil)
	f.Append(Put, unid(2), nil)
	// The barrier must not wedge on the dropped subscriber.
	done := make(chan struct{})
	go func() { f.WaitForUSN(2); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitForUSN wedged on a panicked subscriber")
	}
	if healthy.Load() != 2 {
		t.Errorf("healthy subscriber applied %d, want 2", healthy.Load())
	}
	var dropped bool
	for _, s := range f.Stats().Subscribers {
		if s.Name == "bomb" && s.Dropped {
			dropped = true
		}
	}
	if !dropped {
		t.Error("panicked subscriber not marked dropped")
	}
}

func TestResyncErrorDropsSubscriber(t *testing.T) {
	f := New(2)
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f.Subscribe("failer", Funcs{
		ApplyFunc: func(e Entry) {
			select {
			case started <- struct{}{}:
			default:
			}
			if e.USN == 1 {
				<-block
			}
		},
		ResyncFunc: func(uint64) error { return errors.New("cannot rebuild") },
	})
	f.Append(Put, unid(0), nil)
	<-started
	for i := 1; i <= 10; i++ {
		f.Append(Put, unid(i), nil)
	}
	close(block)
	f.WaitForUSN(11) // must not wedge: the failed subscriber is dropped
	f.Close()
	for _, s := range f.Stats().Subscribers {
		if s.Name == "failer" && !s.Dropped {
			t.Error("failed resync did not drop subscriber")
		}
	}
}

func TestCloseDrainsSubscribers(t *testing.T) {
	f := New(1024)
	var applied atomic.Uint64
	f.Subscribe("drain", Funcs{ApplyFunc: func(e Entry) {
		time.Sleep(time.Microsecond)
		applied.Add(1)
	}})
	const n = 200
	for i := 0; i < n; i++ {
		f.Append(Put, unid(i), nil)
	}
	f.Close()
	if applied.Load() != n {
		t.Errorf("close drained %d entries, want %d", applied.Load(), n)
	}
	// Appends after close are dropped, not fatal.
	if usn := f.Append(Put, unid(999), nil); usn != n {
		t.Errorf("append after close returned %d", usn)
	}
}

func TestWaitForUSNWithNoSubscribers(t *testing.T) {
	f := New(8)
	defer f.Close()
	f.Append(Put, unid(1), nil)
	f.WaitForUSN(1) // must not block
}

func TestStatsLag(t *testing.T) {
	f := New(1024)
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	f.Subscribe("lagger", Funcs{ApplyFunc: func(e Entry) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
	}})
	for i := 0; i < 10; i++ {
		f.Append(Put, unid(i), nil)
	}
	<-started
	st := f.Stats()
	if st.LastUSN != 10 || st.MaxLag == 0 {
		t.Errorf("stats = %+v, want LastUSN 10 and nonzero lag", st)
	}
	close(block)
	f.WaitForUSN(10)
	if st := f.Stats(); st.MaxLag != 0 {
		t.Errorf("lag after barrier = %d, want 0", st.MaxLag)
	}
	f.Close()
}

func TestConcurrentAppendersAndBarriers(t *testing.T) {
	f := New(256)
	var applied atomic.Uint64
	f.Subscribe("count", Funcs{ApplyFunc: func(e Entry) { applied.Add(1) }})
	var wg sync.WaitGroup
	const writers, per = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				usn := f.Append(Put, unid(w*per+i), nil)
				if i%10 == 0 {
					f.WaitForUSN(usn)
				}
			}
		}(w)
	}
	wg.Wait()
	f.WaitForUSN(uint64(writers * per))
	if applied.Load() != writers*per {
		t.Errorf("applied %d, want %d", applied.Load(), writers*per)
	}
	f.Close()
}

// TestNewFromSeedsSequence checks that a feed seeded at a nonzero USN
// continues that sequence: the first append is seed+1, barriers work, and
// subscribers (who start at the head) see only post-seed entries.
func TestNewFromSeedsSequence(t *testing.T) {
	f := NewFrom(8, 100)
	defer f.Close()
	if got := f.LastUSN(); got != 100 {
		t.Fatalf("seeded LastUSN = %d, want 100", got)
	}
	var first, count atomic.Uint64
	f.Subscribe("tail", Funcs{ApplyFunc: func(e Entry) {
		first.CompareAndSwap(0, e.USN)
		count.Add(1)
	}})
	if usn := f.Append(Put, unid(1), nil); usn != 101 {
		t.Fatalf("first append after seed = USN %d, want 101", usn)
	}
	f.Append(Delete, unid(1), nil)
	f.WaitForUSN(102)
	if first.Load() != 101 || count.Load() != 2 {
		t.Fatalf("subscriber saw first=%d count=%d, want 101/2", first.Load(), count.Load())
	}
}

func TestUnsubscribeStopsDeliveryAndLeavesRoster(t *testing.T) {
	f := New(16)
	defer f.Close()
	var applied atomic.Uint64
	sub := f.Subscribe("transient", Funcs{ApplyFunc: func(e Entry) { applied.Add(1) }})
	f.Append(Put, unid(1), nil)
	f.WaitForUSN(1)
	sub.Unsubscribe()
	sub.Unsubscribe() // idempotent
	// Give the consumer goroutine a chance to exit, then append more.
	deadline := time.Now().Add(2 * time.Second)
	for len(f.Stats().Subscribers) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber still on roster: %+v", f.Stats().Subscribers)
		}
		time.Sleep(time.Millisecond)
	}
	f.Append(Put, unid(2), nil)
	f.WaitForUSN(2) // must not wedge on the detached cursor
	if got := applied.Load(); got != 1 {
		t.Errorf("applied %d entries after unsubscribe, want 1", got)
	}
}

func TestUnsubscribeUnblocksWaiters(t *testing.T) {
	f := New(16)
	defer f.Close()
	release := make(chan struct{})
	sub := f.Subscribe("wedged", Funcs{ApplyFunc: func(e Entry) { <-release }})
	defer close(release)
	f.Append(Put, unid(1), nil)
	f.Append(Put, unid(2), nil)
	// The consumer is wedged inside entry 1; a barrier on 2 would block
	// forever. Unsubscribing must let the barrier pass.
	sub.Unsubscribe()
	done := make(chan struct{})
	go func() { f.WaitForUSN(2); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("WaitForUSN still waits on an unsubscribed consumer")
	}
}

func TestUnsubscribeAfterClose(t *testing.T) {
	f := New(16)
	sub := f.Subscribe("late", Funcs{})
	f.Close()
	sub.Unsubscribe() // must not panic or deadlock
}
