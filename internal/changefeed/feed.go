// Package changefeed implements a per-database, monotonically sequenced
// change log with subscriber cursors: the spine that decouples index and
// subscriber maintenance from the write path.
//
// Every mutation the database commits is stamped with an update sequence
// number (USN) and appended to a bounded in-memory ring. Consumers — view
// indexes, the full-text index, change callbacks, cluster pushers —
// subscribe with a handler and catch up asynchronously on their own
// goroutine, each tracking the USN it has applied through. The writer never
// waits for a consumer: appends are O(1) and never block.
//
// Because the ring is bounded, a consumer that falls more than Capacity
// entries behind loses its window into history. The feed detects this and
// calls the handler's Resync, which must restore consistency from the
// authoritative store (for an index, a full rebuild) — the classic
// incremental-refresh-vs-rebuild fallback.
//
// Read-your-writes is available on demand: WaitForUSN blocks until every
// live subscriber has applied through a given USN, so a reader that
// barriers on the USN of its own write observes it in every index
// (Domino-style "view refresh").
//
// A handler that panics is recovered, logged, and its subscriber dropped —
// a broken consumer can cost its own freshness, never the writer or the
// other consumers.
package changefeed

import (
	"log"
	"sync"

	"repro/internal/nsf"
)

// Kind discriminates feed entries.
type Kind uint8

// Entry kinds.
const (
	// Put records a note stored (created, updated, stubbed, or applied by
	// replication).
	Put Kind = iota
	// Delete records a note physically removed (stub purge, raw delete).
	Delete
)

// Entry is one sequenced change.
type Entry struct {
	// USN is the entry's update sequence number: strictly increasing,
	// starting at 1, dense (no gaps).
	USN uint64
	// Kind says whether the note was stored or physically removed.
	Kind Kind
	// UNID identifies the note.
	UNID nsf.UNID
	// Note is a private clone of the stored note (nil for Delete entries).
	// Handlers may read it freely but must not mutate it; it is shared by
	// every subscriber.
	Note *nsf.Note
}

// Handler consumes feed entries on a subscriber's goroutine. Entries arrive
// one at a time in USN order.
type Handler interface {
	// Apply reflects one change. A panic drops the subscriber.
	Apply(Entry)
	// Resync is called instead of Apply when the subscriber fell out of the
	// feed's retention window. It must restore consistency with the
	// authoritative store through at least the given USN (typically a full
	// rebuild). Returning an error drops the subscriber.
	Resync(through uint64) error
}

// Funcs adapts plain functions to Handler; nil fields are no-ops.
type Funcs struct {
	ApplyFunc  func(Entry)
	ResyncFunc func(through uint64) error
}

// Apply implements Handler.
func (f Funcs) Apply(e Entry) {
	if f.ApplyFunc != nil {
		f.ApplyFunc(e)
	}
}

// Resync implements Handler.
func (f Funcs) Resync(through uint64) error {
	if f.ResyncFunc != nil {
		return f.ResyncFunc(through)
	}
	return nil
}

// DefaultCapacity is the retention window when New is given no capacity.
const DefaultCapacity = 8192

// Feed is a bounded, sequenced change log. All methods are safe for
// concurrent use.
type Feed struct {
	capacity uint64

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on append, cursor advance, drop, close
	buf    []Entry    // ring: entry with USN u lives at buf[(u-1)%capacity]
	last   uint64     // highest USN appended; 0 when empty
	subs   []*Subscriber
	closed bool
	wg     sync.WaitGroup
}

// New returns an empty feed retaining the last capacity entries
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Feed {
	return NewFrom(capacity, 0)
}

// NewFrom returns an empty feed whose next append is stamped last+1.
// A database opening an existing store seeds the feed with the store's
// persistent USN, so feed USNs and store USNs are the same sequence across
// restarts — the invariant backup cursors and subscriber checkpoints rely
// on. The ring holds no entries at or below last: subscribers start at the
// head, and anything older is the store's (and archive's) business.
func NewFrom(capacity int, last uint64) *Feed {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	f := &Feed{capacity: uint64(capacity), buf: make([]Entry, capacity), last: last}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Append stamps a change with the next USN and records it, returning the
// USN. It never blocks on consumers: when the ring is full the oldest entry
// is overwritten and lagging subscribers will resync. Appends on a closed
// feed are dropped (the store itself is closing).
func (f *Feed) Append(kind Kind, unid nsf.UNID, note *nsf.Note) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return f.last
	}
	f.last++
	f.buf[(f.last-1)%f.capacity] = Entry{USN: f.last, Kind: kind, UNID: unid, Note: note}
	f.cond.Broadcast()
	return f.last
}

// firstLocked returns the oldest USN still in the ring (1 when nothing has
// been evicted yet). Call with f.mu held.
func (f *Feed) firstLocked() uint64 {
	if f.last <= f.capacity {
		return 1
	}
	return f.last - f.capacity + 1
}

// LastUSN returns the USN of the most recent append (0 when none).
func (f *Feed) LastUSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

// Subscribe registers a handler and starts its consumer goroutine. The
// subscriber's cursor starts at the current head: it observes only changes
// appended after Subscribe returns. The name labels the subscriber in
// stats and logs.
func (f *Feed) Subscribe(name string, h Handler) *Subscriber {
	s := &Subscriber{feed: f, name: name, h: h}
	f.mu.Lock()
	if f.closed {
		s.exited = true
		f.mu.Unlock()
		return s
	}
	s.applied = f.last
	f.subs = append(f.subs, s)
	f.mu.Unlock()
	f.wg.Add(1)
	go s.run()
	return s
}

// WaitForUSN blocks until every live subscriber has applied through usn —
// the read-side refresh barrier. Dropped or exited subscribers are skipped,
// so a panicking consumer cannot wedge readers. Returns immediately when
// usn has already been covered (or nothing is subscribed).
func (f *Feed) WaitForUSN(usn uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		pending := false
		for _, s := range f.subs {
			if s.dropped || s.exited || s.unsubscribed {
				continue
			}
			if s.applied < usn {
				pending = true
				break
			}
		}
		if !pending {
			return
		}
		f.cond.Wait()
	}
}

// Close stops the feed: appends become no-ops, subscribers drain what is
// already buffered, and Close returns once every consumer goroutine has
// exited.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}

// SubscriberStats describes one subscriber's progress.
type SubscriberStats struct {
	// Name is the label given at Subscribe.
	Name string
	// Applied is the USN the subscriber has applied through.
	Applied uint64
	// Lag is how many entries behind the feed head the subscriber is.
	Lag uint64
	// Applies counts entries applied incrementally.
	Applies uint64
	// Resyncs counts overflow-triggered rebuilds.
	Resyncs uint64
	// Dropped reports whether the subscriber was dropped after a panic or
	// resync failure.
	Dropped bool
}

// Stats is a snapshot of feed and subscriber progress — the database's
// change-propagation observability surface.
type Stats struct {
	// LastUSN is the highest USN appended.
	LastUSN uint64
	// Capacity is the retention window in entries.
	Capacity int
	// MaxLag is the largest lag over live subscribers.
	MaxLag uint64
	// Subscribers lists per-subscriber progress in subscription order.
	Subscribers []SubscriberStats
}

// Stats returns a snapshot of the feed's counters.
func (f *Feed) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Stats{LastUSN: f.last, Capacity: int(f.capacity)}
	for _, s := range f.subs {
		ss := SubscriberStats{
			Name:    s.name,
			Applied: s.applied,
			Applies: s.applies,
			Resyncs: s.resyncs,
			Dropped: s.dropped,
		}
		if !s.dropped && f.last > s.applied {
			ss.Lag = f.last - s.applied
			if ss.Lag > st.MaxLag {
				st.MaxLag = ss.Lag
			}
		}
		st.Subscribers = append(st.Subscribers, ss)
	}
	return st
}

// Subscriber is one consumer's cursor into the feed.
type Subscriber struct {
	feed *Feed
	name string
	h    Handler

	// The fields below are guarded by feed.mu.
	applied      uint64 // USN applied through
	applies      uint64
	resyncs      uint64
	dropped      bool
	exited       bool
	unsubscribed bool
}

// Unsubscribe detaches the subscriber: its consumer goroutine exits without
// draining further entries and the subscriber is removed from the feed's
// roster, so a transient consumer (a stopped replication trigger, a closed
// session watcher) does not accumulate as a dead cursor for the feed's
// lifetime. Idempotent and safe to call concurrently with Close; entries
// already handed to the handler are unaffected.
func (s *Subscriber) Unsubscribe() {
	f := s.feed
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.unsubscribed || s.exited {
		s.unsubscribed = true
		f.removeLocked(s)
		return
	}
	s.unsubscribed = true
	f.cond.Broadcast()
}

// removeLocked drops s from the subscriber roster. Call with f.mu held.
func (f *Feed) removeLocked(s *Subscriber) {
	for i, cur := range f.subs {
		if cur == s {
			f.subs = append(f.subs[:i], f.subs[i+1:]...)
			return
		}
	}
}

// Name returns the subscriber's label.
func (s *Subscriber) Name() string { return s.name }

// Applied returns the USN the subscriber has applied through.
func (s *Subscriber) Applied() uint64 {
	s.feed.mu.Lock()
	defer s.feed.mu.Unlock()
	return s.applied
}

// run is the consumer loop: apply entries in order, resync on overflow,
// drop on panic, drain on close.
func (s *Subscriber) run() {
	f := s.feed
	defer f.wg.Done()
	f.mu.Lock()
	defer func() {
		s.exited = true
		f.cond.Broadcast()
		f.mu.Unlock()
	}()
	for {
		for !f.closed && !s.dropped && !s.unsubscribed && s.applied >= f.last {
			f.cond.Wait()
		}
		if s.unsubscribed {
			f.removeLocked(s)
			return
		}
		if s.dropped || s.applied >= f.last {
			return // closed and drained, or dropped
		}
		if s.applied+1 < f.firstLocked() {
			// Fell out of the retention window: rebuild from the store.
			target := f.last
			s.resyncs++
			f.mu.Unlock()
			ok := s.safeResync(target)
			f.mu.Lock()
			if !ok {
				s.dropped = true
				f.cond.Broadcast()
				return
			}
			if s.applied < target {
				s.applied = target
			}
			f.cond.Broadcast()
			continue
		}
		e := f.buf[s.applied%f.capacity] // entry with USN s.applied+1
		f.mu.Unlock()
		ok := s.safeApply(e)
		f.mu.Lock()
		if !ok {
			s.dropped = true
			f.cond.Broadcast()
			return
		}
		s.applied = e.USN
		s.applies++
		f.cond.Broadcast()
	}
}

// safeApply runs the handler, converting a panic into a drop.
func (s *Subscriber) safeApply(e Entry) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("changefeed: subscriber %s panicked at USN %d: %v; dropping it", s.name, e.USN, r)
			ok = false
		}
	}()
	s.h.Apply(e)
	return true
}

// safeResync runs the handler's resync, converting a panic or error into a
// drop.
func (s *Subscriber) safeResync(through uint64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("changefeed: subscriber %s panicked during resync to USN %d: %v; dropping it", s.name, through, r)
			ok = false
		}
	}()
	if err := s.h.Resync(through); err != nil {
		log.Printf("changefeed: subscriber %s resync to USN %d failed: %v; dropping it", s.name, through, err)
		return false
	}
	return true
}
