package view

import (
	"fmt"
	"testing"
)

// TestRowsRange pins the pagination primitive the wire view op serves
// from: stable [start, start+limit) slices over the full rendering with
// the grand-total row excluded, so row indices do not shift between pages.
func TestRowsRange(t *testing.T) {
	def := mustDef(t, "bycat", "SELECT @All",
		Column{Title: "Cat", ItemName: "Cat", Categorized: true},
		Column{Title: "N", ItemName: "N", Totals: true})
	ix := NewIndex(def)
	for i := 0; i < 17; i++ {
		d := doc(map[string]any{"Cat": fmt.Sprintf("c%d", i%3), "N": i})
		if _, err := ix.Update(d, nil); err != nil {
			t.Fatal(err)
		}
	}

	full := ix.Rows(nil)
	if n := len(full); n == 0 || !full[n-1].GrandTotal {
		t.Fatal("totals view did not render a grand-total row")
	}
	want := full[:len(full)-1] // 17 docs + 3 category headers

	all, total := ix.RowsRange(nil, 0, 0)
	if total != len(want) || len(all) != len(want) {
		t.Fatalf("RowsRange(0,0) = %d rows, total %d; want %d", len(all), total, len(want))
	}
	for _, r := range all {
		if r.GrandTotal {
			t.Error("grand-total row leaked into a page")
		}
	}

	// Concatenated fixed-size pages reproduce the full rendering.
	var paged []Row
	for start := 0; start < total; {
		rows, tot := ix.RowsRange(nil, start, 5)
		if tot != total {
			t.Errorf("total drifted: %d then %d", total, tot)
		}
		if len(rows) == 0 {
			t.Fatal("empty page before end")
		}
		paged = append(paged, rows...)
		start += len(rows)
	}
	if len(paged) != total {
		t.Fatalf("paged %d rows, want %d", len(paged), total)
	}
	for i := range paged {
		if rowID(paged[i]) != rowID(want[i]) {
			t.Errorf("row %d: paged %q, full %q", i, rowID(paged[i]), rowID(want[i]))
		}
	}

	// Out-of-range and clamped starts.
	if rows, tot := ix.RowsRange(nil, total+10, 5); len(rows) != 0 || tot != total {
		t.Errorf("past-end range = %d rows, total %d", len(rows), tot)
	}
	if rows, _ := ix.RowsRange(nil, -4, 3); len(rows) != 3 {
		t.Errorf("negative start = %d rows, want 3", len(rows))
	}

	// The allow filter shrinks both the rows and the reported total.
	deny := func(e *Entry) bool { return e.ColumnText(1) != "0" }
	filtered, ftot := ix.RowsRange(deny, 0, 0)
	if ftot >= total || len(filtered) != ftot {
		t.Errorf("filtered range = %d rows, total %d (unfiltered %d)", len(filtered), ftot, total)
	}
}

func rowID(r Row) string {
	if r.Entry == nil {
		return "cat:" + r.Category
	}
	return "doc:" + r.Entry.UNID.String()
}
