package view

import (
	"reflect"
	"testing"

	"repro/internal/nsf"
)

// thread builds: topicA <- replyA1 <- replyA1a, topicB <- replyB1.
func threadFixture(t *testing.T) (*Index, map[string]*nsf.Note) {
	t.Helper()
	def := mustDef(t, "threads", "SELECT @All",
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	def.ShowResponses = true
	ix := NewIndex(def)
	notes := make(map[string]*nsf.Note)
	mk := func(name, subject string, parent *nsf.Note) *nsf.Note {
		n := doc(map[string]any{"Subject": subject})
		if parent != nil {
			n.SetText("$Ref", parent.OID.UNID.String())
		}
		if _, err := ix.Update(n, nil); err != nil {
			t.Fatalf("Update %s: %v", name, err)
		}
		notes[name] = n
		return n
	}
	a := mk("topicA", "alpha topic", nil)
	a1 := mk("replyA1", "re alpha", a)
	mk("replyA1a", "re re alpha", a1)
	b := mk("topicB", "beta topic", nil)
	mk("replyB1", "re beta", b)
	return ix, notes
}

func renderRows(rows []Row) []string {
	var out []string
	for _, r := range rows {
		out = append(out, string(rune('0'+r.Indent))+":"+r.Entry.ColumnText(0))
	}
	return out
}

func TestResponseHierarchy(t *testing.T) {
	ix, _ := threadFixture(t)
	got := renderRows(ix.Rows(nil))
	want := []string{
		"0:alpha topic",
		"1:re alpha",
		"2:re re alpha",
		"0:beta topic",
		"1:re beta",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v\nwant  %v", got, want)
	}
}

func TestResponseOrphansSurface(t *testing.T) {
	ix, notes := threadFixture(t)
	// Remove topicA: its replies must surface at top level, not vanish.
	ix.Remove(notes["topicA"].OID.UNID)
	got := renderRows(ix.Rows(nil))
	want := []string{
		"0:beta topic",
		"1:re beta",
		"0:re alpha",
		"1:re re alpha",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows after parent removal = %v\nwant %v", got, want)
	}
}

func TestResponseFilteredParent(t *testing.T) {
	ix, notes := threadFixture(t)
	// Reader filtering hides topicA; reply must still show (at top level).
	hidden := notes["topicA"].OID.UNID
	rows := ix.Rows(func(e *Entry) bool { return e.UNID != hidden })
	for _, r := range rows {
		if r.Entry.UNID == hidden {
			t.Fatal("filtered entry rendered")
		}
	}
	found := false
	for _, r := range rows {
		if r.Entry.ColumnText(0) == "re alpha" && r.Indent == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("reply did not surface at top level: %v", renderRows(rows))
	}
}

func TestResponseCycleDoesNotHang(t *testing.T) {
	def := mustDef(t, "cyc", "SELECT @All",
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	def.ShowResponses = true
	ix := NewIndex(def)
	a := doc(map[string]any{"Subject": "a"})
	b := doc(map[string]any{"Subject": "b"})
	a.SetText("$Ref", b.OID.UNID.String())
	b.SetText("$Ref", a.OID.UNID.String())
	ix.Update(a, nil)
	ix.Update(b, nil)
	rows := ix.Rows(nil)
	if len(rows) != 2 {
		t.Errorf("cycle rendered %d rows, want 2", len(rows))
	}
}

func TestSiblingResponsesSortByCollation(t *testing.T) {
	def := mustDef(t, "sib", "SELECT @All",
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	def.ShowResponses = true
	ix := NewIndex(def)
	topic := doc(map[string]any{"Subject": "topic"})
	ix.Update(topic, nil)
	for _, s := range []string{"zz last", "aa first", "mm middle"} {
		r := doc(map[string]any{"Subject": s})
		r.SetText("$Ref", topic.OID.UNID.String())
		ix.Update(r, nil)
	}
	got := renderRows(ix.Rows(nil))
	want := []string{"0:topic", "1:aa first", "1:mm middle", "1:zz last"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("rows = %v", got)
	}
}
