package view

import (
	"testing"
)

func totalsFixture(t *testing.T) *Index {
	t.Helper()
	def := mustDef(t, "sales", "SELECT @All",
		Column{Title: "Region", ItemName: "Region", Categorized: true},
		Column{Title: "Rep", ItemName: "Rep", Sorted: true},
		Column{Title: "Amount", ItemName: "Amount", Totals: true})
	ix := NewIndex(def)
	for _, d := range []struct {
		region, rep string
		amount      float64
	}{
		{"East", "ada", 100},
		{"East", "bob", 50},
		{"West", "carol", 25},
	} {
		ix.Update(doc(map[string]any{
			"Region": d.region, "Rep": d.rep, "Amount": d.amount,
		}), nil)
	}
	return ix
}

func TestCategoryTotals(t *testing.T) {
	ix := totalsFixture(t)
	rows := ix.Rows(nil)
	// Expect: [East](150), ada, bob, [West](25), carol, grand(175).
	var catTotals []float64
	var grand float64
	seenGrand := false
	for _, r := range rows {
		switch {
		case r.GrandTotal:
			seenGrand = true
			grand = r.Totals[2]
		case r.Entry == nil:
			catTotals = append(catTotals, r.Totals[2])
		}
	}
	if !seenGrand {
		t.Fatal("no grand total row")
	}
	if len(catTotals) != 2 || catTotals[0] != 150 || catTotals[1] != 25 {
		t.Errorf("category totals = %v", catTotals)
	}
	if grand != 175 {
		t.Errorf("grand total = %v", grand)
	}
}

func TestTotalsRespectFiltering(t *testing.T) {
	ix := totalsFixture(t)
	rows := ix.Rows(func(e *Entry) bool { return e.ColumnText(1) != "bob" })
	for _, r := range rows {
		if r.GrandTotal && r.Totals[2] != 125 {
			t.Errorf("filtered grand total = %v", r.Totals[2])
		}
		if r.Entry == nil && !r.GrandTotal && r.Category == "East" && r.Totals[2] != 100 {
			t.Errorf("filtered East total = %v", r.Totals[2])
		}
	}
}

func TestNoTotalsColumnsNoExtraRows(t *testing.T) {
	def := mustDef(t, "plain", "SELECT @All",
		Column{Title: "S", ItemName: "S", Sorted: true})
	ix := NewIndex(def)
	ix.Update(doc(map[string]any{"S": "x"}), nil)
	rows := ix.Rows(nil)
	if len(rows) != 1 || rows[0].Totals != nil {
		t.Errorf("rows without totals columns = %+v", rows)
	}
}

func TestTotalsOnFlatView(t *testing.T) {
	def := mustDef(t, "flat", "SELECT @All",
		Column{Title: "N", ItemName: "N", Sorted: true, Totals: true})
	ix := NewIndex(def)
	for _, n := range []float64{1, 2, 3} {
		ix.Update(doc(map[string]any{"N": n}), nil)
	}
	rows := ix.Rows(nil)
	last := rows[len(rows)-1]
	if !last.GrandTotal || last.Totals[0] != 6 {
		t.Errorf("flat view grand total = %+v", last)
	}
}
