package view

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/formula"
	"repro/internal/nsf"
)

func doc(items map[string]any) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	for k, v := range items {
		switch v := v.(type) {
		case string:
			n.SetText(k, v)
		case float64:
			n.SetNumber(k, v)
		case int:
			n.SetNumber(k, float64(v))
		case nsf.Timestamp:
			n.SetTime(k, v)
		default:
			panic(fmt.Sprintf("bad item type %T", v))
		}
	}
	return n
}

func mustDef(t *testing.T, name, sel string, cols ...Column) *Definition {
	t.Helper()
	def, err := NewDefinition(name, sel, cols...)
	if err != nil {
		t.Fatalf("NewDefinition: %v", err)
	}
	return def
}

func subjects(ix *Index, col int) []string {
	var out []string
	ix.Walk(func(e *Entry) bool {
		out = append(out, e.ColumnText(col))
		return true
	})
	return out
}

func TestIndexSortsByTextColumn(t *testing.T) {
	def := mustDef(t, "bysubj", "SELECT @All",
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	ix := NewIndex(def)
	for _, s := range []string{"pear", "Apple", "banana", "apple 2"} {
		if _, err := ix.Update(doc(map[string]any{"Subject": s}), nil); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	got := subjects(ix, 0)
	want := []string{"Apple", "apple 2", "banana", "pear"} // case-insensitive
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestIndexSortsNumbersNumerically(t *testing.T) {
	def := mustDef(t, "bynum", "SELECT @All",
		Column{Title: "N", ItemName: "N", Sorted: true})
	ix := NewIndex(def)
	for _, n := range []float64{10, 2, -5, 0, 3.5, -0.1} {
		ix.Update(doc(map[string]any{"N": n}), nil)
	}
	got := subjects(ix, 0)
	want := []string{"-5", "-0.1", "0", "2", "3.5", "10"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestIndexDescendingAndMultiColumn(t *testing.T) {
	def := mustDef(t, "multi", "SELECT @All",
		Column{Title: "Cat", ItemName: "Cat", Sorted: true},
		Column{Title: "N", ItemName: "N", Sorted: true, Descending: true})
	ix := NewIndex(def)
	for _, d := range []struct {
		cat string
		n   float64
	}{{"b", 1}, {"a", 2}, {"a", 9}, {"b", 5}, {"a", 4}} {
		ix.Update(doc(map[string]any{"Cat": d.cat, "N": d.n}), nil)
	}
	var got []string
	ix.Walk(func(e *Entry) bool {
		got = append(got, e.ColumnText(0)+e.ColumnText(1))
		return true
	})
	want := []string{"a9", "a4", "a2", "b5", "b1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

func TestSelectionFiltersAndStubsLeave(t *testing.T) {
	def := mustDef(t, "memos", `SELECT Form = "Memo"`,
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	ix := NewIndex(def)
	memo := doc(map[string]any{"Form": "Memo", "Subject": "in"})
	other := doc(map[string]any{"Form": "Task", "Subject": "out"})
	ix.Update(memo, nil)
	ix.Update(other, nil)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	// The memo becomes a stub: it must leave the view.
	memo.Flags |= nsf.FlagDeleted
	changed, err := ix.Update(memo, nil)
	if err != nil || !changed {
		t.Fatalf("stub update: %v %v", changed, err)
	}
	if ix.Len() != 0 {
		t.Errorf("stub still in view")
	}
	// Reclassifying a doc out of the selection removes it too.
	ix.Update(other, nil)
	if ix.Len() != 0 {
		t.Errorf("unselected doc entered view")
	}
}

func TestIncrementalRepositioning(t *testing.T) {
	def := mustDef(t, "bysubj", "SELECT @All",
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	ix := NewIndex(def)
	n := doc(map[string]any{"Subject": "mmm"})
	ix.Update(n, nil)
	ix.Update(doc(map[string]any{"Subject": "aaa"}), nil)
	ix.Update(doc(map[string]any{"Subject": "zzz"}), nil)
	n.SetText("Subject", "zzzz")
	ix.Update(n, nil)
	got := subjects(ix, 0)
	want := []string{"aaa", "zzz", "zzzz"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after reposition: %v", got)
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d after update of existing doc", ix.Len())
	}
}

func TestFormulaColumns(t *testing.T) {
	def := mustDef(t, "computed", "SELECT @All",
		Column{Title: "Upper", Formula: formula.MustCompile(`@UpperCase(Subject)`), Sorted: true},
		Column{Title: "Len", Formula: formula.MustCompile(`@Length(Subject)`)})
	ix := NewIndex(def)
	ix.Update(doc(map[string]any{"Subject": "hello"}), nil)
	var e *Entry
	ix.Walk(func(x *Entry) bool { e = x; return false })
	if e.ColumnText(0) != "HELLO" || e.ColumnText(1) != "5" {
		t.Errorf("computed columns = %q, %q", e.ColumnText(0), e.ColumnText(1))
	}
}

func TestRebuildMatchesIncremental(t *testing.T) {
	def := mustDef(t, "both", `SELECT Priority > 2`,
		Column{Title: "Cat", ItemName: "Cat", Sorted: true},
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	inc := NewIndex(def)
	full := NewIndex(def)
	rng := rand.New(rand.NewSource(5))
	var notes []*nsf.Note
	for i := 0; i < 500; i++ {
		n := doc(map[string]any{
			"Cat":      fmt.Sprintf("cat%d", rng.Intn(5)),
			"Subject":  fmt.Sprintf("subject %04d", rng.Intn(1000)),
			"Priority": float64(rng.Intn(6)),
		})
		notes = append(notes, n)
		if _, err := inc.Update(n, nil); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	err := full.Rebuild(nil, func(fn func(*nsf.Note) bool) error {
		for _, n := range notes {
			if !fn(n) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	a, b := inc.Entries(), full.Entries()
	if len(a) != len(b) {
		t.Fatalf("incremental %d entries, rebuild %d", len(a), len(b))
	}
	for i := range a {
		if a[i].UNID != b[i].UNID {
			t.Fatalf("entry %d differs: %v vs %v", i, a[i].UNID, b[i].UNID)
		}
	}
}

func TestCategorizedRows(t *testing.T) {
	def := mustDef(t, "cats", "SELECT @All",
		Column{Title: "Cat", ItemName: "Cat", Categorized: true},
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	ix := NewIndex(def)
	for _, d := range []struct{ cat, subj string }{
		{"fruit", "apple"}, {"fruit", "pear"}, {"veg", "carrot"},
	} {
		ix.Update(doc(map[string]any{"Cat": d.cat, "Subject": d.subj}), nil)
	}
	rows := ix.Rows(nil)
	var render []string
	for _, r := range rows {
		if r.Entry == nil {
			render = append(render, "["+r.Category+"]")
		} else {
			render = append(render, r.Entry.ColumnText(1))
		}
	}
	want := []string{"[fruit]", "apple", "pear", "[veg]", "carrot"}
	if !reflect.DeepEqual(render, want) {
		t.Errorf("rows = %v, want %v", render, want)
	}
}

func TestRowsFilterSuppressesEmptyCategories(t *testing.T) {
	def := mustDef(t, "cats", "SELECT @All",
		Column{Title: "Cat", ItemName: "Cat", Categorized: true},
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	ix := NewIndex(def)
	ix.Update(doc(map[string]any{"Cat": "secret", "Subject": "hidden"}), nil)
	ix.Update(doc(map[string]any{"Cat": "open", "Subject": "visible"}), nil)
	rows := ix.Rows(func(e *Entry) bool { return e.ColumnText(1) != "hidden" })
	for _, r := range rows {
		if r.Category == "secret" {
			t.Error("empty category emitted")
		}
		if r.Entry != nil && r.Entry.ColumnText(1) == "hidden" {
			t.Error("filtered entry emitted")
		}
	}
}

func TestReadersCarriedOnEntries(t *testing.T) {
	def := mustDef(t, "v", "SELECT @All",
		Column{Title: "Subject", ItemName: "Subject", Sorted: true})
	ix := NewIndex(def)
	n := doc(map[string]any{"Subject": "restricted"})
	n.SetWithFlags("DocReaders", nsf.TextValue("alice"), nsf.FlagReaders)
	ix.Update(n, nil)
	var e *Entry
	ix.Walk(func(x *Entry) bool { e = x; return false })
	if !reflect.DeepEqual(e.Readers, []string{"alice"}) {
		t.Errorf("Readers = %v", e.Readers)
	}
}

func TestMixedTypeCollation(t *testing.T) {
	def := mustDef(t, "mixed", "SELECT @All",
		Column{Title: "V", ItemName: "V", Sorted: true})
	ix := NewIndex(def)
	ix.Update(doc(map[string]any{"V": "text"}), nil)
	ix.Update(doc(map[string]any{"V": 42}), nil)
	n := nsf.NewNote(nsf.ClassDocument) // missing V entirely
	ix.Update(n, nil)
	got := subjects(ix, 0)
	// empty < numbers < text
	if got[0] != "" || got[1] != "42" || got[2] != "text" {
		t.Errorf("mixed collation = %q", got)
	}
}

func TestLargeViewOrderIsTotal(t *testing.T) {
	def := mustDef(t, "big", "SELECT @All",
		Column{Title: "K", ItemName: "K", Sorted: true})
	ix := NewIndex(def)
	rng := rand.New(rand.NewSource(11))
	var want []string
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%06d", rng.Intn(100000))
		want = append(want, k)
		ix.Update(doc(map[string]any{"K": k}), nil)
	}
	sort.Strings(want)
	got := subjects(ix, 0)
	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("first divergence at %d: %q vs %q", i, got[i], want[i])
			}
		}
		t.Fatalf("length mismatch %d vs %d", len(got), len(want))
	}
}

func TestUpdateRemoveRoundTrip(t *testing.T) {
	def := mustDef(t, "v", "SELECT @All",
		Column{Title: "S", ItemName: "S", Sorted: true})
	ix := NewIndex(def)
	n := doc(map[string]any{"S": strings.Repeat("x", 10)})
	ix.Update(n, nil)
	if !ix.Remove(n.OID.UNID) {
		t.Fatal("Remove returned false")
	}
	if ix.Remove(n.OID.UNID) {
		t.Fatal("double Remove returned true")
	}
	if ix.Len() != 0 {
		t.Fatal("index not empty")
	}
}
