// Package view implements Domino-style view indexes: sorted, optionally
// categorized projections of the documents selected by a selection formula,
// maintained either incrementally (as documents change) or by full rebuild.
package view

import (
	"fmt"
	"strings"

	"repro/internal/formula"
	"repro/internal/nsf"
)

// Column describes one view column.
type Column struct {
	// Title is the display name.
	Title string
	// ItemName reads the named item directly; leave empty to use Formula.
	ItemName string
	// Formula computes the column value when ItemName is empty.
	Formula *formula.Formula
	// Sorted makes the column participate in the view's collation, in
	// column order.
	Sorted bool
	// Descending inverts this column's sort direction.
	Descending bool
	// Categorized renders the column as category rows. Implies Sorted.
	Categorized bool
	// Totals accumulates this column's numeric values into category header
	// rows and a grand-total row, like a Notes totals column.
	Totals bool
}

// Definition describes a view: its selection formula and columns.
type Definition struct {
	Name      string
	Selection *formula.Formula
	Columns   []Column
	// ShowResponses arranges documents carrying a $Ref item as a response
	// hierarchy: each response renders beneath its parent, indented, in
	// collation order among its siblings — the threaded rendering Notes
	// discussion databases are built on.
	ShowResponses bool
}

// NewDefinition builds a Definition, compiling the selection formula source.
func NewDefinition(name, selection string, cols ...Column) (*Definition, error) {
	sel, err := formula.Compile(selection)
	if err != nil {
		return nil, fmt.Errorf("view %s: selection: %w", name, err)
	}
	for i := range cols {
		if cols[i].Categorized {
			cols[i].Sorted = true
		}
		if cols[i].ItemName == "" && cols[i].Formula == nil {
			return nil, fmt.Errorf("view %s: column %d has neither item name nor formula", name, i)
		}
	}
	return &Definition{Name: name, Selection: sel, Columns: cols}, nil
}

// Entry is one document's row in a view index.
type Entry struct {
	UNID   nsf.UNID
	NoteID nsf.NoteID
	// Values holds one value per column.
	Values []nsf.Value
	// Readers carries the note's reader restriction for read-time ACL
	// filtering (nil when the note is unrestricted).
	Readers []string
	// Parent is the UNID from the note's $Ref item, if any; it drives
	// response-hierarchy rendering.
	Parent nsf.UNID
	key    []byte
}

// ColumnText returns column i's value rendered as display text.
func (e *Entry) ColumnText(i int) string {
	if i < 0 || i >= len(e.Values) {
		return ""
	}
	return e.Values[i].String()
}

// parentOf extracts the parent UNID from a note's $Ref item.
func parentOf(note *nsf.Note) nsf.UNID {
	ref := note.Text("$Ref")
	if ref == "" {
		return nsf.UNID{}
	}
	u, err := nsf.ParseUNID(ref)
	if err != nil {
		return nsf.UNID{}
	}
	return u
}

// evalColumns computes the row values for note under def.
func evalColumns(def *Definition, note *nsf.Note, ctx *formula.Context) ([]nsf.Value, error) {
	vals := make([]nsf.Value, len(def.Columns))
	for i, col := range def.Columns {
		if col.ItemName != "" {
			vals[i] = note.Get(col.ItemName)
			continue
		}
		local := formula.Context{Note: note}
		if ctx != nil {
			local = *ctx
			local.Note = note
		}
		v, err := col.Formula.Eval(&local)
		if err != nil {
			return nil, fmt.Errorf("view %s: column %d (%s): %w", def.Name, i, col.Title, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// collationKey builds an order-preserving byte key from the sorted columns'
// values, terminated by the UNID for total order.
func collationKey(def *Definition, vals []nsf.Value, unid nsf.UNID) []byte {
	var key []byte
	for i, col := range def.Columns {
		if !col.Sorted {
			continue
		}
		seg := encodeValue(vals[i])
		if col.Descending {
			for j := range seg {
				seg[j] ^= 0xFF
			}
		}
		key = append(key, seg...)
		key = append(key, 0x00) // segment separator (after inversion)
	}
	key = append(key, unid[:]...)
	return key
}

// Type tags order values of different types: numbers, then text, then time,
// matching Notes collation (numbers sort before text).
const (
	tagEmpty  = 0x01
	tagNumber = 0x02
	tagText   = 0x03
	tagTime   = 0x04
)

// encodeValue encodes the first entry of v order-preservingly.
func encodeValue(v nsf.Value) []byte {
	switch v.Type {
	case nsf.TypeNumber:
		if len(v.Numbers) == 0 {
			return []byte{tagEmpty}
		}
		return append([]byte{tagNumber}, encodeFloat(v.Numbers[0])...)
	case nsf.TypeText:
		if len(v.Text) == 0 {
			return []byte{tagEmpty}
		}
		s := strings.ToLower(v.Text[0])
		out := make([]byte, 0, len(s)+1)
		out = append(out, tagText)
		for i := 0; i < len(s); i++ {
			// 0x00 is the segment separator; remap to keep keys valid.
			if s[i] == 0x00 {
				out = append(out, 0x01)
				continue
			}
			out = append(out, s[i])
		}
		return out
	case nsf.TypeTime:
		if len(v.Times) == 0 {
			return []byte{tagEmpty}
		}
		t := uint64(v.Times[0]) ^ (1 << 63) // order-preserving for signed
		return []byte{tagTime,
			byte(t >> 56), byte(t >> 48), byte(t >> 40), byte(t >> 32),
			byte(t >> 24), byte(t >> 16), byte(t >> 8), byte(t)}
	default:
		return []byte{tagEmpty}
	}
}

// encodeFloat maps float64 to 8 bytes whose lexicographic order matches
// numeric order (IEEE 754 trick: flip sign bit for positives, all bits for
// negatives).
func encodeFloat(f float64) []byte {
	if f == 0 {
		f = 0 // normalize -0.0: equal values must encode identically
	}
	bits := floatBits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return []byte{
		byte(bits >> 56), byte(bits >> 48), byte(bits >> 40), byte(bits >> 32),
		byte(bits >> 24), byte(bits >> 16), byte(bits >> 8), byte(bits)}
}
