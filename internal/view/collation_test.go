package view

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/nsf"
)

// valueLess is the reference ordering encodeValue must preserve: empty
// values first, then numbers numerically, then text case-insensitively,
// then times chronologically.
func valueLess(a, b nsf.Value) bool {
	ra, rb := rankOf(a), rankOf(b)
	if ra != rb {
		return ra < rb
	}
	switch ra {
	case 1: // number
		return a.Numbers[0] < b.Numbers[0]
	case 2: // text
		return strings.ToLower(a.Text[0]) < strings.ToLower(b.Text[0])
	case 3: // time
		return a.Times[0] < b.Times[0]
	default:
		return false
	}
}

func rankOf(v nsf.Value) int {
	switch {
	case v.Type == nsf.TypeNumber && len(v.Numbers) > 0:
		return 1
	case v.Type == nsf.TypeText && len(v.Text) > 0:
		return 2
	case v.Type == nsf.TypeTime && len(v.Times) > 0:
		return 3
	default:
		return 0
	}
}

func randomCollValue(rng *rand.Rand) nsf.Value {
	switch rng.Intn(4) {
	case 0:
		return nsf.Value{}
	case 1:
		n := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
		if rng.Intn(10) == 0 {
			n = 0
		}
		if rng.Intn(10) == 0 {
			n = -n
		}
		return nsf.NumberValue(n)
	case 2:
		b := make([]byte, rng.Intn(12))
		for i := range b {
			b[i] = byte('A' + rng.Intn(50))
		}
		return nsf.TextValue(string(b))
	default:
		return nsf.TimeValue(nsf.Timestamp(rng.Int63() - rng.Int63()))
	}
}

// TestEncodeValuePreservesOrder property-tests that the byte encoding of
// values sorts exactly like the values themselves — the invariant the
// entire view collation rests on.
func TestEncodeValuePreservesOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomCollValue(rng), randomCollValue(rng)
		ea, eb := encodeValue(a), encodeValue(b)
		cmp := bytes.Compare(ea, eb)
		switch {
		case valueLess(a, b):
			return cmp < 0
		case valueLess(b, a):
			return cmp > 0
		default:
			// Equal under the reference order: encodings must compare equal
			// too (e.g. case-folded text).
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloatTotalOrder(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		cmp := bytes.Compare(encodeFloat(a), encodeFloat(b))
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
	// Hand-picked edge cases.
	edges := []float64{math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 1, math.MaxFloat64, math.Inf(1)}
	for i := 0; i < len(edges)-1; i++ {
		if bytes.Compare(encodeFloat(edges[i]), encodeFloat(edges[i+1])) >= 0 {
			t.Errorf("encodeFloat order broken between %v and %v", edges[i], edges[i+1])
		}
	}
}

func TestDescendingInversionPreservesOrder(t *testing.T) {
	def := mustDef(t, "d", "SELECT @All",
		Column{Title: "N", ItemName: "N", Sorted: true, Descending: true})
	ix := NewIndex(def)
	vals := []float64{3, -7, 0, 100, 2.5}
	for _, v := range vals {
		ix.Update(doc(map[string]any{"N": v}), nil)
	}
	var got []string
	ix.Walk(func(e *Entry) bool { got = append(got, e.ColumnText(0)); return true })
	want := []string{"100", "3", "2.5", "0", "-7"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descending order = %v, want %v", got, want)
		}
	}
}
