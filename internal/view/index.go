package view

import (
	"bytes"
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/formula"
	"repro/internal/nsf"
)

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Index is a materialized view: entries kept in collation order. It is safe
// for concurrent use.
type Index struct {
	def *Definition

	mu      sync.RWMutex
	entries []*Entry            // sorted by key
	byUNID  map[nsf.UNID][]byte // UNID -> current key, for O(log n) removal
}

// NewIndex returns an empty index over def.
func NewIndex(def *Definition) *Index {
	return &Index{def: def, byUNID: make(map[nsf.UNID][]byte)}
}

// Definition returns the view definition.
func (ix *Index) Definition() *Definition { return ix.def }

// Len returns the number of entries.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.entries)
}

// locate returns the position of key in entries (exact match required).
func (ix *Index) locate(key []byte) (int, bool) {
	i := sort.Search(len(ix.entries), func(i int) bool {
		return bytes.Compare(ix.entries[i].key, key) >= 0
	})
	if i < len(ix.entries) && bytes.Equal(ix.entries[i].key, key) {
		return i, true
	}
	return i, false
}

// Update reflects a single note change in the index: the note is inserted,
// repositioned, or removed depending on the selection formula and its
// current values. Deletion stubs always leave the view. It reports whether
// the index changed.
func (ix *Index) Update(note *nsf.Note, ctx *formula.Context) (bool, error) {
	selected := false
	if !note.IsStub() && note.Class == nsf.ClassDocument {
		ok, err := ix.def.Selection.Selects(note, ctx)
		if err != nil {
			return false, err
		}
		selected = ok
	}
	if !selected {
		return ix.Remove(note.OID.UNID), nil
	}
	vals, err := evalColumns(ix.def, note, ctx)
	if err != nil {
		return false, err
	}
	e := &Entry{
		UNID:    note.OID.UNID,
		NoteID:  note.ID,
		Values:  vals,
		Readers: note.Readers(),
		Parent:  parentOf(note),
		key:     collationKey(ix.def, vals, note.OID.UNID),
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if oldKey, ok := ix.byUNID[e.UNID]; ok {
		if bytes.Equal(oldKey, e.key) {
			// Same position: replace values in place.
			if i, found := ix.locate(oldKey); found {
				ix.entries[i] = e
				return true, nil
			}
		}
		ix.removeKeyLocked(oldKey)
	}
	i, _ := ix.locate(e.key)
	ix.entries = append(ix.entries, nil)
	copy(ix.entries[i+1:], ix.entries[i:])
	ix.entries[i] = e
	ix.byUNID[e.UNID] = e.key
	return true, nil
}

// Remove deletes the entry for unid, reporting whether it was present.
func (ix *Index) Remove(unid nsf.UNID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	key, ok := ix.byUNID[unid]
	if !ok {
		return false
	}
	ix.removeKeyLocked(key)
	delete(ix.byUNID, unid)
	return true
}

func (ix *Index) removeKeyLocked(key []byte) {
	if i, found := ix.locate(key); found {
		ix.entries = append(ix.entries[:i], ix.entries[i+1:]...)
	}
}

// Rebuild clears the index and repopulates it from scan, which must invoke
// its callback once per candidate note.
func (ix *Index) Rebuild(ctx *formula.Context, scan func(fn func(*nsf.Note) bool) error) error {
	var fresh []*Entry
	var evalErr error
	err := scan(func(n *nsf.Note) bool {
		if n.IsStub() || n.Class != nsf.ClassDocument {
			return true
		}
		ok, err := ix.def.Selection.Selects(n, ctx)
		if err != nil {
			evalErr = err
			return false
		}
		if !ok {
			return true
		}
		vals, err := evalColumns(ix.def, n, ctx)
		if err != nil {
			evalErr = err
			return false
		}
		fresh = append(fresh, &Entry{
			UNID:    n.OID.UNID,
			NoteID:  n.ID,
			Values:  vals,
			Readers: n.Readers(),
			Parent:  parentOf(n),
			key:     collationKey(ix.def, vals, n.OID.UNID),
		})
		return true
	})
	if err != nil {
		return err
	}
	if evalErr != nil {
		return evalErr
	}
	sort.Slice(fresh, func(i, j int) bool {
		return bytes.Compare(fresh[i].key, fresh[j].key) < 0
	})
	byUNID := make(map[nsf.UNID][]byte, len(fresh))
	for _, e := range fresh {
		byUNID[e.UNID] = e.key
	}
	ix.mu.Lock()
	ix.entries = fresh
	ix.byUNID = byUNID
	ix.mu.Unlock()
	return nil
}

// Walk visits entries in collation order until fn returns false.
func (ix *Index) Walk(fn func(*Entry) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, e := range ix.entries {
		if !fn(e) {
			return
		}
	}
}

// Entries returns a snapshot of all entries in collation order.
func (ix *Index) Entries() []*Entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]*Entry, len(ix.entries))
	copy(out, ix.entries)
	return out
}

// Row is a rendered view row: either a category header or a document entry.
type Row struct {
	// Category is the header text for category rows; empty for documents.
	Category string
	// Indent is the category nesting depth of the row.
	Indent int
	// Entry is nil for category rows.
	Entry *Entry
	// Totals holds, for category rows (and the grand-total row), the sum of
	// each Totals column over the rows beneath; nil when the view has no
	// totals columns or for document rows.
	Totals map[int]float64
	// GrandTotal marks the synthetic final row carrying view-wide totals.
	GrandTotal bool
}

// Rows renders the view with category headers synthesized from the
// categorized columns, Notes style, and — when the definition enables
// ShowResponses — responses nested beneath their parents. Entries for which
// allow returns false are skipped (pass nil to include everything); empty
// categories are suppressed automatically.
func (ix *Index) Rows(allow func(*Entry) bool) []Row {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.def.ShowResponses {
		return ix.addTotals(ix.responseRows(allow))
	}
	var catCols []int
	for i, c := range ix.def.Columns {
		if c.Categorized {
			catCols = append(catCols, i)
		}
	}
	var rows []Row
	var current []string
	for _, e := range ix.entries {
		if allow != nil && !allow(e) {
			continue
		}
		if len(catCols) > 0 {
			cats := make([]string, len(catCols))
			for j, ci := range catCols {
				cats[j] = e.ColumnText(ci)
			}
			// Emit headers where the category path diverges.
			diverge := 0
			for diverge < len(cats) && diverge < len(current) && cats[diverge] == current[diverge] {
				diverge++
			}
			for j := diverge; j < len(cats); j++ {
				rows = append(rows, Row{Category: cats[j], Indent: j})
			}
			current = cats
		}
		rows = append(rows, Row{Entry: e, Indent: len(catCols)})
	}
	return ix.addTotals(rows)
}

// RowsRange renders rows[start : start+limit] of the view along with the
// total row count, for paginated readers. Row indices are positions in the
// full Rows rendering minus the synthetic grand-total row, which is
// excluded here — it would otherwise sit at a shifting index as documents
// arrive, breaking cursor arithmetic (category totals on header rows are
// still present). Indices are stable across pages as long as the index
// itself does not change between calls; a reader that needs exactness
// checks the returned total against its cursor. limit <= 0 means "to the
// end"; start past the end returns an empty page.
func (ix *Index) RowsRange(allow func(*Entry) bool, start, limit int) ([]Row, int) {
	rows, total, _ := ix.RowsRangeCtx(context.Background(), allow, start, limit)
	return rows, total
}

// rowsCtxStride is how many entries the render walk visits between deadline
// checks. Small enough that a cancelled render releases the read lock in
// microseconds, large enough that ctx.Err() stays off the per-entry path.
const rowsCtxStride = 512

// RowsRangeCtx is RowsRange with cooperative cancellation. The render walk
// checks ctx every rowsCtxStride entries; once the deadline is spent the
// remaining walk degenerates to cheap skips (no column rendering, no row
// allocation) and the call returns ctx's error, so a paginated reader whose
// budget expired mid-render releases the view's read lock promptly instead
// of materializing thousands of rows for a caller that already gave up.
func (ix *Index) RowsRangeCtx(ctx context.Context, allow func(*Entry) bool, start, limit int) ([]Row, int, error) {
	var visited int
	var ctxErr error
	gated := func(e *Entry) bool {
		if ctxErr != nil {
			return false
		}
		if visited++; visited%rowsCtxStride == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		return allow == nil || allow(e)
	}
	rows := ix.Rows(gated)
	if ctxErr != nil {
		return nil, 0, ctxErr
	}
	if n := len(rows); n > 0 && rows[n-1].GrandTotal {
		rows = rows[:n-1]
	}
	total := len(rows)
	if start < 0 {
		start = 0
	}
	if start > total {
		start = total
	}
	end := total
	if limit > 0 && start+limit < end {
		end = start + limit
	}
	return rows[start:end], total, nil
}

// addTotals fills category rows with the sums of Totals columns over the
// rows beneath them and appends a grand-total row. A no-op when the view
// defines no totals columns.
func (ix *Index) addTotals(rows []Row) []Row {
	var totalCols []int
	for i, c := range ix.def.Columns {
		if c.Totals {
			totalCols = append(totalCols, i)
		}
	}
	if len(totalCols) == 0 {
		return rows
	}
	grand := make(map[int]float64, len(totalCols))
	var open []int // indices of category rows currently covering entries
	for i := range rows {
		r := &rows[i]
		if r.Entry == nil {
			for len(open) > 0 && rows[open[len(open)-1]].Indent >= r.Indent {
				open = open[:len(open)-1]
			}
			r.Totals = make(map[int]float64, len(totalCols))
			open = append(open, i)
			continue
		}
		for _, c := range totalCols {
			v := 0.0
			if c < len(r.Entry.Values) && r.Entry.Values[c].Type == nsf.TypeNumber {
				for _, n := range r.Entry.Values[c].Numbers {
					v += n
				}
			}
			for _, oi := range open {
				rows[oi].Totals[c] += v
			}
			grand[c] += v
		}
	}
	return append(rows, Row{GrandTotal: true, Totals: grand})
}

// responseRows renders the response hierarchy: main documents in collation
// order, each followed by its (visible) responses, recursively indented.
// Responses whose parent is absent or hidden surface at the top level, so a
// restricted parent never hides an unrestricted reply entirely.
func (ix *Index) responseRows(allow func(*Entry) bool) []Row {
	visible := make(map[nsf.UNID]bool, len(ix.entries))
	children := make(map[nsf.UNID][]*Entry)
	for _, e := range ix.entries {
		if allow != nil && !allow(e) {
			continue
		}
		visible[e.UNID] = true
	}
	var tops []*Entry
	for _, e := range ix.entries {
		if !visible[e.UNID] {
			continue
		}
		if !e.Parent.IsZero() && visible[e.Parent] {
			children[e.Parent] = append(children[e.Parent], e)
		} else {
			tops = append(tops, e)
		}
	}
	var rows []Row
	emitted := make(map[nsf.UNID]bool, len(visible))
	var emit func(e *Entry, depth int)
	emit = func(e *Entry, depth int) {
		if emitted[e.UNID] {
			return // defends against $Ref cycles
		}
		emitted[e.UNID] = true
		rows = append(rows, Row{Entry: e, Indent: depth})
		for _, c := range children[e.UNID] {
			emit(c, depth+1)
		}
	}
	for _, e := range tops {
		emit(e, 0)
	}
	// $Ref cycles leave orphans never reached from a top-level entry; emit
	// them flat so no visible document silently disappears.
	for _, e := range ix.entries {
		if visible[e.UNID] && !emitted[e.UNID] {
			emit(e, 0)
		}
	}
	return rows
}
