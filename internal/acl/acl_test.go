package acl

import (
	"reflect"
	"testing"

	"repro/internal/dir"
	"repro/internal/nsf"
)

func testDir(t *testing.T) *dir.Directory {
	t.Helper()
	d := dir.New()
	for _, u := range []string{"alice", "bob", "carol", "dave"} {
		if err := d.AddUser(dir.User{Name: u}); err != nil {
			t.Fatalf("AddUser: %v", err)
		}
	}
	if err := d.AddGroup("engineers", "alice", "bob"); err != nil {
		t.Fatalf("AddGroup: %v", err)
	}
	if err := d.AddGroup("staff", "engineers", "carol"); err != nil {
		t.Fatalf("AddGroup: %v", err)
	}
	return d
}

func TestLevelOrdering(t *testing.T) {
	if !(NoAccess < Depositor && Depositor < Reader && Reader < Author &&
		Author < Editor && Editor < Designer && Designer < Manager) {
		t.Fatal("level ordering broken")
	}
	l, err := ParseLevel("editor")
	if err != nil || l != Editor {
		t.Errorf("ParseLevel = %v, %v", l, err)
	}
	if _, err := ParseLevel("supreme"); err == nil {
		t.Error("ParseLevel accepted bad level")
	}
}

func TestAccessResolution(t *testing.T) {
	d := testDir(t)
	a := New(NoAccess)
	a.Set("alice", Manager)
	a.Set("engineers", Editor, "[dev]")
	a.Set("staff", Reader, "[all]")

	// Personal entry wins, but group roles accumulate.
	lv, roles := a.Access("alice", d)
	if lv != Manager {
		t.Errorf("alice level = %v", lv)
	}
	if !reflect.DeepEqual(roles, []string{"[all]", "[dev]"}) {
		t.Errorf("alice roles = %v", roles)
	}
	// Group-only user takes the strongest group level.
	lv, roles = a.Access("bob", d)
	if lv != Editor {
		t.Errorf("bob level = %v", lv)
	}
	if !reflect.DeepEqual(roles, []string{"[all]", "[dev]"}) {
		t.Errorf("bob roles = %v", roles)
	}
	// Nested group membership.
	lv, _ = a.Access("carol", d)
	if lv != Reader {
		t.Errorf("carol level = %v", lv)
	}
	// No entry anywhere: default.
	lv, _ = a.Access("dave", d)
	if lv != NoAccess {
		t.Errorf("dave level = %v", lv)
	}
	a.SetDefault(Reader)
	lv, _ = a.Access("dave", d)
	if lv != Reader {
		t.Errorf("dave level with default = %v", lv)
	}
}

func restrictedNote(readers, authors []string) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "s")
	if readers != nil {
		n.SetWithFlags("DocReaders", nsf.TextValue(readers...), nsf.FlagReaders)
	}
	if authors != nil {
		n.SetWithFlags("DocAuthors", nsf.TextValue(authors...), nsf.FlagAuthors)
	}
	return n
}

func TestReaderFields(t *testing.T) {
	d := testDir(t)
	a := New(NoAccess)
	a.Set("alice", Manager)
	a.Set("bob", Reader)
	a.Set("carol", Editor)

	open := restrictedNote(nil, nil)
	secret := restrictedNote([]string{"bob"}, nil)

	alice := a.Resolve("alice", d)
	bob := a.Resolve("bob", d)
	carol := a.Resolve("carol", d)

	if !alice.CanRead(open) || !bob.CanRead(open) {
		t.Error("open note not readable")
	}
	// Reader fields restrict even Managers.
	if alice.CanRead(secret) {
		t.Error("manager read a note whose Readers exclude them")
	}
	if !bob.CanRead(secret) {
		t.Error("listed reader denied")
	}
	if carol.CanRead(secret) {
		t.Error("editor read a restricted note")
	}
	// Group membership grants reader access.
	groupSecret := restrictedNote([]string{"engineers"}, nil)
	if !alice.CanRead(groupSecret) || !bob.CanRead(groupSecret) {
		t.Error("group reader denied")
	}
	if carol.CanRead(groupSecret) {
		t.Error("non-member read group-restricted note")
	}
	// Authors can always read their own docs.
	authored := restrictedNote([]string{"bob"}, []string{"carol"})
	if !carol.CanRead(authored) {
		t.Error("author denied read of own restricted doc")
	}
}

func TestAuthorSemantics(t *testing.T) {
	d := testDir(t)
	a := New(NoAccess)
	a.Set("alice", Author)
	a.Set("bob", Editor)
	a.Set("carol", Reader)
	a.Set("dave", Depositor)

	mine := restrictedNote(nil, []string{"alice"})
	other := restrictedNote(nil, []string{"someone else"})

	alice := a.Resolve("alice", d)
	bob := a.Resolve("bob", d)
	carol := a.Resolve("carol", d)
	dave := a.Resolve("dave", d)

	if !alice.CanCreate() {
		t.Error("author cannot create")
	}
	if !alice.CanEdit(mine) {
		t.Error("author cannot edit own doc")
	}
	if alice.CanEdit(other) {
		t.Error("author edited someone else's doc")
	}
	if !bob.CanEdit(other) {
		t.Error("editor cannot edit")
	}
	if carol.CanEdit(mine) || !carol.CanRead(mine) {
		t.Error("reader semantics wrong")
	}
	if !dave.CanCreate() || dave.CanRead(mine) {
		t.Error("depositor semantics wrong")
	}
}

func TestRolesInReaderFields(t *testing.T) {
	d := testDir(t)
	a := New(NoAccess)
	a.Set("alice", Reader, "[hr]")
	a.Set("bob", Reader)
	note := restrictedNote([]string{"[HR]"}, nil)
	if !a.Resolve("alice", d).CanRead(note) {
		t.Error("role-based reader denied")
	}
	if a.Resolve("bob", d).CanRead(note) {
		t.Error("non-role reader allowed")
	}
}

func TestDesignAndManage(t *testing.T) {
	a := New(NoAccess)
	a.Set("alice", Designer)
	a.Set("bob", Manager)
	if !a.Resolve("alice", nil).CanDesign() || a.Resolve("alice", nil).CanManageACL() {
		t.Error("designer rights wrong")
	}
	if !a.Resolve("bob", nil).CanManageACL() {
		t.Error("manager rights wrong")
	}
}

func TestNoteRoundTrip(t *testing.T) {
	a := New(Reader)
	a.Set("alice", Manager, "[admin]", "[hr]")
	a.Set("engineers", Editor)
	note := nsf.NewNote(nsf.ClassACL)
	a.WriteNote(note)
	// Encode through the codec too, as the store would.
	decoded, err := nsf.DecodeNote(nsf.EncodeNote(note))
	if err != nil {
		t.Fatalf("codec: %v", err)
	}
	b, err := FromNote(decoded)
	if err != nil {
		t.Fatalf("FromNote: %v", err)
	}
	if b.Default() != Reader {
		t.Errorf("default = %v", b.Default())
	}
	if !reflect.DeepEqual(a.Entries(), b.Entries()) {
		t.Errorf("entries mismatch:\n%v\n%v", a.Entries(), b.Entries())
	}
}

func TestFromNoteRejectsCorrupt(t *testing.T) {
	n := nsf.NewNote(nsf.ClassACL)
	n.SetText("$ACLNames", "a", "b")
	n.SetNumber("$ACLLevels", 1)
	n.SetText("$ACLRoles", "", "")
	n.SetNumber("$ACLDefault", 2)
	if _, err := FromNote(n); err == nil {
		t.Error("mismatched lengths accepted")
	}
	n2 := nsf.NewNote(nsf.ClassACL)
	n2.SetText("$ACLNames", "a")
	n2.SetNumber("$ACLLevels", 99)
	n2.SetText("$ACLRoles", "")
	n2.SetNumber("$ACLDefault", 2)
	if _, err := FromNote(n2); err == nil {
		t.Error("bad level accepted")
	}
}
