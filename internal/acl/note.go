package acl

import (
	"fmt"
	"strings"

	"repro/internal/nsf"
)

// Item names used to persist an ACL inside its database as a note of class
// ClassACL, so the ACL itself replicates like any other note.
const (
	itemNames   = "$ACLNames"
	itemLevels  = "$ACLLevels"
	itemRoles   = "$ACLRoles"
	itemDefault = "$ACLDefault"
)

// WriteNote serializes the ACL into note (class ClassACL). Existing ACL
// items are replaced.
func (a *ACL) WriteNote(note *nsf.Note) {
	entries := a.Entries()
	names := make([]string, len(entries))
	levels := make([]float64, len(entries))
	roles := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
		levels[i] = float64(e.Level)
		roles[i] = strings.Join(e.Roles, ",")
	}
	note.Class = nsf.ClassACL
	note.SetText(itemNames, names...)
	note.SetNumber(itemLevels, levels...)
	note.SetText(itemRoles, roles...)
	note.SetNumber(itemDefault, float64(a.Default()))
}

// FromNote reconstructs an ACL from a note written by WriteNote.
func FromNote(note *nsf.Note) (*ACL, error) {
	names := note.TextList(itemNames)
	levels := note.Get(itemLevels).Numbers
	roles := note.TextList(itemRoles)
	if len(names) != len(levels) || len(names) != len(roles) {
		return nil, fmt.Errorf("acl: corrupt ACL note: %d names, %d levels, %d role sets",
			len(names), len(levels), len(roles))
	}
	def := Level(int(note.Number(itemDefault)))
	if def < NoAccess || def > Manager {
		return nil, fmt.Errorf("acl: corrupt ACL note: default level %d", int(def))
	}
	a := New(def)
	for i, name := range names {
		lv := Level(int(levels[i]))
		if lv < NoAccess || lv > Manager {
			return nil, fmt.Errorf("acl: corrupt ACL note: level %d for %q", int(lv), name)
		}
		var rs []string
		if roles[i] != "" {
			rs = strings.Split(roles[i], ",")
		}
		a.Set(name, lv, rs...)
	}
	return a, nil
}
