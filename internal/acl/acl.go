// Package acl implements Notes database access control: per-database access
// levels with roles, group resolution through the directory, and
// per-document Reader/Author item enforcement.
package acl

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/nsf"
)

// Level is a database access level. Higher levels include all rights of
// lower ones.
type Level int

// Access levels, weakest to strongest.
const (
	NoAccess Level = iota
	// Depositor may create documents but read none.
	Depositor
	// Reader may read documents (subject to Reader items).
	Reader
	// Author may create documents and edit those listing them in an
	// Authors item.
	Author
	// Editor may edit all documents.
	Editor
	// Designer may additionally modify design notes (views, forms).
	Designer
	// Manager may additionally modify the ACL itself.
	Manager
)

var levelNames = [...]string{"NoAccess", "Depositor", "Reader", "Author", "Editor", "Designer", "Manager"}

// String returns the level name.
func (l Level) String() string {
	if l < NoAccess || l > Manager {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return levelNames[l]
}

// ParseLevel parses a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if strings.EqualFold(s, n) {
			return Level(i), nil
		}
	}
	return NoAccess, fmt.Errorf("acl: unknown level %q", s)
}

// Entry grants a name (user or group) a level and optional roles.
type Entry struct {
	Name  string
	Level Level
	Roles []string
}

// GroupResolver expands a user into the groups containing them; the
// directory implements it.
type GroupResolver interface {
	GroupsOf(user string) []string
}

// ACL is a database access control list. It is safe for concurrent use.
type ACL struct {
	mu           sync.RWMutex
	entries      map[string]Entry
	defaultLevel Level
}

// New returns an ACL with the given default level for names without an
// entry.
func New(defaultLevel Level) *ACL {
	return &ACL{entries: make(map[string]Entry), defaultLevel: defaultLevel}
}

func key(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Set grants name a level and roles, replacing any existing entry.
func (a *ACL) Set(name string, level Level, roles ...string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries[key(name)] = Entry{Name: name, Level: level, Roles: roles}
}

// Remove deletes name's entry.
func (a *ACL) Remove(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.entries, key(name))
}

// SetDefault changes the default level.
func (a *ACL) SetDefault(level Level) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.defaultLevel = level
}

// Default returns the default level.
func (a *ACL) Default() Level {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.defaultLevel
}

// Entries returns all entries sorted by name.
func (a *ACL) Entries() []Entry {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Entry, 0, len(a.entries))
	for _, e := range a.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i].Name) < key(out[j].Name) })
	return out
}

// Access resolves a user's effective level and roles: the user's own entry
// if present, otherwise the strongest entry among the user's groups,
// otherwise the default. Roles accumulate across all matching entries.
func (a *ACL) Access(user string, groups GroupResolver) (Level, []string) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var roles []string
	if e, ok := a.entries[key(user)]; ok {
		roles = append(roles, e.Roles...)
		// A personal entry wins outright, Notes-style, but group roles
		// still accumulate.
		if groups != nil {
			for _, g := range groups.GroupsOf(user) {
				if ge, ok := a.entries[key(g)]; ok {
					roles = append(roles, ge.Roles...)
				}
			}
		}
		return e.Level, dedupe(roles)
	}
	level := Level(-1)
	if groups != nil {
		for _, g := range groups.GroupsOf(user) {
			if ge, ok := a.entries[key(g)]; ok {
				if ge.Level > level {
					level = ge.Level
				}
				roles = append(roles, ge.Roles...)
			}
		}
	}
	if level < 0 {
		return a.defaultLevel, nil
	}
	return level, dedupe(roles)
}

func dedupe(names []string) []string {
	seen := make(map[string]bool, len(names))
	var out []string
	for _, n := range names {
		k := key(n)
		if !seen[k] {
			seen[k] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Identity is a user's resolved access context against one database: their
// name, group memberships, level and roles. Build it once per session with
// Resolve and reuse it for per-document checks.
type Identity struct {
	Name   string
	Level  Level
	Groups []string
	Roles  []string
	// names holds the lower-cased match set: name, groups, and [role] forms.
	names map[string]bool
}

// Resolve computes user's identity under this ACL.
func (a *ACL) Resolve(user string, groups GroupResolver) *Identity {
	level, roles := a.Access(user, groups)
	id := &Identity{Name: user, Level: level, Roles: roles, names: map[string]bool{key(user): true}}
	if groups != nil {
		id.Groups = groups.GroupsOf(user)
		for _, g := range id.Groups {
			id.names[key(g)] = true
		}
	}
	for _, r := range roles {
		role := strings.Trim(r, "[]")
		id.names["["+key(role)+"]"] = true
	}
	return id
}

// Matches reports whether name refers to this identity (the user, one of
// their groups, or one of their roles).
func (id *Identity) Matches(name string) bool {
	return id.names[key(name)]
}

// matchesAny reports whether any of names refers to this identity.
func (id *Identity) matchesAny(names []string) bool {
	for _, n := range names {
		if id.Matches(n) {
			return true
		}
	}
	return false
}

// CanRead reports whether the identity may read note. Requires Reader level
// or better, and — when the note carries Reader items — membership in the
// reader list or the Authors list. Reader items restrict even Managers,
// exactly as in Notes.
func (id *Identity) CanRead(note *nsf.Note) bool {
	if id.Level < Reader {
		return false
	}
	readers := note.Readers()
	if len(readers) == 0 {
		return true
	}
	return id.matchesAny(readers) || id.matchesAny(note.Authors())
}

// CanCreate reports whether the identity may create new documents.
func (id *Identity) CanCreate() bool {
	return id.Level >= Author || id.Level == Depositor
}

// CanEdit reports whether the identity may modify an existing note. Editors
// and above edit anything they can read; Authors only documents listing
// them in an Authors item.
func (id *Identity) CanEdit(note *nsf.Note) bool {
	if !id.CanRead(note) {
		return false
	}
	if id.Level >= Editor {
		return true
	}
	if id.Level == Author {
		return id.matchesAny(note.Authors())
	}
	return false
}

// CanDelete mirrors CanEdit; Notes has a separate "delete documents" bit,
// which this model folds into edit rights.
func (id *Identity) CanDelete(note *nsf.Note) bool { return id.CanEdit(note) }

// CanDesign reports whether the identity may modify design notes.
func (id *Identity) CanDesign() bool { return id.Level >= Designer }

// CanManageACL reports whether the identity may modify the ACL.
func (id *Identity) CanManageACL() bool { return id.Level >= Manager }
