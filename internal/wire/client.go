package wire

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/repl"
)

// protocolVersion is negotiated in the hello exchange.
const protocolVersion = 1

// Client is an authenticated connection to a server. Requests are
// serialized; one Client supports concurrent callers.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	user string
}

// Dial connects and authenticates.
func Dial(addr, user, secret string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, user: user}
	req := NewEnc(OpHello).U32(protocolVersion).Str(user).Str(secret)
	if _, err := c.roundTrip(OpHello, req); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// User returns the authenticated user name.
func (c *Client) User() string { return c.user }

// roundTrip sends a request and decodes the response envelope, returning a
// decoder positioned at the response body.
func (c *Client) roundTrip(op Op, req *Enc) (*Dec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req.Bytes()); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	if len(payload) < 2 {
		return nil, fmt.Errorf("wire: short response")
	}
	if payload[0] != byte(op)|respBit {
		return nil, fmt.Errorf("wire: response op %#x does not match request %#x", payload[0], byte(op))
	}
	d := NewDec(payload[2:])
	if payload[1] != StatusOK {
		msg := d.Str()
		if d.Err() != nil {
			msg = "unknown server error"
		}
		return nil, fmt.Errorf("wire: server: %s", msg)
	}
	return d, nil
}

// OpenDB opens a database by path on the server, returning a remote handle.
func (c *Client) OpenDB(path string) (*RemoteDB, error) {
	d, err := c.roundTrip(OpOpenDB, NewEnc(OpOpenDB).Str(path))
	if err != nil {
		return nil, err
	}
	handle := d.U32()
	var replica nsf.ReplicaID
	copy(replica[:], d.Raw(8))
	title := d.Str()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return &RemoteDB{c: c, handle: handle, replica: replica, title: title, path: path}, nil
}

// MailDeposit drops a mail note into the server's mail.box for routing.
func (c *Client) MailDeposit(n *nsf.Note) error {
	_, err := c.roundTrip(OpMailDeposit, NewEnc(OpMailDeposit).Note(n))
	return err
}

// RemoteDB is a handle on a database opened over the wire. It implements
// repl.Peer, so a local replicator can sync against it directly.
type RemoteDB struct {
	c       *Client
	handle  uint32
	replica nsf.ReplicaID
	title   string
	path    string
}

var _ repl.Peer = (*RemoteDB)(nil)

// Title returns the remote database title.
func (r *RemoteDB) Title() string { return r.title }

// Path returns the server-side path the database was opened by.
func (r *RemoteDB) Path() string { return r.path }

// ReplicaID implements repl.Peer.
func (r *RemoteDB) ReplicaID() (nsf.ReplicaID, error) { return r.replica, nil }

// Get fetches a note with the server enforcing the caller's read access.
func (r *RemoteDB) Get(unid nsf.UNID) (*nsf.Note, error) {
	d, err := r.c.roundTrip(OpGetNote, NewEnc(OpGetNote).U32(r.handle).UNID(unid))
	if err != nil {
		return nil, err
	}
	n := d.Note()
	return n, d.Err()
}

// Create stores a new document.
func (r *RemoteDB) Create(n *nsf.Note) error {
	d, err := r.c.roundTrip(OpCreateNote, NewEnc(OpCreateNote).U32(r.handle).Note(n))
	if err != nil {
		return err
	}
	// The server returns the stored note (with assigned IDs and OID).
	stored := d.Note()
	if err := d.Err(); err != nil {
		return err
	}
	*n = *stored
	return nil
}

// Update stores a modified document.
func (r *RemoteDB) Update(n *nsf.Note) error {
	d, err := r.c.roundTrip(OpUpdateNote, NewEnc(OpUpdateNote).U32(r.handle).Note(n))
	if err != nil {
		return err
	}
	stored := d.Note()
	if err := d.Err(); err != nil {
		return err
	}
	*n = *stored
	return nil
}

// Delete replaces a document with a deletion stub.
func (r *RemoteDB) Delete(unid nsf.UNID) error {
	_, err := r.c.roundTrip(OpDeleteNote, NewEnc(OpDeleteNote).U32(r.handle).UNID(unid))
	return err
}

// ViewRow is a rendered remote view row.
type ViewRow struct {
	Category string
	Indent   int
	UNID     nsf.UNID
	Columns  []string
}

// ViewRows renders a view server-side with the caller's read filtering.
func (r *RemoteDB) ViewRows(view string) ([]ViewRow, error) {
	d, err := r.c.roundTrip(OpViewRows, NewEnc(OpViewRows).U32(r.handle).Str(view))
	if err != nil {
		return nil, err
	}
	count := int(d.U32())
	rows := make([]ViewRow, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		var row ViewRow
		row.Category = d.Str()
		row.Indent = int(d.U32())
		row.UNID = d.UNID()
		cols := int(d.U32())
		for j := 0; j < cols && d.Err() == nil; j++ {
			row.Columns = append(row.Columns, d.Str())
		}
		rows = append(rows, row)
	}
	return rows, d.Err()
}

// Search runs a full-text query server-side.
func (r *RemoteDB) Search(query string) ([]ft.Result, error) {
	d, err := r.c.roundTrip(OpSearch, NewEnc(OpSearch).U32(r.handle).Str(query))
	if err != nil {
		return nil, err
	}
	count := int(d.U32())
	out := make([]ft.Result, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		var res ft.Result
		res.UNID = d.UNID()
		res.Score = float64(d.U64()) / 1e6
		out = append(out, res)
	}
	return out, d.Err()
}

// DBInfo describes a remote database.
type DBInfo struct {
	Title string
	Notes int
	Pages int
	Views []string
}

// Info fetches the remote database's statistics and view list.
func (r *RemoteDB) Info() (DBInfo, error) {
	d, err := r.c.roundTrip(OpDBInfo, NewEnc(OpDBInfo).U32(r.handle))
	if err != nil {
		return DBInfo{}, err
	}
	info := DBInfo{
		Title: d.Str(),
		Notes: int(d.U32()),
		Pages: int(d.U32()),
	}
	count := int(d.U32())
	for i := 0; i < count && d.Err() == nil; i++ {
		info.Views = append(info.Views, d.Str())
	}
	return info, d.Err()
}

// Summaries implements repl.Peer.
func (r *RemoteDB) Summaries(since nsf.Timestamp, formulaSrc string) ([]repl.Summary, nsf.Timestamp, error) {
	req := NewEnc(OpSummaries).U32(r.handle).U64(uint64(since)).Str(formulaSrc)
	d, err := r.c.roundTrip(OpSummaries, req)
	if err != nil {
		return nil, 0, err
	}
	now := nsf.Timestamp(d.U64())
	count := int(d.U32())
	out := make([]repl.Summary, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		out = append(out, d.Summary())
	}
	return out, now, d.Err()
}

// Fetch implements repl.Peer.
func (r *RemoteDB) Fetch(unids []nsf.UNID) ([]*nsf.Note, error) {
	req := NewEnc(OpFetch).U32(r.handle).U32(uint32(len(unids)))
	for _, u := range unids {
		req.UNID(u)
	}
	d, err := r.c.roundTrip(OpFetch, req)
	if err != nil {
		return nil, err
	}
	count := int(d.U32())
	out := make([]*nsf.Note, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		out = append(out, d.Note())
	}
	return out, d.Err()
}

// Apply implements repl.Peer.
func (r *RemoteDB) Apply(notes []*nsf.Note) (repl.ApplyStats, error) {
	req := NewEnc(OpApply).U32(r.handle).U32(uint32(len(notes)))
	for _, n := range notes {
		req.Note(n)
	}
	d, err := r.c.roundTrip(OpApply, req)
	if err != nil {
		return repl.ApplyStats{}, err
	}
	st := d.ApplyStats()
	return st, d.Err()
}
