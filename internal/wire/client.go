package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/retry"
)

// protocolVersion is negotiated in the hello exchange. Version 2 replaced
// the one-shot view/search reads with paginated bulk ops (and added OpScan);
// the row encodings changed shape, so v1 peers are refused outright rather
// than silently misparsed.
const protocolVersion = 2

// Options tune a client's fault tolerance. The zero value gets production
// defaults; see the field comments.
type Options struct {
	// DialTimeout bounds connection establishment (default 10s).
	DialTimeout time.Duration
	// OpTimeout bounds one request/response round trip; no wire operation
	// can block past it (default 30s).
	OpTimeout time.Duration
	// MaxRetries is how many times a retryable, idempotent operation is
	// re-attempted after the first failure (default 4). Negative disables
	// retries entirely.
	MaxRetries int
	// BackoffBase is the first retry delay; each retry doubles it up to
	// BackoffMax, with ±50% jitter (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter seeds the backoff jitter; nil uses an unseeded source. Tests
	// pass a seeded source for reproducible schedules.
	Jitter *rand.Rand
	// OpBudget, when positive, gives every operation an end-to-end time
	// budget: the WHOLE operation — all retries, backoff sleeps, and
	// reconnects included — must finish within it. The remaining budget is
	// carried to the server in an OpBudget envelope (shrinking on every
	// attempt, since the deadline is absolute client-side), so the server
	// stops working the moment the caller's patience is spent instead of
	// finishing results nobody will read. Zero disables budgets; OpTimeout
	// still bounds each individual round trip either way.
	OpBudget time.Duration
	// ProbeTimeout bounds the pre-auth availability/resolve probes issued
	// through this client's options (default 2s). Probes are how failover
	// clients notice drained or stalled mates, so they must never inherit
	// the much larger OpTimeout.
	ProbeTimeout time.Duration
	// Dialer replaces the TCP dialer, e.g. with a faultnet.Net.Dial for
	// fault-injection tests. nil dials plain TCP with DialTimeout.
	Dialer func(network, addr string) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.Jitter == nil {
		o.Jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	return o
}

// Client is an authenticated connection to a server. Requests are
// serialized; one Client supports concurrent callers. The client survives
// transport faults: every operation runs under a deadline, retryable
// failures of idempotent operations are retried with exponential backoff,
// and a broken connection is transparently redialed, re-authenticated, and
// its RemoteDB handles re-opened.
type Client struct {
	mu     sync.Mutex
	opts   Options
	addr   string
	user   string
	secret string

	conn   net.Conn
	broken bool
	closed bool
	// dbs are the live remote handles to rebind after a reconnect.
	dbs map[*RemoteDB]struct{}

	// opDeadline is the absolute deadline of the operation in flight (zero:
	// none). It is stamped by whoever owns the budget — withRetry from
	// Options.OpBudget, or a FailoverClient spreading one user budget across
	// mates via setOpDeadline — and every retry, backoff sleep, and wire
	// envelope shrinks against it.
	opDeadline time.Time
	// budgetOwned marks that withRetry stamped opDeadline itself (vs
	// adopting one from a failover client) and must clear it on return.
	budgetOwned bool

	// abandoned and liveConn support CancelInflight: severing an in-flight
	// round trip from OUTSIDE the client lock (the lock is held for the
	// whole op, so a hedge that won elsewhere could never take it).
	abandoned atomic.Bool
	liveConn  atomic.Value // connBox

	// putKey names this client's pipelined-put session; putSeq numbers its
	// batched operations. The server remembers, per (user, key, database),
	// the highest sequence it has durably applied, so a batch re-sent after
	// a reconnect skips the already-applied prefix — exactly-once retry
	// without per-operation acks.
	putKey string
	putSeq uint64
}

// Dial connects and authenticates with default fault-tolerance options.
func Dial(addr, user, secret string) (*Client, error) {
	return DialOptions(addr, user, secret, Options{})
}

// DialOptions connects and authenticates with explicit options. The
// initial dial itself is retried like any idempotent operation, so a
// server momentarily restarting does not fail the caller.
func DialOptions(addr, user, secret string, opts Options) (*Client, error) {
	c := &Client{
		opts:   opts.withDefaults(),
		addr:   addr,
		user:   user,
		secret: secret,
		dbs:    make(map[*RemoteDB]struct{}),
		putKey: nsf.NewUNID().String(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.reconnectLocked(); err == nil {
			return c, nil
		}
		if !Retryable(err) || attempt >= c.opts.MaxRetries {
			return nil, err
		}
		c.backoffLocked(attempt)
	}
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// User returns the authenticated user name.
func (c *Client) User() string { return c.user }

// connBox wraps the live connection for atomic.Value (which cannot hold a
// bare nil interface).
type connBox struct{ conn net.Conn }

// setOpDeadline adopts an absolute deadline for the next operations on
// this client. A failover client uses it to spread ONE user budget across
// mates: the deadline is set before each hop, so each hop's wire envelope
// carries only what remains. Zero clears it.
func (c *Client) setOpDeadline(t time.Time) {
	c.mu.Lock()
	c.opDeadline = t
	c.budgetOwned = false
	c.mu.Unlock()
}

// CancelInflight severs whatever round trip this client currently has in
// flight, without taking the client lock (the in-flight op holds it). The
// op fails with ErrAbandoned — a result nobody is waiting for anymore —
// which callers must treat as neither retryable nor the mate's fault. It
// is how a hedged read cancels the loser.
func (c *Client) CancelInflight() {
	c.abandoned.Store(true)
	if box, ok := c.liveConn.Load().(connBox); ok && box.conn != nil {
		box.conn.Close()
	}
}

// budgetLeftLocked returns the time remaining on the active deadline, or
// (0, false) when no deadline is set.
func (c *Client) budgetLeftLocked() (time.Duration, bool) {
	if c.opDeadline.IsZero() {
		return 0, false
	}
	return time.Until(c.opDeadline), true
}

// breakLocked abandons the current connection: it is closed immediately
// (never leaked) and the next operation redials.
func (c *Client) breakLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.broken = true
}

// backoffLocked sleeps the exponential-backoff delay for a retry attempt
// (0-based), with ±50% jitter so synchronized clients don't stampede a
// recovering server. An active deadline caps the sleep: burning the whole
// remaining budget inside a backoff would guarantee the retry dies.
func (c *Client) backoffLocked(attempt int) {
	d := retry.Backoff{Base: c.opts.BackoffBase, Max: c.opts.BackoffMax, Rand: c.opts.Jitter}.Delay(attempt)
	if rem, ok := c.budgetLeftLocked(); ok {
		if rem <= 0 {
			return
		}
		if d > rem {
			d = rem
		}
	}
	time.Sleep(d)
}

// reconnectLocked dials, authenticates, and re-opens every registered
// remote handle. On return without error the connection is usable.
func (c *Client) reconnectLocked() error {
	c.breakLocked()
	dial := c.opts.Dialer
	if dial == nil {
		dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, c.opts.DialTimeout)
		}
	}
	conn, err := dial("tcp", c.addr)
	if err != nil {
		return fmt.Errorf("wire: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.liveConn.Store(connBox{conn: conn})
	c.broken = false
	hello := NewEnc(OpHello).U32(protocolVersion).Str(c.user).Str(c.secret)
	_, err = c.doLocked(OpHello, hello)
	hello.Release()
	if err != nil {
		c.breakLocked()
		return err
	}
	for db := range c.dbs {
		if err := c.openLocked(db); err != nil {
			var se *ServerError
			var wme *WrongMateError
			if errors.As(err, &se) || errors.As(err, &wme) {
				// The database vanished server-side or moved to another
				// mate; poison only this handle, the session itself is
				// healthy. A failover client turns the poisoned redirect
				// into a re-route on the handle's next use.
				db.stale = err
				continue
			}
			c.breakLocked()
			return err
		}
		db.stale = nil
	}
	return nil
}

// openLocked issues OpOpenDB for db and rebinds its handle fields.
func (c *Client) openLocked(db *RemoteDB) error {
	req := NewEnc(OpOpenDB).Str(db.path)
	d, err := c.doLocked(OpOpenDB, req)
	req.Release()
	if err != nil {
		return err
	}
	handle := d.U32()
	var replica nsf.ReplicaID
	copy(replica[:], d.Raw(8))
	title := d.Str()
	if err := d.Err(); err != nil {
		return err
	}
	db.handle, db.replica, db.title = handle, replica, title
	return nil
}

// doLocked performs one raw round trip on the current connection under the
// per-operation deadline and decodes the response envelope. Any transport
// or framing failure leaves the connection closed and marked broken — a
// half-finished round trip can never be resumed, and an unclosed socket
// would leak.
func (c *Client) doLocked(op Op, req *Enc) (*Dec, error) {
	if c.conn == nil {
		return nil, protoErrorf("no connection")
	}
	connDL := time.Now().Add(c.opts.OpTimeout)
	var budgetMs uint32
	if rem, ok := c.budgetLeftLocked(); ok {
		if rem <= 0 {
			// Budget spent before anything was sent: provably never
			// executed, and the connection is still healthy.
			return nil, &DeadlineError{Op: op}
		}
		// Carry the REMAINING budget (this shrinks across retries and
		// failover hops). The transport deadline gets a small grace past
		// the budget so the server's own StatusDeadlineExceeded response
		// can still arrive and tell us whether the op ran.
		budgetMs = uint32((rem + time.Millisecond - 1) / time.Millisecond)
		if budgetMs == 0 {
			budgetMs = 1
		}
		if bdl := c.opDeadline.Add(deadlineGrace); bdl.Before(connDL) {
			connDL = bdl
		}
	}
	c.conn.SetDeadline(connDL)
	payload, err := c.exchangeLocked(req, budgetMs)
	if err != nil {
		c.breakLocked()
		if _, ok := c.budgetLeftLocked(); ok && !time.Now().Before(c.opDeadline) {
			// The transport fault coincides with budget expiry (typically
			// our own deadline cutting a stalled read): the request may
			// have been received and executed, so the outcome is ambiguous.
			return nil, &DeadlineError{Op: op, Ambiguous: true}
		}
		return nil, err
	}
	c.conn.SetDeadline(time.Time{})
	if len(payload) < 2 {
		c.breakLocked()
		return nil, protoErrorf("short response envelope (%d bytes)", len(payload))
	}
	if payload[0] != byte(op)|respBit {
		c.breakLocked()
		return nil, protoErrorf("response op %#x does not match request %#x", payload[0], byte(op))
	}
	d := NewDec(payload[2:])
	switch payload[1] {
	case StatusOK:
		return d, nil
	case StatusBusy:
		// Admission shed: the request never executed and the connection
		// is healthy. Carry the server's state and availability index so
		// failover logic can redirect.
		state := d.U8()
		idx := d.U32()
		if d.Err() != nil {
			state, idx = StateOpen, 0
		}
		return nil, &BusyError{Op: op, State: state, Availability: int(idx)}
	case StatusWrongMate:
		// Placement redirect: this mate does not home the database and the
		// request never executed. The connection stays healthy; only a
		// failover client (which can switch mates) makes progress on this.
		return nil, decWrongMate(op, d)
	case StatusDeadlineExceeded:
		// The server spent our budget. The stage byte says whether the op
		// provably never ran (refused pre-execution, like a shed) or was
		// aborted mid-flight (ambiguous). The connection stays healthy.
		stage := d.U8()
		if d.Err() != nil {
			stage = DeadlineAborted
		}
		return nil, &DeadlineError{Op: op, Remote: true, Ambiguous: stage == DeadlineAborted}
	default:
		msg := d.Str()
		if d.Err() != nil {
			msg = "unknown server error"
		}
		return nil, &ServerError{Op: op, Msg: msg}
	}
}

// deadlineGrace is how far past an op's budget the transport deadline
// extends: long enough for the server's StatusDeadlineExceeded verdict to
// arrive (it says whether the op ran), short enough that a truly stalled
// mate still fails promptly.
const deadlineGrace = 100 * time.Millisecond

func (c *Client) exchangeLocked(req *Enc, budgetMs uint32) ([]byte, error) {
	var werr error
	if budgetMs > 0 {
		werr = WriteBudgetFrame(c.conn, budgetMs, req.Bytes())
	} else {
		werr = WriteFrame(c.conn, req.Bytes())
	}
	if werr != nil {
		return nil, fmt.Errorf("wire: send: %w", werr)
	}
	payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	return payload, nil
}

// withRetry runs fn (which must perform its round trips via doLocked or
// openLocked) under the client lock with retry, backoff, and transparent
// reconnect. Non-idempotent operations are never re-sent once a round trip
// has started — the request may have executed even though its response was
// lost — but a failed *reconnect* retries regardless, since nothing was
// sent. Server-reported errors never retry.
func (c *Client) withRetry(idempotent bool, fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Stamp the operation's absolute deadline if this client owns its own
	// budget and no outer owner (a failover client) stamped one already.
	if c.opDeadline.IsZero() && c.opts.OpBudget > 0 {
		c.opDeadline = time.Now().Add(c.opts.OpBudget)
		c.budgetOwned = true
	}
	if c.budgetOwned {
		defer func() {
			c.opDeadline = time.Time{}
			c.budgetOwned = false
		}()
	}
	// A cancel aimed at a PREVIOUS op (hedge raced our completion) must not
	// poison this one; in-flight cancels are caught after fn below.
	c.abandoned.Store(false)
	for attempt := 0; ; attempt++ {
		if c.closed {
			return ErrClosed
		}
		if rem, ok := c.budgetLeftLocked(); ok && rem <= 0 && attempt > 0 {
			// Out of budget between attempts. Every prior attempt ended in
			// a provably-not-executed state (shed, refused, or a transport
			// fault on an idempotent op), so this expiry is unambiguous.
			return &DeadlineError{}
		}
		if c.conn == nil || c.broken {
			if err := c.reconnectLocked(); err != nil {
				if c.abandoned.Swap(false) {
					return ErrAbandoned
				}
				if !Retryable(err) || attempt >= c.opts.MaxRetries {
					return err
				}
				c.backoffLocked(attempt)
				continue
			}
		}
		err := fn()
		if c.abandoned.Swap(false) && err != nil {
			// CancelInflight severed this round trip: the caller (a hedged
			// read that won elsewhere) will discard whatever we return, and
			// the mate did nothing wrong. Surface the sentinel instead of a
			// transport fault so failover logic neither retries nor blames.
			return ErrAbandoned
		}
		if err == nil {
			return nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err
		}
		var de *DeadlineError
		if errors.As(err, &de) {
			// Never auto-retried: the expired budget is the same budget a
			// retry would run under, and an ambiguous expiry must reach
			// the caller so non-idempotent ops aren't blindly re-sent.
			return err
		}
		var be *BusyError
		if errors.As(err, &be) {
			// A shed request never executed, so re-sending is safe even
			// for non-idempotent operations; back off to let the server
			// recover (a failover client switches mates instead).
			if attempt >= c.opts.MaxRetries {
				return err
			}
			c.backoffLocked(attempt)
			continue
		}
		if !idempotent || !Retryable(err) || attempt >= c.opts.MaxRetries {
			return err
		}
		c.backoffLocked(attempt)
	}
}

// call runs one operation with retry. build constructs the request per
// attempt (remote handles may have been rebound by a reconnect in between).
// The final attempt's request encoder is released back to the pool; earlier
// attempts' encoders (if build made fresh ones) are left to the GC, and a
// fixed request reused across attempts is released exactly once.
func (c *Client) call(op Op, idempotent bool, build func() (*Enc, error)) (*Dec, error) {
	var d *Dec
	var req *Enc
	err := c.withRetry(idempotent, func() error {
		r, berr := build()
		if berr != nil {
			return berr
		}
		req = r
		var derr error
		d, derr = c.doLocked(op, r)
		return derr
	})
	if req != nil {
		req.Release()
	}
	if err != nil {
		return nil, err
	}
	return d, nil
}

// roundTrip runs one idempotent operation with a fixed request body.
func (c *Client) roundTrip(op Op, req *Enc) (*Dec, error) {
	return c.call(op, true, func() (*Enc, error) { return req, nil })
}

// OpenDB opens a database by path on the server, returning a remote handle.
// The handle stays valid across reconnects: it is re-opened automatically.
func (c *Client) OpenDB(path string) (*RemoteDB, error) {
	db := &RemoteDB{c: c, path: path}
	if err := c.withRetry(true, func() error { return c.openLocked(db) }); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.dbs[db] = struct{}{}
	c.mu.Unlock()
	return db, nil
}

// MailDeposit drops a mail note into the server's mail.box for routing.
// Depositing is not idempotent (a re-sent deposit would route twice), so
// it is never retried once sent.
func (c *Client) MailDeposit(n *nsf.Note) error {
	req := NewEnc(OpMailDeposit).Note(n)
	_, err := c.call(OpMailDeposit, false, func() (*Enc, error) { return req, nil })
	return err
}

// RemoteDB is a handle on a database opened over the wire. It implements
// repl.Peer, so a local replicator can sync against it directly.
type RemoteDB struct {
	c       *Client
	path    string
	handle  uint32
	replica nsf.ReplicaID
	title   string
	// stale is set when a reconnect could not re-open this database; every
	// operation fails with it until a later reconnect succeeds.
	stale error
}

var _ repl.Peer = (*RemoteDB)(nil)

// Title returns the remote database title.
func (r *RemoteDB) Title() string { return r.title }

// Path returns the server-side path the database was opened by.
func (r *RemoteDB) Path() string { return r.path }

// Release forgets the handle client-side: it is no longer re-opened after
// reconnects. There is no server-side close; server handles die with the
// connection.
func (r *RemoteDB) Release() {
	r.c.mu.Lock()
	delete(r.c.dbs, r)
	r.c.mu.Unlock()
}

// call runs one operation against this database's current handle.
func (r *RemoteDB) call(op Op, idempotent bool, build func() *Enc) (*Dec, error) {
	return r.c.call(op, idempotent, func() (*Enc, error) {
		if r.stale != nil {
			return nil, r.stale
		}
		return build(), nil
	})
}

// ReplicaID implements repl.Peer. It asks the server rather than trusting
// the value cached at open time, so it both verifies the link is alive and
// notices a database swapped behind the same path.
func (r *RemoteDB) ReplicaID() (nsf.ReplicaID, error) {
	d, err := r.call(OpReplicaID, true, func() *Enc {
		return NewEnc(OpReplicaID).U32(r.handle)
	})
	if err != nil {
		return nsf.ReplicaID{}, err
	}
	var replica nsf.ReplicaID
	copy(replica[:], d.Raw(8))
	if err := d.Err(); err != nil {
		return nsf.ReplicaID{}, err
	}
	r.replica = replica
	return replica, nil
}

// Get fetches a note with the server enforcing the caller's read access.
func (r *RemoteDB) Get(unid nsf.UNID) (*nsf.Note, error) {
	d, err := r.call(OpGetNote, true, func() *Enc {
		return NewEnc(OpGetNote).U32(r.handle).UNID(unid)
	})
	if err != nil {
		return nil, err
	}
	n := d.Note()
	return n, d.Err()
}

// Create stores a new document. Creation assigns server-side identity, so
// it is not idempotent and is never re-sent after a mid-trip failure.
func (r *RemoteDB) Create(n *nsf.Note) error {
	d, err := r.call(OpCreateNote, false, func() *Enc {
		return NewEnc(OpCreateNote).U32(r.handle).Note(n)
	})
	if err != nil {
		return err
	}
	// The server returns the stored note (with assigned IDs and OID).
	stored := d.Note()
	if err := d.Err(); err != nil {
		return err
	}
	*n = *stored
	return nil
}

// Update stores a modified document. A re-sent update advances the version
// twice, so it is not retried after a mid-trip failure.
func (r *RemoteDB) Update(n *nsf.Note) error {
	d, err := r.call(OpUpdateNote, false, func() *Enc {
		return NewEnc(OpUpdateNote).U32(r.handle).Note(n)
	})
	if err != nil {
		return err
	}
	stored := d.Note()
	if err := d.Err(); err != nil {
		return err
	}
	*n = *stored
	return nil
}

// Delete replaces a document with a deletion stub. Deleting a stub again
// leaves it a stub, so Delete retries safely.
func (r *RemoteDB) Delete(unid nsf.UNID) error {
	_, err := r.call(OpDeleteNote, true, func() *Enc {
		return NewEnc(OpDeleteNote).U32(r.handle).UNID(unid)
	})
	return err
}

// PutBatch stores documents create-or-update in input order through one
// round trip and one server admission slot, with the server amortizing the
// WAL force across the batch (group commit). Zero UNIDs are assigned
// client-side so a re-sent batch targets the same documents.
//
// PutBatch is safely retried even though it writes: each batch carries the
// client's pipelined-put session key and a base sequence number, and the
// server's durable cursor for that session makes a replay skip exactly the
// already-applied prefix. It returns how many documents are durably stored
// server-side (counting ones a retry found already applied); on error,
// exactly the first `stored` documents were stored.
func (r *RemoteDB) PutBatch(notes []*nsf.Note) (stored int, err error) {
	if len(notes) == 0 {
		return 0, nil
	}
	for _, n := range notes {
		if n.OID.UNID.IsZero() {
			n.OID.UNID = nsf.NewUNID()
		}
	}
	// Sequence numbers are claimed once per batch, not per attempt, so a
	// retry re-sends the same (key, base) and dedups server-side.
	r.c.mu.Lock()
	base := r.c.putSeq + 1
	r.c.putSeq += uint64(len(notes))
	key := r.c.putKey
	r.c.mu.Unlock()
	d, err := r.call(OpPutBatch, true, func() *Enc {
		req := NewEnc(OpPutBatch).U32(r.handle).Str(key).U64(base).
			U32(uint32(len(notes)))
		for _, n := range notes {
			req.Note(n)
		}
		return req
	})
	if err != nil {
		return 0, err
	}
	d.U64() // cursor: advisory, implied by applied+skipped
	applied := int(d.U32())
	skipped := int(d.U32())
	ok := d.U8()
	var msg string
	if ok == 0 {
		msg = d.Str()
	}
	if derr := d.Err(); derr != nil {
		return 0, derr
	}
	stored = skipped + applied
	if ok == 0 {
		return stored, &ServerError{Op: OpPutBatch, Msg: msg}
	}
	return stored, nil
}

// DBInfo describes a remote database.
type DBInfo struct {
	Title string
	Notes int
	Pages int
	Views []string
}

// Info fetches the remote database's statistics and view list.
func (r *RemoteDB) Info() (DBInfo, error) {
	d, err := r.call(OpDBInfo, true, func() *Enc {
		return NewEnc(OpDBInfo).U32(r.handle)
	})
	if err != nil {
		return DBInfo{}, err
	}
	info := DBInfo{
		Title: d.Str(),
		Notes: int(d.U32()),
		Pages: int(d.U32()),
	}
	count := int(d.U32())
	for i := 0; i < count && d.Err() == nil; i++ {
		info.Views = append(info.Views, d.Str())
	}
	return info, d.Err()
}

// Summaries implements repl.Peer. Listing versions writes nothing, so it
// retries safely.
func (r *RemoteDB) Summaries(since nsf.Timestamp, formulaSrc string) ([]repl.Summary, nsf.Timestamp, error) {
	d, err := r.call(OpSummaries, true, func() *Enc {
		return NewEnc(OpSummaries).U32(r.handle).U64(uint64(since)).Str(formulaSrc)
	})
	if err != nil {
		return nil, 0, err
	}
	now := nsf.Timestamp(d.U64())
	count := d.U32()
	// A summary encodes to 33 fixed bytes; clamp the preallocation to what
	// the payload could actually hold so a corrupt count can't demand
	// gigabytes up front.
	out := make([]repl.Summary, 0, d.Cap(count, 33))
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		out = append(out, d.Summary())
	}
	return out, now, d.Err()
}

// Fetch implements repl.Peer.
func (r *RemoteDB) Fetch(unids []nsf.UNID) ([]*nsf.Note, error) {
	d, err := r.call(OpFetch, true, func() *Enc {
		req := NewEnc(OpFetch).U32(r.handle).U32(uint32(len(unids)))
		for _, u := range unids {
			req.UNID(u)
		}
		return req
	})
	if err != nil {
		return nil, err
	}
	count := d.U32()
	// Clamp the count-sized preallocation: an encoded note is at least a
	// one-byte length prefix plus a byte of body.
	out := make([]*nsf.Note, 0, d.Cap(count, 2))
	for i := uint32(0); i < count && d.Err() == nil; i++ {
		out = append(out, d.Note())
	}
	return out, d.Err()
}

// Apply implements repl.Peer. Applying a replication batch is idempotent
// by the OID rules (a note already present is skipped; conflict documents
// have deterministic UNIDs), so a batch whose response was lost can be
// re-sent safely.
func (r *RemoteDB) Apply(notes []*nsf.Note) (repl.ApplyStats, error) {
	d, err := r.call(OpApply, true, func() *Enc {
		req := NewEnc(OpApply).U32(r.handle).U32(uint32(len(notes)))
		for _, n := range notes {
			req.Note(n)
		}
		return req
	})
	if err != nil {
		return repl.ApplyStats{}, err
	}
	st := d.ApplyStats()
	return st, d.Err()
}
