package wire

import "repro/internal/mesh"

// MeshStatus lists the server's replication-mesh links with their live
// scheduling and transfer counters.
func (c *Client) MeshStatus() ([]mesh.LinkStatus, error) {
	d, err := c.call(OpMeshStatus, true, func() (*Enc, error) {
		return NewEnc(OpMeshStatus), nil
	})
	if err != nil {
		return nil, err
	}
	count := int(d.U32())
	out := make([]mesh.LinkStatus, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		out = append(out, d.MeshLinkStatus())
	}
	return out, d.Err()
}

// MeshAdd adds a replication-mesh link on the server. The server validates
// the link (including compiling its selection formula) before starting it.
// Adding is idempotent-safe to retry: a duplicate name fails cleanly.
func (c *Client) MeshAdd(l mesh.Link) error {
	_, err := c.call(OpMeshAdd, false, func() (*Enc, error) {
		return NewEnc(OpMeshAdd).MeshLink(l), nil
	})
	return err
}

// MeshRemove removes a replication-mesh link by name.
func (c *Client) MeshRemove(name string) error {
	_, err := c.call(OpMeshRemove, false, func() (*Enc, error) {
		return NewEnc(OpMeshRemove).Str(name), nil
	})
	return err
}
