//go:build race

package wire

// raceEnabled reports whether the race detector is instrumenting this build.
// Allocation-count assertions are skipped under -race: the detector adds
// its own per-op allocations, which are not the regression being guarded.
const raceEnabled = true
