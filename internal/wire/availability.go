package wire

import (
	"net"
	"time"
)

// AvailabilityInfo is a server's self-reported load snapshot, the Domino
// "server availability index" made concrete: 100 means idle, 0 means
// saturated or draining. Clients use it to pick the least-loaded cluster
// mate; the admission layer attaches it to busy responses so even a shed
// request teaches the client where not to go next.
type AvailabilityInfo struct {
	// State is StateOpen or StateRestricted (quiescing/draining).
	State byte
	// Index is the availability index, 0..100.
	Index int
	// InFlight is the number of requests currently executing.
	InFlight int
	// Queued is the number of requests waiting for an admission slot.
	Queued int
	// Latency is the server's recent per-request latency estimate (EWMA).
	Latency time.Duration
}

// Restricted reports whether the server is refusing new work.
func (a AvailabilityInfo) Restricted() bool { return a.State == StateRestricted }

// DefaultProbeTimeout bounds one-shot pre-auth probes (availability,
// resolve) when the caller passes no explicit timeout. It is deliberately
// much smaller than the default OpTimeout: probes exist to notice stalled
// mates, and a probe that waits 30s on a wedged socket defeats itself.
// Configure per client via Options.ProbeTimeout.
const DefaultProbeTimeout = 2 * time.Second

// decAvailability parses the OpAvailability response body.
func decAvailability(d *Dec) (AvailabilityInfo, error) {
	info := AvailabilityInfo{
		State:    d.U8(),
		Index:    int(d.U32()),
		InFlight: int(d.U32()),
		Queued:   int(d.U32()),
	}
	info.Latency = time.Duration(d.U64()) * time.Microsecond
	return info, d.Err()
}

// Availability asks the server for its current availability index over the
// established session. Reading load is idempotent and retries safely.
func (c *Client) Availability() (AvailabilityInfo, error) {
	d, err := c.roundTrip(OpAvailability, NewEnc(OpAvailability))
	if err != nil {
		return AvailabilityInfo{}, err
	}
	return decAvailability(d)
}

// ProbeAvailability performs a one-shot, unauthenticated health probe: it
// dials addr, issues OpAvailability, and closes. The whole probe is bounded
// by timeout (<= 0 uses DefaultProbeTimeout). dialer nil dials plain TCP —
// failover clients pass their fault-injection dialer so probes see the same
// network the session does.
func ProbeAvailability(addr string, dialer func(network, addr string) (net.Conn, error), timeout time.Duration) (AvailabilityInfo, error) {
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	if dialer == nil {
		dialer = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, timeout)
		}
	}
	conn, err := dialer("tcp", addr)
	if err != nil {
		return AvailabilityInfo{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, NewEnc(OpAvailability).Bytes()); err != nil {
		return AvailabilityInfo{}, err
	}
	payload, err := ReadFrame(conn)
	if err != nil {
		return AvailabilityInfo{}, err
	}
	if len(payload) < 2 || payload[0] != byte(OpAvailability)|respBit {
		return AvailabilityInfo{}, protoErrorf("bad availability probe response")
	}
	if payload[1] != StatusOK {
		return AvailabilityInfo{}, &ServerError{Op: OpAvailability, Msg: "probe refused"}
	}
	return decAvailability(NewDec(payload[2:]))
}
