package wire

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/nsf"
	"repro/internal/repl"
)

// Enc builds a message payload. Encoders come from an internal pool:
// callers that fully own an Enc (it was written to the wire and will not be
// touched again) should Release it so its grown buffer is reused instead of
// reallocated per message. Never releasing is safe — the GC collects the
// encoder — it just forfeits the reuse.
type Enc struct{ buf []byte }

// encPool recycles encoders (and, through them, their grown buffers).
var encPool = sync.Pool{New: func() any { return new(Enc) }}

// maxPooledEnc caps the buffer size worth pooling, so one huge message
// cannot pin a huge buffer in the pool.
const maxPooledEnc = 1 << 20

// NewEnc starts a request payload with the given op.
func NewEnc(op Op) *Enc {
	e := encPool.Get().(*Enc)
	e.buf = append(e.buf[:0], byte(op))
	return e
}

// NewResp starts a response payload for op with a status byte.
func NewResp(op Op, status byte) *Enc {
	e := encPool.Get().(*Enc)
	e.buf = append(e.buf[:0], byte(op)|respBit, status)
	return e
}

// Release returns the encoder to the pool. The caller must not use (or
// re-release) it afterwards.
func (e *Enc) Release() {
	if e == nil || cap(e.buf) > maxPooledEnc {
		return
	}
	encPool.Put(e)
}

// Bytes returns the accumulated payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends a byte.
func (e *Enc) U8(v byte) *Enc { e.buf = append(e.buf, v); return e }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) *Enc {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
	return e
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) *Enc {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	return e
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) *Enc {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// Blob appends a length-prefixed byte slice.
func (e *Enc) Blob(b []byte) *Enc {
	e.buf = binary.AppendUvarint(e.buf, uint64(len(b)))
	e.buf = append(e.buf, b...)
	return e
}

// UNID appends a 16-byte UNID.
func (e *Enc) UNID(u nsf.UNID) *Enc { e.buf = append(e.buf, u[:]...); return e }

// Raw appends bytes without a length prefix (fixed-size fields).
func (e *Enc) Raw(b []byte) *Enc { e.buf = append(e.buf, b...); return e }

// noteEncPool recycles the scratch buffer notes are encoded into before
// being length-prefixed onto the payload.
var noteEncPool = sync.Pool{New: func() any { return new([]byte) }}

// Note appends an encoded note as a blob. The encoding runs through a
// pooled scratch buffer, so serializing notes allocates nothing in steady
// state.
func (e *Enc) Note(n *nsf.Note) *Enc {
	bp := noteEncPool.Get().(*[]byte)
	enc := nsf.AppendNote((*bp)[:0], n)
	e.Blob(enc)
	if cap(enc) <= maxPooledEnc {
		*bp = enc
	}
	noteEncPool.Put(bp)
	return e
}

// Value appends a typed item value as a blob, in the canonical nsf value
// encoding. Like Note, the encoding runs through a pooled scratch buffer.
func (e *Enc) Value(v nsf.Value) *Enc {
	bp := noteEncPool.Get().(*[]byte)
	enc := nsf.AppendValue((*bp)[:0], v)
	e.Blob(enc)
	if cap(enc) <= maxPooledEnc {
		*bp = enc
	}
	noteEncPool.Put(bp)
	return e
}

// Summary appends a replication summary. Deleted and SelStub travel as a
// flags byte (bit 0 deleted, bit 1 selection stub).
func (e *Enc) Summary(s repl.Summary) *Enc {
	e.UNID(s.UNID).U32(s.Seq).U64(uint64(s.SeqTime)).U32(uint32(s.Class))
	var flags uint8
	if s.Deleted {
		flags |= 1
	}
	if s.SelStub {
		flags |= 2
	}
	return e.U8(flags)
}

// ApplyStats appends replication apply statistics.
func (e *Enc) ApplyStats(s repl.ApplyStats) *Enc {
	return e.U32(uint32(s.Added)).U32(uint32(s.Updated)).U32(uint32(s.Deleted)).
		U32(uint32(s.Conflicts)).U32(uint32(s.Merged)).U32(uint32(s.Skipped))
}

// Dec parses a message payload.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps a payload (after the op/status prefix has been consumed by
// the caller).
func NewDec(buf []byte) *Dec { return &Dec{buf: buf} }

// Err returns the first decoding error.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated message at offset %d", d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a byte.
func (d *Dec) U8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte slice (aliasing the payload).
func (d *Dec) Blob() []byte {
	if d.err != nil {
		return nil
	}
	n, sz := binary.Uvarint(d.buf[d.off:])
	if sz <= 0 || n > MaxFrame {
		d.fail("bad length at offset %d", d.off)
		return nil
	}
	d.off += sz
	return d.take(int(n))
}

// UNID reads a 16-byte UNID.
func (d *Dec) UNID() nsf.UNID {
	var u nsf.UNID
	copy(u[:], d.take(16))
	return u
}

// Raw reads n bytes without a length prefix.
func (d *Dec) Raw(n int) []byte { return d.take(n) }

// Note reads an encoded note.
func (d *Dec) Note() *nsf.Note {
	b := d.Blob()
	if d.err != nil {
		return nil
	}
	n, err := nsf.DecodeNote(b)
	if err != nil {
		d.fail("bad note: %v", err)
		return nil
	}
	return n
}

// Value reads a typed item value appended by Enc.Value.
func (d *Dec) Value() nsf.Value {
	b := d.Blob()
	if d.err != nil {
		return nsf.Value{}
	}
	v, err := nsf.DecodeValue(b)
	if err != nil {
		d.fail("bad value: %v", err)
		return nsf.Value{}
	}
	return v
}

// Cap clamps an untrusted element count to what the remaining payload
// bytes could possibly encode, given a minimum encoded size per element.
// Preallocations sized by a peer-supplied count MUST go through this: a
// single corrupt 4-byte count would otherwise demand gigabytes before the
// first element fails to parse.
func (d *Dec) Cap(count uint32, minElem int) int {
	if minElem < 1 {
		minElem = 1
	}
	max := d.Remaining() / minElem
	if int(count) > max || int(count) < 0 {
		return max
	}
	return int(count)
}

// Summary reads a replication summary.
func (d *Dec) Summary() repl.Summary {
	s := repl.Summary{
		UNID:    d.UNID(),
		Seq:     d.U32(),
		SeqTime: nsf.Timestamp(d.U64()),
		Class:   nsf.NoteClass(d.U32()),
	}
	flags := d.U8()
	s.Deleted = flags&1 != 0
	s.SelStub = flags&2 != 0
	return s
}

// ApplyStats reads replication apply statistics.
func (d *Dec) ApplyStats() repl.ApplyStats {
	return repl.ApplyStats{
		Added:     int(d.U32()),
		Updated:   int(d.U32()),
		Deleted:   int(d.U32()),
		Conflicts: int(d.U32()),
		Merged:    int(d.U32()),
		Skipped:   int(d.U32()),
	}
}

// Remaining reports unread bytes.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }
