package wire

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nsf"
)

// deadlineResp builds a scripted StatusDeadlineExceeded response for the
// (inner) request payload, with the given stage byte.
func deadlineResp(inner []byte, stage byte) []byte {
	return NewResp(Op(inner[0]), StatusDeadlineExceeded).U8(stage).Bytes()
}

// TestDeadlineExceededNotResent: a deadline expiry mid-op is ambiguous —
// the server may or may not have executed the write — so the client must
// NOT auto-resend a non-idempotent create, even with retries enabled. A
// busy shed on the very same connection (provably never executed) still
// is resent: the contrast is the point.
func TestDeadlineExceededNotResent(t *testing.T) {
	var creates atomic.Int32
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		switch {
		case Op(inner[0]) == OpOpenDB:
			return openOK(conn, inner)
		case creates.Add(1) == 1:
			// First create: the deadline died mid-op. Ambiguous.
			return WriteFrame(conn, deadlineResp(inner, DeadlineAborted)) == nil
		default:
			n := nsf.NewNote(nsf.ClassDocument)
			return WriteFrame(conn, NewResp(OpCreateNote, StatusOK).Note(n).Bytes()) == nil
		}
	})
	c, err := DialOptions(addr, "u", "s", fastOpts()) // retries ON
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	err = db.Create(nsf.NewNote(nsf.ClassDocument))
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("create after deadline expiry: err = %v, want DeadlineError", err)
	}
	if !de.Remote || !de.Ambiguous {
		t.Errorf("DeadlineError = %+v, want Remote and Ambiguous", de)
	}
	if !errors.Is(err, ErrDeadline) {
		t.Error("DeadlineError does not match ErrDeadline")
	}
	if Retryable(err) {
		t.Error("ambiguous deadline expiry classified retryable")
	}
	if got := creates.Load(); got != 1 {
		t.Errorf("server saw %d creates, want 1 (no auto-resend)", got)
	}
	// Contrast: a second create succeeds — the connection is healthy, the
	// client just refused to guess about the first one.
	if err := db.Create(nsf.NewNote(nsf.ClassDocument)); err != nil {
		t.Fatalf("create after deadline error: %v", err)
	}
}

// TestDeadlineRefusedIsUnambiguous: a DeadlineRefused response (the server
// shed the request before executing it) surfaces as a non-ambiguous
// DeadlineError — the caller knows the op never ran.
func TestDeadlineRefusedIsUnambiguous(t *testing.T) {
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		return WriteFrame(conn, deadlineResp(inner, DeadlineRefused)) == nil
	})
	c, err := DialOptions(addr, "u", "s", noRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Info()
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlineError", err)
	}
	if !de.Remote || de.Ambiguous {
		t.Errorf("DeadlineError = %+v, want Remote and not Ambiguous", de)
	}
}

// TestBudgetShrinksAcrossFailover: the wire budget a mate receives is the
// time REMAINING, not the original allowance — a 400ms user budget spent
// partly on a slow first mate must arrive at the second mate smaller, so
// failover can never stretch the user's deadline to budget x mates.
func TestBudgetShrinksAcrossFailover(t *testing.T) {
	var b1, b2 atomic.Uint32
	mate1 := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		budget, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		// First capture only: the breaker cooldown may route later
		// attempts of the same op back here with even less budget.
		b1.CompareAndSwap(0, budget)
		time.Sleep(80 * time.Millisecond) // burn budget before shedding
		return WriteFrame(conn, busyResp(inner, StateOpen, 5)) == nil
	})
	mate2 := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		budget, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		b2.CompareAndSwap(0, budget)
		return WriteFrame(conn, busyResp(inner, StateOpen, 5)) == nil
	})
	opts := failoverTestOpts()
	opts.Client.OpBudget = 400 * time.Millisecond
	fc, err := DialFailover([]string{mate1, mate2}, "u", "s", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	db.Info() // both mates shed; the op fails — only the budgets matter here
	got1, got2 := b1.Load(), b2.Load()
	if got1 == 0 || got2 == 0 {
		t.Fatalf("budgets not captured: mate1 %d ms, mate2 %d ms", got1, got2)
	}
	if got2 >= got1 {
		t.Errorf("budget did not shrink across failover: mate1 %d ms, mate2 %d ms", got1, got2)
	}
	if got1 > 400 {
		t.Errorf("mate1 budget %d ms exceeds the 400 ms allowance", got1)
	}
}

// TestHedgedReadWinsOverSlowMate: with hedged reads on, a read parked on a
// slow mate is raced against a second mate after the hedge delay; the fast
// response wins, the slow primary is cancelled, and the caller sees
// fast-mate latency instead of slow-mate latency.
func TestHedgedReadWinsOverSlowMate(t *testing.T) {
	note := nsf.NewNote(nsf.ClassDocument)
	slowAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		time.Sleep(500 * time.Millisecond) // the mate everyone waits on
		return WriteFrame(conn, NewResp(OpGetNote, StatusOK).Note(note).Bytes()) == nil
	})
	fastAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		return WriteFrame(conn, NewResp(OpGetNote, StatusOK).Note(note).Bytes()) == nil
	})
	opts := failoverTestOpts()
	opts.Client.OpBudget = 2 * time.Second
	opts.HedgeReads = true
	opts.HedgeDelay = 10 * time.Millisecond
	opts.HedgeRateCap = 1.0
	fc, err := DialFailover([]string{slowAddr, fastAddr}, "u", "s", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := db.Get(note.OID.UNID); err != nil {
		t.Fatalf("hedged get: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("hedged read took %v, want well under the slow mate's 500ms", elapsed)
	}
	st := fc.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Errorf("stats = hedges %d wins %d, want both > 0", st.Hedges, st.HedgeWins)
	}
}

// TestClientBudgetExpiryPreSend: with the budget already spent, the client
// refuses locally — unambiguous (never sent) — without touching the wire.
func TestClientBudgetExpiryPreSend(t *testing.T) {
	var ops atomic.Int32
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			ops.Add(1)
			return openOK(conn, inner)
		}
		ops.Add(1)
		time.Sleep(50 * time.Millisecond)
		return WriteFrame(conn, busyResp(inner, StateOpen, 50)) == nil
	})
	o := fastOpts()
	o.OpBudget = 30 * time.Millisecond
	c, err := DialOptions(addr, "u", "s", o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = db.Info()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want deadline expiry", err)
	}
	// The 30ms budget bounds the whole retry ladder: well under OpTimeout
	// (500ms) and nowhere near budget x retries.
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("budgeted op took %v, budget did not bound retries", elapsed)
	}
}

// TestBudgetAbandonThenRecover: after a client-side budget expiry abandons
// a connection mid-op, the next operation must redial and succeed — one
// stalled exchange must not poison the session.
func TestBudgetAbandonThenRecover(t *testing.T) {
	var slowDone atomic.Bool
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		if slowDone.CompareAndSwap(false, true) {
			time.Sleep(400 * time.Millisecond) // past the budget
		}
		n := nsf.NewNote(nsf.ClassDocument)
		return WriteFrame(conn, NewResp(OpCreateNote, StatusOK).Note(n).Bytes()) == nil
	})
	o := fastOpts()
	o.OpBudget = 80 * time.Millisecond
	c, err := DialOptions(addr, "u", "s", o)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(nsf.NewNote(nsf.ClassDocument)); err == nil {
		t.Fatal("slow create unexpectedly beat the budget")
	}
	for i := 0; i < 3; i++ {
		if err := db.Create(nsf.NewNote(nsf.ClassDocument)); err != nil {
			t.Fatalf("create %d after budget abandonment: %v", i, err)
		}
	}
}

// TestLocalExpiryOpensBreaker: a LOCAL mid-op budget expiry (our deadline
// cut a stalled mate) counts against that mate's breaker, so the next
// operation runs on a healthy mate instead of feeding the stall another
// budget. The expired op itself still surfaces its ambiguous verdict.
func TestLocalExpiryOpensBreaker(t *testing.T) {
	stalled := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		switch Op(inner[0]) {
		case OpOpenDB:
			return openOK(conn, inner)
		case OpCreateNote:
			time.Sleep(5 * time.Second) // never answers within any budget
			return false
		default:
			// Answer bookkeeping ops (the eager placement resolve on
			// OpenDB) promptly so only the data op eats the budget.
			return WriteFrame(conn, NewResp(Op(inner[0]), StatusError).Str("no").Bytes()) == nil
		}
	})
	healthy := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		_, inner, err := SplitBudget(payload)
		if err != nil {
			return false
		}
		if Op(inner[0]) == OpOpenDB {
			return openOK(conn, inner)
		}
		n := nsf.NewNote(nsf.ClassDocument)
		return WriteFrame(conn, NewResp(OpCreateNote, StatusOK).Note(n).Bytes()) == nil
	})
	opts := failoverTestOpts()
	opts.Client.OpBudget = 100 * time.Millisecond
	opts.FailThreshold = 1 // one eaten budget opens the breaker
	fc, err := DialFailover([]string{stalled, healthy}, "u", "s", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	err = db.Create(nsf.NewNote(nsf.ClassDocument))
	var de *DeadlineError
	if !errors.As(err, &de) || de.Remote || !de.Ambiguous {
		t.Fatalf("create on stalled mate: err = %v, want local ambiguous DeadlineError", err)
	}
	// The next op must land on the healthy mate well inside one budget.
	start := time.Now()
	if err := db.Create(nsf.NewNote(nsf.ClassDocument)); err != nil {
		t.Fatalf("create after breaker: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("post-expiry create took %v — client fed the stalled mate again", elapsed)
	}
}

// TestBudgetFrameRoundTrip pins the envelope encoding: WriteBudgetFrame
// prepends exactly [OpBudget][u32 ms] and SplitBudget strips it, passing
// unbudgeted payloads through untouched.
func TestBudgetFrameRoundTrip(t *testing.T) {
	inner := NewEnc(OpDBInfo).U32(7).Bytes()
	left, right := net.Pipe()
	defer left.Close()
	defer right.Close()
	go WriteBudgetFrame(left, 1234, inner)
	payload, err := ReadFrame(right)
	if err != nil {
		t.Fatal(err)
	}
	budget, got, err := SplitBudget(payload)
	if err != nil {
		t.Fatal(err)
	}
	if budget != 1234 {
		t.Errorf("budget = %d, want 1234", budget)
	}
	if string(got) != string(inner) {
		t.Errorf("inner payload corrupted by budget envelope")
	}
	// Passthrough: no envelope, budget 0, payload unchanged.
	budget, got, err = SplitBudget(inner)
	if err != nil || budget != 0 || string(got) != string(inner) {
		t.Errorf("passthrough = (%d, %q, %v), want (0, original, nil)", budget, got, err)
	}
}
