package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
)

// ServerError is an application-level failure reported by the server in a
// well-formed response (bad handle, access denied, unknown path, failed
// authentication). The connection that carried it is still healthy, and
// retrying the same request would fail the same way, so ServerErrors are
// never retried.
type ServerError struct {
	Op  Op
	Msg string
}

func (e *ServerError) Error() string { return "wire: server: " + e.Msg }

// BusyError is an admission-control shed (StatusBusy): the server refused
// the request before executing it. Unlike a transport fault, the request
// definitely did NOT run, so re-sending is safe even for non-idempotent
// operations. The carried state and availability index let a failover
// client pick a better cluster mate instead of hammering a loaded one.
type BusyError struct {
	Op Op
	// State is StateOpen (overloaded but serving) or StateRestricted
	// (quiescing/draining — the server wants clients to leave).
	State byte
	// Availability is the server's availability index, 0 (saturated or
	// draining) to 100 (idle).
	Availability int
}

func (e *BusyError) Error() string {
	kind := "busy"
	if e.State == StateRestricted {
		kind = "restricted"
	}
	return fmt.Sprintf("wire: server %s (availability %d)", kind, e.Availability)
}

// ErrServerBusy matches any BusyError via errors.Is.
var ErrServerBusy = errors.New("wire: server busy")

// Is lets errors.Is(err, ErrServerBusy) match shed responses.
func (e *BusyError) Is(target error) bool { return target == ErrServerBusy }

// HomeAddr is one entry of a resolved placement: a cluster-mate name and the
// wire address it serves on (empty if the resolving server does not know it).
type HomeAddr struct {
	Name string
	Addr string
}

// WrongMateError is a placement redirect (StatusWrongMate): the contacted
// mate does not home the database, and the request was NOT executed. The
// error carries the placement generation and home set the server knows, so a
// failover client can refresh its cache and re-route; like a busy shed,
// re-sending is safe even for non-idempotent operations. A bare Client does
// not retry these — routing is the FailoverClient's job.
type WrongMateError struct {
	Op   Op
	Path string
	// Generation is the placement generation at the redirecting server.
	Generation uint64
	// Homes is the home set: the mates that do serve the database.
	Homes []HomeAddr
}

func (e *WrongMateError) Error() string {
	return fmt.Sprintf("wire: wrong mate for %s (placement generation %d, %d homes)",
		e.Path, e.Generation, len(e.Homes))
}

// ErrWrongMate matches any WrongMateError via errors.Is.
var ErrWrongMate = errors.New("wire: wrong mate")

// Is lets errors.Is(err, ErrWrongMate) match placement redirects.
func (e *WrongMateError) Is(target error) bool { return target == ErrWrongMate }

// DeadlineError is a deadline-budget expiry (client- or server-side). The
// Ambiguous flag is the whole point: an op whose budget expired BEFORE it
// was sent (or that the server refused pre-execution) provably never ran,
// but one cancelled mid-round-trip or mid-execution may have partially —
// or, with only the response lost, fully — taken effect. Clients must
// therefore never blindly re-send a non-idempotent op after an ambiguous
// expiry; this is the opposite of a BusyError, which is always safe to
// re-send. Deadline errors are never auto-retried at all: the budget that
// expired is the same budget a retry would run under.
type DeadlineError struct {
	Op Op
	// Ambiguous reports that the op may have (partially) executed.
	Ambiguous bool
	// Remote reports that the server diagnosed the expiry (vs the client
	// exhausting the budget before or during the round trip).
	Remote bool
}

func (e *DeadlineError) Error() string {
	where := "client"
	if e.Remote {
		where = "server"
	}
	kind := "before execution (not executed)"
	if e.Ambiguous {
		kind = "mid-operation (may have executed)"
	}
	return fmt.Sprintf("wire: deadline exceeded at %s %s", where, kind)
}

// ErrDeadline matches any DeadlineError via errors.Is.
var ErrDeadline = errors.New("wire: deadline exceeded")

// Is lets errors.Is(err, ErrDeadline) match budget expiries.
func (e *DeadlineError) Is(target error) bool { return target == ErrDeadline }

// ErrAbandoned is returned by an operation severed out-of-band with
// Client.CancelInflight: a hedged read won on another mate and nobody is
// waiting for this one anymore. The mate is not at fault and the result —
// had it arrived — would have been discarded, so the error is never
// retried and never counts against a mate's breaker.
var ErrAbandoned = errors.New("wire: operation abandoned (hedge won elsewhere)")

// ErrClosed is returned by operations on a client after Close.
var ErrClosed = errors.New("wire: client closed")

// protoError marks a framing/envelope violation (response op mismatch,
// short envelope): the byte stream is out of sync and the connection must
// be abandoned, but a fresh connection may well succeed.
type protoError struct{ msg string }

func (e *protoError) Error() string { return "wire: protocol: " + e.msg }

func protoErrorf(format string, args ...any) error {
	return &protoError{msg: fmt.Sprintf(format, args...)}
}

// Retryable classifies an error from a wire operation: true for transport
// faults where a fresh connection plus a re-sent request can succeed
// (timeouts, resets, EOF mid-frame, refused dials, protocol desync), false
// for server-reported application errors and everything unrecognized.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *ServerError
	if errors.As(err, &se) {
		return false
	}
	var wme *WrongMateError
	if errors.As(err, &wme) {
		// Retrying on the SAME connection would redirect again; only a
		// failover client, which can change mates, can make progress.
		return false
	}
	var be *BusyError
	if errors.As(err, &be) {
		// The request was shed before execution; a retry (after backoff,
		// or on another mate) can succeed.
		return true
	}
	var pe *protoError
	if errors.As(err, &pe) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		// Covers *net.OpError (resets, refusals, injected faultnet
		// faults) and deadline expiries.
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNABORTED) {
		return true
	}
	return false
}
