package wire

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nsf"
	"repro/internal/repl"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{},
		{1},
		bytes.Repeat([]byte("x"), 100000),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Error("oversized write accepted")
	}
	// A hostile header claiming an enormous frame must be rejected before
	// allocation.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hostile)); err == nil {
		t.Error("hostile frame header accepted")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, []byte("hello world"))
	raw := buf.Bytes()[:8] // header + partial body
	if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
		t.Error("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream error = %v, want EOF", io.EOF)
	}
}

func TestCodecScalars(t *testing.T) {
	e := NewEnc(OpHello)
	e.U8(7).U32(0xDEADBEEF).U64(1<<62 + 5).Str("héllo").Blob([]byte{1, 2, 3})
	u := nsf.NewUNID()
	e.UNID(u).Raw([]byte{9, 9})
	payload := e.Bytes()
	if Op(payload[0]) != OpHello {
		t.Fatalf("op byte = %#x", payload[0])
	}
	d := NewDec(payload[1:])
	if got := d.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<62+5 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.Str(); got != "héllo" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := d.UNID(); got != u {
		t.Errorf("UNID = %v", got)
	}
	if got := d.Raw(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Errorf("Raw = %v", got)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestCodecNoteAndSummary(t *testing.T) {
	n := nsf.NewNote(nsf.ClassDocument)
	n.ID = 12
	n.OID.Seq = 3
	n.OID.SeqTime = 999
	n.SetText("Subject", "wire trip")
	s := repl.SummaryOf(n)
	st := repl.ApplyStats{Added: 1, Updated: 2, Deleted: 3, Conflicts: 4, Merged: 5, Skipped: 6}

	e := NewEnc(OpApply).Note(n).Summary(s).ApplyStats(st)
	d := NewDec(e.Bytes()[1:])
	gotN := d.Note()
	gotS := d.Summary()
	gotSt := d.ApplyStats()
	if d.Err() != nil {
		t.Fatalf("decode: %v", d.Err())
	}
	if gotN.Text("Subject") != "wire trip" || gotN.OID != n.OID || gotN.ID != n.ID {
		t.Errorf("note mismatch: %+v", gotN)
	}
	if gotS != s {
		t.Errorf("summary = %+v, want %+v", gotS, s)
	}
	if gotSt != st {
		t.Errorf("stats = %+v, want %+v", gotSt, st)
	}
}

func TestDecErrorsStickAndPropagate(t *testing.T) {
	d := NewDec([]byte{1})
	_ = d.U32() // too short: sets the error
	if d.Err() == nil {
		t.Fatal("short read did not error")
	}
	// All subsequent reads return zero values without panicking.
	if d.U8() != 0 || d.U64() != 0 || d.Str() != "" || d.Blob() != nil || d.Note() != nil {
		t.Error("reads after error returned data")
	}
}

func TestDecRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		d := NewDec(buf)
		// Exercise every reader; none may panic.
		d.U8()
		d.Str()
		d.Summary()
		d.Note()
		d.ApplyStats()
	}
}

func TestDecBlobRejectsHugeLength(t *testing.T) {
	// A uvarint length far beyond the frame cap must error cleanly.
	e := NewEnc(OpHello)
	e.buf = append(e.buf, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
	d := NewDec(e.Bytes()[1:])
	if d.Blob() != nil || d.Err() == nil {
		t.Error("huge blob length accepted")
	}
}

func TestStrHandlesLongStrings(t *testing.T) {
	long := strings.Repeat("a", 1<<16)
	e := NewEnc(OpHello).Str(long)
	d := NewDec(e.Bytes()[1:])
	if got := d.Str(); got != long {
		t.Errorf("long string corrupted: %d bytes", len(got))
	}
}
