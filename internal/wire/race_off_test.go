//go:build !race

package wire

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
