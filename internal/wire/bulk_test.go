package wire

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/nsf"
)

// respBody strips the op/status prefix a response Enc carries, yielding
// the payload a client-side decoder sees.
func respBody(e *Enc) []byte { return append([]byte(nil), e.Bytes()[2:]...) }

func TestViewPageDecode(t *testing.T) {
	u1, u2 := nsf.NewUNID(), nsf.NewUNID()
	e := NewResp(OpViewRows, StatusOK).U32(42).U32(7)
	e.U8(2).Str("Projects").U32(0) // category header
	e.U8(1).U32(1).UNID(u1).U32(2).Str("alpha").Str("x")
	e.U8(1).U32(1).UNID(u2).U32(0) // doc legitimately rendering zero columns
	e.U8(0)                        // end sentinel
	e.U8(1).U32(10)                // more, next
	p, err := decodeViewPage(NewDec(respBody(e)))
	if err != nil {
		t.Fatal(err)
	}
	want := ViewPage{
		Rows: []ViewRow{
			{IsCategory: true, Category: "Projects"},
			{Indent: 1, UNID: u1, Columns: []string{"alpha", "x"}},
			{Indent: 1, UNID: u2},
		},
		Total: 42, Start: 7, Next: 10, More: true,
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("page = %+v, want %+v", p, want)
	}
	// The kind byte keeps the zero-column document a document.
	if p.Rows[2].IsCategory {
		t.Error("zero-column document decoded as category")
	}
}

func TestViewPageBadKind(t *testing.T) {
	e := NewResp(OpViewRows, StatusOK).U32(1).U32(0).U8(9)
	if _, err := decodeViewPage(NewDec(respBody(e))); err == nil {
		t.Error("bad row kind accepted")
	}
}

func TestScanPageDecode(t *testing.T) {
	u := nsf.NewUNID()
	e := NewResp(OpScan, StatusOK)
	e.U8(1).U32(33).UNID(u)
	e.U8(1).Value(nsf.TextValue("hello"))
	e.U8(0) // absent projected column
	e.U8(0) // end sentinel
	e.U8(1).Blob([]byte("cursor-bytes"))
	p, err := decodeScanPage(NewDec(respBody(e)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 1 || !p.More || string(p.Cursor) != "cursor-bytes" {
		t.Fatalf("page = %+v", p)
	}
	r := p.Rows[0]
	if r.NoteID != 33 || r.UNID != u {
		t.Errorf("row identity = %+v", r)
	}
	if r.Values[0].String() != "hello" || r.Values[0].Type != nsf.TypeText {
		t.Errorf("projected value = %+v", r.Values[0])
	}
	if r.Values[1].Type != 0 {
		t.Errorf("absent column has type %d, want 0", r.Values[1].Type)
	}
}

// TestSearchScoreRoundTrip pins the score encoding: IEEE-754 bits, so
// negative and zero scores survive the wire. The earlier fixed-point
// u64(score*1e6) encoding wrapped negatives into huge positives.
func TestSearchScoreRoundTrip(t *testing.T) {
	scores := []float64{2.5, 0, -3.75, 1e-9, -1e-9, math.MaxFloat64}
	e := NewResp(OpSearch, StatusOK).U32(uint32(len(scores))).U32(0)
	us := make([]nsf.UNID, len(scores))
	for i, s := range scores {
		us[i] = nsf.NewUNID()
		e.U8(1).UNID(us[i]).U64(math.Float64bits(s))
	}
	e.U8(0).U8(0).U32(uint32(len(scores)))
	p, err := decodeSearchPage(NewDec(respBody(e)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hits) != len(scores) || p.More {
		t.Fatalf("page = %+v", p)
	}
	for i, h := range p.Hits {
		if h.UNID != us[i] || h.Score != scores[i] {
			t.Errorf("hit %d = (%v, %v), want (%v, %v)", i, h.UNID, h.Score, us[i], scores[i])
		}
	}
}

func TestSearchPageJoinedColumns(t *testing.T) {
	u := nsf.NewUNID()
	e := NewResp(OpSearch, StatusOK).U32(1).U32(0)
	e.U8(1).UNID(u).U64(math.Float64bits(1.5))
	e.U8(1).Value(nsf.TextValue("joined"))
	e.U8(0) // absent column
	e.U8(0).U8(0).U32(1)
	p, err := decodeSearchPage(NewDec(respBody(e)), 2)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Hits[0]
	if h.Values[0].String() != "joined" || h.Values[1].Type != 0 {
		t.Errorf("joined values = %+v", h.Values)
	}
}

// TestUntrustedCountsClamped sends bodies whose leading counts claim
// astronomically more elements than the body carries. Decoders must fail
// cleanly without attempting a count-sized allocation.
func TestUntrustedCountsClamped(t *testing.T) {
	// View row claiming 4 billion columns.
	e := NewResp(OpViewRows, StatusOK).U32(1).U32(0)
	e.U8(1).U32(0).UNID(nsf.NewUNID()).U32(0xFFFFFFFF)
	if _, err := decodeViewPage(NewDec(respBody(e))); err == nil {
		t.Error("truncated view row accepted")
	}

	// Dec.Cap is the clamp every count-sized make() goes through.
	d := NewDec(make([]byte, 64))
	if got := d.Cap(0xFFFFFFFF, 33); got > 64 {
		t.Errorf("Cap(huge, 33) = %d", got)
	}
	if got := d.Cap(2, 16); got != 2 {
		t.Errorf("Cap(2, 16) = %d, want 2", got)
	}
}

// FuzzDecodeBulkPages throws arbitrary bodies at the three bulk-read
// decoders: they must never panic or allocate past the body size.
func FuzzDecodeBulkPages(f *testing.F) {
	u := nsf.NewUNID()
	view := NewResp(OpViewRows, StatusOK).U32(3).U32(0)
	view.U8(2).Str("cat").U32(0)
	view.U8(1).U32(1).UNID(u).U32(1).Str("col")
	view.U8(0).U8(0).U32(2)
	f.Add(respBody(view))
	scan := NewResp(OpScan, StatusOK)
	scan.U8(1).U32(7).UNID(u).U8(1).Value(nsf.TextValue("v")).U8(0).U8(0).Blob([]byte("c"))
	f.Add(respBody(scan))
	search := NewResp(OpSearch, StatusOK).U32(1).U32(0)
	search.U8(1).UNID(u).U64(math.Float64bits(-1.5)).U8(0).U8(0).U32(1)
	f.Add(respBody(search))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		decodeViewPage(NewDec(append([]byte(nil), body...)))
		decodeScanPage(NewDec(append([]byte(nil), body...)), 1)
		decodeSearchPage(NewDec(append([]byte(nil), body...)), 1)
	})
}
