package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/repl"
)

// FailoverClient is the cluster-aware client: it wraps the retry/redial
// Client with a list of cluster-mate addresses, per-mate circuit breakers,
// availability probes, and availability-weighted mate selection. When the
// current mate dies or sheds with a busy response, operations transparently
// land on a surviving mate, and every open FailoverDB handle is re-opened
// there — the same rebind discipline the PR-1 reconnect path applies
// across a redial, lifted one level up to span servers.
//
// Semantics mirror Client's: idempotent operations (and shed requests,
// which provably never executed) retry across mates; a non-idempotent
// operation that fails mid-round-trip is surfaced to the caller, because
// the dead mate may have executed it — but the next operation fails over.

// FailoverOptions tune failover behaviour. The zero value gets defaults
// chosen for fast failover; see the field comments.
type FailoverOptions struct {
	// Client configures the per-mate connection. Zero values get
	// fast-failover defaults (1 inner retry, 20ms backoff base, 2s dial
	// timeout) rather than the standalone Client's patient ones: the
	// failover path IS the retry.
	Client Options
	// FailThreshold is how many consecutive transport failures open a
	// mate's circuit breaker (default 2).
	FailThreshold int
	// Cooldown is how long an open breaker waits before a half-open
	// probe may test the mate again (default 1s).
	Cooldown time.Duration
	// ProbeTimeout bounds one availability probe (default 1s).
	ProbeTimeout time.Duration
	// MaxFailovers bounds mate switches within one operation
	// (default 2 x number of mates).
	MaxFailovers int
}

func (o FailoverOptions) withDefaults(mates int) FailoverOptions {
	if o.Client.MaxRetries == 0 {
		o.Client.MaxRetries = 1
	}
	if o.Client.BackoffBase <= 0 {
		o.Client.BackoffBase = 20 * time.Millisecond
	}
	if o.Client.DialTimeout <= 0 {
		o.Client.DialTimeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.MaxFailovers <= 0 {
		o.MaxFailovers = 2 * mates
		if o.MaxFailovers < 2 {
			o.MaxFailovers = 2
		}
	}
	return o
}

// breaker states for one mate.
const (
	breakerClosed = iota // healthy, eligible
	breakerOpen          // failing; only a half-open probe after cooldown may test it
)

// mate is one cluster member's address plus health bookkeeping. All fields
// are guarded by FailoverClient.mu.
type mate struct {
	addr       string
	name       string // cluster-mate name, learned from placement records
	state      int
	fails      int
	openedAt   time.Time
	avail      int // last known availability index; -1 unknown
	restricted bool
}

// effectiveAvail treats an unprobed mate optimistically so fresh mates get
// tried before a known-loaded one.
func (m *mate) effectiveAvail() int {
	if m.avail < 0 {
		return 100
	}
	return m.avail
}

// FailoverStats counts failover activity.
type FailoverStats struct {
	// Failovers is how many times the client abandoned a mate after
	// transport failures.
	Failovers uint64
	// BusyRedirects is how many shed (busy) responses caused a mate switch.
	BusyRedirects uint64
	// WrongMateRedirects is how many placement redirects re-routed the
	// session to a home mate.
	WrongMateRedirects uint64
	// Resolves is how many OpResolve placement lookups were issued.
	Resolves uint64
	// Probes is how many availability probes were sent.
	Probes uint64
}

// FailoverClient holds a session that survives the death of individual
// cluster mates. Requests are serialized; one FailoverClient supports
// concurrent callers.
type FailoverClient struct {
	opts   FailoverOptions
	user   string
	secret string

	mu     sync.Mutex
	mates  []*mate
	cur    int // index of the connected mate; -1 when disconnected
	client *Client
	dbs    map[*FailoverDB]struct{}
	closed bool
	stats  FailoverStats
	// routeHint, while an operation on a specific database is in flight,
	// biases connection attempts toward that database's home mates.
	routeHint *FailoverDB
}

// DialFailover connects to the best available mate and authenticates.
// addrs lists the cluster mates in preference order (ties in availability
// resolve to the earlier address).
func DialFailover(addrs []string, user, secret string, opts FailoverOptions) (*FailoverClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("wire: failover: no mate addresses")
	}
	fc := &FailoverClient{
		opts:   opts.withDefaults(len(addrs)),
		user:   user,
		secret: secret,
		cur:    -1,
		dbs:    make(map[*FailoverDB]struct{}),
	}
	for _, a := range addrs {
		fc.mates = append(fc.mates, &mate{addr: a, avail: -1})
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if err := fc.connectLocked(); err != nil {
		return nil, err
	}
	return fc, nil
}

// Close terminates the current connection.
func (fc *FailoverClient) Close() error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.closed = true
	return fc.abandonLocked()
}

// User returns the authenticated user name.
func (fc *FailoverClient) User() string { return fc.user }

// Current returns the address of the connected mate, if any.
func (fc *FailoverClient) Current() (string, bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.cur < 0 {
		return "", false
	}
	return fc.mates[fc.cur].addr, true
}

// Stats returns a snapshot of failover activity.
func (fc *FailoverClient) Stats() FailoverStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.stats
}

// ProbeAll probes every mate's availability, updating the selection state,
// and returns the results keyed by address (failed probes are omitted).
func (fc *FailoverClient) ProbeAll() map[string]AvailabilityInfo {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	out := make(map[string]AvailabilityInfo, len(fc.mates))
	for i := range fc.mates {
		if info, err := fc.probeLocked(i); err == nil {
			out[fc.mates[i].addr] = info
		}
	}
	return out
}

// probeLocked sends one availability probe to mate i and folds the answer
// into its health state. A failed probe counts as a breaker failure.
func (fc *FailoverClient) probeLocked(i int) (AvailabilityInfo, error) {
	m := fc.mates[i]
	fc.stats.Probes++
	info, err := ProbeAvailability(m.addr, fc.opts.Client.Dialer, fc.opts.ProbeTimeout)
	if err != nil {
		fc.markFailLocked(i)
		return AvailabilityInfo{}, err
	}
	m.avail = info.Index
	m.restricted = info.Restricted()
	return info, nil
}

// markFailLocked records a transport failure against mate i; enough
// consecutive failures open its breaker.
func (fc *FailoverClient) markFailLocked(i int) {
	m := fc.mates[i]
	m.fails++
	if m.fails >= fc.opts.FailThreshold && m.state != breakerOpen {
		m.state = breakerOpen
		m.openedAt = time.Now()
	} else if m.state == breakerOpen {
		m.openedAt = time.Now() // restart the cooldown
	}
}

// abandonLocked drops the current connection (if any).
func (fc *FailoverClient) abandonLocked() error {
	var err error
	if fc.client != nil {
		err = fc.client.Close()
		fc.client = nil
	}
	fc.cur = -1
	for db := range fc.dbs {
		db.r = nil
	}
	return err
}

// candidatesLocked orders the mates for a connection attempt: healthy
// (breaker closed, not restricted) mates first by availability index
// descending, then — as a last resort, because serving degraded beats not
// serving — open-breaker and restricted mates by availability. Open or
// restricted mates are probed before a full dial, which is the half-open
// breaker transition.
func (fc *FailoverClient) candidatesLocked() []int {
	var healthy, fallback []int
	now := time.Now()
	for i, m := range fc.mates {
		eligible := m.state == breakerClosed ||
			(m.state == breakerOpen && now.Sub(m.openedAt) >= fc.opts.Cooldown)
		if eligible && !m.restricted {
			healthy = append(healthy, i)
		} else {
			fallback = append(fallback, i)
		}
	}
	byAvail := func(ix []int) {
		// Insertion sort: mate lists are tiny, and stability keeps the
		// configured preference order on ties.
		for a := 1; a < len(ix); a++ {
			for b := a; b > 0 && fc.mates[ix[b]].effectiveAvail() > fc.mates[ix[b-1]].effectiveAvail(); b-- {
				ix[b], ix[b-1] = ix[b-1], ix[b]
			}
		}
	}
	byAvail(healthy)
	byAvail(fallback)
	order := append(healthy, fallback...)
	// When the attempt is on behalf of a placed database, its home mates go
	// first (stably, keeping the availability order within each partition):
	// dialing a non-home mate can only earn a redirect. Non-home mates stay
	// as fallback — they can still teach us fresher placement.
	if hint := fc.routeHint; hint != nil && hint.resolved && len(hint.homes) > 0 {
		var home, rest []int
		for _, i := range order {
			if hint.homesMate(fc.mates[i]) {
				home = append(home, i)
			} else {
				rest = append(rest, i)
			}
		}
		order = append(home, rest...)
	}
	return order
}

// homesMate reports whether m is in the database's cached home set, matched
// by address or learned mate name.
func (f *FailoverDB) homesMate(m *mate) bool {
	for _, h := range f.homes {
		if h.Addr != "" && h.Addr == m.addr {
			return true
		}
		if h.Name != "" && m.name != "" && h.Name == m.name {
			return true
		}
	}
	return false
}

// noteRecordLocked folds a placement record (from an OpResolve or a
// StatusWrongMate redirect) into the client: every matching database handle
// with an older generation adopts it, and home addresses we have never seen
// become new mates — a redirect can teach the client about cluster members
// it was not configured with.
func (fc *FailoverClient) noteRecordLocked(path string, gen uint64, homes []HomeAddr) {
	for db := range fc.dbs {
		if db.path != path {
			continue
		}
		if db.resolved && gen < db.gen {
			continue // stale record: keep the fresher cache
		}
		db.gen = gen
		db.homes = append([]HomeAddr(nil), homes...)
		db.resolved = true
	}
	for _, h := range homes {
		if h.Addr == "" {
			continue
		}
		known := false
		for _, m := range fc.mates {
			if m.addr == h.Addr {
				if m.name == "" {
					m.name = h.Name
				}
				known = true
				break
			}
		}
		if !known {
			fc.mates = append(fc.mates, &mate{addr: h.Addr, name: h.Name, avail: -1})
		}
	}
}

// offHomeLocked returns a synthetic redirect when db's cached placement says
// the currently connected mate does not home it — saving the round trip the
// server would refuse anyway.
func (fc *FailoverClient) offHomeLocked(db *FailoverDB) error {
	if !db.resolved || len(db.homes) == 0 || fc.cur < 0 {
		return nil
	}
	if db.homesMate(fc.mates[fc.cur]) {
		return nil
	}
	return &WrongMateError{Op: OpOpenDB, Path: db.path, Generation: db.gen,
		Homes: append([]HomeAddr(nil), db.homes...)}
}

// connectLocked dials the best candidate mate, authenticates, and re-opens
// every registered FailoverDB handle there. On success the breaker closes.
func (fc *FailoverClient) connectLocked() error {
	var firstErr error
	for _, i := range fc.candidatesLocked() {
		m := fc.mates[i]
		if m.state == breakerOpen || m.restricted {
			// Half-open: one cheap probe decides whether the mate gets a
			// real dial. A restricted (draining) mate is skipped until a
			// probe says it is open again.
			info, err := fc.probeLocked(i)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if info.Restricted() {
				if firstErr == nil {
					firstErr = fmt.Errorf("wire: failover: mate %s is RESTRICTED", m.addr)
				}
				continue
			}
		}
		c, err := DialOptions(m.addr, fc.user, fc.secret, fc.opts.Client)
		if err != nil {
			fc.markFailLocked(i)
			if firstErr == nil || !Retryable(firstErr) {
				firstErr = err
			}
			continue
		}
		if err := fc.rebindLocked(c); err != nil {
			c.Close()
			fc.markFailLocked(i)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// A successful dial closes the breaker but does NOT clear the
		// failure count — a mate that accepts connections and then dies on
		// every operation would otherwise never trip it. Only a completed
		// operation (withFailover) proves health and resets the count.
		fc.client, fc.cur = c, i
		m.state, m.restricted = breakerClosed, false
		return nil
	}
	if firstErr == nil {
		firstErr = errors.New("wire: failover: no reachable mate")
	}
	return fmt.Errorf("wire: failover: all %d mates unreachable: %w", len(fc.mates), firstErr)
}

// rebindLocked re-opens every registered handle on a fresh client. A
// database missing on this mate — or homed elsewhere (placement redirect) —
// poisons only that handle (matching the Client reconnect rules); transport
// errors fail the whole attempt. A redirect also refreshes that handle's
// placement cache, so its next operation re-routes instead of failing.
func (fc *FailoverClient) rebindLocked(c *Client) error {
	for db := range fc.dbs {
		r, err := c.OpenDB(db.path)
		if err != nil {
			var se *ServerError
			var wme *WrongMateError
			if errors.As(err, &wme) {
				fc.noteRecordLocked(wme.Path, wme.Generation, wme.Homes)
				db.r, db.stale = nil, err
				continue
			}
			if errors.As(err, &se) {
				db.r, db.stale = nil, err
				continue
			}
			return err
		}
		db.r, db.stale = r, nil
	}
	return nil
}

// withFailover runs fn with mate failover: shed (busy) responses, placement
// redirects, and — for idempotent operations — transport failures move the
// session to the next-best mate and retry, bounded by MaxFailovers.
// Application errors never fail over.
func (fc *FailoverClient) withFailover(idempotent bool, fn func() error) error {
	return fc.withFailoverDB(nil, idempotent, fn)
}

// withFailoverDB is withFailover with connection attempts biased toward
// db's home mates (nil db means no bias).
func (fc *FailoverClient) withFailoverDB(db *FailoverDB, idempotent bool, fn func() error) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.routeHint = db
	defer func() { fc.routeHint = nil }()
	for switches := 0; ; switches++ {
		if fc.closed {
			return ErrClosed
		}
		if fc.client == nil {
			if err := fc.connectLocked(); err != nil {
				return err
			}
		}
		err := fn()
		if err == nil {
			fc.mates[fc.cur].fails = 0
			return nil
		}
		var be *BusyError
		if errors.As(err, &be) {
			// The mate shed the request before executing it: remember how
			// loaded it is, then redirect — safe even for non-idempotent
			// operations.
			m := fc.mates[fc.cur]
			m.avail = be.Availability
			m.restricted = be.State == StateRestricted
			fc.stats.BusyRedirects++
			fc.abandonLocked()
			if switches >= fc.opts.MaxFailovers {
				return err
			}
			continue
		}
		var wme *WrongMateError
		if errors.As(err, &wme) {
			// Placement redirect: the request never executed. Adopt the
			// carried home set (fresher generation wins), then reconnect —
			// the route hint steers the dial to a home mate. Safe for
			// non-idempotent operations, like a busy shed.
			fc.noteRecordLocked(wme.Path, wme.Generation, wme.Homes)
			fc.stats.WrongMateRedirects++
			fc.abandonLocked()
			if switches >= fc.opts.MaxFailovers {
				return err
			}
			continue
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err // application error: the mate is healthy
		}
		// Transport failure: the inner client already spent its (short)
		// retry/redial budget against this mate. Count it, open the path
		// to the breaker, and fail over.
		fc.markFailLocked(fc.cur)
		fc.stats.Failovers++
		fc.abandonLocked()
		if !idempotent {
			// The dead mate may have executed the request; surface the
			// failure. The NEXT operation finds a live mate.
			return err
		}
		if switches >= fc.opts.MaxFailovers {
			return err
		}
	}
}

// Availability reports the connected mate's availability snapshot.
func (fc *FailoverClient) Availability() (AvailabilityInfo, error) {
	var info AvailabilityInfo
	err := fc.withFailover(true, func() error {
		var err error
		info, err = fc.client.Availability()
		return err
	})
	return info, err
}

// MailDeposit routes a mail note via whichever mate is alive. Depositing
// is not idempotent; a mid-trip failure is surfaced, not re-sent.
func (fc *FailoverClient) MailDeposit(n *nsf.Note) error {
	return fc.withFailover(false, func() error {
		return fc.client.MailDeposit(n)
	})
}

// OpenDB opens a database by path, returning a handle that follows the
// session across mate failover: after a switch, the handle is re-opened on
// the new mate before any operation runs.
func (fc *FailoverClient) OpenDB(path string) (*FailoverDB, error) {
	fc.mu.Lock()
	db := &FailoverDB{fc: fc, path: path}
	fc.dbs[db] = struct{}{} // registered first so a failover rebinds it too
	fc.mu.Unlock()
	err := fc.withFailoverDB(db, true, func() error {
		if db.r != nil {
			return nil // a connectLocked rebind already bound it
		}
		if db.stale != nil {
			return db.stale // this mate lacks (or does not home) the database
		}
		if !db.resolved {
			// Eager resolve on first open: one cheap pre-auth-grade RPC on
			// the live session tells us the home set before we risk a
			// redirect. A resolve failure is not fatal — the open itself
			// carries the same information in its redirect.
			fc.stats.Resolves++
			if info, rerr := fc.client.Resolve(db.path); rerr == nil {
				fc.noteRecordLocked(info.Path, info.Generation, info.Homes)
				if !db.resolved || info.Generation >= db.gen {
					db.gen = info.Generation
					db.homes = append([]HomeAddr(nil), info.Homes...)
					db.resolved = true
				}
			}
		}
		// With a fresh cache, redirect ourselves instead of asking a mate
		// we know is wrong.
		if werr := fc.offHomeLocked(db); werr != nil {
			return werr
		}
		r, err := fc.client.OpenDB(db.path)
		if err != nil {
			return err
		}
		db.r = r
		return nil
	})
	if err != nil {
		fc.mu.Lock()
		delete(fc.dbs, db)
		fc.mu.Unlock()
		return nil, err
	}
	return db, nil
}

// FailoverDB is a database handle that survives mate failover. It
// implements repl.Peer, so a replication session can ride through the
// death of the server it started against.
type FailoverDB struct {
	fc   *FailoverClient
	path string
	// r is the handle on the current mate; nil while disconnected.
	// stale is set when the current mate lacks the database.
	// Both are guarded by fc.mu.
	r     *RemoteDB
	stale error
	// Placement cache, guarded by fc.mu: the generation-stamped home set
	// from the last resolve or redirect. resolved=false means never
	// resolved; resolved with no homes means unplaced (any mate serves).
	gen      uint64
	homes    []HomeAddr
	resolved bool
}

// Placement returns the handle's cached placement: the generation and home
// set learned from the last resolve or redirect, and whether any resolution
// has happened yet.
func (f *FailoverDB) Placement() (gen uint64, homes []HomeAddr, resolved bool) {
	f.fc.mu.Lock()
	defer f.fc.mu.Unlock()
	return f.gen, append([]HomeAddr(nil), f.homes...), f.resolved
}

var _ repl.Peer = (*FailoverDB)(nil)

// Path returns the server-side path the database was opened by.
func (f *FailoverDB) Path() string { return f.path }

// Title returns the database title as reported by the current mate.
func (f *FailoverDB) Title() string {
	f.fc.mu.Lock()
	defer f.fc.mu.Unlock()
	if f.r == nil {
		return ""
	}
	return f.r.Title()
}

// Release forgets the handle: it is no longer re-opened after failover.
func (f *FailoverDB) Release() {
	f.fc.mu.Lock()
	defer f.fc.mu.Unlock()
	if f.r != nil {
		f.r.Release()
	}
	delete(f.fc.dbs, f)
}

// do runs one operation against the handle on whichever mate is current,
// with connection attempts biased toward this database's home mates.
func (f *FailoverDB) do(idempotent bool, fn func(r *RemoteDB) error) error {
	return f.fc.withFailoverDB(f, idempotent, func() error {
		if f.stale != nil {
			return f.stale
		}
		if f.r == nil {
			return protoErrorf("failover handle not bound")
		}
		return fn(f.r)
	})
}

// ReplicaID implements repl.Peer.
func (f *FailoverDB) ReplicaID() (nsf.ReplicaID, error) {
	var id nsf.ReplicaID
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		id, err = r.ReplicaID()
		return err
	})
	return id, err
}

// Summaries implements repl.Peer.
func (f *FailoverDB) Summaries(since nsf.Timestamp, formulaSrc string) ([]repl.Summary, nsf.Timestamp, error) {
	var sums []repl.Summary
	var now nsf.Timestamp
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		sums, now, err = r.Summaries(since, formulaSrc)
		return err
	})
	return sums, now, err
}

// Fetch implements repl.Peer.
func (f *FailoverDB) Fetch(unids []nsf.UNID) ([]*nsf.Note, error) {
	var notes []*nsf.Note
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		notes, err = r.Fetch(unids)
		return err
	})
	return notes, err
}

// Apply implements repl.Peer. Replication applies are idempotent by the
// OID rules, so a batch interrupted by a mate's death is re-sent to the
// survivor.
func (f *FailoverDB) Apply(notes []*nsf.Note) (repl.ApplyStats, error) {
	var st repl.ApplyStats
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		st, err = r.Apply(notes)
		return err
	})
	return st, err
}

// Get fetches a note from whichever mate is current.
func (f *FailoverDB) Get(unid nsf.UNID) (*nsf.Note, error) {
	var n *nsf.Note
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		n, err = r.Get(unid)
		return err
	})
	return n, err
}

// Create stores a new document. Creation is not idempotent: a mid-trip
// mate death surfaces the error (the write may or may not have landed);
// the caller decides whether to re-issue, and the next call fails over.
func (f *FailoverDB) Create(n *nsf.Note) error {
	return f.do(false, func(r *RemoteDB) error { return r.Create(n) })
}

// Update stores a modified document; not idempotent, like Create.
func (f *FailoverDB) Update(n *nsf.Note) error {
	return f.do(false, func(r *RemoteDB) error { return r.Update(n) })
}

// Delete replaces a document with a deletion stub (idempotent).
func (f *FailoverDB) Delete(unid nsf.UNID) error {
	return f.do(true, func(r *RemoteDB) error { return r.Delete(unid) })
}

// PutBatch stores documents create-or-update through one round trip. The
// batch cursor makes it exactly-once even across failover or a placement
// redirect mid-stream, so it retries as idempotent.
func (f *FailoverDB) PutBatch(notes []*nsf.Note) (int, error) {
	var stored int
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		stored, err = r.PutBatch(notes)
		return err
	})
	return stored, err
}

// Search runs a full-text query on the current mate.
func (f *FailoverDB) Search(query string) ([]ft.Result, error) {
	var out []ft.Result
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		out, err = r.Search(query)
		return err
	})
	return out, err
}

// SearchPage runs one page of a full-text query, optionally pre-joining
// summary columns, on the current mate.
func (f *FailoverDB) SearchPage(query string, columns []string, start, limit int) (SearchPage, error) {
	var p SearchPage
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		p, err = r.SearchPage(query, columns, start, limit)
		return err
	})
	return p, err
}

// ViewRows renders a view on the current mate, paging through it. A mate
// switch between pages restarts nothing: view pages address rows by index,
// so the next page simply comes from the new mate's rendering.
func (f *FailoverDB) ViewRows(view string) ([]ViewRow, error) {
	var rows []ViewRow
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		rows, err = r.ViewRows(view)
		return err
	})
	return rows, err
}

// ViewPage fetches one page of a rendered view from the current mate.
func (f *FailoverDB) ViewPage(view string, start, limit int) (ViewPage, error) {
	var p ViewPage
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		p, err = r.ViewPage(view, start, limit)
		return err
	})
	return p, err
}

// ScanPage runs one page of a bulk scan on the current mate. Scan cursors
// are bound to the server that minted them (NoteIDs are per-copy), so a
// page resumed after a mate switch fails with a server error rather than
// silently skipping or repeating documents; callers restart the scan with
// a nil cursor in that case.
func (f *FailoverDB) ScanPage(opts ScanOptions, cursor []byte) (ScanPage, error) {
	var p ScanPage
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		p, err = r.ScanPage(opts, cursor)
		return err
	})
	return p, err
}

// Scan pages a formula-filtered, projected scan through fn. A mate switch
// mid-scan invalidates the cursor (see ScanPage) and surfaces as an error.
func (f *FailoverDB) Scan(opts ScanOptions, fn func(ScanRow) bool) error {
	var cursor []byte
	for {
		p, err := f.ScanPage(opts, cursor)
		if err != nil {
			return err
		}
		for _, row := range p.Rows {
			if !fn(row) {
				return nil
			}
		}
		if !p.More {
			return nil
		}
		cursor = p.Cursor
	}
}

// Info fetches the database statistics from the current mate.
func (f *FailoverDB) Info() (DBInfo, error) {
	var info DBInfo
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		info, err = r.Info()
		return err
	})
	return info, err
}
