package wire

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ft"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/retry"
)

// FailoverClient is the cluster-aware client: it wraps the retry/redial
// Client with a list of cluster-mate addresses, per-mate circuit breakers,
// availability probes, and availability-weighted mate selection. When the
// current mate dies or sheds with a busy response, operations transparently
// land on a surviving mate, and every open FailoverDB handle is re-opened
// there — the same rebind discipline the PR-1 reconnect path applies
// across a redial, lifted one level up to span servers.
//
// Semantics mirror Client's: idempotent operations (and shed requests,
// which provably never executed) retry across mates; a non-idempotent
// operation that fails mid-round-trip is surfaced to the caller, because
// the dead mate may have executed it — but the next operation fails over.

// FailoverOptions tune failover behaviour. The zero value gets defaults
// chosen for fast failover; see the field comments.
type FailoverOptions struct {
	// Client configures the per-mate connection. Zero values get
	// fast-failover defaults (1 inner retry, 20ms backoff base, 2s dial
	// timeout) rather than the standalone Client's patient ones: the
	// failover path IS the retry.
	Client Options
	// FailThreshold is how many consecutive transport failures open a
	// mate's circuit breaker (default 2).
	FailThreshold int
	// Cooldown is how long an open breaker waits before a half-open
	// probe may test the mate again (default 1s).
	Cooldown time.Duration
	// ProbeTimeout bounds one availability probe (default 1s).
	ProbeTimeout time.Duration
	// MaxFailovers bounds mate switches within one operation
	// (default 2 x number of mates).
	MaxFailovers int
	// HedgeReads enables hedged reads for idempotent single-shot
	// operations (Get, ViewPage, SearchPage): when the connected mate has
	// not answered after a delay derived from the observed latency
	// distribution, the same read is issued to a second mate and the first
	// response wins. The loser is cancelled through its propagated
	// deadline/CancelInflight, so a stalled mate costs one hedge delay
	// instead of a full timeout. Requires Client.OpBudget (the hedge rides
	// the same budget).
	HedgeReads bool
	// HedgeDelay fixes the delay before the hedge fires. Zero derives it
	// adaptively from the read-latency EWMA plus 3 x its mean deviation —
	// a cheap stand-in for "past p99", so only genuinely slow reads hedge.
	HedgeDelay time.Duration
	// HedgeRateCap bounds hedging under cluster-wide load: every hedged-
	// eligible read earns this many hedge tokens (bursting to 3) and each
	// launched hedge spends one, so at most this fraction of reads hedge
	// in steady state. When every mate is slow, hedging self-limits
	// instead of doubling the cluster's load. Default 0.1.
	HedgeRateCap float64
}

func (o FailoverOptions) withDefaults(mates int) FailoverOptions {
	if o.Client.MaxRetries == 0 {
		o.Client.MaxRetries = 1
	}
	if o.Client.BackoffBase <= 0 {
		o.Client.BackoffBase = 20 * time.Millisecond
	}
	if o.Client.DialTimeout <= 0 {
		o.Client.DialTimeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.MaxFailovers <= 0 {
		o.MaxFailovers = 2 * mates
		if o.MaxFailovers < 2 {
			o.MaxFailovers = 2
		}
	}
	if o.HedgeRateCap <= 0 {
		o.HedgeRateCap = 0.1
	}
	return o
}

// breaker states for one mate.
const (
	breakerClosed = iota // healthy, eligible
	breakerOpen          // failing; only a half-open probe after cooldown may test it
)

// mate is one cluster member's address plus health bookkeeping. All fields
// are guarded by FailoverClient.mu.
type mate struct {
	addr     string
	name     string // cluster-mate name, learned from placement records
	state    int
	fails    int
	openedAt time.Time
	// reopens counts how many times the breaker has opened since the last
	// completed operation; each reopen doubles the cooldown (capped), so a
	// mate that keeps failing its half-open probes gets probed ever less
	// often instead of on a fixed beat.
	reopens    int
	avail      int // last known availability index; -1 unknown
	restricted bool
}

// effectiveAvail treats an unprobed mate optimistically so fresh mates get
// tried before a known-loaded one.
func (m *mate) effectiveAvail() int {
	if m.avail < 0 {
		return 100
	}
	return m.avail
}

// FailoverStats counts failover activity.
type FailoverStats struct {
	// Failovers is how many times the client abandoned a mate after
	// transport failures.
	Failovers uint64
	// BusyRedirects is how many shed (busy) responses caused a mate switch.
	BusyRedirects uint64
	// WrongMateRedirects is how many placement redirects re-routed the
	// session to a home mate.
	WrongMateRedirects uint64
	// Resolves is how many OpResolve placement lookups were issued.
	Resolves uint64
	// Probes is how many availability probes were sent.
	Probes uint64
	// Hedges is how many hedged reads were launched; HedgeWins how many
	// were answered by the hedge mate before the primary.
	Hedges    uint64
	HedgeWins uint64
}

// FailoverClient holds a session that survives the death of individual
// cluster mates. Requests are serialized; one FailoverClient supports
// concurrent callers.
type FailoverClient struct {
	opts   FailoverOptions
	user   string
	secret string

	mu     sync.Mutex
	mates  []*mate
	cur    int // index of the connected mate; -1 when disconnected
	client *Client
	dbs    map[*FailoverDB]struct{}
	closed bool
	stats  FailoverStats
	// routeHint, while an operation on a specific database is in flight,
	// biases connection attempts toward that database's home mates.
	routeHint *FailoverDB

	// Hedge state lives under its OWN lock: a primary read holds fc.mu for
	// its whole round trip, so the hedge path must never touch fc.mu or it
	// would deadlock behind the very stall it exists to escape.
	hmu sync.Mutex
	// hClient/hAddr/hDBs cache the hedge-side session and handles so a
	// hedge is one round trip, not dial+auth+open+read.
	hClient *Client
	hAddr   string
	hDBs    map[string]*RemoteDB
	// hInFlight serializes hedges (one cancellable hedge op at a time).
	hInFlight bool
	// hTokens is the hedge-rate token bucket (see HedgeRateCap).
	hTokens float64
	// latEwmaUs/latDevUs track read latency (EWMA and mean deviation,
	// microseconds) to derive the adaptive hedge delay.
	latEwmaUs int64
	latDevUs  int64
	// hedges/hedgeWins are atomic (not under fc.mu) because the hedge path
	// records them while a primary holds fc.mu.
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
}

// DialFailover connects to the best available mate and authenticates.
// addrs lists the cluster mates in preference order (ties in availability
// resolve to the earlier address).
func DialFailover(addrs []string, user, secret string, opts FailoverOptions) (*FailoverClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("wire: failover: no mate addresses")
	}
	fc := &FailoverClient{
		opts:   opts.withDefaults(len(addrs)),
		user:   user,
		secret: secret,
		cur:    -1,
		dbs:    make(map[*FailoverDB]struct{}),
		hDBs:   make(map[string]*RemoteDB),
	}
	for _, a := range addrs {
		fc.mates = append(fc.mates, &mate{addr: a, avail: -1})
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if err := fc.connectLocked(); err != nil {
		return nil, err
	}
	return fc, nil
}

// Close terminates the current connection (and any cached hedge session).
func (fc *FailoverClient) Close() error {
	fc.hmu.Lock()
	if fc.hClient != nil {
		fc.hClient.Close()
		fc.hClient = nil
		fc.hDBs = make(map[string]*RemoteDB)
	}
	fc.hmu.Unlock()
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.closed = true
	return fc.abandonLocked()
}

// User returns the authenticated user name.
func (fc *FailoverClient) User() string { return fc.user }

// Current returns the address of the connected mate, if any.
func (fc *FailoverClient) Current() (string, bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.cur < 0 {
		return "", false
	}
	return fc.mates[fc.cur].addr, true
}

// Stats returns a snapshot of failover activity.
func (fc *FailoverClient) Stats() FailoverStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	st := fc.stats
	st.Hedges = fc.hedges.Load()
	st.HedgeWins = fc.hedgeWins.Load()
	return st
}

// ProbeAll probes every mate's availability, updating the selection state,
// and returns the results keyed by address (failed probes are omitted).
func (fc *FailoverClient) ProbeAll() map[string]AvailabilityInfo {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	out := make(map[string]AvailabilityInfo, len(fc.mates))
	for i := range fc.mates {
		if info, err := fc.probeLocked(i); err == nil {
			out[fc.mates[i].addr] = info
		}
	}
	return out
}

// probeLocked sends one availability probe to mate i and folds the answer
// into its health state. A failed probe counts as a breaker failure.
func (fc *FailoverClient) probeLocked(i int) (AvailabilityInfo, error) {
	m := fc.mates[i]
	fc.stats.Probes++
	info, err := ProbeAvailability(m.addr, fc.opts.Client.Dialer, fc.opts.ProbeTimeout)
	if err != nil {
		fc.markFailLocked(i)
		return AvailabilityInfo{}, err
	}
	m.avail = info.Index
	m.restricted = info.Restricted()
	return info, nil
}

// markFailLocked records a transport failure against mate i; enough
// consecutive failures open its breaker.
func (fc *FailoverClient) markFailLocked(i int) {
	m := fc.mates[i]
	m.fails++
	if m.fails >= fc.opts.FailThreshold && m.state != breakerOpen {
		m.state = breakerOpen
		m.openedAt = time.Now()
		m.reopens++
	} else if m.state == breakerOpen {
		m.openedAt = time.Now() // restart the cooldown
	}
}

// cooldownLocked is how long mate m's open breaker waits before a
// half-open probe: the configured Cooldown doubled per reopen (shared
// retry.Exp shape), capped at 8x, so a persistently dead mate is probed on
// a backing-off schedule rather than a fixed beat.
func (fc *FailoverClient) cooldownLocked(m *mate) time.Duration {
	return retry.Exp(fc.opts.Cooldown, m.reopens-1, 8*fc.opts.Cooldown)
}

// abandonLocked drops the current connection (if any).
func (fc *FailoverClient) abandonLocked() error {
	var err error
	if fc.client != nil {
		err = fc.client.Close()
		fc.client = nil
	}
	fc.cur = -1
	for db := range fc.dbs {
		db.r = nil
	}
	return err
}

// candidatesLocked orders the mates for a connection attempt: healthy
// (breaker closed, not restricted) mates first by availability index
// descending, then — as a last resort, because serving degraded beats not
// serving — open-breaker and restricted mates by availability. Open or
// restricted mates are probed before a full dial, which is the half-open
// breaker transition.
func (fc *FailoverClient) candidatesLocked() []int {
	var healthy, fallback []int
	now := time.Now()
	for i, m := range fc.mates {
		eligible := m.state == breakerClosed ||
			(m.state == breakerOpen && now.Sub(m.openedAt) >= fc.cooldownLocked(m))
		if eligible && !m.restricted {
			healthy = append(healthy, i)
		} else {
			fallback = append(fallback, i)
		}
	}
	byAvail := func(ix []int) {
		// Insertion sort: mate lists are tiny, and stability keeps the
		// configured preference order on ties.
		for a := 1; a < len(ix); a++ {
			for b := a; b > 0 && fc.mates[ix[b]].effectiveAvail() > fc.mates[ix[b-1]].effectiveAvail(); b-- {
				ix[b], ix[b-1] = ix[b-1], ix[b]
			}
		}
	}
	byAvail(healthy)
	byAvail(fallback)
	order := append(healthy, fallback...)
	// When the attempt is on behalf of a placed database, its home mates go
	// first (stably, keeping the availability order within each partition):
	// dialing a non-home mate can only earn a redirect. Non-home mates stay
	// as fallback — they can still teach us fresher placement.
	if hint := fc.routeHint; hint != nil && hint.resolved && len(hint.homes) > 0 {
		var home, rest []int
		for _, i := range order {
			if hint.homesMate(fc.mates[i]) {
				home = append(home, i)
			} else {
				rest = append(rest, i)
			}
		}
		order = append(home, rest...)
	}
	return order
}

// homesMate reports whether m is in the database's cached home set, matched
// by address or learned mate name.
func (f *FailoverDB) homesMate(m *mate) bool {
	for _, h := range f.homes {
		if h.Addr != "" && h.Addr == m.addr {
			return true
		}
		if h.Name != "" && m.name != "" && h.Name == m.name {
			return true
		}
	}
	return false
}

// noteRecordLocked folds a placement record (from an OpResolve or a
// StatusWrongMate redirect) into the client: every matching database handle
// with an older generation adopts it, and home addresses we have never seen
// become new mates — a redirect can teach the client about cluster members
// it was not configured with.
func (fc *FailoverClient) noteRecordLocked(path string, gen uint64, homes []HomeAddr) {
	for db := range fc.dbs {
		if db.path != path {
			continue
		}
		if db.resolved && gen < db.gen {
			continue // stale record: keep the fresher cache
		}
		db.gen = gen
		db.homes = append([]HomeAddr(nil), homes...)
		db.resolved = true
	}
	for _, h := range homes {
		if h.Addr == "" {
			continue
		}
		known := false
		for _, m := range fc.mates {
			if m.addr == h.Addr {
				if m.name == "" {
					m.name = h.Name
				}
				known = true
				break
			}
		}
		if !known {
			fc.mates = append(fc.mates, &mate{addr: h.Addr, name: h.Name, avail: -1})
		}
	}
}

// offHomeLocked returns a synthetic redirect when db's cached placement says
// the currently connected mate does not home it — saving the round trip the
// server would refuse anyway.
func (fc *FailoverClient) offHomeLocked(db *FailoverDB) error {
	if !db.resolved || len(db.homes) == 0 || fc.cur < 0 {
		return nil
	}
	if db.homesMate(fc.mates[fc.cur]) {
		return nil
	}
	return &WrongMateError{Op: OpOpenDB, Path: db.path, Generation: db.gen,
		Homes: append([]HomeAddr(nil), db.homes...)}
}

// connectLocked dials the best candidate mate, authenticates, and re-opens
// every registered FailoverDB handle there. On success the breaker closes.
func (fc *FailoverClient) connectLocked() error {
	var firstErr error
	for _, i := range fc.candidatesLocked() {
		m := fc.mates[i]
		if m.state == breakerOpen || m.restricted {
			// Half-open: one cheap probe decides whether the mate gets a
			// real dial. A restricted (draining) mate is skipped until a
			// probe says it is open again.
			info, err := fc.probeLocked(i)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if info.Restricted() {
				if firstErr == nil {
					firstErr = fmt.Errorf("wire: failover: mate %s is RESTRICTED", m.addr)
				}
				continue
			}
		}
		c, err := DialOptions(m.addr, fc.user, fc.secret, fc.opts.Client)
		if err != nil {
			fc.markFailLocked(i)
			if firstErr == nil || !Retryable(firstErr) {
				firstErr = err
			}
			continue
		}
		if err := fc.rebindLocked(c); err != nil {
			c.Close()
			fc.markFailLocked(i)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// A successful dial closes the breaker but does NOT clear the
		// failure count — a mate that accepts connections and then dies on
		// every operation would otherwise never trip it. Only a completed
		// operation (withFailover) proves health and resets the count.
		fc.client, fc.cur = c, i
		m.state, m.restricted = breakerClosed, false
		return nil
	}
	if firstErr == nil {
		firstErr = errors.New("wire: failover: no reachable mate")
	}
	return fmt.Errorf("wire: failover: all %d mates unreachable: %w", len(fc.mates), firstErr)
}

// rebindLocked re-opens every registered handle on a fresh client. A
// database missing on this mate — or homed elsewhere (placement redirect) —
// poisons only that handle (matching the Client reconnect rules); transport
// errors fail the whole attempt. A redirect also refreshes that handle's
// placement cache, so its next operation re-routes instead of failing.
func (fc *FailoverClient) rebindLocked(c *Client) error {
	for db := range fc.dbs {
		r, err := c.OpenDB(db.path)
		if err != nil {
			var se *ServerError
			var wme *WrongMateError
			if errors.As(err, &wme) {
				fc.noteRecordLocked(wme.Path, wme.Generation, wme.Homes)
				db.r, db.stale = nil, err
				continue
			}
			if errors.As(err, &se) {
				db.r, db.stale = nil, err
				continue
			}
			return err
		}
		db.r, db.stale = r, nil
	}
	return nil
}

// withFailover runs fn with mate failover: shed (busy) responses, placement
// redirects, and — for idempotent operations — transport failures move the
// session to the next-best mate and retry, bounded by MaxFailovers.
// Application errors never fail over.
func (fc *FailoverClient) withFailover(idempotent bool, fn func() error) error {
	return fc.withFailoverDB(nil, idempotent, fn)
}

// withFailoverDB is withFailover with connection attempts biased toward
// db's home mates (nil db means no bias).
func (fc *FailoverClient) withFailoverDB(db *FailoverDB, idempotent bool, fn func() error) error {
	return fc.withFailoverDeadline(db, idempotent, time.Time{}, fn)
}

// withFailoverDeadline is the failover loop with an absolute operation
// deadline. A zero deadline is stamped from Client.OpBudget (when set), so
// ONE user budget spans every mate switch and retry: each hop adopts the
// same absolute deadline and its wire envelope carries only what remains.
func (fc *FailoverClient) withFailoverDeadline(db *FailoverDB, idempotent bool, deadline time.Time, fn func() error) error {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.routeHint = db
	defer func() { fc.routeHint = nil }()
	if deadline.IsZero() && fc.opts.Client.OpBudget > 0 {
		deadline = time.Now().Add(fc.opts.Client.OpBudget)
	}
	if !deadline.IsZero() {
		defer func() {
			if fc.client != nil {
				fc.client.setOpDeadline(time.Time{})
			}
		}()
	}
	for switches := 0; ; switches++ {
		if fc.closed {
			return ErrClosed
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) && switches > 0 {
			// Budget spent between hops: every abandoned attempt ended in
			// a provably-not-executed state (shed, redirect, refused) or
			// was idempotent, so this expiry is unambiguous.
			return &DeadlineError{}
		}
		if fc.client == nil {
			if err := fc.connectLocked(); err != nil {
				return err
			}
		}
		if !deadline.IsZero() {
			fc.client.setOpDeadline(deadline)
		}
		err := fn()
		if err == nil {
			m := fc.mates[fc.cur]
			m.fails, m.reopens = 0, 0
			return nil
		}
		if errors.Is(err, ErrAbandoned) {
			// CancelInflight severed this op (a hedge won elsewhere). The
			// mate did nothing wrong: no breaker damage, no failover — the
			// caller is discarding this result anyway.
			return err
		}
		var de *DeadlineError
		if errors.As(err, &de) {
			// The budget is spent; a failover hop would run on the same
			// exhausted budget. Surface it — preserving the ambiguity
			// verdict, which the caller needs for non-idempotent ops. A
			// LOCAL mid-op expiry additionally means the transport died
			// under the op (a stalled mate our own deadline had to cut),
			// so count it against the mate: the breaker steers the NEXT
			// operation elsewhere instead of feeding the stall another
			// budget. A remote verdict or a pre-send refusal says nothing
			// bad about the mate.
			if !de.Remote && de.Ambiguous {
				fc.markFailLocked(fc.cur)
				fc.abandonLocked()
			}
			return err
		}
		var be *BusyError
		if errors.As(err, &be) {
			// The mate shed the request before executing it: remember how
			// loaded it is, then redirect — safe even for non-idempotent
			// operations.
			m := fc.mates[fc.cur]
			m.avail = be.Availability
			m.restricted = be.State == StateRestricted
			fc.stats.BusyRedirects++
			fc.abandonLocked()
			if switches >= fc.opts.MaxFailovers {
				return err
			}
			continue
		}
		var wme *WrongMateError
		if errors.As(err, &wme) {
			// Placement redirect: the request never executed. Adopt the
			// carried home set (fresher generation wins), then reconnect —
			// the route hint steers the dial to a home mate. Safe for
			// non-idempotent operations, like a busy shed.
			fc.noteRecordLocked(wme.Path, wme.Generation, wme.Homes)
			fc.stats.WrongMateRedirects++
			fc.abandonLocked()
			if switches >= fc.opts.MaxFailovers {
				return err
			}
			continue
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err // application error: the mate is healthy
		}
		// Transport failure: the inner client already spent its (short)
		// retry/redial budget against this mate. Count it, open the path
		// to the breaker, and fail over.
		fc.markFailLocked(fc.cur)
		fc.stats.Failovers++
		fc.abandonLocked()
		if !idempotent {
			// The dead mate may have executed the request; surface the
			// failure. The NEXT operation finds a live mate.
			return err
		}
		if switches >= fc.opts.MaxFailovers {
			return err
		}
	}
}

// Availability reports the connected mate's availability snapshot.
func (fc *FailoverClient) Availability() (AvailabilityInfo, error) {
	var info AvailabilityInfo
	err := fc.withFailover(true, func() error {
		var err error
		info, err = fc.client.Availability()
		return err
	})
	return info, err
}

// MailDeposit routes a mail note via whichever mate is alive. Depositing
// is not idempotent; a mid-trip failure is surfaced, not re-sent.
func (fc *FailoverClient) MailDeposit(n *nsf.Note) error {
	return fc.withFailover(false, func() error {
		return fc.client.MailDeposit(n)
	})
}

// OpenDB opens a database by path, returning a handle that follows the
// session across mate failover: after a switch, the handle is re-opened on
// the new mate before any operation runs.
func (fc *FailoverClient) OpenDB(path string) (*FailoverDB, error) {
	fc.mu.Lock()
	db := &FailoverDB{fc: fc, path: path}
	fc.dbs[db] = struct{}{} // registered first so a failover rebinds it too
	fc.mu.Unlock()
	err := fc.withFailoverDB(db, true, func() error {
		if db.r != nil {
			return nil // a connectLocked rebind already bound it
		}
		if db.stale != nil {
			return db.stale // this mate lacks (or does not home) the database
		}
		if !db.resolved {
			// Eager resolve on first open: one cheap pre-auth-grade RPC on
			// the live session tells us the home set before we risk a
			// redirect. A resolve failure is not fatal — the open itself
			// carries the same information in its redirect.
			fc.stats.Resolves++
			if info, rerr := fc.client.Resolve(db.path); rerr == nil {
				fc.noteRecordLocked(info.Path, info.Generation, info.Homes)
				if !db.resolved || info.Generation >= db.gen {
					db.gen = info.Generation
					db.homes = append([]HomeAddr(nil), info.Homes...)
					db.resolved = true
				}
			}
		}
		// With a fresh cache, redirect ourselves instead of asking a mate
		// we know is wrong.
		if werr := fc.offHomeLocked(db); werr != nil {
			return werr
		}
		r, err := fc.client.OpenDB(db.path)
		if err != nil {
			return err
		}
		db.r = r
		return nil
	})
	if err != nil {
		fc.mu.Lock()
		delete(fc.dbs, db)
		fc.mu.Unlock()
		return nil, err
	}
	return db, nil
}

// FailoverDB is a database handle that survives mate failover. It
// implements repl.Peer, so a replication session can ride through the
// death of the server it started against.
type FailoverDB struct {
	fc   *FailoverClient
	path string
	// r is the handle on the current mate; nil while disconnected.
	// stale is set when the current mate lacks the database.
	// Both are guarded by fc.mu.
	r     *RemoteDB
	stale error
	// Placement cache, guarded by fc.mu: the generation-stamped home set
	// from the last resolve or redirect. resolved=false means never
	// resolved; resolved with no homes means unplaced (any mate serves).
	gen      uint64
	homes    []HomeAddr
	resolved bool
}

// Placement returns the handle's cached placement: the generation and home
// set learned from the last resolve or redirect, and whether any resolution
// has happened yet.
func (f *FailoverDB) Placement() (gen uint64, homes []HomeAddr, resolved bool) {
	f.fc.mu.Lock()
	defer f.fc.mu.Unlock()
	return f.gen, append([]HomeAddr(nil), f.homes...), f.resolved
}

var _ repl.Peer = (*FailoverDB)(nil)

// Path returns the server-side path the database was opened by.
func (f *FailoverDB) Path() string { return f.path }

// Title returns the database title as reported by the current mate.
func (f *FailoverDB) Title() string {
	f.fc.mu.Lock()
	defer f.fc.mu.Unlock()
	if f.r == nil {
		return ""
	}
	return f.r.Title()
}

// Release forgets the handle: it is no longer re-opened after failover.
func (f *FailoverDB) Release() {
	f.fc.mu.Lock()
	defer f.fc.mu.Unlock()
	if f.r != nil {
		f.r.Release()
	}
	delete(f.fc.dbs, f)
}

// do runs one operation against the handle on whichever mate is current,
// with connection attempts biased toward this database's home mates.
func (f *FailoverDB) do(idempotent bool, fn func(r *RemoteDB) error) error {
	return f.doDeadline(idempotent, time.Time{}, fn)
}

// doDeadline is do under an explicit absolute deadline (zero: stamp from
// Client.OpBudget). Hedged reads pass the deadline they snapshotted, so
// primary and hedge run out of the SAME budget.
func (f *FailoverDB) doDeadline(idempotent bool, deadline time.Time, fn func(r *RemoteDB) error) error {
	return f.fc.withFailoverDeadline(f, idempotent, deadline, func() error {
		if f.stale != nil {
			return f.stale
		}
		if f.r == nil {
			return protoErrorf("failover handle not bound")
		}
		return fn(f.r)
	})
}

// ---- hedged reads ----

// hedgeBurst is the token-bucket depth for HedgeRateCap: short bursts of
// hedges are fine, sustained hedging is capped at the configured fraction.
const hedgeBurst = 3.0

// hedgeDelayLocked derives the delay before a hedge fires (fc.hmu held):
// the fixed HedgeDelay when configured, else latency EWMA + 3 x mean
// deviation — reads slower than that are in the distribution's far tail,
// which is exactly when a second mate is likely to answer first.
func (fc *FailoverClient) hedgeDelayLocked() time.Duration {
	if fc.opts.HedgeDelay > 0 {
		return fc.opts.HedgeDelay
	}
	d := time.Duration(fc.latEwmaUs+3*fc.latDevUs) * time.Microsecond
	const floor = 2 * time.Millisecond
	if d < floor {
		// Also the cold-start delay before any latency has been observed.
		return floor
	}
	return d
}

// recordReadLatency folds one successful read's duration into the EWMA and
// mean-deviation trackers (TCP-RTT-style gains: 1/8 and 1/4).
func (fc *FailoverClient) recordReadLatency(d time.Duration) {
	us := d.Microseconds()
	fc.hmu.Lock()
	if fc.latEwmaUs == 0 {
		fc.latEwmaUs = us
	} else {
		diff := us - fc.latEwmaUs
		fc.latEwmaUs += diff / 8
		if diff < 0 {
			diff = -diff
		}
		fc.latDevUs += (diff - fc.latDevUs) / 4
	}
	fc.hmu.Unlock()
}

// takeHedgeToken accrues HedgeRateCap tokens for an eligible read and
// tries to spend one; false means the rate cap says no hedge this time.
// It also claims the single hedge-in-flight slot.
func (fc *FailoverClient) takeHedgeToken() bool {
	fc.hmu.Lock()
	defer fc.hmu.Unlock()
	fc.hTokens += fc.opts.HedgeRateCap
	if fc.hTokens > hedgeBurst {
		fc.hTokens = hedgeBurst
	}
	if fc.hTokens < 1 || fc.hInFlight {
		return false
	}
	fc.hTokens--
	fc.hInFlight = true
	return true
}

// hedgeExec runs one read against a cached second-mate session, bounded by
// the same absolute deadline as the primary. alts lists acceptable hedge
// addresses (never the primary's). Must be entered with the hedge-in-
// flight slot held; it is released here.
func (fc *FailoverClient) hedgeExec(path string, deadline time.Time, alts []string, fn func(r *RemoteDB) error) error {
	defer func() {
		fc.hmu.Lock()
		fc.hInFlight = false
		fc.hmu.Unlock()
	}()
	fc.hmu.Lock()
	// Reuse the cached hedge session only while it points at an acceptable
	// mate; a stale one (e.g. now the primary) is dropped.
	ok := fc.hClient != nil
	if ok {
		ok = false
		for _, a := range alts {
			if a == fc.hAddr {
				ok = true
				break
			}
		}
	}
	if !ok {
		if fc.hClient != nil {
			fc.hClient.Close()
			fc.hClient = nil
			fc.hDBs = make(map[string]*RemoteDB)
		}
		c, err := DialOptions(alts[0], fc.user, fc.secret, fc.opts.Client)
		if err != nil {
			fc.hmu.Unlock()
			return err
		}
		fc.hClient, fc.hAddr = c, alts[0]
	}
	hc := fc.hClient
	rdb := fc.hDBs[path]
	fc.hmu.Unlock()
	if rdb == nil {
		r, err := hc.OpenDB(path)
		if err != nil {
			return err
		}
		fc.hmu.Lock()
		if fc.hClient == hc {
			fc.hDBs[path] = r
		}
		fc.hmu.Unlock()
		rdb = r
	}
	hc.setOpDeadline(deadline)
	err := fn(rdb)
	hc.setOpDeadline(time.Time{})
	if err != nil && Retryable(err) {
		// Transport fault: the cached session is suspect; drop it so the
		// next hedge dials fresh (possibly a different mate).
		fc.hmu.Lock()
		if fc.hClient == hc {
			hc.Close()
			fc.hClient = nil
			fc.hDBs = make(map[string]*RemoteDB)
		}
		fc.hmu.Unlock()
	}
	return err
}

// hedgeCancel severs an in-flight hedge (the primary won).
func (fc *FailoverClient) hedgeCancel() {
	fc.hmu.Lock()
	hc := fc.hClient
	fc.hmu.Unlock()
	if hc != nil {
		hc.CancelInflight()
	}
}

// hedgeSnapshot captures, under fc.mu, everything a hedged read needs
// before launching its primary goroutine: the primary client (to cancel it
// if the hedge wins), the operation deadline, and the alternate mate
// addresses. ok is false when hedging cannot apply (no budget, no second
// mate, no live session yet).
func (fc *FailoverClient) hedgeSnapshot(db *FailoverDB) (pc *Client, deadline time.Time, alts []string, ok bool) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.closed || fc.client == nil || fc.cur < 0 || fc.opts.Client.OpBudget <= 0 {
		return nil, time.Time{}, nil, false
	}
	deadline = time.Now().Add(fc.opts.Client.OpBudget)
	cur := fc.mates[fc.cur].addr
	// Candidate order honors breakers and availability; home-mate bias
	// applies when the database is placed.
	fc.routeHint = db
	order := fc.candidatesLocked()
	fc.routeHint = nil
	for _, i := range order {
		if a := fc.mates[i].addr; a != cur {
			alts = append(alts, a)
		}
	}
	if len(alts) == 0 {
		return nil, time.Time{}, nil, false
	}
	return fc.client, deadline, alts, true
}

// hedgeResult carries one racer's outcome.
type hedgeResult struct {
	err   error
	hedge bool
}

// hedgedRead runs fn as a hedged read: the primary mate gets a head start
// of one hedge delay; if it has not answered by then (and the rate cap
// allows), the same read runs against a second mate and the first success
// wins. The loser is cancelled — via CancelInflight plus the propagated
// deadline — so neither mate keeps working for a caller that already has
// its answer. fn must be idempotent and must tolerate being called
// concurrently on two different RemoteDBs; results are written through
// only by the winner (the caller's closure must guard against tearing —
// here each fn writes to its own locals and the winner's are copied out).
func hedgedRead[T any](f *FailoverDB, fn func(r *RemoteDB) (T, error)) (T, error) {
	fc := f.fc
	var winner T
	if !fc.opts.HedgeReads {
		err := f.do(true, func(r *RemoteDB) error {
			v, err := fn(r)
			if err == nil {
				winner = v
			}
			return err
		})
		return winner, err
	}
	pc, deadline, alts, ok := fc.hedgeSnapshot(f)
	if !ok {
		start := time.Now()
		err := f.do(true, func(r *RemoteDB) error {
			v, err := fn(r)
			if err == nil {
				winner = v
			}
			return err
		})
		if err == nil {
			fc.recordReadLatency(time.Since(start))
		}
		return winner, err
	}
	ch := make(chan hedgeResult, 2)
	var pv, hv T
	start := time.Now()
	go func() {
		err := f.doDeadline(true, deadline, func(r *RemoteDB) error {
			v, err := fn(r)
			if err == nil {
				pv = v
			}
			return err
		})
		ch <- hedgeResult{err: err}
	}()
	var hedgeLaunched bool
	timer := time.NewTimer(func() time.Duration {
		fc.hmu.Lock()
		defer fc.hmu.Unlock()
		return fc.hedgeDelayLocked()
	}())
	defer timer.Stop()
	var first hedgeResult
	select {
	case first = <-ch:
	case <-timer.C:
		if fc.takeHedgeToken() {
			hedgeLaunched = true
			fc.hedges.Add(1)
			go func() {
				err := fc.hedgeExec(f.path, deadline, alts, func(r *RemoteDB) error {
					v, err := fn(r)
					if err == nil {
						hv = v
					}
					return err
				})
				ch <- hedgeResult{err: err, hedge: true}
			}()
		}
		first = <-ch
	}
	if !hedgeLaunched {
		if first.err == nil {
			fc.recordReadLatency(time.Since(start))
			return pv, nil
		}
		return winner, first.err
	}
	// Two racers in flight. First success wins; the loser is severed so it
	// stops consuming its mate.
	if first.err == nil {
		if first.hedge {
			fc.hedgeWins.Add(1)
			pc.CancelInflight()
			// Drain the primary's (cancelled) result so the goroutine is
			// done with fc.mu before we return; CancelInflight makes this
			// prompt.
			<-ch
			return hv, nil
		}
		fc.recordReadLatency(time.Since(start))
		fc.hedgeCancel()
		return pv, nil
	}
	second := <-ch
	if second.err == nil {
		if second.hedge {
			fc.hedgeWins.Add(1)
			return hv, nil
		}
		fc.recordReadLatency(time.Since(start))
		return pv, nil
	}
	// Both failed: prefer the primary's error (it carries failover context
	// and ambiguity verdicts; the hedge was best-effort).
	if first.hedge {
		return winner, second.err
	}
	return winner, first.err
}

// ReplicaID implements repl.Peer.
func (f *FailoverDB) ReplicaID() (nsf.ReplicaID, error) {
	var id nsf.ReplicaID
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		id, err = r.ReplicaID()
		return err
	})
	return id, err
}

// Summaries implements repl.Peer.
func (f *FailoverDB) Summaries(since nsf.Timestamp, formulaSrc string) ([]repl.Summary, nsf.Timestamp, error) {
	var sums []repl.Summary
	var now nsf.Timestamp
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		sums, now, err = r.Summaries(since, formulaSrc)
		return err
	})
	return sums, now, err
}

// Fetch implements repl.Peer.
func (f *FailoverDB) Fetch(unids []nsf.UNID) ([]*nsf.Note, error) {
	var notes []*nsf.Note
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		notes, err = r.Fetch(unids)
		return err
	})
	return notes, err
}

// Apply implements repl.Peer. Replication applies are idempotent by the
// OID rules, so a batch interrupted by a mate's death is re-sent to the
// survivor.
func (f *FailoverDB) Apply(notes []*nsf.Note) (repl.ApplyStats, error) {
	var st repl.ApplyStats
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		st, err = r.Apply(notes)
		return err
	})
	return st, err
}

// Get fetches a note from whichever mate is current. With HedgeReads on, a
// slow mate is raced by a second one and the first answer wins.
func (f *FailoverDB) Get(unid nsf.UNID) (*nsf.Note, error) {
	return hedgedRead(f, func(r *RemoteDB) (*nsf.Note, error) {
		return r.Get(unid)
	})
}

// Create stores a new document. Creation is not idempotent: a mid-trip
// mate death surfaces the error (the write may or may not have landed);
// the caller decides whether to re-issue, and the next call fails over.
func (f *FailoverDB) Create(n *nsf.Note) error {
	return f.do(false, func(r *RemoteDB) error { return r.Create(n) })
}

// Update stores a modified document; not idempotent, like Create.
func (f *FailoverDB) Update(n *nsf.Note) error {
	return f.do(false, func(r *RemoteDB) error { return r.Update(n) })
}

// Delete replaces a document with a deletion stub (idempotent).
func (f *FailoverDB) Delete(unid nsf.UNID) error {
	return f.do(true, func(r *RemoteDB) error { return r.Delete(unid) })
}

// PutBatch stores documents create-or-update through one round trip. The
// batch cursor makes it exactly-once even across failover or a placement
// redirect mid-stream, so it retries as idempotent.
func (f *FailoverDB) PutBatch(notes []*nsf.Note) (int, error) {
	var stored int
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		stored, err = r.PutBatch(notes)
		return err
	})
	return stored, err
}

// Search runs a full-text query on the current mate.
func (f *FailoverDB) Search(query string) ([]ft.Result, error) {
	var out []ft.Result
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		out, err = r.Search(query)
		return err
	})
	return out, err
}

// SearchPage runs one page of a full-text query, optionally pre-joining
// summary columns, on the current mate (hedged when HedgeReads is on —
// search pages address results by rank, valid on any mate).
func (f *FailoverDB) SearchPage(query string, columns []string, start, limit int) (SearchPage, error) {
	return hedgedRead(f, func(r *RemoteDB) (SearchPage, error) {
		return r.SearchPage(query, columns, start, limit)
	})
}

// ViewRows renders a view on the current mate, paging through it. A mate
// switch between pages restarts nothing: view pages address rows by index,
// so the next page simply comes from the new mate's rendering.
func (f *FailoverDB) ViewRows(view string) ([]ViewRow, error) {
	var rows []ViewRow
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		rows, err = r.ViewRows(view)
		return err
	})
	return rows, err
}

// ViewPage fetches one page of a rendered view from the current mate
// (hedged when HedgeReads is on — view pages address rows by index, valid
// on any mate).
func (f *FailoverDB) ViewPage(view string, start, limit int) (ViewPage, error) {
	return hedgedRead(f, func(r *RemoteDB) (ViewPage, error) {
		return r.ViewPage(view, start, limit)
	})
}

// ScanPage runs one page of a bulk scan on the current mate. Scan cursors
// are bound to the server that minted them (NoteIDs are per-copy), so a
// page resumed after a mate switch fails with a server error rather than
// silently skipping or repeating documents; callers restart the scan with
// a nil cursor in that case.
func (f *FailoverDB) ScanPage(opts ScanOptions, cursor []byte) (ScanPage, error) {
	var p ScanPage
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		p, err = r.ScanPage(opts, cursor)
		return err
	})
	return p, err
}

// Scan pages a formula-filtered, projected scan through fn. A mate switch
// mid-scan invalidates the cursor (see ScanPage) and surfaces as an error.
func (f *FailoverDB) Scan(opts ScanOptions, fn func(ScanRow) bool) error {
	var cursor []byte
	for {
		p, err := f.ScanPage(opts, cursor)
		if err != nil {
			return err
		}
		for _, row := range p.Rows {
			if !fn(row) {
				return nil
			}
		}
		if !p.More {
			return nil
		}
		cursor = p.Cursor
	}
}

// Info fetches the database statistics from the current mate.
func (f *FailoverDB) Info() (DBInfo, error) {
	var info DBInfo
	err := f.do(true, func(r *RemoteDB) error {
		var err error
		info, err = r.Info()
		return err
	})
	return info, err
}
