package wire

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nsf"
)

// busyResp builds a scripted StatusBusy response for the request in payload.
func busyResp(payload []byte, state byte, avail uint32) []byte {
	return NewResp(Op(payload[0]), StatusBusy).U8(state).U32(avail).Bytes()
}

// TestBusyShedRetriesNonIdempotent: a shed request provably never executed,
// so the client may re-send it even though creates are not idempotent. The
// scripted server sheds the first create and accepts the retry.
func TestBusyShedRetriesNonIdempotent(t *testing.T) {
	var sheds atomic.Int32
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		switch opNum {
		case 0:
			return openOK(conn, payload)
		case 1:
			sheds.Add(1)
			return WriteFrame(conn, busyResp(payload, StateOpen, 55)) == nil
		default:
			n := nsf.NewNote(nsf.ClassDocument)
			resp := NewResp(OpCreateNote, StatusOK).Note(n)
			return WriteFrame(conn, resp.Bytes()) == nil
		}
	})
	c, err := DialOptions(addr, "u", "s", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Create(nsf.NewNote(nsf.ClassDocument)); err != nil {
		t.Fatalf("create after shed: %v", err)
	}
	if sheds.Load() != 1 {
		t.Errorf("sheds = %d, want 1", sheds.Load())
	}
}

// TestBusyErrorCarriesAvailability: with retries disabled, a shed surfaces
// as a BusyError carrying the server's state and availability index, is
// recognized by errors.Is(err, ErrServerBusy), and counts as retryable.
func TestBusyErrorCarriesAvailability(t *testing.T) {
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		if opNum == 0 {
			return openOK(conn, payload)
		}
		return WriteFrame(conn, busyResp(payload, StateRestricted, 7)) == nil
	})
	c, err := DialOptions(addr, "u", "s", noRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Info()
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BusyError", err)
	}
	if !errors.Is(err, ErrServerBusy) {
		t.Error("BusyError is not ErrServerBusy")
	}
	if be.State != StateRestricted || be.Availability != 7 {
		t.Errorf("BusyError = state %d avail %d, want restricted/7", be.State, be.Availability)
	}
	if !Retryable(err) {
		t.Error("shed response not classified retryable")
	}
}

func failoverTestOpts() FailoverOptions {
	o := noRetryOpts()
	return FailoverOptions{Client: o, Cooldown: 50 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond}
}

// TestFailoverBusyRedirect: a mate that sheds everything drives the client
// to the next mate, and the shed's availability index is remembered against
// the busy mate.
func TestFailoverBusyRedirect(t *testing.T) {
	busyAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		return WriteFrame(conn, busyResp(payload, StateOpen, 10)) == nil
	})
	okAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		return openOK(conn, payload)
	})
	fc, err := DialFailover([]string{busyAddr, okAddr}, "u", "s", failoverTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.OpenDB("x.nsf"); err != nil {
		t.Fatalf("open across busy redirect: %v", err)
	}
	if cur, _ := fc.Current(); cur != okAddr {
		t.Errorf("current mate = %s, want the non-busy one %s", cur, okAddr)
	}
	if st := fc.Stats(); st.BusyRedirects == 0 {
		t.Errorf("stats = %+v, want BusyRedirects > 0", st)
	}
}

// TestFailoverDeadMateAtDial: an unreachable first mate must not fail the
// session — the dial falls through to the live one.
func TestFailoverDeadMateAtDial(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	okAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		return openOK(conn, payload)
	})
	fc, err := DialFailover([]string{deadAddr, okAddr}, "u", "s", failoverTestOpts())
	if err != nil {
		t.Fatalf("dial with one dead mate: %v", err)
	}
	defer fc.Close()
	if cur, _ := fc.Current(); cur != okAddr {
		t.Errorf("current mate = %s, want %s", cur, okAddr)
	}
}

// TestFailoverMidSessionRebindsHandles: the mate dies between operations on
// an open handle; an idempotent operation retries on the survivor, against a
// handle transparently re-opened there.
func TestFailoverMidSessionRebindsHandles(t *testing.T) {
	dieAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		if opNum == 0 {
			return openOK(conn, payload)
		}
		return false // kill the connection on the first real op
	})
	var served atomic.Int32
	okAddr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		if Op(payload[0]) == OpOpenDB {
			return openOK(conn, payload)
		}
		served.Add(1)
		n := nsf.NewNote(nsf.ClassDocument)
		return WriteFrame(conn, NewResp(OpGetNote, StatusOK).Note(n).Bytes()) == nil
	})
	fc, err := DialFailover([]string{dieAddr, okAddr}, "u", "s", failoverTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(nsf.UNID{}); err != nil {
		t.Fatalf("get across mate death: %v", err)
	}
	if served.Load() == 0 {
		t.Error("survivor never served the retried op")
	}
	if cur, _ := fc.Current(); cur != okAddr {
		t.Errorf("current mate = %s, want survivor %s", cur, okAddr)
	}
	if st := fc.Stats(); st.Failovers == 0 {
		t.Errorf("stats = %+v, want Failovers > 0", st)
	}
}
