package wire

import (
	"math"

	"repro/internal/ft"
	"repro/internal/nsf"
)

// Bulk read protocol. Three ops move many rows per round trip, all paged so
// no response can approach MaxFrame regardless of view or database size:
//
//   - OpViewRows streams a rendered view in (start, limit) pages. Every row
//     is prefixed with an explicit kind byte, so a category header can never
//     be confused with a document that happens to render zero columns.
//   - OpScan is the NSFSearch shape: selection formula + item projection,
//     returning typed values and an opaque resume cursor per page.
//   - OpSearch returns ranked full-text hits in (start, limit) pages, with
//     optional pre-joined summary columns.
//
// Pages end with a sentinel (rowKindEnd) rather than a leading count: the
// server encodes rows until its byte budget fills and only then knows how
// many fit, and a sentinel stream needs no count-sized preallocation on the
// decode side.

// Row kind bytes framing every bulk-read row.
const (
	rowKindEnd      byte = 0 // end of rows; trailer follows
	rowKindDoc      byte = 1 // document row
	rowKindCategory byte = 2 // synthesized category header (views only)
)

// ViewRow is a rendered remote view row.
type ViewRow struct {
	// IsCategory marks synthesized category header rows explicitly — a
	// document row may legitimately render zero columns and an empty
	// category text, so the distinction travels as a row kind on the wire.
	IsCategory bool
	// Category is the header text of a category row; empty for documents.
	Category string
	Indent   int
	// UNID identifies the document of a document row; zero for categories.
	UNID    nsf.UNID
	Columns []string
}

// ViewPage is one page of a rendered view.
type ViewPage struct {
	Rows []ViewRow
	// Total is the full rendering's row count (grand-total row excluded).
	Total int
	// Start echoes the requested start index; Next is the index the next
	// page begins at (Start + len(Rows)).
	Start, Next int
	// More reports whether rows remain past Next.
	More bool
}

// ScanRow is one projected document from a bulk scan.
type ScanRow struct {
	NoteID nsf.NoteID
	UNID   nsf.UNID
	// Values holds one typed value per requested column, in request order.
	// A column the document lacks is the zero Value (Type 0).
	Values []nsf.Value
}

// ScanPage is one page of a bulk scan.
type ScanPage struct {
	Rows []ScanRow
	// Cursor resumes the scan after the last row of this page. It is
	// opaque and bound to the serving server: NoteIDs are per-copy, so a
	// cursor must not be replayed against a different replica — the server
	// rejects one that is.
	Cursor []byte
	More   bool
}

// ScanOptions parameterize a bulk scan.
type ScanOptions struct {
	// Formula is a selection formula evaluated server-side; empty selects
	// every document.
	Formula string
	// Columns are the item names to project. Empty projects nothing —
	// pages carry identities only.
	Columns []string
	// Limit caps rows per page; 0 accepts the server's page size. The
	// server may return fewer rows than asked either way (byte budget,
	// load shedding); only Cursor/More say whether the scan is done.
	Limit int
}

// SearchHit is one full-text hit with optional joined summary columns.
type SearchHit struct {
	UNID  nsf.UNID
	Score float64
	// Values holds one typed value per requested column (nil when the
	// query requested no columns).
	Values []nsf.Value
}

// SearchPage is one page of ranked full-text hits.
type SearchPage struct {
	Hits        []SearchHit
	Total       int
	Start, Next int
	More        bool
}

// decodeViewPage parses an OpViewRows response body.
func decodeViewPage(d *Dec) (ViewPage, error) {
	p := ViewPage{Total: int(d.U32()), Start: int(d.U32())}
	for d.Err() == nil {
		kind := d.U8()
		if kind == rowKindEnd || d.Err() != nil {
			break
		}
		var row ViewRow
		switch kind {
		case rowKindCategory:
			row.IsCategory = true
			row.Category = d.Str()
			row.Indent = int(d.U32())
		case rowKindDoc:
			row.Indent = int(d.U32())
			row.UNID = d.UNID()
			if cols := d.U32(); cols > 0 {
				row.Columns = make([]string, 0, d.Cap(cols, 1))
				for j := uint32(0); j < cols && d.Err() == nil; j++ {
					row.Columns = append(row.Columns, d.Str())
				}
			}
		default:
			return p, protoErrorf("bad view row kind %#x", kind)
		}
		p.Rows = append(p.Rows, row)
	}
	p.More = d.U8() != 0
	p.Next = int(d.U32())
	return p, d.Err()
}

// decodeScanPage parses an OpScan response body.
func decodeScanPage(d *Dec, ncols int) (ScanPage, error) {
	var p ScanPage
	for d.Err() == nil {
		kind := d.U8()
		if kind == rowKindEnd || d.Err() != nil {
			break
		}
		if kind != rowKindDoc {
			return p, protoErrorf("bad scan row kind %#x", kind)
		}
		row := ScanRow{NoteID: nsf.NoteID(d.U32()), UNID: d.UNID()}
		if ncols > 0 {
			row.Values = make([]nsf.Value, ncols)
			for j := 0; j < ncols && d.Err() == nil; j++ {
				if d.U8() != 0 {
					row.Values[j] = d.Value()
				}
			}
		}
		p.Rows = append(p.Rows, row)
	}
	p.More = d.U8() != 0
	// The cursor blob aliases the response buffer; copy so the page owns it.
	p.Cursor = append([]byte(nil), d.Blob()...)
	return p, d.Err()
}

// decodeSearchPage parses an OpSearch response body. Scores travel as
// IEEE-754 bits, so zero and negative scores round-trip exactly.
func decodeSearchPage(d *Dec, ncols int) (SearchPage, error) {
	p := SearchPage{Total: int(d.U32()), Start: int(d.U32())}
	for d.Err() == nil {
		kind := d.U8()
		if kind == rowKindEnd || d.Err() != nil {
			break
		}
		if kind != rowKindDoc {
			return p, protoErrorf("bad search row kind %#x", kind)
		}
		hit := SearchHit{UNID: d.UNID(), Score: math.Float64frombits(d.U64())}
		if ncols > 0 {
			hit.Values = make([]nsf.Value, ncols)
			for j := 0; j < ncols && d.Err() == nil; j++ {
				if d.U8() != 0 {
					hit.Values[j] = d.Value()
				}
			}
		}
		p.Hits = append(p.Hits, hit)
	}
	p.More = d.U8() != 0
	p.Next = int(d.U32())
	return p, d.Err()
}

// ViewPage fetches one page of a rendered view: rows [start, start+limit)
// of the server-side rendering with the caller's read filtering, bounded
// by the server's page budget. limit 0 accepts the server's page size.
func (r *RemoteDB) ViewPage(view string, start, limit int) (ViewPage, error) {
	d, err := r.call(OpViewRows, true, func() *Enc {
		return NewEnc(OpViewRows).U32(r.handle).Str(view).
			U32(uint32(start)).U32(uint32(limit))
	})
	if err != nil {
		return ViewPage{}, err
	}
	return decodeViewPage(d)
}

// ViewRows renders a whole view by paging through it. Any view streams in
// bounded frames — a rendering larger than MaxFrame, which the one-shot
// protocol could not carry at all, simply takes more pages. Each page is
// its own idempotent round trip, so a reconnect resumes at the next page
// rather than restarting. Rows shifted by concurrent updates between pages
// may be skipped or repeated, as with any stateless cursor.
func (r *RemoteDB) ViewRows(view string) ([]ViewRow, error) {
	var rows []ViewRow
	for start := 0; ; {
		p, err := r.ViewPage(view, start, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, p.Rows...)
		if !p.More || p.Next <= start {
			return rows, nil
		}
		start = p.Next
	}
}

// ScanPage runs one page of a formula-filtered scan with item projection.
// Pass nil (or a previous page's) cursor; the returned page's Cursor
// resumes after its last row, even on a fresh connection to the same
// server.
func (r *RemoteDB) ScanPage(opts ScanOptions, cursor []byte) (ScanPage, error) {
	d, err := r.call(OpScan, true, func() *Enc {
		req := NewEnc(OpScan).U32(r.handle).Str(opts.Formula).
			U32(uint32(opts.Limit)).U32(uint32(len(opts.Columns)))
		for _, c := range opts.Columns {
			req.Str(c)
		}
		return req.Blob(cursor)
	})
	if err != nil {
		return ScanPage{}, err
	}
	return decodeScanPage(d, len(opts.Columns))
}

// Scan pages a formula-filtered, projected scan through fn until the scan
// is exhausted or fn returns false.
func (r *RemoteDB) Scan(opts ScanOptions, fn func(ScanRow) bool) error {
	var cursor []byte
	for {
		p, err := r.ScanPage(opts, cursor)
		if err != nil {
			return err
		}
		for _, row := range p.Rows {
			if !fn(row) {
				return nil
			}
		}
		if !p.More {
			return nil
		}
		cursor = p.Cursor
	}
}

// SearchPage runs a full-text query server-side and returns one page of
// ranked hits, optionally pre-joined with the named summary columns so the
// hit list renders without per-hit Get calls.
func (r *RemoteDB) SearchPage(query string, columns []string, start, limit int) (SearchPage, error) {
	d, err := r.call(OpSearch, true, func() *Enc {
		req := NewEnc(OpSearch).U32(r.handle).Str(query).
			U32(uint32(start)).U32(uint32(limit)).U32(uint32(len(columns)))
		for _, c := range columns {
			req.Str(c)
		}
		return req
	})
	if err != nil {
		return SearchPage{}, err
	}
	return decodeSearchPage(d, len(columns))
}

// Search runs a full-text query server-side, paging through every hit.
func (r *RemoteDB) Search(query string) ([]ft.Result, error) {
	var out []ft.Result
	for start := 0; ; {
		p, err := r.SearchPage(query, nil, start, 0)
		if err != nil {
			return nil, err
		}
		for _, h := range p.Hits {
			out = append(out, ft.Result{UNID: h.UNID, Score: h.Score})
		}
		if !p.More || p.Next <= start {
			return out, nil
		}
		start = p.Next
	}
}
