package wire

import (
	"net"
	"time"
)

// ResolveInfo is a resolved placement record: where a database lives, stamped
// with the directory generation that produced it. A client caches these and
// treats any record with a higher generation (from a later resolve or a
// StatusWrongMate redirect) as strictly fresher.
type ResolveInfo struct {
	// Path is the database path the record describes.
	Path string
	// Generation is the placement generation; 0 with empty Homes means the
	// database is unplaced and any mate may serve it.
	Generation uint64
	// Replicas is the target replica factor.
	Replicas int
	// Homes lists the mates that home the database, with wire addresses
	// where the resolving server knows them.
	Homes []HomeAddr
}

// Unplaced reports whether the record says "no placement: served anywhere".
func (r ResolveInfo) Unplaced() bool { return r.Generation == 0 && len(r.Homes) == 0 }

// encoding of one resolve record (shared by OpResolve responses and
// StatusWrongMate redirect bodies):
//
//	Str(path) U64(generation) U32(replicas) U32(count) { Str(name) Str(addr) }*

// decResolveRecord parses one placement record.
func decResolveRecord(d *Dec) (ResolveInfo, error) {
	info := ResolveInfo{
		Path:       d.Str(),
		Generation: d.U64(),
		Replicas:   int(d.U32()),
	}
	count := int(d.U32())
	for i := 0; i < count && d.Err() == nil; i++ {
		info.Homes = append(info.Homes, HomeAddr{Name: d.Str(), Addr: d.Str()})
	}
	return info, d.Err()
}

// decWrongMate parses a StatusWrongMate response body into the redirect
// error. A malformed body still yields a usable (if empty) redirect: the
// client falls back to a full re-resolve.
func decWrongMate(op Op, d *Dec) *WrongMateError {
	info, err := decResolveRecord(d)
	if err != nil {
		return &WrongMateError{Op: op}
	}
	return &WrongMateError{Op: op, Path: info.Path, Generation: info.Generation, Homes: info.Homes}
}

// Resolve asks the server where path lives. Resolution reads directory
// metadata only, so it retries safely.
func (c *Client) Resolve(path string) (ResolveInfo, error) {
	d, err := c.roundTrip(OpResolve, NewEnc(OpResolve).Str(path))
	if err != nil {
		return ResolveInfo{}, err
	}
	if n := int(d.U32()); n != 1 {
		if err := d.Err(); err != nil {
			return ResolveInfo{}, err
		}
		return ResolveInfo{}, protoErrorf("resolve returned %d records for one path", n)
	}
	return decResolveRecord(d)
}

// Placements lists every placement record the server knows.
func (c *Client) Placements() ([]ResolveInfo, error) {
	d, err := c.roundTrip(OpResolve, NewEnc(OpResolve).Str(""))
	if err != nil {
		return nil, err
	}
	count := int(d.U32())
	out := make([]ResolveInfo, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		info, err := decResolveRecord(d)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, d.Err()
}

// resolveProbe performs one unauthenticated OpResolve exchange and returns
// the raw response decoder positioned at the record count.
func resolveProbe(addr, path string, dialer func(network, addr string) (net.Conn, error), timeout time.Duration) (*Dec, error) {
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	if dialer == nil {
		dialer = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, timeout)
		}
	}
	conn, err := dialer("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, NewEnc(OpResolve).Str(path).Bytes()); err != nil {
		return nil, err
	}
	payload, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if len(payload) < 2 || payload[0] != byte(OpResolve)|respBit {
		return nil, protoErrorf("bad resolve probe response")
	}
	if payload[1] != StatusOK {
		return nil, &ServerError{Op: OpResolve, Msg: "resolve probe refused"}
	}
	return NewDec(payload[2:]), nil
}

// ResolvePlacement performs a one-shot, unauthenticated placement resolve
// against addr, like ProbeAvailability: dial, ask, close. Failover clients
// use it to locate a database before (or instead of) opening a session, and
// operator tooling uses it to inspect routing without credentials.
func ResolvePlacement(addr, path string, dialer func(network, addr string) (net.Conn, error), timeout time.Duration) (ResolveInfo, error) {
	d, err := resolveProbe(addr, path, dialer, timeout)
	if err != nil {
		return ResolveInfo{}, err
	}
	if n := int(d.U32()); n != 1 {
		if err := d.Err(); err != nil {
			return ResolveInfo{}, err
		}
		return ResolveInfo{}, protoErrorf("resolve returned %d records for one path", n)
	}
	return decResolveRecord(d)
}

// ListPlacements performs a one-shot, unauthenticated listing of every
// placement record addr knows.
func ListPlacements(addr string, dialer func(network, addr string) (net.Conn, error), timeout time.Duration) ([]ResolveInfo, error) {
	d, err := resolveProbe(addr, "", dialer, timeout)
	if err != nil {
		return nil, err
	}
	count := int(d.U32())
	out := make([]ResolveInfo, 0, count)
	for i := 0; i < count && d.Err() == nil; i++ {
		info, err := decResolveRecord(d)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, d.Err()
}
