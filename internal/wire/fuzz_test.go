package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameSeed length-prefixes a payload the way WriteFrame does.
func frameSeed(payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader — the
// first thing every server connection and client response passes through.
// It must never panic, and any frame it accepts must round-trip through
// WriteFrame byte-identically.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameSeed(nil))
	f.Add(frameSeed([]byte{byte(OpHello)}))
	f.Add(frameSeed(NewEnc(OpGetNote).U32(1).Str("db.nsf").Bytes()))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255})
	f.Add([]byte{1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// ReadFrame sizes its buffer from the length prefix before the body
		// arrives. Skip inputs that declare a legal-but-huge frame they never
		// deliver: they only exercise an io.ReadFull failure while costing
		// the fuzzer a giant allocation per execution.
		if len(data) >= 4 {
			if n := binary.LittleEndian.Uint32(data); n > 1<<20 && n <= MaxFrame {
				t.Skip()
			}
		}
		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-write of accepted frame failed: %v", err)
		}
		got, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-read of accepted frame failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("frame round trip changed the payload")
		}
	})
}
