package wire

import (
	"time"

	"repro/internal/mesh"
)

// MeshLink appends a mesh link definition.
func (e *Enc) MeshLink(l mesh.Link) *Enc {
	return e.Str(l.Name).Str(l.Peer).Str(l.Glob).Str(l.Formula).
		U8(byte(l.Direction)).U8(byte(l.Class)).
		U64(uint64(l.Interval)).U64(uint64(l.Debounce))
}

// MeshLink reads a mesh link definition.
func (d *Dec) MeshLink() mesh.Link {
	return mesh.Link{
		Name:      d.Str(),
		Peer:      d.Str(),
		Glob:      d.Str(),
		Formula:   d.Str(),
		Direction: mesh.Direction(d.U8()),
		Class:     mesh.Class(d.U8()),
		Interval:  time.Duration(d.U64()),
		Debounce:  time.Duration(d.U64()),
	}
}

// MeshLinkStatus appends a link's live status.
func (e *Enc) MeshLinkStatus(st mesh.LinkStatus) *Enc {
	e.MeshLink(st.Link)
	broken := byte(0)
	if st.BreakerOpen {
		broken = 1
	}
	return e.U64(st.Rounds).U64(st.Failures).U32(uint32(st.ConsecFails)).U8(broken).
		U64(st.SkippedDBs).U64(st.NotesIn).U64(st.NotesOut).
		U64(st.BytesIn).U64(st.BytesOut).U64(uint64(st.Lag)).Str(st.Note)
}

// MeshLinkStatus reads a link's live status.
func (d *Dec) MeshLinkStatus() mesh.LinkStatus {
	st := mesh.LinkStatus{Link: d.MeshLink()}
	st.Rounds = d.U64()
	st.Failures = d.U64()
	st.ConsecFails = int(d.U32())
	st.BreakerOpen = d.U8() == 1
	st.SkippedDBs = d.U64()
	st.NotesIn = d.U64()
	st.NotesOut = d.U64()
	st.BytesIn = d.U64()
	st.BytesOut = d.U64()
	st.Lag = time.Duration(d.U64())
	st.Note = d.Str()
	return st
}
