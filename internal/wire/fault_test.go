package wire

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nsf"
)

// fastOpts are client options tuned so failing tests fail in milliseconds,
// not default production backoffs.
func fastOpts() Options {
	return Options{
		DialTimeout: 2 * time.Second,
		OpTimeout:   500 * time.Millisecond,
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Jitter:      rand.New(rand.NewSource(1)),
	}
}

func noRetryOpts() Options {
	o := fastOpts()
	o.MaxRetries = -1
	return o
}

// scriptServer runs a minimal wire server whose behavior after a
// successful hello is decided per-connection by script(conn, opNumber,
// payload) returning false to kill the connection.
func scriptServer(t *testing.T, script func(conn net.Conn, opNum int, payload []byte) bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				// Hello exchange: accept anything.
				if _, err := ReadFrame(conn); err != nil {
					return
				}
				if err := WriteFrame(conn, NewResp(OpHello, StatusOK).Bytes()); err != nil {
					return
				}
				for opNum := 0; ; opNum++ {
					payload, err := ReadFrame(conn)
					if err != nil {
						return
					}
					if !script(conn, opNum, payload) {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// openOK answers OpOpenDB requests with a fixed handle so scripts can get
// a client past OpenDB.
func openOK(conn net.Conn, payload []byte) bool {
	var replica nsf.ReplicaID
	resp := NewResp(OpOpenDB, StatusOK).U32(7).Raw(replica[:]).Str("scripted")
	return WriteFrame(conn, resp.Bytes()) == nil
}

func TestClientTimeoutOnSilentServer(t *testing.T) {
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		// Swallow every op after hello: never respond, hold the conn.
		time.Sleep(10 * time.Second)
		return false
	})
	c, err := DialOptions(addr, "u", "s", noRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.OpenDB("x.nsf")
	if err == nil {
		t.Fatal("silent server did not time out")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("operation blocked %v, deadline did not bound it", elapsed)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout", err)
	}
	if !Retryable(err) {
		t.Error("timeout classified non-retryable")
	}
}

func TestClientRejectsTruncatedResponse(t *testing.T) {
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		// Claim an 80-byte frame, deliver 10, die.
		hdr := []byte{80, 0, 0, 0}
		conn.Write(hdr)
		conn.Write(make([]byte, 10))
		return false
	})
	c, err := DialOptions(addr, "u", "s", noRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDB("x.nsf"); err == nil {
		t.Fatal("truncated response accepted")
	} else if !Retryable(err) {
		t.Errorf("mid-frame EOF %v classified non-retryable", err)
	}
}

func TestClientRejectsOversizedLengthPrefix(t *testing.T) {
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame claim
		return false
	})
	c, err := DialOptions(addr, "u", "s", noRetryOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.OpenDB("x.nsf"); err == nil {
		t.Fatal("hostile length prefix accepted")
	}
}

func TestClientRejectsGarbageAndWrongOp(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"one byte":  {0x41},
		"wrong op":  NewResp(OpSearch, StatusOK).Bytes(),
		"no status": {byte(OpOpenDB) | respBit},
		"garbage":   {0xDE, 0xAD, 0xBE, 0xEF, 0x99, 0x1, 0x2, 0x3},
	}
	for name, resp := range cases {
		t.Run(name, func(t *testing.T) {
			addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
				return WriteFrame(conn, resp) == nil
			})
			c, err := DialOptions(addr, "u", "s", noRetryOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := c.OpenDB("x.nsf"); err == nil {
				t.Fatal("corrupt response accepted")
			}
		})
	}
}

func TestClientRetriesThroughSeveredConnections(t *testing.T) {
	// The server kills the connection on the first two data requests, then
	// behaves. With retries enabled the caller never notices.
	var kills atomic.Int32
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		if kills.Load() < 2 && Op(payload[0]) == OpDeleteNote {
			kills.Add(1)
			return false // sever instead of answering
		}
		switch Op(payload[0]) {
		case OpOpenDB:
			return openOK(conn, payload)
		case OpDeleteNote:
			return WriteFrame(conn, NewResp(OpDeleteNote, StatusOK).Bytes()) == nil
		}
		return false
	})
	c, err := DialOptions(addr, "u", "s", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(nsf.NewUNID()); err != nil {
		t.Fatalf("retryable op failed despite retries: %v", err)
	}
	if kills.Load() != 2 {
		t.Fatalf("server killed %d connections, want 2", kills.Load())
	}
}

func TestClientDoesNotResendNonIdempotentOps(t *testing.T) {
	// Create must NOT be re-sent after a mid-trip sever: the server may
	// have executed it. The script counts create attempts and always
	// severs, so a retrying client would show attempts > 1.
	var creates atomic.Int32
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		switch Op(payload[0]) {
		case OpOpenDB:
			return openOK(conn, payload)
		case OpCreateNote:
			creates.Add(1)
			return false
		}
		return false
	})
	c, err := DialOptions(addr, "u", "s", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	n := nsf.NewNote(nsf.ClassDocument)
	if err := db.Create(n); err == nil {
		t.Fatal("severed create reported success")
	}
	if got := creates.Load(); got != 1 {
		t.Fatalf("non-idempotent create sent %d times", got)
	}
}

func TestClientReconnectReopensHandles(t *testing.T) {
	// Track per-connection opens: after a sever, the next Delete must be
	// preceded by a fresh hello + OpOpenDB on the new connection.
	var opens atomic.Int32
	severed := atomic.Bool{}
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		switch Op(payload[0]) {
		case OpOpenDB:
			opens.Add(1)
			return openOK(conn, payload)
		case OpDeleteNote:
			if !severed.Load() {
				severed.Store(true)
				return false
			}
			return WriteFrame(conn, NewResp(OpDeleteNote, StatusOK).Bytes()) == nil
		}
		return false
	})
	c, err := DialOptions(addr, "u", "s", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(nsf.NewUNID()); err != nil {
		t.Fatalf("delete after sever: %v", err)
	}
	if got := opens.Load(); got != 2 {
		t.Fatalf("handle opened %d times, want 2 (initial + rebind)", got)
	}
}

func TestServerErrorsAreNotRetried(t *testing.T) {
	var attempts atomic.Int32
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		attempts.Add(1)
		resp := NewResp(Op(payload[0]), StatusError).Str("no such database")
		return WriteFrame(conn, resp.Bytes()) == nil
	})
	c, err := DialOptions(addr, "u", "s", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.OpenDB("missing.nsf")
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ServerError", err)
	}
	if Retryable(err) {
		t.Error("server error classified retryable")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("server error retried: %d attempts", got)
	}
}

func TestClosedClientFailsFast(t *testing.T) {
	addr := scriptServer(t, func(conn net.Conn, opNum int, payload []byte) bool {
		return openOK(conn, payload)
	})
	c, err := DialOptions(addr, "u", "s", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	db, err := c.OpenDB("x.nsf")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := db.Delete(nsf.NewUNID()); !errors.Is(err, ErrClosed) {
		t.Fatalf("op on closed client = %v, want ErrClosed", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
		{&ServerError{Op: OpOpenDB, Msg: "denied"}, false},
		{protoErrorf("desync"), true},
		{errors.New("some app error"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
