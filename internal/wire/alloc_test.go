package wire

import (
	"testing"

	"repro/internal/nsf"
)

// TestEncPoolingSteadyStateAllocFree asserts the encoder pool works: in
// steady state, building a response payload (get → append fields → Bytes →
// Release) performs zero heap allocations. This is the regression guard for
// the per-message Enc and buffer churn the pool exists to remove.
func TestEncPoolingSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	warm := func() {
		e := NewResp(OpGetNote, StatusOK).U32(7).Str("subject").U64(99).
			Blob([]byte("0123456789abcdef"))
		_ = e.Bytes()
		e.Release()
	}
	for i := 0; i < 16; i++ {
		warm() // grow pooled buffers past the working size
	}
	if avg := testing.AllocsPerRun(200, warm); avg >= 1 {
		t.Errorf("pooled response encode allocates %.1f times per op, want 0", avg)
	}
}

// TestEncNotePooledScratch asserts the note-serialization scratch buffer is
// reused: appending a note to a pooled encoder settles to zero allocations
// per message.
func TestEncNotePooledScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "steady state")
	n.SetNumber("Priority", 2)
	run := func() {
		e := NewResp(OpGetNote, StatusOK).Note(n)
		_ = e.Bytes()
		e.Release()
	}
	for i := 0; i < 16; i++ {
		run()
	}
	if avg := testing.AllocsPerRun(200, run); avg >= 1 {
		t.Errorf("pooled note encode allocates %.1f times per op, want 0", avg)
	}
}

// BenchmarkEncResponse measures pooled response encoding (allocs/op should
// report 0 in steady state).
func BenchmarkEncResponse(b *testing.B) {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewResp(OpGetNote, StatusOK).Note(n)
		_ = e.Bytes()
		e.Release()
	}
}
