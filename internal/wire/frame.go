// Package wire implements the client/server and server/server protocol: a
// length-prefixed binary RPC over TCP carrying note CRUD, view reads,
// full-text queries, mail deposit, and the replication operations
// (summaries, fetch, apply). It plays the role of Notes RPC (NRPC) without
// claiming protocol compatibility.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a single protocol frame (64 MiB).
const MaxFrame = 64 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Op codes. A response echoes the request op with the high bit set.
type Op byte

// Protocol operations.
const (
	OpHello Op = iota + 1
	OpOpenDB
	OpGetNote
	OpCreateNote
	OpUpdateNote
	OpDeleteNote
	OpViewRows
	OpSearch
	OpReplicaID
	OpSummaries
	OpFetch
	OpApply
	OpMailDeposit
	OpDBInfo
	// OpAvailability reports the server's availability index and admission
	// state. It is answered before authentication (it carries only load
	// figures), so failover clients can probe mates cheaply, and it is
	// answered even while the server is draining.
	OpAvailability
	// OpPutBatch stores N documents in one round trip (create-or-update,
	// in order) through a single admission slot, with the server amortizing
	// the WAL force across the batch. The request carries a client session
	// key and a base sequence number; the slim ack carries the server's
	// durable cursor for that session, so a batch re-sent after a reconnect
	// skips the already-applied prefix — exactly-once without per-op acks.
	OpPutBatch
	// OpResolve asks the server where a database lives: the response carries
	// the placement generation and the (mate name, address) home set from the
	// directory. Like OpAvailability it is answered before authentication and
	// while draining — placement is routing metadata, not data — so failover
	// clients can resolve without a session. An empty path lists every
	// placement record.
	OpResolve
	// OpMeshStatus lists the server's replication-mesh links with their
	// live scheduling and transfer counters.
	OpMeshStatus
	// OpMeshAdd adds a mesh link at runtime. The link's selection formula
	// is validated server-side before the link starts.
	OpMeshAdd
	// OpMeshRemove removes a mesh link by name; its replication cursors
	// persist, so re-adding the link resumes incrementally.
	OpMeshRemove
	// OpScan is the NSFSearch-style bulk read: a server-side scan filtered
	// by a selection formula, projecting only the requested items as typed
	// values, returned in paginated batches. Each page carries an opaque
	// resume cursor (the last NoteID delivered, bound to the serving
	// server), so a scan interrupted by a reconnect continues where it
	// stopped instead of restarting. Page size is admission-aware: a loaded
	// server serves smaller pages.
	OpScan
)

// respBit marks response frames.
const respBit = 0x80

// Status codes in responses.
const (
	StatusOK byte = iota
	StatusError
	// StatusBusy is an admission-control shed: the server refused to
	// execute the request (it never ran), and the response body carries
	// the server state and availability index so the client can redirect
	// to a less-loaded cluster mate.
	StatusBusy
	// StatusWrongMate is a placement redirect: this mate does not home the
	// requested database, and the request was not executed. The response
	// body carries the current placement generation and home set (same
	// encoding as OpResolve) so the client can re-route without an extra
	// round trip.
	StatusWrongMate
)

// Server admission states carried in availability and busy responses.
const (
	// StateOpen: the server is accepting work normally.
	StateOpen byte = iota
	// StateRestricted: the server is quiescing/draining — it answers
	// probes but refuses new sessions and new requests.
	StateRestricted
)
