// Package wire implements the client/server and server/server protocol: a
// length-prefixed binary RPC over TCP carrying note CRUD, view reads,
// full-text queries, mail deposit, and the replication operations
// (summaries, fetch, apply). It plays the role of Notes RPC (NRPC) without
// claiming protocol compatibility.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a single protocol frame (64 MiB).
const MaxFrame = 64 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteBudgetFrame writes payload wrapped in an OpBudget envelope: one
// frame whose body is [OpBudget][u32 budget-ms][payload]. The envelope is
// prepended in the frame header write, so the inner request encoder is
// not copied or modified.
func WriteBudgetFrame(w io.Writer, budgetMs uint32, payload []byte) error {
	total := len(payload) + 5
	if total > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", total)
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(total))
	hdr[4] = byte(OpBudget)
	binary.LittleEndian.PutUint32(hdr[5:9], budgetMs)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// SplitBudget strips an OpBudget envelope from a request payload,
// returning the carried budget (milliseconds) and the inner request.
// Payloads that do not start with OpBudget pass through with budget 0.
func SplitBudget(payload []byte) (budgetMs uint32, inner []byte, err error) {
	if len(payload) == 0 || Op(payload[0]) != OpBudget {
		return 0, payload, nil
	}
	if len(payload) < 6 {
		return 0, nil, fmt.Errorf("wire: short budget envelope (%d bytes)", len(payload))
	}
	return binary.LittleEndian.Uint32(payload[1:5]), payload[5:], nil
}

// Op codes. A response echoes the request op with the high bit set.
type Op byte

// Protocol operations.
const (
	OpHello Op = iota + 1
	OpOpenDB
	OpGetNote
	OpCreateNote
	OpUpdateNote
	OpDeleteNote
	OpViewRows
	OpSearch
	OpReplicaID
	OpSummaries
	OpFetch
	OpApply
	OpMailDeposit
	OpDBInfo
	// OpAvailability reports the server's availability index and admission
	// state. It is answered before authentication (it carries only load
	// figures), so failover clients can probe mates cheaply, and it is
	// answered even while the server is draining.
	OpAvailability
	// OpPutBatch stores N documents in one round trip (create-or-update,
	// in order) through a single admission slot, with the server amortizing
	// the WAL force across the batch. The request carries a client session
	// key and a base sequence number; the slim ack carries the server's
	// durable cursor for that session, so a batch re-sent after a reconnect
	// skips the already-applied prefix — exactly-once without per-op acks.
	OpPutBatch
	// OpResolve asks the server where a database lives: the response carries
	// the placement generation and the (mate name, address) home set from the
	// directory. Like OpAvailability it is answered before authentication and
	// while draining — placement is routing metadata, not data — so failover
	// clients can resolve without a session. An empty path lists every
	// placement record.
	OpResolve
	// OpMeshStatus lists the server's replication-mesh links with their
	// live scheduling and transfer counters.
	OpMeshStatus
	// OpMeshAdd adds a mesh link at runtime. The link's selection formula
	// is validated server-side before the link starts.
	OpMeshAdd
	// OpMeshRemove removes a mesh link by name; its replication cursors
	// persist, so re-adding the link resumes incrementally.
	OpMeshRemove
	// OpScan is the NSFSearch-style bulk read: a server-side scan filtered
	// by a selection formula, projecting only the requested items as typed
	// values, returned in paginated batches. Each page carries an opaque
	// resume cursor (the last NoteID delivered, bound to the serving
	// server), so a scan interrupted by a reconnect continues where it
	// stopped instead of restarting. Page size is admission-aware: a loaded
	// server serves smaller pages.
	OpScan
	// OpBudget is not a standalone operation but a request envelope: a
	// client with a deadline wraps any request as
	//
	//	[OpBudget][u32 budget-ms][inner op][inner body...]
	//
	// where budget-ms is the caller's REMAINING time budget in
	// milliseconds at send time. The client shrinks it across retries and
	// failover hops (the deadline is absolute client-side), so a 2s user
	// budget can never silently stretch to 2s x mates x retries. The
	// server strips the envelope, derives a per-op context deadline from
	// it, and answers with the INNER op echoed — the envelope is invisible
	// in responses. A request whose budget cannot survive the admission
	// queue, or that expires mid-execution, earns StatusDeadlineExceeded.
	OpBudget
)

// respBit marks response frames.
const respBit = 0x80

// Status codes in responses.
const (
	StatusOK byte = iota
	StatusError
	// StatusBusy is an admission-control shed: the server refused to
	// execute the request (it never ran), and the response body carries
	// the server state and availability index so the client can redirect
	// to a less-loaded cluster mate.
	StatusBusy
	// StatusWrongMate is a placement redirect: this mate does not home the
	// requested database, and the request was not executed. The response
	// body carries the current placement generation and home set (same
	// encoding as OpResolve) so the client can re-route without an extra
	// round trip.
	StatusWrongMate
	// StatusDeadlineExceeded: the request's carried budget (OpBudget
	// envelope) ran out server-side. The one-byte body says at which
	// stage: DeadlineRefused means the server saw the budget could not
	// survive the admission queue (or was already spent on arrival) and
	// refused before executing anything — provably-never-ran, like a busy
	// shed; DeadlineAborted means the op was cancelled mid-execution and
	// may have partially taken effect. The distinction matters for retry
	// safety: an aborted write is AMBIGUOUS and must not be blindly
	// re-sent, while a refused one merely has no time left.
	StatusDeadlineExceeded
)

// Stages carried in a StatusDeadlineExceeded response body.
const (
	// DeadlineRefused: the budget expired (or could not survive the
	// admission queue) before the server executed anything.
	DeadlineRefused byte = 0
	// DeadlineAborted: the op was cancelled mid-execution; it may have
	// partially or — if only the response was lost — fully taken effect.
	DeadlineAborted byte = 1
)

// Server admission states carried in availability and busy responses.
const (
	// StateOpen: the server is accepting work normally.
	StateOpen byte = iota
	// StateRestricted: the server is quiescing/draining — it answers
	// probes but refuses new sessions and new requests.
	StateRestricted
)
