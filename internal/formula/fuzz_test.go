package formula

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nsf"
)

// TestCompileNeverPanics feeds the compiler random byte soup and random
// token salads; it must return errors, never panic. Formulas come from
// users (view designers, agent authors), so the parser is an input surface.
func TestCompileNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Random bytes.
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(60))
		rng.Read(b)
		_, _ = Compile(string(b))
	}
	// Random sequences of plausible tokens, more likely to get deep into
	// the parser.
	tokens := []string{
		"SELECT", "FIELD", "DEFAULT", "REM", ":=", ":", ";", "(", ")",
		"+", "-", "*", "/", "=", "!=", "<", ">", "<=", ">=", "&", "|", "!",
		"@If", "@All", "@Left", "@Contains", "@Unique", "Subject", "x",
		`"str"`, "42", "3.14", "[CN]", "{brace}",
	}
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(12)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = tokens[rng.Intn(len(tokens))]
		}
		src := strings.Join(parts, " ")
		f, err := Compile(src)
		if err != nil || f == nil {
			continue
		}
		// Whatever compiled must also evaluate without panicking.
		note := nsf.NewNote(nsf.ClassDocument)
		note.SetText("Subject", "fuzz")
		_, _ = f.Eval(&Context{Note: note})
		_, _ = f.Selects(note, nil)
	}
}

// TestEvalNeverPanicsOnHostileNotes evaluates fixed formulas against notes
// with adversarial item shapes (empty lists, mixed types, huge names).
func TestEvalNeverPanicsOnHostileNotes(t *testing.T) {
	formulas := []*Formula{
		MustCompile(`SELECT Subject = "x" & Priority > 3`),
		MustCompile(`@Left(Subject; Priority) + @Text(@Sum(Priority; 1))`),
		MustCompile(`@Implode(@Explode(Subject); "-") : @Unique(Tags)`),
		MustCompile(`@If(@IsAvailable(Missing); Missing; "default")`),
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		// Adversarial values: empty lists, type mismatches for the item
		// names the formulas touch.
		switch rng.Intn(5) {
		case 0:
			n.Set("Subject", nsf.Value{Type: nsf.TypeText}) // empty list
			n.Set("Priority", nsf.Value{Type: nsf.TypeNumber})
		case 1:
			n.SetNumber("Subject", rng.Float64()) // wrong type
			n.SetText("Priority", "not a number")
		case 2:
			n.Set("Subject", nsf.RawValue([]byte{0, 1, 2}))
			n.SetTime("Priority", nsf.Timestamp(rng.Int63()))
		case 3:
			n.SetText("Subject", strings.Repeat("x", rng.Intn(1000)))
			n.SetNumber("Priority", rng.NormFloat64()*1e18)
		default:
			n.SetText("Tags", "a", "", "b", "")
		}
		for _, f := range formulas {
			_, _ = f.Eval(&Context{Note: n})
			_, _ = f.Selects(n, nil)
		}
	}
}
