package formula

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nsf"
)

// TestCompileNeverPanics feeds the compiler random byte soup and random
// token salads; it must return errors, never panic. Formulas come from
// users (view designers, agent authors), so the parser is an input surface.
func TestCompileNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Random bytes.
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(60))
		rng.Read(b)
		_, _ = Compile(string(b))
	}
	// Random sequences of plausible tokens, more likely to get deep into
	// the parser.
	tokens := []string{
		"SELECT", "FIELD", "DEFAULT", "REM", ":=", ":", ";", "(", ")",
		"+", "-", "*", "/", "=", "!=", "<", ">", "<=", ">=", "&", "|", "!",
		"@If", "@All", "@Left", "@Contains", "@Unique", "Subject", "x",
		`"str"`, "42", "3.14", "[CN]", "{brace}",
	}
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(12)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = tokens[rng.Intn(len(tokens))]
		}
		src := strings.Join(parts, " ")
		f, err := Compile(src)
		if err != nil || f == nil {
			continue
		}
		// Whatever compiled must also evaluate without panicking.
		note := nsf.NewNote(nsf.ClassDocument)
		note.SetText("Subject", "fuzz")
		_, _ = f.Eval(&Context{Note: note})
		_, _ = f.Selects(note, nil)
	}
}

// TestEvalNeverPanicsOnHostileNotes evaluates fixed formulas against notes
// with adversarial item shapes (empty lists, mixed types, huge names).
func TestEvalNeverPanicsOnHostileNotes(t *testing.T) {
	formulas := []*Formula{
		MustCompile(`SELECT Subject = "x" & Priority > 3`),
		MustCompile(`@Left(Subject; Priority) + @Text(@Sum(Priority; 1))`),
		MustCompile(`@Implode(@Explode(Subject); "-") : @Unique(Tags)`),
		MustCompile(`@If(@IsAvailable(Missing); Missing; "default")`),
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		// Adversarial values: empty lists, type mismatches for the item
		// names the formulas touch.
		switch rng.Intn(5) {
		case 0:
			n.Set("Subject", nsf.Value{Type: nsf.TypeText}) // empty list
			n.Set("Priority", nsf.Value{Type: nsf.TypeNumber})
		case 1:
			n.SetNumber("Subject", rng.Float64()) // wrong type
			n.SetText("Priority", "not a number")
		case 2:
			n.Set("Subject", nsf.RawValue([]byte{0, 1, 2}))
			n.SetTime("Priority", nsf.Timestamp(rng.Int63()))
		case 3:
			n.SetText("Subject", strings.Repeat("x", rng.Intn(1000)))
			n.SetNumber("Priority", rng.NormFloat64()*1e18)
		default:
			n.SetText("Tags", "a", "", "b", "")
		}
		for _, f := range formulas {
			_, _ = f.Eval(&Context{Note: n})
			_, _ = f.Selects(n, nil)
		}
	}
}

// FuzzCompile is the native fuzz target behind `make fuzz`: anything the
// compiler accepts must also evaluate and select without panicking. The
// selection formulas on replication-mesh links arrive over the admin wire
// ops and from topology files, so Compile is an input surface twice over.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		"",
		"SELECT @All",
		`SELECT Subject = "x" & Priority > 3`,
		`@If(@IsAvailable(Missing); Missing; "default")`,
		`@Implode(@Explode(Subject); "-") : @Unique(Tags)`,
		"FIELD Total := @Sum(Amounts); SELECT Total > 100",
		"((((",
		"@If(",
		"SELECT [CN] {brace} :=",
		"\"unterminated",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fl, err := Compile(src)
		if err != nil {
			return
		}
		if fl == nil {
			t.Fatalf("Compile(%q) returned nil formula with nil error", src)
		}
		note := nsf.NewNote(nsf.ClassDocument)
		note.SetText("Subject", "fuzz")
		note.SetNumber("Priority", 4)
		_, _ = fl.Eval(&Context{Note: note})
		_, _ = fl.Selects(note, nil)
	})
}
