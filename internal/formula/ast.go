package formula

// expr is a node of the parsed formula tree.
type expr interface{ isExpr() }

// litExpr is a literal value: a number or a string.
type litExpr struct {
	num   float64
	text  string
	isNum bool
}

// fieldExpr references an item on the current note (or a temp variable set
// by an earlier statement).
type fieldExpr struct{ name string }

// callExpr invokes an @function. Arguments are separated by ';' inside the
// parentheses, per Notes syntax.
type callExpr struct {
	name string // lower-case, including the '@'
	args []expr
}

// unaryExpr is !x or -x.
type unaryExpr struct {
	op tokenKind
	x  expr
}

// binExpr is a binary operation.
type binExpr struct {
	op   tokenKind
	l, r expr
}

func (litExpr) isExpr()   {}
func (fieldExpr) isExpr() {}
func (callExpr) isExpr()  {}
func (unaryExpr) isExpr() {}
func (binExpr) isExpr()   {}

// stmtKind distinguishes the statement forms.
type stmtKind int

const (
	stmtExpr stmtKind = iota
	stmtSelect
	stmtAssignTemp
	stmtAssignField
	stmtAssignDefault
)

// stmt is one semicolon-separated statement.
type stmt struct {
	kind stmtKind
	name string // assignment target
	x    expr
}
