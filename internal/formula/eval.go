package formula

import (
	"fmt"
	"strings"

	"repro/internal/nsf"
)

// Context supplies the environment a formula evaluates against.
type Context struct {
	// Note is the current document. May be nil for pure expressions.
	Note *nsf.Note
	// UserName is the effective user, returned by @UserName and used by
	// computed Author fields.
	UserName string
	// Now supplies the current time for @Now. If nil, time items evaluate
	// @Now to zero.
	Now func() nsf.Timestamp
	// temps holds values assigned with := during this evaluation.
	temps map[string]nsf.Value
}

// Formula is a compiled formula, safe for concurrent evaluation.
type Formula struct {
	src   string
	stmts []stmt
	// hasSelect records whether any statement is a SELECT.
	hasSelect bool
}

// Compile parses src into a reusable Formula.
func Compile(src string) (*Formula, error) {
	stmts, err := parseFormula(src)
	if err != nil {
		return nil, err
	}
	f := &Formula{src: src, stmts: stmts}
	for _, s := range stmts {
		if s.kind == stmtSelect {
			f.hasSelect = true
		}
	}
	return f, nil
}

// MustCompile is Compile, panicking on error; for static formulas.
func MustCompile(src string) *Formula {
	f, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return f
}

// Source returns the original formula text.
func (f *Formula) Source() string { return f.src }

// Eval runs the formula and returns the value of the last statement.
// FIELD assignments mutate ctx.Note.
func (f *Formula) Eval(ctx *Context) (nsf.Value, error) {
	v, _, err := f.run(ctx)
	return v, err
}

// Selects evaluates the formula as a selection formula against note and
// reports whether the note is selected: the value of the SELECT statement
// if present, otherwise the final value, interpreted as a boolean.
func (f *Formula) Selects(note *nsf.Note, ctx *Context) (bool, error) {
	local := Context{Note: note}
	if ctx != nil {
		local = *ctx
		local.Note = note
	}
	v, sel, err := f.run(&local)
	if err != nil {
		return false, err
	}
	if f.hasSelect {
		return truthy(sel), nil
	}
	return truthy(v), nil
}

// run executes all statements, returning the final value and the value of
// the last SELECT statement.
func (f *Formula) run(ctx *Context) (last, sel nsf.Value, err error) {
	if ctx.temps == nil {
		ctx.temps = make(map[string]nsf.Value)
	} else {
		clear(ctx.temps)
	}
	for _, s := range f.stmts {
		v, err := evalExpr(ctx, s.x)
		if err != nil {
			return nsf.Value{}, nsf.Value{}, err
		}
		switch s.kind {
		case stmtSelect:
			sel = v
		case stmtAssignTemp:
			ctx.temps[strings.ToLower(s.name)] = v
		case stmtAssignField:
			if ctx.Note == nil {
				return nsf.Value{}, nsf.Value{}, fmt.Errorf("formula: FIELD %s assignment without a note", s.name)
			}
			ctx.Note.Set(s.name, v)
		case stmtAssignDefault:
			if ctx.Note != nil && !ctx.Note.Has(s.name) {
				ctx.Note.Set(s.name, v)
			}
		}
		last = v
	}
	return last, sel, nil
}

// truthy interprets a value as a boolean: any non-zero number, any non-empty
// text entry, or any non-zero time.
func truthy(v nsf.Value) bool {
	switch v.Type {
	case nsf.TypeNumber:
		for _, n := range v.Numbers {
			if n != 0 {
				return true
			}
		}
	case nsf.TypeText:
		for _, s := range v.Text {
			if s != "" {
				return true
			}
		}
	case nsf.TypeTime:
		for _, t := range v.Times {
			if t != 0 {
				return true
			}
		}
	}
	return false
}

func boolValue(b bool) nsf.Value {
	if b {
		return nsf.NumberValue(1)
	}
	return nsf.NumberValue(0)
}

func evalExpr(ctx *Context, e expr) (nsf.Value, error) {
	switch e := e.(type) {
	case litExpr:
		if e.isNum {
			return nsf.NumberValue(e.num), nil
		}
		return nsf.TextValue(e.text), nil
	case fieldExpr:
		if v, ok := ctx.temps[strings.ToLower(e.name)]; ok {
			return v, nil
		}
		if ctx.Note != nil {
			if it, ok := ctx.Note.Item(e.name); ok {
				return it.Value, nil
			}
		}
		// Unavailable fields evaluate to the empty string, as in Notes.
		return nsf.TextValue(""), nil
	case callExpr:
		return evalCall(ctx, e)
	case unaryExpr:
		x, err := evalExpr(ctx, e.x)
		if err != nil {
			return nsf.Value{}, err
		}
		switch e.op {
		case tokBang:
			return boolValue(!truthy(x)), nil
		case tokMinus:
			nums, err := asNumbers(x)
			if err != nil {
				return nsf.Value{}, err
			}
			out := make([]float64, len(nums))
			for i, n := range nums {
				out[i] = -n
			}
			return nsf.NumberValue(out...), nil
		}
		return nsf.Value{}, fmt.Errorf("formula: bad unary operator")
	case binExpr:
		return evalBin(ctx, e)
	default:
		return nsf.Value{}, fmt.Errorf("formula: unknown expression node %T", e)
	}
}

func evalBin(ctx *Context, e binExpr) (nsf.Value, error) {
	// & and | short-circuit.
	switch e.op {
	case tokAmp:
		l, err := evalExpr(ctx, e.l)
		if err != nil {
			return nsf.Value{}, err
		}
		if !truthy(l) {
			return boolValue(false), nil
		}
		r, err := evalExpr(ctx, e.r)
		if err != nil {
			return nsf.Value{}, err
		}
		return boolValue(truthy(r)), nil
	case tokPipe:
		l, err := evalExpr(ctx, e.l)
		if err != nil {
			return nsf.Value{}, err
		}
		if truthy(l) {
			return boolValue(true), nil
		}
		r, err := evalExpr(ctx, e.r)
		if err != nil {
			return nsf.Value{}, err
		}
		return boolValue(truthy(r)), nil
	}
	l, err := evalExpr(ctx, e.l)
	if err != nil {
		return nsf.Value{}, err
	}
	r, err := evalExpr(ctx, e.r)
	if err != nil {
		return nsf.Value{}, err
	}
	switch e.op {
	case tokColon:
		return concatLists(l, r)
	case tokPlus, tokMinus, tokStar, tokSlash:
		return arith(e.op, l, r)
	case tokEq, tokNeq, tokLt, tokGt, tokLe, tokGe:
		return compare(e.op, l, r)
	}
	return nsf.Value{}, fmt.Errorf("formula: bad binary operator %v", e.op)
}

// concatLists implements ':'. Mixed text/number concatenation coerces
// numbers to text, matching the common Notes usage.
func concatLists(l, r nsf.Value) (nsf.Value, error) {
	if l.Type == r.Type {
		switch l.Type {
		case nsf.TypeText:
			return nsf.TextValue(append(append([]string{}, l.Text...), r.Text...)...), nil
		case nsf.TypeNumber:
			return nsf.NumberValue(append(append([]float64{}, l.Numbers...), r.Numbers...)...), nil
		case nsf.TypeTime:
			return nsf.TimeValue(append(append([]nsf.Timestamp{}, l.Times...), r.Times...)...), nil
		}
	}
	lt, rt := asTexts(l), asTexts(r)
	return nsf.TextValue(append(append([]string{}, lt...), rt...)...), nil
}

// arith applies an arithmetic operator pairwise. Text '+' concatenates.
// Unequal list lengths reuse the shorter list's last element.
func arith(op tokenKind, l, r nsf.Value) (nsf.Value, error) {
	if op == tokPlus && (l.Type == nsf.TypeText || r.Type == nsf.TypeText) {
		lt, rt := asTexts(l), asTexts(r)
		n := max(len(lt), len(rt))
		if len(lt) == 0 || len(rt) == 0 {
			n = 0
		}
		out := make([]string, n)
		for i := range out {
			out[i] = pickText(lt, i) + pickText(rt, i)
		}
		return nsf.TextValue(out...), nil
	}
	ln, err := asNumbers(l)
	if err != nil {
		return nsf.Value{}, err
	}
	rn, err := asNumbers(r)
	if err != nil {
		return nsf.Value{}, err
	}
	n := max(len(ln), len(rn))
	if len(ln) == 0 || len(rn) == 0 {
		n = 0
	}
	out := make([]float64, n)
	for i := range out {
		a, b := pickNum(ln, i), pickNum(rn, i)
		switch op {
		case tokPlus:
			out[i] = a + b
		case tokMinus:
			out[i] = a - b
		case tokStar:
			out[i] = a * b
		case tokSlash:
			if b == 0 {
				return nsf.Value{}, fmt.Errorf("formula: division by zero")
			}
			out[i] = a / b
		}
	}
	return nsf.NumberValue(out...), nil
}

// compare implements permuted comparison: the relation holds if any pair of
// elements (one from each side) satisfies it. != is the negation of =.
func compare(op tokenKind, l, r nsf.Value) (nsf.Value, error) {
	if op == tokNeq {
		v, err := compare(tokEq, l, r)
		if err != nil {
			return nsf.Value{}, err
		}
		return boolValue(!truthy(v)), nil
	}
	cmpNums := func(a, b float64) bool { return relHolds(op, cmpFloat(a, b)) }
	cmpText := func(a, b string) bool {
		return relHolds(op, strings.Compare(strings.ToLower(a), strings.ToLower(b)))
	}
	switch {
	case l.Type == nsf.TypeNumber && r.Type == nsf.TypeNumber:
		for _, a := range l.Numbers {
			for _, b := range r.Numbers {
				if cmpNums(a, b) {
					return boolValue(true), nil
				}
			}
		}
	case l.Type == nsf.TypeTime && r.Type == nsf.TypeTime:
		for _, a := range l.Times {
			for _, b := range r.Times {
				if relHolds(op, cmpInt64(int64(a), int64(b))) {
					return boolValue(true), nil
				}
			}
		}
	default:
		for _, a := range asTexts(l) {
			for _, b := range asTexts(r) {
				if cmpText(a, b) {
					return boolValue(true), nil
				}
			}
		}
	}
	return boolValue(false), nil
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func relHolds(op tokenKind, c int) bool {
	switch op {
	case tokEq:
		return c == 0
	case tokLt:
		return c < 0
	case tokGt:
		return c > 0
	case tokLe:
		return c <= 0
	case tokGe:
		return c >= 0
	default:
		return false
	}
}

// --- coercions ---

func asNumbers(v nsf.Value) ([]float64, error) {
	switch v.Type {
	case nsf.TypeNumber:
		return v.Numbers, nil
	case nsf.TypeText:
		// The empty string (unavailable field) coerces to an empty list.
		var out []float64
		for _, s := range v.Text {
			if s == "" {
				continue
			}
			var n float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &n); err != nil {
				return nil, fmt.Errorf("formula: cannot use text %q as a number", s)
			}
			out = append(out, n)
		}
		return out, nil
	case nsf.TypeTime:
		out := make([]float64, len(v.Times))
		for i, t := range v.Times {
			out[i] = float64(t)
		}
		return out, nil
	default:
		return nil, nil
	}
}

func asTexts(v nsf.Value) []string {
	switch v.Type {
	case nsf.TypeText:
		return v.Text
	case nsf.TypeNumber:
		out := make([]string, len(v.Numbers))
		for i, n := range v.Numbers {
			out[i] = formatFloat(n)
		}
		return out
	case nsf.TypeTime:
		out := make([]string, len(v.Times))
		for i, t := range v.Times {
			out[i] = t.String()
		}
		return out
	default:
		return nil
	}
}

func formatFloat(n float64) string {
	if n == float64(int64(n)) {
		return fmt.Sprintf("%d", int64(n))
	}
	return fmt.Sprintf("%g", n)
}

func pickText(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return s[len(s)-1]
}

func pickNum(s []float64, i int) float64 {
	if i < len(s) {
		return s[i]
	}
	return s[len(s)-1]
}
