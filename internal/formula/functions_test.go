package formula

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/nsf"
)

func evalCtx(t *testing.T, src string, ctx *Context) nsf.Value {
	t.Helper()
	f, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := f.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestDateConstruction(t *testing.T) {
	v := eval(t, `@Date(1999; 6; 1)`)
	if v.Type != nsf.TypeTime || len(v.Times) != 1 {
		t.Fatalf("@Date = %v", v)
	}
	tm := v.Times[0].Time()
	if tm.Year() != 1999 || tm.Month() != time.June || tm.Day() != 1 || tm.Hour() != 0 {
		t.Errorf("@Date = %v", tm)
	}
	v = eval(t, `@Date(1999; 6; 1; 13; 30; 45)`)
	if tm := v.Times[0].Time(); tm.Hour() != 13 || tm.Minute() != 30 || tm.Second() != 45 {
		t.Errorf("@Date with time = %v", tm)
	}
	// @Date of a time value truncates to midnight.
	v = eval(t, `@Date(@Date(2000; 2; 29; 10; 11; 12))`)
	if tm := v.Times[0].Time(); tm.Hour() != 0 || tm.Day() != 29 {
		t.Errorf("@Date truncation = %v", tm)
	}
	if f := MustCompile(`@Date(1; 2)`); f != nil {
		if _, err := f.Eval(&Context{}); err == nil {
			t.Error("@Date with 2 args evaluated")
		}
	}
}

func TestAdjust(t *testing.T) {
	v := eval(t, `@Adjust(@Date(2000; 1; 31); 0; 1; 0; 0; 0; 0)`)
	tm := v.Times[0].Time()
	// Go's AddDate normalizes Jan 31 + 1 month to Mar 2 (2000 is a leap year).
	if tm.Month() != time.March || tm.Day() != 2 {
		t.Errorf("@Adjust month = %v", tm)
	}
	v = eval(t, `@Adjust(@Date(2000; 1; 1); 1; 0; 2; 3; 4; 5)`)
	tm = v.Times[0].Time()
	if tm.Year() != 2001 || tm.Day() != 3 || tm.Hour() != 3 || tm.Minute() != 4 || tm.Second() != 5 {
		t.Errorf("@Adjust compound = %v", tm)
	}
}

func TestTodayAndWeekday(t *testing.T) {
	fixed := nsf.TimestampOf(time.Date(2026, 7, 4, 15, 30, 0, 0, time.UTC)) // a Saturday
	ctx := &Context{Now: func() nsf.Timestamp { return fixed }}
	v := evalCtx(t, `@Today`, ctx)
	if tm := v.Times[0].Time(); tm.Hour() != 0 || tm.Day() != 4 {
		t.Errorf("@Today = %v", tm)
	}
	v = evalCtx(t, `@Weekday(@Today)`, ctx)
	if v.Numbers[0] != 7 { // Saturday = 7 with Sunday = 1
		t.Errorf("@Weekday = %v", v.Numbers)
	}
}

func TestNameParts(t *testing.T) {
	cases := []struct{ src, want string }{
		{`@Name([CN]; "CN=Ada Lovelace/OU=Eng/O=Acme")`, "Ada Lovelace"},
		{`@Name([O]; "CN=Ada Lovelace/OU=Eng/O=Acme")`, "Acme"},
		{`@Name([OU]; "CN=Ada Lovelace/OU=Eng/O=Acme")`, "Eng"},
		{`@Name([Abbreviate]; "CN=Ada Lovelace/OU=Eng/O=Acme")`, "Ada Lovelace/Eng/Acme"},
		{`@Name([CN]; "plain name")`, "plain name"},
		{`@Name([Canonicalize]; "plain name")`, "CN=plain name"},
		{`@Name([Canonicalize]; "CN=x/O=y")`, "CN=x/O=y"},
	}
	for _, tc := range cases {
		v := eval(t, tc.src)
		if v.Text[0] != tc.want {
			t.Errorf("%s = %q, want %q", tc.src, v.Text[0], tc.want)
		}
	}
}

func TestKeywords(t *testing.T) {
	v := eval(t, `@Keywords("the quick brown fox"; "Fox" : "dog" : "quick")`)
	if !reflect.DeepEqual(v.Text, []string{"Fox", "quick"}) {
		t.Errorf("@Keywords = %v", v.Text)
	}
	v = eval(t, `@Keywords("a-b-c"; "b" : "z"; "-")`)
	if !reflect.DeepEqual(v.Text, []string{"b"}) {
		t.Errorf("@Keywords with sep = %v", v.Text)
	}
}

func TestSort(t *testing.T) {
	v := eval(t, `@Sort("pear" : "Apple" : "banana")`)
	if !reflect.DeepEqual(v.Text, []string{"Apple", "banana", "pear"}) {
		t.Errorf("@Sort = %v", v.Text)
	}
	v = eval(t, `@Sort(3 : 1 : 2)`)
	if !reflect.DeepEqual(v.Numbers, []float64{1, 2, 3}) {
		t.Errorf("@Sort numbers = %v", v.Numbers)
	}
	v = eval(t, `@Sort(3 : 1 : 2; "descending")`)
	if !reflect.DeepEqual(v.Numbers, []float64{3, 2, 1}) {
		t.Errorf("@Sort descending = %v", v.Numbers)
	}
}

func TestRepeat(t *testing.T) {
	v := eval(t, `@Repeat("ab"; 3)`)
	if v.Text[0] != "ababab" {
		t.Errorf("@Repeat = %v", v.Text)
	}
	f := MustCompile(`@Repeat("x"; -1)`)
	if _, err := f.Eval(&Context{}); err == nil {
		t.Error("negative @Repeat evaluated")
	}
}
