// Package formula implements the Notes @formula language: an expression
// language over documents used for view selection formulas, computed
// columns and fields, replication formulas, and agents.
//
// A formula is a sequence of statements separated by semicolons:
//
//	SELECT Form = "Memo" & Priority > 2;
//	temp := @UpperCase(Subject);
//	FIELD Status := "Open";
//	@If(Size > 100; "big"; "small")
//
// Values are typed lists (text, number, time), matching the NSF item model.
// Operators follow Notes semantics: ':' concatenates lists, arithmetic
// applies pairwise (the shorter list's last element is reused), and
// comparisons are permuted — true when any pair of elements satisfies the
// relation.
package formula

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent // field names, keywords, and @functions
	tokAssign
	tokColon
	tokSemi
	tokLParen
	tokRParen
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokEq
	tokNeq
	tokLt
	tokGt
	tokLe
	tokGe
	tokAmp
	tokPipe
	tokBang
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of formula"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokIdent:
		return "identifier"
	case tokAssign:
		return ":="
	case tokColon:
		return ":"
	case tokSemi:
		return ";"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokPlus:
		return "+"
	case tokMinus:
		return "-"
	case tokStar:
		return "*"
	case tokSlash:
		return "/"
	case tokEq:
		return "="
	case tokNeq:
		return "!="
	case tokLt:
		return "<"
	case tokGt:
		return ">"
	case tokLe:
		return "<="
	case tokGe:
		return ">="
	case tokAmp:
		return "&"
	case tokPipe:
		return "|"
	case tokBang:
		return "!"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9', c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			seenDot := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' && !seenDot) {
				if src[i] == '.' {
					seenDot = true
				}
				i++
			}
			var n float64
			if _, err := fmt.Sscanf(src[start:i], "%g", &n); err != nil {
				return nil, fmt.Errorf("formula: bad number %q at %d", src[start:i], start)
			}
			toks = append(toks, token{kind: tokNumber, num: n, pos: start})
		case c == '"':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("formula: unterminated string at %d", start)
				}
				if src[i] == '\\' && i+1 < len(src) {
					sb.WriteByte(src[i+1])
					i += 2
					continue
				}
				if src[i] == '"' {
					// Doubled quote is an escaped quote.
					if i+1 < len(src) && src[i+1] == '"' {
						sb.WriteByte('"')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '[':
			// Keyword literal, e.g. [CN] in @Name([CN]; ...). Evaluates as
			// the bracketed text.
			start := i
			end := strings.IndexByte(src[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("formula: unterminated [keyword] at %d", start)
			}
			toks = append(toks, token{kind: tokString, text: src[i : i+end+1], pos: start})
			i += end + 1
		case c == '{':
			start := i
			i++
			end := strings.IndexByte(src[i:], '}')
			if end < 0 {
				return nil, fmt.Errorf("formula: unterminated {string} at %d", start)
			}
			toks = append(toks, token{kind: tokString, text: src[i : i+end], pos: start})
			i += end + 1
		case isIdentStart(c):
			start := i
			i++
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], pos: start})
		default:
			start := i
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == ":=":
				toks = append(toks, token{kind: tokAssign, pos: start})
				i += 2
			case two == "!=" || two == "<>":
				toks = append(toks, token{kind: tokNeq, pos: start})
				i += 2
			case two == "<=":
				toks = append(toks, token{kind: tokLe, pos: start})
				i += 2
			case two == ">=":
				toks = append(toks, token{kind: tokGe, pos: start})
				i += 2
			default:
				var k tokenKind
				switch c {
				case ':':
					k = tokColon
				case ';':
					k = tokSemi
				case '(':
					k = tokLParen
				case ')':
					k = tokRParen
				case '+':
					k = tokPlus
				case '-':
					k = tokMinus
				case '*':
					k = tokStar
				case '/':
					k = tokSlash
				case '=':
					k = tokEq
				case '<':
					k = tokLt
				case '>':
					k = tokGt
				case '&':
					k = tokAmp
				case '|':
					k = tokPipe
				case '!':
					k = tokBang
				default:
					return nil, fmt.Errorf("formula: unexpected character %q at %d", c, start)
				}
				toks = append(toks, token{kind: k, pos: start})
				i++
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '@' || c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
