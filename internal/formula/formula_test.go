package formula

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/nsf"
)

func evalOn(t *testing.T, src string, note *nsf.Note) nsf.Value {
	t.Helper()
	f, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := f.Eval(&Context{Note: note, UserName: "tester"})
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func eval(t *testing.T, src string) nsf.Value {
	t.Helper()
	return evalOn(t, src, nil)
}

func wantNums(t *testing.T, src string, want ...float64) {
	t.Helper()
	v := eval(t, src)
	if v.Type != nsf.TypeNumber || !reflect.DeepEqual(v.Numbers, want) {
		t.Errorf("%q = %v (%v), want %v", src, v, v.Type, want)
	}
}

func wantText(t *testing.T, src string, want ...string) {
	t.Helper()
	v := eval(t, src)
	if v.Type != nsf.TypeText || !reflect.DeepEqual(v.Text, want) {
		t.Errorf("%q = %v (%v), want %v", src, v, v.Type, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantNums(t, "1 + 2 * 3", 7)
	wantNums(t, "(1 + 2) * 3", 9)
	wantNums(t, "10 / 4", 2.5)
	wantNums(t, "-5 + 2", -3)
	wantNums(t, "2 * -3", -6)
}

func TestListSemantics(t *testing.T) {
	wantNums(t, "1 : 2 : 3", 1, 2, 3)
	// ':' binds tighter than '+': (1:2) + (10:20:30) pairs elementwise,
	// reusing the last element of the shorter list.
	wantNums(t, "1 : 2 + 10 : 20 : 30", 11, 22, 32)
	wantText(t, `"a" : "b" + "-x"`, "a-x", "b-x")
	wantText(t, `"n=" + 1 : 2`, "n=1", "n=2")
}

func TestComparisonsArePermuted(t *testing.T) {
	wantNums(t, `"red" = "blue" : "red"`, 1)
	wantNums(t, `"red" = "blue" : "green"`, 0)
	wantNums(t, `"red" != "blue" : "red"`, 0)
	wantNums(t, "3 > 1 : 2", 1)
	wantNums(t, "0 > 1 : 2", 0)
	wantNums(t, `"Apple" = "apple"`, 1) // case-insensitive text compare
}

func TestLogic(t *testing.T) {
	wantNums(t, "1 & 1", 1)
	wantNums(t, "1 & 0", 0)
	wantNums(t, "0 | 1", 1)
	wantNums(t, "!1", 0)
	wantNums(t, "!0", 1)
	// Short circuit: the division by zero on the right must not run.
	wantNums(t, "0 & 1/0", 0)
	wantNums(t, "1 | 1/0", 1)
}

func TestFieldAccess(t *testing.T) {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "Memo")
	n.SetNumber("Size", 10)
	n.SetText("Tags", "a", "b")
	v := evalOn(t, `Form + "!"`, n)
	if v.Text[0] != "Memo!" {
		t.Errorf("field concat = %v", v)
	}
	v = evalOn(t, "Size * 2", n)
	if v.Numbers[0] != 20 {
		t.Errorf("Size*2 = %v", v)
	}
	// Unavailable field behaves as "".
	v = evalOn(t, `Missing = ""`, n)
	if v.Numbers[0] != 1 {
		t.Errorf("missing field = %v", v)
	}
}

func TestStatementsAndAssignment(t *testing.T) {
	n := nsf.NewNote(nsf.ClassDocument)
	v := evalOn(t, `x := 5; y := x * 2; y + 1`, n)
	if v.Numbers[0] != 11 {
		t.Errorf("temp chain = %v", v)
	}
	evalOn(t, `FIELD Status := "Open"; 1`, n)
	if n.Text("Status") != "Open" {
		t.Errorf("FIELD assignment did not stick: %v", n.ItemNames())
	}
	evalOn(t, `DEFAULT Status := "Closed"; DEFAULT Extra := "E"; 1`, n)
	if n.Text("Status") != "Open" || n.Text("Extra") != "E" {
		t.Errorf("DEFAULT semantics wrong: %q %q", n.Text("Status"), n.Text("Extra"))
	}
}

func TestSelect(t *testing.T) {
	f := MustCompile(`SELECT Form = "Memo" & Size > 5`)
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "Memo")
	n.SetNumber("Size", 10)
	ok, err := f.Selects(n, nil)
	if err != nil || !ok {
		t.Fatalf("Selects = %v, %v", ok, err)
	}
	n.SetNumber("Size", 1)
	ok, _ = f.Selects(n, nil)
	if ok {
		t.Error("selected despite Size <= 5")
	}
	all := MustCompile("SELECT @All")
	ok, _ = all.Selects(n, nil)
	if !ok {
		t.Error("@All did not select")
	}
}

func TestIfIsLazy(t *testing.T) {
	wantNums(t, `@If(1; 10; 1/0)`, 10)
	wantNums(t, `@If(0; 1/0; 20)`, 20)
	wantNums(t, `@If(0; 1; 1; 2; 3)`, 2)
	if _, err := Compile(`@If(1; 2)`); err == nil {
		// parse succeeds; evaluation must fail
		f := MustCompile(`@If(1; 2)`)
		if _, err := f.Eval(&Context{}); err == nil {
			t.Error("@If with 2 args evaluated")
		}
	}
}

func TestTextFunctions(t *testing.T) {
	wantText(t, `@UpperCase("abc")`, "ABC")
	wantText(t, `@LowerCase("AbC" : "X")`, "abc", "x")
	wantText(t, `@ProperCase("hello world")`, "Hello World")
	wantText(t, `@Left("hello"; 2)`, "he")
	wantText(t, `@Right("hello"; 3)`, "llo")
	wantText(t, `@Trim("  a   b  ")`, "a b")
	wantNums(t, `@Length("hello" : "hi")`, 5, 2)
	wantNums(t, `@Contains("hello world"; "WORLD")`, 1)
	wantNums(t, `@Begins("hello"; "he")`, 1)
	wantNums(t, `@Ends("hello"; "lo")`, 1)
	wantNums(t, `@Matches("invoice-123"; "invoice-???")`, 1)
	wantNums(t, `@Matches("invoice-12"; "invoice-???")`, 0)
	wantNums(t, `@Matches("abcde"; "a*e")`, 1)
	wantText(t, `@Word("one two three"; " "; 2)`, "two")
	wantText(t, `@ReplaceSubstring("aXbX"; "X"; "-")`, "a-b-")
	wantText(t, `@Text(42)`, "42")
	wantNums(t, `@TextToNumber("3.5")`, 3.5)
}

func TestListFunctions(t *testing.T) {
	wantNums(t, `@Elements("a" : "b" : "c")`, 3)
	wantText(t, `@Subset("a":"b":"c"; 2)`, "a", "b")
	wantText(t, `@Subset("a":"b":"c"; -1)`, "c")
	wantText(t, `@Explode("a,b c"; ", ")`, "a", "b", "c")
	wantText(t, `@Implode("a":"b"; "-")`, "a-b")
	wantText(t, `@Unique("a":"B":"A":"b")`, "a", "B")
	wantNums(t, `@Member("b"; "a":"b":"c")`, 2)
	wantNums(t, `@Member("z"; "a":"b")`, 0)
}

func TestMathFunctions(t *testing.T) {
	wantNums(t, `@Sum(1:2:3; 4)`, 10)
	wantNums(t, `@Min(3:1:2)`, 1)
	wantNums(t, `@Max(3:1:2)`, 3)
	wantNums(t, `@Abs(-4)`, 4)
	wantNums(t, `@Sign(-9) : @Sign(0) : @Sign(2)`, -1, 0, 1)
	wantNums(t, `@Integer(3.9)`, 3)
	wantNums(t, `@Round(3.5)`, 4)
	wantNums(t, `@Modulo(10; 3)`, 1)
}

func TestAvailability(t *testing.T) {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Present", "x")
	v := evalOn(t, `@IsAvailable(Present) : @IsAvailable(Absent)`, n)
	if !reflect.DeepEqual(v.Numbers, []float64{1, 0}) {
		t.Errorf("@IsAvailable = %v", v)
	}
	v = evalOn(t, `@IsUnavailable(Absent)`, n)
	if v.Numbers[0] != 1 {
		t.Errorf("@IsUnavailable = %v", v)
	}
	// Temps count as available.
	v = evalOn(t, `tmp := 1; @IsAvailable(tmp)`, n)
	if v.Numbers[0] != 1 {
		t.Errorf("temp availability = %v", v)
	}
}

func TestDocFunctions(t *testing.T) {
	n := nsf.NewNote(nsf.ClassDocument)
	n.ID = 7
	v := evalOn(t, `@DocumentUniqueID`, n)
	if v.Text[0] != n.OID.UNID.String() {
		t.Errorf("@DocumentUniqueID = %v", v)
	}
	v = evalOn(t, `@NoteID`, n)
	if v.Numbers[0] != 7 {
		t.Errorf("@NoteID = %v", v)
	}
	v = evalOn(t, `@UserName`, n)
	if v.Text[0] != "tester" {
		t.Errorf("@UserName = %v", v)
	}
	n.SetText("$Ref", "parent")
	v = evalOn(t, `@IsResponseDoc`, n)
	if v.Numbers[0] != 1 {
		t.Errorf("@IsResponseDoc = %v", v)
	}
}

func TestStringsAndComments(t *testing.T) {
	wantText(t, `"say ""hi"""`, `say "hi"`)
	wantText(t, `"a\"b"`, `a"b`)
	wantText(t, `{braced string}`, "braced string")
	wantNums(t, `REM "this is a comment"; 42`, 42)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"(1",
		`"unterminated`,
		"@If(1; 2",
		"FIELD := 3",
		"x := ",
		"1 ~ 2",
		"{unterminated",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []string{
		"1/0",
		`@NoSuchFunction(1)`,
		`@Left("x")`,
		`"abc" * 2`,
		`@Modulo(1; 0)`,
	}
	for _, src := range bad {
		f, err := Compile(src)
		if err != nil {
			continue
		}
		if _, err := f.Eval(&Context{}); err == nil {
			t.Errorf("Eval(%q) succeeded, want error", src)
		}
	}
}

func TestSelectionFormulaOverManyDocs(t *testing.T) {
	f := MustCompile(`SELECT @Begins(Subject; "urgent") | Priority >= 8`)
	selected := 0
	for i := 0; i < 100; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		if i%10 == 0 {
			n.SetText("Subject", "urgent: fire")
		} else {
			n.SetText("Subject", "hello")
		}
		n.SetNumber("Priority", float64(i%10))
		ok, err := f.Selects(n, nil)
		if err != nil {
			t.Fatalf("Selects: %v", err)
		}
		if ok {
			selected++
		}
	}
	// 10 urgent + 20 with priority 8 or 9, minus the overlap 0 => i%10==0
	// never has priority>=8, so 30 total.
	if selected != 30 {
		t.Errorf("selected %d docs, want 30", selected)
	}
}

func TestCompileReuseIsConcurrencySafe(t *testing.T) {
	f := MustCompile(`x := Subject + "!"; @UpperCase(x)`)
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- true }()
			for i := 0; i < 500; i++ {
				n := nsf.NewNote(nsf.ClassDocument)
				n.SetText("Subject", strings.Repeat("a", g+1))
				v, err := f.Eval(&Context{Note: n})
				if err != nil || v.Text[0] != strings.ToUpper(n.Text("Subject"))+"!" {
					t.Errorf("concurrent eval: %v %v", v, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
