package formula

import (
	"fmt"
	"strings"
)

// parser is a recursive-descent parser with classic precedence climbing.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token         { return p.toks[p.pos] }
func (p *parser) next() token         { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, fmt.Errorf("formula: expected %v at %d, found %v", k, t.pos, t.kind)
	}
	return p.next(), nil
}

// parseFormula parses a whole formula: statements separated by semicolons.
// A trailing semicolon is tolerated.
func parseFormula(src string) ([]stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at(tokEOF) {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.at(tokSemi) {
			p.next()
			continue
		}
		break
	}
	if !p.at(tokEOF) {
		t := p.peek()
		return nil, fmt.Errorf("formula: unexpected %v at %d", t.kind, t.pos)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("formula: empty formula")
	}
	return stmts, nil
}

func (p *parser) parseStmt() (stmt, error) {
	if p.at(tokIdent) {
		word := strings.ToUpper(p.peek().text)
		switch word {
		case "SELECT":
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return stmt{}, err
			}
			return stmt{kind: stmtSelect, x: x}, nil
		case "FIELD", "DEFAULT":
			kw := p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return stmt{}, err
			}
			if _, err := p.expect(tokAssign); err != nil {
				return stmt{}, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return stmt{}, err
			}
			kind := stmtAssignField
			if strings.ToUpper(kw.text) == "DEFAULT" {
				kind = stmtAssignDefault
			}
			return stmt{kind: kind, name: name.text, x: x}, nil
		case "REM":
			// REM "comment"; — consume the string and yield a no-op.
			p.next()
			if p.at(tokString) {
				p.next()
			}
			return stmt{kind: stmtExpr, x: litExpr{text: "", isNum: false}}, nil
		}
		// Plain temp assignment: ident := expr
		if p.toks[p.pos+1].kind == tokAssign {
			name := p.next()
			p.next() // :=
			x, err := p.parseExpr()
			if err != nil {
				return stmt{}, err
			}
			return stmt{kind: stmtAssignTemp, name: name.text, x: x}, nil
		}
	}
	x, err := p.parseExpr()
	if err != nil {
		return stmt{}, err
	}
	return stmt{kind: stmtExpr, x: x}, nil
}

// Precedence, loosest first: |, &, comparisons, + -, * /, unary, :, primary.
func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(tokPipe) {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: tokPipe, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(tokAmp) {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: tokAmp, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().kind
		switch k {
		case tokEq, tokNeq, tokLt, tokGt, tokLe, tokGe:
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = binExpr{op: k, l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokPlus) || p.at(tokMinus) {
		k := p.next().kind
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: k, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokStar) || p.at(tokSlash) {
		k := p.next().kind
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: k, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	switch p.peek().kind {
	case tokBang:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: tokBang, x: x}, nil
	case tokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: tokMinus, x: x}, nil
	case tokPlus:
		p.next()
		return p.parseUnary()
	}
	return p.parseList()
}

// parseList handles the ':' list-concatenation operator, which binds tighter
// than arithmetic: 1:2+3 is (1:2)+3.
func (p *parser) parseList() (expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.at(tokColon) {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: tokColon, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return litExpr{num: t.num, isNum: true}, nil
	case tokString:
		p.next()
		return litExpr{text: t.text}, nil
	case tokLParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case tokIdent:
		p.next()
		if strings.HasPrefix(t.text, "@") {
			name := strings.ToLower(t.text)
			var args []expr
			if p.at(tokLParen) {
				p.next()
				if !p.at(tokRParen) {
					for {
						a, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						args = append(args, a)
						if p.at(tokSemi) {
							p.next()
							continue
						}
						break
					}
				}
				if _, err := p.expect(tokRParen); err != nil {
					return nil, err
				}
			}
			return callExpr{name: name, args: args}, nil
		}
		return fieldExpr{name: t.text}, nil
	default:
		return nil, fmt.Errorf("formula: unexpected %v at %d", t.kind, t.pos)
	}
}
