package formula

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/nsf"
)

// evalCall dispatches an @function invocation.
func evalCall(ctx *Context, e callExpr) (nsf.Value, error) {
	// @If evaluates lazily: @If(cond1; val1; cond2; val2; ...; else).
	if e.name == "@if" {
		if len(e.args) < 3 || len(e.args)%2 == 0 {
			return nsf.Value{}, fmt.Errorf("formula: @If wants an odd number of arguments >= 3")
		}
		for i := 0; i+1 < len(e.args); i += 2 {
			cond, err := evalExpr(ctx, e.args[i])
			if err != nil {
				return nsf.Value{}, err
			}
			if truthy(cond) {
				return evalExpr(ctx, e.args[i+1])
			}
		}
		return evalExpr(ctx, e.args[len(e.args)-1])
	}
	// @IsAvailable / @IsUnavailable inspect the argument node unevaluated.
	if e.name == "@isavailable" || e.name == "@isunavailable" {
		if len(e.args) != 1 {
			return nsf.Value{}, fmt.Errorf("formula: %s wants 1 argument", e.name)
		}
		fe, ok := e.args[0].(fieldExpr)
		if !ok {
			return nsf.Value{}, fmt.Errorf("formula: %s wants a field name", e.name)
		}
		avail := false
		if _, isTemp := ctx.temps[strings.ToLower(fe.name)]; isTemp {
			avail = true
		} else if ctx.Note != nil && ctx.Note.Has(fe.name) {
			avail = true
		}
		if e.name == "@isunavailable" {
			avail = !avail
		}
		return boolValue(avail), nil
	}

	fn, ok := builtins[e.name]
	if !ok {
		return nsf.Value{}, fmt.Errorf("formula: unknown function %s", e.name)
	}
	args := make([]nsf.Value, len(e.args))
	for i, a := range e.args {
		v, err := evalExpr(ctx, a)
		if err != nil {
			return nsf.Value{}, err
		}
		args[i] = v
	}
	if fn.arity >= 0 && len(args) != fn.arity {
		return nsf.Value{}, fmt.Errorf("formula: %s wants %d arguments, got %d", e.name, fn.arity, len(args))
	}
	if fn.minArity > 0 && len(args) < fn.minArity {
		return nsf.Value{}, fmt.Errorf("formula: %s wants at least %d arguments, got %d", e.name, fn.minArity, len(args))
	}
	return fn.call(ctx, args)
}

type builtin struct {
	arity    int // exact arity, -1 for variadic
	minArity int
	call     func(ctx *Context, args []nsf.Value) (nsf.Value, error)
}

// mapText lifts a per-entry string transform to a whole-value function.
func mapText(f func(string) string) builtin {
	return builtin{arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
		in := asTexts(args[0])
		out := make([]string, len(in))
		for i, s := range in {
			out[i] = f(s)
		}
		return nsf.TextValue(out...), nil
	}}
}

// mapNum lifts a per-entry numeric transform.
func mapNum(f func(float64) float64) builtin {
	return builtin{arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
		in, err := asNumbers(args[0])
		if err != nil {
			return nsf.Value{}, err
		}
		out := make([]float64, len(in))
		for i, n := range in {
			out[i] = f(n)
		}
		return nsf.NumberValue(out...), nil
	}}
}

// textPair lifts a pairwise (string, string) predicate over two lists with
// permuted semantics: true if any pair satisfies f.
func textPair(f func(a, b string) bool) builtin {
	return builtin{arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
		for _, a := range asTexts(args[0]) {
			for _, b := range asTexts(args[1]) {
				if f(a, b) {
					return boolValue(true), nil
				}
			}
		}
		return boolValue(false), nil
	}}
}

var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		"@all":   {arity: 0, call: func(_ *Context, _ []nsf.Value) (nsf.Value, error) { return boolValue(true), nil }},
		"@true":  {arity: 0, call: func(_ *Context, _ []nsf.Value) (nsf.Value, error) { return boolValue(true), nil }},
		"@false": {arity: 0, call: func(_ *Context, _ []nsf.Value) (nsf.Value, error) { return boolValue(false), nil }},

		"@contains": textPair(func(a, b string) bool {
			return strings.Contains(strings.ToLower(a), strings.ToLower(b))
		}),
		"@begins": textPair(func(a, b string) bool {
			return strings.HasPrefix(strings.ToLower(a), strings.ToLower(b))
		}),
		"@ends": textPair(func(a, b string) bool {
			return strings.HasSuffix(strings.ToLower(a), strings.ToLower(b))
		}),
		"@matches": textPair(func(a, b string) bool {
			return matchPattern(strings.ToLower(a), strings.ToLower(b))
		}),

		"@lowercase":  mapText(strings.ToLower),
		"@uppercase":  mapText(strings.ToUpper),
		"@propercase": mapText(properCase),
		"@trim": {arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			var out []string
			for _, s := range asTexts(args[0]) {
				s = strings.Join(strings.Fields(s), " ")
				if s != "" {
					out = append(out, s)
				}
			}
			return nsf.TextValue(out...), nil
		}},
		"@length": {arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			in := asTexts(args[0])
			out := make([]float64, len(in))
			for i, s := range in {
				out[i] = float64(len(s))
			}
			return nsf.NumberValue(out...), nil
		}},
		"@left": {arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			return sliceText(args[0], args[1], func(s string, n int) string {
				if n > len(s) {
					n = len(s)
				}
				if n < 0 {
					n = 0
				}
				return s[:n]
			})
		}},
		"@right": {arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			return sliceText(args[0], args[1], func(s string, n int) string {
				if n > len(s) {
					n = len(s)
				}
				if n < 0 {
					n = 0
				}
				return s[len(s)-n:]
			})
		}},
		"@word": {arity: 3, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			seps := asTexts(args[1])
			nums, err := asNumbers(args[2])
			if err != nil {
				return nsf.Value{}, err
			}
			if len(seps) == 0 || len(nums) == 0 {
				return nsf.TextValue(), nil
			}
			sep, idx := seps[0], int(nums[0])
			in := asTexts(args[0])
			out := make([]string, len(in))
			for i, s := range in {
				parts := strings.Split(s, sep)
				if idx >= 1 && idx <= len(parts) {
					out[i] = parts[idx-1]
				}
			}
			return nsf.TextValue(out...), nil
		}},
		"@replacesubstring": {arity: 3, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			from, to := asTexts(args[1]), asTexts(args[2])
			in := asTexts(args[0])
			out := make([]string, len(in))
			for i, s := range in {
				for j, f := range from {
					repl := ""
					if len(to) > 0 {
						repl = pickText(to, j)
					}
					s = strings.ReplaceAll(s, f, repl)
				}
				out[i] = s
			}
			return nsf.TextValue(out...), nil
		}},
		"@text": {arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			return nsf.TextValue(asTexts(args[0])...), nil
		}},
		"@texttonumber": {arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			n, err := asNumbers(args[0])
			if err != nil {
				return nsf.Value{}, err
			}
			return nsf.NumberValue(n...), nil
		}},

		"@elements": {arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			return nsf.NumberValue(float64(args[0].Len())), nil
		}},
		"@explode": {arity: -1, minArity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			seps := " ,;"
			if len(args) > 1 {
				if t := asTexts(args[1]); len(t) > 0 {
					seps = t[0]
				}
			}
			var out []string
			for _, s := range asTexts(args[0]) {
				out = append(out, splitAny(s, seps)...)
			}
			return nsf.TextValue(out...), nil
		}},
		"@implode": {arity: -1, minArity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			sep := " "
			if len(args) > 1 {
				if t := asTexts(args[1]); len(t) > 0 {
					sep = t[0]
				}
			}
			return nsf.TextValue(strings.Join(asTexts(args[0]), sep)), nil
		}},
		"@unique": {arity: -1, minArity: 0, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			if len(args) == 0 {
				return nsf.TextValue(fmt.Sprintf("U%d", uniqueCounter.Add(1))), nil
			}
			seen := make(map[string]bool)
			var out []string
			for _, s := range asTexts(args[0]) {
				key := strings.ToLower(s)
				if !seen[key] {
					seen[key] = true
					out = append(out, s)
				}
			}
			return nsf.TextValue(out...), nil
		}},
		"@subset": {arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			nums, err := asNumbers(args[1])
			if err != nil {
				return nsf.Value{}, err
			}
			if len(nums) == 0 {
				return nsf.Value{}, fmt.Errorf("formula: @Subset wants a count")
			}
			n := int(nums[0])
			in := asTexts(args[0])
			switch {
			case n > 0:
				if n > len(in) {
					n = len(in)
				}
				return nsf.TextValue(in[:n]...), nil
			case n < 0:
				k := -n
				if k > len(in) {
					k = len(in)
				}
				return nsf.TextValue(in[len(in)-k:]...), nil
			default:
				return nsf.Value{}, fmt.Errorf("formula: @Subset count must be non-zero")
			}
		}},
		"@member": {arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			list := asTexts(args[1])
			for _, want := range asTexts(args[0]) {
				for i, s := range list {
					if strings.EqualFold(want, s) {
						return nsf.NumberValue(float64(i + 1)), nil
					}
				}
			}
			return nsf.NumberValue(0), nil
		}},

		"@sum": {arity: -1, minArity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			total := 0.0
			for _, a := range args {
				nums, err := asNumbers(a)
				if err != nil {
					return nsf.Value{}, err
				}
				for _, n := range nums {
					total += n
				}
			}
			return nsf.NumberValue(total), nil
		}},
		"@min": {arity: -1, minArity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			return foldNums(args, math.Inf(1), math.Min)
		}},
		"@max": {arity: -1, minArity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			return foldNums(args, math.Inf(-1), math.Max)
		}},
		"@abs":     mapNum(math.Abs),
		"@sign":    mapNum(func(n float64) float64 { return float64(cmpFloat(n, 0)) }),
		"@integer": mapNum(math.Trunc),
		"@round":   mapNum(math.Round),
		"@sqrt":    mapNum(math.Sqrt),
		"@modulo": {arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			a, err := asNumbers(args[0])
			if err != nil {
				return nsf.Value{}, err
			}
			b, err := asNumbers(args[1])
			if err != nil {
				return nsf.Value{}, err
			}
			n := max(len(a), len(b))
			if len(a) == 0 || len(b) == 0 {
				n = 0
			}
			out := make([]float64, n)
			for i := range out {
				d := pickNum(b, i)
				if d == 0 {
					return nsf.Value{}, fmt.Errorf("formula: @Modulo by zero")
				}
				out[i] = math.Mod(pickNum(a, i), d)
			}
			return nsf.NumberValue(out...), nil
		}},

		"@now": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Now == nil {
				return nsf.TimeValue(0), nil
			}
			return nsf.TimeValue(ctx.Now()), nil
		}},
		"@created": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Note == nil {
				return nsf.TimeValue(0), nil
			}
			return nsf.TimeValue(ctx.Note.Created), nil
		}},
		"@modified": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Note == nil {
				return nsf.TimeValue(0), nil
			}
			return nsf.TimeValue(ctx.Note.Modified), nil
		}},
		"@year":   timePart(func(t nsf.Timestamp) float64 { return float64(t.Time().Year()) }),
		"@month":  timePart(func(t nsf.Timestamp) float64 { return float64(t.Time().Month()) }),
		"@day":    timePart(func(t nsf.Timestamp) float64 { return float64(t.Time().Day()) }),
		"@hour":   timePart(func(t nsf.Timestamp) float64 { return float64(t.Time().Hour()) }),
		"@minute": timePart(func(t nsf.Timestamp) float64 { return float64(t.Time().Minute()) }),
		"@second": timePart(func(t nsf.Timestamp) float64 { return float64(t.Time().Second()) }),

		"@username": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			return nsf.TextValue(ctx.UserName), nil
		}},
		"@documentuniqueid": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Note == nil {
				return nsf.TextValue(""), nil
			}
			return nsf.TextValue(ctx.Note.OID.UNID.String()), nil
		}},
		"@noteid": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Note == nil {
				return nsf.NumberValue(0), nil
			}
			return nsf.NumberValue(float64(ctx.Note.ID)), nil
		}},
		"@isresponsedoc": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			return boolValue(ctx.Note != nil && ctx.Note.Has("$Ref")), nil
		}},
		"@isconflict": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			return boolValue(ctx.Note != nil && ctx.Note.IsConflict()), nil
		}},
		"@authors": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Note == nil {
				return nsf.TextValue(), nil
			}
			return nsf.TextValue(ctx.Note.Authors()...), nil
		}},

		"@date": {arity: -1, minArity: 1, call: fnDate},
		"@adjust": {arity: 7, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			if args[0].Type != nsf.TypeTime || len(args[0].Times) == 0 {
				return nsf.Value{}, fmt.Errorf("formula: @Adjust wants a time first argument")
			}
			deltas := make([]int, 6)
			for i := 0; i < 6; i++ {
				nums, err := asNumbers(args[i+1])
				if err != nil {
					return nsf.Value{}, err
				}
				if len(nums) > 0 {
					deltas[i] = int(nums[0])
				}
			}
			out := make([]nsf.Timestamp, len(args[0].Times))
			for i, ts := range args[0].Times {
				adj := ts.Time().AddDate(deltas[0], deltas[1], deltas[2]).
					Add(time.Duration(deltas[3])*time.Hour +
						time.Duration(deltas[4])*time.Minute +
						time.Duration(deltas[5])*time.Second)
				out[i] = nsf.TimestampOf(adj)
			}
			return nsf.TimeValue(out...), nil
		}},
		"@today": {arity: 0, call: func(ctx *Context, _ []nsf.Value) (nsf.Value, error) {
			if ctx.Now == nil {
				return nsf.TimeValue(0), nil
			}
			y, m, d := ctx.Now().Time().Date()
			return nsf.TimeValue(nsf.TimestampOf(time.Date(y, m, d, 0, 0, 0, 0, time.UTC))), nil
		}},
		"@weekday": timePart(func(t nsf.Timestamp) float64 {
			return float64(t.Time().Weekday()) + 1 // Notes: Sunday = 1
		}),
		"@name": {arity: 2, call: fnName},
		"@keywords": {arity: -1, minArity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			seps := " ,;"
			if len(args) > 2 {
				if t := asTexts(args[2]); len(t) > 0 {
					seps = t[0]
				}
			}
			present := make(map[string]bool)
			for _, s := range asTexts(args[0]) {
				for _, w := range splitAny(s, seps) {
					present[strings.ToLower(w)] = true
				}
			}
			var out []string
			for _, kw := range asTexts(args[1]) {
				if present[strings.ToLower(kw)] {
					out = append(out, kw)
				}
			}
			return nsf.TextValue(out...), nil
		}},
		"@sort": {arity: -1, minArity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			descending := false
			if len(args) > 1 {
				if t := asTexts(args[1]); len(t) > 0 && strings.EqualFold(t[0], "descending") {
					descending = true
				}
			}
			if args[0].Type == nsf.TypeNumber {
				out := append([]float64(nil), args[0].Numbers...)
				sort.Float64s(out)
				if descending {
					slices.Reverse(out)
				}
				return nsf.NumberValue(out...), nil
			}
			out := append([]string(nil), asTexts(args[0])...)
			sort.Slice(out, func(i, j int) bool {
				return strings.ToLower(out[i]) < strings.ToLower(out[j])
			})
			if descending {
				slices.Reverse(out)
			}
			return nsf.TextValue(out...), nil
		}},
		"@repeat": {arity: 2, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
			nums, err := asNumbers(args[1])
			if err != nil {
				return nsf.Value{}, err
			}
			if len(nums) == 0 || nums[0] < 0 || nums[0] > 1<<16 {
				return nsf.Value{}, fmt.Errorf("formula: @Repeat count out of range")
			}
			in := asTexts(args[0])
			out := make([]string, len(in))
			for i, s := range in {
				out[i] = strings.Repeat(s, int(nums[0]))
			}
			return nsf.TextValue(out...), nil
		}},
	}
}

// fnDate implements @Date(y; m; d [; h; mi; s]) and @Date(timevalue).
func fnDate(_ *Context, args []nsf.Value) (nsf.Value, error) {
	if len(args) == 1 && args[0].Type == nsf.TypeTime {
		out := make([]nsf.Timestamp, len(args[0].Times))
		for i, ts := range args[0].Times {
			y, m, d := ts.Time().Date()
			out[i] = nsf.TimestampOf(time.Date(y, m, d, 0, 0, 0, 0, time.UTC))
		}
		return nsf.TimeValue(out...), nil
	}
	if len(args) != 3 && len(args) != 6 {
		return nsf.Value{}, fmt.Errorf("formula: @Date wants a time value, 3 numbers, or 6 numbers")
	}
	parts := make([]int, 6)
	for i, a := range args {
		nums, err := asNumbers(a)
		if err != nil {
			return nsf.Value{}, err
		}
		if len(nums) == 0 {
			return nsf.Value{}, fmt.Errorf("formula: @Date argument %d is empty", i+1)
		}
		parts[i] = int(nums[0])
	}
	tm := time.Date(parts[0], time.Month(parts[1]), parts[2],
		parts[3], parts[4], parts[5], 0, time.UTC)
	return nsf.TimeValue(nsf.TimestampOf(tm)), nil
}

// fnName implements @Name([part]; name) for hierarchical names of the form
// "CN=Ada Lovelace/OU=Eng/O=Acme". Supported parts: [CN], [O], [OU],
// [Abbreviate] (strip component tags), [Canonicalize] (ensure CN= prefix on
// flat names).
func fnName(_ *Context, args []nsf.Value) (nsf.Value, error) {
	parts := asTexts(args[0])
	if len(parts) == 0 {
		return nsf.Value{}, fmt.Errorf("formula: @Name wants a part keyword")
	}
	part := strings.ToLower(strings.Trim(parts[0], "[]"))
	in := asTexts(args[1])
	out := make([]string, len(in))
	for i, name := range in {
		out[i] = namePart(part, name)
	}
	return nsf.TextValue(out...), nil
}

func namePart(part, name string) string {
	components := strings.Split(name, "/")
	find := func(tag string) string {
		for _, c := range components {
			if k, v, ok := strings.Cut(c, "="); ok && strings.EqualFold(k, tag) {
				return v
			}
		}
		return ""
	}
	switch part {
	case "cn":
		if v := find("CN"); v != "" {
			return v
		}
		if !strings.Contains(name, "=") {
			return components[0]
		}
		return ""
	case "o":
		return find("O")
	case "ou":
		return find("OU")
	case "abbreviate":
		out := make([]string, 0, len(components))
		for _, c := range components {
			if _, v, ok := strings.Cut(c, "="); ok {
				out = append(out, v)
			} else {
				out = append(out, c)
			}
		}
		return strings.Join(out, "/")
	case "canonicalize":
		if strings.Contains(name, "=") {
			return name
		}
		return "CN=" + name
	default:
		return name
	}
}

func timePart(f func(nsf.Timestamp) float64) builtin {
	return builtin{arity: 1, call: func(_ *Context, args []nsf.Value) (nsf.Value, error) {
		if args[0].Type != nsf.TypeTime {
			return nsf.Value{}, fmt.Errorf("formula: time function wants a time value")
		}
		out := make([]float64, len(args[0].Times))
		for i, t := range args[0].Times {
			out[i] = f(t)
		}
		return nsf.NumberValue(out...), nil
	}}
}

func foldNums(args []nsf.Value, init float64, f func(a, b float64) float64) (nsf.Value, error) {
	acc := init
	seen := false
	for _, a := range args {
		nums, err := asNumbers(a)
		if err != nil {
			return nsf.Value{}, err
		}
		for _, n := range nums {
			acc = f(acc, n)
			seen = true
		}
	}
	if !seen {
		return nsf.NumberValue(), nil
	}
	return nsf.NumberValue(acc), nil
}

func sliceText(v, count nsf.Value, f func(string, int) string) (nsf.Value, error) {
	nums, err := asNumbers(count)
	if err != nil {
		return nsf.Value{}, err
	}
	if len(nums) == 0 {
		return nsf.TextValue(), nil
	}
	n := int(nums[0])
	in := asTexts(v)
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = f(s, n)
	}
	return nsf.TextValue(out...), nil
}

func properCase(s string) string {
	words := strings.Fields(strings.ToLower(s))
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

func splitAny(s, seps string) []string {
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool {
		return strings.ContainsRune(seps, r)
	}) {
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// matchPattern implements the Notes @Matches wildcard syntax: '?' matches
// one character, '*' matches any run.
func matchPattern(s, pat string) bool {
	// Classic iterative glob match.
	var si, pi, star, mark = 0, 0, -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '?' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '*':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '*' {
		pi++
	}
	return pi == len(pat)
}

// uniqueCounter backs the zero-argument @Unique.
var uniqueCounter atomic.Int64
