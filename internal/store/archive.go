package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/nsf"
)

// Log archiving: instead of discarding the sealed WAL at every checkpoint,
// the store rotates it into the archive directory as an immutable segment
// file. Segments preserve the complete, USN-stamped operation history, so a
// full backup image plus the archive can roll a database forward to any
// point in time.
//
// Segment file layout (seg-NNNNNNNN.walseg):
//
//	magic     "NSFWSEG1" (8 bytes)
//	seq       uint32     segment sequence number
//	firstUSN  uint64     USN of the first record
//	lastUSN   uint64     USN of the last record
//	records   uint32     record count
//	headerCRC uint32     castagnoli over bytes 8..32
//	frames               WAL record frames, identical to the live WAL format
//
// Segments are written to a temp name, fsynced, renamed into place, and the
// directory fsynced, so a crash can never leave a half-visible segment.
// After a crash between sealing and the WAL reset the same records can be
// sealed twice; readers tolerate the overlap because replay skips records
// at or below the store's current USN.

const (
	segMagic      = "NSFWSEG1"
	segHeaderSize = 8 + 4 + 8 + 8 + 4 + 4
)

// ErrCorruptSegment reports an archived segment whose header or frame
// stream failed its CRC; replay stops at the last intact record before it.
var ErrCorruptSegment = errors.New("store: corrupt archive segment")

// ErrArchiveGap reports a hole in the archived USN sequence: a record
// needed for point-in-time replay is missing (a segment was lost).
var ErrArchiveGap = errors.New("store: archive is missing log records")

// SegmentInfo describes one archived WAL segment.
type SegmentInfo struct {
	Path     string
	Seq      uint32
	FirstUSN uint64
	LastUSN  uint64
	Records  uint32
}

func segName(seq uint32) string { return fmt.Sprintf("seg-%08d.walseg", seq) }

// initArchive creates the archive directory and positions the segment
// counter after the highest existing segment.
func (s *Store) initArchive() error {
	if err := os.MkdirAll(s.opts.ArchiveDir, 0o755); err != nil {
		return fmt.Errorf("store: archive dir: %w", err)
	}
	segs, err := ListSegments(s.opts.ArchiveDir)
	if err != nil {
		return err
	}
	s.nextSegSeq = 1
	if len(segs) > 0 {
		s.nextSegSeq = segs[len(segs)-1].Seq + 1
	}
	return nil
}

// sealWALLocked rotates the current WAL contents into a new archive
// segment. No-op when archiving is off or the WAL is empty. Call with s.mu
// held, before the WAL is reset.
func (s *Store) sealWALLocked() error {
	if s.opts.ArchiveDir == "" || s.wal.size.Load() == 0 {
		return nil
	}
	raw, err := s.wal.readAll()
	if err != nil {
		return err
	}
	var first, last uint64
	records := uint32(0)
	consumed, _, err := scanFrames(bytes.NewReader(raw), int64(len(raw)), func(rec walRecord) error {
		if records == 0 {
			first = rec.USN
		}
		last = rec.USN
		records++
		return nil
	})
	if err != nil {
		return err
	}
	if records == 0 {
		return nil
	}
	seq := s.nextSegSeq
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[12:], first)
	binary.LittleEndian.PutUint64(hdr[20:], last)
	binary.LittleEndian.PutUint32(hdr[28:], records)
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(hdr[8:32], crcTable))

	final := filepath.Join(s.opts.ArchiveDir, segName(seq))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(raw[:consumed])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write segment: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish segment: %w", err)
	}
	if err := syncDir(s.opts.ArchiveDir); err != nil {
		return err
	}
	s.nextSegSeq = seq + 1
	return nil
}

// readSegmentHeader parses and validates a segment header.
func readSegmentHeader(path string, r io.Reader) (SegmentInfo, error) {
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return SegmentInfo{}, fmt.Errorf("%w: %s: short header", ErrCorruptSegment, path)
	}
	if string(hdr[:8]) != segMagic {
		return SegmentInfo{}, fmt.Errorf("%w: %s: bad magic", ErrCorruptSegment, path)
	}
	if crc32.Checksum(hdr[8:32], crcTable) != binary.LittleEndian.Uint32(hdr[32:]) {
		return SegmentInfo{}, fmt.Errorf("%w: %s: header CRC mismatch", ErrCorruptSegment, path)
	}
	return SegmentInfo{
		Path:     path,
		Seq:      binary.LittleEndian.Uint32(hdr[8:]),
		FirstUSN: binary.LittleEndian.Uint64(hdr[12:]),
		LastUSN:  binary.LittleEndian.Uint64(hdr[20:]),
		Records:  binary.LittleEndian.Uint32(hdr[28:]),
	}, nil
}

// ListSegments returns the archive's segments in sequence order, skipping
// temp files. Segments with unreadable headers are reported as errors.
func ListSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: read archive dir: %w", err)
	}
	var segs []SegmentInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".walseg") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		info, herr := readSegmentHeader(path, f)
		f.Close()
		if herr != nil {
			return nil, herr
		}
		segs = append(segs, info)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// VerifySegment checks one archived segment end to end: header CRC, every
// frame CRC, and agreement between the header's record count / USN range
// and the frames actually present. It returns the number of intact records
// read (even on error, so callers can report how far verification got).
func VerifySegment(seg SegmentInfo) (int, error) {
	f, err := os.Open(seg.Path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	hdr, err := readSegmentHeader(seg.Path, f)
	if err != nil {
		return 0, err
	}
	var first, last uint64
	records := 0
	frameBytes := info.Size() - segHeaderSize
	_, clean, err := scanFrames(io.NewSectionReader(f, segHeaderSize, frameBytes), frameBytes, func(rec walRecord) error {
		if records == 0 {
			first = rec.USN
		}
		last = rec.USN
		records++
		return nil
	})
	if err != nil {
		return records, err
	}
	if !clean {
		return records, fmt.Errorf("%w: %s: torn or corrupt frame after %d records", ErrCorruptSegment, seg.Path, records)
	}
	if uint32(records) != hdr.Records || first != hdr.FirstUSN || last != hdr.LastUSN {
		return records, fmt.Errorf("%w: %s: header claims %d records USN %d..%d, frames hold %d records USN %d..%d",
			ErrCorruptSegment, seg.Path, hdr.Records, hdr.FirstUSN, hdr.LastUSN, records, first, last)
	}
	return records, nil
}

// ScanArchive calls fn for every intact record in the archive whose USN
// lies in (afterUSN, toUSN], in USN order. Duplicate records (from
// crash-reseal overlap) are delivered once. A corrupt or torn frame stops
// the scan at the last intact record and returns ErrCorruptSegment wrapped
// with the segment path; a missing USN inside the requested range returns
// ErrArchiveGap. It returns the highest USN delivered.
func ScanArchive(dir string, afterUSN, toUSN uint64, fn func(rec walRecord) error) (uint64, error) {
	if toUSN == 0 {
		toUSN = ^uint64(0)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		return 0, err
	}
	applied := afterUSN
	done := false
	for _, seg := range segs {
		if done || seg.LastUSN <= applied {
			continue
		}
		if seg.FirstUSN > applied+1 {
			return applied, fmt.Errorf("%w: need USN %d, next segment %s starts at %d",
				ErrArchiveGap, applied+1, seg.Path, seg.FirstUSN)
		}
		f, err := os.Open(seg.Path)
		if err != nil {
			return applied, err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return applied, err
		}
		if _, err := readSegmentHeader(seg.Path, f); err != nil {
			f.Close()
			return applied, err
		}
		frameBytes := info.Size() - segHeaderSize
		_, clean, err := scanFrames(io.NewSectionReader(f, segHeaderSize, frameBytes), frameBytes, func(rec walRecord) error {
			if rec.USN <= applied || rec.USN > toUSN {
				if rec.USN > toUSN {
					done = true
				}
				return nil
			}
			if rec.USN != applied+1 {
				return fmt.Errorf("%w: need USN %d, segment %s jumps to %d",
					ErrArchiveGap, applied+1, seg.Path, rec.USN)
			}
			if err := fn(rec); err != nil {
				return err
			}
			applied = rec.USN
			return nil
		})
		f.Close()
		if err != nil {
			return applied, err
		}
		if !clean {
			return applied, fmt.Errorf("%w: %s: torn or corrupt frame after USN %d", ErrCorruptSegment, seg.Path, applied)
		}
	}
	return applied, nil
}

// ApplyArchive replays archived log records with USNs in (LastUSN, toUSN]
// into the store — the roll-forward half of point-in-time recovery
// (toUSN 0 means everything available). Replayed operations are re-logged
// in the store's own WAL with their original USNs, so a crash during
// recovery recovers. It returns the number of records applied.
func (s *Store) ApplyArchive(dir string, toUSN uint64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("store: closed")
	}
	// Settle any forming group-commit batch before appending to the WAL
	// directly: replayed records must land after every committed one.
	if s.gc != nil {
		if err := s.gc.drain(); err != nil {
			return 0, err
		}
	}
	applied := 0
	_, err := ScanArchive(dir, s.usn, toUSN, func(rec walRecord) error {
		if err := s.wal.append(rec.Kind, rec.USN, rec.Payload, false); err != nil {
			return err
		}
		s.usn = rec.USN
		switch rec.Kind {
		case walPut:
			note, err := nsf.DecodeNote(rec.Payload)
			if err != nil {
				return fmt.Errorf("store: archive replay put: %w", err)
			}
			if err := s.applyPut(note); err != nil {
				return err
			}
		case walDelete:
			if len(rec.Payload) != 16 {
				return fmt.Errorf("store: archive replay delete: payload length %d", len(rec.Payload))
			}
			var unid nsf.UNID
			copy(unid[:], rec.Payload)
			if err := s.applyDelete(unid); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
		default:
			return fmt.Errorf("store: archive replay: unknown record kind %d", rec.Kind)
		}
		applied++
		return nil
	})
	if err != nil {
		return applied, err
	}
	return applied, s.checkpointLocked()
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}
