package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/nsf"
)

// Verify checks the cross-consistency of the storage structures — the
// byID, byUNID, and byMod B+trees and the record heap — and returns a
// description of every problem found (empty means healthy). It is the
// equivalent of Domino's "fixup" in detect-only mode.
func (s *Store) Verify() []string {
	// A read latch suffices: Verify only reads, and holding it for the full
	// check keeps the three passes mutually consistent (writers are held
	// off; other readers proceed).
	s.rlock()
	defer s.runlock()
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Pass 1: every byID entry resolves to a decodable heap record whose
	// note agrees on the NoteID, and whose UNID maps back to it.
	type noteInfo struct {
		unid     nsf.UNID
		modified nsf.Timestamp
	}
	byID := make(map[nsf.NoteID]noteInfo)
	err := s.byID.Ascend(nil, func(k, v []byte) bool {
		id := nsf.NoteID(binary.BigEndian.Uint32(k))
		rid := RecordID(binary.BigEndian.Uint64(v))
		enc, err := s.heap.get(rid)
		if err != nil {
			report("note %d: heap record %x unreadable: %v", id, rid, err)
			return true
		}
		n, err := nsf.DecodeNote(enc)
		if err != nil {
			report("note %d: record does not decode: %v", id, err)
			return true
		}
		if n.ID != id {
			report("note %d: record carries NoteID %d", id, n.ID)
		}
		byID[id] = noteInfo{unid: n.OID.UNID, modified: n.Modified}
		return true
	})
	if err != nil {
		report("byID scan failed: %v", err)
	}
	if len(byID) != s.count {
		report("note count %d disagrees with byID entries %d", s.count, len(byID))
	}

	// Pass 2: byUNID is a bijection onto byID.
	unidSeen := 0
	err = s.byUNID.Ascend(nil, func(k, v []byte) bool {
		unidSeen++
		var unid nsf.UNID
		copy(unid[:], k)
		id := nsf.NoteID(binary.BigEndian.Uint32(v))
		info, ok := byID[id]
		if !ok {
			report("UNID %s maps to missing NoteID %d", unid, id)
			return true
		}
		if info.unid != unid {
			report("UNID %s maps to NoteID %d whose note has UNID %s", unid, id, info.unid)
		}
		return true
	})
	if err != nil {
		report("byUNID scan failed: %v", err)
	}
	if unidSeen != len(byID) {
		report("byUNID has %d entries, byID has %d", unidSeen, len(byID))
	}

	// Pass 3: byMod covers every note exactly once with the right stamp.
	modSeen := make(map[nsf.NoteID]bool, len(byID))
	err = s.byMod.Ascend(nil, func(k, _ []byte) bool {
		ts := nsf.Timestamp(binary.BigEndian.Uint64(k))
		id := nsf.NoteID(binary.BigEndian.Uint32(k[8:]))
		info, ok := byID[id]
		if !ok {
			report("byMod entry (%d, %d) references missing note", ts, id)
			return true
		}
		if info.modified != ts {
			report("byMod entry for note %d has stamp %d, note says %d", id, ts, info.modified)
		}
		if modSeen[id] {
			report("note %d appears twice in byMod", id)
		}
		modSeen[id] = true
		return true
	})
	if err != nil {
		report("byMod scan failed: %v", err)
	}
	for id := range byID {
		if !modSeen[id] {
			report("note %d missing from byMod", id)
		}
	}
	return problems
}
