// Package store implements the persistent storage engine backing an NSF
// database: a page file with a buffer pool, a write-ahead log with logical
// redo recovery, a slotted-page heap for note records, and persistent
// B+trees indexing notes by NoteID, by UNID, and by modification time.
//
// Durability model: the WAL logs note-level operations. Dirty pages are
// written back only at checkpoints (no-steal), so the page file is always
// consistent as of the last checkpoint and recovery is a simple forward
// replay of the WAL through the ordinary update paths.
package store

// PageSize is the fixed size of every page in the database file.
const PageSize = 4096

// PageID identifies a page by its index in the database file. Page 0 is the
// header page and is never allocated to data.
type PageID uint32

// nilPage marks the absence of a page reference.
const nilPage PageID = 0

// Page types, stored in the first byte of every non-header page.
const (
	pageFree   = 0
	pageLeaf   = 1
	pageBranch = 2
	pageHeap   = 3
)

// page is a buffer-pool frame.
type page struct {
	id    PageID
	data  [PageSize]byte
	dirty bool
	// lruElem links clean pages into the eviction list; nil while dirty.
}
