package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/nsf"
)

func openTestStore(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.nsf")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func makeNote(c *clock.Clock, subject string) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	now := c.Now()
	n.OID.Seq = 1
	n.OID.SeqTime = now
	n.Created = now
	n.Modified = now
	n.SetText("Subject", subject)
	return n
}

func TestStoreCRUD(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "crud"})
	c := clock.New()
	n := makeNote(c, "hello")
	if err := s.Put(n); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n.ID == 0 {
		t.Fatal("Put did not assign a NoteID")
	}
	got, err := s.GetByUNID(n.OID.UNID)
	if err != nil {
		t.Fatalf("GetByUNID: %v", err)
	}
	if got.Text("Subject") != "hello" || got.ID != n.ID {
		t.Fatalf("got %+v", got)
	}
	byID, err := s.GetByID(n.ID)
	if err != nil || byID.OID.UNID != n.OID.UNID {
		t.Fatalf("GetByID: %v", err)
	}
	// Update.
	n.SetText("Subject", "updated")
	n.Modified = c.Now()
	if err := s.Put(n); err != nil {
		t.Fatalf("Put update: %v", err)
	}
	if s.Count() != 1 {
		t.Fatalf("Count after update = %d", s.Count())
	}
	got, _ = s.GetByUNID(n.OID.UNID)
	if got.Text("Subject") != "updated" {
		t.Fatalf("update lost: %q", got.Text("Subject"))
	}
	// Delete.
	if err := s.Delete(n.OID.UNID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.GetByUNID(n.OID.UNID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := s.Delete(n.OID.UNID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestStoreRejectsZeroUNID(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	n := &nsf.Note{Class: nsf.ClassDocument}
	if err := s.Put(n); err == nil {
		t.Fatal("Put accepted zero UNID")
	}
}

func TestStoreLargeNotes(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	c := clock.New()
	n := makeNote(c, "big")
	n.SetText("Body", strings.Repeat("lorem ipsum ", 4000)) // ~48 KiB
	if err := s.Put(n); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.GetByUNID(n.OID.UNID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Text("Body") != n.Text("Body") {
		t.Fatal("large body corrupted")
	}
}

func TestStoreScanModifiedSince(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	c := clock.New()
	var stamps []nsf.Timestamp
	for i := 0; i < 20; i++ {
		n := makeNote(c, fmt.Sprintf("doc %d", i))
		stamps = append(stamps, n.Modified)
		if err := s.Put(n); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	var seen []string
	err := s.ScanModifiedSince(stamps[9], func(n *nsf.Note) bool {
		seen = append(seen, n.Text("Subject"))
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(seen) != 10 || seen[0] != "doc 10" {
		t.Fatalf("ScanModifiedSince = %v", seen)
	}
	// A fresh update moves a note to the end of the scan order.
	n0, _ := s.GetByID(1)
	n0.Modified = c.Now()
	if err := s.Put(n0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	seen = nil
	s.ScanModifiedSince(stamps[19], func(n *nsf.Note) bool {
		seen = append(seen, n.Text("Subject"))
		return true
	})
	if len(seen) != 1 || seen[0] != "doc 0" {
		t.Fatalf("after touch, scan = %v", seen)
	}
}

func TestStoreScanAll(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	c := clock.New()
	for i := 0; i < 10; i++ {
		if err := s.Put(makeNote(c, fmt.Sprint(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	count := 0
	s.ScanAll(func(n *nsf.Note) bool { count++; return true })
	if count != 10 {
		t.Fatalf("ScanAll visited %d", count)
	}
	count = 0
	s.ScanAll(func(n *nsf.Note) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestStorePersistenceAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	c := clock.New()
	s, err := Open(path, Options{Title: "persist"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n := makeNote(c, "survivor")
	if err := s.Put(n); err != nil {
		t.Fatalf("Put: %v", err)
	}
	replica := s.ReplicaID()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if s2.ReplicaID() != replica {
		t.Error("replica ID changed across reopen")
	}
	if s2.Title() != "persist" {
		t.Errorf("title = %q", s2.Title())
	}
	got, err := s2.GetByUNID(n.OID.UNID)
	if err != nil || got.Text("Subject") != "survivor" {
		t.Fatalf("after reopen: %v, %v", got, err)
	}
}

// TestStoreCrashRecovery simulates a crash by reopening the files without
// closing (no checkpoint): everything must come back from the WAL.
func TestStoreCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	c := clock.New()
	s, err := Open(path, Options{CheckpointEvery: -1}) // never checkpoint
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var unids []nsf.UNID
	for i := 0; i < 100; i++ {
		n := makeNote(c, fmt.Sprintf("doc %d", i))
		if err := s.Put(n); err != nil {
			t.Fatalf("Put: %v", err)
		}
		unids = append(unids, n.OID.UNID)
	}
	// Delete some, update some.
	for i := 0; i < 10; i++ {
		if err := s.Delete(unids[i]); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	for i := 10; i < 20; i++ {
		n, _ := s.GetByUNID(unids[i])
		n.SetText("Subject", "updated")
		n.Modified = c.Now()
		if err := s.Put(n); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Crash: abandon s without Close. Its page file was never flushed.
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if got := s2.Count(); got != 90 {
		t.Fatalf("Count after recovery = %d, want 90", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := s2.GetByUNID(unids[i]); !errors.Is(err, ErrNotFound) {
			t.Errorf("deleted doc %d resurrected: %v", i, err)
		}
	}
	for i := 10; i < 20; i++ {
		n, err := s2.GetByUNID(unids[i])
		if err != nil || n.Text("Subject") != "updated" {
			t.Errorf("updated doc %d lost: %v", i, err)
		}
	}
	for i := 20; i < 100; i++ {
		if _, err := s2.GetByUNID(unids[i]); err != nil {
			t.Errorf("doc %d lost: %v", i, err)
		}
	}
}

// TestStoreCrashMidstreamCheckpoints covers a crash after some checkpoints:
// recovery replays only the tail.
func TestStoreCrashAfterCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	c := clock.New()
	s, err := Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n1 := makeNote(c, "before checkpoint")
	if err := s.Put(n1); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	n2 := makeNote(c, "after checkpoint")
	if err := s.Put(n2); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Crash without close.
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	for _, n := range []*nsf.Note{n1, n2} {
		if _, err := s2.GetByUNID(n.OID.UNID); err != nil {
			t.Errorf("note %q lost: %v", n.Text("Subject"), err)
		}
	}
	// NoteID allocation must not collide with recovered notes.
	n3 := makeNote(c, "post recovery")
	if err := s2.Put(n3); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if n3.ID == n1.ID || n3.ID == n2.ID {
		t.Errorf("NoteID %d reused after recovery", n3.ID)
	}
}

// TestStoreTornWALTail appends garbage to the WAL and verifies recovery
// ignores the torn tail and keeps the intact prefix.
func TestStoreTornWALTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	c := clock.New()
	s, err := Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	n := makeNote(c, "intact")
	if err := s.Put(n); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate a torn write: truncate the last few bytes of the WAL after a
	// second put.
	n2 := makeNote(c, "torn")
	if err := s.Put(n2); err != nil {
		t.Fatalf("Put: %v", err)
	}
	walPath := path + ".wal"
	size := s.wal.size.Load()
	if err := s.wal.f.Truncate(size - 3); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if _, err := s2.GetByUNID(n.OID.UNID); err != nil {
		t.Errorf("intact note lost: %v", err)
	}
	if _, err := s2.GetByUNID(n2.OID.UNID); !errors.Is(err, ErrNotFound) {
		t.Errorf("torn note should be gone, got %v", err)
	}
	_ = walPath
}

func TestStoreAutoCheckpoint(t *testing.T) {
	s, _ := openTestStore(t, Options{CheckpointEvery: 10})
	c := clock.New()
	for i := 0; i < 25; i++ {
		if err := s.Put(makeNote(c, fmt.Sprint(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	st := s.Stats()
	// 25 ops with checkpoint every 10: last checkpoint at op 20, so the WAL
	// holds at most 5 records.
	if st.WALBytes == 0 {
		t.Log("WAL empty right at checkpoint boundary; acceptable")
	}
	if st.DirtyPages > 50 {
		t.Errorf("dirty pages = %d after auto checkpoints", st.DirtyPages)
	}
	if st.Notes != 25 {
		t.Errorf("Notes = %d", st.Notes)
	}
}
