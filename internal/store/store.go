package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/nsf"
)

// ErrNotFound is returned when a requested note does not exist.
var ErrNotFound = errors.New("store: note not found")

// ErrQuotaExceeded is returned when a write would grow the database past
// its configured quota.
var ErrQuotaExceeded = errors.New("store: database quota exceeded")

// Options configure a Store.
type Options struct {
	// ReplicaID identifies the replica when creating a new database. If
	// zero, a random one is generated.
	ReplicaID nsf.ReplicaID
	// Title is the human-readable database title (creation only).
	Title string
	// Created stamps the database creation time (creation only).
	Created nsf.Timestamp
	// SyncWAL fsyncs the WAL on every operation. Off by default: the WAL is
	// still written per operation, so only an OS crash (not a process
	// crash) can lose the tail.
	SyncWAL bool
	// CheckpointEvery triggers an automatic checkpoint after this many
	// logged operations. Zero means the default (8192); negative disables
	// automatic checkpoints.
	CheckpointEvery int
	// CacheCap bounds the buffer pool in pages (0 = default).
	CacheCap int
	// ArchiveDir, when non-empty, turns on log archiving: at every
	// checkpoint the sealed WAL contents are rotated into this directory as
	// a CRC-framed segment file instead of being discarded, preserving the
	// complete operation history for incremental backup verification and
	// point-in-time recovery. The directory is created if missing.
	ArchiveDir string
	// QuotaBytes caps the database file size; writes that would grow the
	// file past the quota fail with ErrQuotaExceeded (reads, deletes, and
	// in-place updates that do not grow the file still work). Zero means
	// unlimited.
	QuotaBytes int64
}

// Store is a persistent note store: the storage half of an NSF database.
// All methods are safe for concurrent use; operations are serialized by a
// single mutex, mirroring Domino's per-database update semaphore.
type Store struct {
	mu              sync.Mutex
	path            string
	pg              *pager
	wal             *wal
	heap            *heap
	byID            *btree // NoteID (4B BE)            -> RecordID (8B)
	byUNID          *btree // UNID (16B)                -> NoteID (4B BE)
	byMod           *btree // Modified (8B BE) + NoteID -> nil
	opts            Options
	count           int // live notes (including stubs)
	sinceCheckpoint int
	closed          bool

	// usn is the update sequence number of the last committed operation.
	// It is dense (every Put/Delete advances it by one), persisted in the
	// header at checkpoints, and recovered exactly by WAL replay — the
	// cursor backups and point-in-time recovery are built on.
	usn uint64
	// modHigh is the high-water Modified timestamp over all notes ever
	// stored — the incremental-backup cursor. Monotone even when the
	// newest note is later hard-deleted.
	modHigh nsf.Timestamp
	// nextSegSeq numbers the next archived WAL segment (when archiving).
	nextSegSeq uint32
	// ckHold suspends checkpoints while a hot backup copies the page file
	// (writes keep appending to the WAL); ckDeferred remembers that a
	// checkpoint came due during the hold.
	ckHold     int
	ckDeferred bool
}

// Open opens or creates the database at path (page file) with a companion
// WAL at path+".wal", and runs crash recovery.
func Open(path string, opts Options) (*Store, error) {
	replica := opts.ReplicaID
	if replica.IsZero() {
		replica = nsf.NewReplicaID()
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 8192
	}
	pg, err := openPager(path, replica, opts.Title, opts.Created, opts.CacheCap)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(path + ".wal")
	if err != nil {
		pg.close()
		return nil, err
	}
	s := &Store{path: path, pg: pg, wal: w, heap: newHeap(pg), opts: opts}
	s.byID = &btree{pg: pg, slot: rootSlotByID}
	s.byUNID = &btree{pg: pg, slot: rootSlotByUNID}
	s.byMod = &btree{pg: pg, slot: rootSlotByMod}
	if opts.ArchiveDir != "" {
		if err := s.initArchive(); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// recover rebuilds in-memory state from the checkpointed page file and
// replays the WAL through the ordinary update paths.
func (s *Store) recover() error {
	if err := s.heap.rebuild(); err != nil {
		return err
	}
	n, err := s.byID.Len()
	if err != nil {
		return err
	}
	s.count = n
	s.usn = s.pg.lastUSN
	// Recover the modification high-water mark from the byMod index (WAL
	// replay below advances it past the checkpoint).
	err = s.byMod.Ascend(nil, func(k, _ []byte) bool {
		if t := nsf.Timestamp(binary.BigEndian.Uint64(k)); t > s.modHigh {
			s.modHigh = t
		}
		return true
	})
	if err != nil {
		return err
	}
	replayed := 0
	err = s.wal.replay(func(rec walRecord) error {
		replayed++
		if rec.USN > s.usn {
			s.usn = rec.USN
		}
		switch rec.Kind {
		case walPut:
			note, err := nsf.DecodeNote(rec.Payload)
			if err != nil {
				return fmt.Errorf("store: replay put: %w", err)
			}
			return s.applyPut(note)
		case walDelete:
			if len(rec.Payload) != 16 {
				return fmt.Errorf("store: replay delete: payload length %d", len(rec.Payload))
			}
			var unid nsf.UNID
			copy(unid[:], rec.Payload)
			if err := s.applyDelete(unid); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			return nil
		default:
			return fmt.Errorf("store: replay: unknown record kind %d", rec.Kind)
		}
	})
	if err != nil {
		return err
	}
	if replayed > 0 {
		// Fold the replayed tail into a fresh checkpoint so the WAL shrinks
		// and a second crash replays nothing twice. (With archiving on this
		// also seals the replayed records into a segment; a crash between
		// sealing and the reset re-seals them, which the archive reader
		// tolerates because replay skips already-applied USNs.)
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Path returns the page file path the store was opened with.
func (s *Store) Path() string { return s.path }

// Exists reports whether a note with the given UNID is stored, without
// loading it.
func (s *Store) Exists(unid nsf.UNID) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok, err := s.byUNID.Get(unid[:])
	return ok, err
}

// ReplicaID returns the database's replica identity.
func (s *Store) ReplicaID() nsf.ReplicaID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pg.replicaID
}

// Title returns the database title.
func (s *Store) Title() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pg.title
}

// Created returns the database creation timestamp.
func (s *Store) Created() nsf.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pg.created
}

// Count returns the number of stored notes, deletion stubs included.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

func idKey(id nsf.NoteID) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(id))
	return k[:]
}

func modKey(t nsf.Timestamp, id nsf.NoteID) []byte {
	var k [12]byte
	binary.BigEndian.PutUint64(k[:], uint64(t))
	binary.BigEndian.PutUint32(k[8:], uint32(id))
	return k[:]
}

// Put stores a note (insert or update, keyed by UNID), assigning a NoteID
// when the note is new. The note's Modified timestamp indexes it for
// replication scans; callers (internal/core) maintain OID versioning.
func (s *Store) Put(n *nsf.Note) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if n.OID.UNID.IsZero() {
		return errors.New("store: note has zero UNID")
	}
	if n.ID == 0 {
		// Reuse the NoteID if this UNID already exists; otherwise allocate.
		if v, ok, err := s.byUNID.Get(n.OID.UNID[:]); err != nil {
			return err
		} else if ok {
			n.ID = nsf.NoteID(binary.BigEndian.Uint32(v))
		} else {
			n.ID = nsf.NoteID(s.pg.nextNoteID)
			s.pg.nextNoteID++
			s.pg.hdrDirty = true
		}
	}
	enc := nsf.EncodeNote(n)
	// Quota check against the projected file size: current pages plus a
	// worst-case estimate for this note's records and index growth.
	// Deletion stubs are exempt — deleting must always be possible at
	// quota, since it is how users make room.
	if q := s.opts.QuotaBytes; q > 0 && !n.IsStub() {
		projected := int64(s.pg.pageCount)*PageSize + int64(len(enc)) + 4*PageSize
		if projected > q {
			return fmt.Errorf("%w: file would reach %d bytes (quota %d)", ErrQuotaExceeded, projected, q)
		}
	}
	if err := s.wal.append(walPut, s.usn+1, enc, s.opts.SyncWAL); err != nil {
		return err
	}
	s.usn++
	if err := s.applyPutEncoded(n, enc); err != nil {
		return err
	}
	return s.maybeCheckpoint()
}

// applyPut applies a decoded note (WAL replay path).
func (s *Store) applyPut(n *nsf.Note) error {
	return s.applyPutEncoded(n, nsf.EncodeNote(n))
}

func (s *Store) applyPutEncoded(n *nsf.Note, enc []byte) error {
	if uint32(n.ID) >= s.pg.nextNoteID {
		s.pg.nextNoteID = uint32(n.ID) + 1
		s.pg.hdrDirty = true
	}
	// Remove the previous version, if any.
	if v, ok, err := s.byID.Get(idKey(n.ID)); err != nil {
		return err
	} else if ok {
		oldRID := RecordID(binary.BigEndian.Uint64(v))
		oldEnc, err := s.heap.get(oldRID)
		if err != nil {
			return err
		}
		old, err := nsf.DecodeNote(oldEnc)
		if err != nil {
			return err
		}
		if _, err := s.byMod.Delete(modKey(old.Modified, old.ID)); err != nil {
			return err
		}
		if err := s.heap.delete(oldRID); err != nil {
			return err
		}
		s.count--
	}
	rid, err := s.heap.insert(enc)
	if err != nil {
		return err
	}
	var ridBuf [8]byte
	binary.BigEndian.PutUint64(ridBuf[:], uint64(rid))
	if err := s.byID.Put(idKey(n.ID), ridBuf[:]); err != nil {
		return err
	}
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], uint32(n.ID))
	if err := s.byUNID.Put(n.OID.UNID[:], idBuf[:]); err != nil {
		return err
	}
	if err := s.byMod.Put(modKey(n.Modified, n.ID), nil); err != nil {
		return err
	}
	if n.Modified > s.modHigh {
		s.modHigh = n.Modified
	}
	s.count++
	return nil
}

// Delete removes a note physically (hard delete). Logical deletion —
// replacing a note with a deletion stub so the delete replicates — is the
// job of internal/core; the storage engine only ever hard-deletes, e.g.
// when purging stubs past the cutoff.
func (s *Store) Delete(unid nsf.UNID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if err := s.wal.append(walDelete, s.usn+1, unid[:], s.opts.SyncWAL); err != nil {
		return err
	}
	s.usn++
	if err := s.applyDelete(unid); err != nil {
		return err
	}
	return s.maybeCheckpoint()
}

func (s *Store) applyDelete(unid nsf.UNID) error {
	v, ok, err := s.byUNID.Get(unid[:])
	if err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	id := nsf.NoteID(binary.BigEndian.Uint32(v))
	rv, ok, err := s.byID.Get(idKey(id))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("store: index inconsistency: UNID %s maps to missing NoteID %d", unid, id)
	}
	rid := RecordID(binary.BigEndian.Uint64(rv))
	enc, err := s.heap.get(rid)
	if err != nil {
		return err
	}
	old, err := nsf.DecodeNote(enc)
	if err != nil {
		return err
	}
	if _, err := s.byMod.Delete(modKey(old.Modified, id)); err != nil {
		return err
	}
	if _, err := s.byID.Delete(idKey(id)); err != nil {
		return err
	}
	if _, err := s.byUNID.Delete(unid[:]); err != nil {
		return err
	}
	if err := s.heap.delete(rid); err != nil {
		return err
	}
	s.count--
	return nil
}

// GetByUNID returns the note with the given UNID.
func (s *Store) GetByUNID(unid nsf.UNID) (*nsf.Note, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok, err := s.byUNID.Get(unid[:])
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return s.getByIDLocked(nsf.NoteID(binary.BigEndian.Uint32(v)))
}

// GetByID returns the note with the given per-replica NoteID.
func (s *Store) GetByID(id nsf.NoteID) (*nsf.Note, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getByIDLocked(id)
}

func (s *Store) getByIDLocked(id nsf.NoteID) (*nsf.Note, error) {
	v, ok, err := s.byID.Get(idKey(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	enc, err := s.heap.get(RecordID(binary.BigEndian.Uint64(v)))
	if err != nil {
		return nil, err
	}
	return nsf.DecodeNote(enc)
}

// ScanModifiedSince calls fn for every note with Modified > since, in
// ascending modification order, until fn returns false. This is the scan
// the replicator uses to find a delta.
func (s *Store) ScanModifiedSince(since nsf.Timestamp, fn func(*nsf.Note) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := modKey(since, 0xFFFFFFFF) // strictly after all ids at `since`
	// Collect IDs first: the callback must not re-enter the btree mid-scan
	// with interleaved heap reads mutating the pool — reads are safe, but
	// collecting keeps the iteration logic simple and snapshot-like.
	var ids []nsf.NoteID
	err := s.byMod.Ascend(from, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k[8:])))
		return true
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		n, err := s.getByIDLocked(id)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// ScanAll calls fn for every note in NoteID order until fn returns false.
func (s *Store) ScanAll(fn func(*nsf.Note) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []nsf.NoteID
	err := s.byID.Ascend(nil, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k)))
		return true
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		n, err := s.getByIDLocked(id)
		if err != nil {
			return err
		}
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// maybeCheckpoint checkpoints when the configured operation budget since the
// last checkpoint is exhausted.
func (s *Store) maybeCheckpoint() error {
	s.sinceCheckpoint++
	if s.opts.CheckpointEvery < 0 || s.sinceCheckpoint < s.opts.CheckpointEvery {
		return nil
	}
	return s.checkpointLocked()
}

// Checkpoint flushes all dirty pages and truncates the WAL (sealing it into
// the archive first when log archiving is on).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.ckHold > 0 {
		// A hot backup is copying the page file: the file must not change
		// under the copy. The checkpoint runs when the hold is released
		// (or, after a crash, recovery replays the intact WAL).
		s.ckDeferred = true
		return nil
	}
	// Seal the WAL into the archive before touching the page file: if we
	// crash after sealing, recovery replays the intact WAL and re-seals
	// (overlap the archive reader skips); if we crash after the flush but
	// before the reset, likewise. Log history is never lost.
	if err := s.sealWALLocked(); err != nil {
		return err
	}
	s.pg.lastUSN = s.usn
	s.pg.hdrDirty = true
	if err := s.pg.flush(); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.sinceCheckpoint = 0
	s.ckDeferred = false
	return nil
}

// LastUSN returns the update sequence number of the last committed
// operation. USNs are dense, persistent, and recovered exactly by crash
// recovery.
func (s *Store) LastUSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usn
}

// ModHigh returns the high-water Modified timestamp over every note ever
// stored — the cursor incremental backups scan from.
func (s *Store) ModHigh() nsf.Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modHigh
}

// AdvanceUSN raises the store's USN to at least usn without logging an
// operation. Restore uses it after applying a backup image so subsequent
// point-in-time log replay lines up with the image's cursor.
func (s *Store) AdvanceUSN(usn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if usn > s.usn {
		s.usn = usn
	}
}

// Stats reports storage statistics.
type Stats struct {
	Notes      int
	Pages      int
	DirtyPages int
	WALBytes   int64
	// LastUSN is the update sequence number of the last committed
	// operation (persistent across reopens).
	LastUSN uint64
}

// Stats returns current storage statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Notes:      s.count,
		Pages:      int(s.pg.pageCount),
		DirtyPages: s.pg.dirtyCount(),
		WALBytes:   s.wal.size,
		LastUSN:    s.usn,
	}
}

// Close checkpoints and releases the underlying files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.checkpointLocked()
	if cerr := s.closeFiles(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) closeFiles() error {
	err := s.pg.close()
	if werr := s.wal.close(); err == nil {
		err = werr
	}
	return err
}
