package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/nsf"
)

// ErrNotFound is returned when a requested note does not exist.
var ErrNotFound = errors.New("store: note not found")

// ErrQuotaExceeded is returned when a write would grow the database past
// its configured quota.
var ErrQuotaExceeded = errors.New("store: database quota exceeded")

// Options configure a Store.
type Options struct {
	// ReplicaID identifies the replica when creating a new database. If
	// zero, a random one is generated.
	ReplicaID nsf.ReplicaID
	// Title is the human-readable database title (creation only).
	Title string
	// Created stamps the database creation time (creation only).
	Created nsf.Timestamp
	// SyncWAL fsyncs the WAL on every operation. Off by default: the WAL is
	// still written per operation, so only an OS crash (not a process
	// crash) can lose the tail.
	SyncWAL bool
	// GroupCommitWindow, when positive, turns on group commit: concurrent
	// committers enqueue their WAL records into a shared batch and one
	// leader writes (and, with SyncWAL, fsyncs) the whole batch, so the log
	// is forced once per group instead of once per operation. Batching is
	// natural — whatever accumulates during the previous flush forms the
	// next batch — so under concurrency no one ever sleeps; the window is
	// only how long a leader with a lone record lingers for company before
	// forcing the log alone (and it is ignored when SyncWAL is off, where a
	// solo flush is cheap). 200µs is a reasonable setting.
	GroupCommitWindow time.Duration
	// CheckpointEvery triggers an automatic checkpoint after this many
	// logged operations. Zero means the default (8192); negative disables
	// automatic checkpoints.
	CheckpointEvery int
	// CacheCap bounds the buffer pool in pages (0 = default).
	CacheCap int
	// ArchiveDir, when non-empty, turns on log archiving: at every
	// checkpoint the sealed WAL contents are rotated into this directory as
	// a CRC-framed segment file instead of being discarded, preserving the
	// complete operation history for incremental backup verification and
	// point-in-time recovery. The directory is created if missing.
	ArchiveDir string
	// QuotaBytes caps the database file size; writes that would grow the
	// file past the quota fail with ErrQuotaExceeded (reads, deletes, and
	// in-place updates that do not grow the file still work). Zero means
	// unlimited.
	QuotaBytes int64
	// NoteCacheCap bounds the decoded-note cache in entries. Zero means the
	// default (4096); negative disables the cache.
	NoteCacheCap int
	// SerializeReads restores the seed's single-semaphore discipline: reads
	// take the exclusive latch, scans hold it end to end, and the note
	// cache is disabled. It exists as the measured baseline for the W4
	// read-path experiment and as an ablation hook; leave it off in
	// production.
	SerializeReads bool
}

// Store is a persistent note store: the storage half of an NSF database.
// All methods are safe for concurrent use.
//
// Latching discipline: mu is a reader/writer latch. Point reads (GetByUNID,
// GetByID, Exists, Count, metadata, Stats, Verify) take the read latch and
// run concurrently with each other; mutations (Put, Delete, Checkpoint,
// Compact, Close) take the exclusive latch. The pager's buffer pool and the
// heap's free-space map carry their own internal latches so concurrent
// readers can fault pages in safely. ScanAll and ScanModifiedSince are
// snapshot scans: they collect the ID list under a short read latch, then
// fetch notes in batches (each batch under its own brief read latch) and
// run the callback with no latch held — a full scan never blocks a writer
// for more than one batch fetch. Notes deleted between the ID snapshot and
// the fetch are skipped. This replaces the seed's literal reproduction of
// Domino's per-database update semaphore (one mutex around everything),
// which made every view rebuild or replication scan stall all writers.
type Store struct {
	mu              sync.RWMutex
	path            string
	pg              *pager
	wal             *wal
	gc              *commitGroup // non-nil when group commit is on
	heap            *heap
	cache           *noteCache // decoded-note cache; nil when disabled
	byID            *btree     // NoteID (4B BE)            -> RecordID (8B)
	byUNID          *btree     // UNID (16B)                -> NoteID (4B BE)
	byMod           *btree     // Modified (8B BE) + NoteID -> nil
	opts            Options
	count           int // live notes (including stubs)
	sinceCheckpoint int
	closed          bool

	// usn is the update sequence number of the last committed operation.
	// It is dense (every Put/Delete advances it by one), persisted in the
	// header at checkpoints, and recovered exactly by WAL replay — the
	// cursor backups and point-in-time recovery are built on.
	usn uint64
	// modHigh is the high-water Modified timestamp over all notes ever
	// stored — the incremental-backup cursor. Monotone even when the
	// newest note is later hard-deleted.
	modHigh nsf.Timestamp
	// nextSegSeq numbers the next archived WAL segment (when archiving).
	nextSegSeq uint32
	// ckHold suspends checkpoints while a hot backup copies the page file
	// (writes keep appending to the WAL); ckDeferred remembers that a
	// checkpoint came due during the hold.
	ckHold     int
	ckDeferred bool
}

// Open opens or creates the database at path (page file) with a companion
// WAL at path+".wal", and runs crash recovery.
func Open(path string, opts Options) (*Store, error) {
	replica := opts.ReplicaID
	if replica.IsZero() {
		replica = nsf.NewReplicaID()
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 8192
	}
	pg, err := openPager(path, replica, opts.Title, opts.Created, opts.CacheCap)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(path + ".wal")
	if err != nil {
		pg.close()
		return nil, err
	}
	s := &Store{path: path, pg: pg, wal: w, heap: newHeap(pg), opts: opts}
	if opts.GroupCommitWindow > 0 {
		s.gc = newCommitGroup(w, opts.SyncWAL, opts.GroupCommitWindow)
	}
	if !opts.SerializeReads {
		s.cache = newNoteCache(opts.NoteCacheCap)
	}
	s.byID = &btree{pg: pg, slot: rootSlotByID}
	s.byUNID = &btree{pg: pg, slot: rootSlotByUNID}
	s.byMod = &btree{pg: pg, slot: rootSlotByMod}
	if opts.ArchiveDir != "" {
		if err := s.initArchive(); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	return s, nil
}

// recover rebuilds in-memory state from the checkpointed page file and
// replays the WAL through the ordinary update paths.
func (s *Store) recover() error {
	if err := s.heap.rebuild(); err != nil {
		return err
	}
	n, err := s.byID.Len()
	if err != nil {
		return err
	}
	s.count = n
	s.usn = s.pg.lastUSN
	// Recover the modification high-water mark from the byMod index (WAL
	// replay below advances it past the checkpoint).
	err = s.byMod.Ascend(nil, func(k, _ []byte) bool {
		if t := nsf.Timestamp(binary.BigEndian.Uint64(k)); t > s.modHigh {
			s.modHigh = t
		}
		return true
	})
	if err != nil {
		return err
	}
	replayed := 0
	err = s.wal.replay(func(rec walRecord) error {
		replayed++
		if rec.USN > s.usn {
			s.usn = rec.USN
		}
		switch rec.Kind {
		case walPut:
			note, err := nsf.DecodeNote(rec.Payload)
			if err != nil {
				return fmt.Errorf("store: replay put: %w", err)
			}
			return s.applyPut(note)
		case walDelete:
			if len(rec.Payload) != 16 {
				return fmt.Errorf("store: replay delete: payload length %d", len(rec.Payload))
			}
			var unid nsf.UNID
			copy(unid[:], rec.Payload)
			if err := s.applyDelete(unid); err != nil && !errors.Is(err, ErrNotFound) {
				return err
			}
			return nil
		default:
			return fmt.Errorf("store: replay: unknown record kind %d", rec.Kind)
		}
	})
	if err != nil {
		return err
	}
	if replayed > 0 {
		// Fold the replayed tail into a fresh checkpoint so the WAL shrinks
		// and a second crash replays nothing twice. (With archiving on this
		// also seals the replayed records into a segment; a crash between
		// sealing and the reset re-seals them, which the archive reader
		// tolerates because replay skips already-applied USNs.)
		if err := s.checkpointLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Path returns the page file path the store was opened with.
func (s *Store) Path() string { return s.path }

// rlock takes the read latch — or the exclusive latch when the
// SerializeReads ablation is on, reproducing the seed's single-semaphore
// behaviour for before/after measurement.
func (s *Store) rlock() {
	if s.opts.SerializeReads {
		s.mu.Lock()
	} else {
		s.mu.RLock()
	}
}

func (s *Store) runlock() {
	if s.opts.SerializeReads {
		s.mu.Unlock()
	} else {
		s.mu.RUnlock()
	}
}

// Exists reports whether a note with the given UNID is stored, without
// loading it.
func (s *Store) Exists(unid nsf.UNID) (bool, error) {
	s.rlock()
	defer s.runlock()
	_, ok, err := s.byUNID.Get(unid[:])
	return ok, err
}

// ReplicaID returns the database's replica identity.
func (s *Store) ReplicaID() nsf.ReplicaID {
	s.rlock()
	defer s.runlock()
	return s.pg.replicaID
}

// Title returns the database title.
func (s *Store) Title() string {
	s.rlock()
	defer s.runlock()
	return s.pg.title
}

// Created returns the database creation timestamp.
func (s *Store) Created() nsf.Timestamp {
	s.rlock()
	defer s.runlock()
	return s.pg.created
}

// Count returns the number of stored notes, deletion stubs included.
func (s *Store) Count() int {
	s.rlock()
	defer s.runlock()
	return s.count
}

func idKey(id nsf.NoteID) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(id))
	return k[:]
}

func modKey(t nsf.Timestamp, id nsf.NoteID) []byte {
	var k [12]byte
	binary.BigEndian.PutUint64(k[:], uint64(t))
	binary.BigEndian.PutUint32(k[8:], uint32(id))
	return k[:]
}

// Commit is a durability ticket for one logged operation. Wait blocks until
// the operation's WAL record is on disk (fsynced per the store's SyncWAL
// setting) and returns the log-write error, if any. Under group commit many
// tickets resolve with one shared fsync; without it the record was already
// written when the ticket was issued and Wait returns immediately. The zero
// Commit waits for nothing.
type Commit struct {
	g *commitGroup
	b *pendingBatch
}

// Wait blocks until the logged operation is durable.
func (c Commit) Wait() error {
	if c.g == nil {
		return nil
	}
	return c.g.wait(c.b)
}

// logRecord routes one WAL record through group commit (returning a ticket
// to wait on) or, without it, appends the record before returning.
func (s *Store) logRecord(kind byte, usn uint64, payload []byte) (Commit, error) {
	if s.gc != nil {
		return Commit{g: s.gc, b: s.gc.enqueue(kind, usn, payload)}, nil
	}
	return Commit{}, s.wal.append(kind, usn, payload, s.opts.SyncWAL)
}

// encBufPool recycles per-put note-encode buffers. Both the WAL (frame or
// batch) and the heap copy the encoding, so the buffer is free for reuse as
// soon as the apply completes.
var encBufPool = sync.Pool{New: func() any { return new([]byte) }}

// maxPooledEncBuf caps what goes back in the pool so one giant note does not
// pin a giant buffer forever.
const maxPooledEncBuf = 1 << 20

// Put stores a note (insert or update, keyed by UNID), assigning a NoteID
// when the note is new. The note's Modified timestamp indexes it for
// replication scans; callers (internal/core) maintain OID versioning.
func (s *Store) Put(n *nsf.Note) error {
	c, err := s.PutAsync(n)
	if err != nil {
		return err
	}
	return c.Wait()
}

// PutAsync applies a put and returns a durability ticket instead of waiting
// for the WAL force. The note is visible to reads immediately; it is
// guaranteed on disk only after Wait returns nil. Callers that acknowledge
// writes (internal/core) wait outside their own latches so concurrent
// committers can share one group-commit fsync.
func (s *Store) PutAsync(n *nsf.Note) (Commit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Commit{}, errors.New("store: closed")
	}
	if n.OID.UNID.IsZero() {
		return Commit{}, errors.New("store: note has zero UNID")
	}
	if n.ID == 0 {
		// Reuse the NoteID if this UNID already exists; otherwise allocate.
		if v, ok, err := s.byUNID.Get(n.OID.UNID[:]); err != nil {
			return Commit{}, err
		} else if ok {
			n.ID = nsf.NoteID(binary.BigEndian.Uint32(v))
		} else {
			n.ID = nsf.NoteID(s.pg.nextNoteID)
			s.pg.nextNoteID++
			s.pg.hdrDirty = true
		}
	}
	bufp := encBufPool.Get().(*[]byte)
	enc := nsf.AppendNote((*bufp)[:0], n)
	defer func() {
		if cap(enc) <= maxPooledEncBuf {
			*bufp = enc
		}
		encBufPool.Put(bufp)
	}()
	// Quota check against the projected file size: current pages plus a
	// worst-case estimate for this note's records and index growth.
	// Deletion stubs are exempt — deleting must always be possible at
	// quota, since it is how users make room.
	if q := s.opts.QuotaBytes; q > 0 && !n.IsStub() {
		projected := int64(s.pg.pageCount)*PageSize + int64(len(enc)) + 4*PageSize
		if projected > q {
			return Commit{}, fmt.Errorf("%w: file would reach %d bytes (quota %d)", ErrQuotaExceeded, projected, q)
		}
	}
	ticket, err := s.logRecord(walPut, s.usn+1, enc)
	if err != nil {
		return Commit{}, err
	}
	s.usn++
	if err := s.applyPutEncoded(n, enc); err != nil {
		return ticket, err
	}
	return ticket, s.maybeCheckpoint()
}

// applyPut applies a decoded note (WAL replay path).
func (s *Store) applyPut(n *nsf.Note) error {
	return s.applyPutEncoded(n, nsf.EncodeNote(n))
}

func (s *Store) applyPutEncoded(n *nsf.Note, enc []byte) error {
	if uint32(n.ID) >= s.pg.nextNoteID {
		s.pg.nextNoteID = uint32(n.ID) + 1
		s.pg.hdrDirty = true
	}
	// Remove the previous version, if any. The cached decode (when present)
	// supplies the old Modified stamp without re-reading the heap.
	if v, ok, err := s.byID.Get(idKey(n.ID)); err != nil {
		return err
	} else if ok {
		oldRID := RecordID(binary.BigEndian.Uint64(v))
		var oldMod nsf.Timestamp
		if cached := s.cache.peek(oldRID); cached != nil {
			oldMod = cached.Modified
		} else {
			oldEnc, err := s.heap.get(oldRID)
			if err != nil {
				return err
			}
			old, err := nsf.DecodeNote(oldEnc)
			if err != nil {
				return err
			}
			oldMod = old.Modified
		}
		s.cache.invalidate(oldRID)
		if _, err := s.byMod.Delete(modKey(oldMod, n.ID)); err != nil {
			return err
		}
		if err := s.heap.delete(oldRID); err != nil {
			return err
		}
		s.count--
	}
	rid, err := s.heap.insert(enc)
	if err != nil {
		return err
	}
	var ridBuf [8]byte
	binary.BigEndian.PutUint64(ridBuf[:], uint64(rid))
	if err := s.byID.Put(idKey(n.ID), ridBuf[:]); err != nil {
		return err
	}
	var idBuf [4]byte
	binary.BigEndian.PutUint32(idBuf[:], uint32(n.ID))
	if err := s.byUNID.Put(n.OID.UNID[:], idBuf[:]); err != nil {
		return err
	}
	if err := s.byMod.Put(modKey(n.Modified, n.ID), nil); err != nil {
		return err
	}
	if n.Modified > s.modHigh {
		s.modHigh = n.Modified
	}
	s.count++
	return nil
}

// Delete removes a note physically (hard delete). Logical deletion —
// replacing a note with a deletion stub so the delete replicates — is the
// job of internal/core; the storage engine only ever hard-deletes, e.g.
// when purging stubs past the cutoff.
func (s *Store) Delete(unid nsf.UNID) error {
	c, err := s.DeleteAsync(unid)
	if err != nil {
		return err
	}
	return c.Wait()
}

// DeleteAsync is Delete returning a durability ticket; see PutAsync.
func (s *Store) DeleteAsync(unid nsf.UNID) (Commit, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Commit{}, errors.New("store: closed")
	}
	// Check existence before logging: a delete of a missing note must not
	// consume a USN or leave a record for recovery to replay.
	if _, ok, err := s.byUNID.Get(unid[:]); err != nil {
		return Commit{}, err
	} else if !ok {
		return Commit{}, ErrNotFound
	}
	ticket, err := s.logRecord(walDelete, s.usn+1, unid[:])
	if err != nil {
		return Commit{}, err
	}
	s.usn++
	if err := s.applyDelete(unid); err != nil {
		return ticket, err
	}
	return ticket, s.maybeCheckpoint()
}

func (s *Store) applyDelete(unid nsf.UNID) error {
	v, ok, err := s.byUNID.Get(unid[:])
	if err != nil {
		return err
	}
	if !ok {
		return ErrNotFound
	}
	id := nsf.NoteID(binary.BigEndian.Uint32(v))
	rv, ok, err := s.byID.Get(idKey(id))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("store: index inconsistency: UNID %s maps to missing NoteID %d", unid, id)
	}
	rid := RecordID(binary.BigEndian.Uint64(rv))
	var oldMod nsf.Timestamp
	if cached := s.cache.peek(rid); cached != nil {
		oldMod = cached.Modified
	} else {
		enc, err := s.heap.get(rid)
		if err != nil {
			return err
		}
		old, err := nsf.DecodeNote(enc)
		if err != nil {
			return err
		}
		oldMod = old.Modified
	}
	s.cache.invalidate(rid)
	if _, err := s.byMod.Delete(modKey(oldMod, id)); err != nil {
		return err
	}
	if _, err := s.byID.Delete(idKey(id)); err != nil {
		return err
	}
	if _, err := s.byUNID.Delete(unid[:]); err != nil {
		return err
	}
	if err := s.heap.delete(rid); err != nil {
		return err
	}
	s.count--
	return nil
}

// GetByUNID returns the note with the given UNID.
func (s *Store) GetByUNID(unid nsf.UNID) (*nsf.Note, error) {
	s.rlock()
	defer s.runlock()
	// Hot path: the cache's UNID hint skips both index descents.
	if n, ok := s.cache.getByUNID(unid); ok {
		return n, nil
	}
	v, ok, err := s.byUNID.Get(unid[:])
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	return s.getByIDLocked(nsf.NoteID(binary.BigEndian.Uint32(v)), true)
}

// GetByID returns the note with the given per-replica NoteID.
func (s *Store) GetByID(id nsf.NoteID) (*nsf.Note, error) {
	s.rlock()
	defer s.runlock()
	return s.getByIDLocked(id, true)
}

// getByIDLocked loads a note by NoteID. The caller holds the store latch
// (read or exclusive).
func (s *Store) getByIDLocked(id nsf.NoteID, admit bool) (*nsf.Note, error) {
	v, ok, err := s.byID.Get(idKey(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNotFound
	}
	rid := RecordID(binary.BigEndian.Uint64(v))
	if n, ok := s.cache.get(rid); ok {
		return n, nil
	}
	enc, err := s.heap.get(rid)
	if err != nil {
		return nil, err
	}
	n, err := nsf.DecodeNote(enc)
	if err != nil {
		return nil, err
	}
	// Scans pass admit=false for scan resistance: one pass over a corpus
	// larger than the cache would otherwise evict the point-read working
	// set (and pay an eviction per miss) without ever re-using what it
	// inserted.
	if !admit {
		return n, nil
	}
	// The cache takes ownership of the decoded note and hands back a copy,
	// so a caller mutating its result can never corrupt a later read.
	return s.cache.add(rid, n), nil
}

// scanBatch is how many notes a snapshot scan fetches per read-latch hold.
const scanBatch = 256

// ScanModifiedSince calls fn for every note with Modified > since, in
// ascending modification order, until fn returns false. This is the scan
// the replicator uses to find a delta.
//
// The scan is snapshot-style: it observes the set of notes present when it
// starts (a consistent prefix of the modification history), fetches them in
// batches, and runs fn with no latch held — writers are never stalled for
// the duration of the scan. Notes deleted while the scan is in flight are
// skipped; notes modified while it is in flight may be observed in either
// version.
func (s *Store) ScanModifiedSince(since nsf.Timestamp, fn func(*nsf.Note) bool) error {
	if s.opts.SerializeReads {
		return s.scanModifiedSinceSerialized(since, fn)
	}
	from := modKey(since, 0xFFFFFFFF) // strictly after all ids at `since`
	s.mu.RLock()
	var ids []nsf.NoteID
	err := s.byMod.Ascend(from, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k[8:])))
		return true
	})
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	return s.fetchNotes(ids, fn)
}

// ScanAll calls fn for every note in NoteID order until fn returns false.
// Snapshot semantics match ScanModifiedSince: the ID list is collected
// under a short read latch, notes are fetched in batches, fn runs with no
// latch held, and concurrently deleted notes are skipped.
func (s *Store) ScanAll(fn func(*nsf.Note) bool) error {
	return s.ScanAllCtx(context.Background(), fn)
}

// ScanAllCtx is ScanAll with cooperative cancellation: the deadline is
// checked between fetch batches, so a cancelled scan stops within one
// scanBatch of work and never holds the read latch past the check.
func (s *Store) ScanAllCtx(ctx context.Context, fn func(*nsf.Note) bool) error {
	if s.opts.SerializeReads {
		return s.scanAllSerialized(ctxGate(ctx, fn))
	}
	s.mu.RLock()
	var ids []nsf.NoteID
	err := s.byID.Ascend(nil, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k)))
		return true
	})
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	return s.fetchNotesCtx(ctx, ids, fn)
}

// ScanFrom calls fn for every note with NoteID strictly greater than
// after, in NoteID order, until fn returns false. Snapshot semantics match
// ScanAll. NoteIDs are assigned monotonically and survive compaction, so a
// bulk reader that remembers the last ID it consumed can resume a scan of
// this physical database exactly where it stopped — the cursor the wire
// scan ops page with. (NoteIDs are per-copy: a cursor is meaningless
// against another replica of the same database.)
func (s *Store) ScanFrom(after nsf.NoteID, fn func(*nsf.Note) bool) error {
	return s.ScanFromCtx(context.Background(), after, fn)
}

// ScanFromCtx is ScanFrom with cooperative cancellation; see ScanAllCtx.
func (s *Store) ScanFromCtx(ctx context.Context, after nsf.NoteID, fn func(*nsf.Note) bool) error {
	if after == 0 {
		return s.ScanAllCtx(ctx, fn)
	}
	if s.opts.SerializeReads {
		return s.scanAllSerialized(ctxGate(ctx, func(n *nsf.Note) bool {
			if n.ID <= after {
				return true
			}
			return fn(n)
		}))
	}
	if after == ^nsf.NoteID(0) {
		return nil
	}
	s.mu.RLock()
	var ids []nsf.NoteID
	err := s.byID.Ascend(idKey(after+1), func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k)))
		return true
	})
	s.mu.RUnlock()
	if err != nil {
		return err
	}
	return s.fetchNotesCtx(ctx, ids, fn)
}

// ctxGate wraps a scan callback so it stops (returning false) once ctx is
// done, every scanBatch calls. Used on the serialized ablation paths, where
// the exclusive latch is held for the whole scan: the gate bounds how long
// a cancelled caller can keep writers stalled. The scan then returns nil,
// not ctx's error — callers that care re-check ctx themselves.
func ctxGate(ctx context.Context, fn func(*nsf.Note) bool) func(*nsf.Note) bool {
	var seen int
	return func(n *nsf.Note) bool {
		if seen++; seen%scanBatch == 0 && ctx.Err() != nil {
			return false
		}
		return fn(n)
	}
}

// fetchNotes delivers the snapshot ID list to fn: each batch of notes is
// fetched under one brief read latch, then fn runs latch-free, so fn may
// re-enter the store (even to write) and a slow consumer never holds the
// latch. IDs whose notes vanished since the snapshot are skipped.
func (s *Store) fetchNotes(ids []nsf.NoteID, fn func(*nsf.Note) bool) error {
	return s.fetchNotesCtx(context.Background(), ids, fn)
}

// fetchNotesCtx is fetchNotes with a deadline check before each batch's
// latch acquisition: a cancelled scan returns ctx's error without fetching
// or delivering the rest of the snapshot.
func (s *Store) fetchNotesCtx(ctx context.Context, ids []nsf.NoteID, fn func(*nsf.Note) bool) error {
	batch := make([]*nsf.Note, 0, scanBatch)
	for len(ids) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := ids
		if len(chunk) > scanBatch {
			chunk = chunk[:scanBatch]
		}
		ids = ids[len(chunk):]
		batch = batch[:0]
		s.mu.RLock()
		if s.closed {
			s.mu.RUnlock()
			return errors.New("store: closed")
		}
		for _, id := range chunk {
			n, err := s.getByIDLocked(id, false)
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					continue
				}
				s.mu.RUnlock()
				return err
			}
			batch = append(batch, n)
		}
		s.mu.RUnlock()
		for _, n := range batch {
			if !fn(n) {
				return nil
			}
		}
	}
	return nil
}

// scanModifiedSinceSerialized is the seed behaviour (ablation only): the
// exclusive latch is held for the whole scan, fn included.
func (s *Store) scanModifiedSinceSerialized(since nsf.Timestamp, fn func(*nsf.Note) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	from := modKey(since, 0xFFFFFFFF)
	var ids []nsf.NoteID
	err := s.byMod.Ascend(from, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k[8:])))
		return true
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		n, err := s.getByIDLocked(id, false)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return err
		}
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// scanAllSerialized is the seed behaviour (ablation only).
func (s *Store) scanAllSerialized(fn func(*nsf.Note) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []nsf.NoteID
	err := s.byID.Ascend(nil, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k)))
		return true
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		n, err := s.getByIDLocked(id, false)
		if err != nil {
			return err
		}
		if !fn(n) {
			return nil
		}
	}
	return nil
}

// maybeCheckpoint checkpoints when the configured operation budget since the
// last checkpoint is exhausted.
func (s *Store) maybeCheckpoint() error {
	s.sinceCheckpoint++
	if s.opts.CheckpointEvery < 0 || s.sinceCheckpoint < s.opts.CheckpointEvery {
		return nil
	}
	return s.checkpointLocked()
}

// Checkpoint flushes all dirty pages and truncates the WAL (sealing it into
// the archive first when log archiving is on).
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Store) checkpointLocked() error {
	if s.ckHold > 0 {
		// A hot backup is copying the page file: the file must not change
		// under the copy. The checkpoint runs when the hold is released
		// (or, after a crash, recovery replays the intact WAL).
		s.ckDeferred = true
		return nil
	}
	// Flush the forming group-commit batch first: sealing or resetting the
	// WAL while records sit in memory would lose them. A failed flush
	// poisons the group, so the checkpoint must not proceed past it.
	if s.gc != nil {
		if err := s.gc.drain(); err != nil {
			return err
		}
	}
	// Seal the WAL into the archive before touching the page file: if we
	// crash after sealing, recovery replays the intact WAL and re-seals
	// (overlap the archive reader skips); if we crash after the flush but
	// before the reset, likewise. Log history is never lost.
	if err := s.sealWALLocked(); err != nil {
		return err
	}
	s.pg.lastUSN = s.usn
	s.pg.hdrDirty = true
	if err := s.pg.flush(); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.sinceCheckpoint = 0
	s.ckDeferred = false
	return nil
}

// LastUSN returns the update sequence number of the last committed
// operation. USNs are dense, persistent, and recovered exactly by crash
// recovery.
func (s *Store) LastUSN() uint64 {
	s.rlock()
	defer s.runlock()
	return s.usn
}

// ModHigh returns the high-water Modified timestamp over every note ever
// stored — the cursor incremental backups scan from.
func (s *Store) ModHigh() nsf.Timestamp {
	s.rlock()
	defer s.runlock()
	return s.modHigh
}

// AdvanceUSN raises the store's USN to at least usn without logging an
// operation. Restore uses it after applying a backup image so subsequent
// point-in-time log replay lines up with the image's cursor.
func (s *Store) AdvanceUSN(usn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if usn > s.usn {
		s.usn = usn
	}
}

// Stats reports storage statistics.
type Stats struct {
	Notes      int
	Pages      int
	DirtyPages int
	WALBytes   int64
	// LastUSN is the update sequence number of the last committed
	// operation (persistent across reopens).
	LastUSN uint64
	// NoteCacheEntries/Hits/Misses report the decoded-note cache (all zero
	// when the cache is disabled).
	NoteCacheEntries int
	NoteCacheHits    uint64
	NoteCacheMisses  uint64
	// GroupCommitFlushes/Records report group commit when it is on: batches
	// written and logical records carried by them. Records/Flushes is the
	// achieved fsync amortization factor.
	GroupCommitFlushes uint64
	GroupCommitRecords uint64
}

// Stats returns current storage statistics.
func (s *Store) Stats() Stats {
	s.rlock()
	defer s.runlock()
	entries, hits, misses := s.cache.stats()
	st := Stats{
		Notes:            s.count,
		Pages:            int(s.pg.pageCount),
		DirtyPages:       s.pg.dirtyCount(),
		WALBytes:         s.wal.size.Load(),
		LastUSN:          s.usn,
		NoteCacheEntries: entries,
		NoteCacheHits:    hits,
		NoteCacheMisses:  misses,
	}
	if s.gc != nil {
		st.GroupCommitFlushes, st.GroupCommitRecords = s.gc.stats()
	}
	return st
}

// Close checkpoints and releases the underlying files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.checkpointLocked()
	if cerr := s.closeFiles(); err == nil {
		err = cerr
	}
	return err
}

func (s *Store) closeFiles() error {
	err := s.pg.close()
	if werr := s.wal.close(); err == nil {
		err = werr
	}
	return err
}
