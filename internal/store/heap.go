package store

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Heap page layout:
//
//	off 0  u8   page type (pageHeap)
//	off 1  u8   reserved
//	off 2  u16  number of slots
//	off 4  u16  cellStart: lowest byte offset used by record bytes
//	off 6  u16  × nslots: slot table, each slot is offset u16 | length u16;
//	            offset 0xFFFF marks a free slot
//
// Record bytes grow downward from the page end. A logical record larger
// than a page is stored as a chain of segments; each segment is prefixed by
// a one-byte flag and, when the flag says so, an 8-byte continuation
// RecordID.
const (
	heapHdrSize  = 6
	heapSlotSize = 4
	freeSlotMark = 0xFFFF
	segFlagNone  = 0
	segFlagNext  = 1
	// maxSegPayload leaves room for the page header, one slot, the segment
	// flag, and a continuation pointer.
	maxSegPayload = PageSize - heapHdrSize - heapSlotSize - 9
)

// RecordID locates a stored record: page ID in the high 48 bits, slot in
// the low 16.
type RecordID uint64

func makeRecordID(pg PageID, slot int) RecordID {
	return RecordID(uint64(pg)<<16 | uint64(uint16(slot)))
}

func (r RecordID) page() PageID { return PageID(r >> 16) }
func (r RecordID) slot() int    { return int(uint16(r)) }

// IsZero reports whether r is unset.
func (r RecordID) IsZero() bool { return r == 0 }

func heapSlotCount(pg *page) int { return int(binary.LittleEndian.Uint16(pg.data[2:])) }
func setHeapSlotCount(pg *page, n int) {
	binary.LittleEndian.PutUint16(pg.data[2:], uint16(n))
}
func heapCellStart(pg *page) int { return int(binary.LittleEndian.Uint16(pg.data[4:])) }
func setHeapCellStart(pg *page, off int) {
	binary.LittleEndian.PutUint16(pg.data[4:], uint16(off))
}

func heapSlot(pg *page, i int) (off, length int) {
	base := heapHdrSize + i*heapSlotSize
	return int(binary.LittleEndian.Uint16(pg.data[base:])),
		int(binary.LittleEndian.Uint16(pg.data[base+2:]))
}

func setHeapSlot(pg *page, i, off, length int) {
	base := heapHdrSize + i*heapSlotSize
	binary.LittleEndian.PutUint16(pg.data[base:], uint16(off))
	binary.LittleEndian.PutUint16(pg.data[base+2:], uint16(length))
}

func initHeapPage(pg *page) {
	pg.data = [PageSize]byte{}
	pg.data[0] = pageHeap
	setHeapCellStart(pg, PageSize)
	pg.dirty = true
}

// heapPotential returns the bytes a record could occupy on the page after
// compaction, reserving room for a slot entry. This is the metric the
// free-space map tracks: tryPlace compacts when fragmentation alone is in
// the way.
func heapPotential(pg *page) int {
	return PageSize - heapHdrSize - heapLive(pg) - heapSlotSize
}

// heapFree returns usable bytes for a new record on the page, accounting
// for a possibly-needed new slot entry.
func heapFree(pg *page) int {
	n := heapSlotCount(pg)
	free := heapCellStart(pg) - (heapHdrSize + n*heapSlotSize)
	// Reserve room for one more slot unless a free slot can be reused.
	for i := 0; i < n; i++ {
		if off, _ := heapSlot(pg, i); off == freeSlotMark {
			return free
		}
	}
	return free - heapSlotSize
}

// heapLive returns bytes of live record data plus the slot table.
func heapLive(pg *page) int {
	n := heapSlotCount(pg)
	total := n * heapSlotSize
	for i := 0; i < n; i++ {
		if off, l := heapSlot(pg, i); off != freeSlotMark {
			total += l
			_ = off
		}
	}
	return total
}

// heapCompact rewrites live records contiguously at the page end.
func heapCompact(pg *page) {
	n := heapSlotCount(pg)
	var scratch [PageSize]byte
	off := PageSize
	type live struct{ slot, off, length int }
	var lives []live
	for i := 0; i < n; i++ {
		o, l := heapSlot(pg, i)
		if o == freeSlotMark {
			continue
		}
		off -= l
		copy(scratch[off:], pg.data[o:o+l])
		lives = append(lives, live{i, off, l})
	}
	copy(pg.data[off:], scratch[off:])
	setHeapCellStart(pg, off)
	for _, lv := range lives {
		setHeapSlot(pg, lv.slot, lv.off, lv.length)
	}
	pg.dirty = true
}

// heap allocates and retrieves variable-length records across heap pages.
// It keeps an in-memory free-space map, rebuilt on open by scanning pages.
//
// mu guards the free-space map. Mutations (insert, delete, rebuild) only
// run under the store's exclusive latch today, but the heap carries its own
// latch so its invariant is local: reads (get) never touch the map and are
// safe under the store's read latch.
type heap struct {
	pg *pager
	mu sync.Mutex
	// avail maps heap pages to their approximate free byte count.
	avail map[PageID]int
}

func newHeap(pg *pager) *heap {
	return &heap{pg: pg, avail: make(map[PageID]int)}
}

// rebuild scans the file and reconstructs the free-space map.
func (h *heap) rebuild() error {
	avail := make(map[PageID]int)
	for id := PageID(1); id < PageID(h.pg.pageCount); id++ {
		pg, err := h.pg.get(id)
		if err != nil {
			return err
		}
		if nodeType(pg) == pageHeap {
			if free := heapPotential(pg); free > 64 {
				avail[id] = free
			}
		}
	}
	h.mu.Lock()
	h.avail = avail
	h.mu.Unlock()
	return nil
}

// insert stores data and returns its RecordID. Large records are chained
// across multiple segments, written back-to-front so each segment knows its
// continuation.
func (h *heap) insert(data []byte) (RecordID, error) {
	// Split payload into segments of at most maxSegPayload.
	var segs [][]byte
	for len(data) > maxSegPayload {
		segs = append(segs, data[:maxSegPayload])
		data = data[maxSegPayload:]
	}
	segs = append(segs, data)
	next := RecordID(0)
	for i := len(segs) - 1; i >= 0; i-- {
		var buf []byte
		if next.IsZero() {
			buf = make([]byte, 0, 1+len(segs[i]))
			buf = append(buf, segFlagNone)
		} else {
			buf = make([]byte, 0, 9+len(segs[i]))
			buf = append(buf, segFlagNext)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(next))
		}
		buf = append(buf, segs[i]...)
		rid, err := h.insertSegment(buf)
		if err != nil {
			return 0, err
		}
		next = rid
	}
	return next, nil
}

// insertSegment stores one physical segment (<= page capacity).
func (h *heap) insertSegment(seg []byte) (RecordID, error) {
	need := len(seg)
	// First fit from the free-space map, with a bounded probe: scanning the
	// whole map for every large segment that fits nowhere would make big
	// inserts O(#pages). A short probe keeps inserts O(1) at a small
	// fragmentation cost. Candidates are collected under the map latch,
	// then tried outside it (tryPlace re-enters the latch via noteFree).
	h.mu.Lock()
	var cands []PageID
	probes := 0
	for id, free := range h.avail {
		if probes >= 16 {
			break
		}
		probes++
		if free >= need {
			cands = append(cands, id)
		}
	}
	h.mu.Unlock()
	for _, id := range cands {
		pg, err := h.pg.get(id)
		if err != nil {
			return 0, err
		}
		rid, ok := h.tryPlace(pg, seg)
		if ok {
			return rid, nil
		}
		// Map was stale; refresh it.
		h.noteFree(pg)
	}
	pg, err := h.pg.alloc()
	if err != nil {
		return 0, err
	}
	initHeapPage(pg)
	rid, ok := h.tryPlace(pg, seg)
	if !ok {
		return 0, fmt.Errorf("store: segment of %d bytes does not fit an empty heap page", len(seg))
	}
	return rid, nil
}

// tryPlace attempts to store seg on pg, compacting if fragmentation alone is
// the obstacle.
func (h *heap) tryPlace(pg *page, seg []byte) (RecordID, bool) {
	if heapFree(pg) < len(seg) {
		if PageSize-heapHdrSize-heapLive(pg)-heapSlotSize < len(seg) {
			return 0, false
		}
		heapCompact(pg)
	}
	// Find or create a slot.
	n := heapSlotCount(pg)
	slot := -1
	for i := 0; i < n; i++ {
		if off, _ := heapSlot(pg, i); off == freeSlotMark {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = n
		setHeapSlotCount(pg, n+1)
	}
	off := heapCellStart(pg) - len(seg)
	copy(pg.data[off:], seg)
	setHeapCellStart(pg, off)
	setHeapSlot(pg, slot, off, len(seg))
	pg.dirty = true
	h.noteFree(pg)
	return makeRecordID(pg.id, slot), true
}

// noteFree refreshes the free-space map entry for pg.
func (h *heap) noteFree(pg *page) {
	free := heapPotential(pg)
	h.mu.Lock()
	if free > 64 {
		h.avail[pg.id] = free
	} else {
		delete(h.avail, pg.id)
	}
	h.mu.Unlock()
}

// get reads the full record stored at rid, following segment chains.
func (h *heap) get(rid RecordID) ([]byte, error) {
	var out []byte
	for {
		pg, err := h.pg.get(rid.page())
		if err != nil {
			return nil, err
		}
		if nodeType(pg) != pageHeap {
			return nil, fmt.Errorf("store: record %x points at non-heap page %d", rid, rid.page())
		}
		if rid.slot() >= heapSlotCount(pg) {
			return nil, fmt.Errorf("store: record %x slot out of range", rid)
		}
		off, length := heapSlot(pg, rid.slot())
		if off == freeSlotMark {
			return nil, fmt.Errorf("store: record %x slot is free", rid)
		}
		seg := pg.data[off : off+length]
		flag := seg[0]
		switch flag {
		case segFlagNone:
			out = append(out, seg[1:]...)
			return out, nil
		case segFlagNext:
			next := RecordID(binary.LittleEndian.Uint64(seg[1:9]))
			out = append(out, seg[9:]...)
			rid = next
		default:
			return nil, fmt.Errorf("store: record %x has bad segment flag %d", rid, flag)
		}
	}
}

// delete removes the record chain starting at rid.
func (h *heap) delete(rid RecordID) error {
	for !rid.IsZero() {
		pg, err := h.pg.get(rid.page())
		if err != nil {
			return err
		}
		if rid.slot() >= heapSlotCount(pg) {
			return fmt.Errorf("store: delete record %x: slot out of range", rid)
		}
		off, length := heapSlot(pg, rid.slot())
		if off == freeSlotMark {
			return fmt.Errorf("store: delete record %x: slot already free", rid)
		}
		next := RecordID(0)
		if pg.data[off] == segFlagNext {
			next = RecordID(binary.LittleEndian.Uint64(pg.data[off+1 : off+9]))
		}
		_ = length
		setHeapSlot(pg, rid.slot(), freeSlotMark, 0)
		pg.dirty = true
		h.noteFree(pg)
		rid = next
	}
	return nil
}
