package store

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/nsf"
)

// TestScanCancelledMidwayStopsAndReleasesLatch: cancelling the context
// while a scan is in flight stops it at the next batch boundary with the
// context's error, and the read latch is demonstrably free afterwards — a
// write proceeds immediately.
func TestScanCancelledMidwayStopsAndReleasesLatch(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "cancel"})
	c := clock.New()
	// Three batches' worth, so cancellation after the first batch has
	// work left to skip.
	for i := 0; i < 3*scanBatch; i++ {
		if err := s.Put(makeNote(c, fmt.Sprintf("doc %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	visited := 0
	err := s.ScanAllCtx(ctx, func(n *nsf.Note) bool {
		visited++
		if visited == 1 {
			cancel() // mid-scan: the first batch is being delivered
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scan returned %v, want context.Canceled", err)
	}
	if visited > scanBatch {
		t.Errorf("cancelled scan visited %d notes, want at most one batch (%d)", visited, scanBatch)
	}
	// The latch must be free: a write completes promptly.
	done := make(chan error, 1)
	go func() { done <- s.Put(makeNote(c, "after-cancel")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after cancelled scan: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write blocked after cancelled scan — latch not released")
	}
}

// TestScanCancelledSerialized: the serialized-ablation path holds the
// exclusive latch for the whole scan; the ctx gate must still stop a
// cancelled scan within one batch of callbacks.
func TestScanCancelledSerialized(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "cancel-ser", SerializeReads: true})
	c := clock.New()
	for i := 0; i < 3*scanBatch; i++ {
		if err := s.Put(makeNote(c, fmt.Sprintf("doc %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired before the scan starts
	visited := 0
	if err := s.ScanAllCtx(ctx, func(n *nsf.Note) bool {
		visited++
		return true
	}); err != nil {
		t.Fatalf("serialized cancelled scan: %v", err)
	}
	if visited > scanBatch {
		t.Errorf("cancelled serialized scan visited %d notes, want at most %d", visited, scanBatch)
	}
}
