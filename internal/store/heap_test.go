package store

import (
	"bytes"
	"math/rand"
	"testing"
)

func testHeap(t *testing.T) *heap {
	return newHeap(testPager(t))
}

func TestHeapSmallRecords(t *testing.T) {
	h := testHeap(t)
	var rids []RecordID
	var want [][]byte
	for i := 0; i < 500; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 1+i%300)
		rid, err := h.insert(data)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		rids = append(rids, rid)
		want = append(want, data)
	}
	for i, rid := range rids {
		got, err := h.get(rid)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("get %d: %d bytes, want %d", i, len(got), len(want[i]))
		}
	}
}

func TestHeapLargeRecordChains(t *testing.T) {
	h := testHeap(t)
	rng := rand.New(rand.NewSource(3))
	sizes := []int{maxSegPayload - 1, maxSegPayload, maxSegPayload + 1, 3 * PageSize, 10 * PageSize, 64 * 1024}
	for _, size := range sizes {
		data := make([]byte, size)
		rng.Read(data)
		rid, err := h.insert(data)
		if err != nil {
			t.Fatalf("insert %d bytes: %v", size, err)
		}
		got, err := h.get(rid)
		if err != nil {
			t.Fatalf("get %d bytes: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip of %d bytes corrupted", size)
		}
		if err := h.delete(rid); err != nil {
			t.Fatalf("delete %d bytes: %v", size, err)
		}
		if _, err := h.get(rid); err == nil {
			t.Fatalf("get after delete of %d bytes succeeded", size)
		}
	}
}

func TestHeapReusesSpace(t *testing.T) {
	h := testHeap(t)
	var rids []RecordID
	for i := 0; i < 200; i++ {
		rid, err := h.insert(bytes.Repeat([]byte("a"), 1000))
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		rids = append(rids, rid)
	}
	grown := h.pg.pageCount
	for _, rid := range rids {
		if err := h.delete(rid); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, err := h.insert(bytes.Repeat([]byte("b"), 1000)); err != nil {
			t.Fatalf("reinsert: %v", err)
		}
	}
	// The bounded first-fit probe may miss a few candidates; allow modest
	// growth but fail if deleted space is broadly ignored.
	if h.pg.pageCount > grown+grown/4 {
		t.Errorf("pages grew from %d to %d; deleted space not reused", grown, h.pg.pageCount)
	}
}

func TestHeapCompaction(t *testing.T) {
	h := testHeap(t)
	// Fill one page with alternating records, delete every other one, then
	// insert a record that only fits after compaction.
	var rids []RecordID
	for i := 0; i < 8; i++ {
		rid, err := h.insert(bytes.Repeat([]byte("x"), 450))
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < len(rids); i += 2 {
		if err := h.delete(rids[i]); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	big, err := h.insert(bytes.Repeat([]byte("y"), 1500))
	if err != nil {
		t.Fatalf("insert big: %v", err)
	}
	got, err := h.get(big)
	if err != nil || len(got) != 1500 {
		t.Fatalf("get big: %d bytes, %v", len(got), err)
	}
	// Survivors must be intact after compaction.
	for i := 1; i < len(rids); i += 2 {
		got, err := h.get(rids[i])
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte("x"), 450)) {
			t.Fatalf("survivor %d corrupted: %v", i, err)
		}
	}
}

func TestHeapRebuild(t *testing.T) {
	h := testHeap(t)
	rid, err := h.insert([]byte("hello"))
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	// Simulate reopen: new heap over the same pager.
	h2 := newHeap(h.pg)
	if err := h2.rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	got, err := h2.get(rid)
	if err != nil || string(got) != "hello" {
		t.Fatalf("get after rebuild: %q, %v", got, err)
	}
	if len(h2.avail) == 0 {
		t.Error("rebuild found no pages with free space")
	}
}
