package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nsf"
)

// TestCrashPointFuzz drives random put/update/delete workloads, "crashes"
// at a random point (abandoning the store without flushing), reopens, and
// checks the recovered state against a shadow model. Because the WAL is
// written synchronously to the OS on every operation and a checkpoint only
// truncates it after a successful flush, recovery must reproduce the model
// exactly at any crash point.
func TestCrashPointFuzz(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCrashFuzz(t, seed)
		})
	}
}

type modelDoc struct {
	subject string
	body    int // body payload size, to vary record shapes
}

func runCrashFuzz(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "fuzz.nsf")
	// Small checkpoint interval so crashes land both before and after
	// checkpoints across seeds.
	opts := Options{CheckpointEvery: 20 + rng.Intn(60)}
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[nsf.UNID]modelDoc)
	var unids []nsf.UNID
	var ts nsf.Timestamp

	ops := 100 + rng.Intn(300)
	for i := 0; i < ops; i++ {
		ts++
		switch r := rng.Intn(10); {
		case r < 5 || len(unids) == 0: // create
			n := nsf.NewNote(nsf.ClassDocument)
			n.OID.Seq = 1
			n.OID.SeqTime = ts
			n.Modified = ts
			body := rng.Intn(6000)
			n.SetText("Subject", fmt.Sprintf("doc-%d-%d", seed, i))
			n.SetText("Body", string(make([]byte, body)))
			if err := s.Put(n); err != nil {
				t.Fatal(err)
			}
			model[n.OID.UNID] = modelDoc{subject: n.Text("Subject"), body: body}
			unids = append(unids, n.OID.UNID)
		case r < 8: // update
			u := unids[rng.Intn(len(unids))]
			if _, ok := model[u]; !ok {
				continue
			}
			n, err := s.GetByUNID(u)
			if err != nil {
				t.Fatalf("GetByUNID: %v", err)
			}
			body := rng.Intn(6000)
			n.SetText("Subject", fmt.Sprintf("upd-%d-%d", seed, i))
			n.SetText("Body", string(make([]byte, body)))
			n.Modified = ts
			if err := s.Put(n); err != nil {
				t.Fatal(err)
			}
			model[u] = modelDoc{subject: n.Text("Subject"), body: body}
		default: // delete
			u := unids[rng.Intn(len(unids))]
			if _, ok := model[u]; !ok {
				continue
			}
			if err := s.Delete(u); err != nil {
				t.Fatal(err)
			}
			delete(model, u)
		}
	}
	// Crash: abandon s (no Close, no flush) and recover.
	s2, err := Open(path, opts)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s2.Close()
	if got := s2.Count(); got != len(model) {
		t.Fatalf("recovered count = %d, model has %d", got, len(model))
	}
	for u, want := range model {
		n, err := s2.GetByUNID(u)
		if err != nil {
			t.Fatalf("doc %s lost in recovery: %v", u, err)
		}
		if n.Text("Subject") != want.subject || len(n.Text("Body")) != want.body {
			t.Fatalf("doc %s corrupted: subject %q body %d, want %q %d",
				u, n.Text("Subject"), len(n.Text("Body")), want.subject, want.body)
		}
	}
	for _, u := range unids {
		if _, ok := model[u]; ok {
			continue
		}
		if _, err := s2.GetByUNID(u); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted doc %s resurrected: %v", u, err)
		}
	}
	// The recovered store keeps working and survives a second crash cycle.
	n := nsf.NewNote(nsf.ClassDocument)
	n.OID.Seq = 1
	n.OID.SeqTime = ts + 1
	n.Modified = ts + 1
	n.SetText("Subject", "post-recovery")
	if err := s2.Put(n); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	s3, err := Open(path, opts)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer s3.Close()
	if _, err := s3.GetByUNID(n.OID.UNID); err != nil {
		t.Fatalf("post-recovery doc lost after second crash: %v", err)
	}
	if s3.Count() != len(model)+1 {
		t.Fatalf("second recovery count = %d, want %d", s3.Count(), len(model)+1)
	}
}

// crashedWALStore writes n notes without checkpointing and abandons the
// store, returning the page-file path so tests can damage the WAL before
// recovery.
func crashedWALStore(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "torn.nsf")
	s, err := Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		note := nsf.NewNote(nsf.ClassDocument)
		note.OID.Seq = 1
		note.OID.SeqTime = nsf.Timestamp(i + 1)
		note.Modified = nsf.Timestamp(i + 1)
		note.SetText("Subject", fmt.Sprintf("wal-doc-%d", i))
		if err := s.Put(note); err != nil {
			t.Fatal(err)
		}
	}
	return path // no Close: crash with everything in the WAL
}

// checkRecoveredPrefix opens the damaged store and asserts recovery kept
// exactly the first `keep` notes, stayed usable, and never panicked.
func checkRecoveredPrefix(t *testing.T, path string, keep int) {
	t.Helper()
	s, err := Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery after WAL damage: %v", err)
	}
	defer s.Close()
	if got := s.Count(); got != keep {
		t.Fatalf("recovered %d notes, want the %d before the damage", got, keep)
	}
	if got := s.LastUSN(); got != uint64(keep) {
		t.Fatalf("recovered USN %d, want %d", got, keep)
	}
	subjects := make(map[string]bool)
	s.ScanAll(func(n *nsf.Note) bool {
		subjects[n.Text("Subject")] = true
		return true
	})
	for i := 0; i < keep; i++ {
		if !subjects[fmt.Sprintf("wal-doc-%d", i)] {
			t.Fatalf("doc %d missing after recovery", i)
		}
	}
	for i := keep; i < keep+3; i++ {
		if subjects[fmt.Sprintf("wal-doc-%d", i)] {
			t.Fatalf("doc %d resurrected from damaged WAL region", i)
		}
	}
	// The store keeps working after damage recovery.
	note := nsf.NewNote(nsf.ClassDocument)
	note.OID.Seq = 1
	note.OID.SeqTime = nsf.Timestamp(keep + 1000)
	note.Modified = nsf.Timestamp(keep + 1000)
	note.SetText("Subject", "post-damage")
	if err := s.Put(note); err != nil {
		t.Fatalf("Put after damaged-WAL recovery: %v", err)
	}
	if got := s.LastUSN(); got != uint64(keep)+1 {
		t.Fatalf("USN after post-damage Put = %d, want %d", got, keep+1)
	}
}

// TestCrashTornWALTail truncates the WAL mid-frame (a torn write at power
// loss) and requires recovery to keep the intact prefix.
func TestCrashTornWALTail(t *testing.T) {
	path := crashedWALStore(t, 10)
	walPath := path + ".wal"
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-11], 0o644); err != nil {
		t.Fatal(err)
	}
	checkRecoveredPrefix(t, path, 9)
}

// TestCrashBitFlippedWALCRC flips one payload byte in a middle frame (media
// corruption). Recovery must stop at the last frame before the flip —
// treating everything after as a torn tail — rather than applying records
// past a corrupt one or panicking.
func TestCrashBitFlippedWALCRC(t *testing.T) {
	path := crashedWALStore(t, 10)
	walPath := path + ".wal"
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the 6th frame, flip a byte inside its payload.
	off := int64(0)
	for i := 0; i < 5; i++ {
		off += 8 + int64(binary.LittleEndian.Uint32(raw[off:]))
	}
	raw[off+8+15] ^= 0x04
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	checkRecoveredPrefix(t, path, 5)
}
