package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/nsf"
)

func testPager(t *testing.T) *pager {
	t.Helper()
	dir := t.TempDir()
	p, err := openPager(filepath.Join(dir, "test.nsf"), nsf.NewReplicaID(), "t", 0, 0)
	if err != nil {
		t.Fatalf("openPager: %v", err)
	}
	t.Cleanup(func() { p.close() })
	return p
}

func testTree(t *testing.T) *btree {
	return &btree{pg: testPager(t), slot: rootSlotByID}
}

func TestBtreeBasic(t *testing.T) {
	tr := testTree(t)
	if _, ok, err := tr.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get on empty tree = %v, %v", ok, err)
	}
	if err := tr.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := tr.Put([]byte("beta"), []byte("2")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := tr.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get alpha = %q, %v, %v", v, ok, err)
	}
	// Overwrite.
	if err := tr.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	v, _, _ = tr.Get([]byte("alpha"))
	if string(v) != "one" {
		t.Fatalf("after overwrite Get = %q", v)
	}
	if n, _ := tr.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	found, err := tr.Delete([]byte("alpha"))
	if err != nil || !found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if _, ok, _ := tr.Get([]byte("alpha")); ok {
		t.Fatal("deleted key still present")
	}
	if found, _ := tr.Delete([]byte("alpha")); found {
		t.Fatal("double delete reported found")
	}
}

func TestBtreeKeyLimits(t *testing.T) {
	tr := testTree(t)
	if err := tr.Put(nil, []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := tr.Put(bytes.Repeat([]byte("k"), MaxKeyLen+1), nil); err == nil {
		t.Error("oversized key accepted")
	}
	if err := tr.Put([]byte("k"), bytes.Repeat([]byte("v"), MaxValueLen+1)); err == nil {
		t.Error("oversized value accepted")
	}
	if err := tr.Put(bytes.Repeat([]byte("k"), MaxKeyLen), bytes.Repeat([]byte("v"), MaxValueLen)); err != nil {
		t.Errorf("max-size entry rejected: %v", err)
	}
}

func TestBtreeSplitsAndOrder(t *testing.T) {
	tr := testTree(t)
	const n = 5000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		key := []byte(fmt.Sprintf("key-%06d", i))
		val := []byte(fmt.Sprintf("val-%d", i))
		if err := tr.Put(key, val); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
	}
	var got []string
	err := tr.Ascend(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	if len(got) != n {
		t.Fatalf("Ascend yielded %d keys, want %d", len(got), n)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("Ascend output not sorted")
	}
	// Range scan from the middle.
	var fromMid []string
	err = tr.Ascend([]byte("key-002500"), func(k, _ []byte) bool {
		fromMid = append(fromMid, string(k))
		return len(fromMid) < 10
	})
	if err != nil {
		t.Fatalf("Ascend from mid: %v", err)
	}
	if fromMid[0] != "key-002500" || len(fromMid) != 10 {
		t.Fatalf("range scan start = %v", fromMid)
	}
}

// TestBtreeRandomOpsAgainstModel drives random puts/deletes/gets and checks
// the tree against a map reference model, including full-order scans.
func TestBtreeRandomOpsAgainstModel(t *testing.T) {
	tr := testTree(t)
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(42))
	keyOf := func() string {
		return fmt.Sprintf("k%05d", rng.Intn(3000))
	}
	for op := 0; op < 30000; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // put
			k := keyOf()
			v := fmt.Sprintf("v%d-%d", op, rng.Intn(1000))
			if rng.Intn(5) == 0 {
				v = string(bytes.Repeat([]byte("x"), rng.Intn(MaxValueLen)))
			}
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("op %d Put: %v", op, err)
			}
			model[k] = v
		case 5, 6, 7: // delete
			k := keyOf()
			found, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatalf("op %d Delete: %v", op, err)
			}
			_, want := model[k]
			if found != want {
				t.Fatalf("op %d Delete %s found=%v want=%v", op, k, found, want)
			}
			delete(model, k)
		default: // get
			k := keyOf()
			v, ok, err := tr.Get([]byte(k))
			if err != nil {
				t.Fatalf("op %d Get: %v", op, err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("op %d Get %s = %q,%v want %q,%v", op, k, v, ok, want, wantOK)
			}
		}
	}
	// Final full-scan comparison.
	var keys []string
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Ascend(nil, func(k, v []byte) bool {
		if i >= len(keys) {
			t.Fatalf("scan yielded extra key %q", k)
		}
		if string(k) != keys[i] || string(v) != model[keys[i]] {
			t.Fatalf("scan[%d] = %q,%q want %q,%q", i, k, v, keys[i], model[keys[i]])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatalf("Ascend: %v", err)
	}
	if i != len(keys) {
		t.Fatalf("scan yielded %d keys, want %d", i, len(keys))
	}
}

// TestBtreeDrainToEmpty inserts many keys then deletes them all, verifying
// free-at-empty collapse leaves a usable tree and recycles pages.
func TestBtreeDrainToEmpty(t *testing.T) {
	tr := testTree(t)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	grown := tr.pg.pageCount
	for i := 0; i < n; i++ {
		found, err := tr.Delete([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil || !found {
			t.Fatalf("Delete %d: %v %v", i, found, err)
		}
	}
	if cnt, _ := tr.Len(); cnt != 0 {
		t.Fatalf("tree not empty after drain: %d", cnt)
	}
	// Reinsert: pages should come from the free list, not file growth.
	for i := 0; i < n; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatalf("reinsert Put: %v", err)
		}
	}
	if tr.pg.pageCount > grown+2 {
		t.Errorf("file grew from %d to %d pages; free list not reused", grown, tr.pg.pageCount)
	}
}

// TestBtreeMonotonicChurn mimics the byMod index pattern: monotonically
// increasing keys inserted while old ones are deleted. Empty leaves must be
// reclaimed rather than leaking.
func TestBtreeMonotonicChurn(t *testing.T) {
	tr := testTree(t)
	key := func(i int) []byte {
		var k [8]byte
		binary.BigEndian.PutUint64(k[:], uint64(i))
		return k[:]
	}
	const window = 500
	for i := 0; i < 20000; i++ {
		if err := tr.Put(key(i), nil); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if i >= window {
			if found, err := tr.Delete(key(i - window)); err != nil || !found {
				t.Fatalf("Delete %d: %v %v", i-window, found, err)
			}
		}
	}
	if n, _ := tr.Len(); n != window {
		t.Fatalf("Len = %d, want %d", n, window)
	}
	// The file should stay small: the working set is `window` tiny keys.
	if tr.pg.pageCount > 200 {
		t.Errorf("page count %d after churn; empty leaves are leaking", tr.pg.pageCount)
	}
}

func TestBtreePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.nsf")
	p, err := openPager(path, nsf.NewReplicaID(), "t", 0, 0)
	if err != nil {
		t.Fatalf("openPager: %v", err)
	}
	tr := &btree{pg: p, slot: rootSlotByID}
	for i := 0; i < 1000; i++ {
		if err := tr.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := p.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := p.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	p2, err := openPager(path, nsf.ReplicaID{}, "", 0, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.close()
	tr2 := &btree{pg: p2, slot: rootSlotByID}
	for i := 0; i < 1000; i += 97 {
		v, ok, err := tr2.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprint(i) {
			t.Fatalf("after reopen Get %d = %q,%v,%v", i, v, ok, err)
		}
	}
	if n, _ := tr2.Len(); n != 1000 {
		t.Fatalf("Len after reopen = %d", n)
	}
}
