package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/clock"

	"repro/internal/nsf"
)

// F5: B+tree point and range operations vs a heap scan, across tree sizes.

func benchTree(b *testing.B, n int) *btree {
	b.Helper()
	p, err := openPager(filepath.Join(b.TempDir(), "bench.nsf"), nsf.NewReplicaID(), "b", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { p.close() })
	tr := &btree{pg: p, slot: rootSlotByID}
	var key [8]byte
	var val [8]byte
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(key[:], uint64(i))
		binary.BigEndian.PutUint64(val[:], uint64(i*7))
		if err := tr.Put(key[:], val[:]); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkF5BtreeInsert(b *testing.B) {
	p, err := openPager(filepath.Join(b.TempDir(), "bench.nsf"), nsf.NewReplicaID(), "b", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer p.close()
	tr := &btree{pg: p, slot: rootSlotByID}
	rng := rand.New(rand.NewSource(1))
	var key [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(key[:], rng.Uint64())
		if err := tr.Put(key[:], key[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF5BtreeGet(b *testing.B) {
	for _, n := range []int{10000, 100000, 1000000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			tr := benchTree(b, n)
			rng := rand.New(rand.NewSource(2))
			var key [8]byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.BigEndian.PutUint64(key[:], uint64(rng.Intn(n)))
				if _, ok, err := tr.Get(key[:]); err != nil || !ok {
					b.Fatalf("Get: %v %v", ok, err)
				}
			}
		})
	}
}

func BenchmarkF5BtreeRangeScan100(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			tr := benchTree(b, n)
			rng := rand.New(rand.NewSource(3))
			var from [8]byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.BigEndian.PutUint64(from[:], uint64(rng.Intn(n-200)))
				seen := 0
				err := tr.Ascend(from[:], func(_, _ []byte) bool {
					seen++
					return seen < 100
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF5HeapScanBaseline measures finding one key by scanning the whole
// tree, the no-index baseline the B+tree is compared against.
func BenchmarkF5HeapScanBaseline(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			tr := benchTree(b, n)
			rng := rand.New(rand.NewSource(4))
			var want [8]byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				binary.BigEndian.PutUint64(want[:], uint64(rng.Intn(n)))
				found := false
				err := tr.Ascend(nil, func(k, _ []byte) bool {
					if string(k) == string(want[:]) {
						found = true
						return false
					}
					return true
				})
				if err != nil || !found {
					b.Fatalf("scan: %v %v", found, err)
				}
			}
		})
	}
}

func BenchmarkStorePut(b *testing.B) {
	s, _ := openTestStoreB(b)
	g := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.OID.Seq = 1
		n.OID.SeqTime = nsf.Timestamp(i + 1)
		n.Modified = nsf.Timestamp(i + 1)
		n.SetText("Subject", fmt.Sprintf("doc %d", g))
		g++
		if err := s.Put(n); err != nil {
			b.Fatal(err)
		}
	}
}

func openTestStoreB(b *testing.B) (*Store, string) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "db.nsf")
	s, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s, path
}

// --- W4: point-read cost by latching discipline and cache state ---

// benchReadStore seeds a store for read benchmarks.
func benchReadStore(b *testing.B, opts Options, docs int) (*Store, []nsf.UNID) {
	b.Helper()
	s, err := Open(filepath.Join(b.TempDir(), "bench.nsf"), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	c := clock.New()
	unids := make([]nsf.UNID, docs)
	for i := 0; i < docs; i++ {
		n := makeNote(c, fmt.Sprintf("doc-%d", i))
		n.SetText("Body", fmt.Sprintf("body of document %d", i))
		if err := s.Put(n); err != nil {
			b.Fatal(err)
		}
		unids[i] = n.OID.UNID
	}
	return s, unids
}

// BenchmarkW4GetByUNID compares the seed discipline (exclusive latch, no
// cache) against the RW discipline with the decoded-note cache.
func BenchmarkW4GetByUNID(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"serialized", Options{SerializeReads: true}},
		{"rw+cache", Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, unids := benchReadStore(b, mode.opts, 1000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.GetByUNID(unids[i%len(unids)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
