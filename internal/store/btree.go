package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// B+tree node layout (both kinds):
//
//	off 0   u8   page type (pageLeaf or pageBranch)
//	off 1   u8   reserved
//	off 2   u16  number of cells
//	off 4   u32  leaf: next leaf      branch: unused
//	off 8   u32  leaf: previous leaf  branch: rightmost child
//	off 12  u16  cellStart: lowest byte offset used by cell bodies
//	off 14  u16  × nkeys: slot array of cell body offsets, sorted by key
//
// Cell bodies grow downward from the end of the page:
//
//	leaf cell:   klen u16 | vlen u16 | key | value
//	branch cell: klen u16 | child u32 | key
//
// In a branch, cell i's child covers keys <= cell i's key; the rightmost
// child covers keys greater than every cell key.
const (
	nodeHdrSize = 14
	slotSize    = 2

	// MaxKeyLen and MaxValueLen bound entry sizes so that a byte-balanced
	// split always leaves room for one more maximum-size cell: with cell
	// overhead (4) plus a slot (2), the largest cell is 1012 bytes, which is
	// under a quarter of the usable page (4082 bytes). After a split each
	// half holds at most half the live bytes plus one straddling cell
	// (2041+1012), so inserting another maximal cell (1012) still fits.
	MaxKeyLen   = 256
	MaxValueLen = 750
)

type btree struct {
	pg *pager
	// slot selects which header root field this tree uses.
	slot int
}

const (
	rootSlotByID = iota
	rootSlotByUNID
	rootSlotByMod
)

func (t *btree) root() PageID {
	switch t.slot {
	case rootSlotByID:
		return t.pg.rootByID
	case rootSlotByUNID:
		return t.pg.rootByUNID
	default:
		return t.pg.rootByMod
	}
}

func (t *btree) setRoot(id PageID) {
	switch t.slot {
	case rootSlotByID:
		t.pg.rootByID = id
	case rootSlotByUNID:
		t.pg.rootByUNID = id
	default:
		t.pg.rootByMod = id
	}
	t.pg.hdrDirty = true
}

// --- node accessors ---

func nodeType(pg *page) byte { return pg.data[0] }
func nodeCount(pg *page) int { return int(binary.LittleEndian.Uint16(pg.data[2:])) }
func setNodeCount(pg *page, n int) {
	binary.LittleEndian.PutUint16(pg.data[2:], uint16(n))
}
func leafNext(pg *page) PageID { return PageID(binary.LittleEndian.Uint32(pg.data[4:])) }
func setLeafNext(pg *page, id PageID) {
	binary.LittleEndian.PutUint32(pg.data[4:], uint32(id))
}
func leafPrev(pg *page) PageID { return PageID(binary.LittleEndian.Uint32(pg.data[8:])) }
func setLeafPrev(pg *page, id PageID) {
	binary.LittleEndian.PutUint32(pg.data[8:], uint32(id))
}
func branchRight(pg *page) PageID { return PageID(binary.LittleEndian.Uint32(pg.data[8:])) }
func setBranchRight(pg *page, id PageID) {
	binary.LittleEndian.PutUint32(pg.data[8:], uint32(id))
}
func cellStart(pg *page) int { return int(binary.LittleEndian.Uint16(pg.data[12:])) }
func setCellStart(pg *page, off int) {
	binary.LittleEndian.PutUint16(pg.data[12:], uint16(off))
}

func slotOffset(pg *page, i int) int {
	return int(binary.LittleEndian.Uint16(pg.data[nodeHdrSize+i*slotSize:]))
}
func setSlotOffset(pg *page, i, off int) {
	binary.LittleEndian.PutUint16(pg.data[nodeHdrSize+i*slotSize:], uint16(off))
}

func initNode(pg *page, typ byte) {
	pg.data = [PageSize]byte{}
	pg.data[0] = typ
	setCellStart(pg, PageSize)
	pg.dirty = true
}

// leafCell returns the key and value of leaf cell i.
func leafCell(pg *page, i int) (key, val []byte) {
	off := slotOffset(pg, i)
	klen := int(binary.LittleEndian.Uint16(pg.data[off:]))
	vlen := int(binary.LittleEndian.Uint16(pg.data[off+2:]))
	key = pg.data[off+4 : off+4+klen]
	val = pg.data[off+4+klen : off+4+klen+vlen]
	return key, val
}

// branchCell returns the key and child of branch cell i.
func branchCell(pg *page, i int) (key []byte, child PageID) {
	off := slotOffset(pg, i)
	klen := int(binary.LittleEndian.Uint16(pg.data[off:]))
	child = PageID(binary.LittleEndian.Uint32(pg.data[off+2:]))
	key = pg.data[off+6 : off+6+klen]
	return key, child
}

func leafCellSize(klen, vlen int) int { return 4 + klen + vlen }
func branchCellSize(klen int) int     { return 6 + klen }

// freeSpace returns the bytes available between the slot array and cells.
func freeSpace(pg *page) int {
	return cellStart(pg) - (nodeHdrSize + nodeCount(pg)*slotSize)
}

// nodeKey returns cell i's key regardless of node type.
func nodeKey(pg *page, i int) []byte {
	if nodeType(pg) == pageLeaf {
		k, _ := leafCell(pg, i)
		return k
	}
	k, _ := branchCell(pg, i)
	return k
}

// search finds the first cell with key >= target; found reports an exact hit.
func search(pg *page, target []byte) (idx int, found bool) {
	lo, hi := 0, nodeCount(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(nodeKey(pg, mid), target) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true
		default:
			hi = mid
		}
	}
	return lo, false
}

// insertLeafCell places key/val at slot idx, assuming space is available.
func insertLeafCell(pg *page, idx int, key, val []byte) {
	size := leafCellSize(len(key), len(val))
	off := cellStart(pg) - size
	binary.LittleEndian.PutUint16(pg.data[off:], uint16(len(key)))
	binary.LittleEndian.PutUint16(pg.data[off+2:], uint16(len(val)))
	copy(pg.data[off+4:], key)
	copy(pg.data[off+4+len(key):], val)
	setCellStart(pg, off)
	n := nodeCount(pg)
	copy(pg.data[nodeHdrSize+(idx+1)*slotSize:nodeHdrSize+(n+1)*slotSize],
		pg.data[nodeHdrSize+idx*slotSize:nodeHdrSize+n*slotSize])
	setSlotOffset(pg, idx, off)
	setNodeCount(pg, n+1)
	pg.dirty = true
}

// insertBranchCell places key/child at slot idx, assuming space is available.
func insertBranchCell(pg *page, idx int, key []byte, child PageID) {
	size := branchCellSize(len(key))
	off := cellStart(pg) - size
	binary.LittleEndian.PutUint16(pg.data[off:], uint16(len(key)))
	binary.LittleEndian.PutUint32(pg.data[off+2:], uint32(child))
	copy(pg.data[off+6:], key)
	setCellStart(pg, off)
	n := nodeCount(pg)
	copy(pg.data[nodeHdrSize+(idx+1)*slotSize:nodeHdrSize+(n+1)*slotSize],
		pg.data[nodeHdrSize+idx*slotSize:nodeHdrSize+n*slotSize])
	setSlotOffset(pg, idx, off)
	setNodeCount(pg, n+1)
	pg.dirty = true
}

// removeCell deletes slot idx. Cell bodies are not reclaimed immediately;
// compact handles that when the node needs space.
func removeCell(pg *page, idx int) {
	n := nodeCount(pg)
	copy(pg.data[nodeHdrSize+idx*slotSize:nodeHdrSize+(n-1)*slotSize],
		pg.data[nodeHdrSize+(idx+1)*slotSize:nodeHdrSize+n*slotSize])
	setNodeCount(pg, n-1)
	pg.dirty = true
}

// compact rewrites live cells contiguously at the end of the page,
// reclaiming the space of removed or superseded cells.
func compact(pg *page) {
	n := nodeCount(pg)
	typ := nodeType(pg)
	var scratch [PageSize]byte
	off := PageSize
	offsets := make([]int, n)
	for i := 0; i < n; i++ {
		src := slotOffset(pg, i)
		var size int
		klen := int(binary.LittleEndian.Uint16(pg.data[src:]))
		if typ == pageLeaf {
			vlen := int(binary.LittleEndian.Uint16(pg.data[src+2:]))
			size = leafCellSize(klen, vlen)
		} else {
			size = branchCellSize(klen)
		}
		off -= size
		copy(scratch[off:], pg.data[src:src+size])
		offsets[i] = off
	}
	copy(pg.data[off:], scratch[off:])
	setCellStart(pg, off)
	for i, o := range offsets {
		setSlotOffset(pg, i, o)
	}
	pg.dirty = true
}

// liveBytes returns the byte total of live cells plus slots.
func liveBytes(pg *page) int {
	n := nodeCount(pg)
	typ := nodeType(pg)
	total := n * slotSize
	for i := 0; i < n; i++ {
		src := slotOffset(pg, i)
		klen := int(binary.LittleEndian.Uint16(pg.data[src:]))
		if typ == pageLeaf {
			vlen := int(binary.LittleEndian.Uint16(pg.data[src+2:]))
			total += leafCellSize(klen, vlen)
		} else {
			total += branchCellSize(klen)
		}
	}
	return total
}

// Get returns the value stored under key, or (nil, false).
func (t *btree) Get(key []byte) ([]byte, bool, error) {
	id := t.root()
	if id == nilPage {
		return nil, false, nil
	}
	for {
		pg, err := t.pg.get(id)
		if err != nil {
			return nil, false, err
		}
		idx, found := search(pg, key)
		if nodeType(pg) == pageLeaf {
			if !found {
				return nil, false, nil
			}
			_, v := leafCell(pg, idx)
			out := make([]byte, len(v))
			copy(out, v)
			return out, true, nil
		}
		id = t.childAt(pg, idx, found)
	}
}

// childAt maps a search result position in a branch to the child to descend.
func (t *btree) childAt(pg *page, idx int, found bool) PageID {
	// Cell i covers keys <= key[i]; an exact hit therefore descends cell idx.
	if found {
		_, c := branchCell(pg, idx)
		return c
	}
	if idx < nodeCount(pg) {
		_, c := branchCell(pg, idx)
		return c
	}
	return branchRight(pg)
}

// pathEntry records a branch visited during descent and the position taken.
type pathEntry struct {
	pg  *page
	idx int // slot index descended, nodeCount(pg) means rightmost child
}

// descend walks from the root to the leaf responsible for key, recording the
// branch path.
func (t *btree) descend(key []byte) (*page, []pathEntry, error) {
	id := t.root()
	var path []pathEntry
	for {
		pg, err := t.pg.get(id)
		if err != nil {
			return nil, nil, err
		}
		if nodeType(pg) == pageLeaf {
			return pg, path, nil
		}
		idx, found := search(pg, key)
		pos := idx
		if !found && idx == nodeCount(pg) {
			pos = nodeCount(pg)
		}
		path = append(path, pathEntry{pg: pg, idx: pos})
		id = t.childAt(pg, idx, found)
	}
}

// Put inserts or replaces key's value.
func (t *btree) Put(key, val []byte) error {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return fmt.Errorf("store: btree key length %d out of range [1,%d]", len(key), MaxKeyLen)
	}
	if len(val) > MaxValueLen {
		return fmt.Errorf("store: btree value length %d exceeds %d", len(val), MaxValueLen)
	}
	if t.root() == nilPage {
		pg, err := t.pg.alloc()
		if err != nil {
			return err
		}
		initNode(pg, pageLeaf)
		t.setRoot(pg.id)
	}
	leaf, path, err := t.descend(key)
	if err != nil {
		return err
	}
	idx, found := search(leaf, key)
	if found {
		removeCell(leaf, idx)
	}
	need := leafCellSize(len(key), len(val)) + slotSize
	if freeSpace(leaf) < need {
		if PageSize-nodeHdrSize-liveBytes(leaf) >= need {
			compact(leaf)
		} else {
			return t.splitAndInsert(leaf, path, key, val)
		}
	}
	insertLeafCell(leaf, idx, key, val)
	return nil
}

// splitAndInsert splits leaf into two and inserts key/val into the proper
// half, then threads the new separator up the path, splitting branches as
// needed.
func (t *btree) splitAndInsert(leaf *page, path []pathEntry, key, val []byte) error {
	right, err := t.pg.alloc()
	if err != nil {
		return err
	}
	initNode(right, pageLeaf)
	compact(leaf)
	n := nodeCount(leaf)
	// Byte-balanced split point: the first index where the cumulative cell
	// bytes reach half the total, clamped so both sides are non-empty.
	total := 0
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		k, v := leafCell(leaf, i)
		sizes[i] = leafCellSize(len(k), len(v)) + slotSize
		total += sizes[i]
	}
	half := n - 1
	cum := 0
	for i := 0; i < n-1; i++ {
		cum += sizes[i]
		if cum >= total/2 {
			half = i + 1
			break
		}
	}
	// Move cells [half, n) to the right node.
	for i := half; i < n; i++ {
		k, v := leafCell(leaf, i)
		insertLeafCell(right, i-half, k, v)
	}
	setNodeCount(leaf, half)
	compact(leaf)
	// Thread the leaf chain: leaf <-> right <-> old next.
	oldNext := leafNext(leaf)
	setLeafNext(right, oldNext)
	setLeafPrev(right, leaf.id)
	setLeafNext(leaf, right.id)
	if oldNext != nilPage {
		np, err := t.pg.get(oldNext)
		if err != nil {
			return err
		}
		setLeafPrev(np, right.id)
		np.dirty = true
	}
	leaf.dirty = true
	right.dirty = true
	// Insert the pending entry into the correct half.
	sep := append([]byte(nil), nodeKey(leaf, nodeCount(leaf)-1)...)
	target := leaf
	if bytes.Compare(key, sep) > 0 {
		target = right
	}
	idx, found := search(target, key)
	if found {
		removeCell(target, idx)
	}
	if freeSpace(target) < leafCellSize(len(key), len(val))+slotSize {
		compact(target)
	}
	insertLeafCell(target, idx, key, val)
	return t.insertSeparator(path, sep, leaf.id, right.id)
}

// insertSeparator records that left was split, with sep as the greatest key
// in left and right as the new sibling.
func (t *btree) insertSeparator(path []pathEntry, sep []byte, left, right PageID) error {
	if len(path) == 0 {
		// Split the root: make a new branch root.
		rootPg, err := t.pg.alloc()
		if err != nil {
			return err
		}
		initNode(rootPg, pageBranch)
		insertBranchCell(rootPg, 0, sep, left)
		setBranchRight(rootPg, right)
		t.setRoot(rootPg.id)
		return nil
	}
	parent := path[len(path)-1]
	pg := parent.pg
	// The child pointer at parent.idx pointed at left; it must now point at
	// right (which holds the larger keys), and a new cell (sep -> left) is
	// inserted before it.
	if parent.idx == nodeCount(pg) {
		setBranchRight(pg, right)
	} else {
		off := slotOffset(pg, parent.idx)
		binary.LittleEndian.PutUint32(pg.data[off+2:], uint32(right))
	}
	pg.dirty = true
	need := branchCellSize(len(sep)) + slotSize
	if freeSpace(pg) < need {
		if PageSize-nodeHdrSize-liveBytes(pg) >= need {
			compact(pg)
		} else {
			return t.splitBranchAndInsert(pg, path[:len(path)-1], parent.idx, sep, left)
		}
	}
	insertBranchCell(pg, parent.idx, sep, left)
	return nil
}

// splitBranchAndInsert splits branch pg and inserts (sep -> left) at idx.
func (t *btree) splitBranchAndInsert(pg *page, path []pathEntry, idx int, sep []byte, left PageID) error {
	right, err := t.pg.alloc()
	if err != nil {
		return err
	}
	initNode(right, pageBranch)
	compact(pg)
	// Insert first into an overflow-free representation: collect all cells.
	type cell struct {
		key   []byte
		child PageID
	}
	n := nodeCount(pg)
	cells := make([]cell, 0, n+1)
	for i := 0; i < n; i++ {
		k, c := branchCell(pg, i)
		cells = append(cells, cell{append([]byte(nil), k...), c})
	}
	cells = append(cells[:idx], append([]cell{{append([]byte(nil), sep...), left}}, cells[idx:]...)...)
	rightmost := branchRight(pg)
	// Split: left half keeps cells[0:half], the separator pushed up is
	// cells[half].key, right half gets cells[half+1:]. Choose half so the
	// split is byte-balanced (see MaxKeyLen for the fit argument).
	total := 0
	sizes := make([]int, len(cells))
	for i, c := range cells {
		sizes[i] = branchCellSize(len(c.key)) + slotSize
		total += sizes[i]
	}
	half := len(cells) - 1
	cum := 0
	for i := 0; i < len(cells)-1; i++ {
		cum += sizes[i]
		if cum >= total/2 {
			half = i
			break
		}
	}
	if half == 0 && len(cells) > 2 {
		half = 1
	}
	pushKey := cells[half].key
	initNode(pg, pageBranch)
	for i := 0; i < half; i++ {
		insertBranchCell(pg, i, cells[i].key, cells[i].child)
	}
	setBranchRight(pg, cells[half].child)
	for i := half + 1; i < len(cells); i++ {
		insertBranchCell(right, i-half-1, cells[i].key, cells[i].child)
	}
	setBranchRight(right, rightmost)
	pg.dirty = true
	right.dirty = true
	return t.insertSeparator(path, pushKey, pg.id, right.id)
}

// Delete removes key if present and reports whether it was found. Nodes that
// become empty are unlinked and freed ("free at empty").
func (t *btree) Delete(key []byte) (bool, error) {
	if t.root() == nilPage {
		return false, nil
	}
	leaf, path, err := t.descend(key)
	if err != nil {
		return false, err
	}
	idx, found := search(leaf, key)
	if !found {
		return false, nil
	}
	removeCell(leaf, idx)
	if nodeCount(leaf) == 0 {
		if err := t.freeEmptyLeaf(leaf, path); err != nil {
			return true, err
		}
	}
	return true, nil
}

// freeEmptyLeaf unlinks an empty leaf from the chain and removes its pointer
// from the parent, collapsing empty branches recursively.
func (t *btree) freeEmptyLeaf(leaf *page, path []pathEntry) error {
	if len(path) == 0 {
		// Empty root leaf: keep it; the tree is simply empty.
		return nil
	}
	prev, next := leafPrev(leaf), leafNext(leaf)
	if prev != nilPage {
		p, err := t.pg.get(prev)
		if err != nil {
			return err
		}
		setLeafNext(p, next)
		p.dirty = true
	}
	if next != nilPage {
		n, err := t.pg.get(next)
		if err != nil {
			return err
		}
		setLeafPrev(n, prev)
		n.dirty = true
	}
	if err := t.pg.free(leaf.id); err != nil {
		return err
	}
	return t.removeChild(path)
}

// removeChild deletes the child pointer recorded at the tail of path.
func (t *btree) removeChild(path []pathEntry) error {
	parent := path[len(path)-1]
	pg := parent.pg
	n := nodeCount(pg)
	if parent.idx == n {
		// Removing the rightmost child: promote the last cell's child.
		if n == 0 {
			// Branch with a single (rightmost) child that vanished: the
			// branch itself is now empty; collapse it upward.
			if err := t.pg.free(pg.id); err != nil {
				return err
			}
			if len(path) == 1 {
				t.setRoot(nilPage)
				return nil
			}
			return t.removeChild(path[:len(path)-1])
		}
		_, c := branchCell(pg, n-1)
		setBranchRight(pg, c)
		removeCell(pg, n-1)
	} else {
		removeCell(pg, parent.idx)
	}
	if nodeCount(pg) == 0 {
		// One child (rightmost) remains: splice it into the grandparent.
		only := branchRight(pg)
		if err := t.pg.free(pg.id); err != nil {
			return err
		}
		if len(path) == 1 {
			t.setRoot(only)
			return nil
		}
		gp := path[len(path)-2]
		if gp.idx == nodeCount(gp.pg) {
			setBranchRight(gp.pg, only)
		} else {
			off := slotOffset(gp.pg, gp.idx)
			binary.LittleEndian.PutUint32(gp.pg.data[off+2:], uint32(only))
		}
		gp.pg.dirty = true
	}
	return nil
}

// Ascend calls fn for each entry with key >= from, in ascending key order,
// until fn returns false or the tree is exhausted. The key and value slices
// passed to fn alias page memory and must not be retained or modified.
func (t *btree) Ascend(from []byte, fn func(key, val []byte) bool) error {
	id := t.root()
	if id == nilPage {
		return nil
	}
	// Descend to the leaf containing the first key >= from.
	for {
		pg, err := t.pg.get(id)
		if err != nil {
			return err
		}
		if nodeType(pg) == pageLeaf {
			break
		}
		idx, found := search(pg, from)
		id = t.childAt(pg, idx, found)
	}
	for id != nilPage {
		pg, err := t.pg.get(id)
		if err != nil {
			return err
		}
		idx, _ := search(pg, from)
		for ; idx < nodeCount(pg); idx++ {
			k, v := leafCell(pg, idx)
			if !fn(k, v) {
				return nil
			}
		}
		id = leafNext(pg)
		from = nil
		if id != nilPage {
			// After the first leaf, start each leaf from its first cell.
			from = []byte{}
		}
	}
	return nil
}

// Len returns the number of entries, by full scan (used in tests and stats).
func (t *btree) Len() (int, error) {
	n := 0
	err := t.Ascend(nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}
