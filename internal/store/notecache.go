package store

import (
	"sync"

	"repro/internal/nsf"
)

// defaultNoteCacheCap bounds the decoded-note cache when Options leave it
// unset. At a few hundred bytes per typical summary note this is a couple
// of MB — small next to the page pool, large enough to keep a working set
// of hot documents decoded.
const defaultNoteCacheCap = 4096

// noteCache caches decoded notes keyed by their heap RecordID, with a
// UNID → RecordID hint so the hottest read (GetByUNID) can skip both
// B+tree descents and the DecodeNote on a hit.
//
// Correctness contract:
//   - A RecordID names immutable bytes for as long as the record is live:
//     updates delete the old record and insert a new one. Every path that
//     frees a record (applyPutEncoded replacing a prior version,
//     applyDelete) must call invalidate with the freed RecordID before the
//     heap slot can be reused; Compact and restore-style file swaps must
//     call clear because they recycle the whole RecordID space.
//   - The cache owns its notes. Lookups return shared clones
//     (nsf.Note.CloneShared): the Items slice is the caller's to mutate,
//     the Value backing arrays are shared and must be treated as immutable
//     — the repo-wide contract is that stored values are replaced via the
//     Set* mutators, never written in place. peek returns the cached
//     instance itself and is reserved for the write path, which only
//     inspects it under the exclusive store latch and must not retain or
//     mutate it.
//   - All methods are nil-receiver safe; a nil *noteCache is a disabled
//     cache.
type noteCache struct {
	mu     sync.Mutex
	cap    int
	notes  map[RecordID]*nsf.Note
	byUNID map[nsf.UNID]RecordID
	hits   uint64
	misses uint64
}

// newNoteCache sizes a cache from the Options knob: 0 means the default
// capacity, negative disables caching entirely (returns nil).
func newNoteCache(capEntries int) *noteCache {
	if capEntries < 0 {
		return nil
	}
	if capEntries == 0 {
		capEntries = defaultNoteCacheCap
	}
	return &noteCache{
		cap:    capEntries,
		notes:  make(map[RecordID]*nsf.Note),
		byUNID: make(map[nsf.UNID]RecordID),
	}
}

// get returns a copy of the cached note at rid.
func (c *noteCache) get(rid RecordID) (*nsf.Note, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.notes[rid]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	return n.CloneShared(), true
}

// getByUNID returns a copy of the cached note for unid, using the hint map
// to skip the index descent entirely.
func (c *noteCache) getByUNID(unid nsf.UNID) (*nsf.Note, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rid, ok := c.byUNID[unid]
	if !ok {
		c.misses++
		return nil, false
	}
	n, ok := c.notes[rid]
	if !ok {
		// byUNID entries are only written alongside notes entries and both
		// are removed together, so this cannot happen; heal defensively.
		delete(c.byUNID, unid)
		c.misses++
		return nil, false
	}
	c.hits++
	return n.CloneShared(), true
}

// peek returns the cached instance itself (no copy) or nil. Write-path
// only: the caller holds the exclusive store latch, reads a field or two,
// and does not retain the pointer.
func (c *noteCache) peek(rid RecordID) *nsf.Note {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.notes[rid]
}

// add stores n (the cache takes ownership) and returns a copy for the
// caller to hand out. With the cache disabled it returns n unchanged.
func (c *noteCache) add(rid RecordID, n *nsf.Note) *nsf.Note {
	if c == nil {
		return n
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for evictRID, evictN := range c.notes {
		if len(c.notes) < c.cap {
			break
		}
		delete(c.notes, evictRID)
		if c.byUNID[evictN.OID.UNID] == evictRID {
			delete(c.byUNID, evictN.OID.UNID)
		}
	}
	c.notes[rid] = n
	c.byUNID[n.OID.UNID] = rid
	return n.CloneShared()
}

// invalidate drops the entry for a freed RecordID (no-op when absent).
func (c *noteCache) invalidate(rid RecordID) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n, ok := c.notes[rid]; ok {
		delete(c.notes, rid)
		if c.byUNID[n.OID.UNID] == rid {
			delete(c.byUNID, n.OID.UNID)
		}
	}
}

// clear empties the cache — required whenever the RecordID space is
// recycled wholesale (Compact's file swap, restore).
func (c *noteCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.notes = make(map[RecordID]*nsf.Note)
	c.byUNID = make(map[nsf.UNID]RecordID)
}

// stats reports entry count and hit/miss counters.
func (c *noteCache) stats() (entries int, hits, misses uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.notes), c.hits, c.misses
}
