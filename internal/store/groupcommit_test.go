package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/nsf"
)

func gcNote(ts nsf.Timestamp, subject string) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.OID.Seq = 1
	n.OID.SeqTime = ts
	n.Modified = ts
	n.SetText("Subject", subject)
	return n
}

// TestGroupCommitBasicSemantics checks that turning group commit on changes
// nothing observable: puts, gets, deletes, and recovery behave exactly as
// without it.
func TestGroupCommitBasicSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.nsf")
	s, err := Open(path, Options{GroupCommitWindow: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var unids []nsf.UNID
	for i := 0; i < 20; i++ {
		n := gcNote(nsf.Timestamp(i+1), fmt.Sprintf("doc-%d", i))
		if err := s.Put(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	if err := s.Delete(unids[3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(nsf.NewUNID()); err == nil {
		t.Fatal("Delete of a missing UNID should fail")
	}
	if got := s.LastUSN(); got != 21 {
		t.Fatalf("LastUSN = %d, want 21 (20 puts + 1 delete)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count(); got != 19 {
		t.Fatalf("recovered %d notes, want 19", got)
	}
	for i, u := range unids {
		_, err := s2.GetByUNID(u)
		if i == 3 && err == nil {
			t.Fatal("deleted note resurrected")
		}
		if i != 3 && err != nil {
			t.Fatalf("doc %d lost: %v", i, err)
		}
	}
}

// TestGroupCommitCrashKeepsAckedPuts runs concurrent committers against a
// group-commit store, crashes (abandons the store without closing), and
// requires every acknowledged put to survive recovery: acked ⊆ recovered ⊆
// attempted, with the store verifiably intact.
func TestGroupCommitCrashKeepsAckedPuts(t *testing.T) {
	for _, syncWAL := range []bool{false, true} {
		t.Run(fmt.Sprintf("syncWAL=%v", syncWAL), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "crash.nsf")
			s, err := Open(path, Options{
				GroupCommitWindow: 100 * time.Microsecond,
				SyncWAL:           syncWAL,
				CheckpointEvery:   50,
			})
			if err != nil {
				t.Fatal(err)
			}
			const writers, puts = 8, 20
			attempted := make([][]nsf.UNID, writers)
			acked := make([][]nsf.UNID, writers)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < puts; i++ {
						n := gcNote(nsf.Timestamp(w*1000+i+1), fmt.Sprintf("w%d-%d", w, i))
						attempted[w] = append(attempted[w], n.OID.UNID)
						if err := s.Put(n); err != nil {
							t.Errorf("writer %d put %d: %v", w, i, err)
							return
						}
						acked[w] = append(acked[w], n.OID.UNID)
					}
				}()
			}
			wg.Wait()
			// Crash: abandon without Close. Everything acked went through a
			// batch write (+fsync per SyncWAL), so recovery must see it.
			s2, err := Open(path, Options{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer s2.Close()
			recovered := make(map[nsf.UNID]bool)
			s2.ScanAll(func(n *nsf.Note) bool {
				recovered[n.OID.UNID] = true
				return true
			})
			allAttempted := make(map[nsf.UNID]bool)
			for w := 0; w < writers; w++ {
				for _, u := range attempted[w] {
					allAttempted[u] = true
				}
				for i, u := range acked[w] {
					if !recovered[u] {
						t.Fatalf("acked put w%d-%d lost after crash", w, i)
					}
				}
			}
			for u := range recovered {
				if !allAttempted[u] {
					t.Fatalf("recovered a note never attempted: %s", u)
				}
			}
			if problems := s2.Verify(); len(problems) != 0 {
				t.Fatalf("recovered store fails verification: %v", problems)
			}
		})
	}
}

// gcTornBatchStore builds a store whose WAL ends in one 4-record batch
// frame after 3 acked single-record frames, then abandons it (no Close).
// It returns the database path and the [pre, post) byte range of the batch
// frame in the WAL.
func gcTornBatchStore(t *testing.T) (path string, pre, post int64) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "torn.nsf")
	s, err := Open(path, Options{GroupCommitWindow: time.Millisecond, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(gcNote(nsf.Timestamp(i+1), fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pre = s.wal.size.Load()
	// Four PutAsyncs with no Wait in between accumulate into one forming
	// batch; waiting on the last ticket flushes all four as one frame.
	var last Commit
	for i := 0; i < 4; i++ {
		c, err := s.PutAsync(gcNote(nsf.Timestamp(10+i), fmt.Sprintf("batch-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		last = c
	}
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	post = s.wal.size.Load()
	flushes, records := s.gc.stats()
	if records != 7 || flushes != 4 {
		t.Fatalf("stats = %d flushes / %d records, want 4/7 (3 singles + one 4-batch)", flushes, records)
	}
	// One frame: its length field covers the rest of the range.
	raw, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(binary.LittleEndian.Uint32(raw[pre:])); got != post-pre-8 {
		t.Fatalf("batch frame length %d, want %d — not a single frame", got, post-pre-8)
	}
	return path, pre, post // no Close: crash with the batch in the WAL tail
}

// checkTornBatchRecovery opens the damaged store and asserts all-or-nothing
// batch semantics: the 3 pre-batch docs survive, none of the 4 batch docs
// do, and the store stays usable.
func checkTornBatchRecovery(t *testing.T, path string) {
	t.Helper()
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("recovery after batch damage: %v", err)
	}
	defer s.Close()
	if got := s.Count(); got != 3 {
		t.Fatalf("recovered %d notes, want the 3 before the batch", got)
	}
	if got := s.LastUSN(); got != 3 {
		t.Fatalf("recovered USN %d, want 3", got)
	}
	subjects := make(map[string]bool)
	s.ScanAll(func(n *nsf.Note) bool {
		subjects[n.Text("Subject")] = true
		return true
	})
	for i := 0; i < 3; i++ {
		if !subjects[fmt.Sprintf("pre-%d", i)] {
			t.Fatalf("pre-batch doc %d missing", i)
		}
	}
	for i := 0; i < 4; i++ {
		if subjects[fmt.Sprintf("batch-%d", i)] {
			t.Fatalf("batch doc %d survived partial-batch damage — a prefix was replayed", i)
		}
	}
	if err := s.Put(gcNote(100, "post-damage")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
}

// TestGroupCommitTornBatchAllOrNothing damages the WAL inside a batch frame
// (torn tail and bit flip) and requires recovery to drop the whole batch —
// never replay a prefix of it — while keeping everything before it.
func TestGroupCommitTornBatchAllOrNothing(t *testing.T) {
	t.Run("torn-tail", func(t *testing.T) {
		path, pre, post := gcTornBatchStore(t)
		walPath := path + ".wal"
		raw, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Cut mid-frame: most of the batch made it to disk, but not all.
		if err := os.WriteFile(walPath, raw[:post-5], 0o644); err != nil {
			t.Fatal(err)
		}
		_ = pre
		checkTornBatchRecovery(t, path)
	})
	t.Run("bit-flip", func(t *testing.T) {
		path, pre, _ := gcTornBatchStore(t)
		walPath := path + ".wal"
		raw, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte inside the batch payload (after the 8-byte frame
		// header and the kind/usn prefix): the frame CRC must reject the
		// whole batch.
		raw[pre+8+9+4] ^= 0x10
		if err := os.WriteFile(walPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		checkTornBatchRecovery(t, path)
	})
}

// TestWALBatchReplayTruncation exercises batch framing at the WAL layer:
// two multi-record batches, with cuts placed inside each. Replay must keep
// whole batches only.
func TestWALBatchReplayTruncation(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	w, err := openWAL(full)
	if err != nil {
		t.Fatal(err)
	}
	writeBatch := func(usns ...uint64) {
		var sub []byte
		for _, u := range usns {
			payload := []byte(fmt.Sprintf("payload-%d", u))
			sub = appendSubRecord(sub, walPut, u, payload)
		}
		if err := w.appendBatch(sub, len(usns), usns[len(usns)-1], false); err != nil {
			t.Fatal(err)
		}
	}
	writeBatch(1, 2, 3)
	b1end := w.size.Load()
	writeBatch(4, 5, 6)
	total := w.size.Load()
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	replayCount := func(t *testing.T, contents []byte) int {
		p := filepath.Join(t.TempDir(), "cut.wal")
		if err := os.WriteFile(p, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		cw, err := openWAL(p)
		if err != nil {
			t.Fatal(err)
		}
		defer cw.close()
		count := 0
		wantUSN := uint64(1)
		if err := cw.replay(func(rec walRecord) error {
			if rec.USN != wantUSN {
				t.Fatalf("replayed USN %d, want dense %d", rec.USN, wantUSN)
			}
			wantUSN++
			count++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return count
	}

	if got := replayCount(t, raw); got != 6 {
		t.Fatalf("intact log replayed %d records, want 6", got)
	}
	// Any cut inside the second frame keeps exactly the first batch.
	for _, cut := range []int64{b1end + 1, b1end + 9, total - 1} {
		if got := replayCount(t, raw[:cut]); got != 3 {
			t.Fatalf("cut at %d replayed %d records, want 3", cut, got)
		}
	}
	// Any cut inside the first frame keeps nothing.
	for _, cut := range []int64{1, 9, b1end - 1} {
		if got := replayCount(t, raw[:cut]); got != 0 {
			t.Fatalf("cut at %d replayed %d records, want 0", cut, got)
		}
	}

	// A malformed batch interior (sub-record length past the payload) under
	// a valid frame CRC means a broken writer: the whole batch must be
	// dropped, not a prefix of it.
	mw, err := openWAL(filepath.Join(dir, "malformed.wal"))
	if err != nil {
		t.Fatal(err)
	}
	var good []byte
	good = appendSubRecord(good, walPut, 1, []byte("ok-1"))
	good = appendSubRecord(good, walPut, 2, []byte("ok-2"))
	if err := mw.appendBatch(good, 2, 2, false); err != nil {
		t.Fatal(err)
	}
	var bad []byte
	bad = appendSubRecord(bad, walPut, 3, []byte("ok-3"))
	bad = appendSubRecord(bad, walPut, 4, []byte("truncated"))
	// The last sub-record's length field sits 4 bytes before its payload.
	binary.LittleEndian.PutUint32(bad[len(bad)-len("truncated")-4:], 1<<30)
	if err := mw.appendBatch(bad, 2, 4, false); err != nil {
		t.Fatal(err)
	}
	if err := mw.close(); err != nil {
		t.Fatal(err)
	}
	mraw, err := os.ReadFile(filepath.Join(dir, "malformed.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if got := replayCount(t, mraw); got != 2 {
		t.Fatalf("malformed batch interior replayed %d records, want only the 2 intact ones", got)
	}
}

// TestGroupCommitRacesMaintenance races 64 committers against checkpoint,
// compaction, and hot-backup loops with the race detector's help (run under
// make stress), then verifies the final state.
func TestGroupCommitRacesMaintenance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.nsf")
	s, err := Open(path, Options{
		GroupCommitWindow: 100 * time.Microsecond,
		CheckpointEvery:   40,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, puts = 64, 10
	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(3)
	go func() {
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	go func() {
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.HotBackup(io.Discard, io.Discard); err != nil {
				t.Errorf("hot backup: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				n := gcNote(nsf.Timestamp(w*1000+i+1), fmt.Sprintf("r%d-%d", w, i))
				if err := s.Put(n); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if i%5 == 4 {
					if err := s.Delete(n.OID.UNID); err != nil {
						t.Errorf("writer %d delete: %v", w, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	maint.Wait()
	if t.Failed() {
		return
	}
	want := writers * (puts - puts/5)
	if got := s.Count(); got != want {
		t.Fatalf("final count %d, want %d", got, want)
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Fatalf("store fails verification after races: %v", problems)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count(); got != want {
		t.Fatalf("reopened count %d, want %d", got, want)
	}
}

// TestGroupCommitAmortization checks that concurrent committers actually
// share flushes: with 16 writers the batch machinery must write fewer
// batches than records.
func TestGroupCommitAmortization(t *testing.T) {
	path := filepath.Join(t.TempDir(), "amort.nsf")
	s, err := Open(path, Options{
		GroupCommitWindow: 200 * time.Microsecond,
		SyncWAL:           true,
		CheckpointEvery:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, puts = 16, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < puts; i++ {
				if err := s.Put(gcNote(nsf.Timestamp(w*100+i+1), fmt.Sprintf("a%d-%d", w, i))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.GroupCommitRecords != writers*puts {
		t.Fatalf("group commit carried %d records, want %d", st.GroupCommitRecords, writers*puts)
	}
	if st.GroupCommitFlushes == 0 || st.GroupCommitFlushes >= st.GroupCommitRecords {
		t.Fatalf("flushes = %d for %d records: no amortization observed",
			st.GroupCommitFlushes, st.GroupCommitRecords)
	}
	t.Logf("amortization: %d records over %d flushes (%.1fx)",
		st.GroupCommitRecords, st.GroupCommitFlushes,
		float64(st.GroupCommitRecords)/float64(st.GroupCommitFlushes))
}
