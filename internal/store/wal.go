package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record kinds.
const (
	walPut    = 1 // payload: encoded note
	walDelete = 2 // payload: 16-byte UNID
)

// walRecord is one logical operation in the log.
type walRecord struct {
	Kind    byte
	Payload []byte
}

// wal is an append-only log of note-level operations since the last
// checkpoint. Each record is framed as:
//
//	length  uint32  (kind + payload)
//	crc32   uint32  (castagnoli, over kind + payload)
//	kind    byte
//	payload bytes
//
// Replay stops at the first torn or corrupt record, which by write ordering
// can only be the tail.
type wal struct {
	f    *os.File
	size int64
	buf  []byte
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	return &wal{f: f, size: info.Size()}, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// append writes one record at the current tail. If sync is true the log is
// fsynced before returning, making the operation durable.
func (w *wal) append(kind byte, payload []byte, sync bool) error {
	need := 8 + 1 + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need*2)
	}
	buf := w.buf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+len(payload)))
	crc := crc32.Checksum([]byte{kind}, crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, kind)
	buf = append(buf, payload...)
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return fmt.Errorf("store: append wal: %w", err)
	}
	w.size += int64(len(buf))
	w.buf = buf
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: sync wal: %w", err)
		}
	}
	return nil
}

// replay invokes fn for every intact record from the start of the log. A
// torn tail (truncated or CRC-mismatched final record) ends replay without
// error; any earlier corruption is also treated as a torn tail because
// records are written strictly in order.
func (w *wal) replay(fn func(rec walRecord) error) error {
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek wal: %w", err)
	}
	r := io.NewSectionReader(w.f, 0, w.size)
	var hdr [8]byte
	offset := int64(0)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return fmt.Errorf("store: read wal header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if length == 0 || int64(length) > w.size-offset-8 {
			break // torn tail
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return fmt.Errorf("store: read wal body: %w", err)
		}
		if crc32.Checksum(body, crcTable) != wantCRC {
			break // torn tail
		}
		if err := fn(walRecord{Kind: body[0], Payload: body[1:]}); err != nil {
			return err
		}
		offset += 8 + int64(length)
	}
	// Forget any torn tail so subsequent appends start from intact state.
	if offset != w.size {
		if err := w.f.Truncate(offset); err != nil {
			return fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
		w.size = offset
	}
	return nil
}

// reset truncates the log after a checkpoint has made its contents redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync wal: %w", err)
	}
	w.size = 0
	return nil
}

func (w *wal) close() error { return w.f.Close() }
