package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
)

// WAL record kinds.
const (
	walPut    = 1 // payload: encoded note
	walDelete = 2 // payload: 16-byte UNID
	// walBatch wraps several logical records committed as one group: its
	// payload is a sequence of sub-records (kind, usn, length, payload),
	// and the frame-level CRC covers them all. A torn or corrupt tail
	// therefore drops the whole batch, never a prefix of it — which is what
	// makes group commit safe to acknowledge per batch. scanFrames flattens
	// batches, so replay, sealing, and archive scans only ever see the
	// logical records with their dense USNs.
	walBatch = 3
)

// walRecord is one logical operation in the log. Every record carries the
// database-wide update sequence number (USN) assigned at commit, so
// archived log segments can be replayed to an exact point in time.
type walRecord struct {
	Kind    byte
	USN     uint64
	Payload []byte
}

// wal is an append-only log of note-level operations since the last
// checkpoint. Each record is framed as:
//
//	length  uint32  (kind + usn + payload)
//	crc32   uint32  (castagnoli, over kind + usn + payload)
//	kind    byte
//	usn     uint64  (little-endian)
//	payload bytes
//
// Replay stops at the first torn or corrupt record, which by write ordering
// can only be the tail.
type wal struct {
	f *os.File
	// size is the committed tail offset. It is atomic because a group-commit
	// leader appends outside the store latch while latch-holding readers
	// (Stats, backup) observe it; writes are still serialized (one leader at
	// a time, and the plain path only runs after the group is drained).
	size atomic.Int64
	buf  []byte
}

func openWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	w := &wal{f: f}
	w.size.Store(info.Size())
	return w, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameOverhead is the framing cost per record: length + crc + kind + usn.
const frameOverhead = 8 + 1 + 8

// appendFrame encodes one record into buf (reused across calls).
func appendFrame(buf []byte, kind byte, usn uint64, payload []byte) []byte {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint64(hdr[1:], usn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(9+len(payload)))
	crc := crc32.Checksum(hdr[:], crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return buf
}

// append writes one record at the current tail. If sync is true the log is
// fsynced before returning, making the operation durable.
func (w *wal) append(kind byte, usn uint64, payload []byte, sync bool) error {
	need := frameOverhead + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need*2)
	}
	return w.writeFrame(appendFrame(w.buf[:0], kind, usn, payload), sync)
}

// batchSubHeader is the per-record header inside a walBatch payload:
// kind (1) + usn (8) + payload length (4).
const batchSubHeader = 1 + 8 + 4

// appendSubRecord encodes one logical record into a forming batch payload.
func appendSubRecord(buf []byte, kind byte, usn uint64, payload []byte) []byte {
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, usn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	return append(buf, payload...)
}

// appendBatch writes count pre-encoded sub-records as one walBatch frame
// whose CRC covers the whole group: recovery keeps the batch entirely or
// drops it entirely. A single-record batch degenerates to a plain frame, so
// a lone writer's log stays byte-identical to the unbatched path.
func (w *wal) appendBatch(sub []byte, count int, lastUSN uint64, sync bool) error {
	if count == 1 {
		kind := sub[0]
		usn := binary.LittleEndian.Uint64(sub[1:9])
		return w.append(kind, usn, sub[batchSubHeader:], sync)
	}
	need := frameOverhead + len(sub)
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need*2)
	}
	return w.writeFrame(appendFrame(w.buf[:0], walBatch, lastUSN, sub), sync)
}

// writeFrame appends one already-framed record (buf reuses w.buf's storage).
func (w *wal) writeFrame(buf []byte, sync bool) error {
	if _, err := w.f.WriteAt(buf, w.size.Load()); err != nil {
		return fmt.Errorf("store: append wal: %w", err)
	}
	w.size.Add(int64(len(buf)))
	w.buf = buf
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: sync wal: %w", err)
		}
	}
	return nil
}

// scanFrames reads CRC-framed records from r (at most size bytes) and calls
// fn for every intact one. It returns the byte count consumed by intact
// frames and whether the stream ended cleanly at a frame boundary; a torn or
// corrupt frame stops the scan with clean=false but no error. Errors from fn
// abort the scan. Shared by WAL replay and the archived-segment reader, so
// both stop at the first bad frame instead of resurrecting or panicking.
func scanFrames(r io.Reader, size int64, fn func(rec walRecord) error) (consumed int64, clean bool, err error) {
	var hdr [8]byte
	offset := int64(0)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return offset, true, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, false, nil
			}
			return offset, false, fmt.Errorf("store: read log header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if length < 9 || int64(length) > size-offset-8 {
			return offset, false, nil // torn tail
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(r, body); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return offset, false, nil
			}
			return offset, false, fmt.Errorf("store: read log body: %w", err)
		}
		if crc32.Checksum(body, crcTable) != wantCRC {
			return offset, false, nil
		}
		rec := walRecord{
			Kind:    body[0],
			USN:     binary.LittleEndian.Uint64(body[1:9]),
			Payload: body[9:],
		}
		if rec.Kind == walBatch {
			// Flatten the batch so every consumer (replay, seal, archive
			// scan) sees ordinary records with dense USNs. The frame CRC
			// already vouched for the payload; a malformed interior means
			// the writer was broken, so treat it like corruption at the
			// batch boundary — all-or-nothing, never a prefix. That demands
			// validating the whole batch BEFORE delivering any record of it.
			sub := rec.Payload
			for len(sub) > 0 {
				if len(sub) < batchSubHeader {
					return offset, false, nil
				}
				plen := int(binary.LittleEndian.Uint32(sub[9:13]))
				if plen > len(sub)-batchSubHeader {
					return offset, false, nil
				}
				sub = sub[batchSubHeader+plen:]
			}
			for sub = rec.Payload; len(sub) > 0; {
				plen := int(binary.LittleEndian.Uint32(sub[9:13]))
				r := walRecord{
					Kind:    sub[0],
					USN:     binary.LittleEndian.Uint64(sub[1:9]),
					Payload: sub[batchSubHeader : batchSubHeader+plen],
				}
				if err := fn(r); err != nil {
					return offset, false, err
				}
				sub = sub[batchSubHeader+plen:]
			}
		} else if err := fn(rec); err != nil {
			return offset, false, err
		}
		offset += 8 + int64(length)
	}
}

// replay invokes fn for every intact record from the start of the log. A
// torn tail (truncated or CRC-mismatched final record) ends replay without
// error; any earlier corruption is also treated as a torn tail because
// records are written strictly in order.
func (w *wal) replay(fn func(rec walRecord) error) error {
	size := w.size.Load()
	r := io.NewSectionReader(w.f, 0, size)
	offset, _, err := scanFrames(r, size, fn)
	if err != nil {
		return err
	}
	// Forget any torn tail so subsequent appends start from intact state.
	if offset != size {
		if err := w.f.Truncate(offset); err != nil {
			return fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
		w.size.Store(offset)
	}
	return nil
}

// readAll returns a copy of the current log contents (the tail since the
// last checkpoint) — the piece a hot backup captures alongside the page
// file snapshot.
func (w *wal) readAll() ([]byte, error) {
	buf := make([]byte, w.size.Load())
	if _, err := w.f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("store: read wal: %w", err)
	}
	return buf, nil
}

// reset truncates the log after a checkpoint has made its contents redundant.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync wal: %w", err)
	}
	w.size.Store(0)
	return nil
}

func (w *wal) close() error { return w.f.Close() }
