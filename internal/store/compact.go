package store

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nsf"
)

// Compact rewrites the database into a fresh file, dropping dead space
// (freed pages, slack in heap pages, shallow B+trees), then atomically
// swaps it in place and reopens. Note IDs, UNIDs, versions and the replica
// identity are all preserved, so views and replication state stay valid.
// It returns the number of pages reclaimed.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	// Quiesce group commit before touching files: an in-flight leader may
	// still be appending to the WAL we are about to close and swap out, and
	// pending waiters must be acked against the old file while it exists.
	if s.gc != nil {
		if err := s.gc.drain(); err != nil {
			return 0, err
		}
	}
	// Make the page file current first.
	if err := s.pg.flush(); err != nil {
		return 0, err
	}
	before := int(s.pg.pageCount)

	tmpPath := s.path + ".compact"
	// A stale temp file from an interrupted compaction is discarded.
	os.Remove(tmpPath)
	os.Remove(tmpPath + ".wal")
	fresh, err := Open(tmpPath, Options{
		ReplicaID:       s.pg.replicaID,
		Title:           s.pg.title,
		Created:         s.pg.created,
		CheckpointEvery: -1,
		CacheCap:        s.opts.CacheCap,
	})
	if err != nil {
		return 0, err
	}
	cleanupFresh := func() {
		fresh.Close()
		os.Remove(tmpPath)
		os.Remove(tmpPath + ".wal")
	}
	// Copy every live note. Iterate via the byID tree directly (we already
	// hold s.mu, so the public Scan methods would deadlock).
	var ids []nsf.NoteID
	err = s.byID.Ascend(nil, func(k, _ []byte) bool {
		ids = append(ids, decodeIDKey(k))
		return true
	})
	if err != nil {
		cleanupFresh()
		return 0, err
	}
	for _, id := range ids {
		// admit=false: the one-shot rewrite pass must not evict the live
		// working set (the cache is cleared after the swap anyway).
		n, err := s.getByIDLocked(id, false)
		if err != nil {
			cleanupFresh()
			return 0, err
		}
		if err := fresh.Put(n); err != nil {
			cleanupFresh()
			return 0, err
		}
	}
	// Preserve the allocation high-water marks: future NoteIDs never
	// collide with ones handed out before compaction, and the USN stream
	// continues where the original left off (the copy loop above burned
	// fresh-store USNs that mean nothing — overwrite them).
	fresh.mu.Lock()
	if fresh.pg.nextNoteID < s.pg.nextNoteID {
		fresh.pg.nextNoteID = s.pg.nextNoteID
		fresh.pg.hdrDirty = true
	}
	fresh.usn = s.usn
	fresh.modHigh = s.modHigh
	fresh.mu.Unlock()
	if err := fresh.Checkpoint(); err != nil {
		cleanupFresh()
		return 0, err
	}
	after := int(fresh.pg.pageCount)
	if err := fresh.closeFilesLocked(); err != nil {
		cleanupFresh()
		return 0, err
	}
	// The checkpoint above fsynced both temp files (page-file flush and WAL
	// reset both sync), so their contents are durable before the renames
	// make them visible.
	// Swap the files in. Rename is atomic per file; a crash between the two
	// renames leaves a fresh page file with a stale WAL, which reset-on-
	// checkpoint made empty above, so recovery is still correct.
	if err := s.closeFiles(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return 0, fmt.Errorf("store: swap compacted file: %w", err)
	}
	if err := os.Rename(tmpPath+".wal", s.path+".wal"); err != nil {
		return 0, fmt.Errorf("store: swap compacted wal: %w", err)
	}
	// Make the rename pair durable: without a directory fsync a power loss
	// here could surface the old page file next to the new WAL (or neither
	// rename), a resurrect-prone half-swapped store.
	if err := syncDir(filepath.Dir(s.path)); err != nil {
		return 0, err
	}
	// Reopen in place.
	pg, err := openPager(s.path, s.pg.replicaID, s.pg.title, s.pg.created, s.opts.CacheCap)
	if err != nil {
		return 0, err
	}
	w, err := openWAL(s.path + ".wal")
	if err != nil {
		pg.close()
		return 0, err
	}
	s.pg = pg
	s.wal = w
	if s.gc != nil {
		// The group was drained above and new enqueues are excluded by s.mu,
		// so it is idle; point it at the swapped-in WAL.
		s.gc.rebind(w)
	}
	s.heap = newHeap(pg)
	s.byID = &btree{pg: pg, slot: rootSlotByID}
	s.byUNID = &btree{pg: pg, slot: rootSlotByUNID}
	s.byMod = &btree{pg: pg, slot: rootSlotByMod}
	if err := s.heap.rebuild(); err != nil {
		return 0, err
	}
	// The rewrite recycled the whole RecordID space: every cached decode
	// now points at reused page/slot coordinates. Drop them all.
	s.cache.clear()
	s.sinceCheckpoint = 0
	return before - after, nil
}

// closeFilesLocked closes a store's files assuming the caller coordinates
// exclusivity (used by Compact on its private fresh store).
func (s *Store) closeFilesLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.closeFiles()
}

func decodeIDKey(k []byte) nsf.NoteID {
	return nsf.NoteID(uint32(k[0])<<24 | uint32(k[1])<<16 | uint32(k[2])<<8 | uint32(k[3]))
}
