package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/nsf"
)

// Hot (online) backup. The no-steal durability model makes this cheap: the
// on-disk page file only ever changes at a checkpoint, so between
// checkpoints it is an immutable, consistent snapshot and the WAL holds
// everything since. A hot backup therefore (1) suspends checkpoints,
// (2) copies the page file at leisure while commits keep appending to the
// WAL, (3) snapshots the WAL tail and cursors under the store mutex, and
// (4) releases the hold, running any checkpoint that came due. The commit
// path is never blocked for the duration of the copy.

// BackupMark describes the consistent point a hot backup captured.
type BackupMark struct {
	// LastUSN is the USN of the last operation included in the snapshot.
	LastUSN uint64
	// ModHigh is the modification high-water mark included — the cursor
	// the next incremental backup scans from.
	ModHigh nsf.Timestamp
	// PageBytes and WALBytes are the sizes of the two copied streams.
	PageBytes int64
	WALBytes  int64
	// Replica is the database's replica identity.
	Replica nsf.ReplicaID
}

// holdCheckpoints suspends checkpoints and returns a release function that
// resumes them, running a deferred checkpoint if one came due. The release
// function returns that checkpoint's error (nil when none ran).
func (s *Store) holdCheckpoints() (func() error, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	s.ckHold++
	return func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.ckHold--
		if s.ckHold == 0 && s.ckDeferred && !s.closed {
			return s.checkpointLocked()
		}
		return nil
	}, nil
}

// HotBackup streams a consistent snapshot of the database to pageW (the
// page file image) and walW (the WAL tail), without blocking concurrent
// commits. The snapshot reflects exactly the operations with USN <=
// mark.LastUSN: restoring both streams and running ordinary crash recovery
// reproduces that state.
func (s *Store) HotBackup(pageW, walW io.Writer) (BackupMark, error) {
	release, err := s.holdCheckpoints()
	if err != nil {
		return BackupMark{}, err
	}
	var releaseErr error
	released := false
	doRelease := func() {
		if !released {
			releaseErr = release()
			released = true
		}
	}
	defer doRelease()

	// Phase 2: copy the page file. It cannot change while checkpoints are
	// held, so a plain sequential copy over a private descriptor is a
	// consistent snapshot.
	f, err := os.Open(s.path)
	if err != nil {
		return BackupMark{}, fmt.Errorf("store: open page file for backup: %w", err)
	}
	pageBytes, err := io.Copy(pageW, f)
	f.Close()
	if err != nil {
		return BackupMark{}, fmt.Errorf("store: copy page file: %w", err)
	}

	// Phase 3: snapshot the WAL tail and cursors atomically. The WAL is
	// append-only, so everything up to the recorded size is immutable; the
	// copy itself happens outside the lock.
	s.mu.Lock()
	// With group commit on, records can sit in the forming batch: settle
	// them into the WAL first, or the snapshot would claim a LastUSN whose
	// trailing operations are missing from the copied log.
	if s.gc != nil {
		if err := s.gc.drain(); err != nil {
			s.mu.Unlock()
			return BackupMark{}, err
		}
	}
	raw, err := s.wal.readAll()
	mark := BackupMark{
		LastUSN:   s.usn,
		ModHigh:   s.modHigh,
		PageBytes: pageBytes,
		WALBytes:  int64(len(raw)),
		Replica:   s.pg.replicaID,
	}
	s.mu.Unlock()
	if err != nil {
		return BackupMark{}, err
	}
	if _, err := walW.Write(raw); err != nil {
		return BackupMark{}, fmt.Errorf("store: copy wal tail: %w", err)
	}
	doRelease()
	if releaseErr != nil {
		return BackupMark{}, releaseErr
	}
	return mark, nil
}

// SnapshotModifiedSince returns the encoded form of every note with
// Modified > since, the full set of live UNIDs, and the store cursors, all
// captured atomically under one lock hold — the delta an incremental
// backup writes. Notes are returned in modification order. The UNID
// manifest is what lets a restore reproduce hard deletes: any note staged
// from earlier images whose UNID is absent from the manifest was deleted
// in the span the delta covers.
func (s *Store) SnapshotModifiedSince(since nsf.Timestamp) ([][]byte, []nsf.UNID, BackupMark, error) {
	// One read-latch hold across the whole capture: the note delta, the
	// UNID manifest, and the cursors must be mutually consistent, so
	// writers are held off for the duration — but concurrent readers are
	// not, and the hold is bounded by the delta size, not the database.
	s.rlock()
	defer s.runlock()
	if s.closed {
		return nil, nil, BackupMark{}, errors.New("store: closed")
	}
	from := modKey(since, 0xFFFFFFFF)
	var ids []nsf.NoteID
	err := s.byMod.Ascend(from, func(k, _ []byte) bool {
		ids = append(ids, nsf.NoteID(binary.BigEndian.Uint32(k[8:])))
		return true
	})
	if err != nil {
		return nil, nil, BackupMark{}, err
	}
	notes := make([][]byte, 0, len(ids))
	for _, id := range ids {
		v, ok, err := s.byID.Get(idKey(id))
		if err != nil {
			return nil, nil, BackupMark{}, err
		}
		if !ok {
			continue // deleted between index scan and read (same lock: cannot happen; defensive)
		}
		enc, err := s.heap.get(RecordID(binary.BigEndian.Uint64(v)))
		if err != nil {
			return nil, nil, BackupMark{}, err
		}
		notes = append(notes, enc)
	}
	manifest := make([]nsf.UNID, 0, s.count)
	err = s.byUNID.Ascend(nil, func(k, _ []byte) bool {
		var u nsf.UNID
		copy(u[:], k)
		manifest = append(manifest, u)
		return true
	})
	if err != nil {
		return nil, nil, BackupMark{}, err
	}
	mark := BackupMark{
		LastUSN: s.usn,
		ModHigh: s.modHigh,
		Replica: s.pg.replicaID,
	}
	return notes, manifest, mark, nil
}
