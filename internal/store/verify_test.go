package store

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/clock"
)

func TestVerifyHealthyStore(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	c := clock.New()
	for i := 0; i < 200; i++ {
		if err := s.Put(makeNote(c, fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Mix in updates and deletes.
	n := makeNote(c, "churn")
	s.Put(n)
	n.SetText("Subject", "updated")
	n.Modified = c.Now()
	s.Put(n)
	s.Delete(n.OID.UNID)
	if problems := s.Verify(); len(problems) != 0 {
		t.Fatalf("healthy store reported problems: %v", problems)
	}
	// Still healthy after a crash-recovery cycle and a compaction.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Fatalf("post-compact problems: %v", problems)
	}
}

func TestVerifyDetectsDanglingUNID(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	c := clock.New()
	n := makeNote(c, "victim")
	if err := s.Put(n); err != nil {
		t.Fatal(err)
	}
	// Corrupt: point the UNID index at a nonexistent NoteID.
	s.mu.Lock()
	var bogus [4]byte
	binary.BigEndian.PutUint32(bogus[:], 9999)
	if err := s.byUNID.Put(n.OID.UNID[:], bogus[:]); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.mu.Unlock()
	problems := s.Verify()
	if len(problems) == 0 {
		t.Fatal("dangling UNID mapping not detected")
	}
}

func TestVerifyDetectsMissingModEntry(t *testing.T) {
	s, _ := openTestStore(t, Options{})
	c := clock.New()
	n := makeNote(c, "victim")
	if err := s.Put(n); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	if _, err := s.byMod.Delete(modKey(n.Modified, n.ID)); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	s.mu.Unlock()
	problems := s.Verify()
	if len(problems) == 0 {
		t.Fatal("missing byMod entry not detected")
	}
}
