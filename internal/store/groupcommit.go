package store

import (
	"sync"
	"time"
)

// Group commit. Concurrent committers enqueue their WAL records into a
// shared forming batch instead of writing (and fsyncing) the log per
// operation. The first waiter to find the batch unclaimed becomes its
// leader: it detaches the batch, writes it as one walBatch frame, fsyncs
// once (per SyncWAL), and wakes everyone whose record it carried. Commits
// that arrive while a flush is in flight accumulate into the next batch —
// the "natural batching" effect: under load the log forces back-to-back
// with dozens of commits each, with no timer involved. The optional commit
// window only matters at low concurrency: a leader whose batch holds a
// single record lingers briefly before forcing the log alone, giving
// concurrent committers a chance to share the fsync.
//
// Latching: enqueue callers hold the store's exclusive latch, which orders
// records; the flush itself runs outside it, so the latch is free while
// the disk syncs. The group's own mutex only guards batch hand-off.

// pendingBatch accumulates the records of one commit group until a leader
// flushes them. done/err are the flush outcome every enqueued committer
// waits on.
type pendingBatch struct {
	payload []byte // concatenated sub-records (see appendSubRecord)
	count   int
	lastUSN uint64
	done    bool
	err     error
}

type commitGroup struct {
	w       *wal
	syncWAL bool
	window  time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	cur      *pendingBatch // forming batch; nil when none
	flushing bool          // a leader is writing the detached batch
	// err is sticky: once a batch write fails the log tail is suspect, so
	// every later commit fails too until the store is reopened.
	err error

	flushes uint64 // batches written
	records uint64 // logical records committed through batches
}

func newCommitGroup(w *wal, syncWAL bool, window time.Duration) *commitGroup {
	g := &commitGroup{w: w, syncWAL: syncWAL, window: window}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enqueue adds one record to the forming batch and returns it as the ticket
// to wait on. The caller holds the store's exclusive latch, which fixes the
// record order within and across batches.
func (g *commitGroup) enqueue(kind byte, usn uint64, payload []byte) *pendingBatch {
	g.mu.Lock()
	if g.cur == nil {
		g.cur = &pendingBatch{}
	}
	b := g.cur
	b.payload = appendSubRecord(b.payload, kind, usn, payload)
	b.count++
	b.lastUSN = usn
	g.mu.Unlock()
	return b
}

// wait blocks until b's batch has been written (and fsynced per SyncWAL),
// electing this waiter as leader if the batch is unclaimed when its turn
// comes. Returns the batch's write error.
func (g *commitGroup) wait(b *pendingBatch) error {
	g.mu.Lock()
	for !b.done {
		if g.flushing || g.cur != b {
			g.cond.Wait()
			continue
		}
		// Leader. Claim the flush before any sleep so a second waiter of
		// the same batch cannot also lead it.
		g.flushing = true
		if g.window > 0 && g.syncWAL && b.count == 1 {
			// Lone record: linger for the commit window so concurrent
			// committers can join before the log is forced. Enqueues keep
			// landing in b while we sleep.
			g.mu.Unlock()
			time.Sleep(g.window)
			g.mu.Lock()
		}
		g.cur = nil
		g.flushLocked(b)
	}
	err := b.err
	g.mu.Unlock()
	return err
}

// drain flushes the forming batch (if any) after waiting out an in-flight
// flush. Callers hold the store's exclusive latch, so no new records can be
// enqueued; on return every enqueued record is in the WAL (fsynced per
// SyncWAL) and waiting committers have been released. Checkpoints, archive
// replay, and hot backup call this before touching the log.
func (g *commitGroup) drain() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.flushing {
		g.cond.Wait()
	}
	b := g.cur
	if b == nil {
		return g.err
	}
	g.flushing = true
	g.cur = nil
	g.flushLocked(b)
	return b.err
}

// flushLocked writes the detached batch b. Called with g.mu held and
// g.flushing true; the lock is released for the disk write and reacquired
// to publish the outcome.
func (g *commitGroup) flushLocked(b *pendingBatch) {
	sticky := g.err
	payload, count, lastUSN := b.payload, b.count, b.lastUSN
	g.mu.Unlock()
	err := sticky
	if err == nil {
		err = g.w.appendBatch(payload, count, lastUSN, g.syncWAL)
	}
	g.mu.Lock()
	if err != nil && sticky == nil && g.err == nil {
		g.err = err
	}
	b.err = err
	b.done = true
	g.flushes++
	g.records += uint64(count)
	g.flushing = false
	g.cond.Broadcast()
}

// rebind points the group at a new WAL after a file swap (Compact). The
// caller must have drained the group and must still hold the store's
// exclusive latch, so the group is idle and no records can be enqueued.
func (g *commitGroup) rebind(w *wal) {
	g.mu.Lock()
	g.w = w
	g.mu.Unlock()
}

// stats returns batches written and records committed through them.
func (g *commitGroup) stats() (flushes, records uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushes, g.records
}
