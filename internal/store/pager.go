package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/nsf"
)

const (
	headerMagic   = "NSFGODB1"
	formatVersion = 1
	// defaultCacheCap is the default buffer-pool capacity in pages (16 MiB).
	defaultCacheCap = 4096
)

// Header page layout (page 0):
//
//	off  size  field
//	0    8     magic
//	8    4     format version
//	12   4     page size
//	16   4     page count
//	20   4     free list head
//	24   4     byID root
//	28   4     byUNID root
//	32   4     byMod root
//	36   4     next NoteID
//	40   8     replica ID
//	48   8     created timestamp
//	56   2     title length, followed by title bytes (max 256)
//	320  8     last USN folded into the page file by the last checkpoint
//	           (zero in pre-USN files, which reads back as "no changes yet")
const (
	hdrOffVersion  = 8
	hdrOffPageSize = 12
	hdrOffCount    = 16
	hdrOffFreeHead = 20
	hdrOffRootByID = 24
	hdrOffRootUNID = 28
	hdrOffRootMod  = 32
	hdrOffNextNote = 36
	hdrOffReplica  = 40
	hdrOffCreated  = 48
	hdrOffTitle    = 56
	hdrOffLastUSN  = 320
	maxTitleLen    = 256
)

// pager manages the page file: allocation, the buffer pool, and the header.
//
// mu guards the buffer-pool map only. Concurrent readers (holding the
// store's read latch) fault pages in as they go, so the map itself needs
// its own latch; page *contents* and the header mirror need none, because
// they are only mutated under the store's exclusive latch, which excludes
// every reader. Eviction still happens only at flush time (a quiescent
// point under the exclusive latch), so frames held by an in-progress
// operation are never invalidated underneath it.
type pager struct {
	mu       sync.Mutex
	f        *os.File
	pages    map[PageID]*page
	cacheCap int
	// header state, mirrored from page 0 and written back on flush.
	pageCount  uint32
	freeHead   PageID
	rootByID   PageID
	rootByUNID PageID
	rootByMod  PageID
	nextNoteID uint32
	replicaID  nsf.ReplicaID
	created    nsf.Timestamp
	title      string
	lastUSN    uint64
	hdrDirty   bool
}

// openPager opens or creates the page file at path. When creating, replica
// identifies the new database.
func openPager(path string, replica nsf.ReplicaID, title string, created nsf.Timestamp, cacheCap int) (*pager, error) {
	if cacheCap <= 0 {
		cacheCap = defaultCacheCap
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open page file: %w", err)
	}
	p := &pager{f: f, pages: make(map[PageID]*page), cacheCap: cacheCap}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat page file: %w", err)
	}
	if info.Size() == 0 {
		if err := p.initHeader(replica, title, created); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	if err := p.loadHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return p, nil
}

func (p *pager) initHeader(replica nsf.ReplicaID, title string, created nsf.Timestamp) error {
	if len(title) > maxTitleLen {
		title = title[:maxTitleLen]
	}
	p.pageCount = 1
	p.freeHead = nilPage
	p.nextNoteID = 1
	p.replicaID = replica
	p.created = created
	p.title = title
	p.hdrDirty = true
	return p.flushHeader()
}

func (p *pager) loadHeader() error {
	var buf [PageSize]byte
	if _, err := p.f.ReadAt(buf[:], 0); err != nil {
		return fmt.Errorf("store: read header: %w", err)
	}
	if string(buf[:8]) != headerMagic {
		return fmt.Errorf("store: not a database file (bad magic %q)", buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[hdrOffVersion:]); v != formatVersion {
		return fmt.Errorf("store: unsupported format version %d", v)
	}
	if ps := binary.LittleEndian.Uint32(buf[hdrOffPageSize:]); ps != PageSize {
		return fmt.Errorf("store: page size mismatch: file has %d, build uses %d", ps, PageSize)
	}
	p.pageCount = binary.LittleEndian.Uint32(buf[hdrOffCount:])
	p.freeHead = PageID(binary.LittleEndian.Uint32(buf[hdrOffFreeHead:]))
	p.rootByID = PageID(binary.LittleEndian.Uint32(buf[hdrOffRootByID:]))
	p.rootByUNID = PageID(binary.LittleEndian.Uint32(buf[hdrOffRootUNID:]))
	p.rootByMod = PageID(binary.LittleEndian.Uint32(buf[hdrOffRootMod:]))
	p.nextNoteID = binary.LittleEndian.Uint32(buf[hdrOffNextNote:])
	copy(p.replicaID[:], buf[hdrOffReplica:hdrOffReplica+8])
	p.created = nsf.Timestamp(binary.LittleEndian.Uint64(buf[hdrOffCreated:]))
	tl := int(binary.LittleEndian.Uint16(buf[hdrOffTitle:]))
	if tl > maxTitleLen {
		return fmt.Errorf("store: corrupt header title length %d", tl)
	}
	p.title = string(buf[hdrOffTitle+2 : hdrOffTitle+2+tl])
	p.lastUSN = binary.LittleEndian.Uint64(buf[hdrOffLastUSN:])
	return nil
}

func (p *pager) flushHeader() error {
	if !p.hdrDirty {
		return nil
	}
	var buf [PageSize]byte
	copy(buf[:8], headerMagic)
	binary.LittleEndian.PutUint32(buf[hdrOffVersion:], formatVersion)
	binary.LittleEndian.PutUint32(buf[hdrOffPageSize:], PageSize)
	binary.LittleEndian.PutUint32(buf[hdrOffCount:], p.pageCount)
	binary.LittleEndian.PutUint32(buf[hdrOffFreeHead:], uint32(p.freeHead))
	binary.LittleEndian.PutUint32(buf[hdrOffRootByID:], uint32(p.rootByID))
	binary.LittleEndian.PutUint32(buf[hdrOffRootUNID:], uint32(p.rootByUNID))
	binary.LittleEndian.PutUint32(buf[hdrOffRootMod:], uint32(p.rootByMod))
	binary.LittleEndian.PutUint32(buf[hdrOffNextNote:], p.nextNoteID)
	copy(buf[hdrOffReplica:], p.replicaID[:])
	binary.LittleEndian.PutUint64(buf[hdrOffCreated:], uint64(p.created))
	binary.LittleEndian.PutUint16(buf[hdrOffTitle:], uint16(len(p.title)))
	copy(buf[hdrOffTitle+2:], p.title)
	binary.LittleEndian.PutUint64(buf[hdrOffLastUSN:], p.lastUSN)
	if _, err := p.f.WriteAt(buf[:], 0); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	p.hdrDirty = false
	return nil
}

// get returns the buffer-pool frame for id, reading it from disk if needed.
// Safe for concurrent readers: the disk read happens outside the pool
// latch, and a raced double-read keeps the first admitted frame (both
// frames carry identical bytes — no writer can have intervened while the
// callers hold the store's read latch).
func (p *pager) get(id PageID) (*page, error) {
	if id == nilPage || id >= PageID(p.pageCount) {
		return nil, fmt.Errorf("store: page %d out of range (count %d)", id, p.pageCount)
	}
	p.mu.Lock()
	if pg, ok := p.pages[id]; ok {
		p.mu.Unlock()
		return pg, nil
	}
	p.mu.Unlock()
	pg := &page{id: id}
	if _, err := p.f.ReadAt(pg.data[:], int64(id)*PageSize); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: read page %d: %w", id, err)
	}
	p.mu.Lock()
	if cur, ok := p.pages[id]; ok {
		p.mu.Unlock()
		return cur, nil
	}
	p.pages[id] = pg
	p.mu.Unlock()
	return pg, nil
}

// admit inserts a frame into the pool (write path: alloc).
func (p *pager) admit(pg *page) {
	p.mu.Lock()
	p.pages[pg.id] = pg
	p.mu.Unlock()
}

// alloc returns a zeroed page, reusing the free list when possible.
func (p *pager) alloc() (*page, error) {
	if p.freeHead != nilPage {
		pg, err := p.get(p.freeHead)
		if err != nil {
			return nil, err
		}
		p.freeHead = PageID(binary.LittleEndian.Uint32(pg.data[4:]))
		p.hdrDirty = true
		pg.data = [PageSize]byte{}
		pg.dirty = true
		return pg, nil
	}
	id := PageID(p.pageCount)
	p.pageCount++
	p.hdrDirty = true
	pg := &page{id: id, dirty: true}
	p.admit(pg)
	return pg, nil
}

// free returns a page to the free list.
func (p *pager) free(id PageID) error {
	pg, err := p.get(id)
	if err != nil {
		return err
	}
	pg.data = [PageSize]byte{}
	pg.data[0] = pageFree
	binary.LittleEndian.PutUint32(pg.data[4:], uint32(p.freeHead))
	pg.dirty = true
	p.freeHead = id
	p.hdrDirty = true
	return nil
}

// flush writes all dirty pages and the header to disk and syncs the file.
// This is the checkpoint device: after flush the page file is a consistent
// snapshot of the database.
func (p *pager) flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, pg := range p.pages {
		if !pg.dirty {
			continue
		}
		if _, err := p.f.WriteAt(pg.data[:], int64(id)*PageSize); err != nil {
			return fmt.Errorf("store: write page %d: %w", id, err)
		}
		pg.dirty = false
	}
	if err := p.flushHeader(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return fmt.Errorf("store: sync page file: %w", err)
	}
	// Trim the pool back to capacity now that every frame is clean. No
	// operation is in flight during a flush (the caller holds the store's
	// exclusive latch), so dropping frames is safe.
	if len(p.pages) > p.cacheCap {
		for id := range p.pages {
			delete(p.pages, id)
			if len(p.pages) <= p.cacheCap {
				break
			}
		}
	}
	return nil
}

// dirtyCount returns the number of dirty pages held in the pool.
func (p *pager) dirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, pg := range p.pages {
		if pg.dirty {
			n++
		}
	}
	return n
}

func (p *pager) close() error {
	return p.f.Close()
}
