package store

import (
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/nsf"
)

// TestScanFromCursorSemantics pins the resumable-scan primitive the wire
// bulk-read op pages with: ScanFrom(after) visits exactly the notes with
// ID > after, in ID order, in both latching disciplines.
func TestScanFromCursorSemantics(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"rw", Options{Title: "scanfrom"}},
		{"serialized", Options{Title: "scanfrom", SerializeReads: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, _ := openTestStore(t, mode.opts)
			c := clock.New()
			var ids []nsf.NoteID
			for i := 0; i < 20; i++ {
				n := makeNote(c, fmt.Sprintf("doc %02d", i))
				if err := s.Put(n); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, n.ID)
			}

			collect := func(after nsf.NoteID) []nsf.NoteID {
				var got []nsf.NoteID
				if err := s.ScanFrom(after, func(n *nsf.Note) bool {
					got = append(got, n.ID)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				return got
			}

			if got := collect(0); len(got) != 20 {
				t.Errorf("ScanFrom(0) visited %d notes, want 20", len(got))
			}
			mid := ids[9]
			got := collect(mid)
			if len(got) != 10 {
				t.Fatalf("ScanFrom(mid) visited %d notes, want 10", len(got))
			}
			for i, id := range got {
				if id <= mid {
					t.Errorf("note %d: id %d not after cursor %d", i, id, mid)
				}
				if i > 0 && id <= got[i-1] {
					t.Errorf("ids out of order: %d after %d", id, got[i-1])
				}
			}
			if got := collect(^nsf.NoteID(0)); len(got) != 0 {
				t.Errorf("ScanFrom(max) visited %d notes, want 0", len(got))
			}

			// Page through with the last-delivered ID as cursor: every note
			// exactly once, the way the wire scan handler drives it.
			seen := map[nsf.NoteID]bool{}
			cursor := nsf.NoteID(0)
			for {
				n := 0
				if err := s.ScanFrom(cursor, func(note *nsf.Note) bool {
					if seen[note.ID] {
						t.Fatalf("note %d delivered twice", note.ID)
					}
					seen[note.ID] = true
					cursor = note.ID
					n++
					return n < 7 // 7-note pages
				}); err != nil {
					t.Fatal(err)
				}
				if n < 7 {
					break
				}
			}
			if len(seen) != 20 {
				t.Errorf("paged scan visited %d notes, want 20", len(seen))
			}
		})
	}
}
