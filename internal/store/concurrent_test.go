package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/nsf"
)

// TestSnapshotScanSeesConsistentPrefix runs a full scan while a writer
// keeps appending and deleting: the scan must deliver every note that
// existed when it started (minus any it saw deleted), never error, and
// never deliver a note twice.
func TestSnapshotScanSeesConsistentPrefix(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "snap"})
	c := clock.New()
	const seeded = 500
	want := make(map[nsf.UNID]bool, seeded)
	for i := 0; i < seeded; i++ {
		n := makeNote(c, fmt.Sprintf("seed-%d", i))
		if err := s.Put(n); err != nil {
			t.Fatal(err)
		}
		want[n.OID.UNID] = true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			n := makeNote(c, fmt.Sprintf("churn-%d", i))
			if err := s.Put(n); err != nil {
				t.Errorf("churn put: %v", err)
				return
			}
			if i%2 == 1 {
				if err := s.Delete(n.OID.UNID); err != nil {
					t.Errorf("churn delete: %v", err)
					return
				}
			}
		}
	}()

	for round := 0; round < 5; round++ {
		seen := make(map[nsf.UNID]int)
		err := s.ScanAll(func(n *nsf.Note) bool {
			seen[n.OID.UNID]++
			return true
		})
		if err != nil {
			t.Fatalf("round %d: ScanAll: %v", round, err)
		}
		for u := range want {
			if seen[u] != 1 {
				t.Fatalf("round %d: seeded note %s seen %d times", round, u, seen[u])
			}
		}
		for u, k := range seen {
			if k != 1 {
				t.Fatalf("round %d: note %s delivered %d times", round, u, k)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestScanDoesNotBlockWriter proves the tentpole claim directly: a Put
// issued while a full scan is paused inside its callback completes
// promptly, because the snapshot scan holds no latch while fn runs. Under
// the seed's single-semaphore discipline this test deadlocks until the
// watchdog fires.
func TestScanDoesNotBlockWriter(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "noblock"})
	c := clock.New()
	for i := 0; i < 100; i++ {
		if err := s.Put(makeNote(c, fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	scanStarted := make(chan struct{})
	gate := make(chan struct{})
	scanDone := make(chan error, 1)
	go func() {
		first := true
		scanDone <- s.ScanAll(func(*nsf.Note) bool {
			if first {
				first = false
				close(scanStarted)
				<-gate
			}
			return true
		})
	}()

	<-scanStarted
	putDone := make(chan error, 1)
	go func() {
		putDone <- s.Put(makeNote(c, "mid-scan write"))
	}()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("Put during scan: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Put blocked behind an in-flight ScanAll — scan is holding the store latch across its callback")
	}
	close(gate)
	if err := <-scanDone; err != nil {
		t.Fatalf("ScanAll: %v", err)
	}
}

// TestConcurrentReadersWriters is a race-detector target: point reads,
// scans, and stats run against live writers, then the structures must
// verify clean.
func TestConcurrentReadersWriters(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "rw", CheckpointEvery: 64})
	c := clock.New()
	const seeded = 200
	unids := make([]nsf.UNID, seeded)
	for i := 0; i < seeded; i++ {
		n := makeNote(c, fmt.Sprintf("seed-%d", i))
		if err := s.Put(n); err != nil {
			t.Fatal(err)
		}
		unids[i] = n.OID.UNID
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				n := makeNote(c, fmt.Sprintf("w%d-%d", w, i))
				if err := s.Put(n); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if i%3 == 0 {
					if err := s.Delete(n.OID.UNID); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				u := unids[(r*53+i)%seeded]
				n, err := s.GetByUNID(u)
				if err != nil {
					t.Errorf("GetByUNID: %v", err)
					return
				}
				if _, err := s.GetByID(n.ID); err != nil {
					t.Errorf("GetByID: %v", err)
					return
				}
				if _, err := s.Exists(u); err != nil {
					t.Errorf("Exists: %v", err)
					return
				}
				s.Count()
				s.Stats()
				if i%25 == 0 {
					if err := s.ScanAll(func(*nsf.Note) bool { return true }); err != nil {
						t.Errorf("ScanAll: %v", err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("Verify after concurrent load: %v", problems)
	}
}

// TestNoteCacheSemantics checks the cache's correctness contract: reads
// return isolated copies, updates and deletes invalidate, and Compact
// clears the recycled RecordID space.
func TestNoteCacheSemantics(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "cache"})
	c := clock.New()
	n := makeNote(c, "v1")
	if err := s.Put(n); err != nil {
		t.Fatal(err)
	}
	u := n.OID.UNID

	got1, err := s.GetByUNID(u)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating a read result must not leak into later reads.
	got1.SetText("Subject", "mutated by caller")
	got2, err := s.GetByUNID(u)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Text("Subject") != "v1" {
		t.Fatalf("cache returned aliased note: Subject = %q", got2.Text("Subject"))
	}
	if st := s.Stats(); st.NoteCacheHits == 0 {
		t.Fatalf("expected a cache hit on the second read, stats %+v", st)
	}

	// Update invalidates: the next read sees v2, via byID too.
	n2 := makeNote(c, "v2")
	n2.OID.UNID = u
	n2.ID = got2.ID
	if err := s.Put(n2); err != nil {
		t.Fatal(err)
	}
	if got, err := s.GetByUNID(u); err != nil || got.Text("Subject") != "v2" {
		t.Fatalf("after update: %v / %q", err, got.Text("Subject"))
	}
	if got, err := s.GetByID(n2.ID); err != nil || got.Text("Subject") != "v2" {
		t.Fatalf("after update by id: %v / %q", err, got.Text("Subject"))
	}

	// Compact recycles RecordIDs; reads must still be correct after.
	for i := 0; i < 50; i++ {
		extra := makeNote(c, fmt.Sprintf("filler-%d", i))
		if err := s.Put(extra); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Delete(extra.OID.UNID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, err := s.GetByUNID(u); err != nil || got.Text("Subject") != "v2" {
		t.Fatalf("after compact: %v / %q", err, got.Text("Subject"))
	}

	// Delete invalidates.
	if err := s.Delete(u); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetByUNID(u); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: err = %v, want ErrNotFound", err)
	}
}

// TestSerializeReadsAblation exercises the seed-discipline baseline mode:
// same results, exclusive latching, no cache.
func TestSerializeReadsAblation(t *testing.T) {
	s, _ := openTestStore(t, Options{Title: "serial", SerializeReads: true})
	c := clock.New()
	for i := 0; i < 50; i++ {
		if err := s.Put(makeNote(c, fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	if err := s.ScanAll(func(*nsf.Note) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != 50 {
		t.Fatalf("serialized ScanAll saw %d notes, want 50", seen)
	}
	if st := s.Stats(); st.NoteCacheEntries != 0 || st.NoteCacheHits != 0 {
		t.Fatalf("serialized mode must disable the note cache, stats %+v", st)
	}
	if err := s.ScanModifiedSince(0, func(*nsf.Note) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if problems := s.Verify(); len(problems) > 0 {
		t.Fatalf("Verify: %v", problems)
	}
}
