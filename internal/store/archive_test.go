package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nsf"
)

func newTestNote(i int, ts nsf.Timestamp) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.OID.Seq = 1
	n.OID.SeqTime = ts
	n.Modified = ts
	n.SetText("Subject", fmt.Sprintf("doc-%d", i))
	return n
}

// archivedStore opens a store with log archiving on and manual checkpoints.
func archivedStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	arc := filepath.Join(dir, "walog")
	s, err := Open(filepath.Join(dir, "db.nsf"), Options{CheckpointEvery: -1, ArchiveDir: arc})
	if err != nil {
		t.Fatal(err)
	}
	return s, arc
}

func TestArchiveSealAndScan(t *testing.T) {
	s, arc := archivedStore(t)
	defer s.Close()
	var unids []nsf.UNID
	ts := nsf.Timestamp(0)
	for i := 0; i < 10; i++ {
		ts++
		n := newTestNote(i, ts)
		if err := s.Put(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		ts++
		if err := s.Put(newTestNote(i, ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete(unids[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	segs, err := ListSegments(arc)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].FirstUSN != 1 || segs[0].LastUSN != 10 || segs[0].Records != 10 {
		t.Fatalf("segment 1 covers USN %d..%d (%d records), want 1..10 (10)",
			segs[0].FirstUSN, segs[0].LastUSN, segs[0].Records)
	}
	if segs[1].FirstUSN != 11 || segs[1].LastUSN != 16 || segs[1].Records != 6 {
		t.Fatalf("segment 2 covers USN %d..%d (%d records), want 11..16 (6)",
			segs[1].FirstUSN, segs[1].LastUSN, segs[1].Records)
	}
	for _, seg := range segs {
		if n, err := VerifySegment(seg); err != nil {
			t.Fatalf("VerifySegment(%s): %v", seg.Path, err)
		} else if n != int(seg.Records) {
			t.Fatalf("VerifySegment(%s) read %d records, header says %d", seg.Path, n, seg.Records)
		}
	}

	var got []uint64
	deletes := 0
	last, err := ScanArchive(arc, 0, 0, func(rec walRecord) error {
		got = append(got, rec.USN)
		if rec.Kind == walDelete {
			deletes++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 16 || len(got) != 16 || deletes != 1 {
		t.Fatalf("scan: last=%d records=%d deletes=%d, want 16/16/1", last, len(got), deletes)
	}
	for i, usn := range got {
		if usn != uint64(i+1) {
			t.Fatalf("record %d has USN %d, want %d", i, usn, i+1)
		}
	}
	// Bounded scan delivers exactly (after, to].
	got = got[:0]
	last, err = ScanArchive(arc, 3, 12, func(rec walRecord) error {
		got = append(got, rec.USN)
		return nil
	})
	if err != nil || last != 12 || len(got) != 9 || got[0] != 4 || got[8] != 12 {
		t.Fatalf("bounded scan: last=%d n=%d err=%v", last, len(got), err)
	}
}

// TestArchiveCrashSealsReplayedTail checks that log records surviving only
// in the WAL at crash time still make it into the archive: recovery replays
// them and seals them into a segment, so the archived history stays dense.
func TestArchiveCrashSealsReplayedTail(t *testing.T) {
	s, arc := archivedStore(t)
	ts := nsf.Timestamp(0)
	for i := 0; i < 7; i++ {
		ts++
		if err := s.Put(newTestNote(i, ts)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no checkpoint, no close. The 7 operations exist only in the WAL.
	s2, err := Open(s.path, Options{CheckpointEvery: -1, ArchiveDir: arc})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.LastUSN(); got != 7 {
		t.Fatalf("recovered USN = %d, want 7", got)
	}
	var usns []uint64
	if _, err := ScanArchive(arc, 0, 0, func(rec walRecord) error {
		usns = append(usns, rec.USN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(usns) != 7 || usns[0] != 1 || usns[6] != 7 {
		t.Fatalf("archive holds USNs %v, want 1..7", usns)
	}
}

// TestArchiveOverlapTolerated simulates the crash-between-seal-and-reset
// state: the same records sealed twice under consecutive sequence numbers.
// The reader must deliver each USN exactly once.
func TestArchiveOverlapTolerated(t *testing.T) {
	s, arc := archivedStore(t)
	defer s.Close()
	ts := nsf.Timestamp(0)
	for i := 0; i < 5; i++ {
		ts++
		if err := s.Put(newTestNote(i, ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Duplicate segment 1 as segment 2 (patching seq and its CRC), exactly
	// what a re-seal after a badly timed crash produces.
	raw, err := os.ReadFile(filepath.Join(arc, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	dup := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(dup[8:], 2)
	binary.LittleEndian.PutUint32(dup[32:], crc32.Checksum(dup[8:32], crcTable))
	if err := os.WriteFile(filepath.Join(arc, segName(2)), dup, 0o644); err != nil {
		t.Fatal(err)
	}
	var usns []uint64
	last, err := ScanArchive(arc, 0, 0, func(rec walRecord) error {
		usns = append(usns, rec.USN)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 5 || len(usns) != 5 {
		t.Fatalf("overlap scan delivered %d records (last %d), want 5 (5)", len(usns), last)
	}
}

func TestArchiveGapDetected(t *testing.T) {
	s, arc := archivedStore(t)
	defer s.Close()
	ts := nsf.Timestamp(0)
	for seg := 0; seg < 2; seg++ {
		for i := 0; i < 5; i++ {
			ts++
			if err := s.Put(newTestNote(seg*5+i, ts)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(arc, segName(1))); err != nil {
		t.Fatal(err)
	}
	_, err := ScanArchive(arc, 0, 0, func(walRecord) error { return nil })
	if !errors.Is(err, ErrArchiveGap) {
		t.Fatalf("scan over missing segment: %v, want ErrArchiveGap", err)
	}
	// Scanning only the range the surviving segment covers still works.
	last, err := ScanArchive(arc, 5, 0, func(walRecord) error { return nil })
	if err != nil || last != 10 {
		t.Fatalf("partial scan: last=%d err=%v, want 10/nil", last, err)
	}
}

// TestArchiveCorruptSegmentStops covers the two damage modes for archived
// segments — a torn tail (truncated file) and a bit-flipped frame — and
// requires the reader to stop at the last intact record with
// ErrCorruptSegment, never resurrecting or panicking.
func TestArchiveCorruptSegmentStops(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		s, arc := archivedStore(t)
		defer s.Close()
		ts := nsf.Timestamp(0)
		for i := 0; i < 8; i++ {
			ts++
			if err := s.Put(newTestNote(i, ts)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return arc, filepath.Join(arc, segName(1))
	}

	t.Run("torn-tail", func(t *testing.T) {
		arc, seg := build(t)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Cut into the final frame.
		if err := os.WriteFile(seg, raw[:len(raw)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		var usns []uint64
		last, err := ScanArchive(arc, 0, 0, func(rec walRecord) error {
			usns = append(usns, rec.USN)
			return nil
		})
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("torn segment scan: %v, want ErrCorruptSegment", err)
		}
		if last != 7 || len(usns) != 7 {
			t.Fatalf("torn segment delivered %d records (last %d), want the 7 intact ones", len(usns), last)
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		arc, seg := build(t)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Locate the 4th frame and flip one payload byte.
		off := int64(segHeaderSize)
		for i := 0; i < 3; i++ {
			off += 8 + int64(binary.LittleEndian.Uint32(raw[off:]))
		}
		raw[off+8+20] ^= 0x40
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		var usns []uint64
		last, err := ScanArchive(arc, 0, 0, func(rec walRecord) error {
			usns = append(usns, rec.USN)
			return nil
		})
		if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("bit-flipped segment scan: %v, want ErrCorruptSegment", err)
		}
		if last != 3 || len(usns) != 3 {
			t.Fatalf("bit-flipped segment delivered %d records (last %d), want the 3 before the flip", len(usns), last)
		}
		if _, err := VerifySegment(SegmentInfo{Path: seg}); err == nil {
			t.Fatal("VerifySegment accepted a bit-flipped segment")
		}
	})
}

// TestApplyArchivePITR rolls an empty store forward to several points in
// time and checks each lands exactly on the modeled state.
func TestApplyArchivePITR(t *testing.T) {
	s, arc := archivedStore(t)
	type op struct {
		put  bool
		unid nsf.UNID
		subj string
	}
	var ops []op
	var live []nsf.UNID
	ts := nsf.Timestamp(0)
	for i := 0; i < 30; i++ {
		ts++
		if i%7 == 3 && len(live) > 0 {
			u := live[i%len(live)]
			live = append(live[:i%len(live)], live[i%len(live)+1:]...)
			if err := s.Delete(u); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, op{put: false, unid: u})
		} else {
			n := newTestNote(i, ts)
			if err := s.Put(n); err != nil {
				t.Fatal(err)
			}
			ops = append(ops, op{put: true, unid: n.OID.UNID, subj: n.Text("Subject")})
			live = append(live, n.OID.UNID)
		}
		if i%11 == 10 {
			if err := s.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Close(); err != nil { // final checkpoint seals the tail
		t.Fatal(err)
	}

	modelAt := func(u uint64) map[nsf.UNID]string {
		m := make(map[nsf.UNID]string)
		for _, o := range ops[:u] {
			if o.put {
				m[o.unid] = o.subj
			} else {
				delete(m, o.unid)
			}
		}
		return m
	}
	for _, target := range []uint64{1, 7, 15, 29, 30} {
		fresh, err := Open(filepath.Join(t.TempDir(), "pitr.nsf"), Options{CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		applied, err := fresh.ApplyArchive(arc, target)
		if err != nil {
			t.Fatalf("ApplyArchive(%d): %v", target, err)
		}
		if applied != int(target) {
			t.Fatalf("ApplyArchive(%d) applied %d records", target, applied)
		}
		if got := fresh.LastUSN(); got != target {
			t.Fatalf("after PITR to %d, LastUSN = %d", target, got)
		}
		want := modelAt(target)
		if fresh.Count() != len(want) {
			t.Fatalf("PITR to %d: %d notes, want %d", target, fresh.Count(), len(want))
		}
		for u, subj := range want {
			n, err := fresh.GetByUNID(u)
			if err != nil {
				t.Fatalf("PITR to %d: note %s missing: %v", target, u, err)
			}
			if n.Text("Subject") != subj {
				t.Fatalf("PITR to %d: note %s subject %q, want %q", target, u, n.Text("Subject"), subj)
			}
		}
		// The rolled-forward store is durable: survive a reopen.
		if err := fresh.Close(); err != nil {
			t.Fatal(err)
		}
		re, err := Open(fresh.path, Options{CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		if re.Count() != len(want) || re.LastUSN() != target {
			t.Fatalf("PITR to %d not durable: count=%d usn=%d", target, re.Count(), re.LastUSN())
		}
		re.Close()
	}
}

// TestUSNPersistsAcrossReopen pins the USN durability contract: dense while
// running, exact across clean close, crash, and compaction.
func TestUSNPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "usn.nsf")
	s, err := Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := nsf.Timestamp(0)
	for i := 0; i < 12; i++ {
		ts++
		if err := s.Put(newTestNote(i, ts)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LastUSN(); got != 12 {
		t.Fatalf("LastUSN = %d, want 12", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LastUSN(); got != 12 {
		t.Fatalf("LastUSN after clean reopen = %d, want 12", got)
	}
	ts++
	if err := s.Put(newTestNote(100, ts)); err != nil {
		t.Fatal(err)
	}
	// Crash (no close): WAL replay must restore USN 13.
	s2, err := Open(path, Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.LastUSN(); got != 13 {
		t.Fatalf("LastUSN after crash recovery = %d, want 13", got)
	}
	if _, err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s2.LastUSN(); got != 13 {
		t.Fatalf("LastUSN after compaction = %d, want 13", got)
	}
	mh := s2.ModHigh()
	if mh != ts {
		t.Fatalf("ModHigh after compaction = %d, want %d", mh, ts)
	}
	s2.Close()
}
