package store

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/nsf"
)

func TestCompactReclaimsSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	s, err := Open(path, Options{Title: "compact me"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := clock.New()
	// Create a lot of bulk, then delete most of it.
	var unids []nsf.UNID
	for i := 0; i < 400; i++ {
		n := makeNote(c, fmt.Sprintf("doc %d", i))
		n.SetText("Body", strings.Repeat("x", 2000))
		if err := s.Put(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	for i := 0; i < 360; i++ {
		if err := s.Delete(unids[i]); err != nil {
			t.Fatal(err)
		}
	}
	replica := s.ReplicaID()
	survivors := unids[360:]
	freed, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if freed <= 0 {
		t.Errorf("Compact freed %d pages", freed)
	}
	// Identity and content intact.
	if s.ReplicaID() != replica || s.Title() != "compact me" {
		t.Error("identity lost in compaction")
	}
	if s.Count() != 40 {
		t.Errorf("Count = %d", s.Count())
	}
	for i, u := range survivors {
		n, err := s.GetByUNID(u)
		if err != nil {
			t.Fatalf("survivor %d lost: %v", i, err)
		}
		if len(n.Text("Body")) != 2000 {
			t.Fatalf("survivor %d corrupted", i)
		}
	}
	// The store stays fully usable: writes, reads, reopen.
	post := makeNote(c, "after compact")
	if err := s.Put(post); err != nil {
		t.Fatalf("Put after compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after compact: %v", err)
	}
	defer s2.Close()
	if _, err := s2.GetByUNID(post.OID.UNID); err != nil {
		t.Errorf("post-compact write lost: %v", err)
	}
	if s2.Count() != 41 {
		t.Errorf("Count after reopen = %d", s2.Count())
	}
}

func TestCompactPreservesNoteIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := clock.New()
	n1 := makeNote(c, "one")
	n2 := makeNote(c, "two")
	s.Put(n1)
	s.Put(n2)
	s.Delete(n1.OID.UNID)
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetByID(n2.ID)
	if err != nil || got.OID.UNID != n2.OID.UNID {
		t.Errorf("NoteID %d not preserved: %v", n2.ID, err)
	}
	// New notes must not reuse n1's NoteID.
	n3 := makeNote(c, "three")
	if err := s.Put(n3); err != nil {
		t.Fatal(err)
	}
	if n3.ID == n1.ID || n3.ID == n2.ID {
		t.Errorf("NoteID %d reused after compact", n3.ID)
	}
}

func TestCompactModifiedIndexIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.nsf")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := clock.New()
	var stamps []nsf.Timestamp
	for i := 0; i < 20; i++ {
		n := makeNote(c, fmt.Sprint(i))
		stamps = append(stamps, n.Modified)
		s.Put(n)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	var seen int
	s.ScanModifiedSince(stamps[9], func(*nsf.Note) bool { seen++; return true })
	if seen != 10 {
		t.Errorf("ScanModifiedSince after compact saw %d, want 10", seen)
	}
}
