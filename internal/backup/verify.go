package backup

import (
	"fmt"

	"repro/internal/nsf"
	"repro/internal/store"
)

// VerifyResult reports the outcome of an offline integrity pass over a
// backup set (and, optionally, its log archive).
type VerifyResult struct {
	// Images is the number of images checked.
	Images int
	// Notes is the number of incremental note records checked.
	Notes int
	// Segments is the number of archived WAL segments checked.
	Segments int
	// ArchiveRecords is the number of archived log records checked.
	ArchiveRecords int
	// Problems lists every integrity failure found, one line each. Empty
	// means the set is sound.
	Problems []string
}

// OK reports whether the pass found no problems.
func (r *VerifyResult) OK() bool { return len(r.Problems) == 0 }

func (r *VerifyResult) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// VerifySet runs an offline integrity pass over the backup set in setDir:
// every image's SHA-256 digest, every incremental note frame's CRC and
// decodability, the chain links between consecutive images (sequence,
// USN continuity, parent digest), and — when archiveDir is non-empty —
// every archived segment's header and frame CRCs plus the USN continuity
// of the archive as a whole. It collects problems rather than stopping at
// the first, so one report covers the whole set.
func VerifySet(setDir, archiveDir string) (*VerifyResult, error) {
	r := &VerifyResult{}
	set, err := OpenSet(setDir)
	if err != nil {
		// An unreadable image header poisons the whole set listing; report
		// it as the single problem rather than failing the pass.
		r.problemf("%v", err)
		return r, nil
	}
	if len(set.Images) == 0 {
		r.problemf("set %s holds no images", setDir)
	}
	var prev *ImageInfo
	for i := range set.Images {
		img := &set.Images[i]
		r.Images++
		if err := verifyImageDigest(*img); err != nil {
			r.problemf("%v", err)
			// The body is untrustworthy; skip its frame checks but still
			// check the chain fields, which the header CRC vouches for.
		} else if img.Kind == KindIncremental {
			var unids []nsf.UNID
			manifest, err := readIncremental(*img, func(enc []byte) error {
				n, err := nsf.DecodeNote(enc)
				if err != nil {
					return fmt.Errorf("%s: undecodable note: %v", img.Path, err)
				}
				unids = append(unids, n.OID.UNID)
				r.Notes++
				return nil
			})
			if err != nil {
				r.problemf("%v", err)
			} else {
				// Every note the delta carries was live at capture time, so
				// it must appear in the image's own manifest.
				for _, u := range unids {
					if _, ok := manifest[u]; !ok {
						r.problemf("%s: delta note %s missing from manifest", img.Path, u)
					}
				}
			}
		}
		switch {
		case prev == nil:
			if img.Kind != KindFull {
				r.problemf("%s: set starts with an incremental image", img.Path)
			}
		case img.Kind == KindIncremental:
			if img.Seq != prev.Seq+1 {
				r.problemf("%s: sequence %d follows %d", img.Path, img.Seq, prev.Seq)
			}
			if img.BaseUSN != prev.EndUSN {
				r.problemf("%s: bases on USN %d, parent ends at %d", img.Path, img.BaseUSN, prev.EndUSN)
			}
			if img.Parent != prev.Digest {
				r.problemf("%s: parent digest does not match %s", img.Path, prev.Path)
			}
		default:
			// A new full image starts a fresh chain; nothing to link.
		}
		prev = img
	}

	if archiveDir != "" {
		segs, err := store.ListSegments(archiveDir)
		if err != nil {
			r.problemf("%v", err)
			segs = nil
		}
		var lastUSN uint64
		for i, seg := range segs {
			r.Segments++
			if i > 0 && seg.FirstUSN > lastUSN+1 {
				r.problemf("%s: archive gap: segment starts at USN %d, previous ends at %d",
					seg.Path, seg.FirstUSN, lastUSN)
			}
			n, err := store.VerifySegment(seg)
			if err != nil {
				r.problemf("%v", err)
			}
			r.ArchiveRecords += n
			if seg.LastUSN > lastUSN {
				lastUSN = seg.LastUSN
			}
		}
	}
	return r, nil
}
