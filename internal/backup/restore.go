package backup

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/nsf"
	"repro/internal/store"
)

// RestoreOptions configure a restore.
type RestoreOptions struct {
	// TargetUSN is the point-in-time recovery target: the restored database
	// reflects exactly the operations with USN <= TargetUSN. Zero means
	// "everything the set (and archive) has".
	TargetUSN uint64
	// ArchiveDir, when non-empty, names the archived-WAL-segment directory
	// used to roll forward past the newest image toward TargetUSN.
	ArchiveDir string
}

// RestoreInfo reports what a restore did.
type RestoreInfo struct {
	// ReachedUSN is the USN state the restored database ends at.
	ReachedUSN uint64
	// Images is the number of backup images applied (full + incrementals).
	Images int
	// Notes is the number of note versions applied from incrementals.
	Notes int
	// ArchiveRecords is the number of archived log records replayed.
	ArchiveRecords int
	// Replica is the restored database's replica identity.
	Replica nsf.ReplicaID
}

// Restore rebuilds a database at targetPath from the backup set in setDir:
// the newest full image at or below the target USN, the incremental chain
// on top of it, then (when an archive directory is given) point-in-time
// roll-forward over archived WAL segments up to the target USN. Every
// image digest is verified before its bytes are used.
//
// The rebuild happens in a staging directory next to targetPath and is
// renamed into place only after the restored store has been closed cleanly,
// so a crash mid-restore leaves the target path untouched (at worst a
// stale staging directory a rerun removes). Restore refuses to overwrite
// an existing database.
func Restore(setDir, targetPath string, opts RestoreOptions) (RestoreInfo, error) {
	var info RestoreInfo
	if _, err := os.Stat(targetPath); err == nil {
		return info, fmt.Errorf("backup: restore target %s already exists", targetPath)
	} else if !errors.Is(err, os.ErrNotExist) {
		return info, err
	}
	set, err := OpenSet(setDir)
	if err != nil {
		return info, err
	}
	chain, err := set.chainTo(opts.TargetUSN)
	if err != nil {
		return info, err
	}
	for _, img := range chain {
		if err := verifyImageDigest(img); err != nil {
			return info, err
		}
	}

	stageDir := targetPath + ".restore"
	// A stale staging directory from an interrupted restore is discarded.
	if err := os.RemoveAll(stageDir); err != nil {
		return info, err
	}
	if err := os.MkdirAll(stageDir, 0o755); err != nil {
		return info, err
	}
	crashed := false
	defer func() {
		if !crashed { // a simulated kill leaves the staging dir, like a real one
			os.RemoveAll(stageDir)
		}
	}()
	stagePath := filepath.Join(stageDir, filepath.Base(targetPath))

	// Lay down the full image's two streams as the staged page file and
	// WAL; opening the store then runs ordinary crash recovery over them,
	// reproducing exactly the state at the image's EndUSN.
	full := chain[0]
	if err := extractFullImage(full, stagePath); err != nil {
		return info, err
	}
	st, err := store.Open(stagePath, store.Options{CheckpointEvery: -1})
	if err != nil {
		return info, fmt.Errorf("backup: open restored image: %w", err)
	}
	closed := false
	defer func() {
		if !closed {
			st.Close()
		}
	}()
	if got := st.LastUSN(); got != full.EndUSN {
		return info, fmt.Errorf("%w: %s: image recovers to USN %d, header says %d",
			ErrCorruptImage, full.Path, got, full.EndUSN)
	}
	info.Images = 1
	info.Replica = st.ReplicaID()

	// Apply the incremental chain: put the changed notes, then delete every
	// staged note absent from the image's live-UNID manifest — those were
	// hard-deleted in the span the image covers. Each Put/Delete burns a
	// staged-store USN, but the source burned at least one USN per changed
	// note and per vanished note in the same span, so the staged store can
	// never overshoot the image's EndUSN; AdvanceUSN then equalizes to it,
	// keeping the cursor aligned for archive replay.
	for _, img := range chain[1:] {
		manifest, err := readIncremental(img, func(enc []byte) error {
			n, err := nsf.DecodeNote(enc)
			if err != nil {
				return fmt.Errorf("%w: %s: undecodable note: %v", ErrCorruptImage, img.Path, err)
			}
			if err := st.Put(n); err != nil {
				return err
			}
			info.Notes++
			return nil
		})
		if err != nil {
			return info, err
		}
		var vanished []nsf.UNID
		err = st.ScanAll(func(n *nsf.Note) bool {
			if _, ok := manifest[n.OID.UNID]; !ok {
				vanished = append(vanished, n.OID.UNID)
			}
			return true
		})
		if err != nil {
			return info, err
		}
		for _, u := range vanished {
			if err := st.Delete(u); err != nil {
				return info, err
			}
		}
		if st.LastUSN() > img.EndUSN {
			return info, fmt.Errorf("%w: %s: more changes than its USN span", ErrCorruptImage, img.Path)
		}
		st.AdvanceUSN(img.EndUSN)
		info.Images++
	}

	// Point-in-time roll-forward over the archived log.
	if opts.ArchiveDir != "" {
		applied, err := st.ApplyArchive(opts.ArchiveDir, opts.TargetUSN)
		if err != nil {
			return info, err
		}
		info.ArchiveRecords = applied
	}
	info.ReachedUSN = st.LastUSN()
	if opts.TargetUSN != 0 && info.ReachedUSN != opts.TargetUSN {
		return info, fmt.Errorf("backup: target USN %d unreachable: set%s rolls forward to %d",
			opts.TargetUSN, archiveClause(opts.ArchiveDir), info.ReachedUSN)
	}

	if err := st.Close(); err != nil {
		return info, err
	}
	closed = true
	if err := crashPoint("restore-publish"); err != nil {
		crashed = true
		return info, err
	}
	// Publish: move the staged pair into place and make the renames
	// durable. The target did not exist, so a crash between the renames
	// leaves a page file without its (empty, post-checkpoint) WAL — open
	// recreates an empty WAL, which is equivalent.
	if err := os.Rename(stagePath, targetPath); err != nil {
		return info, fmt.Errorf("backup: publish restored db: %w", err)
	}
	if err := os.Rename(stagePath+".wal", targetPath+".wal"); err != nil {
		return info, fmt.Errorf("backup: publish restored wal: %w", err)
	}
	if err := syncDir(filepath.Dir(targetPath)); err != nil {
		return info, err
	}
	return info, nil
}

func archiveClause(dir string) string {
	if dir == "" {
		return " (no archive)"
	}
	return "+archive"
}

// extractFullImage writes a full image's page and WAL streams to
// stagePath and stagePath+".wal", fsynced.
func extractFullImage(img ImageInfo, stagePath string) error {
	if img.Kind != KindFull {
		return fmt.Errorf("backup: %s is not a full image", img.Path)
	}
	f, err := os.Open(img.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	want := int64(imageHdrSize) + int64(img.PageBytes) + int64(img.WALBytes) + digestSize
	if img.Size != want {
		return fmt.Errorf("%w: %s: size %d, header implies %d", ErrCorruptImage, img.Path, img.Size, want)
	}
	copyOut := func(dst string, off, n int64) error {
		out, err := os.Create(dst)
		if err != nil {
			return err
		}
		_, err = io.Copy(out, io.NewSectionReader(f, off, n))
		if err == nil {
			err = out.Sync()
		}
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("backup: extract %s: %w", dst, err)
		}
		return nil
	}
	if err := copyOut(stagePath, imageHdrSize, int64(img.PageBytes)); err != nil {
		return err
	}
	return copyOut(stagePath+".wal", int64(imageHdrSize)+int64(img.PageBytes), int64(img.WALBytes))
}
