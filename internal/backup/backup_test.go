package backup

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/nsf"
	"repro/internal/store"
)

// noteState is the identity-and-content fingerprint the round-trip
// property compares: UNID, sequence number, and canonical content digest.
type noteState struct {
	seq    uint32
	digest [32]byte
}

// opLog records a deterministic operation history; op i (0-based) commits
// with USN i+1, so the model state at USN u is the replay of ops[:u].
type opLog struct {
	puts []*nsf.Note // clone at commit time; nil entry = delete
	dels []nsf.UNID  // UNID deleted (zero for puts)
}

func (l *opLog) put(n *nsf.Note) {
	l.puts = append(l.puts, n.Clone())
	l.dels = append(l.dels, nsf.UNID{})
}

func (l *opLog) del(u nsf.UNID) {
	l.puts = append(l.puts, nil)
	l.dels = append(l.dels, u)
}

func (l *opLog) stateAt(u uint64) map[nsf.UNID]noteState {
	m := make(map[nsf.UNID]noteState)
	for i := 0; i < int(u); i++ {
		if n := l.puts[i]; n != nil {
			m[n.OID.UNID] = noteState{seq: n.OID.Seq, digest: n.CanonicalDigest()}
		} else {
			delete(m, l.dels[i])
		}
	}
	return m
}

// checkState opens the database at path and compares its full note set
// (UNIDs, sequence numbers, canonical digests) against want.
func checkState(t *testing.T, path string, wantUSN uint64, want map[nsf.UNID]noteState) {
	t.Helper()
	st, err := store.Open(path, store.Options{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("open restored db: %v", err)
	}
	defer st.Close()
	if got := st.LastUSN(); got != wantUSN {
		t.Fatalf("restored LastUSN = %d, want %d", got, wantUSN)
	}
	got := 0
	err = st.ScanAll(func(n *nsf.Note) bool {
		got++
		w, ok := want[n.OID.UNID]
		if !ok {
			t.Fatalf("restored db holds unexpected note %s", n.OID.UNID)
		}
		if n.OID.Seq != w.seq {
			t.Fatalf("note %s restored at seq %d, want %d", n.OID.UNID, n.OID.Seq, w.seq)
		}
		if n.CanonicalDigest() != w.digest {
			t.Fatalf("note %s content digest mismatch after restore", n.OID.UNID)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("restored db holds %d notes, want %d", got, len(want))
	}
}

func testDoc(i int, ts nsf.Timestamp) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.OID.Seq = 1
	n.OID.SeqTime = ts
	n.Modified = ts
	n.SetText("Subject", fmt.Sprintf("doc-%d", i))
	n.SetText("Body", strings.Repeat("x", ((i*37)%900+900)%900))
	return n
}

// buildSet drives a workload through a store with log archiving on, taking
// a full backup and two incrementals along the way. It returns the op log,
// the image chain, and the directories involved. Layout of the 40 ops:
//
//	ops  1..14  -> full image at USN 14
//	ops 15..24  -> incremental 2 at USN 24
//	ops 25..32  -> incremental 3 at USN 32
//	ops 33..40  -> only in the archived log (PITR territory)
func buildSet(t *testing.T) (lg *opLog, chain []ImageInfo, setDir, arcDir string) {
	t.Helper()
	dir := t.TempDir()
	setDir = filepath.Join(dir, "bak")
	arcDir = filepath.Join(dir, "walog")
	st, err := store.Open(filepath.Join(dir, "src.nsf"),
		store.Options{CheckpointEvery: 9, ArchiveDir: arcDir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	lg = &opLog{}
	var live []nsf.UNID
	ts := nsf.Timestamp(0)
	apply := func(i int) {
		ts++
		if i%9 == 5 && len(live) > 0 {
			idx := i % len(live)
			u := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			if err := st.Delete(u); err != nil {
				t.Fatal(err)
			}
			lg.del(u)
			return
		}
		if i%7 == 3 && len(live) > 0 {
			// Update an existing note: bump seq, rewrite content.
			u := live[i%len(live)]
			n, err := st.GetByUNID(u)
			if err != nil {
				t.Fatal(err)
			}
			n.OID.Seq++
			n.OID.SeqTime = ts
			n.Modified = ts
			n.SetText("Subject", fmt.Sprintf("upd-%d", i))
			if err := st.Put(n); err != nil {
				t.Fatal(err)
			}
			lg.put(n)
			return
		}
		n := testDoc(i, ts)
		if err := st.Put(n); err != nil {
			t.Fatal(err)
		}
		lg.put(n)
		live = append(live, n.OID.UNID)
	}

	for i := 1; i <= 14; i++ {
		apply(i)
	}
	full, err := Full(st, setDir, ts)
	if err != nil {
		t.Fatal(err)
	}
	if full.EndUSN != 14 || full.Kind != KindFull || full.Seq != 1 {
		t.Fatalf("full image: %+v", full.Header)
	}
	chain = append(chain, full)

	for i := 15; i <= 24; i++ {
		apply(i)
	}
	inc1, err := Incremental(st, setDir, ts)
	if err != nil {
		t.Fatal(err)
	}
	if inc1.Kind != KindIncremental || inc1.BaseUSN != 14 || inc1.EndUSN != 24 {
		t.Fatalf("incremental 1: %+v", inc1.Header)
	}
	chain = append(chain, inc1)

	for i := 25; i <= 32; i++ {
		apply(i)
	}
	inc2, err := Incremental(st, setDir, ts)
	if err != nil {
		t.Fatal(err)
	}
	if inc2.BaseUSN != 24 || inc2.EndUSN != 32 {
		t.Fatalf("incremental 2: %+v", inc2.Header)
	}
	chain = append(chain, inc2)

	for i := 33; i <= 40; i++ {
		apply(i)
	}
	// Close seals the remaining WAL tail into the archive.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return lg, chain, setDir, arcDir
}

// TestRoundTripProperty is the subsystem's core invariant: a full image,
// its incremental chain, and point-in-time replay of the archived log to
// USN u reproduce exactly the note set visible at u — same UNIDs, same
// sequence numbers, same content digests.
func TestRoundTripProperty(t *testing.T) {
	lg, chain, setDir, arcDir := buildSet(t)

	// Targets cover: full image boundary, both incremental boundaries,
	// mid-archive points between and past images, and the end of history.
	for _, target := range []uint64{14, 20, 24, 28, 32, 37, 40} {
		t.Run(fmt.Sprintf("usn=%d", target), func(t *testing.T) {
			targetPath := filepath.Join(t.TempDir(), "restored.nsf")
			info, err := Restore(setDir, targetPath, RestoreOptions{TargetUSN: target, ArchiveDir: arcDir})
			if err != nil {
				t.Fatalf("Restore to USN %d: %v", target, err)
			}
			if info.ReachedUSN != target {
				t.Fatalf("reached USN %d, want %d", info.ReachedUSN, target)
			}
			checkState(t, targetPath, target, lg.stateAt(target))
		})
	}

	// Restore with no target: everything the set and archive hold.
	t.Run("latest", func(t *testing.T) {
		targetPath := filepath.Join(t.TempDir(), "restored.nsf")
		info, err := Restore(setDir, targetPath, RestoreOptions{ArchiveDir: arcDir})
		if err != nil {
			t.Fatal(err)
		}
		if info.ReachedUSN != 40 {
			t.Fatalf("latest restore reached USN %d, want 40", info.ReachedUSN)
		}
		checkState(t, targetPath, 40, lg.stateAt(40))
	})

	// Restore without the archive stops at the newest image at or below
	// the target.
	t.Run("images-only", func(t *testing.T) {
		targetPath := filepath.Join(t.TempDir(), "restored.nsf")
		info, err := Restore(setDir, targetPath, RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if info.ReachedUSN != chain[2].EndUSN {
			t.Fatalf("images-only restore reached USN %d, want %d", info.ReachedUSN, chain[2].EndUSN)
		}
		checkState(t, targetPath, 32, lg.stateAt(32))
	})

	// A target the history cannot reach is an error, not a silent
	// short-stop.
	t.Run("unreachable", func(t *testing.T) {
		targetPath := filepath.Join(t.TempDir(), "restored.nsf")
		_, err := Restore(setDir, targetPath, RestoreOptions{TargetUSN: 28})
		if err == nil {
			t.Fatal("restore to USN 28 without the archive should fail (images stop at 24)")
		}
		if _, statErr := os.Stat(targetPath); !errors.Is(statErr, os.ErrNotExist) {
			t.Fatal("failed restore left a target file behind")
		}
	})
}

// TestHotBackupUnderConcurrentWrites runs a full backup while a writer
// hammers the store, then proves the image is a consistent snapshot at its
// recorded USN — writes racing the copy either fall entirely inside or
// entirely after the image, never half-applied.
func TestHotBackupUnderConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "src.nsf"), store.Options{CheckpointEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	lg := &opLog{}
	var mu sync.Mutex // orders log appends with their Puts
	ts := nsf.Timestamp(0)
	writeOne := func(i int) {
		mu.Lock()
		defer mu.Unlock()
		ts++
		n := testDoc(i, ts)
		if err := st.Put(n); err != nil {
			t.Error(err)
			return
		}
		lg.put(n)
	}
	for i := 0; i < 100; i++ {
		writeOne(i)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 100; ; i++ {
			select {
			case <-stop:
				return
			default:
				writeOne(i)
			}
		}
	}()
	setDir := filepath.Join(dir, "bak")
	img, err := Full(st, setDir, 1)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if img.EndUSN < 100 {
		t.Fatalf("image USN %d, want >= 100", img.EndUSN)
	}

	targetPath := filepath.Join(dir, "restored.nsf")
	info, err := Restore(setDir, targetPath, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ReachedUSN != img.EndUSN {
		t.Fatalf("restore reached %d, image says %d", info.ReachedUSN, img.EndUSN)
	}
	checkState(t, targetPath, img.EndUSN, lg.stateAt(img.EndUSN))

	// The source store kept working throughout and still accepts writes.
	writeOne(-1)
}

// TestBackupCrashMidImage simulates a process kill at both crash points of
// image writing (half-written temp file; complete temp file not yet
// renamed). In every state the set stays verifiable and restorable, the
// next backup succeeds, and the live store is unharmed.
func TestBackupCrashMidImage(t *testing.T) {
	for _, point := range []string{"image-body", "image-rename"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			st, err := store.Open(filepath.Join(dir, "src.nsf"), store.Options{CheckpointEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			ts := nsf.Timestamp(0)
			for i := 0; i < 10; i++ {
				ts++
				if err := st.Put(testDoc(i, ts)); err != nil {
					t.Fatal(err)
				}
			}
			setDir := filepath.Join(dir, "bak")
			if _, err := Full(st, setDir, ts); err != nil {
				t.Fatal(err)
			}

			// Kill the next (incremental) backup at the crash point.
			crashed := errors.New("simulated kill")
			testCrashPoint = func(p string) error {
				if p == point {
					return crashed
				}
				return nil
			}
			defer func() { testCrashPoint = nil }()
			ts++
			if err := st.Put(testDoc(100, ts)); err != nil {
				t.Fatal(err)
			}
			if _, err := Incremental(st, setDir, ts); !errors.Is(err, crashed) {
				t.Fatalf("crash point did not fire: %v", err)
			}
			// The kill left a temp file behind — prove it, then prove
			// everything ignores it.
			tmps, _ := filepath.Glob(filepath.Join(setDir, "*.tmp"))
			if len(tmps) != 1 {
				t.Fatalf("expected 1 leftover temp file, found %v", tmps)
			}
			testCrashPoint = nil

			set, err := OpenSet(setDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(set.Images) != 1 {
				t.Fatalf("set shows %d images, want the 1 published full", len(set.Images))
			}
			r, err := VerifySet(setDir, "")
			if err != nil || !r.OK() {
				t.Fatalf("set not verifiable after mid-backup kill: err=%v problems=%v", err, r.Problems)
			}
			// The interrupted backup reruns cleanly over the leftover.
			img, err := Incremental(st, setDir, ts)
			if err != nil {
				t.Fatalf("backup rerun after kill: %v", err)
			}
			if img.EndUSN != 11 {
				t.Fatalf("rerun image USN %d, want 11", img.EndUSN)
			}
			// And the set restores.
			targetPath := filepath.Join(dir, "restored.nsf")
			info, err := Restore(setDir, targetPath, RestoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if info.ReachedUSN != 11 {
				t.Fatalf("restore reached %d, want 11", info.ReachedUSN)
			}
			// Live store unharmed.
			ts++
			if err := st.Put(testDoc(200, ts)); err != nil {
				t.Fatalf("live store broken after mid-backup kill: %v", err)
			}
		})
	}
}

// TestRestoreCrashMidPublish simulates a kill just before the restored
// files are renamed into place: the target must be untouched, and a rerun
// (over the leftover staging directory) must succeed.
func TestRestoreCrashMidPublish(t *testing.T) {
	lg, _, setDir, arcDir := buildSet(t)
	targetPath := filepath.Join(t.TempDir(), "restored.nsf")

	crashed := errors.New("simulated kill")
	testCrashPoint = func(p string) error {
		if p == "restore-publish" {
			return crashed
		}
		return nil
	}
	if _, err := Restore(setDir, targetPath, RestoreOptions{ArchiveDir: arcDir}); !errors.Is(err, crashed) {
		testCrashPoint = nil
		t.Fatalf("crash point did not fire: %v", err)
	}
	testCrashPoint = nil
	if _, err := os.Stat(targetPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("killed restore touched the target path")
	}
	if _, err := os.Stat(targetPath + ".restore"); err != nil {
		t.Fatalf("killed restore left no staging dir (unexpected): %v", err)
	}
	// The set is still sound and a rerun restores over the leftovers.
	r, err := VerifySet(setDir, arcDir)
	if err != nil || !r.OK() {
		t.Fatalf("set not verifiable after mid-restore kill: err=%v problems=%v", err, r.Problems)
	}
	info, err := Restore(setDir, targetPath, RestoreOptions{ArchiveDir: arcDir})
	if err != nil {
		t.Fatalf("restore rerun after kill: %v", err)
	}
	if info.ReachedUSN != 40 {
		t.Fatalf("rerun reached USN %d, want 40", info.ReachedUSN)
	}
	checkState(t, targetPath, 40, lg.stateAt(40))
}

// TestVerifyAndChainDamage checks that every damage mode is caught: a
// flipped body byte (digest), a missing chain link, a truncated image, and
// a missing archive segment.
func TestVerifyAndChainDamage(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		_, chain, setDir, arcDir := buildSet(t)
		r, err := VerifySet(setDir, arcDir)
		if err != nil {
			t.Fatal(err)
		}
		if !r.OK() {
			t.Fatalf("clean set reported problems: %v", r.Problems)
		}
		if r.Images != len(chain) || r.Segments == 0 {
			t.Fatalf("verify coverage: %d images, %d segments", r.Images, r.Segments)
		}
	})

	t.Run("bit-flip", func(t *testing.T) {
		_, chain, setDir, _ := buildSet(t)
		raw, err := os.ReadFile(chain[1].Path)
		if err != nil {
			t.Fatal(err)
		}
		raw[imageHdrSize+5] ^= 0x01
		if err := os.WriteFile(chain[1].Path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := VerifySet(setDir, "")
		if err != nil {
			t.Fatal(err)
		}
		if r.OK() {
			t.Fatal("verify missed a flipped image byte")
		}
		// Restore through the damaged image must refuse.
		if _, err := Restore(setDir, filepath.Join(t.TempDir(), "r.nsf"), RestoreOptions{}); !errors.Is(err, ErrCorruptImage) {
			t.Fatalf("restore through damaged image: %v, want ErrCorruptImage", err)
		}
		// But restoring to a point before the damage still works.
		if _, err := Restore(setDir, filepath.Join(t.TempDir(), "r.nsf"), RestoreOptions{TargetUSN: chain[0].EndUSN}); err != nil {
			t.Fatalf("restore before damaged image: %v", err)
		}
	})

	t.Run("missing-link", func(t *testing.T) {
		_, chain, setDir, _ := buildSet(t)
		if err := os.Remove(chain[1].Path); err != nil {
			t.Fatal(err)
		}
		r, err := VerifySet(setDir, "")
		if err != nil {
			t.Fatal(err)
		}
		if r.OK() {
			t.Fatal("verify missed a missing chain link")
		}
		if _, err := Restore(setDir, filepath.Join(t.TempDir(), "r.nsf"), RestoreOptions{}); !errors.Is(err, ErrBrokenChain) {
			t.Fatalf("restore across missing link: %v, want ErrBrokenChain", err)
		}
	})

	t.Run("missing-segment", func(t *testing.T) {
		_, _, setDir, arcDir := buildSet(t)
		segs, err := store.ListSegments(arcDir)
		if err != nil || len(segs) < 2 {
			t.Fatalf("need >= 2 segments, got %d (%v)", len(segs), err)
		}
		if err := os.Remove(segs[1].Path); err != nil {
			t.Fatal(err)
		}
		r, err := VerifySet(setDir, arcDir)
		if err != nil {
			t.Fatal(err)
		}
		if r.OK() {
			t.Fatal("verify missed an archive gap")
		}
	})
}
