// Package backup implements online backup and media recovery for NSF
// databases: hot full images taken while writes continue, incremental
// images chained on the USN cursor, offline verification, and restore with
// point-in-time roll-forward over archived WAL segments.
//
// A backup set is a directory of image files:
//
//	img-0001-full.nbk   full image: page-file snapshot + WAL tail
//	img-0002-incr.nbk   incremental: notes/stubs modified since image 1,
//	                    plus the live-UNID manifest (for hard deletes)
//	img-0003-incr.nbk   ...
//
// Every image records the USN range it covers, the modification-time
// cursor the next incremental scans from, and the SHA-256 digest of its
// parent image, so the chain is self-verifying. Images are written to a
// temp name and renamed into place with a directory fsync: a crash during
// a backup leaves at worst an ignored *.tmp file and never a half-visible
// image — the set stays verifiable and restorable.
//
// Restore rebuilds a database from the newest full image at or below the
// target USN, applies the incremental chain, then (for point-in-time
// recovery past the last image) replays archived WAL segments up to the
// target USN, verifying digests and CRCs at every step.
package backup

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/nsf"
	"repro/internal/store"
)

// Image kinds.
const (
	// KindFull is a complete database image (page file + WAL tail).
	KindFull = 1
	// KindIncremental is a delta image: every note (stubs included)
	// modified since the parent image.
	KindIncremental = 2
)

const (
	imageMagic    = "NSFBKIM1"
	imageVersion  = 1
	imageHdrSize  = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 32 + 8 + 8 + 4 + 4
	digestSize    = 32
	imageExt      = ".nbk"
	tmpSuffix     = ".tmp"
	fullImageName = "full"
	incrImageName = "incr"
)

// ErrCorruptImage reports an image whose header, body, or digest failed
// verification.
var ErrCorruptImage = errors.New("backup: corrupt image")

// ErrBrokenChain reports a backup set whose incremental chain does not link
// (missing image, wrong parent digest, or USN discontinuity).
var ErrBrokenChain = errors.New("backup: broken image chain")

// ErrEmptySet reports a restore from a set with no usable full image.
var ErrEmptySet = errors.New("backup: no full image in set")

// Header is the fixed-size metadata block at the start of every image.
type Header struct {
	// Kind is KindFull or KindIncremental.
	Kind uint32
	// Seq is the image's 1-based position in the set.
	Seq uint32
	// Replica is the source database's replica identity.
	Replica nsf.ReplicaID
	// BaseUSN is the USN the image's delta starts after (0 for full
	// images; the parent's EndUSN for incrementals).
	BaseUSN uint64
	// EndUSN is the last USN whose effects the image includes.
	EndUSN uint64
	// CursorMod is the modification-time high-water mark the image covers;
	// the next incremental scans notes with Modified > CursorMod.
	CursorMod nsf.Timestamp
	// Created is the backup wall time in unix nanoseconds.
	Created int64
	// Parent is the SHA-256 digest of the parent image (zero for full).
	Parent [digestSize]byte
	// PageBytes and WALBytes size the two body streams of a full image.
	PageBytes uint64
	WALBytes  uint64
	// Notes is the note count of an incremental image.
	Notes uint32
}

// ImageInfo describes one image in a set.
type ImageInfo struct {
	Header
	// Path is the image file.
	Path string
	// Digest is the SHA-256 over header and body (the trailer value).
	Digest [digestSize]byte
	// Size is the file size in bytes.
	Size int64
}

func encodeHeader(h *Header) []byte {
	buf := make([]byte, imageHdrSize)
	copy(buf, imageMagic)
	o := 8
	binary.LittleEndian.PutUint32(buf[o:], imageVersion)
	o += 4
	binary.LittleEndian.PutUint32(buf[o:], h.Kind)
	o += 4
	binary.LittleEndian.PutUint32(buf[o:], h.Seq)
	o += 4
	copy(buf[o:], h.Replica[:])
	o += 8
	binary.LittleEndian.PutUint64(buf[o:], h.BaseUSN)
	o += 8
	binary.LittleEndian.PutUint64(buf[o:], h.EndUSN)
	o += 8
	binary.LittleEndian.PutUint64(buf[o:], uint64(h.CursorMod))
	o += 8
	binary.LittleEndian.PutUint64(buf[o:], uint64(h.Created))
	o += 8
	copy(buf[o:], h.Parent[:])
	o += digestSize
	binary.LittleEndian.PutUint64(buf[o:], h.PageBytes)
	o += 8
	binary.LittleEndian.PutUint64(buf[o:], h.WALBytes)
	o += 8
	binary.LittleEndian.PutUint32(buf[o:], h.Notes)
	o += 4
	binary.LittleEndian.PutUint32(buf[o:], crc32.ChecksumIEEE(buf[:o]))
	return buf
}

func decodeHeader(path string, buf []byte) (Header, error) {
	var h Header
	if len(buf) < imageHdrSize || string(buf[:8]) != imageMagic {
		return h, fmt.Errorf("%w: %s: bad magic", ErrCorruptImage, path)
	}
	if crc32.ChecksumIEEE(buf[:imageHdrSize-4]) != binary.LittleEndian.Uint32(buf[imageHdrSize-4:]) {
		return h, fmt.Errorf("%w: %s: header CRC mismatch", ErrCorruptImage, path)
	}
	o := 8
	if v := binary.LittleEndian.Uint32(buf[o:]); v != imageVersion {
		return h, fmt.Errorf("%w: %s: unsupported version %d", ErrCorruptImage, path, v)
	}
	o += 4
	h.Kind = binary.LittleEndian.Uint32(buf[o:])
	o += 4
	h.Seq = binary.LittleEndian.Uint32(buf[o:])
	o += 4
	copy(h.Replica[:], buf[o:])
	o += 8
	h.BaseUSN = binary.LittleEndian.Uint64(buf[o:])
	o += 8
	h.EndUSN = binary.LittleEndian.Uint64(buf[o:])
	o += 8
	h.CursorMod = nsf.Timestamp(binary.LittleEndian.Uint64(buf[o:]))
	o += 8
	h.Created = int64(binary.LittleEndian.Uint64(buf[o:]))
	o += 8
	copy(h.Parent[:], buf[o:])
	o += digestSize
	h.PageBytes = binary.LittleEndian.Uint64(buf[o:])
	o += 8
	h.WALBytes = binary.LittleEndian.Uint64(buf[o:])
	o += 8
	h.Notes = binary.LittleEndian.Uint32(buf[o:])
	return h, nil
}

func imageName(seq uint32, kind uint32) string {
	k := fullImageName
	if kind == KindIncremental {
		k = incrImageName
	}
	return fmt.Sprintf("img-%04d-%s%s", seq, k, imageExt)
}

// testCrashPoint, when set by tests, aborts image/restore writing at a
// named point, simulating a process kill at exactly the state a crash
// would leave on disk: temp files are left behind (not cleaned up) and
// nothing is renamed into place.
var testCrashPoint func(point string) error

func crashPoint(point string) error {
	if testCrashPoint != nil {
		return testCrashPoint(point)
	}
	return nil
}

// writeImage writes header+body to a temp file, rewrites the header with
// final values, appends the SHA-256 trailer, fsyncs, renames into place,
// and fsyncs the directory. body streams the image body and may update the
// header (sizes and cursors become known only after the copy).
func writeImage(dir string, h *Header, body func(w io.Writer) error) (ImageInfo, error) {
	final := filepath.Join(dir, imageName(h.Seq, h.Kind))
	tmp := final + tmpSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return ImageInfo{}, fmt.Errorf("backup: create image: %w", err)
	}
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(make([]byte, imageHdrSize)); err != nil {
		cleanup()
		return ImageInfo{}, fmt.Errorf("backup: write image: %w", err)
	}
	if err := body(f); err != nil {
		cleanup()
		return ImageInfo{}, err
	}
	if err := crashPoint("image-body"); err != nil {
		f.Close() // a kill leaves the half-written temp file behind
		return ImageInfo{}, err
	}
	// Final header now that the body pinned the sizes and cursors.
	if _, err := f.WriteAt(encodeHeader(h), 0); err != nil {
		cleanup()
		return ImageInfo{}, fmt.Errorf("backup: write image header: %w", err)
	}
	// Digest pass: hash the whole file (header + body) and append the
	// trailer. Rereading keeps the digest definitionally "over the bytes a
	// reader will see".
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		cleanup()
		return ImageInfo{}, err
	}
	hash := sha256.New()
	n, err := io.Copy(hash, f)
	if err != nil {
		cleanup()
		return ImageInfo{}, fmt.Errorf("backup: digest image: %w", err)
	}
	var digest [digestSize]byte
	hash.Sum(digest[:0])
	if _, err := f.WriteAt(digest[:], n); err != nil {
		cleanup()
		return ImageInfo{}, fmt.Errorf("backup: write image digest: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return ImageInfo{}, fmt.Errorf("backup: sync image: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return ImageInfo{}, err
	}
	if err := crashPoint("image-rename"); err != nil {
		return ImageInfo{}, err // a kill leaves the complete temp file behind
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return ImageInfo{}, fmt.Errorf("backup: publish image: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return ImageInfo{}, err
	}
	return ImageInfo{Header: *h, Path: final, Digest: digest, Size: n + digestSize}, nil
}

// readImageInfo loads an image's header and trailer digest without
// verifying the body (Verify and Restore do the full digest pass).
func readImageInfo(path string) (ImageInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ImageInfo{}, err
	}
	defer f.Close()
	hdr := make([]byte, imageHdrSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return ImageInfo{}, fmt.Errorf("%w: %s: short header", ErrCorruptImage, path)
	}
	h, err := decodeHeader(path, hdr)
	if err != nil {
		return ImageInfo{}, err
	}
	info, err := f.Stat()
	if err != nil {
		return ImageInfo{}, err
	}
	if info.Size() < imageHdrSize+digestSize {
		return ImageInfo{}, fmt.Errorf("%w: %s: truncated", ErrCorruptImage, path)
	}
	var digest [digestSize]byte
	if _, err := f.ReadAt(digest[:], info.Size()-digestSize); err != nil {
		return ImageInfo{}, fmt.Errorf("%w: %s: unreadable digest", ErrCorruptImage, path)
	}
	return ImageInfo{Header: h, Path: path, Digest: digest, Size: info.Size()}, nil
}

// verifyImageDigest re-hashes the image body and compares it to the
// trailer digest.
func verifyImageDigest(info ImageInfo) error {
	f, err := os.Open(info.Path)
	if err != nil {
		return err
	}
	defer f.Close()
	hash := sha256.New()
	if _, err := io.Copy(hash, io.NewSectionReader(f, 0, info.Size-digestSize)); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorruptImage, info.Path, err)
	}
	var got [digestSize]byte
	hash.Sum(got[:0])
	if got != info.Digest {
		return fmt.Errorf("%w: %s: digest mismatch", ErrCorruptImage, info.Path)
	}
	return nil
}

// Set is a loaded backup set: the images in a directory, in sequence
// order.
type Set struct {
	// Dir is the set directory.
	Dir string
	// Images lists the set's images sorted by Seq.
	Images []ImageInfo
}

// OpenSet loads the backup set in dir. Temp files (crash leftovers) are
// ignored; images with unreadable headers fail the load. An empty or
// missing directory yields an empty set.
func OpenSet(dir string) (*Set, error) {
	s := &Set{Dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return s, nil
		}
		return nil, fmt.Errorf("backup: read set dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "img-") || !strings.HasSuffix(name, imageExt) {
			continue
		}
		info, err := readImageInfo(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		s.Images = append(s.Images, info)
	}
	sort.Slice(s.Images, func(i, j int) bool { return s.Images[i].Seq < s.Images[j].Seq })
	return s, nil
}

// last returns the newest image, or nil for an empty set.
func (s *Set) last() *ImageInfo {
	if len(s.Images) == 0 {
		return nil
	}
	return &s.Images[len(s.Images)-1]
}

// chainTo returns the restore chain ending at target USN u: the newest
// full image with EndUSN <= u (or the newest full at all when none is
// below u and u is 0 meaning "latest"), followed by the incrementals up to
// u. Chain links (Seq continuity, BaseUSN == parent.EndUSN, Parent digest)
// are verified.
func (s *Set) chainTo(u uint64) ([]ImageInfo, error) {
	if u == 0 {
		u = ^uint64(0)
	}
	fullIdx := -1
	for i, img := range s.Images {
		if img.Kind == KindFull && img.EndUSN <= u {
			fullIdx = i
		}
	}
	if fullIdx < 0 {
		return nil, fmt.Errorf("%w (target USN %d)", ErrEmptySet, u)
	}
	chain := []ImageInfo{s.Images[fullIdx]}
	for i := fullIdx + 1; i < len(s.Images); i++ {
		img := s.Images[i]
		if img.Kind != KindIncremental || img.EndUSN > u {
			break
		}
		prev := chain[len(chain)-1]
		if img.Seq != prev.Seq+1 {
			return nil, fmt.Errorf("%w: image %s follows seq %d, want %d", ErrBrokenChain, img.Path, prev.Seq, prev.Seq+1)
		}
		if img.BaseUSN != prev.EndUSN {
			return nil, fmt.Errorf("%w: image %s bases on USN %d, parent ends at %d", ErrBrokenChain, img.Path, img.BaseUSN, prev.EndUSN)
		}
		if img.Parent != prev.Digest {
			return nil, fmt.Errorf("%w: image %s does not carry its parent's digest", ErrBrokenChain, img.Path)
		}
		chain = append(chain, img)
	}
	return chain, nil
}

// Full takes a hot full backup of st into the set at dir, creating the
// directory if needed. Writes continue during the copy; only checkpoints
// are suspended. The returned info records the image's USN and cursor.
func Full(st *store.Store, dir string, now nsf.Timestamp) (ImageInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ImageInfo{}, fmt.Errorf("backup: set dir: %w", err)
	}
	set, err := OpenSet(dir)
	if err != nil {
		return ImageInfo{}, err
	}
	h := Header{Kind: KindFull, Seq: 1, Created: int64(now)}
	if lastImg := set.last(); lastImg != nil {
		h.Seq = lastImg.Seq + 1
	}
	info, err := writeImage(dir, &h, func(w io.Writer) error {
		// Stream the page file, then the WAL tail, back to back. The split
		// point (and so the final header) is only known after the copy, so
		// the body pins it into the header via the closure.
		mark, err := st.HotBackup(w, w)
		if err != nil {
			return err
		}
		h.Replica = mark.Replica
		h.EndUSN = mark.LastUSN
		h.CursorMod = mark.ModHigh
		h.PageBytes = uint64(mark.PageBytes)
		h.WALBytes = uint64(mark.WALBytes)
		return nil
	})
	return info, err
}

// Incremental takes an incremental backup of st into the set at dir: every
// note (stubs included) modified since the set's newest image, chained to
// it by USN and parent digest, followed by the manifest of all live UNIDs
// at capture time. The manifest is how restore reproduces hard deletes —
// the store does not keep per-UNID tombstones, so a note staged from an
// earlier image that is missing from the manifest is known to have been
// deleted in the covered span. With no prior image Incremental falls back
// to a full backup. An incremental with zero changes is still written — it
// renews the chain head and records the new cursor.
func Incremental(st *store.Store, dir string, now nsf.Timestamp) (ImageInfo, error) {
	set, err := OpenSet(dir)
	if err != nil {
		return ImageInfo{}, err
	}
	parent := set.last()
	if parent == nil {
		return Full(st, dir, now)
	}
	notes, manifest, mark, err := st.SnapshotModifiedSince(parent.CursorMod)
	if err != nil {
		return ImageInfo{}, err
	}
	h := Header{
		Kind:      KindIncremental,
		Seq:       parent.Seq + 1,
		Replica:   mark.Replica,
		BaseUSN:   parent.EndUSN,
		EndUSN:    mark.LastUSN,
		CursorMod: mark.ModHigh,
		Created:   int64(now),
		Parent:    parent.Digest,
		Notes:     uint32(len(notes)),
	}
	return writeImage(dir, &h, func(w io.Writer) error {
		var frame [8]byte
		for _, enc := range notes {
			binary.LittleEndian.PutUint32(frame[:4], uint32(len(enc)))
			binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(enc))
			if _, err := w.Write(frame[:]); err != nil {
				return fmt.Errorf("backup: write incremental: %w", err)
			}
			if _, err := w.Write(enc); err != nil {
				return fmt.Errorf("backup: write incremental: %w", err)
			}
		}
		raw := make([]byte, 16*len(manifest))
		for i, u := range manifest {
			copy(raw[16*i:], u[:])
		}
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(manifest)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(raw))
		if _, err := w.Write(frame[:]); err != nil {
			return fmt.Errorf("backup: write manifest: %w", err)
		}
		if _, err := w.Write(raw); err != nil {
			return fmt.Errorf("backup: write manifest: %w", err)
		}
		return nil
	})
}

// readIncremental streams the note frames of an incremental image to fn,
// then reads the live-UNID manifest that follows them and returns it as a
// set.
func readIncremental(img ImageInfo, fn func(enc []byte) error) (map[nsf.UNID]struct{}, error) {
	f, err := os.Open(img.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := io.NewSectionReader(f, imageHdrSize, img.Size-imageHdrSize-digestSize)
	var frame [8]byte
	for i := uint32(0); i < img.Notes; i++ {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return nil, fmt.Errorf("%w: %s: short note frame", ErrCorruptImage, img.Path)
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		wantCRC := binary.LittleEndian.Uint32(frame[4:])
		enc := make([]byte, length)
		if _, err := io.ReadFull(r, enc); err != nil {
			return nil, fmt.Errorf("%w: %s: short note body", ErrCorruptImage, img.Path)
		}
		if crc32.ChecksumIEEE(enc) != wantCRC {
			return nil, fmt.Errorf("%w: %s: note CRC mismatch", ErrCorruptImage, img.Path)
		}
		if err := fn(enc); err != nil {
			return nil, err
		}
	}
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return nil, fmt.Errorf("%w: %s: short manifest frame", ErrCorruptImage, img.Path)
	}
	count := binary.LittleEndian.Uint32(frame[:4])
	wantCRC := binary.LittleEndian.Uint32(frame[4:])
	raw := make([]byte, 16*int64(count))
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("%w: %s: short manifest", ErrCorruptImage, img.Path)
	}
	if crc32.ChecksumIEEE(raw) != wantCRC {
		return nil, fmt.Errorf("%w: %s: manifest CRC mismatch", ErrCorruptImage, img.Path)
	}
	manifest := make(map[nsf.UNID]struct{}, count)
	for i := uint32(0); i < count; i++ {
		var u nsf.UNID
		copy(u[:], raw[16*i:])
		manifest[u] = struct{}{}
	}
	return manifest, nil
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("backup: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("backup: sync dir %s: %w", dir, err)
	}
	return nil
}
