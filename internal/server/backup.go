package server

import (
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/backup"
	"repro/internal/core"
	"repro/internal/nsf"
)

// Server-side backup: the admin-facing entry points the nsfadmin `backup`
// command and the dominod scheduled backup job call into, plus the
// per-database backup status the catalog task reports.

// BackupStatus records a database's most recent backup.
type BackupStatus struct {
	// USN is the update sequence number the newest image captured.
	USN uint64
	// At is when the image was taken.
	At nsf.Timestamp
	// Kind is backup.KindFull or backup.KindIncremental.
	Kind uint32
	// SetDir is the backup-set directory the image went to.
	SetDir string
}

// archiveDirFor maps a database key to its WAL-archive directory.
func (s *Server) archiveDirFor(key string) string {
	return filepath.Join(s.opts.ArchiveLogDir, filepath.FromSlash(key)+".walog")
}

// ArchiveDirFor returns the WAL-archive directory for a database path, or
// "" when log archiving is off.
func (s *Server) ArchiveDirFor(path string) string {
	key, err := cleanDBPath(path)
	if err != nil || s.opts.ArchiveLogDir == "" {
		return ""
	}
	return s.archiveDirFor(key)
}

// Paths returns the data-directory-relative paths of every open database,
// sorted — the iteration surface for the scheduled backup job.
func (s *Server) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	paths := make([]string, 0, len(s.dbs))
	for p := range s.dbs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// backupSetDirFor maps a database key to its backup-set directory under a
// backup root: the db path with path separators kept, plus ".bak".
func backupSetDirFor(root, key string) string {
	return filepath.Join(root, filepath.FromSlash(key)+".bak")
}

// BackupSetDir returns the backup-set directory a database path backs up
// into under root — the location BackupDB writes and RestoreDB reads. The
// rebalancer uses it to find a dead mate's images when re-homing.
func BackupSetDir(root, path string) (string, error) {
	key, err := cleanDBPath(path)
	if err != nil {
		return "", err
	}
	return backupSetDirFor(root, key), nil
}

// BackupDB backs up one open database into its set directory under root.
// With full=false it appends an incremental image (falling back to a full
// image when the set is empty). The result is recorded for the catalog.
func (s *Server) BackupDB(path, root string, full bool) (backup.ImageInfo, error) {
	key, err := cleanDBPath(path)
	if err != nil {
		return backup.ImageInfo{}, err
	}
	s.mu.Lock()
	db, ok := s.dbs[key]
	s.mu.Unlock()
	if !ok {
		return backup.ImageInfo{}, fmt.Errorf("server: database %s is not open", path)
	}
	setDir := backupSetDirFor(root, key)
	var img backup.ImageInfo
	if full {
		img, err = db.Backup(setDir)
	} else {
		img, err = db.BackupIncremental(setDir)
	}
	if err != nil {
		s.logf(LogBackup, "%s failed: %v", key, err)
		return img, err
	}
	s.mu.Lock()
	if s.backups == nil {
		s.backups = make(map[string]BackupStatus)
	}
	s.backups[key] = BackupStatus{
		USN:    img.EndUSN,
		At:     s.clock.Now(),
		Kind:   img.Kind,
		SetDir: setDir,
	}
	s.mu.Unlock()
	kind := "incremental"
	if img.Kind == backup.KindFull {
		kind = "full"
	}
	s.logf(LogBackup, "%s: %s image seq %d through USN %d", key, kind, img.Seq, img.EndUSN)
	return img, nil
}

// BackupAll backs up every open database under root (the scheduled job's
// body). Failures are logged and counted but do not stop the sweep; the
// first error is returned after every database has been attempted.
func (s *Server) BackupAll(root string, full bool) (int, error) {
	var firstErr error
	done := 0
	for _, path := range s.Paths() {
		if _, err := s.BackupDB(path, root, full); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		done++
	}
	return done, firstErr
}

// LastBackup returns the most recent backup status for a database path
// (zero status and false when it has never been backed up this run).
func (s *Server) LastBackup(path string) (BackupStatus, bool) {
	key, err := cleanDBPath(path)
	if err != nil {
		return BackupStatus{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.backups[key]
	return st, ok
}

// RestoreDB restores a database into the data directory from a backup set,
// then opens it. The target path must not already be open or on disk.
func (s *Server) RestoreDB(path, setDir string, ropts backup.RestoreOptions) (backup.RestoreInfo, error) {
	key, err := cleanDBPath(path)
	if err != nil {
		return backup.RestoreInfo{}, err
	}
	s.mu.Lock()
	_, open := s.dbs[key]
	s.mu.Unlock()
	if open {
		return backup.RestoreInfo{}, fmt.Errorf("server: database %s is open; restore needs a fresh path", path)
	}
	full := filepath.Join(s.opts.DataDir, filepath.FromSlash(key))
	info, err := backup.Restore(setDir, full, ropts)
	if err != nil {
		return info, err
	}
	s.logf(LogBackup, "%s: restored through USN %d (%d images, %d archived records)",
		key, info.ReachedUSN, info.Images, info.ArchiveRecords)
	_, err = s.OpenDB(key, core.Options{})
	return info, err
}
