package server

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/formula"
	"repro/internal/nsf"
	"repro/internal/wire"
)

// Bulk read handlers: paginated view reads, formula-filtered scans, and
// paged full-text search. Every page is bounded two ways — a row cap and a
// byte budget checked against the response as it encodes — so no response
// frame can approach wire.MaxFrame regardless of how large the view or
// database is. Both caps are admission-aware: a loaded server serves
// smaller pages, shedding read pressure the same way it sheds admissions.

// Page-budget floors. Even a fully saturated server serves pages of some
// useful size, so paginated readers always make progress.
const (
	minPageRows  = 16
	minPageBytes = 64 << 10
	// pageBudgetFloorPct is the availability-scaling floor: a server at
	// availability 0 still serves ~12% of its configured page size.
	pageBudgetFloorPct = 12
)

// pageBudget returns the row and byte caps for one bulk-read page. The
// configured maxima are scaled by the availability index (100 → full size,
// 0 → pageBudgetFloorPct%) and — when the request carries a deadline that
// is nearly spent — by the remaining time budget, then clamped to the
// floors; a client limit smaller than the scaled row cap wins. The
// deadline scaling means a request arriving with little time left gets a
// small page it can actually finish, instead of a large one it will abort
// halfway through encoding.
func (s *Server) pageBudget(ctx context.Context, clientLimit int) (maxRows, maxBytes int) {
	avail := s.AvailabilityIndex()
	scale := avail
	if scale < pageBudgetFloorPct {
		scale = pageBudgetFloorPct
	}
	if dl, ok := ctx.Deadline(); ok {
		// Under ref = 4x the latency target, shrink proportionally: a
		// request with half of ref left gets at most half a page.
		if ref := 4 * s.opts.TargetLatency; ref > 0 {
			rem := time.Until(dl)
			if rem < ref {
				pct := int(rem * 100 / ref)
				if pct < pageBudgetFloorPct {
					pct = pageBudgetFloorPct
				}
				if pct < scale {
					scale = pct
				}
			}
		}
	}
	maxRows = s.opts.MaxPageRows * scale / 100
	maxBytes = s.opts.MaxPageBytes * scale / 100
	if maxRows < minPageRows {
		maxRows = minPageRows
	}
	if maxBytes < minPageBytes {
		maxBytes = minPageBytes
	}
	if clientLimit > 0 && clientLimit < maxRows {
		maxRows = clientLimit
	}
	return maxRows, maxBytes
}

// Row kind bytes framing bulk-read rows, mirroring the client decoders.
const (
	rowKindEnd      byte = 0
	rowKindDoc      byte = 1
	rowKindCategory byte = 2
)

// viewRows serves one page of a rendered view: request (handle, view name,
// start, limit), response (total, start, kind-prefixed rows, more, next).
// The explicit kind byte distinguishes category headers from documents
// structurally — a document rendering zero columns can no longer be
// mistaken for a category.
func (c *connState) viewRows(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	name := d.Str()
	start := int(d.U32())
	limit := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	maxRows, maxBytes := c.s.pageBudget(ctx, limit)
	rows, total, err := hs.sess.RowsPageCtx(ctx, name, start, maxRows)
	if err != nil {
		return nil, err
	}
	resp := wire.NewResp(wire.OpViewRows, wire.StatusOK).
		U32(uint32(total)).U32(uint32(start))
	sent := 0
	for _, r := range rows {
		if sent > 0 && len(resp.Bytes()) >= maxBytes {
			break
		}
		if r.Entry == nil {
			resp.U8(rowKindCategory).Str(r.Category).U32(uint32(r.Indent))
		} else {
			resp.U8(rowKindDoc).U32(uint32(r.Indent)).UNID(r.Entry.UNID)
			resp.U32(uint32(len(r.Entry.Values)))
			for i := range r.Entry.Values {
				resp.Str(r.Entry.ColumnText(i))
			}
		}
		sent++
	}
	next := start + sent
	more := next < total
	resp.U8(rowKindEnd)
	if more {
		resp.U8(1)
	} else {
		resp.U8(0)
	}
	return resp.U32(uint32(next)), nil
}

// scanCursorVersion stamps scan cursors so a format change is detected
// rather than misparsed.
const scanCursorVersion = 1

// encodeScanCursor builds the opaque resume cursor: version, the serving
// server's name, and the last NoteID delivered. NoteIDs are per-physical-
// copy, so the cursor is only meaningful on the server that minted it.
func encodeScanCursor(server string, last nsf.NoteID) []byte {
	b := []byte{scanCursorVersion}
	b = binary.AppendUvarint(b, uint64(len(server)))
	b = append(b, server...)
	return binary.LittleEndian.AppendUint32(b, uint32(last))
}

// decodeScanCursor validates a client-supplied cursor against this server.
// An empty cursor starts a fresh scan.
func decodeScanCursor(cursor []byte, server string) (nsf.NoteID, error) {
	if len(cursor) == 0 {
		return 0, nil
	}
	if cursor[0] != scanCursorVersion {
		return 0, fmt.Errorf("bad scan cursor version %d", cursor[0])
	}
	rest := cursor[1:]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 || uint64(len(rest)-sz) < n+4 {
		return 0, fmt.Errorf("malformed scan cursor")
	}
	name := string(rest[sz : sz+int(n)])
	if name != server {
		return 0, fmt.Errorf("scan cursor belongs to server %q, not %q (note IDs are per-copy; restart the scan)", name, server)
	}
	return nsf.NoteID(binary.LittleEndian.Uint32(rest[sz+int(n):])), nil
}

// scan serves one page of an NSFSearch-style bulk read: request (handle,
// formula, limit, column names, cursor), response (kind-prefixed rows with
// typed projected values, more, cursor). The formula is compiled per page —
// compilation is cheap next to evaluating it over the page's documents.
func (c *connState) scan(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	formulaSrc := d.Str()
	limit := int(d.U32())
	ncols := d.U32()
	columns := make([]string, 0, d.Cap(ncols, 1))
	for i := uint32(0); i < ncols && d.Err() == nil; i++ {
		columns = append(columns, d.Str())
	}
	cursor := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	var sel *formula.Formula
	if formulaSrc != "" {
		if sel, err = formula.Compile(formulaSrc); err != nil {
			return nil, err
		}
	}
	after, err := decodeScanCursor(cursor, c.s.opts.Name)
	if err != nil {
		return nil, err
	}
	maxRows, maxBytes := c.s.pageBudget(ctx, limit)
	resp := wire.NewResp(wire.OpScan, wire.StatusOK)
	var last nsf.NoteID
	sent, full := 0, false
	err = hs.sess.ScanFromCtx(ctx, after, sel, func(n *nsf.Note) bool {
		if sent >= maxRows || (sent > 0 && len(resp.Bytes()) >= maxBytes) {
			// A selected document exists past this page, so More is true
			// even when the page filled exactly at the end of the store.
			full = true
			return false
		}
		resp.U8(rowKindDoc).U32(uint32(n.ID)).UNID(n.OID.UNID)
		for _, col := range columns {
			if n.Has(col) {
				resp.U8(1).Value(n.Get(col))
			} else {
				resp.U8(0)
			}
		}
		last = n.ID
		sent++
		return true
	})
	if err != nil {
		resp.Release()
		return nil, err
	}
	resp.U8(rowKindEnd)
	if full {
		resp.U8(1)
	} else {
		resp.U8(0)
	}
	return resp.Blob(encodeScanCursor(c.s.opts.Name, last)), nil
}

// search serves one page of ranked full-text hits: request (handle, query,
// start, limit, column names), response (total, start, kind-prefixed hits
// with IEEE-754 score bits and optional joined summary values, more, next).
// Scores travel as Float64bits — the earlier fixed-point encoding wrapped
// negative scores into huge positives.
func (c *connState) search(ctx context.Context, d *wire.Dec) (*wire.Enc, error) {
	hs, err := c.handle(d)
	if err != nil {
		return nil, err
	}
	query := d.Str()
	start := int(d.U32())
	limit := int(d.U32())
	ncols := d.U32()
	columns := make([]string, 0, d.Cap(ncols, 1))
	for i := uint32(0); i < ncols && d.Err() == nil; i++ {
		columns = append(columns, d.Str())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	maxRows, maxBytes := c.s.pageBudget(ctx, limit)
	resp := wire.NewResp(wire.OpSearch, wire.StatusOK)
	var total, sent int
	if len(columns) == 0 {
		hits, err := hs.sess.SearchCtx(ctx, query)
		if err != nil {
			resp.Release()
			return nil, err
		}
		total = len(hits)
		if start < 0 {
			start = 0
		}
		if start > total {
			start = total
		}
		resp.U32(uint32(total)).U32(uint32(start))
		for _, h := range hits[start:] {
			if sent >= maxRows || (sent > 0 && len(resp.Bytes()) >= maxBytes) {
				break
			}
			resp.U8(rowKindDoc).UNID(h.UNID).U64(math.Float64bits(h.Score))
			sent++
		}
	} else {
		joined, err := hs.sess.SearchJoinedCtx(ctx, query, columns)
		if err != nil {
			resp.Release()
			return nil, err
		}
		total = len(joined)
		if start < 0 {
			start = 0
		}
		if start > total {
			start = total
		}
		resp.U32(uint32(total)).U32(uint32(start))
		for _, h := range joined[start:] {
			if sent >= maxRows || (sent > 0 && len(resp.Bytes()) >= maxBytes) {
				break
			}
			resp.U8(rowKindDoc).UNID(h.UNID).U64(math.Float64bits(h.Score))
			for _, v := range h.Values {
				if v.Type == 0 {
					resp.U8(0)
				} else {
					resp.U8(1).Value(v)
				}
			}
			sent++
		}
	}
	next := start + sent
	resp.U8(rowKindEnd)
	if next < total {
		resp.U8(1)
	} else {
		resp.U8(0)
	}
	return resp.U32(uint32(next)), nil
}
