package server

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/wire"
)

func logTexts(t *testing.T, s *Server, kind string) []string {
	t.Helper()
	logDB, ok := s.DB(LogPath)
	if !ok {
		return nil
	}
	var out []string
	logDB.ScanAll(func(n *nsf.Note) bool {
		if n.Text("Form") == "LogEvent" && (kind == "" || n.Text("Kind") == kind) {
			out = append(out, n.Text("Text"))
		}
		return true
	})
	return out
}

func TestSessionLogging(t *testing.T) {
	tn := newTestNet(t)
	c, err := wire.Dial(tn.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := wire.Dial(tn.hubAddr, "ada", "wrong"); err == nil {
		t.Fatal("bad login accepted")
	}
	events := logTexts(t, tn.hub, LogSession)
	var sawOK, sawFail bool
	for _, e := range events {
		if strings.Contains(e, "ada authenticated") {
			sawOK = true
		}
		if strings.Contains(e, "failed authentication") {
			sawFail = true
		}
	}
	if !sawOK || !sawFail {
		t.Errorf("session log events = %v", events)
	}
}

func TestReplicationLogging(t *testing.T) {
	tn := newTestNet(t)
	replica := nsf.NewReplicaID()
	hubDB, _ := tn.hub.OpenDB("apps/logged.nsf", core.Options{ReplicaID: replica})
	spokeDB, _ := tn.spoke.OpenDB("apps/logged.nsf", core.Options{ReplicaID: replica})
	hubDB.ACL().Set("spoke", 4)
	spokeDB.ACL().Set("hub", 4)
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "to be logged")
	if err := hubDB.Session("admin").Create(n); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.hub.ReplicateWith("spoke", tn.spokeAddr, "apps/logged.nsf", repl.Options{}); err != nil {
		t.Fatal(err)
	}
	events := logTexts(t, tn.hub, LogReplication)
	if len(events) == 0 {
		t.Fatal("no replication log events")
	}
	if !strings.Contains(events[0], "apps/logged.nsf") {
		t.Errorf("replication event = %q", events[0])
	}
}

func TestPurgeLog(t *testing.T) {
	tn := newTestNet(t)
	tn.hub.LogEvent(LogAdmin, "old event", nil)
	cutoff := tn.hub.Clock().Now()
	tn.hub.LogEvent(LogAdmin, "new event", nil)
	purged, err := tn.hub.PurgeLog(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if purged != 1 {
		t.Errorf("purged %d, want 1", purged)
	}
	events := logTexts(t, tn.hub, LogAdmin)
	if len(events) != 1 || events[0] != "new event" {
		t.Errorf("remaining = %v", events)
	}
}

func TestLogEventExtraItems(t *testing.T) {
	tn := newTestNet(t)
	tn.hub.LogEvent(LogRouting, "delivered", map[string]string{"Recipient": "ada"})
	logDB, _ := tn.hub.DB(LogPath)
	found := false
	logDB.ScanAll(func(n *nsf.Note) bool {
		if n.Text("Kind") == LogRouting && n.Text("Recipient") == "ada" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("extra item not recorded")
	}
}
