package server

import (
	"errors"
	"fmt"
	"net"
	"testing"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/wire"
)

func batchDoc(i int) *nsf.Note {
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", fmt.Sprintf("batch-doc-%d", i))
	n.SetNumber("Seq", float64(i))
	return n
}

// TestPutBatchEndToEnd drives the pipelined batch put through the full
// client/server stack: bulk create, then create-or-update on a second
// batch reusing some UNIDs.
func TestPutBatchEndToEnd(t *testing.T) {
	net := newTestNet(t)
	db, err := net.hub.OpenDB("apps/bulk.nsf", core.Options{Title: "bulk"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Editor)

	c, err := wire.Dial(net.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/bulk.nsf")
	if err != nil {
		t.Fatal(err)
	}

	notes := make([]*nsf.Note, 50)
	for i := range notes {
		notes[i] = batchDoc(i)
	}
	stored, err := rdb.PutBatch(notes)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if stored != 50 {
		t.Fatalf("stored %d, want 50", stored)
	}
	if got := db.Stats().Notes; got != 50 {
		t.Fatalf("server has %d notes, want 50", got)
	}

	// Second batch: 10 updates (reusing UNIDs PutBatch assigned) plus 10
	// fresh creates, in one pipelined round trip.
	mixed := make([]*nsf.Note, 0, 20)
	for i := 0; i < 10; i++ {
		upd := batchDoc(i)
		upd.OID = notes[i].OID
		upd.SetText("Subject", fmt.Sprintf("updated-%d", i))
		mixed = append(mixed, upd)
	}
	for i := 50; i < 60; i++ {
		mixed = append(mixed, batchDoc(i))
	}
	stored, err = rdb.PutBatch(mixed)
	if err != nil {
		t.Fatalf("second PutBatch: %v", err)
	}
	if stored != 20 {
		t.Fatalf("stored %d, want 20", stored)
	}
	if got := db.Stats().Notes; got != 60 {
		t.Fatalf("server has %d notes, want 60 (50 + 10 creates)", got)
	}
	sess := db.Session("ada")
	n, err := sess.Get(notes[0].OID.UNID)
	if err != nil {
		t.Fatal(err)
	}
	if n.Text("Subject") != "updated-0" {
		t.Fatalf("update did not apply: Subject = %q", n.Text("Subject"))
	}
	if n.OID.Seq < 2 {
		t.Fatalf("update did not advance version: Seq = %d", n.OID.Seq)
	}

	// Empty batch is a no-op, not a protocol error.
	if stored, err := rdb.PutBatch(nil); err != nil || stored != 0 {
		t.Fatalf("empty batch: stored %d, err %v", stored, err)
	}
}

// TestPutBatchPartialFailure sends a batch whose middle document is
// rejected and requires the applied prefix to be stored and reported.
func TestPutBatchPartialFailure(t *testing.T) {
	net := newTestNet(t)
	db, err := net.hub.OpenDB("apps/partial.nsf", core.Options{Title: "partial"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Editor)
	c, err := wire.Dial(net.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/partial.nsf")
	if err != nil {
		t.Fatal(err)
	}
	notes := []*nsf.Note{batchDoc(0), batchDoc(1), nsf.NewNote(nsf.ClassView), batchDoc(3)}
	stored, err := rdb.PutBatch(notes)
	if err == nil {
		t.Fatal("batch with a design note succeeded; want a per-document rejection")
	}
	var se *wire.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a ServerError", err)
	}
	if stored != 2 {
		t.Fatalf("stored %d, want the 2 before the bad document", stored)
	}
	if got := db.Stats().Notes; got != 2 {
		t.Fatalf("server has %d notes, want 2", got)
	}
}

// rawBatchConn is a hand-driven wire connection for replay tests: it lets
// the test re-send a batch with the SAME session key and base sequence,
// which the real client only does during retry-after-reconnect.
type rawBatchConn struct {
	t      *testing.T
	conn   net.Conn
	handle uint32
}

func dialRawBatch(t *testing.T, addr, user, secret, dbPath string) *rawBatchConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := &rawBatchConn{t: t, conn: conn}
	d := r.roundTrip(wire.NewEnc(wire.OpHello).U32(2).Str(user).Str(secret), wire.OpHello)
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	d = r.roundTrip(wire.NewEnc(wire.OpOpenDB).Str(dbPath), wire.OpOpenDB)
	r.handle = d.U32()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rawBatchConn) roundTrip(req *wire.Enc, op wire.Op) *wire.Dec {
	r.t.Helper()
	if err := wire.WriteFrame(r.conn, req.Bytes()); err != nil {
		r.t.Fatal(err)
	}
	payload, err := wire.ReadFrame(r.conn)
	if err != nil {
		r.t.Fatal(err)
	}
	if len(payload) < 2 || payload[0] != byte(op)|0x80 {
		r.t.Fatalf("bad response envelope % x", payload[:2])
	}
	if payload[1] != wire.StatusOK {
		r.t.Fatalf("status %d: %s", payload[1], wire.NewDec(payload[2:]).Str())
	}
	return wire.NewDec(payload[2:])
}

// sendBatch sends notes as one OpPutBatch with an explicit session key and
// base sequence and returns (cursor, applied, skipped, ok).
func (r *rawBatchConn) sendBatch(key string, base uint64, notes []*nsf.Note) (uint64, int, int, byte) {
	r.t.Helper()
	req := wire.NewEnc(wire.OpPutBatch).U32(r.handle).Str(key).U64(base).U32(uint32(len(notes)))
	for _, n := range notes {
		req.Note(n)
	}
	d := r.roundTrip(req, wire.OpPutBatch)
	cursor := d.U64()
	applied := int(d.U32())
	skipped := int(d.U32())
	ok := d.U8()
	if ok == 0 {
		r.t.Logf("batch error: %s", d.Str())
	}
	if err := d.Err(); err != nil {
		r.t.Fatal(err)
	}
	return cursor, applied, skipped, ok
}

// TestPutBatchExactlyOnceOnResend replays batches the way a reconnecting
// client would — same session key, same base sequence — and requires the
// server's durable cursor to skip exactly the already-applied prefix, so
// no document is ever stored twice.
func TestPutBatchExactlyOnceOnResend(t *testing.T) {
	net := newTestNet(t)
	db, err := net.hub.OpenDB("apps/replay.nsf", core.Options{Title: "replay"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Editor)
	r := dialRawBatch(t, net.hubAddr, "ada", "ada-pw", "apps/replay.nsf")

	notes := make([]*nsf.Note, 5)
	for i := range notes {
		notes[i] = batchDoc(i)
	}
	cursor, applied, skipped, ok := r.sendBatch("sess-1", 1, notes)
	if cursor != 5 || applied != 5 || skipped != 0 || ok != 1 {
		t.Fatalf("first send: cursor=%d applied=%d skipped=%d ok=%d", cursor, applied, skipped, ok)
	}

	// Full replay (response was lost, client re-sent everything).
	cursor, applied, skipped, ok = r.sendBatch("sess-1", 1, notes)
	if cursor != 5 || applied != 0 || skipped != 5 || ok != 1 {
		t.Fatalf("full replay: cursor=%d applied=%d skipped=%d ok=%d", cursor, applied, skipped, ok)
	}
	if got := db.Stats().Notes; got != 5 {
		t.Fatalf("replay duplicated documents: %d notes, want 5", got)
	}

	// Overlapping replay: seqs 4-7 where 4 and 5 already applied. The
	// fresh tail (6, 7) must apply; the overlap must not.
	overlap := []*nsf.Note{notes[3], notes[4], batchDoc(6), batchDoc(7)}
	cursor, applied, skipped, ok = r.sendBatch("sess-1", 4, overlap)
	if cursor != 7 || applied != 2 || skipped != 2 || ok != 1 {
		t.Fatalf("overlap replay: cursor=%d applied=%d skipped=%d ok=%d", cursor, applied, skipped, ok)
	}
	if got := db.Stats().Notes; got != 7 {
		t.Fatalf("after overlap replay: %d notes, want 7", got)
	}

	// A different session key shares no cursor: same base applies fresh.
	other := []*nsf.Note{batchDoc(100)}
	cursor, applied, skipped, ok = r.sendBatch("sess-2", 1, other)
	if cursor != 1 || applied != 1 || skipped != 0 || ok != 1 {
		t.Fatalf("other session: cursor=%d applied=%d skipped=%d ok=%d", cursor, applied, skipped, ok)
	}

	// The versions stored for replayed documents must not have advanced:
	// exactly-once means the overlap did not re-put them.
	sess := db.Session("ada")
	n, err := sess.Get(notes[3].OID.UNID)
	if err != nil {
		t.Fatal(err)
	}
	if n.OID.Seq != 1 {
		t.Fatalf("replayed document re-applied: Seq = %d, want 1", n.OID.Seq)
	}
}

// TestPutBatchAccessDenied requires reader-level users to be refused with
// nothing stored.
func TestPutBatchAccessDenied(t *testing.T) {
	net := newTestNet(t)
	db, err := net.hub.OpenDB("apps/locked.nsf", core.Options{Title: "locked"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Reader)
	c, err := wire.Dial(net.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rdb, err := c.OpenDB("apps/locked.nsf")
	if err != nil {
		t.Fatal(err)
	}
	stored, err := rdb.PutBatch([]*nsf.Note{batchDoc(0)})
	if err == nil {
		t.Fatal("reader-level PutBatch succeeded")
	}
	if stored != 0 {
		t.Fatalf("stored %d, want 0", stored)
	}
	if got := db.Stats().Notes; got != 0 {
		t.Fatalf("server has %d notes, want 0", got)
	}
}
