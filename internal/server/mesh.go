package server

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/repl"
	"repro/internal/wire"
)

// The replication mesh: scheduled epidemic replication over configured
// links (see package mesh). The server contributes the local side — its
// database set, its admission state, and a wire dialer that resolves peer
// names through the Peers map — and the mesh runs the link schedulers.

// LogMesh is the log kind for mesh scheduler events.
const LogMesh = "mesh"

// serverNode adapts the server to mesh.Node.
type serverNode struct{ s *Server }

func (n serverNode) Name() string { return n.s.opts.Name }

// Paths lists replicable databases: everything open except the
// server-private set (mail.box, log, catalog).
func (n serverNode) Paths() []string {
	var out []string
	for _, p := range n.s.Paths() {
		if localOnlyDBs[p] {
			continue
		}
		out = append(out, p)
	}
	return out
}

func (n serverNode) Open(path string) (*core.Database, error) {
	return n.s.OpenDB(path, core.Options{})
}

func (n serverNode) Admitted() bool { return !n.s.Draining() }

// wireSession adapts a dialed wire client to mesh.Session.
type wireSession struct{ c *wire.Client }

func (ws wireSession) Open(dbPath string) (repl.Peer, error) { return ws.c.OpenDB(dbPath) }
func (ws wireSession) Close() error                          { return ws.c.Close() }

// EnableMesh starts the replication mesh scheduler. The caller supplies
// tuning (intervals, breaker thresholds); the server fills in the node,
// the dialer (peer names resolve through the Peers map), conflict-merge
// policy, and logging. Links start empty — add them from config, a
// topology file, or the admin surface. Calling EnableMesh twice is an
// error; use Mesh() to reach the running scheduler.
func (s *Server) EnableMesh(opts mesh.Options) (*mesh.Mesh, error) {
	opts.Node = serverNode{s}
	opts.Dialer = mesh.DialFunc(func(peer string) (mesh.Session, error) {
		s.mu.Lock()
		addr, ok := s.opts.Peers[strings.ToLower(peer)]
		s.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("server: no address for peer %s", peer)
		}
		// Every op in the replication session carries the peer budget, so a
		// stalled mate fails the round instead of pinning it; the scheduler's
		// backoff and breaker then take over.
		c, err := wire.DialOptions(addr, s.opts.Name, s.opts.PeerSecret,
			wire.Options{OpBudget: s.opts.PeerOpBudget})
		if err != nil {
			return nil, err
		}
		return wireSession{c}, nil
	})
	opts.Apply.FieldMerge = s.opts.FieldMerge
	if opts.Logf == nil {
		opts.Logf = func(format string, args ...any) {
			s.logf(LogMesh, format, args...)
		}
	}
	m, err := mesh.New(opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		m.Close()
		return nil, fmt.Errorf("server: closed")
	}
	if s.mesh != nil {
		return nil, fmt.Errorf("server: mesh already enabled")
	}
	s.mesh = m
	return m, nil
}

// Mesh returns the running mesh scheduler, or nil if EnableMesh was not
// called.
func (s *Server) Mesh() *mesh.Mesh {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mesh
}

// stopMesh stops the mesh scheduler and waits for in-flight rounds.
func (s *Server) stopMesh() {
	s.mu.Lock()
	m := s.mesh
	s.mesh = nil
	s.mu.Unlock()
	if m != nil {
		m.Close()
	}
}
