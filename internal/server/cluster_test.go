package server

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/nsf"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestClusterPushReplication(t *testing.T) {
	tn := newTestNet(t)
	replica := nsf.NewReplicaID()
	hubDB, err := tn.hub.OpenDB("apps/clustered.nsf", core.Options{Title: "c", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	spokeDB, err := tn.spoke.OpenDB("apps/clustered.nsf", core.Options{Title: "c", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	hubDB.ACL().Set("spoke", acl.Editor)
	spokeDB.ACL().Set("hub", acl.Editor)
	// Hub pushes events to spoke as they happen.
	tn.hub.EnableClustering(map[string]string{"spoke": tn.spokeAddr})

	sess := hubDB.Session("admin")
	var unids []nsf.UNID
	for i := 0; i < 20; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("pushed %d", i))
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
		unids = append(unids, n.OID.UNID)
	}
	waitFor(t, "cluster push of creates", func() bool {
		n := 0
		spokeDB.ScanAll(func(x *nsf.Note) bool {
			if x.Class == nsf.ClassDocument && !x.IsStub() {
				n++
			}
			return true
		})
		return n == 20
	})
	// Updates and deletes push too.
	doc, _ := sess.Get(unids[0])
	doc.SetText("Subject", "pushed update")
	if err := sess.Update(doc); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete(unids[1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cluster push of update", func() bool {
		n, err := spokeDB.RawGet(unids[0])
		return err == nil && n.Text("Subject") == "pushed update"
	})
	waitFor(t, "cluster push of delete", func() bool {
		n, err := spokeDB.RawGet(unids[1])
		return err == nil && n.IsStub()
	})
	if d := tn.hub.Dropped(); d != 0 {
		t.Errorf("cluster dropped %d events", d)
	}
}

func TestClusterDatabaseOpenedAfterEnable(t *testing.T) {
	tn := newTestNet(t)
	replica := nsf.NewReplicaID()
	// Enable clustering before the database exists on the hub.
	tn.hub.EnableClustering(map[string]string{"spoke": tn.spokeAddr})
	spokeDB, err := tn.spoke.OpenDB("apps/late.nsf", core.Options{Title: "late", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	spokeDB.ACL().Set("hub", acl.Editor)
	hubDB, err := tn.hub.OpenDB("apps/late.nsf", core.Options{Title: "late", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "late doc")
	if err := hubDB.Session("admin").Create(n); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "push on late-opened db", func() bool {
		_, err := spokeDB.RawGet(n.OID.UNID)
		return err == nil
	})
}

func TestCatalogRefresh(t *testing.T) {
	tn := newTestNet(t)
	if _, err := tn.hub.OpenDB("apps/one.nsf", core.Options{Title: "One"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.hub.OpenDB("apps/two.nsf", core.Options{Title: "Two"}); err != nil {
		t.Fatal(err)
	}
	written, err := tn.hub.RefreshCatalog()
	if err != nil {
		t.Fatalf("RefreshCatalog: %v", err)
	}
	// mail.box + ada's mail file (created lazily? not yet) + one + two.
	if written < 3 {
		t.Errorf("catalog wrote %d entries", written)
	}
	cat, ok := tn.hub.DB(CatalogPath)
	if !ok {
		t.Fatal("catalog database missing")
	}
	titles := make(map[string]string)
	cat.ScanAll(func(n *nsf.Note) bool {
		if n.Text("Form") == "Catalog" {
			titles[n.Text("Path")] = n.Text("Title")
		}
		return true
	})
	if titles["apps/one.nsf"] != "One" || titles["apps/two.nsf"] != "Two" {
		t.Errorf("catalog entries = %v", titles)
	}
	// Refresh is idempotent: same entry count, updated in place.
	before := cat.Count()
	if _, err := tn.hub.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	if cat.Count() != before {
		t.Errorf("catalog grew on refresh: %d -> %d", before, cat.Count())
	}
}
