package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/nsf"
	"repro/internal/repl"
	"repro/internal/wire"
)

// newHookServer starts a one-database server whose testPreDispatch hook is
// installed before the listener, so tests can inject delays and panics into
// the dispatch path without racing the handler goroutines.
func newHookServer(t *testing.T, opts Options, hook func(op wire.Op, budget time.Duration)) (*Server, string) {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	opts.Name = "hub"
	opts.DataDir = filepath.Join(t.TempDir(), "hub")
	opts.Directory = d
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.testPreDispatch = hook
	db, err := s.OpenDB("apps/db.nsf", core.Options{Title: "db"})
	if err != nil {
		t.Fatal(err)
	}
	db.ACL().Set("ada", acl.Editor)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return s, addr
}

// fastClientOpts fail fast: no inner retries, short timeouts. Failover tests
// want the FailoverClient, not the Client, to do the recovering.
func fastClientOpts() wire.Options {
	return wire.Options{
		MaxRetries:  -1,
		DialTimeout: 2 * time.Second,
		OpTimeout:   5 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

// TestAvailabilityProbe: the unauthenticated probe reports an idle server
// as OPEN with a high index, and a quiesced one as RESTRICTED with index 0.
func TestAvailabilityProbe(t *testing.T) {
	s, addr := newHookServer(t, Options{}, nil)
	info, err := wire.ProbeAvailability(addr, nil, 0)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if info.Restricted() || info.State != wire.StateOpen {
		t.Errorf("idle server probe = %+v, want OPEN", info)
	}
	if info.Index < 90 {
		t.Errorf("idle availability index = %d, want >= 90", info.Index)
	}
	if err := s.Quiesce(time.Second); err != nil {
		t.Fatalf("quiesce idle server: %v", err)
	}
	info, err = wire.ProbeAvailability(addr, nil, 0)
	if err != nil {
		t.Fatalf("probe while draining: %v", err)
	}
	if !info.Restricted() || info.Index != 0 {
		t.Errorf("draining probe = %+v, want RESTRICTED index 0", info)
	}
	s.Resume()
	info, err = wire.ProbeAvailability(addr, nil, 0)
	if err != nil {
		t.Fatalf("probe after resume: %v", err)
	}
	if info.Restricted() {
		t.Errorf("probe after resume = %+v, want OPEN", info)
	}
}

// TestQuiesceDrain: while draining, new sessions are refused and existing
// sessions are shed with RESTRICTED busy responses — but the in-flight
// request admitted before the drain finishes, and Quiesce waits for it.
func TestQuiesceDrain(t *testing.T) {
	hook := func(op wire.Op, _ time.Duration) {
		if op == wire.OpGetNote {
			time.Sleep(300 * time.Millisecond)
		}
	}
	s, addr := newHookServer(t, Options{}, hook)
	c1, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	db1, err := c1.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	db2, err := c2.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	doc := nsf.NewNote(nsf.ClassDocument)
	doc.SetText("Subject", "drain me")
	if err := db1.Create(doc); err != nil {
		t.Fatal(err)
	}

	inflight := make(chan error, 1)
	go func() {
		_, err := db1.Get(doc.OID.UNID) // slowed to 300ms by the hook
		inflight <- err
	}()
	waitFor(t, "the slow request to be in flight", func() bool {
		return s.Health().InFlight >= 1
	})
	quiesced := make(chan error, 1)
	go func() { quiesced <- s.Quiesce(5 * time.Second) }()
	waitFor(t, "drain mode", s.Draining)

	// New sessions are refused while draining.
	if c, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts()); err == nil {
		c.Close()
		t.Error("draining server accepted a new session")
	}
	// Existing sessions shed with a RESTRICTED busy response.
	_, err = db2.Info()
	var be *wire.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("op during drain = %v, want BusyError", err)
	}
	if be.State != wire.StateRestricted {
		t.Errorf("busy state = %d, want RESTRICTED", be.State)
	}
	// The admitted request finishes; the drain completes.
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request failed during drain: %v", err)
	}
	if err := <-quiesced; err != nil {
		t.Errorf("quiesce: %v", err)
	}
	if h := s.Health(); h.State != wire.StateRestricted || h.InFlight != 0 {
		t.Errorf("drained health = %+v", h)
	}

	s.Resume()
	if _, err := db2.Info(); err != nil {
		t.Errorf("op after resume: %v", err)
	}
	c3, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatalf("new session after resume: %v", err)
	}
	c3.Close()
}

// TestAdmissionShedsUnderOverload: with the in-flight pool saturated by
// slow requests, further requests are shed with a busy response carrying a
// depressed availability index, accepted requests stay fast, and once the
// load drains the goroutine count returns to baseline.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	hook := func(op wire.Op, _ time.Duration) {
		if op == wire.OpSearch {
			time.Sleep(100 * time.Millisecond)
		}
	}
	s, addr := newHookServer(t, Options{MaxInFlight: 2, AdmitWait: -1}, hook)

	// The probe client binds its handle before the overload starts; opens
	// are subject to admission control like everything else.
	c3, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	db3, err := c3.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	// Baseline after the first OpenDB: the server's lazily opened database
	// handle keeps its changefeed subscribers alive for the server's
	// lifetime, so measuring any earlier would count them as a leak.
	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	var heavy []*wire.Client
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		c, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		heavy = append(heavy, c)
		db, err := c.OpenDB("apps/db.nsf")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				db.Search("anything") // 100ms each, holds a slot
			}
		}()
	}
	var be *wire.BusyError
	waitFor(t, "a shed busy response", func() bool {
		_, err := db3.Info()
		return errors.As(err, &be)
	})
	if be.Availability >= 100 {
		t.Errorf("shed availability index = %d, want < 100", be.Availability)
	}
	if h := s.Health(); h.Sheds == 0 {
		t.Errorf("health = %+v, want Sheds > 0", h)
	}
	// Accepted requests stay bounded: the pool caps concurrency, so an
	// admitted Info never queues behind the whole overload.
	var worst time.Duration
	for i := 0; i < 50; i++ {
		start := time.Now()
		if _, err := db3.Info(); err == nil {
			if d := time.Since(start); d > worst {
				worst = d
			}
		}
	}
	if worst > time.Second {
		t.Errorf("accepted request took %v under overload, want bounded", worst)
	}

	close(stop)
	wg.Wait()
	waitFor(t, "in-flight to drain", func() bool { return s.Health().InFlight == 0 })
	if _, err := db3.Info(); err != nil {
		t.Errorf("request after overload drained: %v", err)
	}
	for _, c := range heavy {
		c.Close()
	}
	c3.Close()
	waitFor(t, "goroutines to return to baseline", func() bool {
		return runtime.NumGoroutine() <= baseline+2
	})
}

// TestPanicRecoveryClosesOnlyThatConn: a panicking handler is counted and
// logged, its connection dies with no response written, and every other
// session — and future sessions — keep working.
func TestPanicRecoveryClosesOnlyThatConn(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	hook := func(op wire.Op, _ time.Duration) {
		if op == wire.OpDeleteNote && armed.CompareAndSwap(true, false) {
			panic("injected handler panic")
		}
	}
	s, addr := newHookServer(t, Options{}, hook)
	c1, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	db1, err := c1.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	db2, err := c2.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}

	if err := db1.Delete(nsf.UNID{1, 2, 3}); err == nil {
		t.Fatal("panicked handler still produced a response")
	}
	if h := s.Health(); h.Panics != 1 {
		t.Errorf("health panics = %d, want 1", h.Panics)
	}
	if h := s.Health(); h.InFlight != 0 {
		t.Errorf("panicked request leaked an admission slot: in-flight %d", h.InFlight)
	}
	// The bystander connection is untouched, and the server accepts new ones.
	if _, err := db2.Info(); err != nil {
		t.Errorf("bystander connection broken by another conn's panic: %v", err)
	}
	checkServes(t, addr)
}

// TestClusterDropSignalsCatchUp: a push to a dead mate is dropped, counted
// per mate, surfaced in the monitor report, and fires the OnClusterDrop
// callback with the mate and database — the signal dominod turns into an
// immediate catch-up replication.
func TestClusterDropSignalsCatchUp(t *testing.T) {
	s, _ := newHookServer(t, Options{}, nil)
	type drop struct{ mate, dbPath string }
	drops := make(chan drop, 64)
	s.OnClusterDrop(func(mate, dbPath string) {
		select {
		case drops <- drop{mate, dbPath}:
		default:
		}
	})
	s.EnableClustering(map[string]string{"ghost": "127.0.0.1:1"}) // unreachable

	db, _ := s.DB("apps/db.nsf")
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "undeliverable")
	if err := db.Session("admin").Create(n); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-drops:
		if d.mate != "ghost" || d.dbPath != "apps/db.nsf" {
			t.Errorf("drop callback got (%q, %q)", d.mate, d.dbPath)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drop to a dead mate never fired OnClusterDrop")
	}
	waitFor(t, "the drop counter", func() bool { return s.DroppedByMate()["ghost"] >= 1 })
	report := s.MonitorReport()
	last := report[len(report)-1]
	if want := "dropped[ghost]="; !contains(last, want) {
		t.Errorf("monitor report %q missing %q", last, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestCloseRacesInflightAndClusterPush: Close while requests are mid-flight
// and cluster pushers are retrying against a dead mate must terminate
// promptly with no deadlock or leaked goroutine (run under -race in the
// stress target).
func TestCloseRacesInflightAndClusterPush(t *testing.T) {
	hook := func(op wire.Op, _ time.Duration) { time.Sleep(2 * time.Millisecond) }
	s, addr := newHookServer(t, Options{MaxInFlight: 8}, hook)
	s.EnableClustering(map[string]string{"ghost": "127.0.0.1:1"}) // every push fails

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
			if err != nil {
				return
			}
			defer c.Close()
			db, err := c.OpenDB("apps/db.nsf")
			if err != nil {
				return
			}
			for j := 0; ; j++ {
				n := nsf.NewNote(nsf.ClassDocument)
				n.SetText("Subject", fmt.Sprintf("racing %d", j))
				if err := db.Create(n); err != nil {
					return
				}
				if _, err := db.Info(); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("Close deadlocked against in-flight requests / cluster pushers")
	}
	wg.Wait()
}

// failoverPair is two cluster mates sharing a replica of apps/db.nsf. The
// servers are built but not started, so tests can install dispatch hooks
// first; call start before dialing.
type failoverPair struct {
	dir                *dir.Directory
	hub, spoke         *Server
	hubDB, spokeDB     *core.Database
	hubAddr, spokeAddr string
	hubDataDir         string
	replica            nsf.ReplicaID
}

func newFailoverPair(t *testing.T) *failoverPair {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	d.AddUser(dir.User{Name: "hub", Secret: "hub-secret"})
	d.AddUser(dir.User{Name: "spoke", Secret: "spoke-secret"})
	p := &failoverPair{dir: d, replica: nsf.NewReplicaID()}
	p.hubDataDir = filepath.Join(t.TempDir(), "hub")
	var err error
	p.hub, err = New(Options{Name: "hub", DataDir: p.hubDataDir, Directory: d, PeerSecret: "hub-secret"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.hub.Close() })
	p.spoke, err = New(Options{Name: "spoke", DataDir: filepath.Join(t.TempDir(), "spoke"), Directory: d, PeerSecret: "spoke-secret"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.spoke.Close() })
	p.hubDB, err = p.hub.OpenDB("apps/db.nsf", core.Options{Title: "db", ReplicaID: p.replica})
	if err != nil {
		t.Fatal(err)
	}
	p.spokeDB, err = p.spoke.OpenDB("apps/db.nsf", core.Options{Title: "db", ReplicaID: p.replica})
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*core.Database{p.hubDB, p.spokeDB} {
		db.ACL().Set("ada", acl.Editor)
		db.ACL().Set("hub", acl.Editor)
		db.ACL().Set("spoke", acl.Editor)
	}
	return p
}

func (p *failoverPair) start(t *testing.T) {
	t.Helper()
	var err error
	p.hubAddr, err = p.hub.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.spokeAddr, err = p.spoke.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
}

// TestFailoverKillMidNotesSession is the headline robustness claim: a mate
// dies in the middle of a client's write workload; the FailoverClient lands
// on the survivor and finishes, and after catch-up replication from the dead
// mate's surviving data directory, every acknowledged write exists on the
// survivor — zero lost acked writes.
func TestFailoverKillMidNotesSession(t *testing.T) {
	const killAt, total = 15, 40
	p := newFailoverPair(t)
	var creates atomic.Int32
	var once sync.Once
	hubClosed := make(chan struct{})
	p.hub.testPreDispatch = func(op wire.Op, _ time.Duration) {
		if op == wire.OpCreateNote && creates.Add(1) == killAt {
			once.Do(func() {
				go func() {
					p.hub.Close()
					close(hubClosed)
				}()
				// Hold this handler until Close severs the connection, so
				// the response (the ack) is provably lost mid-round-trip.
				time.Sleep(200 * time.Millisecond)
			})
		}
	}
	p.start(t)
	p.hub.EnableClustering(map[string]string{"spoke": p.spokeAddr})

	fc, err := wire.DialFailover([]string{p.hubAddr, p.spokeAddr}, "ada", "ada-pw",
		wire.FailoverOptions{Client: fastClientOpts(), Cooldown: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}

	var acked []nsf.UNID
	for i := 0; i < total; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc %d", i))
		if err := db.Create(n); err != nil {
			// Ambiguous: the mate died mid-round-trip, so the create is not
			// acknowledged. It only counts once a live mate confirms it —
			// re-issue if the survivor lacks it.
			if _, gerr := db.Get(n.OID.UNID); gerr != nil {
				var se *wire.ServerError
				if !errors.As(gerr, &se) {
					t.Fatalf("recheck after ambiguous create: %v", gerr)
				}
				if cerr := db.Create(n); cerr != nil {
					t.Fatalf("re-issue on survivor: %v", cerr)
				}
			}
		}
		acked = append(acked, n.OID.UNID)
	}
	if cur, ok := fc.Current(); !ok || cur != p.spokeAddr {
		t.Errorf("connected mate = %q, want survivor %q", cur, p.spokeAddr)
	}
	if st := fc.Stats(); st.Failovers == 0 {
		t.Errorf("stats = %+v, want Failovers > 0", st)
	}

	// Catch-up: the dead mate's data directory survived its death. Reopen
	// it and replicate into the survivor — exactly what the scheduled
	// replicator does when the node restarts.
	select {
	case <-hubClosed:
	case <-time.After(15 * time.Second):
		t.Fatal("hub close never completed")
	}
	reopened, err := core.Open(filepath.Join(p.hubDataDir, "apps", "db.nsf"), core.Options{})
	if err != nil {
		t.Fatalf("reopen dead mate's database: %v", err)
	}
	defer reopened.Close()
	if _, err := repl.Replicate(reopened, &repl.LocalPeer{DB: p.spokeDB}, repl.Options{PeerName: "catchup"}); err != nil {
		t.Fatalf("catch-up replication: %v", err)
	}
	lost := 0
	for _, u := range acked {
		if n, err := p.spokeDB.RawGet(u); err != nil || n.IsStub() {
			lost++
		}
	}
	if lost != 0 {
		t.Fatalf("%d of %d acknowledged writes missing on the survivor", lost, len(acked))
	}
}

// TestFailoverKillMidReplicationSession: a replication session started
// against one mate survives that mate's death — every Peer operation is
// idempotent, so the session rides over to the survivor and converges.
func TestFailoverKillMidReplicationSession(t *testing.T) {
	const docs = 40
	p := newFailoverPair(t)
	var fetches atomic.Int32
	var once sync.Once
	hubClosed := make(chan struct{})
	p.hub.testPreDispatch = func(op wire.Op, _ time.Duration) {
		if op == wire.OpFetch && fetches.Add(1) == 2 {
			once.Do(func() {
				go func() {
					p.hub.Close()
					close(hubClosed)
				}()
				time.Sleep(200 * time.Millisecond)
			})
		}
	}
	p.start(t)

	// Seed both mates with identical content before the session.
	sess := p.hubDB.Session("admin")
	for i := 0; i < docs; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("seeded %d", i))
		if err := sess.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := repl.Replicate(p.hubDB, &repl.LocalPeer{DB: p.spokeDB}, repl.Options{PeerName: "seed"}); err != nil {
		t.Fatal(err)
	}

	clientDB, err := core.Open(filepath.Join(t.TempDir(), "client.nsf"), core.Options{ReplicaID: p.replica})
	if err != nil {
		t.Fatal(err)
	}
	defer clientDB.Close()
	fc, err := wire.DialFailover([]string{p.hubAddr, p.spokeAddr}, "ada", "ada-pw",
		wire.FailoverOptions{Client: fastClientOpts(), Cooldown: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	fdb, err := fc.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	// Small batches so the kill lands mid-pull, not before or after it.
	if _, err := repl.Replicate(clientDB, fdb, repl.Options{PeerName: "cluster", BatchSize: 5}); err != nil {
		t.Fatalf("replication session across mate death: %v", err)
	}
	got := 0
	clientDB.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() {
			got++
		}
		return true
	})
	if got != docs {
		t.Errorf("client pulled %d documents, want %d", got, docs)
	}
	if st := fc.Stats(); st.Failovers == 0 {
		t.Errorf("stats = %+v, want Failovers > 0", st)
	}
	select {
	case <-hubClosed:
	case <-time.After(15 * time.Second):
		t.Fatal("hub close never completed")
	}
}
