package server

import (
	"strings"

	"repro/internal/wire"
)

// Placement enforcement: the directory maps each database to its home mates
// (dir.Placement); a mate that does not home a database refuses to serve it
// with a StatusWrongMate redirect carrying the current generation and home
// set. OpResolve answers placement queries pre-auth (like OpAvailability) so
// failover clients and operator tooling can locate databases without a
// session, even while the server drains.

// wrongMateError is the internal form of a placement redirect; dispatch
// converts it into a StatusWrongMate response instead of StatusError.
type wrongMateError struct {
	path     string
	gen      uint64
	replicas int
	homes    []wire.HomeAddr
}

func (e *wrongMateError) Error() string {
	names := make([]string, 0, len(e.homes))
	for _, h := range e.homes {
		names = append(names, h.Name)
	}
	return "not a home mate for " + e.path + " (homes: " + strings.Join(names, ",") + ")"
}

// resp renders the redirect for op, body-compatible with an OpResolve record.
func (e *wrongMateError) resp(op wire.Op) *wire.Enc {
	resp := wire.NewResp(op, wire.StatusWrongMate)
	encResolveRecord(resp, e.path, e.gen, e.replicas, e.homes)
	return resp
}

// encResolveRecord appends one placement record in the OpResolve encoding.
func encResolveRecord(resp *wire.Enc, path string, gen uint64, replicas int, homes []wire.HomeAddr) {
	resp.Str(path).U64(gen).U32(uint32(replicas)).U32(uint32(len(homes)))
	for _, h := range homes {
		resp.Str(h.Name).Str(h.Addr)
	}
}

// AdvertiseAddr is the address this server tells clients to reach it on:
// Options.AdvertiseAddr if set, otherwise the bound listener address.
func (s *Server) AdvertiseAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.advertiseLocked()
}

func (s *Server) advertiseLocked() string {
	if s.opts.AdvertiseAddr != "" {
		return s.opts.AdvertiseAddr
	}
	if s.ln != nil {
		return s.ln.Addr().String()
	}
	return ""
}

// mateAddr maps a cluster-mate name to its wire address: self resolves to
// the advertise address, peers through the peer map. Unknown mates yield "".
func (s *Server) mateAddr(name string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if strings.EqualFold(name, s.opts.Name) {
		return s.advertiseLocked()
	}
	return s.opts.Peers[strings.ToLower(name)]
}

// homeAddrs resolves a placement home set to (name, addr) pairs.
func (s *Server) homeAddrs(home []string) []wire.HomeAddr {
	out := make([]wire.HomeAddr, 0, len(home))
	for _, name := range home {
		out = append(out, wire.HomeAddr{Name: name, Addr: s.mateAddr(name)})
	}
	return out
}

// checkHomed returns a wrongMateError when a placement record exists for
// path and this server is not in its home set. No record means unplaced:
// every mate serves it (the pre-placement behavior). Server-private
// databases are never placed.
func (s *Server) checkHomed(cleanPath string) error {
	if localOnlyDBs[cleanPath] {
		return nil
	}
	p, ok := s.opts.Directory.GetPlacement(cleanPath)
	if !ok || p.HasHome(s.opts.Name) {
		return nil
	}
	return &wrongMateError{
		path:     cleanPath,
		gen:      p.Generation,
		replicas: p.Replicas,
		homes:    s.homeAddrs(p.Home),
	}
}

// resolveResp answers OpResolve: one record for a named path, every record
// for the empty path. Unplaced databases answer generation 0 with no homes
// ("served anywhere") rather than erroring, so clients need no special case.
func (s *Server) resolveResp(d *wire.Dec) *wire.Enc {
	path := d.Str()
	if err := d.Err(); err != nil {
		return fail(wire.OpResolve, err)
	}
	if strings.TrimSpace(path) == "" {
		ps := s.opts.Directory.Placements()
		resp := wire.NewResp(wire.OpResolve, wire.StatusOK).U32(uint32(len(ps)))
		for _, p := range ps {
			encResolveRecord(resp, p.Path, p.Generation, p.Replicas, s.homeAddrs(p.Home))
		}
		return resp
	}
	key, err := cleanDBPath(path)
	if err != nil {
		return fail(wire.OpResolve, err)
	}
	resp := wire.NewResp(wire.OpResolve, wire.StatusOK).U32(1)
	if p, ok := s.opts.Directory.GetPlacement(key); ok {
		encResolveRecord(resp, p.Path, p.Generation, p.Replicas, s.homeAddrs(p.Home))
	} else {
		encResolveRecord(resp, key, 0, 0, nil)
	}
	return resp
}
