package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nsf"
)

// The server log (log.nsf): Domino records sessions, replication runs, and
// routing activity as documents in a log database, browsable like any
// other database. Logging is best-effort: a failing log write never fails
// the operation being logged.

// LogPath is the log database's path in the data directory.
const LogPath = "log.nsf"

// Log event kinds.
const (
	LogSession     = "session"
	LogReplication = "replication"
	LogRouting     = "routing"
	LogAdmin       = "admin"
	LogBackup      = "backup"
)

// LogEvent appends an event document to log.nsf. Items beyond the standard
// Form/Kind/Text/Time fields can be supplied via extra (name -> text).
func (s *Server) LogEvent(kind, text string, extra map[string]string) {
	logDB, err := s.OpenDB(LogPath, core.Options{Title: "Server Log"})
	if err != nil {
		return // never let logging break the server
	}
	n := nsf.NewNote(nsf.ClassDocument)
	now := s.clock.Now()
	n.OID.Seq = 1
	n.OID.SeqTime = now
	n.Created = now
	n.SetWithFlags("Form", nsf.TextValue("LogEvent"), nsf.FlagSummary)
	n.SetWithFlags("Kind", nsf.TextValue(kind), nsf.FlagSummary)
	n.SetWithFlags("Server", nsf.TextValue(s.opts.Name), nsf.FlagSummary)
	n.SetWithFlags("Text", nsf.TextValue(text), nsf.FlagSummary)
	n.SetTime("Time", now)
	for k, v := range extra {
		n.SetText(k, v)
	}
	_ = logDB.RawPut(n)
}

// PurgeLog removes log events older than cutoff, returning how many were
// dropped (hard deletes — log entries do not leave stubs).
func (s *Server) PurgeLog(cutoff nsf.Timestamp) (int, error) {
	logDB, err := s.OpenDB(LogPath, core.Options{Title: "Server Log"})
	if err != nil {
		return 0, err
	}
	var victims []nsf.UNID
	err = logDB.ScanAll(func(n *nsf.Note) bool {
		if n.Class == nsf.ClassDocument && !n.IsStub() &&
			n.Text("Form") == "LogEvent" && n.Time("Time") < cutoff {
			victims = append(victims, n.OID.UNID)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	for _, u := range victims {
		if err := logDB.RawDelete(u); err != nil {
			return 0, err
		}
	}
	return len(victims), nil
}

// logf formats and records an event.
func (s *Server) logf(kind, format string, args ...any) {
	s.LogEvent(kind, fmt.Sprintf(format, args...), nil)
}
