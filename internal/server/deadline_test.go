package server

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/nsf"
	"repro/internal/wire"
)

// TestBudgetExpiryReleasesSlotAndStaysResponsive: a budgeted scan whose
// deadline dies inside the server must come back as a typed deadline error
// (not a hang, not a generic failure), release its admission slot, and
// leave the server immediately serviceable — a write right behind it
// completes promptly and the health counters record the expiry.
func TestBudgetExpiryReleasesSlotAndStaysResponsive(t *testing.T) {
	// The hook burns any budgeted scan's entire budget before dispatch, so
	// the server's own deadline check fires deterministically.
	s, addr := newHookServer(t, Options{}, func(op wire.Op, budget time.Duration) {
		if op == wire.OpScan && budget > 0 {
			time.Sleep(budget + 20*time.Millisecond)
		}
	})

	opts := fastClientOpts()
	opts.OpBudget = 50 * time.Millisecond
	c, err := wire.DialOptions(addr, "ada", "ada-pw", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc %d", i))
		if err := db.Create(n); err != nil {
			t.Fatal(err)
		}
	}

	_, err = db.ScanPage(wire.ScanOptions{}, nil)
	var de *wire.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("budget-starved scan returned %v, want DeadlineError", err)
	}
	if !de.Remote {
		t.Errorf("DeadlineError = %+v, want Remote (the server's verdict)", de)
	}

	// The slot must be free and the server responsive: an unbudgeted
	// client completes a write promptly.
	c2, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	db2, err := c2.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "after-expiry")
	if err := db2.Create(n); err != nil {
		t.Fatalf("write after deadline expiry: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("write after expiry took %v — slot not released promptly", elapsed)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		h := s.Health()
		if h.InFlight == 0 {
			if h.DeadlineSheds+h.DeadlineAborts == 0 {
				t.Errorf("health = %+v, want a deadline shed or abort recorded", h)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight count stuck at %d after deadline expiry", h.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadlineAwareAdmissionShedsDoomedRequests: a request whose budget
// cannot survive the admission queue is refused up front (DeadlineRefused,
// never executed) instead of queueing to die — and the refusal is counted
// separately from load sheds.
func TestDeadlineAwareAdmissionShedsDoomedRequests(t *testing.T) {
	block := make(chan struct{})
	// One execution slot, held by a slow unbudgeted op; the budgeted op
	// behind it cannot survive the queue estimate.
	s, addr := newHookServer(t, Options{MaxInFlight: 1, AdmitWait: 300 * time.Millisecond},
		func(op wire.Op, budget time.Duration) {
			if op == wire.OpDBInfo && budget == 0 {
				<-block
			}
		})

	slow, err := wire.DialOptions(addr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	sdb, err := slow.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	// Open the budgeted client's handle while the slot is still free — only
	// the Info below should contend with the parked op.
	opts := fastClientOpts()
	opts.OpBudget = 30 * time.Millisecond // cannot survive a 300ms admit wait
	c, err := wire.DialOptions(addr, "ada", "ada-pw", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	db, err := c.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}

	infoDone := make(chan struct{})
	go func() { sdb.Info(); close(infoDone) }() // parks in the hook, holding the slot

	// Wait until the slot is actually held.
	for i := 0; s.admission.inflight.Load() == 0 && i < 400; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	_, err = db.Info()
	var de *wire.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("doomed request returned %v, want DeadlineError", err)
	}
	if de.Ambiguous {
		t.Errorf("DeadlineError = %+v: a pre-execution refusal must be unambiguous", de)
	}
	if sheds := s.admission.deadlineSheds.Load(); sheds == 0 {
		t.Error("deadline shed not counted")
	}
	close(block) // release the parked op before tearing down
	<-infoDone
}
