package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nsf"
	"repro/internal/wire"
)

// The event monitor: Domino's event task watches database activity and
// writes threshold events to the log. Here the monitor consumes each
// database's changefeed (via OnChange) rather than hooking the writer, so
// a slow log write can only ever delay the monitor's own feed cursor —
// never a save. Server-private databases (mail.box, log.nsf, catalog.nsf)
// are not monitored; monitoring the log would feed back into itself.

// LogMonitor is the log kind for activity-threshold events.
const LogMonitor = "monitor"

// monitorState tracks per-database activity counters.
type monitorState struct {
	mu        sync.Mutex
	enabled   bool
	threshold int
	hooked    map[string]bool
	counts    map[string]uint64 // total changes observed per db path
	pending   map[string]uint64 // changes since the last threshold event
}

// EnableMonitor starts the event monitor on every database the server has
// opened or will open. Each time a monitored database accumulates
// threshold changes, the monitor writes a LogMonitor event to log.nsf with
// the database path, the running total, and the database's changefeed
// position. threshold <= 0 uses 100.
func (s *Server) EnableMonitor(threshold int) {
	if threshold <= 0 {
		threshold = 100
	}
	s.monitor.mu.Lock()
	s.monitor.enabled = true
	s.monitor.threshold = threshold
	if s.monitor.hooked == nil {
		s.monitor.hooked = make(map[string]bool)
		s.monitor.counts = make(map[string]uint64)
		s.monitor.pending = make(map[string]uint64)
	}
	s.monitor.mu.Unlock()
	s.mu.Lock()
	dbs := make(map[string]*core.Database, len(s.dbs))
	for path, db := range s.dbs {
		dbs[path] = db
	}
	s.mu.Unlock()
	for path, db := range dbs {
		s.hookMonitorDB(path, db)
	}
}

// hookMonitorDB subscribes the monitor to one database's changefeed.
func (s *Server) hookMonitorDB(path string, db *core.Database) {
	if localOnlyDBs[path] {
		return
	}
	m := &s.monitor
	m.mu.Lock()
	if !m.enabled || m.hooked[path] {
		m.mu.Unlock()
		return
	}
	m.hooked[path] = true
	m.mu.Unlock()
	db.OnChange(func(n *nsf.Note) {
		m.mu.Lock()
		m.counts[path]++
		m.pending[path]++
		total := m.counts[path]
		fire := m.pending[path] >= uint64(m.threshold)
		if fire {
			m.pending[path] = 0
		}
		m.mu.Unlock()
		if fire {
			fs := db.Stats().Feed
			s.LogEvent(LogMonitor,
				fmt.Sprintf("%s: %d changes (feed usn=%d, max lag=%d)", path, total, fs.LastUSN, fs.MaxLag),
				map[string]string{"Path": path})
		}
	})
}

// ActivityCounts returns total observed changes per monitored database.
func (s *Server) ActivityCounts() map[string]uint64 {
	s.monitor.mu.Lock()
	defer s.monitor.mu.Unlock()
	out := make(map[string]uint64, len(s.monitor.counts))
	for path, c := range s.monitor.counts {
		out[path] = c
	}
	return out
}

// MonitorReport renders one line per monitored database, sorted by path,
// followed by a server health line (availability, admission, panic and
// cluster-drop counters) — an administrative snapshot of activity, feed
// health, and survivability.
func (s *Server) MonitorReport() []string {
	counts := s.ActivityCounts()
	paths := make([]string, 0, len(counts))
	for p := range counts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]string, 0, len(paths)+1)
	for _, p := range paths {
		line := fmt.Sprintf("%s: %d changes", p, counts[p])
		if db, ok := s.DB(p); ok {
			fs := db.Stats().Feed
			line += fmt.Sprintf(", feed usn=%d lag=%d", fs.LastUSN, fs.MaxLag)
		}
		out = append(out, line)
	}
	h := s.Health()
	state := "OPEN"
	if h.State == wire.StateRestricted {
		state = "RESTRICTED"
	}
	health := fmt.Sprintf("server: availability=%d state=%s inflight=%d queued=%d sheds=%d panics=%d dispatched=%d deadline-sheds=%d deadline-aborts=%d",
		h.Index, state, h.InFlight, h.Queued, h.Sheds, h.Panics,
		h.Dispatched, h.DeadlineSheds, h.DeadlineAborts)
	for _, mateName := range s.ClusterMates() {
		health += fmt.Sprintf(" dropped[%s]=%d", mateName, s.DroppedByMate()[mateName])
	}
	out = append(out, health)
	// Mesh links: one line per configured replication link with its live
	// counters, so the report shows each edge's health at a glance.
	if m := s.Mesh(); m != nil {
		for _, st := range m.Status() {
			line := fmt.Sprintf("mesh %s -> %s: %s %s rounds=%d fail=%d in=%d out=%d lag=%s",
				st.Name, st.Peer, st.Class, st.Direction,
				st.Rounds, st.Failures, st.NotesIn, st.NotesOut, st.Lag.Round(time.Millisecond))
			if st.BreakerOpen {
				line += " BREAKER-OPEN"
			}
			if st.Note != "" {
				line += " (" + st.Note + ")"
			}
			out = append(out, line)
		}
	}
	// Placement records, so the report shows where each database routes.
	for _, p := range s.opts.Directory.Placements() {
		homed := ""
		if !p.HasHome(s.opts.Name) {
			homed = " (not homed here)"
		}
		out = append(out, fmt.Sprintf("placement %s: gen=%d replicas=%d home=%s%s",
			p.Path, p.Generation, p.Replicas, strings.Join(p.Home, ","), homed))
	}
	return out
}
