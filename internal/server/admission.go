package server

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Admission control and the server availability index.
//
// Domino computes a per-server "availability index" from the expansion of
// response times under load and uses it two ways: clients in a cluster
// open sessions on the mate with the highest index, and a server below its
// floor sheds work with "server busy" so the client redirects. We
// reproduce both: a bounded pool of in-flight requests (waiters queue
// briefly, then are shed with StatusBusy carrying the index), a live index
// computed from in-flight occupancy, queue depth, and a latency EWMA, and
// a RESTRICTED drain state (Quiesce) that refuses new work while letting
// in-flight requests finish and cluster pushers flush.

// LogHealth is the log kind for admission/availability events.
const LogHealth = "health"

// admissionState is the server's live load picture. All counters are
// atomic: the hot path (admit/release around every dispatched request)
// never takes a lock.
type admissionState struct {
	// sem bounds in-flight requests; nil means admission is disabled.
	sem       chan struct{}
	maxActive int
	admitWait time.Duration
	targetLat time.Duration

	inflight atomic.Int64
	queued   atomic.Int64
	sheds    atomic.Uint64
	panics   atomic.Uint64
	// ewmaUs is the per-request dispatch latency EWMA in microseconds.
	ewmaUs atomic.Uint64
	// dispatched counts requests that entered execution (admitted past
	// admission control); with deadline budgets in play, dispatched minus
	// client-acknowledged results is the server's wasted work.
	dispatched atomic.Uint64
	// deadlineSheds counts requests refused BEFORE execution because their
	// carried budget could not survive the queue (DeadlineRefused);
	// deadlineAborts counts ops cancelled mid-execution (DeadlineAborted).
	deadlineSheds  atomic.Uint64
	deadlineAborts atomic.Uint64
}

// admit verdicts.
type admitVerdict int

const (
	// admitOK: an execution slot is held; the caller must release it.
	admitOK admitVerdict = iota
	// admitShed: pool full past the admit wait — classic StatusBusy.
	admitShed
	// admitDeadline: the request's own deadline budget cannot survive the
	// queue; it was refused before executing (DeadlineRefused). Shedding
	// it immediately beats queueing it to die.
	admitDeadline
)

func (a *admissionState) init(opts Options) {
	a.maxActive = opts.MaxInFlight
	a.admitWait = opts.AdmitWait
	a.targetLat = opts.TargetLatency
	if a.maxActive > 0 {
		a.sem = make(chan struct{}, a.maxActive)
	}
}

// admit claims an execution slot, waiting up to admitWait when the pool is
// full. budget is the request's remaining deadline budget (0: none): a
// request that could not survive the expected queue wait is refused
// immediately (admitDeadline) instead of queued to die, and a budgeted
// request never waits past its own budget.
func (a *admissionState) admit(budget time.Duration) admitVerdict {
	if a.sem == nil {
		a.inflight.Add(1)
		return admitOK
	}
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return admitOK
	default:
	}
	if a.admitWait <= 0 {
		a.sheds.Add(1)
		return admitShed
	}
	wait := a.admitWait
	if budget > 0 {
		if budget < a.queueEstimate() {
			a.deadlineSheds.Add(1)
			return admitDeadline
		}
		if budget < wait {
			wait = budget
		}
	}
	a.queued.Add(1)
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		a.queued.Add(-1)
		a.inflight.Add(1)
		return admitOK
	case <-t.C:
		a.queued.Add(-1)
		if wait < a.admitWait {
			// The budget-capped timer fired: the request's remaining time
			// is spent, which is a deadline refusal, not a load shed.
			a.deadlineSheds.Add(1)
			return admitDeadline
		}
		a.sheds.Add(1)
		return admitShed
	}
}

// queueEstimate guesses how long a newly queued request waits for a slot:
// the latency EWMA scaled up by queue depth, floored at a quarter of the
// admit wait (an optimistic server still should not promise instant slots
// when its pool is full) and capped at the admit wait itself (past that
// the request would be shed anyway).
func (a *admissionState) queueEstimate() time.Duration {
	est := time.Duration(a.ewmaUs.Load()) * time.Microsecond
	if a.maxActive > 0 {
		est = est * time.Duration(a.queued.Load()+int64(a.maxActive)) / time.Duration(a.maxActive)
	}
	if floor := a.admitWait / 4; est < floor {
		est = floor
	}
	if est > a.admitWait {
		est = a.admitWait
	}
	return est
}

// release returns the slot and folds the request's dispatch time into the
// latency EWMA (new = 7/8 old + 1/8 sample).
func (a *admissionState) release(elapsed time.Duration) {
	a.inflight.Add(-1)
	if a.sem != nil {
		<-a.sem
	}
	us := uint64(elapsed.Microseconds())
	for {
		old := a.ewmaUs.Load()
		nu := us
		if old != 0 {
			nu = (old*7 + us) / 8
		}
		if a.ewmaUs.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Health is a snapshot of the server's availability state.
type Health struct {
	// State is wire.StateOpen or wire.StateRestricted.
	State byte
	// Index is the availability index, 0 (saturated/draining) .. 100 (idle).
	Index int
	// InFlight and Queued are current request counts.
	InFlight int
	Queued   int
	// Latency is the dispatch-latency EWMA.
	Latency time.Duration
	// Sheds counts requests refused by admission control.
	Sheds uint64
	// Panics counts handler panics recovered (each closed one connection).
	Panics uint64
	// Dispatched counts requests that entered execution. With budgets in
	// play, Dispatched minus client-acked results is wasted work.
	Dispatched uint64
	// DeadlineSheds counts budget-carrying requests refused before
	// execution; DeadlineAborts counts ops cancelled mid-execution.
	DeadlineSheds  uint64
	DeadlineAborts uint64
}

// Health returns the server's current availability snapshot.
func (s *Server) Health() Health {
	a := &s.admission
	h := Health{
		State:          wire.StateOpen,
		Index:          s.AvailabilityIndex(),
		InFlight:       int(a.inflight.Load()),
		Queued:         int(a.queued.Load()),
		Latency:        time.Duration(a.ewmaUs.Load()) * time.Microsecond,
		Sheds:          a.sheds.Load(),
		Panics:         a.panics.Load(),
		Dispatched:     a.dispatched.Load(),
		DeadlineSheds:  a.deadlineSheds.Load(),
		DeadlineAborts: a.deadlineAborts.Load(),
	}
	if s.draining.Load() {
		h.State = wire.StateRestricted
	}
	return h
}

// AvailabilityIndex computes the Domino-style server availability index:
// 100 for an idle server, falling toward 0 as the in-flight pool fills,
// the admission queue grows, and per-request latency expands past the
// configured target. A draining server always reports 0 — the strongest
// possible "go elsewhere" signal.
func (s *Server) AvailabilityIndex() int {
	if s.draining.Load() {
		return 0
	}
	a := &s.admission
	var loadFrac, queueFrac float64
	if a.maxActive > 0 {
		loadFrac = float64(a.inflight.Load()) / float64(a.maxActive)
		queueFrac = float64(a.queued.Load()) / float64(a.maxActive)
	}
	// Latency expansion factor relative to the target: at or below target
	// contributes nothing; 10x the target saturates the term.
	var latFrac float64
	if ewma := time.Duration(a.ewmaUs.Load()) * time.Microsecond; ewma > a.targetLat {
		latFrac = float64(ewma-a.targetLat) / float64(9*a.targetLat)
	}
	penalty := 0.45*clamp01(loadFrac) + 0.25*clamp01(queueFrac) + 0.30*clamp01(latFrac)
	return int(100*(1-clamp01(penalty)) + 0.5)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// busyResp builds the shed response for op: StatusBusy plus the state and
// availability index, so the client's next move is informed.
func (s *Server) busyResp(op wire.Op) *wire.Enc {
	state := byte(wire.StateOpen)
	if s.draining.Load() {
		state = wire.StateRestricted
	}
	return wire.NewResp(op, wire.StatusBusy).U8(state).U32(uint32(s.AvailabilityIndex()))
}

// availabilityResp answers an OpAvailability probe.
func (s *Server) availabilityResp() *wire.Enc {
	h := s.Health()
	return wire.NewResp(wire.OpAvailability, wire.StatusOK).
		U8(h.State).
		U32(uint32(h.Index)).
		U32(uint32(h.InFlight)).
		U32(uint32(h.Queued)).
		U64(uint64(h.Latency / time.Microsecond))
}

// Quiesce puts the server in RESTRICTED drain mode: new sessions are
// refused, new requests on existing sessions are shed with a RESTRICTED
// busy response (driving failover clients to a mate), availability probes
// answer with index 0, and the call waits — up to timeout — for in-flight
// requests to finish and cluster pushers to flush their queues. The
// listener stays up so probes keep answering; call Close afterwards to
// shut down, or Resume to return to service.
func (s *Server) Quiesce(timeout time.Duration) error {
	if s.draining.CompareAndSwap(false, true) {
		s.logf(LogHealth, "quiesce: entering RESTRICTED drain mode")
	}
	deadline := time.Now().Add(timeout)
	for {
		inflight := s.admission.inflight.Load()
		flushed := s.clusterFlushed()
		if inflight == 0 && flushed {
			s.logf(LogHealth, "quiesce: drained (in-flight 0, cluster flushed)")
			return nil
		}
		if time.Now().After(deadline) {
			err := fmt.Errorf("server: quiesce timed out (in-flight %d, cluster flushed %v)", inflight, flushed)
			s.logf(LogHealth, "quiesce: %v", err)
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Resume leaves drain mode and accepts work again.
func (s *Server) Resume() {
	if s.draining.CompareAndSwap(true, false) {
		s.logf(LogHealth, "resume: accepting work again")
	}
}

// Draining reports whether the server is in RESTRICTED drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }
