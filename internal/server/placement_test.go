package server

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/nsf"
	"repro/internal/wire"
)

// TestResolvePlacementProbe: the unauthenticated OpResolve probe reports a
// placed database's generation and home set (with addresses), an unplaced
// database as generation 0 / no homes, and lists every record.
func TestResolvePlacementProbe(t *testing.T) {
	p := newFailoverPair(t)
	p.start(t)
	p.hub.SetPeers(map[string]string{"spoke": p.spokeAddr})

	info, err := wire.ResolvePlacement(p.hubAddr, "apps/db.nsf", nil, 0)
	if err != nil {
		t.Fatalf("resolve unplaced: %v", err)
	}
	if !info.Unplaced() {
		t.Fatalf("unplaced database resolved to %+v", info)
	}

	if _, err := p.dir.SetPlacement("apps/db.nsf", []string{"spoke", "hub"}, 2); err != nil {
		t.Fatal(err)
	}
	info, err = wire.ResolvePlacement(p.hubAddr, "apps/db.nsf", nil, 0)
	if err != nil {
		t.Fatalf("resolve placed: %v", err)
	}
	if info.Generation != 1 || len(info.Homes) != 2 {
		t.Fatalf("resolve = %+v", info)
	}
	byName := map[string]string{}
	for _, h := range info.Homes {
		byName[h.Name] = h.Addr
	}
	if byName["spoke"] != p.spokeAddr {
		t.Errorf("spoke addr = %q, want %q (peer map)", byName["spoke"], p.spokeAddr)
	}
	if byName["hub"] != p.hubAddr {
		t.Errorf("hub addr = %q, want %q (advertise)", byName["hub"], p.hubAddr)
	}

	all, err := wire.ListPlacements(p.hubAddr, nil, 0)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(all) != 1 || all[0].Path != "apps/db.nsf" {
		t.Fatalf("list = %+v", all)
	}

	// Resolution still answers while the mate drains.
	if err := p.hub.Quiesce(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ResolvePlacement(p.hubAddr, "apps/db.nsf", nil, 0); err != nil {
		t.Errorf("resolve while draining: %v", err)
	}
	p.hub.Resume()
}

// TestWrongMateSurfacedOnBareClient: a plain Client opening a database its
// mate does not home gets a WrongMateError carrying the home set — and the
// error is not retried (the mate would only redirect again).
func TestWrongMateSurfacedOnBareClient(t *testing.T) {
	p := newFailoverPair(t)
	p.start(t)
	p.hub.SetPeers(map[string]string{"spoke": p.spokeAddr})
	if _, err := p.dir.SetPlacement("apps/db.nsf", []string{"spoke"}, 1); err != nil {
		t.Fatal(err)
	}

	c, err := wire.DialOptions(p.hubAddr, "ada", "ada-pw", fastClientOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.OpenDB("apps/db.nsf")
	var wme *wire.WrongMateError
	if !errors.As(err, &wme) {
		t.Fatalf("open on non-home mate: %v, want WrongMateError", err)
	}
	if !errors.Is(err, wire.ErrWrongMate) {
		t.Error("errors.Is(err, ErrWrongMate) = false")
	}
	if wme.Generation != 1 || len(wme.Homes) != 1 || wme.Homes[0].Name != "spoke" || wme.Homes[0].Addr != p.spokeAddr {
		t.Errorf("redirect payload = %+v", wme)
	}
	if wire.Retryable(err) {
		t.Error("WrongMateError classified retryable")
	}
}

// TestFailoverClientRoutesToHomeMate: a FailoverClient configured with the
// non-home mate first still lands the open on the home mate, via the eager
// resolve (or the redirect), without surfacing any error.
func TestFailoverClientRoutesToHomeMate(t *testing.T) {
	p := newFailoverPair(t)
	p.start(t)
	p.hub.SetPeers(map[string]string{"spoke": p.spokeAddr})
	p.spoke.SetPeers(map[string]string{"hub": p.hubAddr})
	if _, err := p.dir.SetPlacement("apps/db.nsf", []string{"spoke"}, 1); err != nil {
		t.Fatal(err)
	}

	// Hub listed first: the client connects there, resolves, and must move.
	fc, err := wire.DialFailover([]string{p.hubAddr, p.spokeAddr}, "ada", "ada-pw",
		wire.FailoverOptions{Client: fastClientOpts(), Cooldown: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatalf("open via non-home mate: %v", err)
	}
	if cur, _ := fc.Current(); cur != p.spokeAddr {
		t.Errorf("connected to %s, want home mate %s", cur, p.spokeAddr)
	}
	gen, homes, resolved := db.Placement()
	if !resolved || gen != 1 || len(homes) != 1 || homes[0].Name != "spoke" {
		t.Errorf("cached placement = gen %d homes %+v resolved %v", gen, homes, resolved)
	}
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "routed")
	if err := db.Create(n); err != nil {
		t.Fatalf("create after routing: %v", err)
	}
	if _, err := p.spokeDB.RawGet(n.OID.UNID); err != nil {
		t.Errorf("document not on home mate: %v", err)
	}
	st := fc.Stats()
	if st.Resolves == 0 {
		t.Error("no resolve issued")
	}
}

// TestPerOpRedirectAfterPlacementFlip: a client mid-session on the home mate
// keeps working transparently when placement flips to the other mate — the
// per-op check redirects, the client adopts the new home set, re-routes, and
// the op succeeds. The stale handle never costs the caller an error.
func TestPerOpRedirectAfterPlacementFlip(t *testing.T) {
	p := newFailoverPair(t)
	p.start(t)
	p.hub.SetPeers(map[string]string{"spoke": p.spokeAddr})
	p.spoke.SetPeers(map[string]string{"hub": p.hubAddr})
	if _, err := p.dir.SetPlacement("apps/db.nsf", []string{"hub"}, 1); err != nil {
		t.Fatal(err)
	}

	fc, err := wire.DialFailover([]string{p.hubAddr, p.spokeAddr}, "ada", "ada-pw",
		wire.FailoverOptions{Client: fastClientOpts(), Cooldown: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db, err := fc.OpenDB("apps/db.nsf")
	if err != nil {
		t.Fatal(err)
	}
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "before flip")
	if err := db.Create(n); err != nil {
		t.Fatal(err)
	}
	if cur, _ := fc.Current(); cur != p.hubAddr {
		t.Fatalf("connected to %s, want %s before flip", cur, p.hubAddr)
	}

	// Flip placement hub -> spoke (generation 2). The client's cache is now
	// stale; its next op on the hub must redirect.
	if _, err := p.dir.UpdatePlacement("apps/db.nsf", 1, []string{"spoke"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get(n.OID.UNID); err == nil {
		// The doc only exists on the hub; after the flip the spoke serves
		// the path but lacks the data (no move ran). Either outcome —
		// not-found or success via replication — must come from the spoke.
	}
	if cur, _ := fc.Current(); cur != p.spokeAddr {
		t.Errorf("connected to %s after flip, want %s", cur, p.spokeAddr)
	}
	gen, homes, _ := db.Placement()
	if gen != 2 || len(homes) != 1 || homes[0].Name != "spoke" {
		t.Errorf("cache after flip = gen %d homes %+v", gen, homes)
	}
	st := fc.Stats()
	if st.WrongMateRedirects == 0 {
		t.Error("flip produced no WrongMate redirect")
	}

	// New writes land on the new home.
	n2 := nsf.NewNote(nsf.ClassDocument)
	n2.SetText("Subject", "after flip")
	if err := db.Create(n2); err != nil {
		t.Fatalf("create after flip: %v", err)
	}
	if _, err := p.spokeDB.RawGet(n2.OID.UNID); err != nil {
		t.Errorf("post-flip document not on new home: %v", err)
	}
}

// TestPlacementInCatalogAndMonitor: placement records show up in the catalog
// document fields and the monitor report.
func TestPlacementInCatalogAndMonitor(t *testing.T) {
	p := newFailoverPair(t)
	p.start(t)
	if _, err := p.dir.SetPlacement("apps/db.nsf", []string{"spoke"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.hub.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	cat, ok := p.hub.DB(CatalogPath)
	if !ok {
		t.Fatal("no catalog")
	}
	doc, err := cat.RawGet(catalogDocUNID("hub", "apps/db.nsf"))
	if err != nil {
		t.Fatal(err)
	}
	if got := doc.Text("PlacementHome"); got != "spoke" {
		t.Errorf("PlacementHome = %q", got)
	}
	if got := doc.Number("PlacementGen"); got != 1 {
		t.Errorf("PlacementGen = %v", got)
	}
	found := false
	for _, line := range p.hub.MonitorReport() {
		if strings.Contains(line, "placement apps/db.nsf") &&
			strings.Contains(line, "gen=1") && strings.Contains(line, "not homed here") {
			found = true
		}
	}
	if !found {
		t.Errorf("monitor report lacks placement line: %q", p.hub.MonitorReport())
	}
}
