package server

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/backup"
	"repro/internal/core"
	"repro/internal/dir"
	"repro/internal/nsf"
)

func newBackupServer(t *testing.T) (*Server, string) {
	t.Helper()
	d := dir.New()
	d.AddUser(dir.User{Name: "ada", Secret: "ada-pw"})
	root := t.TempDir()
	srv, err := New(Options{
		Name: "hub", DataDir: filepath.Join(root, "data"),
		Directory:     d,
		SyncWAL:       true,
		ArchiveLogDir: filepath.Join(root, "walarchive"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, root
}

// TestServerBackupRestoreAndCatalog exercises the admin surface: BackupDB
// full + incremental into the per-database set dir, the catalog's
// last-backup fields, and RestoreDB bringing a database back under the
// server.
func TestServerBackupRestoreAndCatalog(t *testing.T) {
	srv, root := newBackupServer(t)
	db, err := srv.OpenDB("apps/notes.nsf", core.Options{Title: "Notes"})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Session("ada")
	for i := 0; i < 6; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Form", "Memo")
		n.SetText("Subject", fmt.Sprintf("m-%d", i))
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
	}

	bakRoot := filepath.Join(root, "backups")
	img, err := srv.BackupDB("apps/notes.nsf", bakRoot, true)
	if err != nil {
		t.Fatal(err)
	}
	if img.Kind != backup.KindFull || img.EndUSN != db.LastUSN() {
		t.Fatalf("full image %+v, db at USN %d", img.Header, db.LastUSN())
	}
	bs, ok := srv.LastBackup("apps/notes.nsf")
	if !ok || bs.USN != img.EndUSN || bs.Kind != backup.KindFull {
		t.Fatalf("LastBackup = %+v, %v", bs, ok)
	}

	// One more write, then an incremental via BackupAll.
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Form", "Memo")
	n.SetText("Subject", "late")
	if err := s.Create(n); err != nil {
		t.Fatal(err)
	}
	count, err := srv.BackupAll(bakRoot, false)
	if err != nil {
		t.Fatal(err)
	}
	if count < 1 {
		t.Fatalf("BackupAll backed up %d databases", count)
	}
	bs, _ = srv.LastBackup("apps/notes.nsf")
	if bs.Kind != backup.KindIncremental || bs.USN != db.LastUSN() {
		t.Fatalf("after incremental: %+v, db at USN %d", bs, db.LastUSN())
	}

	// The catalog reports the last-backup USN and a fresh age.
	if _, err := srv.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	cat, _ := srv.DB(CatalogPath)
	found := false
	cat.ScanAll(func(doc *nsf.Note) bool {
		if doc.Text("Path") != "apps/notes.nsf" {
			return true
		}
		found = true
		if usn := doc.Number("BackupUSN"); uint64(usn) != bs.USN {
			t.Errorf("catalog BackupUSN = %v, want %d", usn, bs.USN)
		}
		if age := doc.Number("BackupAgeSecs"); age < 0 || age > 3600 {
			t.Errorf("catalog BackupAgeSecs = %v", age)
		}
		return true
	})
	if !found {
		t.Fatal("no catalog doc for apps/notes.nsf")
	}

	// Verify the set offline, with the server's archive directory.
	setDir := bs.SetDir
	r, err := backup.VerifySet(setDir, srv.ArchiveDirFor("apps/notes.nsf"))
	if err != nil || !r.OK() {
		t.Fatalf("verify: err=%v problems=%v", err, r.Problems)
	}

	// RestoreDB refuses to clobber an open database, then restores to a
	// fresh path the server opens and serves.
	if _, err := srv.RestoreDB("apps/notes.nsf", setDir, backup.RestoreOptions{}); err == nil {
		t.Fatal("RestoreDB overwrote an open database")
	}
	info, err := srv.RestoreDB("apps/notes2.nsf", setDir, backup.RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ReachedUSN != bs.USN {
		t.Fatalf("restore reached USN %d, want %d", info.ReachedUSN, bs.USN)
	}
	db2, ok := srv.DB("apps/notes2.nsf")
	if !ok {
		t.Fatal("restored database not open under the server")
	}
	if db2.Count() != db.Count() || db2.ReplicaID() != db.ReplicaID() {
		t.Fatalf("restored db: count %d/%d replica %v/%v",
			db2.Count(), db.Count(), db2.ReplicaID(), db.ReplicaID())
	}
}

// TestCatalogReportsNeverBackedUp checks the catalog sentinel for a
// database with no backup this run.
func TestCatalogReportsNeverBackedUp(t *testing.T) {
	srv, _ := newBackupServer(t)
	if _, err := srv.OpenDB("plain.nsf", core.Options{Title: "Plain"}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	cat, _ := srv.DB(CatalogPath)
	checked := false
	cat.ScanAll(func(doc *nsf.Note) bool {
		if doc.Text("Path") != "plain.nsf" {
			return true
		}
		checked = true
		if doc.Number("BackupUSN") != 0 || doc.Number("BackupAgeSecs") != -1 {
			t.Errorf("never-backed-up sentinel: USN=%v age=%v",
				doc.Number("BackupUSN"), doc.Number("BackupAgeSecs"))
		}
		return true
	})
	if !checked {
		t.Fatal("no catalog doc for plain.nsf")
	}
}
