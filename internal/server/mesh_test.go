package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/nsf"
	"repro/internal/wire"
)

// meshNet is a testNet with a shared replica on both servers and the mesh
// enabled on the hub.
func newMeshNet(t *testing.T) (*testNet, *mesh.Mesh, *core.Database, *core.Database) {
	t.Helper()
	net := newTestNet(t)
	replica := nsf.NewReplicaID()
	hubDB, err := net.hub.OpenDB("apps/meshed.nsf", core.Options{Title: "meshed", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	spokeDB, err := net.spoke.OpenDB("apps/meshed.nsf", core.Options{Title: "meshed", ReplicaID: replica})
	if err != nil {
		t.Fatal(err)
	}
	hubDB.ACL().Set("spoke", acl.Editor)
	spokeDB.ACL().Set("hub", acl.Editor)
	m, err := net.hub.EnableMesh(mesh.Options{
		Interval: 30 * time.Millisecond,
		Debounce: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("EnableMesh: %v", err)
	}
	return net, m, hubDB, spokeDB
}

func waitMeshConverged(t *testing.T, dbs map[string]*core.Database) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		audit, err := mesh.AuditConvergence(dbs)
		if err != nil {
			t.Fatal(err)
		}
		if audit.Converged {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %+v", audit.Fingerprints)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMeshOverWire runs a hot mesh link between two real servers over the
// wire protocol and audits that the replicas converge to identical
// (UNID, Seq, SeqTime) fingerprints.
func TestMeshOverWire(t *testing.T) {
	net, m, hubDB, spokeDB := newMeshNet(t)
	if err := m.Add(mesh.Link{Name: "to-spoke", Peer: "spoke", Glob: "apps/*.nsf", Class: mesh.Hot}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	s := hubDB.Session("admin")
	for i := 0; i < 5; i++ {
		n := nsf.NewNote(nsf.ClassDocument)
		n.SetText("Subject", fmt.Sprintf("doc %d", i))
		if err := s.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	// And one the other way, carried by the link's pull half.
	n := nsf.NewNote(nsf.ClassDocument)
	n.SetText("Subject", "spoke doc")
	if err := spokeDB.Session("admin").Create(n); err != nil {
		t.Fatal(err)
	}
	waitMeshConverged(t, map[string]*core.Database{"hub": hubDB, "spoke": spokeDB})

	sts := m.Status()
	if len(sts) != 1 || sts[0].Rounds == 0 || sts[0].Failures != 0 {
		t.Errorf("status = %+v", sts)
	}
	if sts[0].NotesOut == 0 || sts[0].NotesIn == 0 {
		t.Errorf("no transfer counted: %+v", sts[0])
	}
	// The monitor report and the catalog both surface the link.
	report := strings.Join(net.hub.MonitorReport(), "\n")
	if !strings.Contains(report, "mesh to-spoke -> spoke") {
		t.Errorf("monitor report lacks mesh line:\n%s", report)
	}
	if _, err := net.hub.RefreshCatalog(); err != nil {
		t.Fatal(err)
	}
	cat, _ := net.hub.DB(CatalogPath)
	found := false
	cat.ScanAll(func(n *nsf.Note) bool {
		if n.Text("Form") == "MeshLink" && n.Text("Link") == "to-spoke" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("catalog lacks the MeshLink document")
	}
}

// TestMeshAdminOverWire drives the mesh admin ops through a wire client:
// status, add (with server-side formula validation), and remove.
func TestMeshAdminOverWire(t *testing.T) {
	net, _, hubDB, spokeDB := newMeshNet(t)
	c, err := wire.Dial(net.hubAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if sts, err := c.MeshStatus(); err != nil || len(sts) != 0 {
		t.Fatalf("MeshStatus on empty mesh = %v, %v", sts, err)
	}
	link := mesh.Link{
		Name: "wire-link", Peer: "spoke", Glob: "apps/*.nsf",
		Class: mesh.Cold, Interval: 25 * time.Millisecond,
		Formula: "Subject != \"hidden\"",
	}
	if err := c.MeshAdd(link); err != nil {
		t.Fatalf("MeshAdd: %v", err)
	}
	if err := c.MeshAdd(link); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Errorf("duplicate add error = %v", err)
	}
	if err := c.MeshAdd(mesh.Link{Name: "bad", Peer: "spoke", Formula: "((("}); err == nil {
		t.Error("bad formula accepted over the wire")
	}
	sts, err := c.MeshStatus()
	if err != nil || len(sts) != 1 {
		t.Fatalf("MeshStatus = %v, %v", sts, err)
	}
	if got := sts[0].Link; got.Name != "wire-link" || got.Formula != link.Formula ||
		got.Class != mesh.Cold || got.Interval != link.Interval {
		t.Errorf("round-tripped link = %+v", got)
	}

	// The added link replicates: selected docs travel, deselected ones
	// land as selection stubs and the fingerprints still converge.
	s := hubDB.Session("admin")
	vis := nsf.NewNote(nsf.ClassDocument)
	vis.SetText("Subject", "visible")
	hid := nsf.NewNote(nsf.ClassDocument)
	hid.SetText("Subject", "hidden")
	if err := s.Create(vis); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(hid); err != nil {
		t.Fatal(err)
	}
	waitMeshConverged(t, map[string]*core.Database{"hub": hubDB, "spoke": spokeDB})
	got, err := spokeDB.RawGet(hid.OID.UNID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSelStub() {
		t.Errorf("deselected doc arrived as %+v, want selection stub", got)
	}

	if err := c.MeshRemove("wire-link"); err != nil {
		t.Fatalf("MeshRemove: %v", err)
	}
	if err := c.MeshRemove("wire-link"); err == nil {
		t.Error("removing a removed link succeeded")
	}
	if sts, _ := c.MeshStatus(); len(sts) != 0 {
		t.Errorf("links after remove = %+v", sts)
	}
}

// TestMeshOpsWithoutMesh reports a clean error when the mesh task is not
// enabled (here: the spoke).
func TestMeshOpsWithoutMesh(t *testing.T) {
	net := newTestNet(t)
	c, err := wire.Dial(net.spokeAddr, "ada", "ada-pw")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.MeshStatus(); err == nil || !strings.Contains(err.Error(), "mesh not enabled") {
		t.Errorf("MeshStatus error = %v", err)
	}
	if err := c.MeshAdd(mesh.Link{Name: "x", Peer: "hub"}); err == nil {
		t.Error("MeshAdd succeeded without mesh")
	}
	if err := net.spoke.Close(); err != nil {
		t.Fatal(err)
	}
	// Enabling on a closed server fails; double-enable on the hub fails.
	if _, err := net.spoke.EnableMesh(mesh.Options{}); err == nil {
		t.Error("EnableMesh on closed server succeeded")
	}
	if _, err := net.hub.EnableMesh(mesh.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.hub.EnableMesh(mesh.Options{}); err == nil {
		t.Error("double EnableMesh succeeded")
	}
}
